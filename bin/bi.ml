(* Command-line explorer for the Bayesian-ignorance reproduction.

   $ bi construction anshelevich -k 5      # measures of a paper game
   $ bi adversary -l 4 -s 100              # diamond online adversary
   $ bi sec4 anshelevich -k 3              # public-randomness analysis
   $ bi plane -p 5                         # affine-plane sanity check
   $ bi serve --socket bi.sock             # analysis server
   $ bi query construction diamond -k 3    # ask a running server *)

open Bayesian_ignorance
open Num
module Bncs = Ncs.Bayesian_ncs
module Measures = Bayes.Measures
module Sink = Engine.Sink

let print_report report =
  print_endline
    (Report.table ~header:[ "quantity"; "value" ] (Report.measures_rows report));
  let ratios = Measures.ratios_of_report report in
  print_newline ();
  print_endline
    (Report.table
       ~header:[ "ratio"; "value" ]
       [
         [ "optP/optC"; Report.ratio_cell ratios.Measures.r_opt ];
         [ "best-eqP/best-eqC"; Report.ratio_cell ratios.Measures.r_best_eq ];
         [ "worst-eqP/worst-eqC"; Report.ratio_cell ratios.Measures.r_worst_eq ];
       ]);
  print_newline ();
  Printf.printf "observation 2.2 (optC <= optP <= best-eqP <= worst-eqP): %s\n"
    (Report.verdict (Measures.observation_2_2_holds report))

let ratio_json = function
  | None -> Sink.Null
  | Some r -> Sink.Str (Rat.to_string r)

let construction_json ~name ~k ~fingerprint ~cached analysis =
  let report = analysis.Bncs.report in
  let ratios = Measures.ratios_of_report report in
  Sink.Obj
    [
      ("record", Str "construction");
      ("construction", Str name);
      ("k", Int k);
      ("fingerprint", Str fingerprint);
      ("cached", Bool cached);
      ("analysis", Cache.Codec.analysis_to_json analysis);
      ( "ratios",
        Obj
          [
            ("opt", ratio_json ratios.Measures.r_opt);
            ("best_eq", ratio_json ratios.Measures.r_best_eq);
            ("worst_eq", ratio_json ratios.Measures.r_worst_eq);
          ] );
      ("observation_2_2", Bool (Measures.observation_2_2_holds report));
    ]

let certified_construction_json ~name ~k ~fingerprint ~cached payload =
  Sink.Obj
    [
      ("record", Str "construction");
      ("construction", Str name);
      ("k", Int k);
      ("fingerprint", Str fingerprint);
      ("cached", Bool cached);
      ("mode", Str "certified");
      ("certified", payload);
    ]

(* Rendered from the JSON payload rather than the certificate record, so
   cached answers (where only the payload survives) print identically. *)
let print_certified payload =
  let bracket_cell field =
    match Sink.member field payload with
    | Some b ->
      let endpoint m =
        match Sink.member m b with Some (Sink.Str v) -> v | _ -> "?"
      in
      let lo = endpoint "lo" and hi = endpoint "hi" in
      if String.equal lo hi then lo else Printf.sprintf "[%s, %s]" lo hi
    | None -> "?"
  in
  let int_of field =
    match Sink.member field payload with Some (Sink.Int n) -> n | _ -> 0
  in
  let bool_of field =
    match Sink.member field payload with Some (Sink.Bool b) -> b | _ -> false
  in
  print_endline
    (Report.table
       ~header:[ "quantity"; "certified bracket" ]
       [
         [ "optP"; bracket_cell "opt_p" ];
         [ "best-eqP"; bracket_cell "best_eq_p" ];
         [ "worst-eqP"; bracket_cell "worst_eq_p" ];
         [ "optC"; bracket_cell "opt_c" ];
         [ "best-eqC"; bracket_cell "best_eq_c" ];
         [ "worst-eqC"; bracket_cell "worst_eq_c" ];
       ]);
  Printf.printf
    "\n%d equilibria from %d descent starts; branch-and-bound %s in %d nodes\n"
    (int_of "equilibria") (int_of "descent_starts")
    (if bool_of "bnb_certified" then "closed (optimum certified)"
     else "open (bracket only)")
    (int_of "bnb_nodes")

let correlated_construction_json ~name ~k ~fingerprint ~cached ~concept payload =
  Sink.Obj
    [
      ("record", Str "construction");
      ("construction", Str name);
      ("k", Int k);
      ("fingerprint", Str fingerprint);
      ("cached", Bool cached);
      ("concept", Str (Correlated.Concept.to_string concept));
      ("correlated", payload);
    ]

(* Rendered from the JSON payload rather than the report record, so
   cached answers (where only the payload survives) print identically. *)
let print_correlated payload =
  let value_cell field =
    match Sink.member field payload with Some (Sink.Str v) -> v | _ -> "?"
  in
  let int_of field =
    match Sink.member field payload with Some (Sink.Int n) -> n | _ -> 0
  in
  let concept =
    match Sink.member "concept" payload with Some (Sink.Str c) -> c | _ -> "?"
  in
  print_endline
    (Report.table
       ~header:[ "quantity"; "exact value" ]
       [
         [ "best-" ^ concept ^ "P"; value_cell "best" ];
         [ "worst-" ^ concept ^ "P"; value_cell "worst" ];
         [ "pub-bestP"; value_cell "pub_best" ];
         [ "pub-worstP"; value_cell "pub_worst" ];
       ]);
  let pivots =
    match Sink.member "pivots" payload with
    | Some p ->
      List.fold_left
        (fun acc f ->
          acc + match Sink.member f p with Some (Sink.Int n) -> n | _ -> 0)
        0
        [ "best"; "worst"; "pub_best"; "pub_worst" ]
    | None -> 0
  in
  Printf.printf
    "\nLP over %d states, %d columns, %d deviation rows; %d simplex pivots; \
     dual certificates verified\n"
    (int_of "states") (int_of "columns") (int_of "deviations") pivots

(* Unknown names exit 1, a [k] the family rejects exits 2. *)
let build_or_exit name k =
  match Constructions.Registry.build name k with
  | Ok game -> game
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit (if List.mem name Constructions.Registry.names then 2 else 1)

(* The correlated concepts ignore the solver tier: there is a single LP
   path, keyed on the concept-qualified fingerprint like the server's. *)
let correlated_construction ~name ~k ~json ~fingerprint ~cache ~build_span
    concept game =
  let module Corr = Correlated.Correlated in
  let key =
    Cache.Fingerprint.with_concept fingerprint
      ~concept:(Correlated.Concept.cache_tag concept)
  in
  let solve () =
    let report = Corr.analyze ~concept game in
    (match Corr.check game report with
    | Ok () -> ()
    | Error e ->
      Printf.eprintf "error: correlated certificate rejected: %s\n" e;
      exit 3);
    Corr.to_json report
  in
  let (payload, cached), solve_span =
    Engine.Timer.timed (fun () ->
        match cache with
        | None -> (solve (), false)
        | Some c -> Cache.Service.payload c key solve)
  in
  if json then
    print_endline
      (Sink.to_string
         (correlated_construction_json ~name ~k ~fingerprint:key ~cached
            ~concept payload))
  else begin
    Printf.printf "construction %s, parameter %d (%s concept)\n\n" name k
      (Correlated.Concept.to_string concept);
    print_correlated payload;
    Format.printf "@.[build: %a; solve: %a%s]@." Engine.Timer.pp_seconds
      build_span.Engine.Timer.seconds Engine.Timer.pp_seconds
      solve_span.Engine.Timer.seconds
      (if cached then " (cached)" else "")
  end

let construction name k jobs json cache_path mode concept =
  Engine.Pool.with_pool (Engine.Pool.recommended_jobs jobs) (fun pool ->
      let game, build_span =
        Engine.Timer.timed (fun () -> build_or_exit name k)
      in
      let fingerprint = Cache.Fingerprint.of_game game in
      let mode =
        Certify.Mode.resolve ~valid_profiles:(Bncs.valid_profile_count game)
          mode
      in
      let cache =
        Option.map (fun path -> Cache.Service.create ~store_path:path ()) cache_path
      in
      (match concept with
      | Correlated.Concept.Cce | Correlated.Concept.Comm ->
        correlated_construction ~name ~k ~json ~fingerprint ~cache ~build_span
          concept game
      | Correlated.Concept.Nash ->
      match mode with
      | Certify.Mode.Auto -> assert false (* resolve never returns Auto *)
      | Certify.Mode.Exhaustive ->
        let (analysis, cached), solve_span =
          Engine.Timer.timed (fun () ->
              match cache with
              | None -> (Bncs.analyze ~pool game, false)
              | Some c ->
                Cache.Service.analysis c fingerprint (fun () ->
                    Bncs.analyze ~pool game))
        in
        if json then
          print_endline
            (Sink.to_string
               (construction_json ~name ~k ~fingerprint ~cached analysis))
        else begin
          Printf.printf "construction %s, parameter %d\n\n" name k;
          print_report analysis.Bncs.report;
          Format.printf "@.[build: %a; solve: %a%s]@." Engine.Timer.pp_seconds
            build_span.Engine.Timer.seconds Engine.Timer.pp_seconds
            solve_span.Engine.Timer.seconds
            (if cached then " (cached)" else "")
        end
      | Certify.Mode.Certified ->
        (* Tier-qualified key: certified answers never collide with
           exhaustive cache entries for the same game. *)
        let key =
          Cache.Fingerprint.with_mode fingerprint
            ~mode:(Certify.Mode.cache_tag Certify.Mode.Certified)
        in
        let solve () =
          let cert = Certify.Solve.certify ~pool game in
          (match Certify.Solve.check game cert with
          | Ok () -> ()
          | Error e ->
            Printf.eprintf "error: certificate rejected: %s\n" e;
            exit 3);
          Certify.Solve.to_json cert
        in
        let (payload, cached), solve_span =
          Engine.Timer.timed (fun () ->
              match cache with
              | None -> (solve (), false)
              | Some c -> Cache.Service.payload c key solve)
        in
        if json then
          print_endline
            (Sink.to_string
               (certified_construction_json ~name ~k ~fingerprint:key ~cached
                  payload))
        else begin
          Printf.printf "construction %s, parameter %d (certified tier)\n\n"
            name k;
          print_certified payload;
          Format.printf "@.[build: %a; solve: %a%s]@." Engine.Timer.pp_seconds
            build_span.Engine.Timer.seconds Engine.Timer.pp_seconds
            solve_span.Engine.Timer.seconds
            (if cached then " (cached)" else "")
        end);
      Option.iter Cache.Service.close cache);
  0

let adversary levels samples seed =
  let d = Steiner.Diamond.build levels in
  let g = Steiner.Diamond.graph d in
  Printf.printf "diamond level %d: %d vertices, %d edges, OPT = 1 always\n\n"
    levels
    (Graphs.Graph.n_vertices g)
    (Graphs.Graph.n_edges g);
  let algorithms =
    [ Steiner.Online.greedy; Steiner.Online.oblivious_shortest_path ]
  in
  List.iter
    (fun alg ->
      if levels <= 3 then
        Printf.printf "%-25s E[ALG] = %s (exact)\n" alg.Steiner.Online.name
          (Rat.to_string (Steiner.Diamond.expected_cost d alg))
      else begin
        let rng = Random.State.make [| seed |] in
        Printf.printf "%-25s E[ALG] ~ %.4f (%d samples)\n" alg.Steiner.Online.name
          (Steiner.Diamond.mean_cost rng ~samples d alg)
          samples
      end)
    algorithms;
  0

let sec4 name k iterations =
  let game = build_or_exit name k in
  let phi =
    try Minimax.Section4.of_bayesian_ncs game with
    | Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  in
  Printf.printf "phi: %d strategy profiles x %d type profiles\n"
    (Minimax.Section4.n_strategies phi)
    (Minimax.Section4.n_type_profiles phi);
  let sol = Minimax.Section4.r_tilde ~iterations phi in
  Printf.printf "R~(phi) in [%s, %s]\n"
    (Rat.to_string sol.Minimax.Matrix_game.lower)
    (Rat.to_string sol.Minimax.Matrix_game.upper);
  let q = sol.Minimax.Matrix_game.row_strategy in
  Printf.printf "public-randomness guarantee: %s\n"
    (Rat.to_string (Minimax.Section4.randomized_guarantee phi q));
  let lo, hi = Minimax.Section4.r_star_bracket ~iterations:(iterations / 2) phi in
  Printf.printf "independent R(phi) bracket: [%s, %s]\n" (Rat.to_string lo)
    (Rat.to_string hi);
  0

let plane p =
  match Constructions.Affine_plane.make p with
  | plane ->
    Printf.printf "AG(2, %d): %d points, %d lines; axioms: %s\n" p
      (Constructions.Affine_plane.n_points plane)
      (Constructions.Affine_plane.n_lines plane)
      (Report.verdict (Constructions.Affine_plane.check_axioms plane));
    0
  | exception Invalid_argument msg ->
    Printf.eprintf "error: %s\n" msg;
    2

(* --- server / client --- *)

let default_socket = "bi.sock"

let serve socket tcp cache_path capacity metrics_out jobs deadline
    max_concurrent max_queue idle_timeout chaos_spec shard_id =
  let chaos_cfg =
    match chaos_spec with
    | Some spec -> Serve.Chaos.parse spec
    | None -> Serve.Chaos.of_env ()
  in
  match chaos_cfg with
  | Error e ->
    Printf.eprintf "error: chaos spec: %s\n" e;
    2
  | Ok cfg -> (
    let chaos =
      if Serve.Chaos.is_enabled cfg then Some (Serve.Chaos.create cfg) else None
    in
    let limits =
      {
        Serve.Server.max_concurrent;
        max_queue;
        idle_timeout_s = idle_timeout;
        max_deadline_ms = deadline;
      }
    in
    let listen =
      match tcp with
      | Some port -> Serve.Server.Tcp port
      | None -> Serve.Server.Unix_socket socket
    in
    let cache =
      Cache.Service.create ~capacity ?store_path:cache_path ?shard:shard_id ()
    in
    let stats0 = Cache.Service.stats cache in
    match
      Engine.Pool.with_pool (Engine.Pool.recommended_jobs jobs) (fun pool ->
          (* The banner doubles as the readiness signal for scripts
             tailing our output, so print it only once the listener is
             actually accepting. *)
          let on_ready () =
            (match listen with
            | Serve.Server.Unix_socket path ->
              Printf.printf "bi serve: unix socket %s" path
            | Serve.Server.Tcp port ->
              Printf.printf "bi serve: tcp 127.0.0.1:%d" port);
            Option.iter (Printf.printf " (shard %s)") shard_id;
            if
              stats0.Cache.Service.loaded > 0
              || stats0.Cache.Service.invalid > 0
              || stats0.Cache.Service.quarantined > 0
            then
              Printf.printf
                " (store: %d entries replayed, %d invalid, %d quarantined)"
                stats0.Cache.Service.loaded stats0.Cache.Service.invalid
                stats0.Cache.Service.quarantined;
            if chaos <> None then Printf.printf " (chaos on)";
            print_newline ();
            flush stdout
          in
          Serve.Server.run ~pool ~metrics_out ~on_ready ~limits ?chaos ~cache
            listen)
    with
    | () ->
      Cache.Service.close cache;
      Printf.printf "bi serve: stopped; metrics in %s\n" metrics_out;
      0
    | exception Failure msg ->
      Cache.Service.close cache;
      Printf.eprintf "error: %s\n" msg;
      1)

let retry_of ~retries ~retry_base_ms =
  if retries <= 0 then None
  else
    Some
      {
        Serve.Client.default_retry with
        attempts = retries;
        base_delay_ms = retry_base_ms;
      }

let query socket tcp verb name k deadline retries retry_base_ms mode concept =
  let deadline_field =
    match deadline with
    | None -> []
    | Some ms -> [ ("deadline_ms", Sink.Int ms) ]
  in
  (* Match the protocol builders: the default tier is never written, so
     default-tier requests stay byte-identical to pre-mode ones. *)
  let mode_field =
    match mode with
    | Certify.Mode.Exhaustive -> []
    | m -> [ ("mode", Sink.Str (Certify.Mode.to_string m)) ]
  in
  (* Same convention for the solution concept: nash is never written. *)
  let concept_field =
    match concept with
    | Correlated.Concept.Nash -> []
    | c -> [ ("concept", Sink.Str (Correlated.Concept.to_string c)) ]
  in
  let request =
    match verb with
    | "construction" -> (
      match name with
      | Some name ->
        Ok
          (Serve.Protocol.construction_request ?deadline_ms:deadline ~mode
             ~concept ~name ~k ())
      | None -> Error "query construction: NAME argument required")
    | "analyze" -> (
      match Sink.of_string (In_channel.input_all stdin) with
      | Ok game ->
        Ok
          (Sink.Obj
             ([ ("op", Sink.Str "analyze"); ("game", game) ]
             @ mode_field @ concept_field @ deadline_field))
      | Error e -> Error (Printf.sprintf "game description on stdin: %s" e))
    | "stats" -> Ok Serve.Protocol.stats_request
    | "health" -> Ok Serve.Protocol.health_request
    | "shutdown" -> Ok Serve.Protocol.shutdown_request
    | v ->
      Error
        (Printf.sprintf
           "unknown verb %S (try: construction, analyze, stats, health, \
            shutdown)" v)
  in
  match request with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    2
  | Ok request -> (
    match
      match tcp with
      | Some port -> Serve.Client.connect_tcp port
      | None -> Serve.Client.connect_unix socket
    with
    | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "error: cannot connect to server: %s\n"
        (Unix.error_message err);
      1
    | client -> (
      let retry = retry_of ~retries ~retry_base_ms in
      let response = Serve.Client.request ?retry client request in
      Serve.Client.close client;
      match response with
      | Error f ->
        Printf.eprintf "error: %s\n" (Serve.Client.failure_to_string f);
        1
      | Ok response ->
        print_endline (Sink.to_string response);
        if Serve.Protocol.is_ok response then 0 else 1))

(* --- cluster router --- *)

let router socket tcp members members_file replicas quorum front_capacity
    metrics_out =
  let initial =
    match members with
    | Some m -> Ok (Router.Router.parse_members m)
    | None -> (
      match members_file with
      | None ->
        Error "router: no members (give --members or --members-file)"
      | Some path -> (
        match In_channel.with_open_text path In_channel.input_all with
        | content -> Ok (Router.Router.parse_members content)
        | exception Sys_error e -> Error ("router: members file: " ^ e)))
  in
  match initial with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    2
  | Ok members -> (
    let config =
      {
        Router.Router.default_config with
        replicas;
        quorum;
        front_capacity;
      }
    in
    let listen =
      match tcp with
      | Some port -> Serve.Lineserver.Tcp port
      | None -> Serve.Lineserver.Unix_socket socket
    in
    let on_ready () =
      (match listen with
      | Serve.Lineserver.Unix_socket path ->
        Printf.printf "bi router: unix socket %s" path
      | Serve.Lineserver.Tcp port ->
        Printf.printf "bi router: tcp 127.0.0.1:%d" port);
      Printf.printf " -> %s (replicas %d, quorum %d)\n"
        (String.concat "," members)
        config.Router.Router.replicas config.Router.Router.quorum;
      flush stdout
    in
    match
      Router.Router.run ~on_ready ~metrics_out ?members_file ~config ~members
        listen
    with
    | () ->
      Printf.printf "bi router: stopped; metrics in %s\n" metrics_out;
      0
    | exception Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      1)

(* --- fsck --- *)

(* One connection per exchange, mirroring the router's shard transport:
   fsck must see a partitioned shard as unreachable, not camp on it. *)
let fsck_exchange_source ~timeout_s member =
  Router.Fsck.exchange_source ~name:member (fun request ->
      match Router.Router.addr_of_member member with
      | Error e -> Error e
      | Ok addr -> (
        match Serve.Client.make ~timeout_s addr with
        | exception Unix.Unix_error (err, _, _) ->
          Error (Unix.error_message err)
        | client ->
          Fun.protect
            ~finally:(fun () -> Serve.Client.close client)
            (fun () ->
              match Serve.Client.request client request with
              | Ok resp -> Ok resp
              | Error f -> Error (Serve.Client.failure_to_string f))))

let fsck_run ~ring_members ~replicas ~repair sources =
  let ring = Router.Ring.create ring_members in
  Router.Fsck.run ~ring ~replicas ~repair sources

(* Exit codes: 0 clean, 1 divergent (or repair failed to converge),
   2 usage error or a source that could not be read at all. *)
let fsck_exit ~repair (report : Router.Fsck.report) =
  if report.Router.Fsck.unreachable <> [] then 2
  else if
    (if repair then
       report.Router.Fsck.remaining > 0
       || report.Router.Fsck.repair_failures <> []
     else report.Router.Fsck.divergent <> [])
  then 1
  else 0

let fsck members members_file stores replicas repair report_file timeout_s =
  let members_of_flags () =
    match (members, members_file) with
    | Some m, _ -> Ok (Some (Router.Router.parse_members m))
    | None, Some path -> (
      match In_channel.with_open_text path In_channel.input_all with
      | content -> Ok (Some (Router.Router.parse_members content))
      | exception Sys_error e -> Error ("fsck: members file: " ^ e))
    | None, None -> Ok None
  in
  let plan =
    Result.bind (members_of_flags ()) (fun members ->
        match (stores, members) with
        | [], None ->
          Error "fsck: nothing to check (give --members or --store)"
        | [], Some ms ->
          (* Online: every member is a live shard driven over digest/pull. *)
          let replicas =
            Option.value replicas
              ~default:Router.Router.default_config.Router.Router.replicas
          in
          Ok
            ( ms,
              replicas,
              List.map (fsck_exchange_source ~timeout_s) ms )
        | paths, members ->
          (* Offline: read store files directly.  With --members the
             paths pair positionally with the ring names; without,
             the paths themselves name the ring and full replication
             is assumed (every store should hold every key). *)
          let names =
            match members with
            | None -> Ok paths
            | Some ms when List.length ms = List.length paths -> Ok ms
            | Some ms ->
              Error
                (Printf.sprintf
                   "fsck: %d --store paths but %d members; they pair \
                    positionally"
                   (List.length paths) (List.length ms))
          in
          Result.map
            (fun names ->
              let replicas =
                Option.value replicas
                  ~default:
                    (if members = None then List.length paths
                     else
                       Router.Router.default_config.Router.Router.replicas)
              in
              ( names,
                replicas,
                List.map2
                  (fun name path -> Router.Fsck.store_source ~name path)
                  names paths ))
            names)
  in
  match plan with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    2
  | Ok (ring_members, replicas, sources) ->
    if replicas < 1 || replicas > List.length ring_members then begin
      Printf.eprintf "error: fsck: --replicas must be in [1, %d]\n"
        (List.length ring_members);
      2
    end
    else begin
      let report = fsck_run ~ring_members ~replicas ~repair sources in
      let json = Sink.to_string (Router.Fsck.report_to_json report) in
      print_endline json;
      (match report_file with
      | None -> ()
      | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (json ^ "\n")));
      fsck_exit ~repair report
    end

(* --- chaos soak --- *)

(* Per-worker outcome counts; summed after the join, so no locking. *)
type soak_tally = {
  mutable sent : int;
  mutable answered : int;  (* ok responses *)
  mutable server_error : int;  (* structured "error" responses *)
  mutable shed : int;  (* final response was overloaded *)
  mutable expired : int;  (* final response was deadline_exceeded *)
  mutable torn : int;  (* raw probe hit an injected transport fault *)
  mutable io_unresolved : int;  (* retries exhausted without a response *)
  mutable malformed : int;  (* server spoke non-protocol — must stay 0 *)
}

let new_tally () =
  {
    sent = 0;
    answered = 0;
    server_error = 0;
    shed = 0;
    expired = 0;
    torn = 0;
    io_unresolved = 0;
    malformed = 0;
  }

let garbage_probes =
  [|
    "{\"op\": \"analyze\", garbage";
    "]]]]";
    "{\"op\": 42}";
    "{\"op\": \"construction\", \"name\": 7}";
    String.make 4096 '[';
  |]

(* One soak worker: a deterministic stream of requests — cached and
   uncached constructions, stats, unknown names, deadline-doomed
   requests and raw garbage — against a retrying client that must end
   every exchange in a valid answer or a structured error. *)
let soak_worker ~connect ~stop_at ~seed ~retries tally =
  let retry =
    { Serve.Client.default_retry with attempts = max 1 retries;
      seed = Some seed }
  in
  let counter = ref 0 in
  let draw () =
    let u = Serve.Chaos.unit_float ~seed ~counter:!counter in
    incr counter;
    u
  in
  let rec connect_retrying attempts =
    match connect () with
    | client -> client
    | exception Unix.Unix_error (err, _, _) when attempts > 1 ->
      ignore err;
      Thread.delay 0.1;
      connect_retrying (attempts - 1)
  in
  let client = ref (connect_retrying 20) in
  let fresh () =
    Serve.Client.close !client;
    client := connect_retrying 20
  in
  let classify = function
    | Ok resp -> (
      match Serve.Protocol.response_code resp with
      | Some "ok" -> tally.answered <- tally.answered + 1
      | Some "overloaded" -> tally.shed <- tally.shed + 1
      | Some "deadline_exceeded" -> tally.expired <- tally.expired + 1
      | Some _ -> tally.server_error <- tally.server_error + 1
      | None -> tally.malformed <- tally.malformed + 1)
    | Error (Serve.Client.Io _) ->
      tally.io_unresolved <- tally.io_unresolved + 1
    | Error (Serve.Client.Malformed _) -> tally.malformed <- tally.malformed + 1
    | Error Serve.Client.Closed ->
      tally.io_unresolved <- tally.io_unresolved + 1
  in
  while Unix.gettimeofday () < stop_at do
    let u = draw () in
    tally.sent <- tally.sent + 1;
    if u < 0.55 then begin
      let name = if draw () < 0.5 then "gworst-bliss" else "gworst-curse" in
      let k = if draw () < 0.5 then 2 else 3 in
      let deadline_ms = if draw () < 0.15 then Some 1 else None in
      classify
        (Serve.Client.request ~retry !client
           (Serve.Protocol.construction_request ?deadline_ms ~name ~k ()))
    end
    else if u < 0.7 then
      classify (Serve.Client.request ~retry !client Serve.Protocol.stats_request)
    else if u < 0.85 then
      classify
        (Serve.Client.request ~retry !client
           (Serve.Protocol.construction_request ~name:"no-such-family" ~k:2 ()))
    else begin
      (* Raw garbage probe, no retry: the server must answer a parseable
         structured error and keep the connection usable — unless a
         transport fault tore the exchange, which we count separately
         and recover from by reconnecting. *)
      let probe =
        garbage_probes.(int_of_float (draw () *. float_of_int (Array.length garbage_probes)))
      in
      match Serve.Client.raw_request !client probe with
      | Ok line -> (
        match Sink.of_string line with
        | Ok resp -> (
          match Serve.Protocol.response_code resp with
          | Some _ -> tally.server_error <- tally.server_error + 1
          | None -> tally.malformed <- tally.malformed + 1)
        | Error _ ->
          tally.torn <- tally.torn + 1;
          fresh ())
      | Error Serve.Client.Closed ->
        tally.sent <- tally.sent - 1;
        fresh ()
      | Error _ ->
        tally.torn <- tally.torn + 1;
        fresh ()
    end
  done;
  Serve.Client.close !client

let chaos_soak socket tcp clients seconds retries seed =
  let connect () =
    match tcp with
    | Some port -> Serve.Client.connect_tcp ~timeout_s:30. port
    | None -> Serve.Client.connect_unix ~timeout_s:30. socket
  in
  let stop_at = Unix.gettimeofday () +. float_of_int seconds in
  let tallies = Array.init clients (fun _ -> new_tally ()) in
  let workers =
    Array.mapi
      (fun i tally ->
        Thread.create
          (fun () ->
            soak_worker ~connect ~stop_at ~seed:(seed + (7919 * (i + 1)))
              ~retries tally)
          ())
      tallies
  in
  Array.iter Thread.join workers;
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let sent = sum (fun t -> t.sent)
  and answered = sum (fun t -> t.answered)
  and server_error = sum (fun t -> t.server_error)
  and shed = sum (fun t -> t.shed)
  and expired = sum (fun t -> t.expired)
  and torn = sum (fun t -> t.torn)
  and io_unresolved = sum (fun t -> t.io_unresolved)
  and malformed = sum (fun t -> t.malformed) in
  print_endline
    (Sink.to_string
       (Sink.Obj
          [
            ("record", Str "chaos_soak");
            ("clients", Int clients);
            ("seconds", Int seconds);
            ("sent", Int sent);
            ("answered", Int answered);
            ("server_error", Int server_error);
            ("overloaded", Int shed);
            ("deadline_exceeded", Int expired);
            ("torn", Int torn);
            ("io_unresolved", Int io_unresolved);
            ("malformed", Int malformed);
          ]));
  if malformed = 0 && io_unresolved = 0 && sent > 0 then 0 else 1

(* --- cluster chaos soak --- *)

(* Spawn a backend shard as a real child process: cluster chaos must be
   able to kill -9 a shard without taking the harness down with it. *)
let spawn_shard ?chaos ~dir ~port ~index () =
  let path name = Filename.concat dir (Printf.sprintf "shard-%d%s" index name) in
  let log =
    Unix.openfile (path ".log") [ Unix.O_WRONLY; O_CREAT; O_APPEND ] 0o644
  in
  let argv =
    [
      Sys.executable_name; "serve"; "--tcp"; string_of_int port;
      "--cache"; path ".jsonl"; "--shard-id"; Printf.sprintf "shard-%d" index;
      "--metrics-out"; path "-metrics.json";
    ]
    @ (match chaos with None -> [] | Some spec -> [ "--chaos"; spec ])
  in
  let pid =
    Unix.create_process Sys.executable_name (Array.of_list argv) Unix.stdin log
      log
  in
  Unix.close log;
  pid

let wait_shard_ready ~port ~deadline_at =
  let rec go () =
    if Unix.gettimeofday () > deadline_at then false
    else
      match Serve.Client.connect_tcp ~timeout_s:5. port with
      | exception Unix.Unix_error _ ->
        Thread.delay 0.1;
        go ()
      | c ->
        let ok =
          match Serve.Client.request c Serve.Protocol.health_request with
          | Ok resp -> Serve.Protocol.is_ok resp
          | Error _ -> false
        in
        Serve.Client.close c;
        if ok then true
        else begin
          Thread.delay 0.1;
          go ()
        end
  in
  go ()

let wait_exit ?(timeout_s = 10.) pid =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
      end
      else begin
        Thread.delay 0.1;
        go ()
      end
    | _ -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  go ()

let shutdown_endpoint connect =
  match connect () with
  | exception Unix.Unix_error _ -> ()
  | c ->
    ignore (Serve.Client.request c Serve.Protocol.shutdown_request);
    Serve.Client.close c

(* The warm key whose answer must survive the shard kill byte-for-byte. *)
let warm_name = "gworst-bliss"
let warm_k = 3

let fetch_construction ?(attempts = 10) ~name ~k connect =
  match connect () with
  | exception Unix.Unix_error (err, _, _) ->
    Error ("connect: " ^ Unix.error_message err)
  | c -> (
    let retry = { Serve.Client.default_retry with attempts } in
    let r =
      Serve.Client.request ~retry c
        (Serve.Protocol.construction_request ~name ~k ())
    in
    Serve.Client.close c;
    match r with
    | Ok resp when Serve.Protocol.is_ok resp -> (
      match (Sink.member "fingerprint" resp, Sink.member "analysis" resp) with
      | Some (Sink.Str fp), Some a -> Ok (fp, Sink.to_string a, resp)
      | _ -> Error ("response missing fields: " ^ Sink.to_string resp))
    | Ok resp -> Error ("not ok: " ^ Sink.to_string resp)
    | Error f -> Error (Serve.Client.failure_to_string f))

let fetch_warm ?attempts connect =
  fetch_construction ?attempts ~name:warm_name ~k:warm_k connect

let response_cached resp =
  match Sink.member "cached" resp with
  | Some (Sink.Bool b) -> b
  | _ -> false

(* Kill -9 a shard mid-soak, assert warm answers stay byte-identical
   across the failover (via the router AND straight from the replica
   shard, which is what proves the quorum write landed), restart the
   shard, and assert identity again once the cluster has healed. *)
let cluster_soak ~shards ~clients ~seconds ~retries ~seed ~router_metrics_out
    ~partition_p ~partition_ms ~fsck_report_out =
  let dir = Filename.temp_dir "bi-cluster" "" in
  let base_port = 20000 + (Unix.getpid () mod 10000) in
  let ports = Array.init shards (fun i -> base_port + i) in
  let members =
    Array.to_list (Array.map (Printf.sprintf "127.0.0.1:%d") ports)
  in
  let port_of_member m = List.assoc m (List.combine members (Array.to_list ports)) in
  let index_of_member m =
    let p = port_of_member m in
    let rec find i = if ports.(i) = p then i else find (i + 1) in
    find 0
  in
  (* The warm key's fingerprint — and therefore its ring owners — is a
     pure function of the member list, so the kill target and the shard
     that carries partition chaos (one that owns neither copy) are both
     known before any process starts. *)
  let warm_fp =
    match Constructions.Registry.build warm_name warm_k with
    | Ok game -> Cache.Fingerprint.of_game game
    | Error e ->
      Printf.eprintf "cluster: cannot build warm construction: %s\n%!" e;
      exit 2
  in
  let ring = Router.Ring.create members in
  let warm_owners = Router.Ring.owners ring ~n:2 warm_fp in
  let victim_member = List.nth warm_owners 0 in
  let replica_member = List.nth warm_owners 1 in
  let victim = index_of_member victim_member in
  let chaos_target =
    if partition_p <= 0. then None
    else
      List.find_opt
        (fun i -> not (List.mem (List.nth members i) warm_owners))
        (List.init shards (fun i -> i))
  in
  let chaos_spec =
    Printf.sprintf "seed=%d,partition_p=%g,partition_ms=%d" (seed + 1)
      partition_p partition_ms
  in
  (* Fresh keys the victim owns: written through the router while the
     victim is dead, they land on the other owner and park a hint —
     real divergence for fsck to catch and the healing paths to close. *)
  let fresh_keys =
    let candidates =
      List.concat_map
        (fun name ->
          List.filter_map
            (fun k ->
              match Constructions.Registry.build name k with
              | Error _ -> None
              | Ok game ->
                let fp = Cache.Fingerprint.of_game game in
                if fp = warm_fp then None
                else
                  let owners = Router.Ring.owners ring ~n:2 fp in
                  if List.mem victim_member owners then
                    Some (name, k, fp, List.hd owners = victim_member)
                  else None)
            [ 2; 3 ])
        Constructions.Registry.names
    in
    let primaries = List.filter (fun (_, _, _, p) -> p) candidates in
    let pool = if primaries <> [] then primaries else candidates in
    List.filteri (fun i _ -> i < 3) pool
    |> List.map (fun (n, k, fp, _) -> (n, k, fp))
  in
  Printf.eprintf "cluster: %d shards in %s, ports %d-%d%s\n%!" shards dir
    base_port
    (base_port + shards - 1)
    (match chaos_target with
    | None -> ""
    | Some i -> Printf.sprintf ", partition chaos on shard-%d (%s)" i chaos_spec);
  let pids =
    Array.init shards (fun i ->
        let chaos = if chaos_target = Some i then Some chaos_spec else None in
        spawn_shard ?chaos ~dir ~port:ports.(i) ~index:i ())
  in
  let teardown_shards () =
    Array.iteri
      (fun i pid ->
        shutdown_endpoint (fun () ->
            Serve.Client.connect_tcp ~timeout_s:5. ports.(i));
        wait_exit pid)
      pids
  in
  let ready_deadline = Unix.gettimeofday () +. 30. in
  if
    not
      (Array.for_all
         (fun port -> wait_shard_ready ~port ~deadline_at:ready_deadline)
         ports)
  then begin
    Printf.eprintf "cluster: shards failed to become ready\n%!";
    teardown_shards ();
    1
  end
  else begin
    (* The router runs in-process (we assert on its behavior, not its
       process isolation) on a private socket.  A front cache of one
       entry forces nearly every soak request through real routing. *)
    let router_sock = Filename.concat dir "router.sock" in
    let hints_path = Filename.concat dir "hints.jsonl" in
    let config = { Router.Router.default_config with front_capacity = 1 } in
    let ready_m = Mutex.create () in
    let ready_c = Condition.create () in
    let ready = ref false in
    let router_th =
      Thread.create
        (fun () ->
          Router.Router.run
            ~on_ready:(fun () ->
              Mutex.lock ready_m;
              ready := true;
              Condition.broadcast ready_c;
              Mutex.unlock ready_m)
            ~metrics_out:router_metrics_out ~hints_path ~config ~members
            (Serve.Lineserver.Unix_socket router_sock))
        ()
    in
    Mutex.lock ready_m;
    while not !ready do
      Condition.wait ready_c ready_m
    done;
    Mutex.unlock ready_m;
    let connect_router () =
      Serve.Client.connect_unix ~timeout_s:30. router_sock
    in
    let connect_shard m () =
      Serve.Client.connect_tcp ~timeout_s:30. (port_of_member m)
    in
    let teardown () =
      shutdown_endpoint connect_router;
      Thread.join router_th;
      teardown_shards ()
    in
    match fetch_warm connect_router with
    | Error e ->
      Printf.eprintf "cluster: warm fetch failed: %s\n%!" e;
      teardown ();
      1
    | Ok (fp, bytes0, _) ->
      Printf.eprintf "cluster: warm key %s owned by %s (replica %s)\n%!" fp
        victim_member replica_member;
      let checks = ref [] in
      let check name ok =
        Printf.eprintf "cluster: check %s: %s\n%!" name
          (if ok then "ok" else "FAILED");
        checks := (name, ok) :: !checks
      in
      let identical label = function
        | Ok (fp', bytes, _) -> fp' = fp && bytes = bytes0
        | Error e ->
          Printf.eprintf "cluster: %s: %s\n%!" label e;
          false
      in
      check "fingerprint_offline_match" (fp = warm_fp);
      let t0 = Unix.gettimeofday () in
      let stop_at = t0 +. float_of_int seconds in
      let at frac = t0 +. (frac *. float_of_int seconds) in
      let sleep_until t =
        let dt = t -. Unix.gettimeofday () in
        if dt > 0. then Thread.delay dt
      in
      let store_path i = Filename.concat dir (Printf.sprintf "shard-%d.jsonl" i) in
      (* (name, k, fingerprint, canonical bytes) of every fresh key the
         router answered while the victim was dead. *)
      let issued_keys = ref [] in
      let timeline () =
        sleep_until (at 0.35);
        Printf.eprintf "cluster: kill -9 shard-%d\n%!" victim;
        (try Unix.kill pids.(victim) Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pids.(victim))
         with Unix.Unix_error _ -> ());
        (* Write the victim-owned fresh keys into the hole: the router
           fails over to the surviving owner and parks a hint. *)
        (* The router answers "no shard available" — a structured error
           the client rightly never retries — whenever a key's surviving
           owner is itself inside a partition window, so the harness
           retries past the window instead. *)
        let rec issue_fresh ~tries (name, k, key_fp) =
          match fetch_construction ~attempts:3 ~name ~k connect_router with
          | Ok (fp', bytes, _) when fp' = key_fp -> Some (name, k, key_fp, bytes)
          | Ok (fp', _, _) ->
            Printf.eprintf "cluster: fresh key %s/%d: fingerprint %s != %s\n%!"
              name k fp' key_fp;
            None
          | Error e ->
            if tries > 1 then begin
              Thread.delay 0.4;
              issue_fresh ~tries:(tries - 1) (name, k, key_fp)
            end
            else begin
              Printf.eprintf "cluster: fresh key %s/%d: %s\n%!" name k e;
              None
            end
        in
        issued_keys := List.filter_map (issue_fresh ~tries:10) fresh_keys;
        Printf.eprintf "cluster: issued %d fresh victim-owned keys\n%!"
          (List.length !issued_keys);
        (* Offline fsck over the store files must see the hole: the
           surviving owner logged the fresh keys, the victim's file
           cannot have them. *)
        Thread.delay 0.3;
        let offline =
          fsck_run ~ring_members:members ~replicas:2 ~repair:false
            (List.map
               (fun m ->
                 Router.Fsck.store_source ~name:m
                   (store_path (index_of_member m)))
               members)
        in
        check "divergence_appeared"
          (List.exists
             (fun (d : Router.Fsck.divergence) ->
               List.exists
                 (fun (_, _, key_fp, _) -> key_fp = d.Router.Fsck.key)
                 !issued_keys)
             offline.Router.Fsck.divergent
          || (!issued_keys = [] && offline.Router.Fsck.divergent <> []));
        sleep_until (at 0.5);
        check "router_failover_identity"
          (identical "router failover fetch" (fetch_warm connect_router));
        check "replica_holds_quorum_copy"
          (match fetch_warm ~attempts:5 (connect_shard replica_member) with
          | Ok (fp', bytes, resp) ->
            fp' = fp && bytes = bytes0 && response_cached resp
          | Error e ->
            Printf.eprintf "cluster: replica fetch: %s\n%!" e;
            false);
        sleep_until (at 0.65);
        Printf.eprintf "cluster: restart shard-%d\n%!" victim;
        pids.(victim) <- spawn_shard ~dir ~port:ports.(victim) ~index:victim ();
        check "victim_restarted"
          (wait_shard_ready ~port:ports.(victim)
             ~deadline_at:(Unix.gettimeofday () +. 20.))
      in
      let timeline_th = Thread.create timeline () in
      let tallies = Array.init clients (fun _ -> new_tally ()) in
      let workers =
        Array.mapi
          (fun i tally ->
            Thread.create
              (fun () ->
                soak_worker ~connect:connect_router ~stop_at
                  ~seed:(seed + (7919 * (i + 1)))
                  ~retries tally)
              ())
          tallies
      in
      Array.iter Thread.join workers;
      Thread.join timeline_th;
      check "router_identity_after_recovery"
        (identical "post-recovery router fetch" (fetch_warm connect_router));
      check "victim_store_identity"
        (identical "restarted victim fetch"
           (fetch_warm ~attempts:5 (connect_shard victim_member)));
      (* Heal the partition before judging convergence — a shard still
         refusing random connections would make online fsck flap. *)
      (match chaos_target with
      | None -> ()
      | Some i ->
        Printf.eprintf "cluster: healing partition chaos on shard-%d\n%!" i;
        shutdown_endpoint (fun () ->
            Serve.Client.connect_tcp ~timeout_s:5. ports.(i));
        wait_exit pids.(i);
        pids.(i) <- spawn_shard ~dir ~port:ports.(i) ~index:i ();
        ignore
          (wait_shard_ready ~port:ports.(i)
             ~deadline_at:(Unix.gettimeofday () +. 20.)));
      (* The hint drain on the victim's recovery and the anti-entropy
         loop should converge the cluster on their own; give them a
         window, then let an explicit fsck --repair pass close any
         tail before the zero-divergence gate. *)
      let online_sources () =
        List.map (fsck_exchange_source ~timeout_s:10.) members
      in
      let rec converge deadline =
        let r =
          fsck_run ~ring_members:members ~replicas:2 ~repair:false
            (online_sources ())
        in
        if r.Router.Fsck.unreachable = [] && r.Router.Fsck.divergent = []
        then r
        else if Unix.gettimeofday () > deadline then begin
          Printf.eprintf
            "cluster: %d divergent after self-healing window; running \
             repair pass\n%!"
            (List.length r.Router.Fsck.divergent);
          fsck_run ~ring_members:members ~replicas:2 ~repair:true
            (online_sources ())
        end
        else begin
          Thread.delay 0.5;
          converge deadline
        end
      in
      let final_fsck = converge (Unix.gettimeofday () +. 20.) in
      check "fsck_clean_after_repair"
        (final_fsck.Router.Fsck.unreachable = []
        && final_fsck.Router.Fsck.remaining = 0
        && final_fsck.Router.Fsck.repair_failures = []);
      (* The repaired copies must be the replicated bytes, served from
         the victim's own store (cached), not recomputed on demand. *)
      check "repaired_bytes_identical"
        (match !issued_keys with
        | [] -> false
        | issued ->
          List.for_all
            (fun (name, k, key_fp, bytes) ->
              match
                fetch_construction ~attempts:5 ~name ~k
                  (connect_shard victim_member)
              with
              | Ok (fp', bytes', resp) ->
                fp' = key_fp && bytes' = bytes && response_cached resp
              | Error e ->
                Printf.eprintf "cluster: victim fetch of %s/%d: %s\n%!" name
                  k e;
                false)
            issued);
      let fsck_json = Router.Fsck.report_to_json final_fsck in
      Out_channel.with_open_text fsck_report_out (fun oc ->
          Out_channel.output_string oc (Sink.to_string fsck_json ^ "\n"));
      teardown ();
      (* The metrics dump lands on router shutdown; the healing paths
         must actually have run, not just left the stores consistent. *)
      let router_repairs =
        match
          In_channel.with_open_text router_metrics_out In_channel.input_all
        with
        | exception Sys_error _ -> -1
        | content -> (
          match Sink.of_string (String.trim content) with
          | Error _ -> -1
          | Ok json -> (
            match
              Option.bind (Sink.member "router" json) (Sink.member "repairs")
            with
            | Some (Sink.Int n) -> n
            | _ -> -1))
      in
      check "router_repairs_recorded" (router_repairs > 0);
      let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
      let sent = sum (fun t -> t.sent)
      and answered = sum (fun t -> t.answered)
      and server_error = sum (fun t -> t.server_error)
      and shed = sum (fun t -> t.shed)
      and expired = sum (fun t -> t.expired)
      and torn = sum (fun t -> t.torn)
      and io_unresolved = sum (fun t -> t.io_unresolved)
      and malformed = sum (fun t -> t.malformed) in
      let all_checks_ok = List.for_all snd !checks in
      print_endline
        (Sink.to_string
           (Sink.Obj
              [
                ("record", Str "cluster_chaos_soak");
                ("shards", Int shards);
                ("clients", Int clients);
                ("seconds", Int seconds);
                ("killed", Str (Printf.sprintf "shard-%d" victim));
                ( "partitioned",
                  match chaos_target with
                  | None -> Sink.Null
                  | Some i -> Str (Printf.sprintf "shard-%d" i) );
                ("fresh_keys", Int (List.length !issued_keys));
                ("router_repairs", Int router_repairs);
                ("fsck", fsck_json);
                ("sent", Int sent);
                ("answered", Int answered);
                ("server_error", Int server_error);
                ("overloaded", Int shed);
                ("deadline_exceeded", Int expired);
                ("torn", Int torn);
                ("io_unresolved", Int io_unresolved);
                ("malformed", Int malformed);
                ( "checks",
                  Obj (List.rev_map (fun (n, ok) -> (n, Sink.Bool ok)) !checks)
                );
              ]));
      if malformed = 0 && io_unresolved = 0 && sent > 0 && all_checks_ok then 0
      else 1
  end

let chaos_entry socket tcp clients seconds retries seed cluster
    router_metrics_out partition_p partition_ms fsck_report_out =
  match cluster with
  | None -> chaos_soak socket tcp clients seconds retries seed
  | Some shards ->
    if shards < 2 then begin
      Printf.eprintf "error: --cluster needs at least 2 shards\n";
      2
    end
    else if partition_p < 0. || partition_p > 1. then begin
      Printf.eprintf "error: --partition-p must be a probability in [0,1]\n";
      2
    end
    else
      cluster_soak ~shards ~clients ~seconds ~retries ~seed ~router_metrics_out
        ~partition_p ~partition_ms ~fsck_report_out

(* --- cmdliner wiring --- *)

open Cmdliner

let k_arg default =
  Arg.(value & opt int default & info [ "k" ] ~docv:"K" ~doc:"Size parameter.")

(* Jobs counts are validated at parse time (>= 1, structured error),
   mirroring the serve protocol's [k] validation: a bad --jobs is a
   usage error on arrival, not a silent clamp inside the pool. *)
let jobs_conv =
  let parse s =
    match Engine.Pool.parse_jobs s with
    | Ok n -> Ok n
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value
    & opt jobs_conv (Engine.Pool.default_size ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the exhaustive solvers (defaults to \
           $(b,BI_JOBS) or 1; clamped to the core count). Results are \
           identical for any value.")

let mode_conv =
  let parse s =
    match Certify.Mode.of_string s with
    | Ok m -> Ok m
    | Error e -> Error (`Msg e)
  in
  let print ppf m = Format.pp_print_string ppf (Certify.Mode.to_string m) in
  Arg.conv (parse, print)

let mode_arg =
  Arg.(
    value
    & opt mode_conv Certify.Mode.default
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "Solver tier: $(b,exhaustive) enumerates every profile for exact \
           point values; $(b,certified) runs potential descent, \
           branch-and-bound and smoothness bounds, returning \
           machine-checked interval brackets that scale to k in the tens; \
           $(b,auto) picks by valid-profile count.")

let concept_conv =
  let parse s =
    match Correlated.Concept.of_string s with
    | Ok c -> Ok c
    | Error e -> Error (`Msg e)
  in
  let print ppf c = Format.pp_print_string ppf (Correlated.Concept.to_string c) in
  Arg.conv (parse, print)

let concept_arg =
  Arg.(
    value
    & opt concept_conv Correlated.Concept.default
    & info [ "concept" ] ~docv:"CONCEPT"
        ~doc:
          "Solution concept: $(b,nash) enumerates pure Bayesian-Nash \
           equilibria (the paper's eqP measures); $(b,cce) and $(b,comm) \
           solve the coarse-correlated / communication equilibrium \
           polytopes by exact-rational LP, returning best/worst social \
           cost with machine-checked dual certificates plus the \
           public-randomness values. Non-nash concepts ignore $(b,--mode).")

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"FILE"
        ~doc:
          "Content-addressed result cache backed by this append-only JSON-lines \
           file; created when missing, replayed and verified at startup.")

let socket_arg =
  Arg.(
    value
    & opt string default_socket
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT"
        ~doc:"Listen on (connect to) loopback TCP instead of the Unix socket.")

let construction_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:Constructions.Registry.describe)
  in
  let json_arg =
    Arg.(
      value
      & flag
      & info [ "json" ]
          ~doc:"Emit the full analysis as a single JSON object on stdout.")
  in
  Cmd.v
    (Cmd.info "construction" ~doc:"Exact ignorance measures of a paper construction")
    Term.(
      const construction $ name_arg $ k_arg 4 $ jobs_arg $ json_arg $ cache_arg
      $ mode_arg $ concept_arg)

let adversary_cmd =
  let levels =
    Arg.(value & opt int 3 & info [ "l"; "levels" ] ~docv:"L" ~doc:"Diamond level.")
  in
  let samples =
    Arg.(value & opt int 100 & info [ "s"; "samples" ] ~docv:"N" ~doc:"Monte-Carlo samples.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  Cmd.v
    (Cmd.info "adversary" ~doc:"Online Steiner tree vs the diamond adversary")
    Term.(const adversary $ levels $ samples $ seed)

let sec4_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Construction name (as in $(b,construction)).")
  in
  let iterations =
    Arg.(value & opt int 2000 & info [ "iterations" ] ~docv:"N" ~doc:"Fictitious-play rounds.")
  in
  Cmd.v
    (Cmd.info "sec4" ~doc:"Public random bits vs the common prior (Section 4)")
    Term.(const sec4 $ name_arg $ k_arg 3 $ iterations)

let plane_cmd =
  let p =
    Arg.(value & opt int 5 & info [ "p" ] ~docv:"P" ~doc:"Prime order.")
  in
  Cmd.v
    (Cmd.info "plane" ~doc:"Affine-plane incidence sanity check")
    Term.(const plane $ p)

let retries_arg default =
  Arg.(
    value
    & opt int default
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Total attempts per request: transport failures and overload \
           responses are retried with capped exponential backoff and \
           deterministic jitter. 0 disables retrying.")

let retry_base_arg =
  Arg.(
    value
    & opt int 25
    & info [ "retry-base-ms" ] ~docv:"MS"
        ~doc:"First retry backoff; doubles per attempt, capped at 2 s.")

let serve_cmd =
  let capacity =
    Arg.(
      value
      & opt int 4096
      & info [ "capacity" ] ~docv:"N" ~doc:"In-memory LRU capacity (entries).")
  in
  let metrics_out =
    Arg.(
      value
      & opt string "SERVE_metrics.json"
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"File receiving the final metrics dump on shutdown.")
  in
  let deadline =
    Arg.(
      value
      & opt int 0
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "Per-request wall-clock budget: caps any $(b,deadline_ms) a \
             request carries and applies to requests that carry none. \
             Expired requests get a structured $(b,deadline_exceeded) \
             response. 0 means unlimited.")
  in
  let max_concurrent =
    Arg.(
      value
      & opt int Serve.Server.default_limits.Serve.Server.max_concurrent
      & info [ "max-concurrent" ] ~docv:"N"
          ~doc:"Analyses computing at once; further ones queue.")
  in
  let max_queue =
    Arg.(
      value
      & opt int Serve.Server.default_limits.Serve.Server.max_queue
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Queued analyses beyond which requests are shed immediately \
             with a structured $(b,overloaded) response.")
  in
  let idle_timeout =
    Arg.(
      value
      & opt float 0.
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close connections idle for this long. 0 disables.")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            "Deterministic fault injection, e.g. \
             $(b,seed=1,delay_p=0.2,delay_ms=40,drop_p=0.05,truncate_p=0.05,corrupt_store_p=0.1). \
             Defaults to the $(b,BI_CHAOS) environment variable. Never use \
             in production.")
  in
  let shard_id =
    Arg.(
      value
      & opt (some string) None
      & info [ "shard-id" ] ~docv:"ID"
          ~doc:
            "Name this node carries as a cluster shard; reported by the \
             $(b,health) and $(b,stats) verbs so a router can tell its \
             members apart.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Analysis server: cached exact ignorance measures over a socket")
    Term.(
      const serve $ socket_arg $ tcp_arg $ cache_arg $ capacity $ metrics_out
      $ jobs_arg $ deadline $ max_concurrent $ max_queue $ idle_timeout
      $ chaos $ shard_id)

let router_cmd =
  let members =
    Arg.(
      value
      & opt (some string) None
      & info [ "members" ] ~docv:"LIST"
          ~doc:
            "Comma-separated shard addresses: a socket path, a bare port, \
             or $(b,127.0.0.1:port).")
  in
  let members_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "members-file" ] ~docv:"FILE"
          ~doc:
            "File holding the member list (commas or whitespace); re-read \
             on SIGHUP to change membership without a restart.")
  in
  let replicas =
    Arg.(
      value
      & opt int Router.Router.default_config.Router.Router.replicas
      & info [ "replicas" ] ~docv:"N" ~doc:"Owners per key on the hash ring.")
  in
  let quorum =
    Arg.(
      value
      & opt int Router.Router.default_config.Router.Router.quorum
      & info [ "quorum" ] ~docv:"W"
          ~doc:"Copies a cache write must reach (at most $(b,--replicas)).")
  in
  let front_capacity =
    Arg.(
      value
      & opt int Router.Router.default_config.Router.Router.front_capacity
      & info [ "front-capacity" ] ~docv:"N"
          ~doc:"Router-side answer cache (entries); also the warm set \
                pushed to recovering shards.")
  in
  let metrics_out =
    Arg.(
      value
      & opt string "ROUTER_metrics.json"
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"File receiving the final router metrics dump on shutdown.")
  in
  Cmd.v
    (Cmd.info "router"
       ~doc:
         "Cluster front-end: consistent-hashes fingerprints across shards, \
          replicates writes to a quorum, fails over on overload and loss, \
          probes health and warms recovered members")
    Term.(
      const router $ socket_arg $ tcp_arg $ members $ members_file $ replicas
      $ quorum $ front_capacity $ metrics_out)

let query_cmd =
  let verb_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"VERB"
          ~doc:
            "One of: $(b,construction) NAME (named paper game), $(b,analyze) \
             (game description JSON on stdin), $(b,stats), $(b,health), \
             $(b,shutdown).")
  in
  let name_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"NAME" ~doc:"Construction name for the construction verb.")
  in
  let deadline =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "Attach a $(b,deadline_ms) budget: the server answers \
             $(b,deadline_exceeded) instead of running past it.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Send one request to a running analysis server")
    Term.(
      const query $ socket_arg $ tcp_arg $ verb_arg $ name_arg
      $ k_arg Serve.Protocol.default_k $ deadline $ retries_arg 0
      $ retry_base_arg $ mode_arg $ concept_arg)

let fsck_cmd =
  let members =
    Arg.(
      value
      & opt (some string) None
      & info [ "members" ] ~docv:"LIST"
          ~doc:
            "Comma-separated shard addresses to check live over the \
             cluster-internal $(b,digest)/$(b,pull) verbs; with \
             $(b,--store), ring names for the store files instead \
             (paired positionally).")
  in
  let members_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "members-file" ] ~docv:"FILE"
          ~doc:"File holding the member list (commas or whitespace).")
  in
  let stores =
    Arg.(
      value
      & opt_all string []
      & info [ "store" ] ~docv:"FILE"
          ~doc:
            "Offline mode: check these append-only store files directly \
             (repeatable). Without $(b,--members) the paths themselves \
             name the ring and full replication is assumed.")
  in
  let replicas =
    Arg.(
      value
      & opt (some int) None
      & info [ "replicas" ] ~docv:"N"
          ~doc:
            "Owners per key on the hash ring; must match the router's. \
             Defaults to the router default, or to every source in \
             stores-only mode.")
  in
  let repair =
    Arg.(
      value
      & flag
      & info [ "repair" ]
          ~doc:
            "Converge: push the authoritative copy (the holder earliest \
             in ring-owner order) to every owner that lacks it or \
             disagrees, through the ordinary $(b,put) path, then \
             re-measure.")
  in
  let report_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Also write the JSON report to $(docv).")
  in
  let timeout =
    Arg.(
      value
      & opt float 30.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-exchange read timeout for live shards.")
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Replica consistency check: compare every key's copies across \
          its ring owners (live shards or store files), report \
          divergences per bucket, optionally repair; exits 0 when \
          consistent, 1 on divergence or failed repair, 2 on usage \
          errors or unreachable sources")
    Term.(
      const fsck $ members $ members_file $ stores $ replicas $ repair
      $ report_file $ timeout)

let chaos_cmd =
  let clients =
    Arg.(
      value
      & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent soak clients.")
  in
  let seconds =
    Arg.(
      value
      & opt int 10
      & info [ "seconds" ] ~docv:"S" ~doc:"Soak duration.")
  in
  let seed =
    Arg.(
      value
      & opt int 0
      & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed for the request mix.")
  in
  let cluster =
    Arg.(
      value
      & opt ~vopt:(Some 3) (some int) None
      & info [ "cluster" ] ~docv:"N"
          ~doc:
            "Cluster mode: spawn $(docv) local shards (default 3) and a \
             router, soak through the router, kill -9 the shard owning a \
             warm key mid-soak, restart it, and additionally require warm \
             answers to stay byte-identical across the failover.")
  in
  let router_metrics_out =
    Arg.(
      value
      & opt string "ROUTER_metrics.json"
      & info [ "router-metrics-out" ] ~docv:"FILE"
          ~doc:"Cluster mode: file receiving the router metrics dump.")
  in
  let partition_p =
    Arg.(
      value
      & opt float 0.
      & info [ "partition-p" ] ~docv:"P"
          ~doc:
            "Cluster mode: give one non-owner shard partition chaos — \
             each accepted connection opens, with probability $(docv), a \
             window during which the shard refuses every connection. \
             The soak then requires the healing paths to converge: \
             divergence must appear while the victim is down and \
             $(b,bi fsck) must report zero divergent keys afterwards.")
  in
  let partition_ms =
    Arg.(
      value
      & opt int 300
      & info [ "partition-ms" ] ~docv:"MS"
          ~doc:"Cluster mode: partition window length.")
  in
  let fsck_report_out =
    Arg.(
      value
      & opt string "FSCK_report.json"
      & info [ "fsck-report-out" ] ~docv:"FILE"
          ~doc:"Cluster mode: file receiving the final fsck report.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Soak a running server with a deterministic mix of valid, doomed \
          and garbage requests; exits non-zero if any exchange ends in a \
          hang, a malformed response, or an unrecovered transport failure")
    Term.(
      const chaos_entry $ socket_arg $ tcp_arg $ clients $ seconds
      $ retries_arg 8 $ seed $ cluster $ router_metrics_out $ partition_p
      $ partition_ms $ fsck_report_out)

let () =
  (* Surface a malformed BI_JOBS before any command runs off jobs = 1. *)
  (match Engine.Pool.env_jobs () with
  | Ok _ -> ()
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    exit 2);
  let doc = "explorer for the Bayesian-ignorance reproduction" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "bi" ~doc)
          [
            construction_cmd; adversary_cmd; sec4_cmd; plane_cmd; serve_cmd;
            router_cmd; query_cmd; chaos_cmd; fsck_cmd;
          ]))

(* Command-line explorer for the Bayesian-ignorance reproduction.

   $ bi construction anshelevich -k 5      # measures of a paper game
   $ bi adversary -l 4 -s 100              # diamond online adversary
   $ bi sec4 anshelevich -k 3              # public-randomness analysis
   $ bi plane -p 5                         # affine-plane sanity check
   $ bi serve --socket bi.sock             # analysis server
   $ bi query construction diamond -k 3    # ask a running server *)

open Bayesian_ignorance
open Num
module Bncs = Ncs.Bayesian_ncs
module Measures = Bayes.Measures
module Sink = Engine.Sink

let print_report report =
  print_endline
    (Report.table ~header:[ "quantity"; "value" ] (Report.measures_rows report));
  let ratios = Measures.ratios_of_report report in
  print_newline ();
  print_endline
    (Report.table
       ~header:[ "ratio"; "value" ]
       [
         [ "optP/optC"; Report.ratio_cell ratios.Measures.r_opt ];
         [ "best-eqP/best-eqC"; Report.ratio_cell ratios.Measures.r_best_eq ];
         [ "worst-eqP/worst-eqC"; Report.ratio_cell ratios.Measures.r_worst_eq ];
       ]);
  print_newline ();
  Printf.printf "observation 2.2 (optC <= optP <= best-eqP <= worst-eqP): %s\n"
    (Report.verdict (Measures.observation_2_2_holds report))

let ratio_json = function
  | None -> Sink.Null
  | Some r -> Sink.Str (Rat.to_string r)

let construction_json ~name ~k ~fingerprint ~cached analysis =
  let report = analysis.Bncs.report in
  let ratios = Measures.ratios_of_report report in
  Sink.Obj
    [
      ("record", Str "construction");
      ("construction", Str name);
      ("k", Int k);
      ("fingerprint", Str fingerprint);
      ("cached", Bool cached);
      ("analysis", Cache.Codec.analysis_to_json analysis);
      ( "ratios",
        Obj
          [
            ("opt", ratio_json ratios.Measures.r_opt);
            ("best_eq", ratio_json ratios.Measures.r_best_eq);
            ("worst_eq", ratio_json ratios.Measures.r_worst_eq);
          ] );
      ("observation_2_2", Bool (Measures.observation_2_2_holds report));
    ]

(* Unknown names exit 1, a [k] the family rejects exits 2. *)
let build_or_exit name k =
  match Constructions.Registry.build name k with
  | Ok game -> game
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit (if List.mem name Constructions.Registry.names then 2 else 1)

let construction name k jobs json cache_path =
  Engine.Pool.with_pool (Engine.Pool.recommended_jobs jobs) (fun pool ->
      let game, build_span =
        Engine.Timer.timed (fun () -> build_or_exit name k)
      in
      let fingerprint = Cache.Fingerprint.of_game game in
      let cache =
        Option.map (fun path -> Cache.Service.create ~store_path:path ()) cache_path
      in
      let (analysis, cached), solve_span =
        Engine.Timer.timed (fun () ->
            match cache with
            | None -> (Bncs.analyze ~pool game, false)
            | Some c ->
              Cache.Service.analysis c fingerprint (fun () ->
                  Bncs.analyze ~pool game))
      in
      Option.iter Cache.Service.close cache;
      if json then
        print_endline
          (Sink.to_string (construction_json ~name ~k ~fingerprint ~cached analysis))
      else begin
        Printf.printf "construction %s, parameter %d\n\n" name k;
        print_report analysis.Bncs.report;
        Format.printf "@.[build: %a; solve: %a%s]@." Engine.Timer.pp_seconds
          build_span.Engine.Timer.seconds Engine.Timer.pp_seconds
          solve_span.Engine.Timer.seconds
          (if cached then " (cached)" else "")
      end);
  0

let adversary levels samples seed =
  let d = Steiner.Diamond.build levels in
  let g = Steiner.Diamond.graph d in
  Printf.printf "diamond level %d: %d vertices, %d edges, OPT = 1 always\n\n"
    levels
    (Graphs.Graph.n_vertices g)
    (Graphs.Graph.n_edges g);
  let algorithms =
    [ Steiner.Online.greedy; Steiner.Online.oblivious_shortest_path ]
  in
  List.iter
    (fun alg ->
      if levels <= 3 then
        Printf.printf "%-25s E[ALG] = %s (exact)\n" alg.Steiner.Online.name
          (Rat.to_string (Steiner.Diamond.expected_cost d alg))
      else begin
        let rng = Random.State.make [| seed |] in
        Printf.printf "%-25s E[ALG] ~ %.4f (%d samples)\n" alg.Steiner.Online.name
          (Steiner.Diamond.mean_cost rng ~samples d alg)
          samples
      end)
    algorithms;
  0

let sec4 name k iterations =
  let game = build_or_exit name k in
  let phi =
    try Minimax.Section4.of_bayesian_ncs game with
    | Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  in
  Printf.printf "phi: %d strategy profiles x %d type profiles\n"
    (Minimax.Section4.n_strategies phi)
    (Minimax.Section4.n_type_profiles phi);
  let sol = Minimax.Section4.r_tilde ~iterations phi in
  Printf.printf "R~(phi) in [%s, %s]\n"
    (Rat.to_string sol.Minimax.Matrix_game.lower)
    (Rat.to_string sol.Minimax.Matrix_game.upper);
  let q = sol.Minimax.Matrix_game.row_strategy in
  Printf.printf "public-randomness guarantee: %s\n"
    (Rat.to_string (Minimax.Section4.randomized_guarantee phi q));
  let lo, hi = Minimax.Section4.r_star_bracket ~iterations:(iterations / 2) phi in
  Printf.printf "independent R(phi) bracket: [%s, %s]\n" (Rat.to_string lo)
    (Rat.to_string hi);
  0

let plane p =
  match Constructions.Affine_plane.make p with
  | plane ->
    Printf.printf "AG(2, %d): %d points, %d lines; axioms: %s\n" p
      (Constructions.Affine_plane.n_points plane)
      (Constructions.Affine_plane.n_lines plane)
      (Report.verdict (Constructions.Affine_plane.check_axioms plane));
    0
  | exception Invalid_argument msg ->
    Printf.eprintf "error: %s\n" msg;
    2

(* --- server / client --- *)

let default_socket = "bi.sock"

let serve socket tcp cache_path capacity metrics_out jobs deadline
    max_concurrent max_queue idle_timeout chaos_spec =
  let chaos_cfg =
    match chaos_spec with
    | Some spec -> Serve.Chaos.parse spec
    | None -> Serve.Chaos.of_env ()
  in
  match chaos_cfg with
  | Error e ->
    Printf.eprintf "error: chaos spec: %s\n" e;
    2
  | Ok cfg -> (
    let chaos =
      if Serve.Chaos.is_enabled cfg then Some (Serve.Chaos.create cfg) else None
    in
    let limits =
      {
        Serve.Server.max_concurrent;
        max_queue;
        idle_timeout_s = idle_timeout;
        max_deadline_ms = deadline;
      }
    in
    let listen =
      match tcp with
      | Some port -> Serve.Server.Tcp port
      | None -> Serve.Server.Unix_socket socket
    in
    let cache = Cache.Service.create ~capacity ?store_path:cache_path () in
    let stats0 = Cache.Service.stats cache in
    match
      Engine.Pool.with_pool (Engine.Pool.recommended_jobs jobs) (fun pool ->
          (* The banner doubles as the readiness signal for scripts
             tailing our output, so print it only once the listener is
             actually accepting. *)
          let on_ready () =
            (match listen with
            | Serve.Server.Unix_socket path ->
              Printf.printf "bi serve: unix socket %s" path
            | Serve.Server.Tcp port ->
              Printf.printf "bi serve: tcp 127.0.0.1:%d" port);
            if
              stats0.Cache.Service.loaded > 0
              || stats0.Cache.Service.invalid > 0
              || stats0.Cache.Service.quarantined > 0
            then
              Printf.printf
                " (store: %d entries replayed, %d invalid, %d quarantined)"
                stats0.Cache.Service.loaded stats0.Cache.Service.invalid
                stats0.Cache.Service.quarantined;
            if chaos <> None then Printf.printf " (chaos on)";
            print_newline ();
            flush stdout
          in
          Serve.Server.run ~pool ~metrics_out ~on_ready ~limits ?chaos ~cache
            listen)
    with
    | () ->
      Cache.Service.close cache;
      Printf.printf "bi serve: stopped; metrics in %s\n" metrics_out;
      0
    | exception Failure msg ->
      Cache.Service.close cache;
      Printf.eprintf "error: %s\n" msg;
      1)

let retry_of ~retries ~retry_base_ms ~seed =
  if retries <= 0 then None
  else
    Some
      {
        Serve.Client.default_retry with
        attempts = retries;
        base_delay_ms = retry_base_ms;
        seed;
      }

let query socket tcp verb name k deadline retries retry_base_ms =
  let deadline_field =
    match deadline with
    | None -> []
    | Some ms -> [ ("deadline_ms", Sink.Int ms) ]
  in
  let request =
    match verb with
    | "construction" -> (
      match name with
      | Some name ->
        Ok (Serve.Protocol.construction_request ?deadline_ms:deadline ~name ~k ())
      | None -> Error "query construction: NAME argument required")
    | "analyze" -> (
      match Sink.of_string (In_channel.input_all stdin) with
      | Ok game ->
        Ok
          (Sink.Obj
             ([ ("op", Sink.Str "analyze"); ("game", game) ] @ deadline_field))
      | Error e -> Error (Printf.sprintf "game description on stdin: %s" e))
    | "stats" -> Ok Serve.Protocol.stats_request
    | "shutdown" -> Ok Serve.Protocol.shutdown_request
    | v ->
      Error
        (Printf.sprintf
           "unknown verb %S (try: construction, analyze, stats, shutdown)" v)
  in
  match request with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    2
  | Ok request -> (
    match
      match tcp with
      | Some port -> Serve.Client.connect_tcp port
      | None -> Serve.Client.connect_unix socket
    with
    | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "error: cannot connect to server: %s\n"
        (Unix.error_message err);
      1
    | client -> (
      let retry = retry_of ~retries ~retry_base_ms ~seed:0 in
      let response = Serve.Client.request ?retry client request in
      Serve.Client.close client;
      match response with
      | Error f ->
        Printf.eprintf "error: %s\n" (Serve.Client.failure_to_string f);
        1
      | Ok response ->
        print_endline (Sink.to_string response);
        if Serve.Protocol.is_ok response then 0 else 1))

(* --- chaos soak --- *)

(* Per-worker outcome counts; summed after the join, so no locking. *)
type soak_tally = {
  mutable sent : int;
  mutable answered : int;  (* ok responses *)
  mutable server_error : int;  (* structured "error" responses *)
  mutable shed : int;  (* final response was overloaded *)
  mutable expired : int;  (* final response was deadline_exceeded *)
  mutable torn : int;  (* raw probe hit an injected transport fault *)
  mutable io_unresolved : int;  (* retries exhausted without a response *)
  mutable malformed : int;  (* server spoke non-protocol — must stay 0 *)
}

let new_tally () =
  {
    sent = 0;
    answered = 0;
    server_error = 0;
    shed = 0;
    expired = 0;
    torn = 0;
    io_unresolved = 0;
    malformed = 0;
  }

let garbage_probes =
  [|
    "{\"op\": \"analyze\", garbage";
    "]]]]";
    "{\"op\": 42}";
    "{\"op\": \"construction\", \"name\": 7}";
    String.make 4096 '[';
  |]

(* One soak worker: a deterministic stream of requests — cached and
   uncached constructions, stats, unknown names, deadline-doomed
   requests and raw garbage — against a retrying client that must end
   every exchange in a valid answer or a structured error. *)
let soak_worker ~connect ~stop_at ~seed ~retries tally =
  let retry = { Serve.Client.default_retry with attempts = max 1 retries; seed } in
  let counter = ref 0 in
  let draw () =
    let u = Serve.Chaos.unit_float ~seed ~counter:!counter in
    incr counter;
    u
  in
  let rec connect_retrying attempts =
    match connect () with
    | client -> client
    | exception Unix.Unix_error (err, _, _) when attempts > 1 ->
      ignore err;
      Thread.delay 0.1;
      connect_retrying (attempts - 1)
  in
  let client = ref (connect_retrying 20) in
  let fresh () =
    Serve.Client.close !client;
    client := connect_retrying 20
  in
  let classify = function
    | Ok resp -> (
      match Serve.Protocol.response_code resp with
      | Some "ok" -> tally.answered <- tally.answered + 1
      | Some "overloaded" -> tally.shed <- tally.shed + 1
      | Some "deadline_exceeded" -> tally.expired <- tally.expired + 1
      | Some _ -> tally.server_error <- tally.server_error + 1
      | None -> tally.malformed <- tally.malformed + 1)
    | Error (Serve.Client.Io _) ->
      tally.io_unresolved <- tally.io_unresolved + 1
    | Error (Serve.Client.Malformed _) -> tally.malformed <- tally.malformed + 1
    | Error Serve.Client.Closed ->
      tally.io_unresolved <- tally.io_unresolved + 1
  in
  while Unix.gettimeofday () < stop_at do
    let u = draw () in
    tally.sent <- tally.sent + 1;
    if u < 0.55 then begin
      let name = if draw () < 0.5 then "gworst-bliss" else "gworst-curse" in
      let k = if draw () < 0.5 then 2 else 3 in
      let deadline_ms = if draw () < 0.15 then Some 1 else None in
      classify
        (Serve.Client.request ~retry !client
           (Serve.Protocol.construction_request ?deadline_ms ~name ~k ()))
    end
    else if u < 0.7 then
      classify (Serve.Client.request ~retry !client Serve.Protocol.stats_request)
    else if u < 0.85 then
      classify
        (Serve.Client.request ~retry !client
           (Serve.Protocol.construction_request ~name:"no-such-family" ~k:2 ()))
    else begin
      (* Raw garbage probe, no retry: the server must answer a parseable
         structured error and keep the connection usable — unless a
         transport fault tore the exchange, which we count separately
         and recover from by reconnecting. *)
      let probe =
        garbage_probes.(int_of_float (draw () *. float_of_int (Array.length garbage_probes)))
      in
      match Serve.Client.raw_request !client probe with
      | Ok line -> (
        match Sink.of_string line with
        | Ok resp -> (
          match Serve.Protocol.response_code resp with
          | Some _ -> tally.server_error <- tally.server_error + 1
          | None -> tally.malformed <- tally.malformed + 1)
        | Error _ ->
          tally.torn <- tally.torn + 1;
          fresh ())
      | Error Serve.Client.Closed ->
        tally.sent <- tally.sent - 1;
        fresh ()
      | Error _ ->
        tally.torn <- tally.torn + 1;
        fresh ()
    end
  done;
  Serve.Client.close !client

let chaos_soak socket tcp clients seconds retries seed =
  let connect () =
    match tcp with
    | Some port -> Serve.Client.connect_tcp ~timeout_s:30. port
    | None -> Serve.Client.connect_unix ~timeout_s:30. socket
  in
  let stop_at = Unix.gettimeofday () +. float_of_int seconds in
  let tallies = Array.init clients (fun _ -> new_tally ()) in
  let workers =
    Array.mapi
      (fun i tally ->
        Thread.create
          (fun () ->
            soak_worker ~connect ~stop_at ~seed:(seed + (7919 * (i + 1)))
              ~retries tally)
          ())
      tallies
  in
  Array.iter Thread.join workers;
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let sent = sum (fun t -> t.sent)
  and answered = sum (fun t -> t.answered)
  and server_error = sum (fun t -> t.server_error)
  and shed = sum (fun t -> t.shed)
  and expired = sum (fun t -> t.expired)
  and torn = sum (fun t -> t.torn)
  and io_unresolved = sum (fun t -> t.io_unresolved)
  and malformed = sum (fun t -> t.malformed) in
  print_endline
    (Sink.to_string
       (Sink.Obj
          [
            ("record", Str "chaos_soak");
            ("clients", Int clients);
            ("seconds", Int seconds);
            ("sent", Int sent);
            ("answered", Int answered);
            ("server_error", Int server_error);
            ("overloaded", Int shed);
            ("deadline_exceeded", Int expired);
            ("torn", Int torn);
            ("io_unresolved", Int io_unresolved);
            ("malformed", Int malformed);
          ]));
  if malformed = 0 && io_unresolved = 0 && sent > 0 then 0 else 1

(* --- cmdliner wiring --- *)

open Cmdliner

let k_arg default =
  Arg.(value & opt int default & info [ "k" ] ~docv:"K" ~doc:"Size parameter.")

let jobs_arg =
  Arg.(
    value
    & opt int (Engine.Pool.default_size ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the exhaustive solvers (defaults to \
           $(b,BI_JOBS) or 1; clamped to the core count). Results are \
           identical for any value.")

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"FILE"
        ~doc:
          "Content-addressed result cache backed by this append-only JSON-lines \
           file; created when missing, replayed and verified at startup.")

let socket_arg =
  Arg.(
    value
    & opt string default_socket
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT"
        ~doc:"Listen on (connect to) loopback TCP instead of the Unix socket.")

let construction_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:Constructions.Registry.describe)
  in
  let json_arg =
    Arg.(
      value
      & flag
      & info [ "json" ]
          ~doc:"Emit the full analysis as a single JSON object on stdout.")
  in
  Cmd.v
    (Cmd.info "construction" ~doc:"Exact ignorance measures of a paper construction")
    Term.(const construction $ name_arg $ k_arg 4 $ jobs_arg $ json_arg $ cache_arg)

let adversary_cmd =
  let levels =
    Arg.(value & opt int 3 & info [ "l"; "levels" ] ~docv:"L" ~doc:"Diamond level.")
  in
  let samples =
    Arg.(value & opt int 100 & info [ "s"; "samples" ] ~docv:"N" ~doc:"Monte-Carlo samples.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  Cmd.v
    (Cmd.info "adversary" ~doc:"Online Steiner tree vs the diamond adversary")
    Term.(const adversary $ levels $ samples $ seed)

let sec4_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Construction name (as in $(b,construction)).")
  in
  let iterations =
    Arg.(value & opt int 2000 & info [ "iterations" ] ~docv:"N" ~doc:"Fictitious-play rounds.")
  in
  Cmd.v
    (Cmd.info "sec4" ~doc:"Public random bits vs the common prior (Section 4)")
    Term.(const sec4 $ name_arg $ k_arg 3 $ iterations)

let plane_cmd =
  let p =
    Arg.(value & opt int 5 & info [ "p" ] ~docv:"P" ~doc:"Prime order.")
  in
  Cmd.v
    (Cmd.info "plane" ~doc:"Affine-plane incidence sanity check")
    Term.(const plane $ p)

let retries_arg default =
  Arg.(
    value
    & opt int default
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Total attempts per request: transport failures and overload \
           responses are retried with capped exponential backoff and \
           deterministic jitter. 0 disables retrying.")

let retry_base_arg =
  Arg.(
    value
    & opt int 25
    & info [ "retry-base-ms" ] ~docv:"MS"
        ~doc:"First retry backoff; doubles per attempt, capped at 2 s.")

let serve_cmd =
  let capacity =
    Arg.(
      value
      & opt int 4096
      & info [ "capacity" ] ~docv:"N" ~doc:"In-memory LRU capacity (entries).")
  in
  let metrics_out =
    Arg.(
      value
      & opt string "SERVE_metrics.json"
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"File receiving the final metrics dump on shutdown.")
  in
  let deadline =
    Arg.(
      value
      & opt int 0
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "Per-request wall-clock budget: caps any $(b,deadline_ms) a \
             request carries and applies to requests that carry none. \
             Expired requests get a structured $(b,deadline_exceeded) \
             response. 0 means unlimited.")
  in
  let max_concurrent =
    Arg.(
      value
      & opt int Serve.Server.default_limits.Serve.Server.max_concurrent
      & info [ "max-concurrent" ] ~docv:"N"
          ~doc:"Analyses computing at once; further ones queue.")
  in
  let max_queue =
    Arg.(
      value
      & opt int Serve.Server.default_limits.Serve.Server.max_queue
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Queued analyses beyond which requests are shed immediately \
             with a structured $(b,overloaded) response.")
  in
  let idle_timeout =
    Arg.(
      value
      & opt float 0.
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close connections idle for this long. 0 disables.")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            "Deterministic fault injection, e.g. \
             $(b,seed=1,delay_p=0.2,delay_ms=40,drop_p=0.05,truncate_p=0.05,corrupt_store_p=0.1). \
             Defaults to the $(b,BI_CHAOS) environment variable. Never use \
             in production.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Analysis server: cached exact ignorance measures over a socket")
    Term.(
      const serve $ socket_arg $ tcp_arg $ cache_arg $ capacity $ metrics_out
      $ jobs_arg $ deadline $ max_concurrent $ max_queue $ idle_timeout
      $ chaos)

let query_cmd =
  let verb_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"VERB"
          ~doc:
            "One of: $(b,construction) NAME (named paper game), $(b,analyze) \
             (game description JSON on stdin), $(b,stats), $(b,shutdown).")
  in
  let name_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"NAME" ~doc:"Construction name for the construction verb.")
  in
  let deadline =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "Attach a $(b,deadline_ms) budget: the server answers \
             $(b,deadline_exceeded) instead of running past it.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Send one request to a running analysis server")
    Term.(
      const query $ socket_arg $ tcp_arg $ verb_arg $ name_arg
      $ k_arg Serve.Protocol.default_k $ deadline $ retries_arg 0
      $ retry_base_arg)

let chaos_cmd =
  let clients =
    Arg.(
      value
      & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent soak clients.")
  in
  let seconds =
    Arg.(
      value
      & opt int 10
      & info [ "seconds" ] ~docv:"S" ~doc:"Soak duration.")
  in
  let seed =
    Arg.(
      value
      & opt int 0
      & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed for the request mix.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Soak a running server with a deterministic mix of valid, doomed \
          and garbage requests; exits non-zero if any exchange ends in a \
          hang, a malformed response, or an unrecovered transport failure")
    Term.(
      const chaos_soak $ socket_arg $ tcp_arg $ clients $ seconds
      $ retries_arg 8 $ seed)

let () =
  let doc = "explorer for the Bayesian-ignorance reproduction" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "bi" ~doc)
          [
            construction_cmd; adversary_cmd; sec4_cmd; plane_cmd; serve_cmd;
            query_cmd; chaos_cmd;
          ]))

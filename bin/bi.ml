(* Command-line explorer for the Bayesian-ignorance reproduction.

   $ bi construction anshelevich -k 5      # measures of a paper game
   $ bi adversary -l 4 -s 100              # diamond online adversary
   $ bi sec4 anshelevich -k 3              # public-randomness analysis
   $ bi plane -p 5                         # affine-plane sanity check *)

open Bayesian_ignorance
open Num
module Bncs = Ncs.Bayesian_ncs
module Measures = Bayes.Measures

let print_measures ~pool game =
  let report, solve_dt =
    Engine.Timer.timed (fun () -> Bncs.measures_exhaustive ~pool game)
  in
  print_endline
    (Report.table ~header:[ "quantity"; "value" ] (Report.measures_rows report));
  let ratios = Measures.ratios_of_report report in
  print_newline ();
  print_endline
    (Report.table
       ~header:[ "ratio"; "value" ]
       [
         [ "optP/optC"; Report.ratio_cell ratios.Measures.r_opt ];
         [ "best-eqP/best-eqC"; Report.ratio_cell ratios.Measures.r_best_eq ];
         [ "worst-eqP/worst-eqC"; Report.ratio_cell ratios.Measures.r_worst_eq ];
       ]);
  print_newline ();
  Printf.printf "observation 2.2 (optC <= optP <= best-eqP <= worst-eqP): %s\n"
    (Report.verdict (Measures.observation_2_2_holds report));
  solve_dt

let build_construction name k =
  match name with
  | "anshelevich" -> Constructions.Anshelevich_game.game k
  | "gworst-bliss" -> Constructions.Gworst_game.bliss_game k
  | "gworst-curse" -> Constructions.Gworst_game.curse_game k
  | "affine" -> Constructions.Affine_game.game k
  | "diamond" -> snd (Constructions.Diamond_game.game k)
  | _ ->
    Printf.eprintf
      "unknown construction %S (try: anshelevich, gworst-bliss, gworst-curse, affine, diamond)\n"
      name;
    exit 1

let construction name k jobs =
  Printf.printf "construction %s, parameter %d\n\n" name k;
  Engine.Pool.with_pool (Engine.Pool.recommended_jobs jobs) (fun pool ->
      try
        let game, build_dt =
          Engine.Timer.timed (fun () -> build_construction name k)
        in
        let solve_dt = print_measures ~pool game in
        Format.printf "@.[build: %a; solve: %a]@." Engine.Timer.pp_seconds
          build_dt Engine.Timer.pp_seconds solve_dt
      with Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2);
  0

let adversary levels samples seed =
  let d = Steiner.Diamond.build levels in
  let g = Steiner.Diamond.graph d in
  Printf.printf "diamond level %d: %d vertices, %d edges, OPT = 1 always\n\n"
    levels
    (Graphs.Graph.n_vertices g)
    (Graphs.Graph.n_edges g);
  let algorithms =
    [ Steiner.Online.greedy; Steiner.Online.oblivious_shortest_path ]
  in
  List.iter
    (fun alg ->
      if levels <= 3 then
        Printf.printf "%-25s E[ALG] = %s (exact)\n" alg.Steiner.Online.name
          (Rat.to_string (Steiner.Diamond.expected_cost d alg))
      else begin
        let rng = Random.State.make [| seed |] in
        Printf.printf "%-25s E[ALG] ~ %.4f (%d samples)\n" alg.Steiner.Online.name
          (Steiner.Diamond.mean_cost rng ~samples d alg)
          samples
      end)
    algorithms;
  0

let sec4 name k iterations =
  let game = build_construction name k in
  let phi =
    try Minimax.Section4.of_bayesian_ncs game with
    | Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  in
  Printf.printf "phi: %d strategy profiles x %d type profiles\n"
    (Minimax.Section4.n_strategies phi)
    (Minimax.Section4.n_type_profiles phi);
  let sol = Minimax.Section4.r_tilde ~iterations phi in
  Printf.printf "R~(phi) in [%s, %s]\n"
    (Rat.to_string sol.Minimax.Matrix_game.lower)
    (Rat.to_string sol.Minimax.Matrix_game.upper);
  let q = sol.Minimax.Matrix_game.row_strategy in
  Printf.printf "public-randomness guarantee: %s\n"
    (Rat.to_string (Minimax.Section4.randomized_guarantee phi q));
  let lo, hi = Minimax.Section4.r_star_bracket ~iterations:(iterations / 2) phi in
  Printf.printf "independent R(phi) bracket: [%s, %s]\n" (Rat.to_string lo)
    (Rat.to_string hi);
  0

let plane p =
  match Constructions.Affine_plane.make p with
  | plane ->
    Printf.printf "AG(2, %d): %d points, %d lines; axioms: %s\n" p
      (Constructions.Affine_plane.n_points plane)
      (Constructions.Affine_plane.n_lines plane)
      (Report.verdict (Constructions.Affine_plane.check_axioms plane));
    0
  | exception Invalid_argument msg ->
    Printf.eprintf "error: %s\n" msg;
    2

(* --- cmdliner wiring --- *)

open Cmdliner

let k_arg default =
  Arg.(value & opt int default & info [ "k" ] ~docv:"K" ~doc:"Size parameter.")

let jobs_arg =
  Arg.(
    value
    & opt int (Engine.Pool.default_size ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the exhaustive solvers (defaults to \
           $(b,BI_JOBS) or 1; clamped to the core count). Results are \
           identical for any value.")

let construction_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            "Construction: anshelevich, gworst-bliss, gworst-curse, affine (K = prime order), diamond (K = level).")
  in
  Cmd.v
    (Cmd.info "construction" ~doc:"Exact ignorance measures of a paper construction")
    Term.(const construction $ name_arg $ k_arg 4 $ jobs_arg)

let adversary_cmd =
  let levels =
    Arg.(value & opt int 3 & info [ "l"; "levels" ] ~docv:"L" ~doc:"Diamond level.")
  in
  let samples =
    Arg.(value & opt int 100 & info [ "s"; "samples" ] ~docv:"N" ~doc:"Monte-Carlo samples.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  Cmd.v
    (Cmd.info "adversary" ~doc:"Online Steiner tree vs the diamond adversary")
    Term.(const adversary $ levels $ samples $ seed)

let sec4_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Construction name (as in $(b,construction)).")
  in
  let iterations =
    Arg.(value & opt int 2000 & info [ "iterations" ] ~docv:"N" ~doc:"Fictitious-play rounds.")
  in
  Cmd.v
    (Cmd.info "sec4" ~doc:"Public random bits vs the common prior (Section 4)")
    Term.(const sec4 $ name_arg $ k_arg 3 $ iterations)

let plane_cmd =
  let p =
    Arg.(value & opt int 5 & info [ "p" ] ~docv:"P" ~doc:"Prime order.")
  in
  Cmd.v
    (Cmd.info "plane" ~doc:"Affine-plane incidence sanity check")
    Term.(const plane $ p)

let () =
  let doc = "explorer for the Bayesian-ignorance reproduction" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "bi" ~doc)
          [ construction_cmd; adversary_cmd; sec4_cmd; plane_cmd ]))

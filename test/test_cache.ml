(* The content-addressed cache: fingerprint canonicality (the qcheck
   properties the subsystem's correctness rests on), codec round-trips,
   LRU semantics, store replay/verification, and the service tier. *)

open Bi_num
module Graph = Bi_graph.Graph
module Dist = Bi_prob.Dist
module Bncs = Bi_ncs.Bayesian_ncs
module Sink = Bi_engine.Sink
module Fingerprint = Bi_cache.Fingerprint
module Codec = Bi_cache.Codec
module Lru = Bi_cache.Lru
module Store = Bi_cache.Store
module Service = Bi_cache.Service

(* --- generators ------------------------------------------------------ *)

let gen_rat =
  QCheck2.Gen.(
    map2 (fun n d -> Rat.of_ints n d) (int_range 0 40) (int_range 1 12))

(* A well-formed random game description: a connected-enough graph (the
   fingerprint does not care about connectivity) plus a small prior. *)
let gen_description =
  QCheck2.Gen.(
    let* n = int_range 2 6 in
    let* directed = bool in
    let* edges =
      list_size (int_range 1 10)
        (let* s = int_range 0 (n - 1) in
         let* d = int_range 0 (n - 1) in
         let* c = gen_rat in
         return (s, d, c))
    in
    let* k = int_range 1 3 in
    let* support_size = int_range 1 3 in
    let* support =
      list_repeat support_size
        (array_repeat k (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))))
    in
    let* weights = list_repeat support_size (map Rat.of_int (int_range 1 5)) in
    let kind = if directed then Graph.Directed else Graph.Undirected in
    return (kind, n, edges, List.combine support weights))

let build (kind, n, edges, prior) =
  (Graph.make kind ~n edges, Dist.make prior)

let fingerprint_of d =
  let graph, prior = build d in
  Fingerprint.game graph ~prior

let shuffle seed xs =
  let rng = Random.State.make [| seed |] in
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr

let gen_seed = QCheck2.Gen.int_range 0 1_000_000

(* --- fingerprint canonicality ---------------------------------------- *)

let prop_edge_order_irrelevant =
  QCheck2.Test.make ~name:"fingerprint ignores edge insertion order" ~count:200
    QCheck2.Gen.(pair gen_description gen_seed)
    (fun ((kind, n, edges, prior), seed) ->
      fingerprint_of (kind, n, edges, prior)
      = fingerprint_of (kind, n, shuffle seed edges, prior))

let prop_support_order_irrelevant =
  QCheck2.Test.make ~name:"fingerprint ignores prior enumeration order"
    ~count:200
    QCheck2.Gen.(pair gen_description gen_seed)
    (fun ((kind, n, edges, prior), seed) ->
      fingerprint_of (kind, n, edges, prior)
      = fingerprint_of (kind, n, edges, shuffle seed prior))

let prop_unreduced_rationals_irrelevant =
  QCheck2.Test.make ~name:"fingerprint ignores rational representation"
    ~count:200
    QCheck2.Gen.(pair gen_description (int_range 2 7))
    (fun ((kind, n, edges, prior), m) ->
      (* Rebuild every cost and weight from an unreduced fraction
         (m*num)/(m*den); [Rat.make] canonicalizes, so the fingerprints
         must agree. *)
      let blow r =
        let num = Rat.num r and den = Rat.den r in
        Rat.make (Bigint.mul (Bigint.of_int m) num) (Bigint.mul (Bigint.of_int m) den)
      in
      let edges' = List.map (fun (s, d, c) -> (s, d, blow c)) edges in
      let prior' = List.map (fun (t, w) -> (t, blow w)) prior in
      fingerprint_of (kind, n, edges, prior)
      = fingerprint_of (kind, n, edges', prior'))

let prop_weight_scaling_irrelevant =
  QCheck2.Test.make ~name:"fingerprint ignores prior weight scaling" ~count:200
    QCheck2.Gen.(pair gen_description (int_range 1 9))
    (fun ((kind, n, edges, prior), m) ->
      (* [Dist.make] normalizes to total mass one. *)
      let prior' =
        List.map (fun (t, w) -> (t, Rat.mul (Rat.of_int m) w)) prior
      in
      fingerprint_of (kind, n, edges, prior)
      = fingerprint_of (kind, n, edges, prior'))

let prop_undirected_endpoint_order_irrelevant =
  QCheck2.Test.make ~name:"fingerprint ignores undirected edge orientation"
    ~count:200 gen_description
    (fun (_, n, edges, prior) ->
      let flipped = List.map (fun (s, d, c) -> (d, s, c)) edges in
      fingerprint_of (Graph.Undirected, n, edges, prior)
      = fingerprint_of (Graph.Undirected, n, flipped, prior))

(* The paper corpus: every construction the bench exercises must have a
   distinct fingerprint — the whole cache keys on that. *)
let test_corpus_no_collisions () =
  let games =
    List.concat_map
      (fun name ->
        (* Diamond games grow doubly fast in the level; small levels
           suffice for the collision property. *)
        let ks = if name = "diamond" then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
        List.filter_map
          (fun k ->
            match Bi_constructions.Registry.build name k with
            | Ok g -> Some (Printf.sprintf "%s k=%d" name k, g)
            | Error _ -> None)
          ks)
      Bi_constructions.Registry.names
  in
  Alcotest.(check bool) "corpus is non-trivial" true (List.length games > 10);
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (label, g) ->
      let fp = Fingerprint.of_game g in
      (match Hashtbl.find_opt tbl fp with
      | Some other ->
        Alcotest.failf "fingerprint collision: %s vs %s" label other
      | None -> ());
      Hashtbl.add tbl fp label)
    games

let test_fingerprint_distinguishes () =
  let base = (Graph.Undirected, 3, [ (0, 1, Rat.one); (1, 2, Rat.one) ],
              [ ([| (0, 2) |], Rat.one) ]) in
  let cost_changed = (Graph.Undirected, 3, [ (0, 1, Rat.of_ints 1 2); (1, 2, Rat.one) ],
                      [ ([| (0, 2) |], Rat.one) ]) in
  let kind_changed = (Graph.Directed, 3, [ (0, 1, Rat.one); (1, 2, Rat.one) ],
                      [ ([| (0, 2) |], Rat.one) ]) in
  let prior_changed = (Graph.Undirected, 3, [ (0, 1, Rat.one); (1, 2, Rat.one) ],
                       [ ([| (0, 1) |], Rat.one) ]) in
  let fp = fingerprint_of base in
  Alcotest.(check bool) "cost matters" true (fp <> fingerprint_of cost_changed);
  Alcotest.(check bool) "kind matters" true (fp <> fingerprint_of kind_changed);
  Alcotest.(check bool) "prior matters" true (fp <> fingerprint_of prior_changed)

(* --- codec round-trips ----------------------------------------------- *)

let prop_rat_roundtrip =
  QCheck2.Test.make ~name:"rational json roundtrip" ~count:500
    QCheck2.Gen.(pair (int_range (-500) 500) (int_range 1 400))
    (fun (n, d) ->
      let r = Rat.of_ints n d in
      match Codec.rat_of_json (Codec.rat_to_json r) with
      | Ok r' -> Rat.equal r r'
      | Error _ -> false)

let test_ext_roundtrip () =
  List.iter
    (fun e ->
      match Codec.ext_of_json (Codec.ext_to_json e) with
      | Ok e' -> Alcotest.(check bool) "ext roundtrip" true (Extended.equal e e')
      | Error msg -> Alcotest.fail msg)
    [ Extended.Inf; Extended.of_int 0; Extended.Fin (Rat.of_ints (-7) 3) ]

let test_analysis_roundtrip () =
  match Bi_constructions.Registry.build "gworst-bliss" 3 with
  | Error e -> Alcotest.fail e
  | Ok game ->
    let a = Bncs.analyze game in
    let j = Codec.analysis_to_json a in
    (match Codec.analysis_of_json j with
    | Error e -> Alcotest.fail e
    | Ok a' ->
      Alcotest.(check bool) "report survives" true
        (a.Bncs.report = a'.Bncs.report);
      Alcotest.(check bool) "witnesses survive" true
        (a.Bncs.opt_p_witness = a'.Bncs.opt_p_witness
        && a.Bncs.best_eq_p_witness = a'.Bncs.best_eq_p_witness
        && a.Bncs.worst_eq_p_witness = a'.Bncs.worst_eq_p_witness);
      (* Byte-identical re-rendering: the store checksum depends on it. *)
      Alcotest.(check string) "canonical rendering" (Sink.to_string j)
        (Sink.to_string (Codec.analysis_to_json a')))

let prop_game_roundtrip =
  QCheck2.Test.make ~name:"game description json roundtrip" ~count:200
    gen_description
    (fun d ->
      let graph, prior = build d in
      match Codec.game_of_json (Codec.game_to_json graph ~prior) with
      | Error _ -> false
      | Ok (graph', prior') ->
        Fingerprint.game graph ~prior = Fingerprint.game graph' ~prior:prior')

let test_game_of_json_rejects () =
  List.iter
    (fun s ->
      match Result.bind (Sink.of_string s) Codec.game_of_json with
      | Ok _ -> Alcotest.failf "accepted invalid description %s" s
      | Error _ -> ())
    [
      {|{"kind":"sideways","n":2,"edges":[],"prior":[]}|};
      {|{"kind":"directed","n":2,"edges":[[0,5,"1"]],"prior":[{"types":[[0,1]],"weight":"1"}]}|};
      {|{"kind":"directed","n":2,"edges":[[0,1,"1/0"]],"prior":[{"types":[[0,1]],"weight":"1"}]}|};
      {|{"kind":"directed","n":2,"edges":[[0,1,"1"]],"prior":[]}|};
    ]

(* --- LRU -------------------------------------------------------------- *)

let test_lru_eviction_order () =
  let lru = Lru.create ~capacity:3 in
  Lru.add lru "a" 1;
  Lru.add lru "b" 2;
  Lru.add lru "c" 3;
  (* Touch "a" so "b" becomes the eviction victim. *)
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find lru "a");
  Lru.add lru "d" 4;
  Alcotest.(check (option int)) "b evicted" None (Lru.find lru "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find lru "a");
  Alcotest.(check int) "evictions counted" 1 (Lru.evictions lru);
  (* Replacement does not grow the map or evict. *)
  Lru.add lru "c" 30;
  Alcotest.(check int) "length stable" 3 (Lru.length lru);
  Alcotest.(check (option int)) "replaced" (Some 30) (Lru.find lru "c");
  (* mem does not touch recency: "d" stays the victim after mem "d". *)
  ignore (Lru.find lru "a");
  ignore (Lru.find lru "c");
  Alcotest.(check bool) "mem" true (Lru.mem lru "d");
  Lru.add lru "e" 5;
  Alcotest.(check (option int)) "mem did not refresh d" None (Lru.find lru "d")

let test_lru_fold_mru_first () =
  let lru = Lru.create ~capacity:4 in
  List.iter (fun (k, v) -> Lru.add lru k v)
    [ ("a", 1); ("b", 2); ("c", 3) ];
  let keys = List.rev (Lru.fold (fun acc k _ -> k :: acc) [] lru) in
  Alcotest.(check (list string)) "mru order" [ "c"; "b"; "a" ] keys;
  Alcotest.check_raises "capacity >= 1" (Invalid_argument "Lru.create: capacity must be positive")
    (fun () -> ignore (Lru.create ~capacity:0))

(* --- store ------------------------------------------------------------ *)

let test_store_roundtrip_and_corruption () =
  let path = Filename.temp_file "bi_store" ".jsonl" in
  let store = Store.open_append path in
  let entries =
    [
      { Store.key = "k1"; kind = "payload"; body = Sink.Str "v1" };
      { Store.key = "k2"; kind = "analysis"; body = Sink.Obj [ ("x", Sink.Int 1) ] };
      { Store.key = "k1"; kind = "payload"; body = Sink.Str "v1-superseded" };
    ]
  in
  List.iter (Store.append store) entries;
  Store.close store;
  let replayed, invalid = Store.load path in
  Alcotest.(check int) "all entries replay" 3 (List.length replayed);
  Alcotest.(check int) "no invalid lines" 0 invalid;
  Alcotest.(check bool) "append order preserved" true
    (List.map (fun e -> e.Store.body) replayed
    = List.map (fun e -> e.Store.body) entries);
  (* Corrupt the middle entry's checksum, append garbage and a torn
     line: replay keeps the good entries and counts the rest. *)
  let replace_once ~sub ~by s =
    let n = String.length s and m = String.length sub in
    let rec at i =
      if i + m > n then s
      else if String.sub s i m = sub then
        String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)
      else at (i + 1)
    in
    at 0
  in
  let lines = List.map Store.entry_to_line entries in
  let oc = open_out path in
  List.iteri
    (fun i line ->
      let line =
        if i = 1 then replace_once ~sub:{|"x":1|} ~by:{|"x":2|} line else line
      in
      output_string oc line;
      output_char oc '\n')
    lines;
  output_string oc "not json at all\n";
  output_string oc "{\"record\":\"entry\",\"key\":\"torn";
  close_out oc;
  let replayed, invalid = Store.load path in
  Alcotest.(check int) "good entries survive" 2 (List.length replayed);
  Alcotest.(check int) "tampered + garbage + torn counted" 3 invalid;
  Sys.remove path

let test_store_missing_file () =
  let replayed, invalid = Store.load "/nonexistent/bi_store.jsonl" in
  Alcotest.(check int) "empty" 0 (List.length replayed);
  Alcotest.(check int) "no invalid" 0 invalid

(* --- compaction ------------------------------------------------------- *)

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line -> go (line :: acc)
        in
        go [])
  end

let test_store_compact () =
  let path = Filename.temp_file "bi_compact" ".jsonl" in
  let store = Store.open_append path in
  List.iter (Store.append store)
    [
      { Store.key = "a"; kind = "payload"; body = Sink.Int 1 };
      { Store.key = "b"; kind = "payload"; body = Sink.Int 2 };
      { Store.key = "a"; kind = "payload"; body = Sink.Int 3 };
      { Store.key = "a"; kind = "payload"; body = Sink.Int 4 };
    ]
  ;
  Store.close store;
  (* A torn tail and a garbage line, as a crash mid-append leaves them. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "not json at all\n";
  output_string oc {|{"record":"entry","key":"c","kind|};
  close_out oc;
  let c = Store.compact path in
  Alcotest.(check int) "kept last entry per key" 2 c.Store.kept;
  Alcotest.(check int) "stale duplicates dropped" 2 c.Store.superseded;
  Alcotest.(check int) "bad lines quarantined" 2 c.Store.quarantined;
  let replayed, invalid = Store.load path in
  Alcotest.(check int) "compacted log replays clean" 0 invalid;
  Alcotest.(check int) "one entry per key" 2 (List.length replayed);
  Alcotest.(check bool) "latest value wins" true
    (List.exists
       (fun e -> e.Store.key = "a" && e.Store.body = Sink.Int 4)
       replayed);
  (* The quarantine sidecar holds the rejected lines verbatim. *)
  let rej = read_lines (Store.rej_path path) in
  Alcotest.(check (list string)) "sidecar verbatim"
    [ "not json at all"; {|{"record":"entry","key":"c","kind|} ]
    rej;
  (* Idempotence: compacting a clean log is a no-op. *)
  let c2 = Store.compact path in
  Alcotest.(check int) "kept stable" 2 c2.Store.kept;
  Alcotest.(check int) "nothing superseded" 0 c2.Store.superseded;
  Alcotest.(check int) "nothing quarantined" 0 c2.Store.quarantined;
  let replayed2, _ = Store.load path in
  Alcotest.(check bool) "second pass preserves entries" true
    (List.map (fun e -> (e.Store.key, e.Store.body)) replayed
    = List.map (fun e -> (e.Store.key, e.Store.body)) replayed2);
  Sys.remove path;
  Sys.remove (Store.rej_path path)

let test_service_crash_then_compact () =
  let path = Filename.temp_file "bi_crash" ".jsonl" in
  Sys.remove path;
  let game =
    match Bi_constructions.Registry.build "gworst-curse" 3 with
    | Ok g -> g
    | Error e -> Alcotest.fail e
  in
  let fp = Fingerprint.of_game game in
  let s1 = Service.create ~store_path:path () in
  let a1, _ = Service.analysis s1 fp (fun () -> Bncs.analyze game) in
  Service.close s1;
  (* kill -9 mid-append: the log ends in a half-written line. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc {|{"record":"entry","key":"|};
  close_out oc;
  (* Reopen: the torn tail pushes the invalid share past the threshold,
     so the open-time compaction fires, quarantines the fragment and
     keeps every valid entry. *)
  let s2 = Service.create ~store_path:path () in
  let st = Service.stats s2 in
  Alcotest.(check int) "valid entry replayed" 1 st.Service.loaded;
  Alcotest.(check int) "torn tail quarantined" 1 st.Service.quarantined;
  let a2, hit = Service.analysis s2 fp (fun () -> Alcotest.fail "recomputed") in
  Alcotest.(check bool) "warm hit after recovery" true hit;
  Alcotest.(check string) "byte-identical answer"
    (Sink.to_string (Codec.analysis_to_json a1))
    (Sink.to_string (Codec.analysis_to_json a2));
  Service.close s2;
  (* The compacted log is clean: a third open replays with no invalid
     lines and no further compaction. *)
  let s3 = Service.create ~store_path:path () in
  let st3 = Service.stats s3 in
  Alcotest.(check int) "clean replay" 1 st3.Service.loaded;
  Alcotest.(check int) "no invalid lines" 0 st3.Service.invalid;
  Alcotest.(check int) "no compaction needed" 0 st3.Service.quarantined;
  Service.close s3;
  Sys.remove path;
  Sys.remove (Store.rej_path path)

let test_service_auto_compact_opt_out () =
  let path = Filename.temp_file "bi_noauto" ".jsonl" in
  let oc = open_out path in
  output_string oc "garbage line\n";
  close_out oc;
  let s = Service.create ~store_path:path ~auto_compact:false () in
  let st = Service.stats s in
  Alcotest.(check int) "invalid counted" 1 st.Service.invalid;
  Alcotest.(check int) "nothing quarantined" 0 st.Service.quarantined;
  Service.close s;
  Alcotest.(check bool) "no sidecar written" false
    (Sys.file_exists (Store.rej_path path));
  Sys.remove path

(* --- service ---------------------------------------------------------- *)

let test_service_miss_then_hit () =
  let s = Service.create ~capacity:8 () in
  let calls = ref 0 in
  let compute () =
    incr calls;
    Sink.Int 42
  in
  let v1, hit1 = Service.payload s "fp1/q" compute in
  let v2, hit2 = Service.payload s "fp1/q" compute in
  Alcotest.(check bool) "first is a miss" false hit1;
  Alcotest.(check bool) "second is a hit" true hit2;
  Alcotest.(check bool) "same value" true (v1 = v2);
  Alcotest.(check int) "computed once" 1 !calls;
  let st = Service.stats s in
  Alcotest.(check int) "hits" 1 st.Service.hits;
  Alcotest.(check int) "misses" 1 st.Service.misses;
  Service.close s

let test_service_restart_from_store () =
  let path = Filename.temp_file "bi_service" ".jsonl" in
  Sys.remove path;
  let game =
    match Bi_constructions.Registry.build "gworst-curse" 3 with
    | Ok g -> g
    | Error e -> Alcotest.fail e
  in
  let fp = Fingerprint.of_game game in
  let s1 = Service.create ~store_path:path () in
  let a1, hit1 = Service.analysis s1 fp (fun () -> Bncs.analyze game) in
  Alcotest.(check bool) "cold miss" false hit1;
  Service.close s1;
  (* A fresh service over the same store must answer from the replayed
     entry: the thunk proves it is never called. *)
  let s2 = Service.create ~store_path:path () in
  Alcotest.(check int) "entry replayed" 1 (Service.stats s2).Service.loaded;
  let a2, hit2 = Service.analysis s2 fp (fun () -> Alcotest.fail "recomputed") in
  Alcotest.(check bool) "warm hit" true hit2;
  Alcotest.(check bool) "identical report" true (a1.Bncs.report = a2.Bncs.report);
  Alcotest.(check bool) "identical witnesses" true
    (a1.Bncs.opt_p_witness = a2.Bncs.opt_p_witness);
  Service.close s2;
  Sys.remove path

let test_service_lru_bounds_memory () =
  let s = Service.create ~capacity:2 () in
  ignore (Service.payload s "a" (fun () -> Sink.Int 1));
  ignore (Service.payload s "b" (fun () -> Sink.Int 2));
  ignore (Service.payload s "c" (fun () -> Sink.Int 3));
  let st = Service.stats s in
  Alcotest.(check int) "capacity respected" 2 st.Service.length;
  Alcotest.(check int) "eviction counted" 1 st.Service.evictions;
  Alcotest.(check (option string)) "oldest evicted" None
    (Option.map (fun _ -> "present") (Service.find s "a"));
  Service.close s

(* --- digest view ------------------------------------------------------- *)

let test_store_digest_helpers () =
  let b = Store.bucket_of_key "some-key" in
  Alcotest.(check bool) "bucket in range" true (b >= 0 && b < Store.buckets);
  Alcotest.(check int) "bucket deterministic" b (Store.bucket_of_key "some-key");
  let pairs = [ ("k1", "c1"); ("k2", "c2"); ("k3", "c3") ] in
  Alcotest.(check string) "bucket digest ignores pair order"
    (Store.bucket_digest pairs)
    (Store.bucket_digest (List.rev pairs));
  Alcotest.(check bool) "bucket digest sees check changes" true
    (Store.bucket_digest pairs
    <> Store.bucket_digest [ ("k1", "cX"); ("k2", "c2"); ("k3", "c3") ])

let test_service_digest_view () =
  let s = Service.create ~capacity:8 () in
  let keys = List.init 5 (fun i -> Printf.sprintf "key-%d" i) in
  List.iteri (fun i k -> Service.insert s k (Service.Payload (Sink.Int i))) keys;
  let rollup = Service.digest_rollup s in
  let buckets_of_keys =
    List.sort_uniq compare (List.map Store.bucket_of_key keys)
  in
  Alcotest.(check (list int)) "rollup covers exactly the resident buckets"
    buckets_of_keys (List.map fst rollup);
  (* Every rollup digest is recomputable from its bucket's pairs. *)
  List.iter
    (fun (b, digest) ->
      Alcotest.(check string) "bucket digest matches pairs" digest
        (Store.bucket_digest (Service.bucket_keys s b)))
    rollup;
  (* Pull serves every advertised key; unknown keys surface as missing. *)
  let entries, missing = Service.pull s ("nope" :: keys) in
  Alcotest.(check (list string)) "missing reported" [ "nope" ] missing;
  Alcotest.(check (list string)) "entries in request order" keys
    (List.map (fun (e : Store.entry) -> e.Store.key) entries);
  (* The advertised check is the md5 of the canonical body — what a
     peer would verify after a pull. *)
  List.iter
    (fun (e : Store.entry) ->
      let b = Store.bucket_of_key e.Store.key in
      let check = List.assoc e.Store.key (Service.bucket_keys s b) in
      Alcotest.(check string) "check is md5 of body"
        (Store.check_of e.Store.body) check)
    entries;
  Service.close s

let test_service_digest_tracks_eviction () =
  let s = Service.create ~capacity:2 () in
  List.iteri
    (fun i k -> Service.insert s k (Service.Payload (Sink.Int i)))
    [ "a"; "b"; "c" ];
  (* "a" was evicted: the digest view must never advertise a key pull
     cannot serve, or anti-entropy would chase phantom divergence. *)
  let advertised =
    List.concat_map
      (fun (b, _) -> List.map fst (Service.bucket_keys s b))
      (Service.digest_rollup s)
  in
  Alcotest.(check bool) "evicted key dropped from digests" false
    (List.mem "a" advertised);
  Alcotest.(check (list string)) "resident keys advertised" [ "b"; "c" ]
    (List.sort compare advertised);
  let entries, missing = Service.pull s [ "a"; "b"; "c" ] in
  Alcotest.(check (list string)) "evicted key missing" [ "a" ] missing;
  Alcotest.(check int) "resident keys pulled" 2 (List.length entries);
  Service.close s

let test_store_rej_sidecar_dedupe () =
  let path = Filename.temp_file "bi_rej" ".jsonl" in
  let append_lines lines =
    let oc = open_out_gen [ Open_append ] 0o644 path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc
  in
  let store = Store.open_append path in
  Store.append store { Store.key = "a"; kind = "payload"; body = Sink.Int 1 };
  Store.close store;
  append_lines [ "garbage one"; "garbage two" ];
  ignore (Store.compact path);
  Alcotest.(check int) "sidecar holds both bad lines" 2 (Store.rej_lines path);
  (* The same damage again: a second compaction must not append lines
     the sidecar already quarantined. *)
  append_lines [ "garbage one"; "garbage two" ];
  ignore (Store.compact path);
  Alcotest.(check int) "sidecar deduplicated" 2 (Store.rej_lines path);
  append_lines [ "garbage three" ];
  ignore (Store.compact path);
  Alcotest.(check int) "fresh damage still appended" 3 (Store.rej_lines path);
  Sys.remove path;
  Sys.remove (Store.rej_path path)

let test_service_rejected_stat () =
  let path = Filename.temp_file "bi_rejstat" ".jsonl" in
  let oc = open_out path in
  output_string oc "garbage line\n";
  close_out oc;
  let s = Service.create ~store_path:path () in
  let st = Service.stats s in
  Alcotest.(check int) "quarantined at open" 1 st.Service.quarantined;
  Alcotest.(check int) "rejected surfaces sidecar size" 1 st.Service.rejected;
  Service.close s;
  (* A fresh service over the now-clean store: nothing new quarantined,
     but [rejected] still reports the sidecar's accumulated size. *)
  let s2 = Service.create ~store_path:path () in
  let st2 = Service.stats s2 in
  Alcotest.(check int) "no new quarantine" 0 st2.Service.quarantined;
  Alcotest.(check int) "rejected persists across restarts" 1
    st2.Service.rejected;
  Service.close s2;
  Sys.remove path;
  Sys.remove (Store.rej_path path)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_edge_order_irrelevant; prop_support_order_irrelevant;
      prop_unreduced_rationals_irrelevant; prop_weight_scaling_irrelevant;
      prop_undirected_endpoint_order_irrelevant; prop_rat_roundtrip;
      prop_game_roundtrip;
    ]

let () =
  Alcotest.run "bi_cache"
    [
      ("fingerprint-canonicality", qtests);
      ( "fingerprint-corpus",
        [
          Alcotest.test_case "paper corpus never collides" `Quick
            test_corpus_no_collisions;
          Alcotest.test_case "semantic changes change the fingerprint" `Quick
            test_fingerprint_distinguishes;
        ] );
      ( "codec",
        [
          Alcotest.test_case "extended values" `Quick test_ext_roundtrip;
          Alcotest.test_case "full analysis" `Quick test_analysis_roundtrip;
          Alcotest.test_case "invalid descriptions rejected" `Quick
            test_game_of_json_rejects;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "fold order and capacity" `Quick
            test_lru_fold_mru_first;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip, tampering, torn tail" `Quick
            test_store_roundtrip_and_corruption;
          Alcotest.test_case "missing file is empty" `Quick
            test_store_missing_file;
          Alcotest.test_case "compact keeps last entry per key" `Quick
            test_store_compact;
          Alcotest.test_case "rej sidecar deduplicates" `Quick
            test_store_rej_sidecar_dedupe;
        ] );
      ( "digest",
        [
          Alcotest.test_case "bucket helpers" `Quick test_store_digest_helpers;
          Alcotest.test_case "rollup, bucket keys and pull agree" `Quick
            test_service_digest_view;
          Alcotest.test_case "eviction keeps digests honest" `Quick
            test_service_digest_tracks_eviction;
          Alcotest.test_case "rejected stat surfaces the sidecar" `Quick
            test_service_rejected_stat;
        ] );
      ( "service",
        [
          Alcotest.test_case "miss then hit" `Quick test_service_miss_then_hit;
          Alcotest.test_case "restart answers from store" `Quick
            test_service_restart_from_store;
          Alcotest.test_case "lru bounds memory" `Quick
            test_service_lru_bounds_memory;
          Alcotest.test_case "crash recovery compacts and preserves" `Quick
            test_service_crash_then_compact;
          Alcotest.test_case "auto compaction can be disabled" `Quick
            test_service_auto_compact_opt_out;
        ] );
    ]

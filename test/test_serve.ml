(* The analysis server: protocol parsing, metrics accounting, and an
   end-to-end exercise over a real Unix-domain socket — duplicate
   request answered from cache, inline analyze, error paths, shutdown,
   and a restart that answers from the persisted store. *)

open Bi_num
module Graph = Bi_graph.Graph
module Dist = Bi_prob.Dist
module Sink = Bi_engine.Sink
module Codec = Bi_cache.Codec
module Service = Bi_cache.Service
module Protocol = Bi_serve.Protocol
module Metrics = Bi_serve.Metrics
module Server = Bi_serve.Server
module Client = Bi_serve.Client

(* --- protocol --------------------------------------------------------- *)

let test_parse_requests () =
  (match Protocol.parse_request {|{"op":"construction","name":"diamond","k":2}|} with
  | Ok (Protocol.Construction { name = "diamond"; k = 2 }) -> ()
  | _ -> Alcotest.fail "construction request");
  (match Protocol.parse_request {|{"op":"construction","name":"affine"}|} with
  | Ok (Protocol.Construction { name = "affine"; k }) ->
    Alcotest.(check int) "default k" Protocol.default_k k
  | _ -> Alcotest.fail "construction default k");
  (match Protocol.parse_request {|{"op":"stats"}|} with
  | Ok Protocol.Stats -> ()
  | _ -> Alcotest.fail "stats request");
  (match Protocol.parse_request {|{"op":"shutdown"}|} with
  | Ok Protocol.Shutdown -> ()
  | _ -> Alcotest.fail "shutdown request");
  let graph = Graph.make Undirected ~n:2 [ (0, 1, Rat.one) ] in
  let prior = Dist.uniform [ [| (0, 1) |] ] in
  let line = Sink.to_string (Protocol.analyze_request graph ~prior) in
  (match Protocol.parse_request line with
  | Ok (Protocol.Analyze (graph', prior')) ->
    Alcotest.(check string) "analyze round-trips the game"
      (Bi_cache.Fingerprint.game graph ~prior)
      (Bi_cache.Fingerprint.game graph' ~prior:prior')
  | _ -> Alcotest.fail "analyze request");
  List.iter
    (fun bad ->
      match Protocol.parse_request bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %s" bad)
    [
      "not json"; {|{"op":"frobnicate"}|}; {|{"noop":1}|};
      {|{"op":"analyze"}|}; {|{"op":"construction","k":3}|};
      {|{"op":"construction","name":"diamond","k":"big"}|};
    ]

let test_metrics_accounting () =
  let m = Metrics.create () in
  Metrics.request m;
  Metrics.enter m;
  Metrics.enter m;
  Metrics.hit m;
  Metrics.miss m;
  Metrics.coalesce m;
  Metrics.leave m ~seconds:0.000003;
  Metrics.leave m ~seconds:0.1;
  Metrics.error m;
  let j = Metrics.to_json m in
  let get k = match Sink.member k j with Some (Sink.Int n) -> n | _ -> -1 in
  Alcotest.(check int) "requests" 1 (get "requests");
  Alcotest.(check int) "errors" 1 (get "errors");
  Alcotest.(check int) "hits include coalesced" 2 (get "hits");
  Alcotest.(check int) "misses" 1 (get "misses");
  Alcotest.(check int) "coalesced" 1 (get "coalesced");
  Alcotest.(check int) "gauge back to zero" 0 (get "queue_depth");
  Alcotest.(check int) "high-water mark" 2 (get "max_queue_depth");
  match Sink.member "latency_log2_us" j with
  | Some (Sink.List buckets) ->
    let count =
      List.fold_left
        (fun acc b ->
          match Sink.member "count" b with Some (Sink.Int c) -> acc + c | _ -> acc)
        0 buckets
    in
    Alcotest.(check int) "both latencies bucketed" 2 count
  | _ -> Alcotest.fail "histogram missing"

(* --- end-to-end over a Unix socket ------------------------------------ *)

let with_server ?store_path f =
  let dir = Filename.temp_file "bi_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "bi.sock" in
  let metrics_out = Filename.concat dir "metrics.json" in
  let cache = Service.create ?store_path () in
  let ready = Mutex.create () and readied = Condition.create () in
  let is_ready = ref false in
  let server =
    Thread.create
      (fun () ->
        Server.run ~metrics_out
          ~on_ready:(fun () ->
            Mutex.lock ready;
            is_ready := true;
            Condition.signal readied;
            Mutex.unlock ready)
          ~cache (Server.Unix_socket socket))
      ()
  in
  Mutex.lock ready;
  while not !is_ready do
    Condition.wait readied ready
  done;
  Mutex.unlock ready;
  Fun.protect
    ~finally:(fun () ->
      (* Idempotent: the test body normally already shut the server down. *)
      (try
         let c = Client.connect_unix socket in
         ignore (Client.request c Protocol.shutdown_request);
         Client.close c
       with Unix.Unix_error _ -> ());
      Thread.join server;
      Service.close cache)
    (fun () -> f ~socket ~metrics_out)

let get_bool key j =
  match Sink.member key j with Some (Sink.Bool b) -> Some b | _ -> None

let request_ok client req =
  match Client.request client req with
  | Error e -> Alcotest.fail e
  | Ok resp ->
    Alcotest.(check bool) "response ok" true (Protocol.is_ok resp);
    resp

let test_end_to_end () =
  let store_path = Filename.temp_file "bi_serve_store" ".jsonl" in
  Sys.remove store_path;
  with_server ~store_path (fun ~socket ~metrics_out:_ ->
      (* Two clients, same construction: the second answer must come
         from the cache with an identical analysis. *)
      let c1 = Client.connect_unix socket in
      let c2 = Client.connect_unix socket in
      let req = Protocol.construction_request ~name:"gworst-bliss" ~k:3 in
      let r1 = request_ok c1 req in
      let r2 = request_ok c2 req in
      Alcotest.(check (option bool)) "first computes" (Some false)
        (get_bool "cached" r1);
      Alcotest.(check (option bool)) "duplicate served from cache" (Some true)
        (get_bool "cached" r2);
      Alcotest.(check string) "identical analysis"
        (Sink.to_string (Option.get (Sink.member "analysis" r1)))
        (Sink.to_string (Option.get (Sink.member "analysis" r2)));
      (* An inline game analyzed through the same cache. *)
      let graph = Graph.make Undirected ~n:2 [ (0, 1, Rat.one) ] in
      let prior = Dist.uniform [ [| (0, 1) |] ] in
      let r3 = request_ok c1 (Protocol.analyze_request graph ~prior) in
      (match Sink.member "analysis" r3 with
      | Some a -> (
        match Result.bind (Ok a) Codec.analysis_of_json with
        | Ok a ->
          Alcotest.(check bool) "opt_p of the one-edge game" true
            (Extended.equal a.Bi_ncs.Bayesian_ncs.report.Bi_bayes.Measures.opt_p
               (Extended.of_int 1))
        | Error e -> Alcotest.fail e)
      | None -> Alcotest.fail "analysis missing");
      (* Unknown construction and protocol errors are reported, not fatal. *)
      (match
         Client.request c2 (Protocol.construction_request ~name:"nope" ~k:1)
       with
      | Ok resp -> Alcotest.(check bool) "error response" false (Protocol.is_ok resp)
      | Error e -> Alcotest.fail e);
      (* Stats must show the duplicate as a hit. *)
      let stats = request_ok c1 Protocol.stats_request in
      let hits =
        match
          Option.bind (Sink.member "server" stats) (Sink.member "hits")
        with
        | Some (Sink.Int n) -> n
        | _ -> -1
      in
      Alcotest.(check bool) "hit counter >= 1" true (hits >= 1);
      Client.close c2;
      (* Graceful shutdown dumps metrics. *)
      let bye = request_ok c1 Protocol.shutdown_request in
      Alcotest.(check (option bool)) "stopping" (Some true)
        (get_bool "stopping" bye);
      Client.close c1);
  Alcotest.(check bool) "store persisted" true (Sys.file_exists store_path);
  (* A new server over the same store answers the same construction from
     the replayed cache on its very first request. *)
  with_server ~store_path (fun ~socket ~metrics_out:_ ->
      let c = Client.connect_unix socket in
      let r =
        request_ok c (Protocol.construction_request ~name:"gworst-bliss" ~k:3)
      in
      Alcotest.(check (option bool)) "first request already cached" (Some true)
        (get_bool "cached" r);
      ignore (request_ok c Protocol.shutdown_request);
      Client.close c);
  Sys.remove store_path

let test_metrics_dump () =
  with_server (fun ~socket ~metrics_out ->
      let c = Client.connect_unix socket in
      ignore (request_ok c (Protocol.construction_request ~name:"gworst-curse" ~k:3));
      ignore (request_ok c Protocol.shutdown_request);
      Client.close c;
      (* run returns after the dump; wait for the server thread via the
         with_server finally, then check from there.  The file is
         written before [Server.run] returns, so after the joined
         shutdown it must parse. *)
      let rec wait tries =
        if Sys.file_exists metrics_out then ()
        else if tries = 0 then Alcotest.fail "metrics dump missing"
        else begin
          Thread.delay 0.05;
          wait (tries - 1)
        end
      in
      wait 100;
      let ic = open_in metrics_out in
      let line = input_line ic in
      close_in ic;
      match Sink.of_string line with
      | Error e -> Alcotest.fail e
      | Ok j ->
        Alcotest.(check bool) "has server section" true
          (Sink.member "server" j <> None);
        Alcotest.(check bool) "has cache section" true
          (Sink.member "cache" j <> None))

let () =
  Alcotest.run "bi_serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request parsing" `Quick test_parse_requests;
          Alcotest.test_case "metrics accounting" `Quick test_metrics_accounting;
        ] );
      ( "server",
        [
          Alcotest.test_case "end to end over a unix socket" `Quick
            test_end_to_end;
          Alcotest.test_case "metrics dump on shutdown" `Quick test_metrics_dump;
        ] );
    ]

(* The analysis server: protocol parsing (including fuzzed garbage),
   metrics accounting, and end-to-end exercises over a real Unix-domain
   socket — duplicate request answered from cache, inline analyze,
   error paths, shutdown, restart answering from the persisted store,
   deadlines, load shedding, idle timeouts, client reconnect, and the
   listener's refusal to clobber a live socket. *)

open Bi_num
module Graph = Bi_graph.Graph
module Dist = Bi_prob.Dist
module Sink = Bi_engine.Sink
module Codec = Bi_cache.Codec
module Service = Bi_cache.Service
module Protocol = Bi_serve.Protocol
module Metrics = Bi_serve.Metrics
module Server = Bi_serve.Server
module Client = Bi_serve.Client
module Chaos = Bi_serve.Chaos
module Lineserver = Bi_serve.Lineserver
module Store = Bi_cache.Store

(* --- protocol --------------------------------------------------------- *)

let test_parse_requests () =
  (match Protocol.parse_request {|{"op":"construction","name":"diamond","k":2}|} with
  | Ok
      {
        Protocol.query =
          Protocol.Construction
            {
              name = "diamond";
              k = 2;
              mode = Bi_certify.Mode.Exhaustive;
              concept = Bi_correlated.Concept.Nash;
            };
        deadline_ms = None;
      } ->
    ()
  | _ -> Alcotest.fail "construction request");
  (match Protocol.parse_request {|{"op":"construction","name":"affine"}|} with
  | Ok { Protocol.query = Protocol.Construction { name = "affine"; k; _ }; _ }
    ->
    Alcotest.(check int) "default k" Protocol.default_k k
  | _ -> Alcotest.fail "construction default k");
  (match Protocol.parse_request {|{"op":"stats"}|} with
  | Ok { Protocol.query = Protocol.Stats; deadline_ms = None } -> ()
  | _ -> Alcotest.fail "stats request");
  (match Protocol.parse_request {|{"op":"shutdown"}|} with
  | Ok { Protocol.query = Protocol.Shutdown; _ } -> ()
  | _ -> Alcotest.fail "shutdown request");
  (match Protocol.parse_request {|{"op":"stats","deadline_ms":250}|} with
  | Ok { Protocol.query = Protocol.Stats; deadline_ms = Some 250 } -> ()
  | _ -> Alcotest.fail "deadline_ms carried through");
  let graph = Graph.make Undirected ~n:2 [ (0, 1, Rat.one) ] in
  let prior = Dist.uniform [ [| (0, 1) |] ] in
  let line =
    Sink.to_string (Protocol.analyze_request ~deadline_ms:40 graph ~prior)
  in
  (match Protocol.parse_request line with
  | Ok
      {
        Protocol.query = Protocol.Analyze { graph = graph'; prior = prior'; _ };
        deadline_ms;
      } ->
    Alcotest.(check (option int)) "deadline round-trips" (Some 40) deadline_ms;
    Alcotest.(check string) "analyze round-trips the game"
      (Bi_cache.Fingerprint.game graph ~prior)
      (Bi_cache.Fingerprint.game graph' ~prior:prior')
  | _ -> Alcotest.fail "analyze request");
  List.iter
    (fun bad ->
      match Protocol.parse_request bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %s" bad)
    [
      "not json"; {|{"op":"frobnicate"}|}; {|{"noop":1}|};
      {|{"op":"analyze"}|}; {|{"op":"construction","k":3}|};
      {|{"op":"construction","name":"diamond","k":"big"}|};
      {|{"op":"stats","deadline_ms":0}|};
      {|{"op":"stats","deadline_ms":-5}|};
      {|{"op":"stats","deadline_ms":"soon"}|};
      (* k is validated at parse time: 0, negative, or past max_k must
         be structured errors, not deep solver failures *)
      {|{"op":"construction","name":"diamond","k":0}|};
      {|{"op":"construction","name":"diamond","k":-3}|};
      (Printf.sprintf {|{"op":"construction","name":"diamond","k":%d}|}
         (Protocol.max_k + 1));
      (* put needs a non-empty fingerprint and a decodable analysis *)
      {|{"op":"put","fingerprint":"abc"}|};
      {|{"op":"put","analysis":{}}|};
      {|{"op":"put","fingerprint":"","analysis":{}}|};
      {|{"op":"put","fingerprint":"abc","analysis":{"bogus":1}}|};
    ];
  (* the k bounds themselves are accepted *)
  (match Protocol.parse_request {|{"op":"construction","name":"diamond","k":1}|} with
  | Ok { Protocol.query = Protocol.Construction { k = 1; _ }; _ } -> ()
  | _ -> Alcotest.fail "k = 1 rejected");
  (match
     Protocol.parse_request
       (Printf.sprintf {|{"op":"construction","name":"diamond","k":%d}|}
          Protocol.max_k)
   with
  | Ok { Protocol.query = Protocol.Construction { k; _ }; _ } ->
    Alcotest.(check int) "k = max_k accepted" Protocol.max_k k
  | _ -> Alcotest.fail "k = max_k rejected");
  (* health parses like the other control verbs *)
  match Protocol.parse_request {|{"op":"health"}|} with
  | Ok { Protocol.query = Protocol.Health; _ } -> ()
  | _ -> Alcotest.fail "health request"

let test_response_codes () =
  Alcotest.(check (option string)) "ok" (Some "ok")
    (Protocol.response_code Protocol.ok_shutdown);
  Alcotest.(check (option string)) "error" (Some "error")
    (Protocol.response_code (Protocol.error "boom"));
  let shed = Protocol.overloaded ~retry_after_ms:40 in
  Alcotest.(check (option string)) "overloaded" (Some "overloaded")
    (Protocol.response_code shed);
  Alcotest.(check (option int)) "retry hint" (Some 40)
    (Protocol.retry_after_ms shed);
  Alcotest.(check (option string)) "deadline_exceeded"
    (Some "deadline_exceeded")
    (Protocol.response_code Protocol.deadline_exceeded);
  Alcotest.(check (option string)) "not a response" None
    (Protocol.response_code (Sink.Obj [ ("x", Sink.Int 1) ]))

(* The solver-tier field: builders round-trip every tier, an absent
   field is the exhaustive tier (so pre-mode clients and servers agree),
   a default-tier request is byte-identical to a pre-mode request, and
   tier-qualified cache keys leave exhaustive fingerprints untouched. *)
let test_mode_round_trip () =
  let module Mode = Bi_certify.Mode in
  let tiers = [ Mode.Exhaustive; Mode.Certified; Mode.Auto ] in
  List.iter
    (fun mode ->
      match
        Protocol.parse_request
          (Sink.to_string
             (Protocol.construction_request ~mode ~name:"affine" ~k:3 ()))
      with
      | Ok { Protocol.query = Protocol.Construction { mode = m; _ }; _ } ->
        Alcotest.(check string) "construction mode round-trips"
          (Mode.to_string mode) (Mode.to_string m)
      | _ -> Alcotest.fail "construction request with mode")
    tiers;
  let graph = Graph.make Undirected ~n:2 [ (0, 1, Rat.one) ] in
  let prior = Dist.uniform [ [| (0, 1) |] ] in
  List.iter
    (fun mode ->
      match
        Protocol.parse_request
          (Sink.to_string (Protocol.analyze_request ~mode graph ~prior))
      with
      | Ok { Protocol.query = Protocol.Analyze { mode = m; _ }; _ } ->
        Alcotest.(check string) "analyze mode round-trips"
          (Mode.to_string mode) (Mode.to_string m)
      | _ -> Alcotest.fail "analyze request with mode")
    tiers;
  (match
     Protocol.parse_request {|{"op":"construction","name":"affine","k":2}|}
   with
  | Ok
      {
        Protocol.query = Protocol.Construction { mode = Mode.Exhaustive; _ };
        _;
      } ->
    ()
  | _ -> Alcotest.fail "absent mode must default to the exhaustive tier");
  Alcotest.(check string) "default-tier request is byte-identical"
    (Sink.to_string (Protocol.construction_request ~name:"affine" ~k:2 ()))
    (Sink.to_string
       (Protocol.construction_request ~mode:Mode.Exhaustive ~name:"affine"
          ~k:2 ()));
  Alcotest.(check bool) "default-tier request carries no mode member" true
    (Sink.member "mode" (Protocol.construction_request ~name:"affine" ~k:2 ())
    = None);
  (match
     Protocol.parse_request
       {|{"op":"construction","name":"affine","mode":"fast"}|}
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tier must be a parse error");
  (match
     Protocol.parse_request {|{"op":"construction","name":"affine","mode":7}|}
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-string mode must be a parse error");
  Alcotest.(check string) "empty tag keeps the bare fingerprint" "abc"
    (Bi_cache.Fingerprint.with_mode "abc" ~mode:"");
  Alcotest.(check string) "exhaustive tag keeps the bare fingerprint" "abc"
    (Bi_cache.Fingerprint.with_mode "abc" ~mode:"exhaustive");
  Alcotest.(check string) "certified tier is suffixed" "abc+certified"
    (Bi_cache.Fingerprint.with_mode "abc" ~mode:"certified")

(* The solution-concept field mirrors the tier field: builders
   round-trip every concept, an absent field is nash (pre-correlated
   clients and servers agree), a default-concept request is
   byte-identical to a pre-correlated request, and concept-qualified
   cache keys leave nash fingerprints untouched. *)
let test_concept_round_trip () =
  let module Concept = Bi_correlated.Concept in
  let concepts = [ Concept.Nash; Concept.Cce; Concept.Comm ] in
  List.iter
    (fun concept ->
      match
        Protocol.parse_request
          (Sink.to_string
             (Protocol.construction_request ~concept ~name:"affine" ~k:3 ()))
      with
      | Ok { Protocol.query = Protocol.Construction { concept = c; _ }; _ } ->
        Alcotest.(check string) "construction concept round-trips"
          (Concept.to_string concept) (Concept.to_string c)
      | _ -> Alcotest.fail "construction request with concept")
    concepts;
  let graph = Graph.make Undirected ~n:2 [ (0, 1, Rat.one) ] in
  let prior = Dist.uniform [ [| (0, 1) |] ] in
  List.iter
    (fun concept ->
      match
        Protocol.parse_request
          (Sink.to_string (Protocol.analyze_request ~concept graph ~prior))
      with
      | Ok { Protocol.query = Protocol.Analyze { concept = c; _ }; _ } ->
        Alcotest.(check string) "analyze concept round-trips"
          (Concept.to_string concept) (Concept.to_string c)
      | _ -> Alcotest.fail "analyze request with concept")
    concepts;
  (match
     Protocol.parse_request {|{"op":"construction","name":"affine","k":2}|}
   with
  | Ok
      { Protocol.query = Protocol.Construction { concept = Concept.Nash; _ }; _ }
    ->
    ()
  | _ -> Alcotest.fail "absent concept must default to nash");
  Alcotest.(check string) "default-concept request is byte-identical"
    (Sink.to_string (Protocol.construction_request ~name:"affine" ~k:2 ()))
    (Sink.to_string
       (Protocol.construction_request ~concept:Concept.Nash ~name:"affine"
          ~k:2 ()));
  Alcotest.(check bool) "default-concept request carries no concept member"
    true
    (Sink.member "concept"
       (Protocol.construction_request ~name:"affine" ~k:2 ())
    = None);
  (match
     Protocol.parse_request
       {|{"op":"construction","name":"affine","concept":"mixed"}|}
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown concept must be a parse error");
  (match
     Protocol.parse_request
       {|{"op":"construction","name":"affine","concept":7}|}
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-string concept must be a parse error");
  Alcotest.(check string) "empty tag keeps the bare fingerprint" "abc"
    (Bi_cache.Fingerprint.with_concept "abc" ~concept:"");
  Alcotest.(check string) "nash tag keeps the bare fingerprint" "abc"
    (Bi_cache.Fingerprint.with_concept "abc" ~concept:"nash");
  Alcotest.(check string) "cce concept is suffixed" "abc+cce"
    (Bi_cache.Fingerprint.with_concept "abc" ~concept:"cce");
  Alcotest.(check string) "comm concept is suffixed" "abc+comm"
    (Bi_cache.Fingerprint.with_concept "abc" ~concept:"comm")

(* parse_request must be total: any byte salad gets Ok or Error, never
   an exception (a [Stack_overflow] here would kill a server thread). *)
let fuzz_parse_total =
  QCheck2.Test.make ~name:"parse_request is total on garbage" ~count:500
    QCheck2.Gen.(string_size ~gen:(char_range '\t' '~') (int_range 0 300))
    (fun s ->
      match Protocol.parse_request s with Ok _ | Error _ -> true)

let test_parse_hostile_inputs () =
  let deep n = String.make n '[' ^ String.make n ']' in
  List.iter
    (fun line ->
      match Protocol.parse_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted hostile input")
    [
      (* nesting beyond the parser's depth cap must be a parse error,
         not a stack overflow *)
      String.make 100_000 '[';
      deep 600;
      {|{"op":"analyze","game":|} ^ deep 5_000 ^ "}";
      (* oversized flat line *)
      String.make 2_000_000 'a';
      String.concat "" (List.init 513 (fun _ -> {|{"op":|}));
    ];
  (* nesting below the cap still parses *)
  match Protocol.parse_request ({|{"op":"stats","pad":|} ^ deep 100 ^ "}") with
  | Ok { Protocol.query = Protocol.Stats; _ } -> ()
  | _ -> Alcotest.fail "moderate nesting rejected"

let test_metrics_accounting () =
  let m = Metrics.create () in
  Metrics.request m;
  Metrics.enter m;
  Metrics.enter m;
  Metrics.hit m;
  Metrics.miss m;
  Metrics.coalesce m;
  Metrics.leave m ~seconds:0.000003;
  Metrics.leave m ~seconds:0.1;
  Metrics.error m;
  Metrics.overload m;
  Metrics.deadline_exceeded m;
  Metrics.idle_close m;
  Metrics.fault_injected m;
  Metrics.fault_injected m;
  let j = Metrics.to_json m in
  let get k = match Sink.member k j with Some (Sink.Int n) -> n | _ -> -1 in
  Alcotest.(check int) "requests" 1 (get "requests");
  Alcotest.(check int) "errors" 1 (get "errors");
  Alcotest.(check int) "hits include coalesced" 2 (get "hits");
  Alcotest.(check int) "misses" 1 (get "misses");
  Alcotest.(check int) "coalesced" 1 (get "coalesced");
  Alcotest.(check int) "overloaded" 1 (get "overloaded");
  Alcotest.(check int) "deadline_exceeded" 1 (get "deadline_exceeded");
  Alcotest.(check int) "idle_closed" 1 (get "idle_closed");
  Alcotest.(check int) "faults_injected" 2 (get "faults_injected");
  Alcotest.(check int) "gauge back to zero" 0 (get "queue_depth");
  Alcotest.(check int) "high-water mark" 2 (get "max_queue_depth");
  match Sink.member "latency_log2_us" j with
  | Some (Sink.List buckets) ->
    let count =
      List.fold_left
        (fun acc b ->
          match Sink.member "count" b with Some (Sink.Int c) -> acc + c | _ -> acc)
        0 buckets
    in
    Alcotest.(check int) "both latencies bucketed" 2 count
  | _ -> Alcotest.fail "histogram missing"

(* --- retry backoff laws ----------------------------------------------- *)

(* Without a hint, every wait lies in [1, max_delay_ms] for any seed,
   position and attempt — the schedule can never stall or overshoot. *)
let backoff_within_bounds =
  QCheck2.Test.make ~name:"backoff waits lie in [1, max_delay_ms]" ~count:500
    QCheck2.Gen.(
      tup4 (int_range 1 5000) (int_range 1 5000) int (int_range 0 62))
    (fun (base, cap, seed, attempt) ->
      let w =
        Client.backoff_wait_ms ~base_delay_ms:base ~max_delay_ms:cap ~seed
          ~wait_index:attempt ~attempt ~hint_ms:None
      in
      w >= 1 && w <= max 1 cap)

(* The server's retry_after_ms hint is a floor: the client never knocks
   again sooner than the server asked, even past the backoff cap. *)
let backoff_hint_floor =
  QCheck2.Test.make ~name:"retry_after_ms hint is a floor" ~count:500
    QCheck2.Gen.(tup3 int (int_range 0 30) (int_range 0 10_000))
    (fun (seed, attempt, hint) ->
      let w =
        Client.backoff_wait_ms ~base_delay_ms:25 ~max_delay_ms:2000 ~seed
          ~wait_index:attempt ~attempt ~hint_ms:(Some hint)
      in
      w >= hint && w >= 1)

(* Distinct seeds must produce distinct jitter sequences — the whole
   point of deriving per-connection seeds is that a fleet of clients
   does not retry in lockstep after losing the same server. *)
let backoff_seed_distinct =
  QCheck2.Test.make ~name:"distinct seeds give distinct jitter sequences"
    ~count:200
    QCheck2.Gen.(tup2 int int)
    (fun (s1, s2) ->
      QCheck2.assume (s1 <> s2);
      let sequence seed =
        List.init 16 (fun i ->
            Client.backoff_wait_ms ~base_delay_ms:1000
              ~max_delay_ms:1_000_000 ~seed ~wait_index:i ~attempt:10
              ~hint_ms:None)
      in
      sequence s1 <> sequence s2)

(* Same seed, same positions: the schedule is reproducible, which is
   what tests that pass an explicit seed rely on. *)
let backoff_deterministic =
  QCheck2.Test.make ~name:"backoff is deterministic per seed" ~count:200
    QCheck2.Gen.(tup2 int (int_range 0 30))
    (fun (seed, i) ->
      let once () =
        Client.backoff_wait_ms ~base_delay_ms:25 ~max_delay_ms:2000 ~seed
          ~wait_index:i ~attempt:i ~hint_ms:None
      in
      once () = once ())

(* --- chaos configuration ---------------------------------------------- *)

let test_chaos_parse () =
  (match Chaos.parse "seed=3,delay_p=0.25,delay_ms=40,drop_p=0.1" with
  | Ok cfg ->
    Alcotest.(check int) "seed" 3 cfg.Chaos.seed;
    Alcotest.(check (float 1e-9)) "delay_p" 0.25 cfg.Chaos.delay_p;
    Alcotest.(check int) "delay_ms" 40 cfg.Chaos.delay_ms;
    Alcotest.(check (float 1e-9)) "drop_p" 0.1 cfg.Chaos.drop_p;
    Alcotest.(check bool) "enabled" true (Chaos.is_enabled cfg)
  | Error e -> Alcotest.fail e);
  (match Chaos.parse "" with
  | Ok cfg -> Alcotest.(check bool) "empty = disabled" false (Chaos.is_enabled cfg)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Chaos.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %s" bad)
    [ "delay_p=2"; "drop_p=x"; "frob=1"; "delay_ms"; "truncate_p=-0.1" ];
  (* the decision stream is deterministic in (seed, counter) *)
  Alcotest.(check (float 0.)) "stream reproducible"
    (Chaos.unit_float ~seed:7 ~counter:42)
    (Chaos.unit_float ~seed:7 ~counter:42)

(* --- end-to-end over a Unix socket ------------------------------------ *)

let with_server ?store_path ?limits ?chaos ?shard f =
  let dir = Filename.temp_file "bi_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "bi.sock" in
  let metrics_out = Filename.concat dir "metrics.json" in
  let cache = Service.create ?store_path ?shard () in
  let ready = Mutex.create () and readied = Condition.create () in
  let is_ready = ref false in
  let server =
    Thread.create
      (fun () ->
        Server.run ~metrics_out ?limits ?chaos
          ~on_ready:(fun () ->
            Mutex.lock ready;
            is_ready := true;
            Condition.signal readied;
            Mutex.unlock ready)
          ~cache (Server.Unix_socket socket))
      ()
  in
  Mutex.lock ready;
  while not !is_ready do
    Condition.wait readied ready
  done;
  Mutex.unlock ready;
  Fun.protect
    ~finally:(fun () ->
      (* Idempotent: the test body normally already shut the server down. *)
      (try
         let c = Client.connect_unix socket in
         ignore (Client.request c Protocol.shutdown_request);
         Client.close c
       with Unix.Unix_error _ -> ());
      Thread.join server;
      Service.close cache)
    (fun () -> f ~socket ~metrics_out)

let get_bool key j =
  match Sink.member key j with Some (Sink.Bool b) -> Some b | _ -> None

let request_ok client req =
  match Client.request client req with
  | Error f -> Alcotest.fail (Client.failure_to_string f)
  | Ok resp ->
    Alcotest.(check bool) "response ok" true (Protocol.is_ok resp);
    resp

let test_end_to_end () =
  let store_path = Filename.temp_file "bi_serve_store" ".jsonl" in
  Sys.remove store_path;
  with_server ~store_path (fun ~socket ~metrics_out:_ ->
      (* Two clients, same construction: the second answer must come
         from the cache with an identical analysis. *)
      let c1 = Client.connect_unix socket in
      let c2 = Client.connect_unix socket in
      let req = Protocol.construction_request ~name:"gworst-bliss" ~k:3 () in
      let r1 = request_ok c1 req in
      let r2 = request_ok c2 req in
      Alcotest.(check (option bool)) "first computes" (Some false)
        (get_bool "cached" r1);
      Alcotest.(check (option bool)) "duplicate served from cache" (Some true)
        (get_bool "cached" r2);
      Alcotest.(check string) "identical analysis"
        (Sink.to_string (Option.get (Sink.member "analysis" r1)))
        (Sink.to_string (Option.get (Sink.member "analysis" r2)));
      (* An inline game analyzed through the same cache. *)
      let graph = Graph.make Undirected ~n:2 [ (0, 1, Rat.one) ] in
      let prior = Dist.uniform [ [| (0, 1) |] ] in
      let r3 = request_ok c1 (Protocol.analyze_request graph ~prior) in
      (match Sink.member "analysis" r3 with
      | Some a -> (
        match Result.bind (Ok a) Codec.analysis_of_json with
        | Ok a ->
          Alcotest.(check bool) "opt_p of the one-edge game" true
            (Extended.equal a.Bi_ncs.Bayesian_ncs.report.Bi_bayes.Measures.opt_p
               (Extended.of_int 1))
        | Error e -> Alcotest.fail e)
      | None -> Alcotest.fail "analysis missing");
      (* Unknown construction and protocol errors are reported, not fatal. *)
      (match
         Client.request c2 (Protocol.construction_request ~name:"nope" ~k:1 ())
       with
      | Ok resp -> Alcotest.(check bool) "error response" false (Protocol.is_ok resp)
      | Error f -> Alcotest.fail (Client.failure_to_string f));
      (* Stats must show the duplicate as a hit. *)
      let stats = request_ok c1 Protocol.stats_request in
      let hits =
        match
          Option.bind (Sink.member "server" stats) (Sink.member "hits")
        with
        | Some (Sink.Int n) -> n
        | _ -> -1
      in
      Alcotest.(check bool) "hit counter >= 1" true (hits >= 1);
      Client.close c2;
      (* Graceful shutdown dumps metrics. *)
      let bye = request_ok c1 Protocol.shutdown_request in
      Alcotest.(check (option bool)) "stopping" (Some true)
        (get_bool "stopping" bye);
      Client.close c1);
  Alcotest.(check bool) "store persisted" true (Sys.file_exists store_path);
  (* A new server over the same store answers the same construction from
     the replayed cache on its very first request. *)
  with_server ~store_path (fun ~socket ~metrics_out:_ ->
      let c = Client.connect_unix socket in
      let r =
        request_ok c (Protocol.construction_request ~name:"gworst-bliss" ~k:3 ())
      in
      Alcotest.(check (option bool)) "first request already cached" (Some true)
        (get_bool "cached" r);
      ignore (request_ok c Protocol.shutdown_request);
      Client.close c);
  Sys.remove store_path

(* Health names the shard and exposes load; put inserts an analysis
   that later construction requests answer byte-identically — the two
   verbs the router builds its membership and replication on. *)
(* The certified tier over the wire: first answer computes, the repeat
   is served from cache under the tier-qualified fingerprint, the
   response carries the bracket payload and no ["analysis"] member, and
   the exhaustive tier for the same game is untouched. *)
let test_certified_tier () =
  let store_path = Filename.temp_file "bi_serve_cert" ".jsonl" in
  Sys.remove store_path;
  with_server ~store_path (fun ~socket ~metrics_out:_ ->
      let c = Client.connect_unix socket in
      let req =
        Protocol.construction_request ~mode:Bi_certify.Mode.Certified
          ~name:"gworst-bliss" ~k:3 ()
      in
      let r1 = request_ok c req in
      let r2 = request_ok c req in
      Alcotest.(check (option bool)) "first computes" (Some false)
        (get_bool "cached" r1);
      Alcotest.(check (option bool)) "repeat served from cache" (Some true)
        (get_bool "cached" r2);
      Alcotest.(check bool) "bracket payload present" true
        (Sink.member "certified" r1 <> None);
      Alcotest.(check bool) "no exhaustive analysis member" true
        (Sink.member "analysis" r1 = None);
      (match Sink.member "fingerprint" r1 with
      | Some (Sink.Str fp) ->
        Alcotest.(check bool) "tier-qualified fingerprint" true
          (Filename.check_suffix fp "+certified")
      | _ -> Alcotest.fail "fingerprint missing");
      let r3 =
        request_ok c
          (Protocol.construction_request ~name:"gworst-bliss" ~k:3 ())
      in
      Alcotest.(check (option bool)) "exhaustive tier computes fresh"
        (Some false) (get_bool "cached" r3);
      Alcotest.(check bool) "exhaustive answer has its analysis" true
        (Sink.member "analysis" r3 <> None);
      ignore (request_ok c Protocol.shutdown_request);
      Client.close c)

(* A correlated concept over the wire: first answer computes the LP
   report, the repeat is served from cache under the concept-qualified
   fingerprint, the response carries the ["correlated"] payload (tagged
   with its concept) and no ["analysis"] member, and the nash default
   for the same game stays byte-compatible: bare fingerprint, no
   ["concept"] member. *)
let test_correlated_concept () =
  let store_path = Filename.temp_file "bi_serve_corr" ".jsonl" in
  Sys.remove store_path;
  with_server ~store_path (fun ~socket ~metrics_out:_ ->
      let c = Client.connect_unix socket in
      let req =
        Protocol.construction_request ~concept:Bi_correlated.Concept.Cce
          ~name:"gworst-bliss" ~k:2 ()
      in
      let r1 = request_ok c req in
      let r2 = request_ok c req in
      Alcotest.(check (option bool)) "first computes" (Some false)
        (get_bool "cached" r1);
      Alcotest.(check (option bool)) "repeat served from cache" (Some true)
        (get_bool "cached" r2);
      Alcotest.(check bool) "correlated payload present" true
        (Sink.member "correlated" r1 <> None);
      Alcotest.(check bool) "no exhaustive analysis member" true
        (Sink.member "analysis" r1 = None);
      (match Sink.member "concept" r1 with
      | Some (Sink.Str "cce") -> ()
      | _ -> Alcotest.fail "response must name its concept");
      (match Sink.member "fingerprint" r1 with
      | Some (Sink.Str fp) ->
        Alcotest.(check bool) "concept-qualified fingerprint" true
          (Filename.check_suffix fp "+cce")
      | _ -> Alcotest.fail "fingerprint missing");
      (* the LP payload carries the six quantities with certificates *)
      (match Sink.member "correlated" r1 with
      | Some payload ->
        List.iter
          (fun key ->
            Alcotest.(check bool) (key ^ " present") true
              (Sink.member key payload <> None))
          [ "best"; "worst"; "pub_best"; "pub_worst"; "certificates" ]
      | None -> ());
      (* the nash default for the same game is untouched: fresh compute,
         bare fingerprint, analysis member, no concept member *)
      let r3 =
        request_ok c
          (Protocol.construction_request ~name:"gworst-bliss" ~k:2 ())
      in
      Alcotest.(check (option bool)) "nash computes fresh" (Some false)
        (get_bool "cached" r3);
      Alcotest.(check bool) "nash answer has its analysis" true
        (Sink.member "analysis" r3 <> None);
      Alcotest.(check bool) "nash answer has no concept member" true
        (Sink.member "concept" r3 = None);
      (match Sink.member "fingerprint" r3 with
      | Some (Sink.Str fp) ->
        Alcotest.(check bool) "nash fingerprint is unqualified" false
          (String.contains fp '+')
      | _ -> Alcotest.fail "fingerprint missing");
      ignore (request_ok c Protocol.shutdown_request);
      Client.close c)

let test_health_and_put () =
  let captured = ref None in
  with_server ~shard:"shard-a" (fun ~socket ~metrics_out:_ ->
      let c = Client.connect_unix socket in
      let h = request_ok c Protocol.health_request in
      Alcotest.(check (option string))
        "health names the shard" (Some "shard-a") (Protocol.shard_of h);
      (match Sink.member "inflight" h with
      | Some (Sink.Int n) ->
        Alcotest.(check bool) "inflight counts this request" true (n >= 1)
      | _ -> Alcotest.fail "inflight missing");
      (match Sink.member "cache" h with
      | Some (Sink.Obj _) -> ()
      | _ -> Alcotest.fail "cache stats missing");
      let r =
        request_ok c (Protocol.construction_request ~name:"gworst-bliss" ~k:2 ())
      in
      let fp =
        match Sink.member "fingerprint" r with
        | Some (Sink.Str s) -> s
        | _ -> Alcotest.fail "fingerprint missing"
      in
      captured := Some (fp, Option.get (Sink.member "analysis" r));
      ignore (request_ok c Protocol.shutdown_request);
      Client.close c);
  let fp, analysis = Option.get !captured in
  (* A cold server warmed over the wire answers from cache, byte for
     byte what the original shard computed. *)
  with_server (fun ~socket ~metrics_out:_ ->
      let c = Client.connect_unix socket in
      let stored = request_ok c (Protocol.put_request ~fingerprint:fp analysis) in
      Alcotest.(check (option bool)) "stored" (Some true)
        (get_bool "stored" stored);
      let r =
        request_ok c (Protocol.construction_request ~name:"gworst-bliss" ~k:2 ())
      in
      Alcotest.(check (option bool)) "answered from the pushed copy"
        (Some true) (get_bool "cached" r);
      Alcotest.(check string) "byte-identical analysis"
        (Sink.to_string analysis)
        (Sink.to_string (Option.get (Sink.member "analysis" r)));
      ignore (request_ok c Protocol.shutdown_request);
      Client.close c)

let test_metrics_dump () =
  with_server (fun ~socket ~metrics_out ->
      let c = Client.connect_unix socket in
      ignore (request_ok c (Protocol.construction_request ~name:"gworst-curse" ~k:3 ()));
      ignore (request_ok c Protocol.shutdown_request);
      Client.close c;
      (* run returns after the dump; wait for the server thread via the
         with_server finally, then check from there.  The file is
         written before [Server.run] returns, so after the joined
         shutdown it must parse. *)
      let rec wait tries =
        if Sys.file_exists metrics_out then ()
        else if tries = 0 then Alcotest.fail "metrics dump missing"
        else begin
          Thread.delay 0.05;
          wait (tries - 1)
        end
      in
      wait 100;
      let ic = open_in metrics_out in
      let line = input_line ic in
      close_in ic;
      match Sink.of_string line with
      | Error e -> Alcotest.fail e
      | Ok j ->
        Alcotest.(check bool) "has server section" true
          (Sink.member "server" j <> None);
        Alcotest.(check bool) "has cache section" true
          (Sink.member "cache" j <> None))

(* Garbage on the wire gets a structured error and leaves both the
   connection and the server fully usable. *)
let test_survives_garbage () =
  with_server (fun ~socket ~metrics_out:_ ->
      let c = Client.connect_unix socket in
      List.iter
        (fun probe ->
          match Client.raw_request c probe with
          | Error f -> Alcotest.fail (Client.failure_to_string f)
          | Ok line -> (
            match Sink.of_string line with
            | Error e -> Alcotest.failf "unparseable error response: %s" e
            | Ok resp ->
              Alcotest.(check bool) "structured error" false
                (Protocol.is_ok resp);
              Alcotest.(check bool) "has code" true
                (Protocol.response_code resp <> None)))
        [
          "{\"op\": \"analyze\", garbage";
          "]]]]";
          String.make 600 '[';
          "{\"op\": 42}";
        ];
      (* same connection still answers real requests *)
      ignore
        (request_ok c (Protocol.construction_request ~name:"gworst-bliss" ~k:2 ()));
      ignore (request_ok c Protocol.shutdown_request);
      Client.close c)

(* A request whose deadline is shorter than the (chaos-injected)
   compute latency gets a structured deadline_exceeded, and the same
   request without a deadline still completes. *)
let test_deadline_exceeded () =
  let chaos =
    Chaos.create { Chaos.disabled with seed = 1; delay_p = 1.; delay_ms = 200 }
  in
  with_server ~chaos (fun ~socket ~metrics_out:_ ->
      let c = Client.connect_unix socket in
      (match
         Client.request c
           (Protocol.construction_request ~deadline_ms:30 ~name:"gworst-bliss"
              ~k:2 ())
       with
      | Error f -> Alcotest.fail (Client.failure_to_string f)
      | Ok resp ->
        Alcotest.(check (option string)) "deadline exceeded"
          (Some "deadline_exceeded")
          (Protocol.response_code resp));
      (* without a deadline the same request completes despite the delay *)
      ignore
        (request_ok c (Protocol.construction_request ~name:"gworst-bliss" ~k:2 ()));
      ignore (request_ok c Protocol.shutdown_request);
      Client.close c)

(* With one compute slot, no queue, and injected compute latency, a
   concurrent distinct analysis is shed immediately with a retry hint —
   and a retrying client eventually gets the real answer. *)
let test_load_shedding () =
  let limits =
    { Server.default_limits with max_concurrent = 1; max_queue = 0 }
  in
  let chaos =
    Chaos.create { Chaos.disabled with seed = 2; delay_p = 1.; delay_ms = 600 }
  in
  with_server ~limits ~chaos (fun ~socket ~metrics_out:_ ->
      let slow = Thread.create (fun () ->
          let c1 = Client.connect_unix socket in
          ignore
            (request_ok c1
               (Protocol.construction_request ~name:"gworst-curse" ~k:2 ()));
          Client.close c1) ()
      in
      Thread.delay 0.2;  (* let the slow analysis claim the only slot *)
      let c2 = Client.connect_unix socket in
      let req = Protocol.construction_request ~name:"gworst-curse" ~k:3 () in
      (match Client.request c2 req with
      | Error f -> Alcotest.fail (Client.failure_to_string f)
      | Ok resp ->
        Alcotest.(check (option string)) "shed" (Some "overloaded")
          (Protocol.response_code resp);
        Alcotest.(check bool) "retry hint present" true
          (Protocol.retry_after_ms resp <> None));
      Thread.join slow;
      (* retrying rides out the overload *)
      let retry =
        { Client.default_retry with attempts = 12; base_delay_ms = 100;
          seed = Some 5 }
      in
      (match Client.request ~retry c2 req with
      | Error f -> Alcotest.fail (Client.failure_to_string f)
      | Ok resp ->
        Alcotest.(check bool) "eventually answered" true (Protocol.is_ok resp));
      ignore (request_ok c2 Protocol.stats_request);
      Client.close c2)

(* Idle connections are closed by the read timeout; the client notices,
   refuses to reuse the dead socket without retry, and reconnects with
   it. *)
let test_idle_timeout_and_reconnect () =
  let limits = { Server.default_limits with idle_timeout_s = 0.25 } in
  with_server ~limits (fun ~socket ~metrics_out:_ ->
      let c = Client.connect_unix socket in
      ignore (request_ok c Protocol.stats_request);
      Thread.delay 0.8;  (* idle past the timeout: server hangs up *)
      (match Client.request c Protocol.stats_request with
      | Error (Client.Io _) -> ()
      | Error f -> Alcotest.failf "want Io, got %s" (Client.failure_to_string f)
      | Ok _ -> Alcotest.fail "dead connection answered");
      (* broken without retry: refused, not silently rewritten *)
      (match Client.request c Protocol.stats_request with
      | Error Client.Closed -> ()
      | Error f -> Alcotest.failf "want Closed, got %s" (Client.failure_to_string f)
      | Ok _ -> Alcotest.fail "broken client answered");
      (* with retry: reconnects to the remembered address *)
      let stats =
        match Client.request ~retry:Client.default_retry c Protocol.stats_request with
        | Error f -> Alcotest.fail (Client.failure_to_string f)
        | Ok resp -> resp
      in
      Alcotest.(check bool) "reconnected" true (Protocol.is_ok stats);
      let idle_closed =
        match
          Option.bind (Sink.member "server" stats) (Sink.member "idle_closed")
        with
        | Some (Sink.Int n) -> n
        | _ -> -1
      in
      Alcotest.(check bool) "idle close counted" true (idle_closed >= 1);
      ignore (request_ok c Protocol.shutdown_request);
      Client.close c)

(* The listener refuses to clobber a live server's socket or a
   non-socket file, and silently replaces a stale socket left by a
   crash. *)
let test_bind_listener_safety () =
  with_server (fun ~socket ~metrics_out:_ ->
      let cache2 = Service.create () in
      (match Server.run ~cache:cache2 (Server.Unix_socket socket) with
      | () -> Alcotest.fail "second server bound over a live socket"
      | exception Failure _ -> ());
      Service.close cache2;
      let c = Client.connect_unix socket in
      ignore (request_ok c Protocol.shutdown_request);
      Client.close c);
  let dir = Filename.temp_file "bi_bind" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  (* a plain file at the listen path is never unlinked *)
  let plain = Filename.concat dir "not-a-socket" in
  let oc = open_out plain in
  output_string oc "precious";
  close_out oc;
  let cache = Service.create () in
  (match Server.run ~cache (Server.Unix_socket plain) with
  | () -> Alcotest.fail "bound over a regular file"
  | exception Failure _ -> ());
  Alcotest.(check bool) "file survives" true (Sys.file_exists plain);
  Service.close cache;
  (* a stale socket (bound once, process gone) is replaced and served *)
  let stale = Filename.concat dir "stale.sock" in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX stale);
  Unix.close fd;
  let cache = Service.create () in
  let ready = Mutex.create () and readied = Condition.create () in
  let is_ready = ref false in
  let server =
    Thread.create
      (fun () ->
        Server.run
          ~on_ready:(fun () ->
            Mutex.lock ready;
            is_ready := true;
            Condition.signal readied;
            Mutex.unlock ready)
          ~cache (Server.Unix_socket stale))
      ()
  in
  Mutex.lock ready;
  while not !is_ready do
    Condition.wait readied ready
  done;
  Mutex.unlock ready;
  let c = Client.connect_unix stale in
  ignore (request_ok c Protocol.stats_request);
  ignore (request_ok c Protocol.shutdown_request);
  Client.close c;
  Thread.join server;
  Service.close cache

(* --- digest / pull verbs ---------------------------------------------- *)

let test_parse_digest_pull () =
  (match Protocol.parse_request {|{"op":"digest"}|} with
  | Ok { Protocol.query = Protocol.Digest { bucket = None }; _ } -> ()
  | _ -> Alcotest.fail "digest rollup form");
  (match Protocol.parse_request {|{"op":"digest","bucket":7}|} with
  | Ok { Protocol.query = Protocol.Digest { bucket = Some 7 }; _ } -> ()
  | _ -> Alcotest.fail "digest bucket form");
  (match Protocol.parse_request {|{"op":"pull","keys":["a","b"]}|} with
  | Ok { Protocol.query = Protocol.Pull { keys = [ "a"; "b" ] }; _ } -> ()
  | _ -> Alcotest.fail "pull form");
  (* A payload put stores the body verbatim; the kind must be known. *)
  (match
     Protocol.parse_request
       {|{"op":"put","fingerprint":"f","kind":"payload","analysis":{"x":1}}|}
   with
  | Ok
      {
        Protocol.query =
          Protocol.Put { fingerprint = "f"; value = Protocol.Put_payload _ };
        _;
      } ->
    ()
  | _ -> Alcotest.fail "payload put form");
  List.iter
    (fun bad ->
      match Protocol.parse_request bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %s" bad)
    [
      {|{"op":"digest","bucket":-1}|};
      (Printf.sprintf {|{"op":"digest","bucket":%d}|} Store.buckets);
      {|{"op":"digest","bucket":"low"}|};
      {|{"op":"pull"}|};
      {|{"op":"pull","keys":[]}|};
      {|{"op":"pull","keys":[7]}|};
      {|{"op":"pull","keys":[""]}|};
      {|{"op":"pull","keys":"a"}|};
      {|{"op":"put","fingerprint":"f","kind":"mystery","analysis":{}}|};
    ];
  (* The builders emit what the parser accepts, and an analysis put
     carries no "kind" field at all — byte-compatible with pre-repair
     routers. *)
  let put_line =
    Sink.to_string (Protocol.put_request ~fingerprint:"f" (Sink.Obj []))
  in
  Alcotest.(check bool) "analysis put omits kind" false
    (let rec mem_sub i =
       i + 6 <= String.length put_line
       && (String.sub put_line i 6 = {|"kind"|} || mem_sub (i + 1))
     in
     mem_sub 0);
  match
    Protocol.parse_request
      (Sink.to_string (Protocol.pull_request [ "k1"; "k2" ]))
  with
  | Ok { Protocol.query = Protocol.Pull { keys = [ "k1"; "k2" ] }; _ } -> ()
  | _ -> Alcotest.fail "pull builder round-trip"

let test_digest_pull_end_to_end () =
  with_server ~shard:"shard-d" (fun ~socket ~metrics_out:_ ->
      let c = Client.connect_unix socket in
      (* Seed the shard: one computed analysis, one pushed payload. *)
      let r =
        request_ok c (Protocol.construction_request ~name:"gworst-bliss" ~k:2 ())
      in
      let fp =
        match Sink.member "fingerprint" r with
        | Some (Sink.Str s) -> s
        | _ -> Alcotest.fail "fingerprint missing"
      in
      let payload = Sink.Obj [ ("answer", Sink.Int 42) ] in
      ignore
        (request_ok c
           (Protocol.put_request ~kind:"payload" ~fingerprint:"payload-key"
              payload));
      (* Rollup: every resident key's bucket appears, each digest
         recomputable from that bucket's (key, check) pairs. *)
      let rollup =
        match
          Protocol.rollup_of (request_ok c (Protocol.digest_request ()))
        with
        | Ok r -> r
        | Error e -> Alcotest.fail e
      in
      let buckets = List.map fst rollup in
      Alcotest.(check bool) "analysis bucket advertised" true
        (List.mem (Store.bucket_of_key fp) buckets);
      Alcotest.(check bool) "payload bucket advertised" true
        (List.mem (Store.bucket_of_key "payload-key") buckets);
      List.iter
        (fun (b, digest) ->
          let pairs =
            match
              Protocol.bucket_keys_of
                (request_ok c (Protocol.digest_request ~bucket:b ()))
            with
            | Ok pairs -> pairs
            | Error e -> Alcotest.fail e
          in
          Alcotest.(check string) "bucket digest matches pairs" digest
            (Store.bucket_digest pairs))
        rollup;
      (* Pull: the payload comes back verbatim, unknown keys as missing. *)
      let missing_of resp =
        match Sink.member "missing" resp with
        | Some (Sink.List l) ->
          List.filter_map (function Sink.Str s -> Some s | _ -> None) l
        | _ -> []
      in
      let pulled = request_ok c (Protocol.pull_request [ "payload-key"; "ghost" ]) in
      Alcotest.(check (list string)) "ghost missing" [ "ghost" ]
        (missing_of pulled);
      (match Protocol.entries_of pulled with
      | Error e -> Alcotest.fail e
      | Ok [ e ] ->
        Alcotest.(check string) "key" "payload-key" e.Store.key;
        Alcotest.(check string) "kind" "payload" e.Store.kind;
        Alcotest.(check string) "body verbatim" (Sink.to_string payload)
          (Sink.to_string e.Store.body)
      | Ok _ -> Alcotest.fail "expected exactly the payload entry");
      (* The pulled analysis entry re-puts cleanly: the repair loop's
         pull -> put cycle is lossless. *)
      (match
         Protocol.entries_of (request_ok c (Protocol.pull_request [ fp ]))
       with
      | Error e -> Alcotest.fail e
      | Ok [ e ] ->
        let stored =
          request_ok c
            (Protocol.put_request ~kind:e.Store.kind ~fingerprint:e.Store.key
               e.Store.body)
        in
        Alcotest.(check (option bool)) "re-put accepted" (Some true)
          (get_bool "stored" stored)
      | Ok _ -> Alcotest.fail "expected exactly the analysis entry");
      ignore (request_ok c Protocol.shutdown_request);
      Client.close c)

(* --- partition and slow-peer chaos ------------------------------------ *)

let test_connection_action () =
  (* One positive draw opens a window during which every connection is
     refused — a whole-node partition, not per-request noise. *)
  let t =
    Chaos.create
      { Chaos.disabled with seed = 1; partition_p = 1.0; partition_ms = 10_000 }
  in
  Alcotest.(check bool) "first connection refused" true
    (Chaos.connection_action t = `Refuse);
  Alcotest.(check bool) "window refuses the next connection too" true
    (Chaos.connection_action t = `Refuse);
  let t = Chaos.create { Chaos.disabled with seed = 1; slow_p = 1.0; slow_ms = 7 } in
  (match Chaos.connection_action t with
  | `Stall 7 -> ()
  | _ -> Alcotest.fail "expected a 7 ms stall");
  let t = Chaos.create Chaos.disabled in
  Alcotest.(check bool) "disabled proceeds" true
    (Chaos.connection_action t = `Proceed);
  (* The spec grammar covers the new fields. *)
  (match Chaos.parse "partition_p=0.5,partition_ms=250,slow_p=0.1,slow_ms=40" with
  | Ok cfg ->
    Alcotest.(check (float 1e-9)) "partition_p" 0.5 cfg.Chaos.partition_p;
    Alcotest.(check int) "partition_ms" 250 cfg.Chaos.partition_ms;
    Alcotest.(check (float 1e-9)) "slow_p" 0.1 cfg.Chaos.slow_p;
    Alcotest.(check int) "slow_ms" 40 cfg.Chaos.slow_ms;
    Alcotest.(check bool) "enabled" true (Chaos.is_enabled cfg)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Chaos.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %s" bad)
    [ "partition_p=2"; "partition_ms=-1"; "slow_p=x"; "slow_ms=0.5" ]

let test_lineserver_refuse_and_stall () =
  let dir = Filename.temp_file "bi_refuse" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "bi.sock" in
  let refuse = ref true in
  let ls = Lineserver.create (Lineserver.Unix_socket socket) in
  let th =
    Thread.create
      (fun () ->
        Lineserver.run
          ~on_accept:(fun () -> if !refuse then `Refuse else `Stall 50)
          ~handler:(fun oc _line ->
            output_string oc "{\"ok\":true}\n";
            flush oc;
            `Continue)
          ls)
      ()
  in
  (* Refused: the connection dies before any byte is served — to the
     client a partitioned node, a fast transport failure. *)
  let c = Client.connect_unix socket in
  (match Client.request c Protocol.stats_request with
  | Error (Client.Io _) -> ()
  | Ok _ -> Alcotest.fail "refused connection still answered"
  | Error f -> Alcotest.failf "unexpected failure: %s" (Client.failure_to_string f));
  Client.close c;
  (* Stalled: served late but served. *)
  refuse := false;
  let c = Client.connect_unix socket in
  let t0 = Unix.gettimeofday () in
  (match Client.request c Protocol.stats_request with
  | Ok resp -> Alcotest.(check bool) "served" true (Protocol.is_ok resp)
  | Error f -> Alcotest.fail (Client.failure_to_string f));
  Alcotest.(check bool) "stall delayed the response" true
    (Unix.gettimeofday () -. t0 >= 0.045);
  Client.close c;
  Lineserver.initiate_shutdown ls;
  Thread.join th

let () =
  Alcotest.run "bi_serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request parsing" `Quick test_parse_requests;
          Alcotest.test_case "response codes" `Quick test_response_codes;
          Alcotest.test_case "solver-tier round-trip" `Quick
            test_mode_round_trip;
          Alcotest.test_case "solution-concept round-trip" `Quick
            test_concept_round_trip;
          QCheck_alcotest.to_alcotest fuzz_parse_total;
          Alcotest.test_case "hostile inputs" `Quick test_parse_hostile_inputs;
          Alcotest.test_case "metrics accounting" `Quick test_metrics_accounting;
          Alcotest.test_case "chaos spec parsing" `Quick test_chaos_parse;
          Alcotest.test_case "digest and pull parsing" `Quick
            test_parse_digest_pull;
          Alcotest.test_case "partition and slow-peer actions" `Quick
            test_connection_action;
          QCheck_alcotest.to_alcotest backoff_within_bounds;
          QCheck_alcotest.to_alcotest backoff_hint_floor;
          QCheck_alcotest.to_alcotest backoff_seed_distinct;
          QCheck_alcotest.to_alcotest backoff_deterministic;
        ] );
      ( "server",
        [
          Alcotest.test_case "end to end over a unix socket" `Quick
            test_end_to_end;
          Alcotest.test_case "certified tier over the wire" `Quick
            test_certified_tier;
          Alcotest.test_case "correlated concept over the wire" `Quick
            test_correlated_concept;
          Alcotest.test_case "health and put verbs" `Quick test_health_and_put;
          Alcotest.test_case "metrics dump on shutdown" `Quick test_metrics_dump;
          Alcotest.test_case "survives garbage on the wire" `Quick
            test_survives_garbage;
          Alcotest.test_case "deadline exceeded" `Quick test_deadline_exceeded;
          Alcotest.test_case "load shedding and retry" `Quick test_load_shedding;
          Alcotest.test_case "idle timeout and reconnect" `Quick
            test_idle_timeout_and_reconnect;
          Alcotest.test_case "listener refuses live socket" `Quick
            test_bind_listener_safety;
          Alcotest.test_case "digest and pull verbs end to end" `Quick
            test_digest_pull_end_to_end;
          Alcotest.test_case "refused and stalled connections" `Quick
            test_lineserver_refuse_and_stall;
        ] );
    ]

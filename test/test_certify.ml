(* The certified solver tier: potential descent, branch and bound and
   smoothness brackets.

   Laws under test: the Bayesian potential strictly decreases along
   best-response steps; descent fixpoints are exactly the pure Bayesian
   equilibria the exhaustive predicate accepts; branch-and-bound optima
   equal the exhaustive minimum; every emitted certificate survives its
   independent checker, and any tampering — a margin slack, the claimed
   value, a ledger bound, a bracket end — is rejected. *)

open Bayesian_ignorance
open Num
module Bncs = Ncs.Bayesian_ncs
module Dist = Prob.Dist
module Gen = Graphs.Gen
module Descent = Certify.Descent
module Bnb = Certify.Bnb
module Smooth = Certify.Smooth
module Solve = Certify.Solve
module Mode = Certify.Mode

let construction name k =
  match Constructions.Registry.build name k with
  | Ok g -> g
  | Error e -> Alcotest.fail e

(* Same family of small random games as test_ncs: 3-4 vertices, two
   agents, support of one or two states — small enough to exhaust. *)
let random_bayesian_ncs seed =
  let rng = Random.State.make [| seed |] in
  let n = 3 + Random.State.int rng 2 in
  let graph = Gen.random_connected_graph rng ~n ~p:0.35 ~max_cost:5 in
  let k = 2 in
  let profile () =
    Array.init k (fun _ -> (Random.State.int rng n, Random.State.int rng n))
  in
  let support = List.init (1 + Random.State.int rng 2) (fun _ -> profile ()) in
  Bncs.make graph
    ~prior:
      (Dist.make
         (List.map
            (fun t -> (t, Rat.of_int (1 + Random.State.int rng 2)))
            support))

let apply_move s (i, ti, a) =
  let s' = Array.map Array.copy s in
  s'.(i).(ti) <- a;
  s'

(* --- descent --- *)

let prop_potential_strictly_decreases =
  QCheck2.Test.make ~name:"potential strictly decreases along BR steps"
    ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_bayesian_ncs seed in
      let rec go s steps =
        steps > 400
        ||
        match Descent.step g s with
        | None -> true
        | Some move ->
          let s' = apply_move s move in
          Rat.( < ) (Bncs.bayesian_potential g s')
            (Bncs.bayesian_potential g s)
          && go s' (steps + 1)
      in
      List.for_all (fun s -> go s 0) (Descent.starts ~seeds:2 g))

let prop_fixpoints_are_equilibria =
  QCheck2.Test.make
    ~name:"descent fixpoints satisfy the exhaustive equilibrium predicate"
    ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_bayesian_ncs seed in
      let game = Bncs.game g in
      List.for_all
        (fun s ->
          match Descent.descend g s with
          | None -> false
          | Some fp -> Bayes.Bayesian.is_bayesian_equilibrium game fp)
        (Descent.starts ~seeds:2 g))

let prop_descent_certificates_check =
  QCheck2.Test.make ~name:"every descent certificate survives its checker"
    ~count:20
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_bayesian_ncs seed in
      let certs, _starts = Descent.equilibria ~seeds:2 g in
      certs <> []
      && List.for_all
           (fun c -> Descent.check g c = Ok ())
           certs)

(* --- branch and bound --- *)

let exhaustive_opt g =
  Seq.fold_left
    (fun acc s -> Extended.min acc (Bncs.social_cost g s))
    (Extended.of_rat (Rat.of_int max_int))
    (Bncs.valid_strategy_profiles g)

let prop_bnb_matches_exhaustive_opt =
  QCheck2.Test.make ~name:"branch-and-bound optimum = exhaustive minimum"
    ~count:20
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_bayesian_ncs seed in
      let o = Bnb.optimum g in
      o.Bnb.certificate <> None
      && Extended.equal o.Bnb.value (exhaustive_opt g)
      && (match o.Bnb.certificate with
         | Some c -> Bnb.check g c = Ok ()
         | None -> false))

(* --- tamper rejection --- *)

let rejected = function Ok () -> false | Error _ -> true

let test_descent_tamper () =
  let g = construction "gworst-curse" 3 in
  let certs, _ = Descent.equilibria g in
  let cert = List.hd certs in
  Alcotest.(check bool) "genuine certificate accepted" true
    (Descent.check g cert = Ok ());
  Alcotest.(check bool) "margins are non-trivial" true (cert.margins <> []);
  let bumped =
    {
      cert with
      Descent.margins =
        (match cert.Descent.margins with
        | m :: rest -> { m with Descent.slack = Rat.add m.Descent.slack Rat.one } :: rest
        | [] -> []);
    }
  in
  Alcotest.(check bool) "tampered slack rejected" true
    (rejected (Descent.check g bumped));
  let inflated =
    { cert with Descent.value = Extended.add cert.Descent.value (Extended.of_rat Rat.one) }
  in
  Alcotest.(check bool) "tampered value rejected" true
    (rejected (Descent.check g inflated))

let test_bnb_tamper () =
  let g = construction "gworst-curse" 3 in
  let o = Bnb.optimum g in
  match o.Bnb.certificate with
  | None -> Alcotest.fail "expected a closed search on gworst-curse k=3"
  | Some c ->
    Alcotest.(check bool) "genuine certificate accepted" true
      (Bnb.check g c = Ok ());
    let lowered =
      { c with Bnb.value = Extended.mul_rat (Rat.of_ints 1 2) c.Bnb.value }
    in
    Alcotest.(check bool) "lowered value rejected" true
      (rejected (Bnb.check g lowered));
    (match c.Bnb.ledger with
    | [] -> ()
    | (prefix, b) :: rest ->
      let cooked =
        { c with Bnb.ledger = (prefix, Rat.add b Rat.one) :: rest }
      in
      Alcotest.(check bool) "cooked ledger bound rejected" true
        (rejected (Bnb.check g cooked)))

let test_solve_check_and_tamper () =
  let g = construction "anshelevich" 4 in
  let cert = Solve.certify g in
  Alcotest.(check bool) "full certificate accepted" true
    (Solve.check g cert = Ok ());
  let widened =
    {
      cert with
      Solve.best_eq_p =
        {
          cert.Solve.best_eq_p with
          Solve.hi =
            Extended.add cert.Solve.best_eq_p.Solve.hi (Extended.of_rat Rat.one);
        };
    }
  in
  Alcotest.(check bool) "tampered bracket rejected" true
    (rejected (Solve.check g widened))

let test_solve_on_constructions () =
  List.iter
    (fun (name, k) ->
      let g = construction name k in
      let cert = Solve.certify g in
      match Solve.check g cert with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "%s k=%d: %s" name k e))
    [ ("gworst-curse", 4); ("gworst-bliss", 4); ("anshelevich", 3) ]

(* --- smoothness --- *)

let test_smoothness () =
  Alcotest.(check bool) "fair share is (k, 0)-smooth" true
    (Smooth.check (Smooth.fair_share ~players:5 ()) = Ok ());
  Alcotest.(check bool) "potential bracket holds" true
    (Smooth.check_potential (Smooth.potential ~players:5 ()) = Ok ());
  Alcotest.(check bool) "understated lambda rejected" true
    (rejected
       (Smooth.check
          { Smooth.players = 3; lambda = Rat.one; mu = Rat.zero }));
  Alcotest.(check bool) "mu = 1 rejected" true
    (rejected (Smooth.check { Smooth.players = 3; lambda = Rat.of_int 3; mu = Rat.one }));
  Alcotest.(check bool) "understated potential upper rejected" true
    (rejected
       (Smooth.check_potential { Smooth.players = 4; upper = Rat.one }))

(* --- mode --- *)

let test_mode () =
  Alcotest.(check bool) "default is exhaustive" true
    (Mode.default = Mode.Exhaustive);
  List.iter
    (fun (s, m) ->
      Alcotest.(check bool) s true (Mode.of_string s = Ok m);
      Alcotest.(check string) ("to_string " ^ s) s (Mode.to_string m))
    [
      ("exhaustive", Mode.Exhaustive);
      ("certified", Mode.Certified);
      ("auto", Mode.Auto);
    ];
  Alcotest.(check bool) "unknown tier rejected" true
    (Result.is_error (Mode.of_string "bogus"));
  Alcotest.(check string) "exhaustive tag is empty" ""
    (Mode.cache_tag Mode.Exhaustive);
  Alcotest.(check string) "certified tag" "certified"
    (Mode.cache_tag Mode.Certified);
  Alcotest.(check bool) "auto has no tag" true
    (match Mode.cache_tag Mode.Auto with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "auto resolves small games to exhaustive" true
    (Mode.resolve ~valid_profiles:100. Mode.Auto = Mode.Exhaustive);
  Alcotest.(check bool) "auto resolves large games to certified" true
    (Mode.resolve ~valid_profiles:1e9 Mode.Auto = Mode.Certified);
  Alcotest.(check bool) "concrete tiers resolve to themselves" true
    (Mode.resolve ~valid_profiles:1e9 Mode.Exhaustive = Mode.Exhaustive
    && Mode.resolve ~valid_profiles:100. Mode.Certified = Mode.Certified)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_potential_strictly_decreases;
      prop_fixpoints_are_equilibria;
      prop_descent_certificates_check;
      prop_bnb_matches_exhaustive_opt;
    ]

let () =
  Alcotest.run "bi_certify"
    [
      ( "certificates",
        [
          Alcotest.test_case "descent tamper rejection" `Quick
            test_descent_tamper;
          Alcotest.test_case "branch-and-bound tamper rejection" `Quick
            test_bnb_tamper;
          Alcotest.test_case "solve check & bracket tamper" `Quick
            test_solve_check_and_tamper;
          Alcotest.test_case "constructions certify" `Quick
            test_solve_on_constructions;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "smoothness & potential brackets" `Quick
            test_smoothness;
          Alcotest.test_case "mode parsing, tags and resolution" `Quick
            test_mode;
        ] );
      ("laws", qtests);
    ]

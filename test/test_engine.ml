(* Tests for the parallel evaluation engine: pool/sequential agreement on
   every construction at small k, order-independence (and determinism) of
   the monoid reductions, JSON escaping round-trips, and pool plumbing
   (exception propagation, reuse, nesting). *)

open Bi_num
module Pool = Bi_engine.Pool
module Reduce = Bi_engine.Reduce
module Sink = Bi_engine.Sink
module Complete = Bi_ncs.Complete
module Bncs = Bi_ncs.Bayesian_ncs
module Measures = Bi_bayes.Measures
module Graph = Bi_graph.Graph

let ext = Alcotest.testable Extended.pp Extended.equal
let ext_opt = Alcotest.option ext
let rat = Alcotest.testable Rat.pp Rat.equal

(* --- (a) pool results = sequential results, every construction, small k --- *)

let constructions =
  [
    ("anshelevich k=3", fun () -> Bi_constructions.Anshelevich_game.game 3);
    ("anshelevich k=4", fun () -> Bi_constructions.Anshelevich_game.game 4);
    ("gworst-bliss k=3", fun () -> Bi_constructions.Gworst_game.bliss_game 3);
    ("gworst-curse k=3", fun () -> Bi_constructions.Gworst_game.curse_game 3);
    ("diamond level 1", fun () -> snd (Bi_constructions.Diamond_game.game 1));
  ]

let check_report name seq par =
  let field fname get = Alcotest.check ext_opt (name ^ " " ^ fname) (get seq) (get par) in
  Alcotest.check ext (name ^ " optP") seq.Measures.opt_p par.Measures.opt_p;
  Alcotest.check ext (name ^ " optC") seq.Measures.opt_c par.Measures.opt_c;
  field "best-eqP" (fun r -> r.Measures.best_eq_p);
  field "worst-eqP" (fun r -> r.Measures.worst_eq_p);
  field "best-eqC" (fun r -> r.Measures.best_eq_c);
  field "worst-eqC" (fun r -> r.Measures.worst_eq_c)

let test_measures_pool_equals_sequential () =
  Pool.with_pool 4 (fun pool ->
      List.iter
        (fun (name, make) ->
          let game = make () in
          check_report name (Bncs.measures_exhaustive game)
            (Bncs.measures_exhaustive ~pool game))
        constructions)

let test_profiles_pool_equals_sequential () =
  (* Not only the values: the witnessing profiles must match too, i.e.
     parallel tie-breaking is the sequential first-wins one. *)
  Pool.with_pool 3 (fun pool ->
      List.iter
        (fun (name, make) ->
          let game = make () in
          let c_seq, s_seq = Bncs.opt_p_exhaustive game in
          let c_par, s_par = Bncs.opt_p_exhaustive ~pool game in
          Alcotest.check ext (name ^ " optP value") c_seq c_par;
          Alcotest.(check bool) (name ^ " optP profile") true (s_seq = s_par);
          (match (Bncs.worst_eq_p game, Bncs.worst_eq_p ~pool game) with
           | Some (v1, p1), Some (v2, p2) ->
             Alcotest.check ext (name ^ " worst-eqP value") v1 v2;
             Alcotest.(check bool) (name ^ " worst-eqP profile") true (p1 = p2)
           | None, None -> ()
           | _ -> Alcotest.fail (name ^ ": equilibrium existence disagrees")))
        [ List.nth constructions 0; List.nth constructions 2; List.nth constructions 3 ])

let complete_fixture () =
  (* Two agents, parallel edges plus a detour: several ties to break. *)
  let graph =
    Graph.make Undirected ~n:3
      [ (0, 1, Rat.one); (0, 1, Rat.one); (0, 2, Rat.one); (2, 1, Rat.one) ]
  in
  Complete.make graph [| (0, 1); (0, 1) |]

let test_complete_pool_equals_sequential () =
  Pool.with_pool 4 (fun pool ->
      let g = complete_fixture () in
      let c_seq, a_seq = Complete.optimum g in
      let c_par, a_par = Complete.optimum ~pool g in
      Alcotest.check rat "optimum value" c_seq c_par;
      Alcotest.(check bool) "optimum profile" true (a_seq = a_par);
      List.iter
        (fun (name, pick) ->
          match (pick ?pool:None g, pick ?pool:(Some pool) g) with
          | Some (v1, p1), Some (v2, p2) ->
            Alcotest.check rat (name ^ " value") v1 v2;
            Alcotest.(check bool) (name ^ " profile") true (p1 = p2)
          | None, None -> ()
          | _ -> Alcotest.fail (name ^ ": existence disagrees"))
        [
          ("best equilibrium", fun ?pool g -> Complete.best_equilibrium ?pool g);
          ("worst equilibrium", fun ?pool g -> Complete.worst_equilibrium ?pool g);
        ])

(* --- (b) reductions are order-independent and deterministic --- *)

let test_reduce_order_independence () =
  let rng = Random.State.make [| 0xbeef |] in
  let xs =
    Array.init 257 (fun _ ->
        Rat.of_ints (Random.State.int rng 2001 - 1000) (1 + Random.State.int rng 97))
  in
  let expected = Array.fold_left Rat.add Rat.zero xs in
  List.iter
    (fun size ->
      Pool.with_pool size (fun pool ->
          List.iter
            (fun chunk ->
              let got = Reduce.map_reduce pool ~chunk ~monoid:Reduce.rat_sum Fun.id xs in
              Alcotest.check rat
                (Printf.sprintf "rat sum, pool %d chunk %d" size chunk)
                expected got)
            [ 1; 3; 7; 64; 1000 ]))
    [ 1; 2; 4 ]

let test_first_min_tie_breaking () =
  (* Duplicate minima: the earliest index must win under any schedule. *)
  let xs = Array.init 100 (fun i -> (i, i mod 5)) in
  let monoid = Reduce.first_min ~cmp:Int.compare in
  let expected = Reduce.fold monoid (Array.map Option.some xs) in
  (match expected with
   | Some (0, 0) -> ()
   | _ -> Alcotest.fail "sequential first_min should pick index 0");
  List.iter
    (fun size ->
      Pool.with_pool size (fun pool ->
          for chunk = 1 to 9 do
            let got = Reduce.map_reduce pool ~chunk ~monoid Option.some xs in
            Alcotest.(check bool)
              (Printf.sprintf "first_min pool %d chunk %d" size chunk)
              true (got = expected)
          done))
    [ 2; 4 ];
  let m_max = Reduce.first_max ~cmp:Int.compare in
  let expected_max = Reduce.fold m_max (Array.map Option.some xs) in
  (match expected_max with
   | Some (4, 4) -> () (* first element achieving the max value 4 *)
   | _ -> Alcotest.fail "sequential first_max should pick index 4");
  Pool.with_pool 4 (fun pool ->
      Alcotest.(check bool) "first_max parallel" true
        (Reduce.map_reduce pool ~chunk:3 ~monoid:m_max Option.some xs = expected_max))

let test_both_monoid () =
  let xs = Array.init 50 (fun i -> i) in
  let monoid = Reduce.both Reduce.int_sum (Reduce.first_max ~cmp:Int.compare) in
  Pool.with_pool 3 (fun pool ->
      let total, best =
        Reduce.map_reduce pool ~chunk:4 ~monoid (fun i -> (i, Some (i, i * i))) xs
      in
      Alcotest.(check int) "sum component" 1225 total;
      Alcotest.(check bool) "argmax component" true (best = Some (49, 2401)))

(* --- (c) JSON encoder round-trips escaping --- *)

(* Minimal JSON string decoder: the inverse of Sink.escape over the
   encoder's output language. *)
let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Buffer.contents buf
    else if s.[i] = '\\' then begin
      (match s.[i + 1] with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
         Buffer.add_char buf
           (Char.chr (int_of_string ("0x" ^ String.sub s (i + 2) 4)))
       | c -> Alcotest.fail (Printf.sprintf "unexpected escape \\%c" c));
      go (i + if s.[i + 1] = 'u' then 6 else 2)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let adversarial_strings =
  [
    "";
    "plain";
    "with \"quotes\" inside";
    "back\\slash \\\" mix";
    "newline\nand\ttab\rand\bbell\007";
    String.init 32 Char.chr;
    "utf-8 séries: Gâteau — ≤ Ω(k) 🎲";
    "</script><script>alert(1)</script>";
    "trailing backslash \\";
    String.make 10_000 '"';
  ]

let test_json_escape_round_trip () =
  List.iter
    (fun s ->
      let encoded = Sink.escape s in
      (* No raw control bytes or bare quotes may survive encoding. *)
      String.iter
        (fun c ->
          if Char.code c < 0x20 then
            Alcotest.fail "control byte leaked through escaping")
        encoded;
      Alcotest.(check string) "round trip" s (unescape encoded))
    adversarial_strings

let test_json_to_string () =
  let j =
    Sink.Obj
      [
        ("name", Sink.Str "tab\there");
        ("xs", Sink.List [ Sink.Int 1; Sink.Float 0.5; Sink.Null; Sink.Bool true ]);
        ("nan", Sink.Float Float.nan);
        ("inf", Sink.Float Float.infinity);
      ]
  in
  Alcotest.(check string) "rendering"
    "{\"name\":\"tab\\there\",\"xs\":[1,0.5,null,true],\"nan\":null,\"inf\":null}"
    (Sink.to_string j);
  (* A sink file is one valid JSON object per line. *)
  let path = Filename.temp_file "bi_sink" ".json" in
  let sink = Sink.create path in
  Sink.emit sink [ ("record", Sink.Str "row"); ("k", Sink.Int 3) ];
  Sink.table sink ~section:"t" ~header:[ "paper bound"; "verdict" ]
    [ [ "O(k)"; "PASS" ]; [ "O(1)"; "FAIL" ] ];
  Sink.close sink;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "line count" 3 (List.length lines);
  Alcotest.(check bool) "keys slugified" true
    (List.exists
       (fun l ->
         l = "{\"record\":\"row\",\"section\":\"t\",\"paper_bound\":\"O(k)\",\"verdict\":\"PASS\"}")
       lines);
  Sys.remove path

(* --- pool plumbing --- *)

exception Boom

let test_pool_exception_propagation () =
  Pool.with_pool 4 (fun pool ->
      Alcotest.check_raises "exception reaches caller" Boom (fun () ->
          Pool.parallel_for pool 100 (fun lo _ -> if lo > 50 then raise Boom));
      (* The pool survives a failed job. *)
      let out = Pool.map_array pool (fun x -> x * x) (Array.init 10 Fun.id) in
      Alcotest.(check bool) "reusable after failure" true
        (out = Array.init 10 (fun i -> i * i)))

let test_pool_nested_and_empty () =
  Pool.with_pool 2 (fun pool ->
      Pool.parallel_for pool 0 (fun _ _ -> Alcotest.fail "empty range ran");
      (* Nested parallel ops degrade to sequential instead of deadlocking. *)
      let out =
        Pool.map_array pool
          (fun i ->
            Array.fold_left ( + ) 0
              (Pool.map_array pool (fun j -> (i * 10) + j) (Array.init 5 Fun.id)))
          (Array.init 8 Fun.id)
      in
      Alcotest.(check bool) "nested result" true
        (out = Array.init 8 (fun i -> (i * 50) + 10)))

(* --- (e) JSON parser round-trip and concurrent emit ------------------ *)

(* Generator for parser-exact values: no floats (the renderer collapses
   non-finite floats to null and shortest-form printing is not what the
   parser checks), strings over arbitrary bytes. *)
let gen_json =
  let open QCheck2.Gen in
  sized_size (int_range 0 4) (fix (fun self n ->
      let scalar =
        oneof
          [
            return Sink.Null;
            map (fun b -> Sink.Bool b) bool;
            map (fun i -> Sink.Int i) (int_range (-1_000_000) 1_000_000);
            map (fun s -> Sink.Str s) (string_size (int_range 0 12));
          ]
      in
      if n = 0 then scalar
      else
        oneof
          [
            scalar;
            map (fun xs -> Sink.List xs) (list_size (int_range 0 4) (self (n - 1)));
            map
              (fun kvs -> Sink.Obj kvs)
              (list_size (int_range 0 4)
                 (pair (string_size (int_range 0 8)) (self (n - 1))));
          ]))

(* Structural equality is too strict for round-trips only when objects
   hold duplicate keys (last-one-wins on parse is fine to rule out by
   re-rendering): compare rendered forms instead. *)
let prop_parse_print_roundtrip =
  QCheck2.Test.make ~name:"of_string inverts to_string" ~count:1000 gen_json
    (fun j ->
      match Sink.of_string (Sink.to_string j) with
      | Ok j' -> Sink.to_string j = Sink.to_string j'
      | Error _ -> false)

let test_parser_rejects () =
  List.iter
    (fun s ->
      match Sink.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parser accepted %S" s)
    [
      ""; "{"; "[1,]"; "{\"a\":}"; "{\"a\" 1}"; "tru"; "\"unterminated";
      "1 2"; "{\"a\":1}garbage"; "\"bad \\q escape\""; "nulll";
    ]

let test_parser_accepts_edge_cases () =
  List.iter
    (fun (s, expect) ->
      match Sink.of_string s with
      | Ok j -> Alcotest.(check string) s expect (Sink.to_string j)
      | Error e -> Alcotest.failf "parser rejected %S: %s" s e)
    [
      ("  {  } ", "{}");
      ("[ ]", "[]");
      ("-0.5e1", "-5");
      ({|"Aé"|}, {|"Aé"|});
      ({|{"a":[1,{"b":null}]}|}, {|{"a":[1,{"b":null}]}|});
    ]

(* The concurrency guarantee of Sink.emit: lines from racing domains
   never interleave mid-line — every line of the file parses and the
   count matches. *)
let test_sink_concurrent_emit () =
  let path = Filename.temp_file "bi_sink_par" ".json" in
  let sink = Sink.create path in
  let domains = 4 and lines_per_domain = 200 in
  let spawned =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to lines_per_domain - 1 do
              Sink.emit sink
                [
                  ("record", Sink.Str "row");
                  ("domain", Sink.Int d);
                  ("i", Sink.Int i);
                  ("payload", Sink.Str (String.make (8 + ((d + i) mod 32)) 'x'));
                ]
            done))
  in
  List.iter Domain.join spawned;
  Sink.close sink;
  let ic = open_in path in
  let count = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr count;
       match Sink.of_string line with
       | Ok (Sink.Obj _) -> ()
       | Ok _ -> Alcotest.fail "line is not an object"
       | Error e -> Alcotest.failf "torn line: %s" e
     done
   with End_of_file -> close_in ic);
  Alcotest.(check int) "every emit produced exactly one line"
    (domains * lines_per_domain) !count;
  Sys.remove path

(* Jobs counts are validated on arrival, both on the command line and in
   BI_JOBS: a count the pool cannot honor is a structured error, never a
   silent clamp to one worker. *)
let test_parse_jobs () =
  (match Pool.parse_jobs "4" with
  | Ok 4 -> ()
  | _ -> Alcotest.fail "plain count accepted");
  (match Pool.parse_jobs " 2 " with
  | Ok 2 -> ()
  | _ -> Alcotest.fail "surrounding whitespace trimmed");
  List.iter
    (fun s ->
      match Pool.parse_jobs s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must be rejected" s))
    [ "0"; "-3"; "abc"; ""; "2.5" ];
  Unix.putenv "BI_JOBS" "3";
  (match Pool.env_jobs () with
  | Ok (Some 3) -> ()
  | _ -> Alcotest.fail "well-formed BI_JOBS honored");
  Unix.putenv "BI_JOBS" "nope";
  (match Pool.env_jobs () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed BI_JOBS must be an error");
  (* putenv cannot unset; leave the default behind for later tests *)
  Unix.putenv "BI_JOBS" "1"

let parser_qtests =
  List.map QCheck_alcotest.to_alcotest [ prop_parse_print_roundtrip ]

let () =
  Alcotest.run "engine"
    [
      ( "pool-vs-sequential",
        [
          Alcotest.test_case "measures agree on all constructions" `Slow
            test_measures_pool_equals_sequential;
          Alcotest.test_case "witness profiles agree" `Slow
            test_profiles_pool_equals_sequential;
          Alcotest.test_case "complete-information solvers agree" `Quick
            test_complete_pool_equals_sequential;
        ] );
      ( "reduce",
        [
          Alcotest.test_case "sum is schedule-independent" `Quick
            test_reduce_order_independence;
          Alcotest.test_case "first-wins tie-breaking" `Quick
            test_first_min_tie_breaking;
          Alcotest.test_case "fused pair reduction" `Quick test_both_monoid;
        ] );
      ( "sink",
        [
          Alcotest.test_case "escape round-trips" `Quick test_json_escape_round_trip;
          Alcotest.test_case "rendering and line records" `Quick test_json_to_string;
          Alcotest.test_case "parser rejects malformed input" `Quick
            test_parser_rejects;
          Alcotest.test_case "parser accepts edge cases" `Quick
            test_parser_accepts_edge_cases;
          Alcotest.test_case "concurrent emit keeps lines whole" `Quick
            test_sink_concurrent_emit;
        ]
        @ parser_qtests );
      ( "pool",
        [
          Alcotest.test_case "exceptions propagate, pool survives" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "nested and empty ranges" `Quick
            test_pool_nested_and_empty;
          Alcotest.test_case "jobs validation" `Quick test_parse_jobs;
        ] );
    ]

(* Tests for NCS games: Shapley sharing, Rosenthal potential, exact
   best responses, equilibria, optima (including Steiner cross-checks),
   and the Bayesian NCS layer with a fully hand-computed instance. *)

open Bi_num
module Graph = Bi_graph.Graph
module Gen = Bi_graph.Gen
module Dist = Bi_prob.Dist
module Complete = Bi_ncs.Complete
module Bncs = Bi_ncs.Bayesian_ncs
module Bayesian = Bi_bayes.Bayesian
module Measures = Bi_bayes.Measures

let rat = Alcotest.testable Rat.pp Rat.equal
let ext = Alcotest.testable Extended.pp Extended.equal

let r = Rat.of_int
let rr = Rat.of_ints

(* Two parallel edges from 0 to 1: e0 costs 1, e1 costs 2; two agents
   both routing 0 -> 1. *)
let parallel_game () =
  Complete.make (Graph.make Undirected ~n:2 [ (0, 1, r 1); (0, 1, r 2) ]) [| (0, 1); (0, 1) |]

let profile_of g pick =
  (* Map each agent to the index of the path equal to [pick i]. *)
  Array.init (Complete.players g) (fun i ->
      let paths = Array.of_list (Complete.paths g i) in
      let rec find j =
        if j >= Array.length paths then Alcotest.fail "path not found"
        else if paths.(j) = pick i then j
        else find (j + 1)
      in
      find 0)

let test_parallel_costs () =
  let g = parallel_game () in
  let both_cheap = profile_of g (fun _ -> [ 0 ]) in
  Alcotest.check rat "shared payment" (rr 1 2) (Complete.player_cost g both_cheap 0);
  Alcotest.check rat "social = union" (r 1) (Complete.social_cost g both_cheap);
  let split = profile_of g (fun i -> [ i ]) in
  Alcotest.check rat "alone on expensive" (r 2) (Complete.player_cost g split 1);
  Alcotest.check rat "union of both" (r 3) (Complete.social_cost g split)

let test_parallel_equilibria () =
  let g = parallel_game () in
  (* Both-on-cheap and both-on-expensive are equilibria (sharing the
     expensive edge costs 1 each; moving alone to the cheap one also
     costs 1 — no strict improvement).  Splits are not equilibria. *)
  let eqs = List.of_seq (Complete.nash_equilibria g) in
  Alcotest.(check int) "two equilibria" 2 (List.length eqs);
  (match Complete.best_equilibrium g, Complete.worst_equilibrium g with
   | Some (b, _), Some (w, _) ->
     Alcotest.check rat "best" (r 1) b;
     Alcotest.check rat "worst" (r 2) w
   | _ -> Alcotest.fail "equilibria exist");
  let opt, _ = Complete.optimum g in
  Alcotest.check rat "optimum" (r 1) opt;
  Alcotest.(check bool) "PoS bound" true (Complete.price_of_stability_bound_holds g)

let test_potential_is_exact () =
  let g = parallel_game () in
  Alcotest.(check bool) "rosenthal exact on strategic lowering" true
    (Bi_game.Strategic.is_exact_potential (Complete.to_strategic g)
       (fun profile -> Complete.potential g profile));
  let both_cheap = profile_of g (fun _ -> [ 0 ]) in
  Alcotest.check rat "potential value" (rr 3 2) (Complete.potential g both_cheap)

let test_best_response_shortest_path () =
  (* Grid-ish graph: agent 1 sits on a path; agent 0's best response
     shares it. *)
  let graph =
    Graph.make Undirected ~n:4
      [ (0, 1, r 4); (0, 2, r 3); (2, 1, r 3); (1, 3, r 1) ]
  in
  let g = Complete.make graph [| (0, 1); (0, 3) |] in
  (* Agent 1 currently uses 0-2-1-3; agent 0's options: direct (4) or
     share 0-2-1 paying 3. *)
  let start =
    profile_of g (fun i -> if i = 0 then [ 0 ] else [ 1; 2; 3 ])
  in
  let br = Complete.best_response g start 0 in
  let deviated = Array.copy start in
  deviated.(0) <- br;
  Alcotest.check rat "shared best response" (r 3) (Complete.player_cost g deviated 0);
  Alcotest.(check (list int)) "the shared path" [ 1; 2 ]
    (Complete.action_edges g deviated 0)

let test_dynamics_reach_nash () =
  let g = parallel_game () in
  match Complete.equilibrium_by_dynamics g [| 1; 0 |] with
  | Some p -> Alcotest.(check bool) "is nash" true (Complete.is_nash g p)
  | None -> Alcotest.fail "dynamics must converge (potential game)"

let test_optimum_rooted_agrees () =
  let graph =
    Graph.make Undirected ~n:5
      [ (0, 1, r 2); (0, 2, r 2); (1, 3, r 2); (2, 3, r 1); (0, 3, r 4); (3, 4, r 1) ]
  in
  let g = Complete.make graph [| (0, 3); (0, 4) |] in
  let brute, _ = Complete.optimum g in
  (match Complete.optimum_rooted g with
   | Some (Extended.Fin v) -> Alcotest.check rat "rooted = brute force" brute v
   | _ -> Alcotest.fail "shared source, should compute");
  (* Different sources: no rooted shortcut. *)
  let g2 = Complete.make graph [| (1, 3); (0, 4) |] in
  Alcotest.(check bool) "not rooted" true (Complete.optimum_rooted g2 = None)

let test_disconnected_rejected () =
  let graph = Graph.make Undirected ~n:3 [ (0, 1, r 1) ] in
  Alcotest.check_raises "no path"
    (Invalid_argument "Complete.make: agent with disconnected terminals") (fun () ->
      ignore (Complete.make graph [| (0, 2) |]))

(* --- The hand-computed Bayesian NCS instance ---

   Graph: two parallel 0-1 edges, e0 costing 1 and e1 costing 3/2.
   Agent 0 always travels 0->1.  Agent 1 travels 0->1 with probability
   1/2 and is absent (0->0) otherwise.

   Worked out by hand:
     optP = optC = best-eqC = 1,   best-eqP = worst-eqP = 1  (unique
     Bayesian equilibrium: both buy e0, absent agent buys nothing),
     worst-eqC = 5/4 (when both are present, both-on-e1 is a Nash
     equilibrium of the underlying game costing 3/2).
   So worst-eqP / worst-eqC = 4/5 < 1: mild "ignorance is bliss". *)
let unknown_partner () =
  let graph = Graph.make Undirected ~n:2 [ (0, 1, r 1); (0, 1, rr 3 2) ] in
  Bncs.make graph
    ~prior:(Dist.uniform [ [| (0, 1); (0, 1) |]; [| (0, 1); (0, 0) |] ])

let test_bayesian_ncs_structure () =
  let g = unknown_partner () in
  Alcotest.(check int) "players" 2 (Bncs.players g);
  Alcotest.(check int) "agent 0 types" 1 (Array.length (Bncs.types g 0));
  Alcotest.(check int) "agent 1 types" 2 (Array.length (Bncs.types g 1));
  Alcotest.(check int) "agent 0 actions" 2 (Array.length (Bncs.actions g 0));
  (* Agent 1: paths e0, e1 and the empty path. *)
  Alcotest.(check int) "agent 1 actions" 3 (Array.length (Bncs.actions g 1));
  (* At the absent type, everything trivially connects 0 to 0. *)
  Alcotest.(check int) "absent type valid actions" 3
    (List.length (Bncs.valid_actions g 1 1));
  Alcotest.(check int) "present type valid actions" 2
    (List.length (Bncs.valid_actions g 1 0))

let test_bayesian_ncs_measures () =
  let g = unknown_partner () in
  let m = Bncs.measures_exhaustive g in
  Alcotest.check ext "optP" Extended.one m.Measures.opt_p;
  Alcotest.check ext "optC" Extended.one m.Measures.opt_c;
  Alcotest.(check (option ext)) "best-eqP" (Some Extended.one) m.Measures.best_eq_p;
  Alcotest.(check (option ext)) "worst-eqP" (Some Extended.one) m.Measures.worst_eq_p;
  Alcotest.(check (option ext)) "best-eqC" (Some Extended.one) m.Measures.best_eq_c;
  Alcotest.(check (option ext)) "worst-eqC" (Some (Extended.of_ints 5 4)) m.Measures.worst_eq_c;
  Alcotest.(check bool) "observation 2.2" true (Measures.observation_2_2_holds m);
  (* Ignorance is (mildly) bliss here. *)
  (match m.Measures.worst_eq_p, m.Measures.worst_eq_c with
   | Some p, Some c -> Alcotest.(check bool) "worst-eqP < worst-eqC" true Extended.(p < c)
   | _ -> Alcotest.fail "worst equilibria exist")

let test_bayesian_ncs_equilibrium_unique () =
  let g = unknown_partner () in
  let eqs = List.of_seq (Bncs.bayesian_equilibria g) in
  Alcotest.(check int) "unique Bayesian equilibrium" 1 (List.length eqs);
  match eqs with
  | [ s ] ->
    (* Both present agents buy e0 ([0] is e0's path index for agent 0). *)
    Alcotest.(check (list int)) "agent 0 buys e0" [ 0 ] (Bncs.actions g 0).(s.(0).(0));
    Alcotest.(check (list int)) "agent 1 buys e0 when present" [ 0 ]
      (Bncs.actions g 1).(s.(1).(0));
    Alcotest.(check (list int)) "agent 1 buys nothing when absent" []
      (Bncs.actions g 1).(s.(1).(1))
  | _ -> Alcotest.fail "unique"

let test_bayesian_ncs_dynamics_and_bounds () =
  let g = unknown_partner () in
  (match Bncs.equilibrium_by_dynamics g with
   | Some s ->
     Alcotest.(check bool) "dynamics land on equilibrium" true
       (Bayesian.is_bayesian_equilibrium (Bncs.game g) s)
   | None -> Alcotest.fail "dynamics converge");
  Alcotest.(check bool) "lemma 3.1 bound" true (Bncs.lemma_3_1_bound_holds g);
  Alcotest.(check bool) "lemma 3.8 bound" true (Bncs.lemma_3_8_bound_holds g)

let test_bayesian_potential_decreases () =
  let g = unknown_partner () in
  (* The shortest-path profile is the equilibrium here; check the
     potential is minimized there among valid profiles. *)
  let eq = Bncs.shortest_path_profile g in
  let eq_pot = Bncs.bayesian_potential g eq in
  Seq.iter
    (fun s ->
      if Rat.( < ) (Bncs.bayesian_potential g s) eq_pot then
        Alcotest.fail "equilibrium should minimize the potential here")
    (Bncs.valid_strategy_profiles g)

(* --- Random cross-checks --- *)

let random_complete seed =
  let rng = Random.State.make [| seed |] in
  let n = 3 + Random.State.int rng 3 in
  let graph = Gen.random_connected_graph rng ~n ~p:0.4 ~max_cost:6 in
  let k = 1 + Random.State.int rng 2 in
  let pairs =
    Array.init k (fun _ -> (Random.State.int rng n, Random.State.int rng n))
  in
  Complete.make graph pairs

let prop_best_response_matches_enumeration =
  QCheck2.Test.make ~name:"shortest-path best response = enumeration argmin" ~count:80
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_complete seed in
      let rng = Random.State.make [| seed + 1 |] in
      let profile =
        Array.init (Complete.players g) (fun i ->
            Random.State.int rng (List.length (Complete.paths g i)))
      in
      let ok = ref true in
      for i = 0 to Complete.players g - 1 do
        let br = Complete.best_response g profile i in
        let cost_with j =
          let p = Array.copy profile in
          p.(i) <- j;
          Complete.player_cost g p i
        in
        let br_cost = cost_with br in
        for j = 0 to List.length (Complete.paths g i) - 1 do
          if Rat.( < ) (cost_with j) br_cost then ok := false
        done
      done;
      !ok)

let prop_ncs_has_pure_equilibrium =
  QCheck2.Test.make ~name:"NCS games have pure equilibria" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_complete seed in
      match Complete.equilibrium_by_dynamics g (Array.make (Complete.players g) 0) with
      | Some p -> Complete.is_nash g p
      | None -> false)

let prop_pos_bound =
  QCheck2.Test.make ~name:"price of stability <= H(k) on random NCS games" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed -> Complete.price_of_stability_bound_holds (random_complete seed))

let random_bayesian_ncs seed =
  let rng = Random.State.make [| seed |] in
  let n = 3 + Random.State.int rng 2 in
  let graph = Gen.random_connected_graph rng ~n ~p:0.35 ~max_cost:5 in
  let k = 2 in
  let profile () =
    Array.init k (fun _ -> (Random.State.int rng n, Random.State.int rng n))
  in
  let support = List.init (1 + Random.State.int rng 2) (fun _ -> profile ()) in
  Bncs.make graph
    ~prior:(Dist.make (List.map (fun t -> (t, Rat.of_int (1 + Random.State.int rng 2))) support))

let prop_bayesian_ncs_obs22 =
  QCheck2.Test.make ~name:"observation 2.2 on random Bayesian NCS games" ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_bayesian_ncs seed in
      Measures.observation_2_2_holds (Bncs.measures_exhaustive g))

let prop_bayesian_ncs_lemma31 =
  QCheck2.Test.make ~name:"lemma 3.1 universal bound on random games" ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed -> Bncs.lemma_3_1_bound_holds (random_bayesian_ncs seed))

let prop_bayesian_ncs_lemma38 =
  QCheck2.Test.make ~name:"lemma 3.8 universal bound on random games" ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed -> Bncs.lemma_3_8_bound_holds (random_bayesian_ncs seed))

let prop_bayesian_dynamics_reach_equilibrium =
  QCheck2.Test.make ~name:"Bayesian BR dynamics reach an equilibrium" ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_bayesian_ncs seed in
      match Bncs.equilibrium_by_dynamics g with
      | Some s -> Bayesian.is_bayesian_equilibrium (Bncs.game g) s
      | None -> false)

(* The solvers evaluate deviations incrementally (delta against a load
   vector built once per profile); these properties pin that evaluation
   to the from-scratch definition on random instances. *)
let prop_incremental_nash_matches_scratch =
  QCheck2.Test.make ~name:"incremental Nash predicate = from-scratch deviation scan"
    ~count:80
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_complete seed in
      let rng = Random.State.make [| seed + 7 |] in
      let ok = ref true in
      for _ = 1 to 5 do
        let profile =
          Array.init (Complete.players g) (fun i ->
              Random.State.int rng (List.length (Complete.paths g i)))
        in
        let scratch_nash =
          let no_improvement i =
            let current = Complete.player_cost g profile i in
            List.for_all
              (fun j ->
                let p = Array.copy profile in
                p.(i) <- j;
                Rat.( <= ) current (Complete.player_cost g p i))
              (List.init (List.length (Complete.paths g i)) Fun.id)
          in
          List.for_all no_improvement
            (List.init (Complete.players g) Fun.id)
        in
        if Complete.is_nash g profile <> scratch_nash then ok := false
      done;
      !ok)

let prop_bayesian_fast_eval_matches_generic =
  QCheck2.Test.make
    ~name:"incremental Bayesian predicate & social cost = generic evaluation"
    ~count:20
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_bayesian_ncs seed in
      let game = Bncs.game g in
      let fast_eqs = List.of_seq (Bncs.bayesian_equilibria g) in
      let generic_eqs =
        List.of_seq
          (Seq.filter
             (Bayesian.is_bayesian_equilibrium game)
             (Bncs.valid_strategy_profiles g))
      in
      fast_eqs = generic_eqs
      && Seq.for_all
           (fun s ->
             Extended.equal (Bncs.social_cost g s) (Bayesian.social_cost game s))
           (Bncs.valid_strategy_profiles g))

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_best_response_matches_enumeration;
      prop_ncs_has_pure_equilibrium;
      prop_pos_bound;
      prop_bayesian_ncs_obs22;
      prop_bayesian_ncs_lemma31;
      prop_bayesian_ncs_lemma38;
      prop_bayesian_dynamics_reach_equilibrium;
      prop_incremental_nash_matches_scratch;
      prop_bayesian_fast_eval_matches_generic;
    ]

let () =
  Alcotest.run "bi_ncs"
    [
      ( "complete",
        [
          Alcotest.test_case "payments & social cost" `Quick test_parallel_costs;
          Alcotest.test_case "equilibria" `Quick test_parallel_equilibria;
          Alcotest.test_case "potential exactness" `Quick test_potential_is_exact;
          Alcotest.test_case "best response via dijkstra" `Quick test_best_response_shortest_path;
          Alcotest.test_case "dynamics" `Quick test_dynamics_reach_nash;
          Alcotest.test_case "optimum rooted" `Quick test_optimum_rooted_agrees;
          Alcotest.test_case "disconnected rejected" `Quick test_disconnected_rejected;
        ] );
      ( "bayesian",
        [
          Alcotest.test_case "structure" `Quick test_bayesian_ncs_structure;
          Alcotest.test_case "hand-computed measures" `Quick test_bayesian_ncs_measures;
          Alcotest.test_case "unique equilibrium" `Quick test_bayesian_ncs_equilibrium_unique;
          Alcotest.test_case "dynamics & universal bounds" `Quick
            test_bayesian_ncs_dynamics_and_bounds;
          Alcotest.test_case "potential minimization" `Quick test_bayesian_potential_decreases;
        ] );
      ("properties", qtests);
    ]

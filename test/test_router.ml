(* Tests for the cluster front-end: consistent-hash ring laws,
   membership state machine, and an end-to-end router over in-process
   shards — forward, front cache, quorum replication, failover with
   byte-identical warm answers, and structured errors when every shard
   is gone. *)

module Ring = Bi_router.Ring
module Membership = Bi_router.Membership
module Router = Bi_router.Router
module Hints = Bi_router.Hints
module Fsck = Bi_router.Fsck
module Store = Bi_cache.Store
module Protocol = Bi_serve.Protocol
module Server = Bi_serve.Server
module Client = Bi_serve.Client
module Service = Bi_cache.Service
module Sink = Bi_engine.Sink

(* --- ring laws --------------------------------------------------------- *)

let gen_member = QCheck2.Gen.(map (Printf.sprintf "shard-%d") (int_range 0 9))

let gen_members =
  QCheck2.Gen.(list_size (int_range 2 6) gen_member)

let gen_key = QCheck2.Gen.(map (Printf.sprintf "fp-%d") int)

(* Adding one member moves a key only onto that member: every other key
   keeps its previous owner.  This is the property that makes membership
   changes cheap — the cluster never reshuffles keys between survivors. *)
let ring_stable_under_addition =
  QCheck2.Test.make ~name:"adding a member moves keys only onto it" ~count:300
    QCheck2.Gen.(tup3 gen_members (int_range 10 19) gen_key)
    (fun (members, extra, key) ->
      let added = Printf.sprintf "shard-%d" extra in
      let before = Ring.create members in
      let after = Ring.create (added :: members) in
      match (Ring.owner before key, Ring.owner after key) with
      | Some old_owner, Some new_owner ->
        new_owner = old_owner || new_owner = added
      | _ -> false)

(* The mirror law: removing a member only moves that member's keys. *)
let ring_stable_under_removal =
  QCheck2.Test.make ~name:"removing a member strands only its keys" ~count:300
    QCheck2.Gen.(tup2 gen_members gen_key)
    (fun (members, key) ->
      QCheck2.assume (List.length (List.sort_uniq compare members) >= 2);
      let ring = Ring.create members in
      let victim = List.hd (Ring.members ring) in
      let survivor_ring =
        Ring.create (List.filter (fun m -> m <> victim) members)
      in
      match Ring.owner ring key with
      | Some owner when owner <> victim ->
        Ring.owner survivor_ring key = Some owner
      | _ -> true)

(* Replica sets are distinct members, primary first, and never larger
   than the membership. *)
let ring_owner_sets =
  QCheck2.Test.make ~name:"owner lists are distinct and bounded" ~count:300
    QCheck2.Gen.(tup3 gen_members (int_range 1 5) gen_key)
    (fun (members, n, key) ->
      let ring = Ring.create members in
      let owners = Ring.owners ring ~n key in
      let distinct = List.sort_uniq compare owners in
      List.length owners = min n (List.length (Ring.members ring))
      && List.length distinct = List.length owners
      && Ring.owner ring key = Some (List.hd owners))

(* With the default vnodes, 1k fingerprints spread across 5 shards
   within a 3x band of the fair share — no shard is starved or crushed. *)
let test_ring_balance () =
  let members = List.init 5 (Printf.sprintf "shard-%d") in
  let ring = Ring.create members in
  let counts = Hashtbl.create 8 in
  let keys = 1000 in
  for i = 0 to keys - 1 do
    (* Keys shaped like real fingerprints: hex digests. *)
    let key = Digest.to_hex (Digest.string (Printf.sprintf "game-%d" i)) in
    match Ring.owner ring key with
    | Some m ->
      Hashtbl.replace counts m (1 + Option.value ~default:0 (Hashtbl.find_opt counts m))
    | None -> Alcotest.fail "ring with members owned nothing"
  done;
  let fair = keys / List.length members in
  List.iter
    (fun m ->
      let n = Option.value ~default:0 (Hashtbl.find_opt counts m) in
      if n < fair / 3 || n > fair * 3 then
        Alcotest.failf "%s owns %d of %d keys (fair share %d)" m n keys fair)
    members

(* Equal member sets build identical rings regardless of order or
   duplication — SIGHUP reloads with a shuffled file must not rehash. *)
let test_ring_canonical () =
  let a = Ring.create [ "s1"; "s2"; "s3" ] in
  let b = Ring.create [ "s3"; "s1"; "s2"; "s1" ] in
  Alcotest.(check (list string)) "members" (Ring.members a) (Ring.members b);
  for i = 0 to 99 do
    let key = Printf.sprintf "k%d" i in
    Alcotest.(check (option string)) key (Ring.owner a key) (Ring.owner b key)
  done

(* --- membership state machine ----------------------------------------- *)

let test_membership_lifecycle () =
  let m = Membership.create [ "a"; "b" ] in
  Alcotest.(check (list string)) "members" [ "a"; "b" ] (Membership.members m);
  (* Everyone starts Suspect with a probe due immediately. *)
  Alcotest.(check (list string)) "all due at 0" [ "a"; "b" ]
    (Membership.due m ~now:0);
  Alcotest.(check (list string)) "suspects are routable" [ "a"; "b" ]
    (Membership.routable m);
  (* First success is a recovery (the warming trigger); repeats are not. *)
  (match Membership.note_success m ~now:0 "a" with
  | `Recovered -> ()
  | `Ok -> Alcotest.fail "first success must report `Recovered");
  (match Membership.note_success m ~now:1 "a" with
  | `Ok -> ()
  | `Recovered -> Alcotest.fail "repeat success must not re-trigger warming");
  Alcotest.(check bool) "a is Up" true
    (Membership.state m "a" = Some Membership.Up);
  (* Three consecutive failures take a member Down, once. *)
  (match Membership.note_failure m ~now:1 "b" with
  | `Ok -> ()
  | `Went_down -> Alcotest.fail "down too early");
  ignore (Membership.note_failure m ~now:3 "b");
  (match Membership.note_failure m ~now:7 "b" with
  | `Went_down -> ()
  | `Ok -> Alcotest.fail "third failure must report `Went_down");
  Alcotest.(check bool) "b is Down" true
    (Membership.state m "b" = Some Membership.Down);
  Alcotest.(check (list string)) "down members are not routable" [ "a" ]
    (Membership.routable m);
  (* Recovery resets everything. *)
  (match Membership.note_success m ~now:20 "b" with
  | `Recovered -> ()
  | `Ok -> Alcotest.fail "coming back from Down must report `Recovered");
  Alcotest.(check (list string)) "both routable again" [ "a"; "b" ]
    (Membership.routable m)

(* Probe backoff is deterministic: after f consecutive failures the next
   probe is min max_backoff (2^f) ticks out. *)
let test_membership_backoff () =
  let m = Membership.create ~max_backoff:8 [ "a" ] in
  ignore (Membership.note_failure m ~now:0 "a");
  Alcotest.(check (list string)) "not due before the backoff" []
    (Membership.due m ~now:1);
  Alcotest.(check (list string)) "due after 2 ticks" [ "a" ]
    (Membership.due m ~now:2);
  ignore (Membership.note_failure m ~now:2 "a");
  Alcotest.(check (list string)) "second backoff is 4 ticks" [ "a" ]
    (Membership.due m ~now:6);
  ignore (Membership.note_failure m ~now:6 "a");
  ignore (Membership.note_failure m ~now:14 "a");
  (* 2^4 = 16 exceeds max_backoff = 8: capped. *)
  Alcotest.(check (list string)) "backoff capped" [ "a" ]
    (Membership.due m ~now:22)

let test_membership_reload () =
  let m = Membership.create [ "a"; "b" ] in
  ignore (Membership.note_success m ~now:0 "a");
  let added = Membership.set_members m [ "a"; "c" ] in
  Alcotest.(check (list string)) "added members reported" [ "c" ] added;
  Alcotest.(check (list string)) "membership replaced" [ "a"; "c" ]
    (Membership.members m);
  (* Survivors keep their state; newcomers start Suspect and due now. *)
  Alcotest.(check bool) "a still Up" true
    (Membership.state m "a" = Some Membership.Up);
  Alcotest.(check bool) "c starts Suspect" true
    (Membership.state m "c" = Some Membership.Suspect);
  Alcotest.(check bool) "b forgotten" true (Membership.state m "b" = None)

(* parse_members warns on stderr for every duplicate it drops; the
   dedupe tests provoke hundreds of them on purpose. *)
let silencing_stderr f =
  flush stderr;
  let saved = Unix.dup Unix.stderr in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stderr;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      flush stderr;
      Unix.dup2 saved Unix.stderr;
      Unix.close saved)
    f

let test_parse_members () =
  Alcotest.(check (list string))
    "commas and whitespace"
    [ "/tmp/a.sock"; "127.0.0.1:7401"; "7402" ]
    (Router.parse_members "/tmp/a.sock, 127.0.0.1:7401\n7402");
  Alcotest.(check (list string)) "empty" [] (Router.parse_members " \n ,, ");
  (* Duplicates are dropped at parse time — first occurrence kept, order
     preserved — so a doubled line in a members file cannot double-weight
     the ring or let one shard count twice toward the quorum. *)
  silencing_stderr (fun () ->
      Alcotest.(check (list string))
        "duplicates dropped, order kept" [ "a"; "b"; "c" ]
        (Router.parse_members "a, b, a\nb c b"))

let parse_members_dedupes =
  QCheck2.Test.make ~name:"parse_members keeps first occurrences in order"
    ~count:300
    QCheck2.Gen.(list_size (int_range 0 12) gen_member)
    (fun members ->
      let dedupe xs =
        List.rev
          (List.fold_left
             (fun acc x -> if List.mem x acc then acc else x :: acc)
             [] xs)
      in
      silencing_stderr (fun () ->
          Router.parse_members (String.concat "," members) = dedupe members))

(* --- hinted handoff ---------------------------------------------------- *)

let test_hints_log () =
  let h = Hints.create ~capacity:2 () in
  Alcotest.(check int) "empty" 0 (Hints.pending h);
  ignore (Hints.record h ~member:"a" ~fingerprint:"k1" ~kind:"analysis" (Sink.Int 1));
  ignore (Hints.record h ~member:"b" ~fingerprint:"k2" ~kind:"payload" (Sink.Int 2));
  Alcotest.(check int) "two parked" 2 (Hints.pending h);
  Alcotest.(check (list string)) "members, oldest hint first" [ "a"; "b" ]
    (Hints.members h);
  (* A newer write to the same (member, key) supersedes in place. *)
  ignore (Hints.record h ~member:"a" ~fingerprint:"k1" ~kind:"analysis" (Sink.Int 3));
  Alcotest.(check int) "superseded, not duplicated" 2 (Hints.pending h);
  (* At capacity the oldest hint (a's) is evicted to make room. *)
  let evicted =
    Hints.record h ~member:"b" ~fingerprint:"k3" ~kind:"analysis" (Sink.Int 4)
  in
  Alcotest.(check int) "one evicted" 1 evicted;
  Alcotest.(check int) "bounded" 2 (Hints.pending h);
  Alcotest.(check int) "a's hint was the eviction victim" 0
    (List.length (Hints.take h "a"));
  (match Hints.take h "b" with
  | [ h2; h3 ] ->
    Alcotest.(check string) "oldest first" "k2" h2.Hints.fingerprint;
    Alcotest.(check string) "kind kept" "payload" h2.Hints.kind;
    Alcotest.(check string) "newest last" "k3" h3.Hints.fingerprint
  | l -> Alcotest.failf "expected b's two hints, got %d" (List.length l));
  Alcotest.(check int) "drained" 0 (Hints.pending h);
  Alcotest.(check (list string)) "no members left" [] (Hints.members h);
  Hints.close h

let test_hints_durability () =
  let path = Filename.temp_file "bi_hints" ".jsonl" in
  let h = Hints.create ~path () in
  ignore (Hints.record h ~member:"a" ~fingerprint:"k1" ~kind:"analysis" (Sink.Int 1));
  ignore (Hints.record h ~member:"a" ~fingerprint:"k1" ~kind:"analysis" (Sink.Int 2));
  ignore (Hints.record h ~member:"b" ~fingerprint:"k2" ~kind:"payload" (Sink.Str "x"));
  ignore (Hints.take h "b");
  Hints.close h;
  (* A restarted router replays exactly the outstanding hints: the
     delivered one is tombstoned, the superseding body wins. *)
  let h = Hints.create ~path () in
  Alcotest.(check int) "only the undelivered hint survives" 1 (Hints.pending h);
  (match Hints.take h "a" with
  | [ hint ] ->
    Alcotest.(check string) "fingerprint" "k1" hint.Hints.fingerprint;
    Alcotest.(check string) "superseding body wins" "2"
      (Sink.to_string hint.Hints.body)
  | l -> Alcotest.failf "expected one replayed hint, got %d" (List.length l));
  Hints.close h;
  Sys.remove path

(* --- divergence rule (fsck / anti-entropy core) ------------------------ *)

let test_fsck_divergences () =
  let ring = Ring.create [ "s1"; "s2"; "s3" ] in
  let owners = Ring.owners ring ~n:2 "k" in
  let primary = List.nth owners 0 and secondary = List.nth owners 1 in
  let other =
    List.find (fun m -> not (List.mem m owners)) (Ring.members ring)
  in
  let tbl pairs =
    let t = Hashtbl.create 4 in
    List.iter (fun (k, v) -> Hashtbl.replace t k v) pairs;
    t
  in
  let checked, divs =
    Fsck.divergences ~ring ~replicas:2
      [
        (primary, tbl [ ("k", "c1") ]);
        (secondary, tbl [ ("k", "c1") ]);
        (other, tbl []);
      ]
  in
  Alcotest.(check int) "keys checked" 1 checked;
  Alcotest.(check int) "agreement is silent" 0 (List.length divs);
  let _, divs =
    Fsck.divergences ~ring ~replicas:2
      [ (primary, tbl [ ("k", "c1") ]); (secondary, tbl []); (other, tbl []) ]
  in
  (match divs with
  | [ d ] ->
    Alcotest.(check string) "authority is the first holder" primary
      d.Fsck.authority;
    Alcotest.(check (list string)) "missing owner reported" [ secondary ]
      d.Fsck.missing;
    Alcotest.(check int) "bucket" (Store.bucket_of_key "k") d.Fsck.bucket
  | _ -> Alcotest.fail "expected one divergence for the missing replica");
  (* Conflicting checks: the holder earliest in ring-owner order is the
     authority — the deterministic LWW proxy repair converges onto. *)
  let _, divs =
    Fsck.divergences ~ring ~replicas:2
      [
        (primary, tbl [ ("k", "c1") ]);
        (secondary, tbl [ ("k", "c2") ]);
        (other, tbl []);
      ]
  in
  (match divs with
  | [ d ] -> Alcotest.(check string) "conflict authority" primary d.Fsck.authority
  | _ -> Alcotest.fail "expected one divergence for the conflict");
  (* A non-owner's stray copy (membership-change leftover) is ignored. *)
  let _, divs =
    Fsck.divergences ~ring ~replicas:2
      [
        (primary, tbl [ ("k", "c1") ]);
        (secondary, tbl [ ("k", "c1") ]);
        (other, tbl [ ("k", "zzz") ]);
      ]
  in
  Alcotest.(check int) "stray non-owner copy ignored" 0 (List.length divs)

(* --- end-to-end: router over two in-process shards --------------------- *)

let get_bool key j =
  match Sink.member key j with Some (Sink.Bool b) -> Some b | _ -> None

let request_ok client req =
  match Client.request client req with
  | Error f -> Alcotest.fail (Client.failure_to_string f)
  | Ok resp ->
    Alcotest.(check bool) "response ok" true (Protocol.is_ok resp);
    resp

let with_ready_thread f =
  let ready = Mutex.create () and readied = Condition.create () in
  let is_ready = ref false in
  let on_ready () =
    Mutex.lock ready;
    is_ready := true;
    Condition.signal readied;
    Mutex.unlock ready
  in
  let th = Thread.create (fun () -> f ~on_ready) () in
  Mutex.lock ready;
  while not !is_ready do
    Condition.wait readied ready
  done;
  Mutex.unlock ready;
  th

let start_shard ~dir ~name =
  let socket = Filename.concat dir (name ^ ".sock") in
  let cache = Service.create ~shard:name () in
  let th =
    with_ready_thread (fun ~on_ready ->
        Server.run ~on_ready ~cache (Server.Unix_socket socket))
  in
  (socket, cache, th)

let stop_endpoint socket =
  try
    let c = Client.connect_unix socket in
    ignore (Client.request c Protocol.shutdown_request);
    Client.close c
  with Unix.Unix_error _ -> ()

let analysis_bytes resp =
  Sink.to_string (Option.get (Sink.member "analysis" resp))

let test_router_end_to_end () =
  let dir = Filename.temp_file "bi_router" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock_a, cache_a, th_a = start_shard ~dir ~name:"shard-a" in
  let sock_b, cache_b, th_b = start_shard ~dir ~name:"shard-b" in
  let members = [ sock_a; sock_b ] in
  let router_sock = Filename.concat dir "router.sock" in
  (* front_capacity = 1 so the second construction evicts the first from
     the front cache, forcing the failover path below to hit shards. *)
  let config =
    {
      Router.default_config with
      front_capacity = 1;
      probe_interval_s = 0.05;
      shard_timeout_s = 5.;
    }
  in
  let th_router =
    with_ready_thread (fun ~on_ready ->
        Router.run ~on_ready ~config ~members
          (Bi_serve.Lineserver.Unix_socket router_sock))
  in
  Fun.protect
    ~finally:(fun () ->
      stop_endpoint router_sock;
      Thread.join th_router;
      stop_endpoint sock_a;
      stop_endpoint sock_b;
      Thread.join th_a;
      Thread.join th_b;
      Service.close cache_a;
      Service.close cache_b)
    (fun () ->
      let c = Client.connect_unix router_sock in
      (* A router answers the control verbs itself. *)
      let h = request_ok c Protocol.health_request in
      Alcotest.(check (option string)) "router health" (Some "router")
        (Protocol.shard_of h);
      ignore (request_ok c Protocol.stats_request);
      (* Cold key: the router forwards, a shard computes. *)
      let req2 = Protocol.construction_request ~name:"gworst-bliss" ~k:2 () in
      let r2 = request_ok c req2 in
      Alcotest.(check (option bool)) "cold compute" (Some false)
        (get_bool "cached" r2);
      let fp2 =
        match Sink.member "fingerprint" r2 with
        | Some (Sink.Str s) -> s
        | _ -> Alcotest.fail "fingerprint missing"
      in
      let bytes2 = analysis_bytes r2 in
      (* Same key again: front cache, byte-identical. *)
      let r2' = request_ok c req2 in
      Alcotest.(check (option bool)) "front cache hit" (Some true)
        (get_bool "cached" r2');
      Alcotest.(check string) "front cache byte-identical" bytes2
        (analysis_bytes r2');
      (* With 2 members and quorum 2, replication has pushed the entry
         to both shards: each answers it cached, byte-identically. *)
      List.iter
        (fun sock ->
          let d = Client.connect_unix sock in
          let r = request_ok d req2 in
          Alcotest.(check (option bool))
            (sock ^ " holds a quorum copy") (Some true) (get_bool "cached" r);
          Alcotest.(check string) (sock ^ " copy byte-identical") bytes2
            (analysis_bytes r);
          Client.close d)
        members;
      (* A put through the router must reach the quorum too. *)
      let stored =
        request_ok c
          (Protocol.put_request ~fingerprint:fp2
             (Option.get (Sink.member "analysis" r2)))
      in
      Alcotest.(check (option bool)) "router put stored" (Some true)
        (get_bool "stored" stored);
      (* Evict fp2 from the 1-entry front cache... *)
      ignore (request_ok c (Protocol.construction_request ~name:"gworst-bliss" ~k:3 ()));
      (* ...kill fp2's primary owner, and ask again through the router:
         failover must serve the replica's copy, byte-identical. *)
      let ring = Ring.create members in
      let primary = Option.get (Ring.owner ring fp2) in
      let replica = List.find (fun m -> m <> primary) members in
      stop_endpoint primary;
      Thread.join (if primary = sock_a then th_a else th_b);
      let r2'' = request_ok c req2 in
      Alcotest.(check (option bool)) "failover hits the replica's cache"
        (Some true) (get_bool "cached" r2'');
      Alcotest.(check string) "failover byte-identical" bytes2
        (analysis_bytes r2'');
      (* Both shards gone: a fresh key must come back as a structured
         error, never a hang or a torn line. *)
      stop_endpoint replica;
      Thread.join (if replica = sock_a then th_a else th_b);
      (match
         Client.request c (Protocol.construction_request ~name:"gworst-bliss" ~k:4 ())
       with
      | Ok resp ->
        Alcotest.(check bool) "structured error with no shards" false
          (Protocol.is_ok resp)
      | Error f -> Alcotest.fail (Client.failure_to_string f));
      (* Control verbs keep working even with every shard gone. *)
      ignore (request_ok c Protocol.stats_request);
      let bye = request_ok c Protocol.shutdown_request in
      Alcotest.(check (option bool)) "router stopping" (Some true)
        (get_bool "stopping" bye);
      Client.close c)

(* A correlated concept through the router: routed on the
   concept-qualified key, answered with the LP payload and no
   ["analysis"] member (so the front cache skips it — the repeat is
   served from the shard's cache, not the router's), while a nash
   request for the same game flows exactly as before. *)
let test_router_correlated () =
  let dir = Filename.temp_file "bi_router_corr" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock_a, cache_a, th_a = start_shard ~dir ~name:"shard-a" in
  let members = [ sock_a ] in
  let router_sock = Filename.concat dir "router.sock" in
  let config =
    {
      Router.default_config with
      replicas = 1;
      quorum = 1;
      probe_interval_s = 0.05;
      shard_timeout_s = 10.;
    }
  in
  let th_router =
    with_ready_thread (fun ~on_ready ->
        Router.run ~on_ready ~config ~members
          (Bi_serve.Lineserver.Unix_socket router_sock))
  in
  Fun.protect
    ~finally:(fun () ->
      stop_endpoint router_sock;
      Thread.join th_router;
      stop_endpoint sock_a;
      Thread.join th_a;
      Service.close cache_a)
    (fun () ->
      let c = Client.connect_unix router_sock in
      let req =
        Protocol.construction_request ~concept:Bi_correlated.Concept.Cce
          ~name:"gworst-bliss" ~k:2 ()
      in
      let r1 = request_ok c req in
      Alcotest.(check (option bool)) "cold compute through the router"
        (Some false) (get_bool "cached" r1);
      Alcotest.(check bool) "correlated payload present" true
        (Sink.member "correlated" r1 <> None);
      Alcotest.(check bool) "no analysis member" true
        (Sink.member "analysis" r1 = None);
      (match Sink.member "fingerprint" r1 with
      | Some (Sink.Str fp) ->
        Alcotest.(check bool) "concept-qualified fingerprint" true
          (Filename.check_suffix fp "+cce")
      | _ -> Alcotest.fail "fingerprint missing");
      (* No analysis member, so the front cache stored nothing: the
         repeat forwards to the shard, which answers from its cache. *)
      let r2 = request_ok c req in
      Alcotest.(check (option bool)) "repeat from the shard's cache"
        (Some true) (get_bool "cached" r2);
      Alcotest.(check string) "byte-identical correlated payload"
        (Sink.to_string (Option.get (Sink.member "correlated" r1)))
        (Sink.to_string (Option.get (Sink.member "correlated" r2)));
      (* The nash default for the same game still flows as before. *)
      let r3 =
        request_ok c (Protocol.construction_request ~name:"gworst-bliss" ~k:2 ())
      in
      Alcotest.(check bool) "nash answer has its analysis" true
        (Sink.member "analysis" r3 <> None);
      Alcotest.(check bool) "nash answer has no concept member" true
        (Sink.member "concept" r3 = None);
      let bye = request_ok c Protocol.shutdown_request in
      Alcotest.(check (option bool)) "router stopping" (Some true)
        (get_bool "stopping" bye);
      Client.close c)

let get_int key j =
  match Sink.member key j with Some (Sink.Int n) -> Some n | _ -> None

let member_state stats m =
  match Sink.member "members" stats with
  | Some (Sink.Obj fields) -> (
    match List.assoc_opt m fields with Some (Sink.Str s) -> Some s | _ -> None)
  | _ -> None

let counter stats key =
  match Sink.member "router" stats with
  | Some counters -> Option.value ~default:0 (get_int key counters)
  | None -> 0

let wait_until ?(deadline = 15.) ~what f =
  let rec go left =
    if f () then ()
    else if left <= 0. then Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.1;
      go (left -. 0.1)
    end
  in
  go deadline

(* A failover read answered from a replica's cache parks the answer for
   every owner that failed (read-repair), and a fresh compute that
   cannot replicate to an owner parks a hint too.  Probes run only at
   startup here, so the dead primary stays nominally Up and is tried —
   and fails — first, making the failover deterministic. *)
let test_read_repair_parks_hints () =
  let dir = Filename.temp_file "bi_rr" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock_a, cache_a, th_a = start_shard ~dir ~name:"shard-a" in
  let sock_b, cache_b, th_b = start_shard ~dir ~name:"shard-b" in
  let members = [ sock_a; sock_b ] in
  let router_sock = Filename.concat dir "router.sock" in
  let config =
    {
      Router.default_config with
      front_capacity = 1;
      probe_interval_s = 30.;
      shard_timeout_s = 5.;
    }
  in
  let th_router =
    with_ready_thread (fun ~on_ready ->
        Router.run ~on_ready ~config ~members
          (Bi_serve.Lineserver.Unix_socket router_sock))
  in
  Fun.protect
    ~finally:(fun () ->
      stop_endpoint router_sock;
      Thread.join th_router;
      stop_endpoint sock_a;
      stop_endpoint sock_b;
      Thread.join th_a;
      Thread.join th_b;
      Service.close cache_a;
      Service.close cache_b)
    (fun () ->
      let c = Client.connect_unix router_sock in
      let req = Protocol.construction_request ~name:"gworst-bliss" ~k:2 () in
      let r = request_ok c req in
      let bytes = analysis_bytes r in
      let fp =
        match Sink.member "fingerprint" r with
        | Some (Sink.Str s) -> s
        | _ -> Alcotest.fail "fingerprint missing"
      in
      let ring = Ring.create members in
      let primary = Option.get (Ring.owner ring fp) in
      stop_endpoint primary;
      Thread.join (if primary = sock_a then th_a else th_b);
      (* Fresh compute: replication to the dead owner parks a hint (and
         evicts the k=2 entry from the 1-slot front cache). *)
      ignore
        (request_ok c (Protocol.construction_request ~name:"gworst-bliss" ~k:3 ()));
      (* The k=2 read now fails over to the replica's cache and parks
         the answer for the dead primary. *)
      let r' = request_ok c req in
      Alcotest.(check (option bool)) "failover read from the replica's cache"
        (Some true) (get_bool "cached" r');
      Alcotest.(check string) "failover byte-identical" bytes
        (analysis_bytes r');
      let stats = request_ok c Protocol.stats_request in
      Alcotest.(check bool) "both writes parked for the dead owner" true
        (Option.value ~default:0 (get_int "hints" stats) >= 2);
      Alcotest.(check bool) "read_repairs counted" true
        (counter stats "read_repairs" >= 1);
      Alcotest.(check bool) "hints_recorded counted" true
        (counter stats "hints_recorded" >= 2);
      ignore (request_ok c Protocol.shutdown_request);
      Client.close c)

(* Down→Up recovery drains the hint log into the restarted (empty)
   shard before warming, and the anti-entropy loop converges the keys
   no hint covered — all without recomputing anything. *)
let test_recovery_drains_hints () =
  let dir = Filename.temp_file "bi_drain" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock_a, cache_a, th_a = start_shard ~dir ~name:"shard-a" in
  let sock_b, cache_b, th_b = start_shard ~dir ~name:"shard-b" in
  let members = [ sock_a; sock_b ] in
  let router_sock = Filename.concat dir "router.sock" in
  let config =
    {
      Router.default_config with
      front_capacity = 1;
      probe_interval_s = 0.05;
      shard_timeout_s = 5.;
    }
  in
  let th_router =
    with_ready_thread (fun ~on_ready ->
        Router.run ~on_ready ~config ~members
          (Bi_serve.Lineserver.Unix_socket router_sock))
  in
  (* The primary is killed and restarted mid-test; track its live
     handles so the teardown joins the final incarnation. *)
  let prim_cache = ref None and prim_thread = ref None in
  Fun.protect
    ~finally:(fun () ->
      stop_endpoint router_sock;
      Thread.join th_router;
      stop_endpoint sock_a;
      stop_endpoint sock_b;
      Thread.join th_a;
      Thread.join th_b;
      Option.iter Thread.join !prim_thread;
      Service.close cache_a;
      Service.close cache_b;
      Option.iter Service.close !prim_cache)
    (fun () ->
      let c = Client.connect_unix router_sock in
      let req2 = Protocol.construction_request ~name:"gworst-bliss" ~k:2 () in
      let r2 = request_ok c req2 in
      let bytes2 = analysis_bytes r2 in
      let fp2 =
        match Sink.member "fingerprint" r2 with
        | Some (Sink.Str s) -> s
        | _ -> Alcotest.fail "fingerprint missing"
      in
      let ring = Ring.create members in
      let primary = Option.get (Ring.owner ring fp2) in
      stop_endpoint primary;
      Thread.join (if primary = sock_a then th_a else th_b);
      wait_until ~what:"prober marking the primary down" (fun () ->
          member_state (request_ok c Protocol.stats_request) primary
          = Some "down");
      (* A compute while an owner is Down parks a hint instead of a
         copy; the client still gets its answer. *)
      let req3 = Protocol.construction_request ~name:"gworst-bliss" ~k:3 () in
      let r3 = request_ok c req3 in
      let bytes3 = analysis_bytes r3 in
      let fp3 =
        match Sink.member "fingerprint" r3 with
        | Some (Sink.Str s) -> s
        | _ -> Alcotest.fail "fingerprint missing"
      in
      Alcotest.(check bool) "hint parked while the owner is down" true
        (Option.value ~default:0
           (get_int "hints" (request_ok c Protocol.stats_request))
        >= 1);
      (* Restart the primary, empty: no store, no cache. *)
      let name = Filename.chop_suffix (Filename.basename primary) ".sock" in
      let _, cache', th' = start_shard ~dir ~name in
      prim_cache := Some cache';
      prim_thread := Some th';
      (* Recovery must deliver the parked write.  Poll with [pull] —
         it never computes, so it cannot mask an undelivered hint. *)
      let holds fp expected_bytes =
        match
          let d = Client.connect_unix primary in
          Fun.protect
            ~finally:(fun () -> Client.close d)
            (fun () -> Client.request d (Protocol.pull_request [ fp ]))
        with
        | Ok resp when Protocol.is_ok resp -> (
          match Protocol.entries_of resp with
          | Ok [ e ] -> Sink.to_string e.Store.body = expected_bytes
          | _ -> false)
        | _ -> false
      in
      wait_until ~what:"hint drain delivering the missed write" (fun () ->
          holds fp3 bytes3);
      wait_until ~what:"the hint log to empty" (fun () ->
          Option.value ~default:(-1)
            (get_int "hints" (request_ok c Protocol.stats_request))
          = 0);
      Alcotest.(check bool) "repairs counted" true
        (counter (request_ok c Protocol.stats_request) "repairs" >= 1);
      (* The pre-crash key had no hint (it was written while both owners
         were up) and was lost with the primary's memory: only the
         anti-entropy loop can bring it back. *)
      wait_until ~what:"anti-entropy converging the lost key" (fun () ->
          holds fp2 bytes2);
      (* And the converged copies serve: cached, byte-identical. *)
      let d = Client.connect_unix primary in
      List.iter
        (fun (req, bytes) ->
          let r = request_ok d req in
          Alcotest.(check (option bool)) "restarted primary answers cached"
            (Some true) (get_bool "cached" r);
          Alcotest.(check string) "restarted primary byte-identical" bytes
            (analysis_bytes r))
        [ (req2, bytes2); (req3, bytes3) ];
      Client.close d;
      ignore (request_ok c Protocol.shutdown_request);
      Client.close c)

(* SIGHUP members-file reloads racing the prober, the anti-entropy
   loop, and live traffic: answers stay byte-identical through every
   flip, nothing deadlocks, and the final membership matches the file. *)
let test_sighup_reload_race () =
  let dir = Filename.temp_file "bi_hup" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock_a, cache_a, th_a = start_shard ~dir ~name:"shard-a" in
  let sock_b, cache_b, th_b = start_shard ~dir ~name:"shard-b" in
  let members_file = Filename.concat dir "members" in
  let write_members members =
    let tmp = members_file ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc (String.concat "\n" members);
    close_out oc;
    Sys.rename tmp members_file
  in
  write_members [ sock_a ];
  let router_sock = Filename.concat dir "router.sock" in
  let config =
    {
      Router.default_config with
      replicas = 2;
      quorum = 1;
      front_capacity = 1;
      probe_interval_s = 0.02;
      repair_interval_ticks = 1;
      shard_timeout_s = 5.;
    }
  in
  let th_router =
    with_ready_thread (fun ~on_ready ->
        Router.run ~on_ready ~members_file ~config ~members:[ sock_a ]
          (Bi_serve.Lineserver.Unix_socket router_sock))
  in
  Fun.protect
    ~finally:(fun () ->
      stop_endpoint router_sock;
      Thread.join th_router;
      stop_endpoint sock_a;
      stop_endpoint sock_b;
      Thread.join th_a;
      Thread.join th_b;
      Service.close cache_a;
      Service.close cache_b)
    (fun () ->
      let c = Client.connect_unix router_sock in
      let req2 = Protocol.construction_request ~name:"gworst-bliss" ~k:2 () in
      let req3 = Protocol.construction_request ~name:"gworst-bliss" ~k:3 () in
      let bytes2 = analysis_bytes (request_ok c req2) in
      let bytes3 = analysis_bytes (request_ok c req3) in
      let hup () = Unix.kill (Unix.getpid ()) Sys.sighup in
      silencing_stderr (fun () ->
          (* Flip the membership under load.  The 1-slot front cache and
             the alternating keys force every read through the routing
             path mid-reload; determinism makes the answers
             byte-identical whichever member serves them. *)
          for i = 1 to 12 do
            write_members
              (if i mod 2 = 0 then [ sock_a ] else [ sock_a; sock_b ]);
            hup ();
            let req, bytes = if i mod 2 = 0 then (req2, bytes2) else (req3, bytes3) in
            Alcotest.(check string)
              (Printf.sprintf "answer %d byte-identical under reload" i)
              bytes
              (analysis_bytes (request_ok c req));
            Thread.delay 0.03
          done;
          (* Settle on both members: the newcomer must be probed up and
             the membership must reflect exactly the file. *)
          write_members [ sock_a; sock_b ];
          hup ();
          wait_until ~what:"reloaded member probed up" (fun () ->
              member_state (request_ok c Protocol.stats_request) sock_b
              = Some "up"));
      let stats = request_ok c Protocol.stats_request in
      (match Sink.member "members" stats with
      | Some (Sink.Obj fields) ->
        Alcotest.(check (list string))
          "membership matches the file"
          (List.sort compare [ sock_a; sock_b ])
          (List.sort compare (List.map fst fields))
      | _ -> Alcotest.fail "members missing from stats");
      ignore (request_ok c Protocol.shutdown_request);
      Client.close c)

let () =
  Alcotest.run "bi_router"
    [
      ( "ring",
        [
          QCheck_alcotest.to_alcotest ring_stable_under_addition;
          QCheck_alcotest.to_alcotest ring_stable_under_removal;
          QCheck_alcotest.to_alcotest ring_owner_sets;
          Alcotest.test_case "balance across 1k fingerprints" `Quick
            test_ring_balance;
          Alcotest.test_case "canonical under order and duplicates" `Quick
            test_ring_canonical;
        ] );
      ( "membership",
        [
          Alcotest.test_case "lifecycle up/suspect/down" `Quick
            test_membership_lifecycle;
          Alcotest.test_case "deterministic probe backoff" `Quick
            test_membership_backoff;
          Alcotest.test_case "reload preserves survivors" `Quick
            test_membership_reload;
          Alcotest.test_case "member list parsing" `Quick test_parse_members;
          QCheck_alcotest.to_alcotest parse_members_dedupes;
        ] );
      ( "repair",
        [
          Alcotest.test_case "hint log record/supersede/evict/take" `Quick
            test_hints_log;
          Alcotest.test_case "hint log survives restart" `Quick
            test_hints_durability;
          Alcotest.test_case "divergence rule" `Quick test_fsck_divergences;
        ] );
      ( "router",
        [
          Alcotest.test_case "end to end with failover" `Quick
            test_router_end_to_end;
          Alcotest.test_case "correlated concept through the router" `Quick
            test_router_correlated;
          Alcotest.test_case "read-repair parks hints on failover" `Quick
            test_read_repair_parks_hints;
          Alcotest.test_case "recovery drains hints and anti-entropy heals"
            `Quick test_recovery_drains_hints;
          Alcotest.test_case "SIGHUP reload races probes and repair" `Quick
            test_sighup_reload_race;
        ] );
    ]

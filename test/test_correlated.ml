(* The correlated-play subsystem.

   Laws under test, on small random Bayesian NCS games and the paper's
   constructions (exhaustive window): every LP report survives its
   independent checker and any tampering is rejected; every pure
   Bayesian equilibrium is a feasible point of both the CCE and Comm
   polytopes; the values interleave exactly as the polytope inclusions
   dictate — best-cce <= best-comm <= best-eqP <= worst-eqP <=
   worst-comm <= worst-cce; and the deviation-free polytope reproduces
   Lemma 4.1: pub-best = optC. *)

open Bayesian_ignorance
open Num
module Bncs = Ncs.Bayesian_ncs
module Dist = Prob.Dist
module Gen = Graphs.Gen
module Concept = Correlated.Concept
module Corr = Correlated.Correlated

let construction name k =
  match Constructions.Registry.build name k with
  | Ok g -> g
  | Error e -> Alcotest.fail e

(* Same family of small random games as test_ncs/test_certify: 3-4
   vertices, two agents, support of one or two states. *)
let random_bayesian_ncs seed =
  let rng = Random.State.make [| seed |] in
  let n = 3 + Random.State.int rng 2 in
  let graph = Gen.random_connected_graph rng ~n ~p:0.35 ~max_cost:5 in
  let k = 2 in
  let profile () =
    Array.init k (fun _ -> (Random.State.int rng n, Random.State.int rng n))
  in
  let support = List.init (1 + Random.State.int rng 2) (fun _ -> profile ()) in
  Bncs.make graph
    ~prior:
      (Dist.make
         (List.map
            (fun t -> (t, Rat.of_int (1 + Random.State.int rng 2)))
            support))

let fin = Extended.to_rat_exn

let fin_opt name = function
  | Some v -> fin v
  | None -> Alcotest.fail (name ^ ": no pure Bayesian equilibrium")

(* --- the interleaving on a deterministic family --- *)

let test_table1_interleaving () =
  List.iter
    (fun (name, k) ->
      let g = construction name k in
      let report = Bncs.measures_exhaustive g in
      let cce = Corr.analyze ~concept:Concept.Cce g in
      let comm = Corr.analyze ~concept:Concept.Comm g in
      (match Corr.check g cce with
      | Ok () -> ()
      | Error e -> Alcotest.fail (name ^ " cce: " ^ e));
      (match Corr.check g comm with
      | Ok () -> ()
      | Error e -> Alcotest.fail (name ^ " comm: " ^ e));
      let best_eq = fin_opt name report.Bayes.Measures.best_eq_p in
      let worst_eq = fin_opt name report.Bayes.Measures.worst_eq_p in
      let chain =
        [
          ("best-cce <= best-comm", cce.Corr.best.Corr.value, comm.Corr.best.Corr.value);
          ("best-comm <= best-eqP", comm.Corr.best.Corr.value, best_eq);
          ("best-eqP <= worst-eqP", best_eq, worst_eq);
          ("worst-eqP <= worst-comm", worst_eq, comm.Corr.worst.Corr.value);
          ("worst-comm <= worst-cce", comm.Corr.worst.Corr.value, cce.Corr.worst.Corr.value);
        ]
      in
      List.iter
        (fun (label, lo, hi) ->
          if Rat.( > ) lo hi then
            Alcotest.fail
              (Printf.sprintf "%s k=%d: %s violated (%s > %s)" name k label
                 (Rat.to_string lo) (Rat.to_string hi)))
        chain;
      (* Lemma 4.1: the deviation-free polytope's optimum is optC. *)
      Alcotest.check
        (Alcotest.testable Rat.pp Rat.equal)
        (name ^ " pub-best = optC")
        (fin report.Bayes.Measures.opt_c)
        cce.Corr.pub_best.Corr.value)
    [ ("anshelevich", 2); ("anshelevich", 3); ("gworst-curse", 2); ("gworst-bliss", 2) ]

(* --- qcheck laws on random games --- *)

let prop_reports_verify =
  QCheck2.Test.make ~name:"reports survive their checker" ~count:20
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_bayesian_ncs seed in
      List.for_all
        (fun concept -> Corr.check g (Corr.analyze ~concept g) = Ok ())
        [ Concept.Cce; Concept.Comm ])

let prop_equilibria_are_members =
  QCheck2.Test.make
    ~name:"every pure Bayesian equilibrium lies in both polytopes" ~count:20
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_bayesian_ncs seed in
      let t = Corr.make g in
      Seq.for_all
        (fun s ->
          List.for_all
            (fun concept -> Corr.equilibrium_member t ~concept s = Ok ())
            [ Concept.Cce; Concept.Comm ])
        (Bncs.bayesian_equilibria g))

let prop_pub_best_is_opt_c =
  QCheck2.Test.make ~name:"pub-best equals optC (Lemma 4.1)" ~count:20
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_bayesian_ncs seed in
      let cce = Corr.analyze ~concept:Concept.Cce g in
      let opt_c = fin (Bayes.Measures.opt_c (Bncs.game g)) in
      Rat.equal cce.Corr.pub_best.Corr.value opt_c)

let prop_ordering_on_random_games =
  QCheck2.Test.make ~name:"cce/comm/eq interleaving on random games"
    ~count:20
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_bayesian_ncs seed in
      let report = Bncs.measures_exhaustive g in
      match (report.Bayes.Measures.best_eq_p, report.Bayes.Measures.worst_eq_p) with
      | Some be, Some we ->
        let be = fin be and we = fin we in
        let cce = Corr.analyze ~concept:Concept.Cce g in
        let comm = Corr.analyze ~concept:Concept.Comm g in
        Rat.( <= ) cce.Corr.best.Corr.value comm.Corr.best.Corr.value
        && Rat.( <= ) comm.Corr.best.Corr.value be
        && Rat.( <= ) we comm.Corr.worst.Corr.value
        && Rat.( <= ) comm.Corr.worst.Corr.value cce.Corr.worst.Corr.value
      | _ -> false (* NCS games always have a pure Bayesian equilibrium *))

let prop_tampered_reports_rejected =
  QCheck2.Test.make ~name:"tampered reports are rejected" ~count:20
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_bayesian_ncs seed in
      let rep = Corr.analyze ~concept:Concept.Cce g in
      (* Shift the best value and its certified objective together: the
         claimed pair stays internally consistent, so only the exact
         re-verification against the rebuilt LP can catch it. *)
      let bumped =
        {
          rep with
          Corr.best =
            {
              rep.Corr.best with
              Corr.value = Rat.add rep.Corr.best.Corr.value Rat.one;
              certificate =
                {
                  rep.Corr.best.Corr.certificate with
                  Lp.Simplex.objective =
                    Rat.add
                      rep.Corr.best.Corr.certificate.Lp.Simplex.objective
                      Rat.one;
                };
            };
        }
      in
      Corr.check g bumped <> Ok ()
      && (* and a wrong concept tag changes the LP, so the certificate
            no longer matches *)
      (rep.Corr.deviations = Corr.deviation_count (Corr.make g) Concept.Comm
      || Corr.check g { rep with Corr.concept = Concept.Comm } <> Ok ()))

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_reports_verify;
      prop_equilibria_are_members;
      prop_pub_best_is_opt_c;
      prop_ordering_on_random_games;
      prop_tampered_reports_rejected;
    ]

let test_nash_has_no_lp () =
  let g = construction "anshelevich" 2 in
  Alcotest.check_raises "analyze nash"
    (Invalid_argument
       "Correlated.analyze: nash has no LP — use the exhaustive or certified solvers")
    (fun () -> ignore (Corr.analyze ~concept:Concept.Nash g))

let test_concept_strings () =
  List.iter
    (fun c ->
      match Concept.of_string (Concept.to_string c) with
      | Ok c' when c' = c -> ()
      | _ -> Alcotest.fail "concept round-trip")
    [ Concept.Nash; Concept.Cce; Concept.Comm ];
  (match Concept.of_string "sunspot" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad concept accepted");
  Alcotest.(check string) "nash tag" "" (Concept.cache_tag Concept.Nash);
  Alcotest.(check string) "cce tag" "cce" (Concept.cache_tag Concept.Cce);
  Alcotest.(check string) "comm tag" "comm" (Concept.cache_tag Concept.Comm)

let () =
  Alcotest.run "bi_correlated"
    [
      ( "deterministic",
        [
          Alcotest.test_case "Table-1 interleaving + Lemma 4.1" `Quick
            test_table1_interleaving;
          Alcotest.test_case "nash has no LP" `Quick test_nash_has_no_lp;
          Alcotest.test_case "concept strings" `Quick test_concept_strings;
        ] );
      ("properties", qtests);
    ]

(* The exact-rational simplex solver.

   Laws under test: on random feasible programs every outcome carries a
   certificate its independent checker accepts — in particular the
   duality gap of an optimum is exactly zero; Bland's rule terminates on
   the classic cycling instance and on randomly degenerate systems;
   infeasibility and unboundedness round-trip through their Farkas/ray
   certificates; and tampering with any certificate coordinate is
   rejected. *)

open Bayesian_ignorance
open Num
module Simplex = Lp.Simplex

let rat = Alcotest.testable Rat.pp Rat.equal

let mat rows = Array.map (Array.map (fun (n, d) -> Rat.of_ints n d)) rows
let vec xs = Array.map (fun (n, d) -> Rat.of_ints n d) xs

let solve_exn p =
  let outcome, _ = Simplex.solve p in
  outcome

let optimal_exn p =
  match solve_exn p with
  | Simplex.Optimal cert -> cert
  | Simplex.Infeasible _ -> Alcotest.fail "unexpected Infeasible"
  | Simplex.Unbounded _ -> Alcotest.fail "unexpected Unbounded"

let check_ok p cert =
  match Simplex.check p cert with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("certificate rejected: " ^ e)

(* --- crafted instances --- *)

(* min x1 + x2 s.t. x1 + 2 x2 = 3: optimum 3/2 at (0, 3/2). *)
let tiny =
  { Simplex.a = mat [| [| (1, 1); (2, 1) |] |];
    b = vec [| (3, 1) |];
    c = vec [| (1, 1); (1, 1) |] }

let test_tiny_optimum () =
  let cert = optimal_exn tiny in
  Alcotest.check rat "objective" (Rat.of_ints 3 2) cert.Simplex.objective;
  check_ok tiny cert

(* A duplicated (redundant) row exercises the inert-artificial path:
   phase 1 cannot drive the second artificial out, and phase 2 must
   still optimize around the dead row. *)
let test_redundant_row () =
  let p =
    { Simplex.a = mat [| [| (1, 1); (1, 1) |]; [| (1, 1); (1, 1) |] |];
      b = vec [| (1, 1); (1, 1) |];
      c = vec [| (1, 1); (0, 1) |] }
  in
  let cert = optimal_exn p in
  Alcotest.check rat "objective" Rat.zero cert.Simplex.objective;
  check_ok p cert

(* Beale's classic cycling example (standard form): Dantzig pricing
   cycles forever on it; Bland's rule must terminate at the optimum
   -1/20. *)
let beale =
  {
    Simplex.a =
      mat
        [|
          [| (1, 1); (0, 1); (0, 1); (1, 4); (-60, 1); (-1, 25); (9, 1) |];
          [| (0, 1); (1, 1); (0, 1); (1, 2); (-90, 1); (-1, 50); (3, 1) |];
          [| (0, 1); (0, 1); (1, 1); (0, 1); (0, 1); (1, 1); (0, 1) |];
        |];
    b = vec [| (0, 1); (0, 1); (1, 1) |];
    c =
      vec
        [| (0, 1); (0, 1); (0, 1); (-3, 4); (150, 1); (-1, 50); (6, 1) |];
  }

let test_beale_terminates () =
  let cert = optimal_exn beale in
  Alcotest.check rat "objective" (Rat.of_ints (-1) 20) cert.Simplex.objective;
  check_ok beale cert

(* x1 + x2 = -1, x >= 0: infeasible; y = -1 is a Farkas certificate. *)
let test_infeasible_round_trip () =
  let p =
    { Simplex.a = mat [| [| (1, 1); (1, 1) |] |];
      b = vec [| (-1, 1) |];
      c = vec [| (0, 1); (0, 1) |] }
  in
  match solve_exn p with
  | Simplex.Infeasible { farkas } -> (
    (match Simplex.check_infeasible p farkas with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("Farkas certificate rejected: " ^ e));
    match Simplex.check_infeasible p (vec [| (1, 1) |]) with
    | Ok () -> Alcotest.fail "tampered Farkas certificate accepted"
    | Error _ -> ())
  | _ -> Alcotest.fail "expected Infeasible"

(* min -x1 s.t. x1 - x2 = 0: unbounded along (1, 1). *)
let test_unbounded_round_trip () =
  let p =
    { Simplex.a = mat [| [| (1, 1); (-1, 1) |] |];
      b = vec [| (0, 1) |];
      c = vec [| (-1, 1); (0, 1) |] }
  in
  match solve_exn p with
  | Simplex.Unbounded { witness; ray } -> (
    (match Simplex.check_unbounded p ~witness ~ray with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("ray certificate rejected: " ^ e));
    match Simplex.check_unbounded p ~witness ~ray:(vec [| (1, 1); (0, 1) |]) with
    | Ok () -> Alcotest.fail "tampered ray accepted"
    | Error _ -> ())
  | _ -> Alcotest.fail "expected Unbounded"

(* Empty constraint system: optimal at the origin for c >= 0, unbounded
   along any negative-cost coordinate otherwise. *)
let test_no_constraints () =
  let p0 = { Simplex.a = [||]; b = [||]; c = vec [| (1, 1); (2, 1) |] } in
  let cert = optimal_exn p0 in
  Alcotest.check rat "objective" Rat.zero cert.Simplex.objective;
  check_ok p0 cert;
  let p1 = { p0 with Simplex.c = vec [| (1, 1); (-1, 1) |] } in
  match solve_exn p1 with
  | Simplex.Unbounded { witness; ray } -> (
    match Simplex.check_unbounded p1 ~witness ~ray with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("ray certificate rejected: " ^ e))
  | _ -> Alcotest.fail "expected Unbounded"

let test_tampered_certificates () =
  let cert = optimal_exn tiny in
  let reject name cert' =
    match Simplex.check tiny cert' with
    | Ok () -> Alcotest.fail (name ^ ": tampered certificate accepted")
    | Error _ -> ()
  in
  reject "objective"
    { cert with Simplex.objective = Rat.add cert.Simplex.objective Rat.one };
  let x' = Array.copy cert.Simplex.x in
  x'.(0) <- Rat.add x'.(0) Rat.one;
  reject "primal" { cert with Simplex.x = x' };
  let y' = Array.copy cert.Simplex.y in
  y'.(0) <- Rat.add y'.(0) Rat.one;
  reject "dual" { cert with Simplex.y = y' };
  let y'' = Array.copy cert.Simplex.y in
  y''.(0) <- Rat.neg y''.(0);
  reject "dual sign" { cert with Simplex.y = y'' }

let test_pivot_rejects_zero () =
  let binv = [| [| Rat.one |] |] in
  let xb = [| Rat.one |] in
  Alcotest.check_raises "zero pivot"
    (Invalid_argument "Simplex.pivot: zero pivot element") (fun () ->
      Simplex.pivot ~binv ~xb ~column:[| Rat.zero |] ~row:0)

(* --- random programs --- *)

(* A feasible system by construction: draw x0 >= 0, set b = A x0.
   Degeneracy is deliberate — x0 is sparse, so many basic values are
   zero and the ratio tests tie constantly. *)
let random_feasible ?(nonneg_cost = false) seed =
  let rng = Random.State.make [| seed |] in
  let m = 1 + Random.State.int rng 3 in
  let n = m + 1 + Random.State.int rng 5 in
  let entry () = Rat.of_int (Random.State.int rng 7 - 3) in
  let a = Array.init m (fun _ -> Array.init n (fun _ -> entry ())) in
  let x0 =
    Array.init n (fun _ ->
        if Random.State.bool rng then Rat.zero
        else Rat.of_int (Random.State.int rng 4))
  in
  let acc = Rat.Acc.create () in
  let b =
    Array.map
      (fun row ->
        Rat.Acc.clear acc;
        Array.iteri (fun j aj -> Rat.Acc.add_mul acc aj x0.(j)) row;
        Rat.Acc.to_rat acc)
      a
  in
  let c =
    Array.init n (fun _ ->
        if nonneg_cost then Rat.of_int (Random.State.int rng 6)
        else Rat.of_int (Random.State.int rng 11 - 5))
  in
  { Simplex.a; b; c }

let prop_zero_duality_gap =
  QCheck2.Test.make ~name:"zero duality gap on random feasible programs"
    ~count:200
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      (* Nonnegative costs bound the program below, so the outcome must
         be Optimal; [check] verifies c.x = b.y = objective exactly. *)
      let p = random_feasible ~nonneg_cost:true seed in
      match solve_exn p with
      | Simplex.Optimal cert -> Simplex.check p cert = Ok ()
      | _ -> false)

let prop_outcomes_verify =
  QCheck2.Test.make
    ~name:"every outcome on degenerate random programs verifies" ~count:200
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let p = random_feasible seed in
      match solve_exn p with
      | Simplex.Optimal cert -> Simplex.check p cert = Ok ()
      | Simplex.Unbounded { witness; ray } ->
        Simplex.check_unbounded p ~witness ~ray = Ok ()
      | Simplex.Infeasible _ -> false (* feasible by construction *))

let prop_infeasible_round_trip =
  QCheck2.Test.make
    ~name:"contradictory rows yield verified Farkas certificates" ~count:200
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let p = random_feasible seed in
      (* Duplicate row 0 with a shifted right-hand side: no x satisfies
         both copies, whatever else the system says. *)
      let p' =
        {
          p with
          Simplex.a = Array.append p.Simplex.a [| Array.copy p.Simplex.a.(0) |];
          b = Array.append p.Simplex.b [| Rat.add p.Simplex.b.(0) Rat.one |];
        }
      in
      match solve_exn p' with
      | Simplex.Infeasible { farkas } ->
        Simplex.check_infeasible p' farkas = Ok ()
      | _ -> false)

let prop_tampered_objective_rejected =
  QCheck2.Test.make ~name:"tampered objective is always rejected" ~count:200
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let p = random_feasible ~nonneg_cost:true seed in
      match solve_exn p with
      | Simplex.Optimal cert ->
        Simplex.check p
          { cert with
            Simplex.objective = Rat.add cert.Simplex.objective Rat.one }
        <> Ok ()
      | _ -> false)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_zero_duality_gap;
      prop_outcomes_verify;
      prop_infeasible_round_trip;
      prop_tampered_objective_rejected;
    ]

let () =
  Alcotest.run "bi_lp"
    [
      ( "crafted",
        [
          Alcotest.test_case "two-variable optimum" `Quick test_tiny_optimum;
          Alcotest.test_case "redundant row" `Quick test_redundant_row;
          Alcotest.test_case "Beale cycling instance" `Quick
            test_beale_terminates;
          Alcotest.test_case "infeasible round-trip" `Quick
            test_infeasible_round_trip;
          Alcotest.test_case "unbounded round-trip" `Quick
            test_unbounded_round_trip;
          Alcotest.test_case "no constraints" `Quick test_no_constraints;
          Alcotest.test_case "tampered certificates" `Quick
            test_tampered_certificates;
          Alcotest.test_case "pivot rejects zero element" `Quick
            test_pivot_rejects_zero;
        ] );
      ("properties", qtests);
    ]

(* Tests for the exact-arithmetic substrate: bigints against the native
   int oracle, rational field laws, harmonic numbers. *)

open Bi_num

let bigint = Alcotest.testable Bigint.pp Bigint.equal
let rat = Alcotest.testable Rat.pp Rat.equal
let ext = Alcotest.testable Extended.pp Extended.equal

(* --- Bigint unit tests --- *)

let test_of_to_int () =
  List.iter
    (fun n ->
      Alcotest.(check (option int))
        (Printf.sprintf "roundtrip %d" n)
        (Some n)
        (Bigint.to_int_opt (Bigint.of_int n)))
    [ 0; 1; -1; 9999; 10000; 10001; -10000; 123456789; -987654321;
      max_int; min_int; max_int - 1; min_int + 1 ]

let test_of_string () =
  Alcotest.(check string) "positive" "123456789012345678901234567890"
    (Bigint.to_string (Bigint.of_string "123456789012345678901234567890"));
  Alcotest.(check string) "negative" "-42" (Bigint.to_string (Bigint.of_string "-42"));
  Alcotest.(check string) "leading zeros" "7" (Bigint.to_string (Bigint.of_string "0007"));
  Alcotest.(check string) "zero" "0" (Bigint.to_string (Bigint.of_string "000"));
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty string")
    (fun () -> ignore (Bigint.of_string ""));
  Alcotest.check_raises "garbage" (Invalid_argument "Bigint.of_string: invalid character")
    (fun () -> ignore (Bigint.of_string "12x4"))

let test_add_carries () =
  let a = Bigint.of_string "9999999999999999" in
  Alcotest.check bigint "carry chain"
    (Bigint.of_string "10000000000000000")
    (Bigint.add a Bigint.one)

let test_mul_large () =
  let a = Bigint.of_string "123456789" in
  let b = Bigint.of_string "987654321" in
  Alcotest.check bigint "large product" (Bigint.of_string "121932631112635269")
    (Bigint.mul a b)

let test_divmod_signs () =
  (* Truncated division: same convention as OCaml's / and mod. *)
  List.iter
    (fun (a, b) ->
      let q, r = Bigint.divmod (Bigint.of_int a) (Bigint.of_int b) in
      Alcotest.check bigint
        (Printf.sprintf "q %d/%d" a b)
        (Bigint.of_int (a / b)) q;
      Alcotest.check bigint
        (Printf.sprintf "r %d/%d" a b)
        (Bigint.of_int (a mod b)) r)
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (0, 5); (100000007, 10007);
      (999999999, 1); (12, 12); (5, 7); (-5, 7) ]

let test_div_by_zero () =
  Alcotest.check_raises "divmod by zero" Division_by_zero (fun () ->
      ignore (Bigint.divmod Bigint.one Bigint.zero))

let test_gcd () =
  let g a b = Bigint.to_int_opt (Bigint.gcd (Bigint.of_int a) (Bigint.of_int b)) in
  Alcotest.(check (option int)) "gcd 12 18" (Some 6) (g 12 18);
  Alcotest.(check (option int)) "gcd 0 5" (Some 5) (g 0 5);
  Alcotest.(check (option int)) "gcd -12 18" (Some 6) (g (-12) 18);
  Alcotest.(check (option int)) "gcd 0 0" (Some 0) (g 0 0);
  Alcotest.(check (option int)) "coprime" (Some 1) (g 17 19)

let test_pow () =
  Alcotest.check bigint "2^62" (Bigint.of_string "4611686018427387904")
    (Bigint.pow Bigint.two 62);
  Alcotest.check bigint "x^0" Bigint.one (Bigint.pow (Bigint.of_int 17) 0);
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Bigint.pow: negative exponent") (fun () ->
      ignore (Bigint.pow Bigint.two (-1)))

let test_factorial () =
  Alcotest.check bigint "20!" (Bigint.of_string "2432902008176640000")
    (Bigint.factorial 20);
  Alcotest.check bigint "30!" (Bigint.of_string "265252859812191058636308480000000")
    (Bigint.factorial 30);
  Alcotest.check bigint "0!" Bigint.one (Bigint.factorial 0)

let test_to_float () =
  Alcotest.(check (float 1e-6)) "1e20"
    1e20
    (Bigint.to_float (Bigint.of_string "100000000000000000000"))

(* --- Bigint properties against the int oracle --- *)

let int_pm_million = QCheck2.Gen.int_range (-1_000_000) 1_000_000

let prop_binop name op big_op =
  QCheck2.Test.make ~name ~count:500
    QCheck2.Gen.(pair int_pm_million int_pm_million)
    (fun (a, b) ->
      Bigint.equal
        (Bigint.of_int (op a b))
        (big_op (Bigint.of_int a) (Bigint.of_int b)))

let prop_add = prop_binop "bigint add matches int" ( + ) Bigint.add
let prop_sub = prop_binop "bigint sub matches int" ( - ) Bigint.sub
let prop_mul = prop_binop "bigint mul matches int" ( * ) Bigint.mul

let prop_divmod =
  QCheck2.Test.make ~name:"bigint divmod matches int" ~count:500
    QCheck2.Gen.(pair int_pm_million int_pm_million)
    (fun (a, b) ->
      QCheck2.assume (b <> 0);
      let q, r = Bigint.divmod (Bigint.of_int a) (Bigint.of_int b) in
      Bigint.equal q (Bigint.of_int (a / b)) && Bigint.equal r (Bigint.of_int (a mod b)))

let prop_compare =
  QCheck2.Test.make ~name:"bigint compare matches int" ~count:500
    QCheck2.Gen.(pair int_pm_million int_pm_million)
    (fun (a, b) ->
      Stdlib.compare a b = Bigint.compare (Bigint.of_int a) (Bigint.of_int b))

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"bigint string roundtrip" ~count:500
    QCheck2.Gen.(list_size (int_range 1 50) (int_range 0 9))
    (fun digits ->
      let s = String.concat "" (List.map string_of_int digits) in
      let x = Bigint.of_string s in
      Bigint.equal x (Bigint.of_string (Bigint.to_string x)))

let prop_mul_div_cancel =
  QCheck2.Test.make ~name:"(a*b)/b = a over big operands" ~count:200
    QCheck2.Gen.(pair (string_size ~gen:(char_range '1' '9') (int_range 1 40))
                   (string_size ~gen:(char_range '1' '9') (int_range 1 25)))
    (fun (sa, sb) ->
      let a = Bigint.of_string sa and b = Bigint.of_string sb in
      let q, r = Bigint.divmod (Bigint.mul a b) b in
      Bigint.equal q a && Bigint.is_zero r)

let prop_gcd_divides =
  QCheck2.Test.make ~name:"gcd divides both" ~count:300
    QCheck2.Gen.(pair int_pm_million int_pm_million)
    (fun (a, b) ->
      QCheck2.assume (a <> 0 || b <> 0);
      let g = Bigint.gcd (Bigint.of_int a) (Bigint.of_int b) in
      Bigint.is_zero (Bigint.rem (Bigint.of_int a) g)
      && Bigint.is_zero (Bigint.rem (Bigint.of_int b) g))

(* --- Fast path vs all-big oracle ---

   Every arithmetic operation has a machine-word fast path and a limb
   path; [Bigint.force_big] re-encodes a value in the limb representation
   without changing it, so running each law on all four promotion
   combinations (fast/fast, big/big, and mixed) checks that the two
   tiers agree — including on the overflow boundaries where the fast
   path must promote.  Agreement is checked by [Bigint.equal] and by
   [to_string], whose rendering also differs between the tiers. *)

let boundary_int =
  QCheck2.Gen.(
    oneof
      [
        int_range (-10_000) 10_000;
        map (fun d -> max_int - d) (int_range 0 3);
        map (fun d -> min_int + d) (int_range 0 3);
        (* Straddle the 2^31 limb boundary and the 2^62 promotion edge. *)
        map2
          (fun s d -> if s then 0x4000_0000 + d else -0x4000_0000 - d)
          bool (int_range (-2) 2);
        map2
          (fun s d ->
            if s then 0x4000_0000_0000_0000 - d
            else -0x4000_0000_0000_0000 + d)
          bool (int_range 0 4);
        int;
      ])

let mixed_bigint_gen =
  QCheck2.Gen.(
    oneof
      [
        map Bigint.of_int boundary_int;
        map2
          (fun neg s ->
            let x = Bigint.of_string s in
            if neg then Bigint.neg x else x)
          bool
          (string_size ~gen:(char_range '0' '9') (int_range 1 45));
      ])

let agree r r' = Bigint.equal r r' && String.equal (Bigint.to_string r) (Bigint.to_string r')

let prop_tier2 name f =
  QCheck2.Test.make ~name:(name ^ ": fast path agrees with all-big path")
    ~count:1200
    QCheck2.Gen.(pair mixed_bigint_gen mixed_bigint_gen)
    (fun (x, y) ->
      let bx = Bigint.force_big x and by = Bigint.force_big y in
      let r = f x y in
      List.for_all (fun r' -> agree r r') [ f bx by; f bx y; f x by ])

let prop_tier_add = prop_tier2 "add" Bigint.add
let prop_tier_sub = prop_tier2 "sub" Bigint.sub
let prop_tier_mul = prop_tier2 "mul" Bigint.mul
let prop_tier_gcd = prop_tier2 "gcd" Bigint.gcd

let prop_tier_divmod =
  QCheck2.Test.make ~name:"divmod: fast path agrees with all-big path" ~count:1200
    QCheck2.Gen.(pair mixed_bigint_gen mixed_bigint_gen)
    (fun (x, y) ->
      QCheck2.assume (not (Bigint.is_zero y));
      let bx = Bigint.force_big x and by = Bigint.force_big y in
      let q, r = Bigint.divmod x y in
      List.for_all
        (fun (q', r') -> agree q q' && agree r r')
        [ Bigint.divmod bx by; Bigint.divmod bx y; Bigint.divmod x by ])

let prop_tier_compare =
  QCheck2.Test.make ~name:"compare: fast path agrees with all-big path" ~count:1200
    QCheck2.Gen.(pair mixed_bigint_gen mixed_bigint_gen)
    (fun (x, y) ->
      let bx = Bigint.force_big x and by = Bigint.force_big y in
      let s v = Stdlib.compare v 0 in
      let c = s (Bigint.compare x y) in
      c = s (Bigint.compare bx by)
      && c = s (Bigint.compare bx y)
      && c = s (Bigint.compare x by))

let prop_tier_compare_products =
  QCheck2.Test.make ~name:"compare_products = compare of products, all tiers"
    ~count:1200
    QCheck2.Gen.(quad mixed_bigint_gen mixed_bigint_gen mixed_bigint_gen mixed_bigint_gen)
    (fun (a, b, c, d) ->
      let s v = Stdlib.compare v 0 in
      let expected = s (Bigint.compare (Bigint.mul a b) (Bigint.mul c d)) in
      s (Bigint.compare_products a b c d) = expected
      && s
           (Bigint.compare_products (Bigint.force_big a) b c
              (Bigint.force_big d))
         = expected)

let prop_tier_compare_fractions =
  QCheck2.Test.make ~name:"compare_fractions = cross-product comparison, all tiers"
    ~count:1200
    QCheck2.Gen.(
      quad mixed_bigint_gen
        (map Bigint.abs mixed_bigint_gen)
        mixed_bigint_gen
        (map Bigint.abs mixed_bigint_gen))
    (fun (a, b, c, d) ->
      QCheck2.assume (not (Bigint.is_zero b) && not (Bigint.is_zero d));
      let s v = Stdlib.compare v 0 in
      let expected = s (Bigint.compare (Bigint.mul a d) (Bigint.mul c b)) in
      s (Bigint.compare_fractions a b c d) = expected
      && s
           (Bigint.compare_fractions (Bigint.force_big a) (Bigint.force_big b)
              (Bigint.force_big c) (Bigint.force_big d))
         = expected)

let prop_tier_unary =
  QCheck2.Test.make ~name:"neg/abs/sign/to_int_opt agree across tiers" ~count:1200
    mixed_bigint_gen
    (fun x ->
      let bx = Bigint.force_big x in
      agree (Bigint.neg x) (Bigint.neg bx)
      && agree (Bigint.abs x) (Bigint.abs bx)
      && Bigint.sign x = Bigint.sign bx
      && Bigint.to_int_opt x = Bigint.to_int_opt bx
      && String.equal (Bigint.to_string x) (Bigint.to_string bx))

(* --- Rational unit tests --- *)

let test_rat_normalization () =
  Alcotest.check rat "6/4 = 3/2" (Rat.of_ints 3 2) (Rat.of_ints 6 4);
  Alcotest.check rat "-6/-4 = 3/2" (Rat.of_ints 3 2) (Rat.of_ints (-6) (-4));
  Alcotest.check rat "6/-4 = -3/2" (Rat.of_ints (-3) 2) (Rat.of_ints 6 (-4));
  Alcotest.(check string) "pp integer" "5" (Rat.to_string (Rat.of_ints 10 2));
  Alcotest.(check string) "pp fraction" "-3/2" (Rat.to_string (Rat.of_ints 6 (-4)))

let test_rat_arith () =
  Alcotest.check rat "1/2 + 1/3" (Rat.of_ints 5 6)
    (Rat.add (Rat.of_ints 1 2) (Rat.of_ints 1 3));
  Alcotest.check rat "1/2 * 2/3" (Rat.of_ints 1 3)
    (Rat.mul (Rat.of_ints 1 2) (Rat.of_ints 2 3));
  Alcotest.check rat "(1/2) / (3/4)" (Rat.of_ints 2 3)
    (Rat.div (Rat.of_ints 1 2) (Rat.of_ints 3 4));
  Alcotest.check rat "inv" (Rat.of_ints 7 3) (Rat.inv (Rat.of_ints 3 7));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Rat.inv Rat.zero))

let test_harmonic () =
  Alcotest.check rat "H(1)" Rat.one (Rat.harmonic 1);
  Alcotest.check rat "H(4)" (Rat.of_ints 25 12) (Rat.harmonic 4);
  Alcotest.check rat "H(0)" Rat.zero (Rat.harmonic 0);
  (* H(n) - H(n-1) = 1/n with exact arithmetic. *)
  Alcotest.check rat "H(50)-H(49)" (Rat.of_ints 1 50)
    (Rat.sub (Rat.harmonic 50) (Rat.harmonic 49))

(* The memo table behind [Rat.harmonic] must be invisible: every call,
   in any order, returns exactly the naively recomputed partial sum. *)
let prop_harmonic_memo =
  QCheck2.Test.make ~name:"memoized harmonic = direct recomputation"
    ~count:100
    QCheck2.Gen.(int_range 0 200)
    (fun n ->
      let direct =
        List.fold_left
          (fun acc i -> Rat.add acc (Rat.of_ints 1 i))
          Rat.zero
          (List.init n (fun i -> i + 1))
      in
      Rat.equal (Rat.harmonic n) direct)

let test_rat_average () =
  Alcotest.check rat "average" (Rat.of_ints 1 2)
    (Rat.average [ Rat.zero; Rat.one ]);
  Alcotest.check_raises "empty average" (Invalid_argument "Rat.average: empty list")
    (fun () -> ignore (Rat.average []))

let test_rat_pow () =
  Alcotest.check rat "(2/3)^3" (Rat.of_ints 8 27) (Rat.pow (Rat.of_ints 2 3) 3);
  Alcotest.check rat "(2/3)^-2" (Rat.of_ints 9 4) (Rat.pow (Rat.of_ints 2 3) (-2));
  Alcotest.check rat "x^0" Rat.one (Rat.pow (Rat.of_ints 7 5) 0)

let rat_gen =
  QCheck2.Gen.(
    map2 (fun n d -> Rat.of_ints n d) (int_range (-1000) 1000) (int_range 1 1000))

let prop_rat_field =
  QCheck2.Test.make ~name:"rational distributivity" ~count:300
    QCheck2.Gen.(triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) ->
      Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))

let prop_rat_add_comm =
  QCheck2.Test.make ~name:"rational add commutative/associative" ~count:300
    QCheck2.Gen.(triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) ->
      Rat.equal (Rat.add a b) (Rat.add b a)
      && Rat.equal (Rat.add (Rat.add a b) c) (Rat.add a (Rat.add b c)))

let prop_rat_order_total =
  QCheck2.Test.make ~name:"rational order antisymmetric & transitive-ish" ~count:300
    QCheck2.Gen.(triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) ->
      let ( <= ) = Rat.( <= ) in
      (a <= b || b <= a)
      && ((not (a <= b && b <= c)) || a <= c)
      && ((not (a <= b && b <= a)) || Rat.equal a b))

let prop_rat_float_consistent =
  QCheck2.Test.make ~name:"to_float close to exact" ~count:300 rat_gen (fun a ->
      Float.abs (Rat.to_float a -. Rat.to_float a) < 1e-9)

(* --- Cross-representation laws against a decimal-string reference ---

   The limb arithmetic is checked against schoolbook digit-at-a-time
   routines on decimal strings: an independent oracle that shares no
   code and no radix with the base-2^31 representation, so a carry bug
   and its mirror in the oracle cannot cancel.  Operands concentrate on
   the adversarial spots: limb boundaries (2^31 +- d, 2^62 +- d), long
   9-carry chains, powers of ten, and wide random digit strings. *)

module Dec = struct
  (* Non-negative magnitudes as '0'..'9' strings without leading zeros. *)
  let norm s =
    let n = String.length s in
    let i = ref 0 in
    while !i < n - 1 && s.[!i] = '0' do
      incr i
    done;
    String.sub s !i (n - !i)

  let cmp a b =
    let a = norm a and b = norm b in
    let c = Stdlib.compare (String.length a) (String.length b) in
    if c <> 0 then c else Stdlib.compare a b

  let add a b =
    let la = String.length a and lb = String.length b in
    let n = Stdlib.max la lb + 1 in
    let out = Bytes.make n '0' in
    let carry = ref 0 in
    for k = 0 to n - 1 do
      let da = if k < la then Char.code a.[la - 1 - k] - 48 else 0 in
      let db = if k < lb then Char.code b.[lb - 1 - k] - 48 else 0 in
      let s = da + db + !carry in
      Bytes.set out (n - 1 - k) (Char.chr (48 + (s mod 10)));
      carry := s / 10
    done;
    norm (Bytes.to_string out)

  (* [sub a b] requires [a >= b]. *)
  let sub a b =
    let la = String.length a and lb = String.length b in
    let out = Bytes.make la '0' in
    let borrow = ref 0 in
    for k = 0 to la - 1 do
      let da = Char.code a.[la - 1 - k] - 48 in
      let db = if k < lb then Char.code b.[lb - 1 - k] - 48 else 0 in
      let d = da - db - !borrow in
      let d, b' = if d < 0 then (d + 10, 1) else (d, 0) in
      Bytes.set out (la - 1 - k) (Char.chr (48 + d));
      borrow := b'
    done;
    assert (!borrow = 0);
    norm (Bytes.to_string out)

  let mul_digit a d =
    if d = 0 then "0"
    else begin
      let la = String.length a in
      let out = Bytes.make (la + 1) '0' in
      let carry = ref 0 in
      for k = 0 to la - 1 do
        let p = ((Char.code a.[la - 1 - k] - 48) * d) + !carry in
        Bytes.set out (la - k) (Char.chr (48 + (p mod 10)));
        carry := p / 10
      done;
      Bytes.set out 0 (Char.chr (48 + !carry));
      norm (Bytes.to_string out)
    end

  let mul a b =
    let lb = String.length b in
    let total = ref "0" in
    for k = 0 to lb - 1 do
      let part = mul_digit a (Char.code b.[k] - 48) in
      if part <> "0" then
        total := add !total (part ^ String.make (lb - 1 - k) '0')
    done;
    !total

  (* Long division, one quotient digit per dividend digit; [b <> "0"]. *)
  let divmod a b =
    let q = Buffer.create (String.length a) in
    let rem = ref "0" in
    String.iter
      (fun c ->
        rem := norm (!rem ^ String.make 1 c);
        let d = ref 0 in
        while cmp (mul_digit b (!d + 1)) !rem <= 0 do
          incr d
        done;
        rem := sub !rem (mul_digit b !d);
        Buffer.add_char q (Char.chr (48 + !d)))
      a;
    (norm (Buffer.contents q), !rem)

  (* Signed wrappers over (sign, magnitude), mirroring the truncated
     division convention of OCaml's [/] and [mod]. *)
  let parts s =
    if String.length s > 0 && s.[0] = '-' then
      (-1, norm (String.sub s 1 (String.length s - 1)))
    else (1, norm s)

  let signed sg m = if m = "0" || sg >= 0 then m else "-" ^ m

  let sadd a b =
    let sa, ma = parts a and sb, mb = parts b in
    if sa = sb then signed sa (add ma mb)
    else if cmp ma mb >= 0 then signed sa (sub ma mb)
    else signed sb (sub mb ma)

  let ssub a b =
    let sb, mb = parts b in
    sadd a (signed (-sb) mb)

  let smul a b =
    let sa, ma = parts a and sb, mb = parts b in
    signed (sa * sb) (mul ma mb)

  let sdivmod a b =
    let sa, ma = parts a and sb, mb = parts b in
    let q, r = divmod ma mb in
    (signed (sa * sb) q, signed sa r)

  let rec sgcd a b =
    let _, mb = parts b in
    if mb = "0" then snd (parts a)
    else sgcd mb (snd (sdivmod a mb))
end

let p31 = "2147483648" (* 2^31 *)
let p62 = "4611686018427387904" (* 2^62 *)

let adversarial_mag =
  QCheck2.Gen.(
    oneof
      [
        (* limb boundaries: 2^31 +- d and 2^62 +- d *)
        map (fun d -> Dec.sadd p31 (string_of_int d)) (int_range (-2) 2);
        map (fun d -> Dec.sadd p62 (string_of_int d)) (int_range (-2) 2);
        (* squared boundary: around 2^124, deep in multi-limb land *)
        map
          (fun d -> Dec.sadd (Dec.mul p62 p62) (string_of_int d))
          (int_range (-2) 2);
        (* long carry chains and powers of ten *)
        map (fun n -> String.make n '9') (int_range 1 60);
        map (fun n -> "1" ^ String.make n '0') (int_range 0 60);
        (* wide random digit strings *)
        map Dec.norm (string_size ~gen:(char_range '0' '9') (int_range 1 60));
        map string_of_int (int_range 0 1_000_000);
      ])

let adversarial_dec =
  QCheck2.Gen.(
    map2 (fun neg m -> if neg then Dec.signed (-1) m else m) bool
      adversarial_mag)

let prop_dec_binop name op ref_op =
  QCheck2.Test.make ~name:("limb vs decimal reference: " ^ name) ~count:400
    QCheck2.Gen.(pair adversarial_dec adversarial_dec)
    (fun (sa, sb) ->
      let r = op (Bigint.of_string sa) (Bigint.of_string sb) in
      String.equal (Bigint.to_string r) (ref_op sa sb))

let prop_dec_add = prop_dec_binop "add" Bigint.add Dec.sadd
let prop_dec_sub = prop_dec_binop "sub" Bigint.sub Dec.ssub
let prop_dec_mul = prop_dec_binop "mul" Bigint.mul Dec.smul

let prop_dec_divmod =
  QCheck2.Test.make ~name:"limb vs decimal reference: divmod" ~count:400
    QCheck2.Gen.(pair adversarial_dec adversarial_dec)
    (fun (sa, sb) ->
      QCheck2.assume (snd (Dec.parts sb) <> "0");
      let q, r = Bigint.divmod (Bigint.of_string sa) (Bigint.of_string sb) in
      let q', r' = Dec.sdivmod sa sb in
      String.equal (Bigint.to_string q) q'
      && String.equal (Bigint.to_string r) r')

let prop_dec_gcd =
  QCheck2.Test.make ~name:"limb vs decimal reference: gcd" ~count:150
    QCheck2.Gen.(pair adversarial_dec adversarial_dec)
    (fun (sa, sb) ->
      let g = Bigint.gcd (Bigint.of_string sa) (Bigint.of_string sb) in
      String.equal (Bigint.to_string g) (Dec.sgcd sa sb))

let prop_dec_roundtrip =
  QCheck2.Test.make ~name:"of_string/to_string roundtrip, both tiers"
    ~count:600 adversarial_dec
    (fun s ->
      let x = Bigint.of_string s in
      String.equal (Bigint.to_string x) s
      && String.equal (Bigint.to_string (Bigint.force_big x)) s
      && Bigint.equal x (Bigint.of_string (Bigint.to_string x)))

(* --- In-place accumulators vs the pure fold --- *)

type big_acc_op = Badd of Bigint.t | Bsub of Bigint.t | Bmul of Bigint.t * Bigint.t

let big_acc_op_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun x -> Badd x) mixed_bigint_gen;
        map (fun x -> Bsub x) mixed_bigint_gen;
        map2 (fun x y -> Bmul (x, y)) mixed_bigint_gen mixed_bigint_gen;
      ])

let prop_bigint_acc =
  QCheck2.Test.make ~name:"Bigint.Acc = pure fold" ~count:400
    QCheck2.Gen.(list_size (int_range 0 20) big_acc_op_gen)
    (fun ops ->
      let acc = Bigint.Acc.create () in
      let pure =
        List.fold_left
          (fun t op ->
            match op with
            | Badd x ->
              Bigint.Acc.add acc x;
              Bigint.add t x
            | Bsub x ->
              Bigint.Acc.sub acc x;
              Bigint.sub t x
            | Bmul (x, y) ->
              Bigint.Acc.add_mul acc x y;
              Bigint.add t (Bigint.mul x y))
          Bigint.zero ops
      in
      (* Snapshot twice: [to_t] must not disturb the accumulator. *)
      agree (Bigint.Acc.to_t acc) pure && agree (Bigint.Acc.to_t acc) pure)

type rat_acc_op =
  | Radd of Rat.t
  | Rsub of Rat.t
  | Rmul of Rat.t * Rat.t
  | Rdiv of Rat.t * int

let rat_acc_op_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun x -> Radd x) rat_gen;
        map (fun x -> Rsub x) rat_gen;
        map2 (fun x y -> Rmul (x, y)) rat_gen rat_gen;
        map2
          (fun x n -> Rdiv (x, if n = 0 then 7 else n))
          rat_gen (int_range (-50) 50);
      ])

let prop_rat_acc =
  QCheck2.Test.make ~name:"Rat.Acc = pure fold" ~count:400
    QCheck2.Gen.(list_size (int_range 0 20) rat_acc_op_gen)
    (fun ops ->
      let acc = Rat.Acc.create () in
      let pure =
        List.fold_left
          (fun t op ->
            match op with
            | Radd x ->
              Rat.Acc.add acc x;
              Rat.add t x
            | Rsub x ->
              Rat.Acc.sub acc x;
              Rat.sub t x
            | Rmul (x, y) ->
              Rat.Acc.add_mul acc x y;
              Rat.add t (Rat.mul x y)
            | Rdiv (x, n) ->
              Rat.Acc.add_div_int acc x n;
              Rat.add t (Rat.div_int x n))
          Rat.zero ops
      in
      let snap = Rat.Acc.to_rat acc in
      Rat.equal snap pure
      && String.equal (Rat.to_string snap) (Rat.to_string pure)
      && Rat.equal (Rat.Acc.to_rat acc) pure)

(* --- Hash-consing laws ---

   An interned rational must be indistinguishable from a fresh one by
   every observation the solvers and the cache make: comparison (both
   orders), equality, rendering (which is what game fingerprints hash),
   and the polymorphic hash.  Repeat interning must return the same
   physical value. *)

let hc_table = Rat.Hc.create ()

let indistinguishable interned fresh =
  Rat.equal interned fresh
  && Rat.compare interned fresh = 0
  && Rat.compare fresh interned = 0
  && String.equal (Rat.to_string interned) (Rat.to_string fresh)
  && Hashtbl.hash interned = Hashtbl.hash fresh

let prop_hc_of_ints =
  QCheck2.Test.make ~name:"hash-consed of_ints = fresh of_ints" ~count:500
    QCheck2.Gen.(pair (int_range (-1000) 1000) (int_range 1 1000))
    (fun (n, d) ->
      let interned = Rat.Hc.of_ints hc_table n d in
      indistinguishable interned (Rat.of_ints n d)
      && Rat.Hc.of_ints hc_table n d == interned)

let prop_hc_harmonic =
  QCheck2.Test.make ~name:"hash-consed harmonic = fresh harmonic" ~count:100
    QCheck2.Gen.(int_range 0 150)
    (fun n ->
      let interned = Rat.Hc.harmonic hc_table n in
      indistinguishable interned (Rat.harmonic n)
      && Rat.Hc.harmonic hc_table n == interned)

let prop_hc_intern =
  QCheck2.Test.make ~name:"intern is identity up to physical sharing"
    ~count:500 rat_gen
    (fun r ->
      let interned = Rat.Hc.intern hc_table r in
      indistinguishable interned r && Rat.Hc.intern hc_table r == interned)

(* --- Extended --- *)

let test_extended () =
  Alcotest.check ext "inf + x" Extended.Inf (Extended.add Extended.Inf Extended.one);
  Alcotest.check ext "0 * inf = 0 (measure convention)" Extended.zero
    (Extended.mul Extended.zero Extended.Inf);
  Alcotest.check ext "2 * inf" Extended.Inf (Extended.mul (Extended.of_int 2) Extended.Inf);
  Alcotest.(check bool) "fin < inf" true Extended.(one < Inf);
  Alcotest.(check bool) "inf <= inf" true Extended.(Inf <= Inf);
  Alcotest.(check int) "compare inf inf" 0 (Extended.compare Extended.Inf Extended.Inf);
  Alcotest.check ext "sum with inf" Extended.Inf
    (Extended.sum [ Extended.one; Extended.Inf ]);
  Alcotest.(check (float 0.0)) "to_float inf" Float.infinity (Extended.to_float Extended.Inf);
  Alcotest.check_raises "to_rat_exn inf"
    (Invalid_argument "Extended.to_rat_exn: infinite") (fun () ->
      ignore (Extended.to_rat_exn Extended.Inf))

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_add; prop_sub; prop_mul; prop_divmod; prop_compare;
      prop_string_roundtrip; prop_mul_div_cancel; prop_gcd_divides;
      prop_rat_field; prop_rat_add_comm; prop_rat_order_total;
      prop_rat_float_consistent; prop_harmonic_memo ]

let tier_qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_tier_add; prop_tier_sub; prop_tier_mul; prop_tier_gcd;
      prop_tier_divmod; prop_tier_compare; prop_tier_compare_products;
      prop_tier_compare_fractions; prop_tier_unary ]

let dec_qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_dec_add; prop_dec_sub; prop_dec_mul; prop_dec_divmod;
      prop_dec_gcd; prop_dec_roundtrip ]

let acc_hc_qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_bigint_acc; prop_rat_acc; prop_hc_of_ints; prop_hc_harmonic;
      prop_hc_intern ]

let () =
  Alcotest.run "bi_num"
    [
      ( "bigint",
        [
          Alcotest.test_case "int roundtrip" `Quick test_of_to_int;
          Alcotest.test_case "of_string/to_string" `Quick test_of_string;
          Alcotest.test_case "carry chains" `Quick test_add_carries;
          Alcotest.test_case "large multiplication" `Quick test_mul_large;
          Alcotest.test_case "divmod sign conventions" `Quick test_divmod_signs;
          Alcotest.test_case "division by zero" `Quick test_div_by_zero;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "to_float" `Quick test_to_float;
        ] );
      ( "rational",
        [
          Alcotest.test_case "normalization" `Quick test_rat_normalization;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
          Alcotest.test_case "harmonic numbers" `Quick test_harmonic;
          Alcotest.test_case "average" `Quick test_rat_average;
          Alcotest.test_case "pow" `Quick test_rat_pow;
        ] );
      ("extended", [ Alcotest.test_case "infinity arithmetic" `Quick test_extended ]);
      ("properties", qtests);
      ("representation-tiers", tier_qtests);
      ("decimal-reference", dec_qtests);
      ("accumulators-hashcons", acc_hc_qtests);
    ]

(** Name-indexed access to the paper's game families.

    The single lookup point shared by the [bi] CLI and the analysis
    server, so both agree on construction names, size-parameter
    semantics, and error reporting. *)

val names : string list
(** The recognized construction names. *)

val describe : string
(** One-line human summary of the names and their size parameters. *)

val build : string -> int -> (Bi_ncs.Bayesian_ncs.t, string) result
(** [build name k] constructs the named game family member at size [k].
    [Error] on an unknown name or a [k] the family rejects. *)

let names = [ "anshelevich"; "gworst-bliss"; "gworst-curse"; "affine"; "diamond" ]

let describe =
  "anshelevich (K = k), gworst-bliss, gworst-curse (K = k), affine (K = prime \
   order), diamond (K = level)"

let build name k =
  match
    match name with
    | "anshelevich" -> Some (fun () -> Anshelevich_game.game k)
    | "gworst-bliss" -> Some (fun () -> Gworst_game.bliss_game k)
    | "gworst-curse" -> Some (fun () -> Gworst_game.curse_game k)
    | "affine" -> Some (fun () -> Affine_game.game k)
    | "diamond" -> Some (fun () -> snd (Diamond_game.game k))
    | _ -> None
  with
  | None ->
    Error
      (Printf.sprintf "unknown construction %S (try: %s)" name
         (String.concat ", " names))
  | Some builder -> (
    match builder () with
    | game -> Ok game
    | exception Invalid_argument msg -> Error msg)

(** Cooperative wall-clock budgets for the exhaustive solvers.

    A budget is an absolute deadline polled from inside solver loops:
    {!check} increments a counter and compares the clock only once per
    [2^8] calls, so enforcement costs one [land] and one branch per
    profile instead of a syscall.  When the deadline passes, {!check}
    raises {!Expired}; the solvers let it propagate (the domain pool
    re-raises the first worker exception in the caller), so a budgeted
    [analyze] either returns a complete exact answer or fails fast —
    never a partial result.

    Budgets are shared freely across pool workers.  The poll counter is
    updated without synchronization: a lost increment merely delays the
    next clock poll by a few iterations, which is harmless. *)

type t

exception Expired
(** Raised by {!check} once the deadline has passed. *)

val unlimited : t
(** Never expires; {!check} is a single branch. *)

val of_timeout_ms : int -> t
(** [of_timeout_ms ms] expires [ms] milliseconds from now.
    @raise Invalid_argument when [ms <= 0]. *)

val of_deadline : float -> t
(** [of_deadline t] expires at absolute Unix time [t] (seconds, as
    returned by [Unix.gettimeofday]). *)

val is_limited : t -> bool
(** [false] only for {!unlimited}. *)

val check : t -> unit
(** Cheap poll: raises {!Expired} when the deadline has passed.  Only
    every 256th call consults the clock. *)

val expired : t -> bool
(** Consults the clock immediately (no counter); never raises. *)

val remaining_ms : t -> int option
(** Milliseconds until the deadline, clamped at 0; [None] when
    unlimited. *)

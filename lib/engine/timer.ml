type t = {
  wall : float;
  minor : float;
  major : float;
}

type span = {
  seconds : float;
  minor_words : float;
  major_words : float;
}

let start () =
  let s = Gc.quick_stat () in
  { wall = Unix.gettimeofday (); minor = s.Gc.minor_words; major = s.Gc.major_words }

let elapsed t0 = Unix.gettimeofday () -. t0.wall

let span t0 =
  let s = Gc.quick_stat () in
  {
    seconds = Unix.gettimeofday () -. t0.wall;
    minor_words = s.Gc.minor_words -. t0.minor;
    major_words = s.Gc.major_words -. t0.major;
  }

let timed f =
  let t0 = start () in
  let x = f () in
  (x, span t0)

let pp_seconds fmt dt = Format.fprintf fmt "%.2fs" dt

let pp_words fmt w =
  if w >= 1e9 then Format.fprintf fmt "%.2fG" (w /. 1e9)
  else if w >= 1e6 then Format.fprintf fmt "%.2fM" (w /. 1e6)
  else if w >= 1e3 then Format.fprintf fmt "%.2fk" (w /. 1e3)
  else Format.fprintf fmt "%.0f" w

let pp_span fmt s =
  Format.fprintf fmt "%a, %aw minor + %aw major" pp_seconds s.seconds pp_words
    s.minor_words pp_words s.major_words

type t = float

let start () = Unix.gettimeofday ()
let elapsed t0 = Unix.gettimeofday () -. t0

let timed f =
  let t0 = start () in
  let x = f () in
  (x, elapsed t0)

let pp_seconds fmt dt = Format.fprintf fmt "%.2fs" dt

exception Expired

type t = {
  deadline : float; (* absolute Unix time; [infinity] = unlimited *)
  mutable ticks : int;
      (* unsynchronized poll counter shared across domains: lost updates
         only postpone the next clock poll, never correctness *)
}

let poll_mask = 0xFF

let unlimited = { deadline = infinity; ticks = 0 }

let of_deadline deadline = { deadline; ticks = 0 }

let of_timeout_ms ms =
  if ms <= 0 then invalid_arg "Budget.of_timeout_ms: timeout must be positive";
  of_deadline (Unix.gettimeofday () +. (float_of_int ms /. 1000.))

let is_limited b = b.deadline < infinity

let expired b = b.deadline < infinity && Unix.gettimeofday () > b.deadline

let check b =
  if b.deadline < infinity then begin
    b.ticks <- b.ticks + 1;
    if b.ticks land poll_mask = 0 && Unix.gettimeofday () > b.deadline then
      raise Expired
  end

let remaining_ms b =
  if b.deadline = infinity then None
  else
    Some
      (max 0 (int_of_float (ceil ((b.deadline -. Unix.gettimeofday ()) *. 1000.))))

(** Deterministic monoid map-reduce on top of {!Pool}.

    Parallel reductions are only admissible here when they are
    reproducible: partial results are stored by input index and folded in
    index order, so a reduction over a pool of any size produces results
    bit-identical to the sequential left fold — including tie-breaking,
    which the [first_*] monoids resolve exactly like a sequential
    first-wins scan.  Exact {!Bi_num.Rat} arithmetic makes the sum monoids
    associative in the mathematical sense too, but no monoid below relies
    on commutativity of scheduling. *)

open Bi_num

type 'a monoid = {
  empty : 'a;
  combine : 'a -> 'a -> 'a;  (** Must be associative. *)
}

val fold : 'a monoid -> 'a array -> 'a
(** Sequential left fold, the reference semantics of {!map_reduce}. *)

val map_reduce : Pool.t -> ?chunk:int -> monoid:'b monoid -> ('a -> 'b) -> 'a array -> 'b
(** [map_reduce pool ~monoid f xs] maps [f] over [xs] in parallel and
    combines the images left-to-right in input order. *)

val rat_sum : Rat.t monoid
val ext_sum : Extended.t monoid
val int_sum : int monoid
val both : 'a monoid -> 'b monoid -> ('a * 'b) monoid
(** Componentwise product monoid — one pass, two reductions. *)

val first_min : cmp:('v -> 'v -> int) -> ('a * 'v) option monoid
(** Keeps the element with the smallest value; on ties the {e earlier}
    (left) element wins, matching a sequential argmin with strict [<]. *)

val first_max : cmp:('v -> 'v -> int) -> ('a * 'v) option monoid
(** Dual of {!first_min}: first strict maximum wins. *)

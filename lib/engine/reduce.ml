open Bi_num

type 'a monoid = { empty : 'a; combine : 'a -> 'a -> 'a }

let fold m xs = Array.fold_left m.combine m.empty xs

let map_reduce pool ?chunk ~monoid f xs =
  fold monoid (Pool.map_array pool ?chunk f xs)

let rat_sum = { empty = Rat.zero; combine = Rat.add }
let ext_sum = { empty = Extended.zero; combine = Extended.add }
let int_sum = { empty = 0; combine = ( + ) }

let both ma mb =
  {
    empty = (ma.empty, mb.empty);
    combine = (fun (a1, b1) (a2, b2) -> (ma.combine a1 a2, mb.combine b1 b2));
  }

let first_by better =
  {
    empty = None;
    combine =
      (fun a b ->
        match (a, b) with
        | None, x | x, None -> x
        | Some (_, va), Some (_, vb) -> if better vb va then b else a);
  }

let first_min ~cmp = first_by (fun vb va -> Stdlib.( < ) (cmp vb va) 0)
let first_max ~cmp = first_by (fun vb va -> Stdlib.( > ) (cmp vb va) 0)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
    else Buffer.add_string buf "null"
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        write buf (Str k);
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* The parser recurses once per nesting level, so untrusted input (the
   server feeds request lines straight in here) must be depth-capped or
   a line of ten thousand '[' turns into a stack overflow instead of a
   structured error. *)
let max_depth = 512

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> parse_error "expected %C at offset %d, got %C" c !pos c'
    | None -> parse_error "expected %C, got end of input" c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else parse_error "invalid literal at offset %d" !pos
  in
  (* BMP code points only: our encoder never emits surrogate pairs. *)
  let utf8_of_code buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then parse_error "truncated \\u escape at offset %d" !pos;
    let v =
      match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
      | Some v -> v
      | None -> parse_error "invalid \\u escape at offset %d" !pos
    in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_error "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (match peek () with
        | None -> parse_error "unterminated escape"
        | Some e -> (
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' -> utf8_of_code buf (hex4 ())
          | e -> parse_error "unknown escape \\%c" e));
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numeric = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> numeric c | None -> false) do
      advance ()
    done;
    if !pos = start then parse_error "unexpected character at offset %d" start;
    let tok = String.sub s start (!pos - start) in
    let fractional = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    match (if fractional then None else int_of_string_opt tok) with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> parse_error "invalid number %S at offset %d" tok start)
  in
  let rec parse_value depth =
    if depth > max_depth then
      parse_error "nesting deeper than %d at offset %d" max_depth !pos;
    skip_ws ();
    match peek () with
    | None -> parse_error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> parse_error "expected ',' or ']' at offset %d" !pos
        in
        items []
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev (kv :: acc))
          | _ -> parse_error "expected ',' or '}' at offset %d" !pos
        in
        fields []
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then parse_error "trailing bytes at offset %d" !pos;
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

type t = {
  path : string;
  channel : out_channel;
  lock : Mutex.t;
  mutable open_ : bool;
}

let create path =
  { path; channel = open_out path; lock = Mutex.create (); open_ = true }

let path sink = sink.path

(* One line per record under the sink's mutex, so concurrent [emit]s from
   worker domains (or server threads) never interleave bytes. *)
let emit sink fields =
  let line = to_string (Obj fields) in
  Mutex.lock sink.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sink.lock)
    (fun () ->
      if not sink.open_ then invalid_arg "Sink.emit: sink is closed";
      output_string sink.channel line;
      output_char sink.channel '\n')

(* "paper bound" -> "paper_bound": JSON keys that double as column ids. *)
let slug s =
  String.map
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9') as c -> c
      | _ -> '_')
    s

let table sink ~section ?(kind = "row") ~header rows =
  let keys = List.map slug header in
  List.iter
    (fun row ->
      let rec pair ks cs =
        match (ks, cs) with
        | k :: ks, c :: cs -> (k, Str c) :: pair ks cs
        | _ -> []
      in
      emit sink (("record", Str kind) :: ("section", Str section) :: pair keys row))
    rows

let close sink =
  Mutex.lock sink.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sink.lock)
    (fun () ->
      if sink.open_ then begin
        sink.open_ <- false;
        close_out sink.channel
      end)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
    else Buffer.add_string buf "null"
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        write buf (Str k);
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

type t = {
  path : string;
  channel : out_channel;
  mutable open_ : bool;
}

let create path = { path; channel = open_out path; open_ = true }
let path sink = sink.path

let emit sink fields =
  if not sink.open_ then invalid_arg "Sink.emit: sink is closed";
  output_string sink.channel (to_string (Obj fields));
  output_char sink.channel '\n'

(* "paper bound" -> "paper_bound": JSON keys that double as column ids. *)
let slug s =
  String.map
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9') as c -> c
      | _ -> '_')
    s

let table sink ~section ?(kind = "row") ~header rows =
  let keys = List.map slug header in
  List.iter
    (fun row ->
      let rec pair ks cs =
        match (ks, cs) with
        | k :: ks, c :: cs -> (k, Str c) :: pair ks cs
        | _ -> []
      in
      emit sink (("record", Str kind) :: ("section", Str section) :: pair keys row))
    rows

let close sink =
  if sink.open_ then begin
    sink.open_ <- false;
    close_out sink.channel
  end

(** Structured result sink: line-oriented JSON records.

    Bench sections emit one JSON object per line (JSON Lines) alongside
    their human-readable tables, so downstream tooling can diff runs,
    track timings, and plot series without scraping aligned text.  The
    encoder is hand-rolled — no dependency beyond the standard library —
    and always produces valid JSON: strings are escaped per RFC 8259 and
    non-finite floats map to [null]. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

val escape : string -> string
(** Escapes the bytes of a string for inclusion inside JSON quotes:
    ["\""], ["\\"] and ASCII control characters are escaped (short forms
    for [\n], [\r], [\t], [\b], [\f]; [\u00XX] otherwise); all other
    bytes pass through untouched, so UTF-8 payloads survive verbatim. *)

val to_string : json -> string
(** Compact single-line rendering. *)

val of_string : string -> (json, string) result
(** Parses one JSON value (the whole string must be consumed, modulo
    surrounding whitespace).  Numbers without a fraction or exponent that
    fit a native [int] parse as [Int], everything else numeric as
    [Float]; [\uXXXX] escapes decode to UTF-8 (BMP code points — the
    encoder never emits surrogate pairs).  Inverse of {!to_string} up to
    float formatting: records made of [Null]/[Bool]/[Int]/[Str]/[List]/
    [Obj] round-trip byte-identically.  Total on untrusted input:
    nesting deeper than 512 levels is a parse error, never a stack
    overflow. *)

val member : string -> json -> json option
(** [member key j] is the field [key] of an [Obj] ([None] when absent or
    [j] is not an object). *)

type t

val create : string -> t
(** [create path] opens (and truncates) [path] for writing. *)

val path : t -> string

val emit : t -> (string * json) list -> unit
(** Writes one object as a single line.  Safe under concurrent calls
    from multiple domains or threads: each sink carries a mutex, so
    records never interleave — every line in the file is one complete
    JSON object. *)

val table : t -> section:string -> ?kind:string -> header:string list -> string list list -> unit
(** [table sink ~section ~header rows] emits one record per row, keyed by
    the slugified header cells, tagged with [{"record": kind;
    "section": section}] ([kind] defaults to ["row"]). *)

val close : t -> unit
(** Flushes and closes.  Idempotent. *)

type task = unit -> unit

type t = {
  size : int;
  queue : task Queue.t;
  mutex : Mutex.t;
  pending : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  busy : bool Atomic.t; (* a parallel op is in flight: nested ops go sequential *)
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.pending pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* closed *)
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    task ();
    worker_loop pool
  end

let create size =
  let size = max 1 size in
  let pool =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      pending = Condition.create ();
      closed = false;
      workers = [];
      busy = Atomic.make false;
    }
  in
  if size > 1 then
    pool.workers <-
      List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closed <- true;
  Condition.broadcast pool.pending;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let with_pool size f =
  let pool = create size in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Validated at parse time, like the serve protocol's [k]: a jobs count
   the pool can never honor (zero, negative, non-numeric) is a
   structured error at the entry point instead of a silent clamp or a
   failure inside the pool. *)
let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | Some n -> Error (Printf.sprintf "jobs must be >= 1, got %d" n)
  | None -> Error (Printf.sprintf "jobs must be a positive integer, got %S" s)

let env_jobs () =
  match Sys.getenv_opt "BI_JOBS" with
  | None -> Ok None
  | Some s -> (
    match parse_jobs s with
    | Ok n -> Ok (Some n)
    | Error e -> Error (Printf.sprintf "BI_JOBS: %s" e))

let default_size () =
  match env_jobs () with Ok (Some n) -> n | Ok None | Error _ -> 1
let recommended_jobs requested = max 1 (min requested (Domain.recommended_domain_count ()))

let submit pool task =
  Mutex.lock pool.mutex;
  Queue.push task pool.queue;
  Condition.signal pool.pending;
  Mutex.unlock pool.mutex

let parallel_for pool ?(chunk = 1) n body =
  if chunk < 1 then invalid_arg "Pool.parallel_for: chunk must be positive";
  if n <= 0 then ()
  else if
    pool.size = 1 || n <= chunk
    || not (Atomic.compare_and_set pool.busy false true)
  then body 0 n
  else begin
    let n_chunks = (n + chunk - 1) / chunk in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let drain () =
      let continue = ref true in
      while !continue do
        let c = Atomic.fetch_and_add next 1 in
        if c >= n_chunks || Atomic.get failure <> None then continue := false
        else begin
          let lo = c * chunk in
          let hi = min n (lo + chunk) in
          try body lo hi
          with e -> ignore (Atomic.compare_and_set failure None (Some e))
        end
      done
    in
    let live = Atomic.make (pool.size - 1) in
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    for _ = 1 to pool.size - 1 do
      submit pool (fun () ->
          drain ();
          Atomic.decr live;
          Mutex.lock done_mutex;
          Condition.broadcast done_cond;
          Mutex.unlock done_mutex)
    done;
    drain ();
    (* Brief relax-spin for cheap jobs, then block until the helpers are
       out of their in-flight chunks. *)
    let spins = ref 0 in
    while Atomic.get live > 0 && !spins < 10_000 do
      incr spins;
      Domain.cpu_relax ()
    done;
    Mutex.lock done_mutex;
    while Atomic.get live > 0 do
      Condition.wait done_cond done_mutex
    done;
    Mutex.unlock done_mutex;
    Atomic.set pool.busy false;
    match Atomic.get failure with Some e -> raise e | None -> ()
  end

let map_array pool ?chunk f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for pool ?chunk n (fun lo hi ->
        for i = lo to hi - 1 do
          out.(i) <- Some (f xs.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end

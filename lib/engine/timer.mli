(** Wall-clock and allocation section timing.

    One shared stopwatch for everything that reports elapsed time — the
    bench harness sections and the CLI construction runs — so durations
    are measured and formatted the same way everywhere.  Alongside
    wall-clock seconds, a span records the GC's minor- and major-heap
    words allocated while it ran, which is how the bench footers show
    that a cache hit eliminates allocation and not just time.

    Allocation counters come from [Gc.quick_stat] and account for the
    {e calling} domain only; work sharded onto pool workers allocates in
    their domains and is not included. *)

type t

type span = {
  seconds : float;  (** Wall-clock seconds. *)
  minor_words : float;  (** Words allocated in the minor heap. *)
  major_words : float;  (** Words allocated in the major heap. *)
}

val start : unit -> t

val elapsed : t -> float
(** Seconds of wall-clock time since [start]. *)

val span : t -> span
(** Wall-clock seconds and words allocated since [start]. *)

val timed : (unit -> 'a) -> 'a * span
(** [timed f] runs [f ()] and returns its result with the wall-clock
    seconds and allocated words it took.  Exceptions from [f] propagate. *)

val pp_seconds : Format.formatter -> float -> unit
(** Renders a duration as [12.34s]. *)

val pp_words : Format.formatter -> float -> unit
(** Renders a word count with a scale suffix: [1.23G], [4.56M], [7.89k]
    or a bare count below a thousand. *)

val pp_span : Format.formatter -> span -> unit
(** Renders [12.34s, 1.23Gw minor + 4.56Mw major]. *)

(** Wall-clock section timing.

    One shared stopwatch for everything that reports elapsed time — the
    bench harness sections and the CLI construction runs — so durations
    are measured and formatted the same way everywhere. *)

type t

val start : unit -> t

val elapsed : t -> float
(** Seconds of wall-clock time since [start]. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f ()] and returns its result with the wall-clock
    seconds it took.  Exceptions from [f] propagate. *)

val pp_seconds : Format.formatter -> float -> unit
(** Renders a duration as [12.34s]. *)

(** A fixed pool of worker domains over a chunked task queue.

    The pool underlies every parallel solver in the reproduction: callers
    split an index space into chunks, workers pull chunks from a shared
    atomic cursor, and the caller participates in the draining so that a
    [size]-domain pool really uses [size] cores.  A pool of size 1 never
    spawns a domain and runs everything in the caller — the sequential
    fallback used by default and by the determinism tests.

    Parallel operations started from within a running parallel operation
    degrade to sequential execution instead of deadlocking, so nested
    [?pool] plumbing is always safe. *)

type t

val create : int -> t
(** [create size] spawns [size - 1] worker domains ([size] is clamped to
    at least 1).  Workers idle on a condition variable between jobs. *)

val size : t -> int

val shutdown : t -> unit
(** Joins the workers.  Idempotent; the pool must not be used after. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool size f] runs [f] on a fresh pool and always shuts it down. *)

val parse_jobs : string -> (int, string) result
(** Parse-time validation of a jobs count: a positive integer, or a
    structured error naming the offending value — mirroring the serve
    protocol's [k] validation instead of silently clamping or failing
    inside the pool.  Shared by [--jobs] flags and [BI_JOBS]. *)

val env_jobs : unit -> (int option, string) result
(** The [BI_JOBS] environment variable through {!parse_jobs}:
    [Ok None] when unset, [Ok (Some n)] when valid, [Error _] (with the
    variable named) when set to something the pool can never honor.
    Entry points check this once at startup and exit with the message. *)

val default_size : unit -> int
(** A valid [BI_JOBS] or 1.  Malformed [BI_JOBS] also falls back to 1
    here so this stays total; entry points report it via {!env_jobs}
    before ever calling this. *)

val recommended_jobs : int -> int
(** Clamps a requested pool size to [Domain.recommended_domain_count ()].
    Oversubscribing domains is a net loss for these workloads (every
    minor collection synchronizes all domains), so the harnesses run
    requested sizes through this; {!create} itself honors the request,
    which the determinism tests use to exercise real interleavings even
    on few cores. *)

val parallel_for : t -> ?chunk:int -> int -> (int -> int -> unit) -> unit
(** [parallel_for pool ~chunk n body] calls [body lo hi] over disjoint
    slices [\[lo, hi)] covering [\[0, n)], concurrently when the pool has
    more than one domain.  [chunk] (default 1) is the slice width handed
    to a worker per queue pull.  The first exception raised by any slice
    is re-raised in the caller after all workers stop. *)

val map_array : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; the result keeps input order, so downstream
    folds are deterministic regardless of execution interleaving. *)

module Sink = Bi_engine.Sink
module Store = Bi_cache.Store

(* Consistency checker over a set of replica sources — live shards
   (digest/pull/put over the wire) or store files on disk.  A source is
   a name on the ring plus three capabilities; the driver below is pure
   with respect to how they are implemented, which is what lets the
   chaos harness fsck a half-dead cluster from its store files while
   the shards are still running. *)

type source = {
  name : string;  (* ring member name *)
  keys : unit -> ((string * string) list, string) result;
      (* all resident (key, check) pairs *)
  pull : string list -> (Store.entry list, string) result;
  push : Store.entry -> (unit, string) result;
}

type divergence = {
  key : string;
  bucket : int;
  holders : (string * string) list;  (* source name, check *)
  missing : string list;  (* owner sources lacking the key *)
  authority : string;  (* source whose copy wins *)
}

type report = {
  sources : string list;
  unreachable : (string * string) list;
  keys_checked : int;
  divergent : divergence list;
  repaired : int;
  repair_failures : (string * string) list;  (* key, error *)
  remaining : int;  (* divergences left after the repair pass *)
}

(* --- sources ----------------------------------------------------------- *)

(* Offline source: a shard's append-only store file.  Reads reconstruct
   exactly what a replay would (last verified entry per key); pushes
   append, preserving the same convergence rule.  Assumes the file is
   not being compacted concurrently — appends by a live shard are safe
   to race (reads see a prefix of whole lines). *)
let store_source ~name path =
  let load () =
    let entries, _invalid = Store.load path in
    let last = Hashtbl.create 64 in
    List.iter (fun (e : Store.entry) -> Hashtbl.replace last e.Store.key e) entries;
    last
  in
  {
    name;
    keys =
      (fun () ->
        match load () with
        | exception Sys_error e -> Error e
        | last ->
          Ok
            (Hashtbl.fold
               (fun k (e : Store.entry) acc ->
                 (k, Store.check_of e.Store.body) :: acc)
               last []));
    pull =
      (fun keys ->
        match load () with
        | exception Sys_error e -> Error e
        | last ->
          Ok (List.filter_map (fun k -> Hashtbl.find_opt last k) keys));
    push =
      (fun entry ->
        match
          let s = Store.open_append path in
          Fun.protect ~finally:(fun () -> Store.close s) (fun () ->
              Store.append s entry)
        with
        | () -> Ok ()
        | exception Sys_error e -> Error e);
  }

(* Live source: one protocol exchange per operation, provided by the
   caller (the CLI wires it to [Client]; keeping the transport out of
   this module keeps the driver deterministic and testable). *)
let exchange_source ~name exchange =
  let call req decode =
    match exchange req with
    | Error e -> Error e
    | Ok resp ->
      if Bi_serve.Protocol.is_ok resp then decode resp
      else
        Error
          (match Sink.member "error" resp with
          | Some (Sink.Str e) -> e
          | _ -> "shard refused")
  in
  {
    name;
    keys =
      (fun () ->
        (* Rollup first, then only the non-empty buckets: O(buckets)
           exchanges, each bounded by one bucket's keys. *)
        match
          call (Bi_serve.Protocol.digest_request ()) Bi_serve.Protocol.rollup_of
        with
        | Error e -> Error e
        | Ok rollup ->
          List.fold_left
            (fun acc (b, _digest) ->
              match acc with
              | Error _ -> acc
              | Ok pairs -> (
                match
                  call
                    (Bi_serve.Protocol.digest_request ~bucket:b ())
                    Bi_serve.Protocol.bucket_keys_of
                with
                | Error e -> Error e
                | Ok more -> Ok (pairs @ more)))
            (Ok []) rollup);
    pull =
      (fun keys ->
        call (Bi_serve.Protocol.pull_request keys) Bi_serve.Protocol.entries_of);
    push =
      (fun (e : Store.entry) ->
        call
          (Bi_serve.Protocol.put_request ~kind:e.Store.kind
             ~fingerprint:e.Store.key e.Store.body)
          (fun _ -> Ok ()));
  }

(* --- divergence -------------------------------------------------------- *)

(* One scan over the reachable sources: for every key, compare the
   copies held by its *owner* sources (per the ring; non-owner strays
   are legitimate leftovers of membership changes, not divergence).
   The authoritative copy is the holder earliest in the ring's owner
   order — the deterministic proxy for last-writer-wins that every
   repair path (here, anti-entropy, hint drain) agrees on. *)
let divergences ~ring ~replicas tables =
  let names = List.map fst tables in
  let union = Hashtbl.create 256 in
  List.iter
    (fun (_name, tbl) ->
      Hashtbl.iter (fun k _ -> Hashtbl.replace union k ()) tbl)
    tables;
  let divergent = ref [] in
  let checked = ref 0 in
  Hashtbl.iter
    (fun key () ->
      let owners = Ring.owners ring ~n:replicas key in
      let owner_sources = List.filter (fun n -> List.mem n owners) names in
      if owner_sources <> [] then begin
        incr checked;
        let holders, missing =
          List.partition_map
            (fun n ->
              match
                Option.bind (List.assoc_opt n tables) (fun tbl ->
                    Hashtbl.find_opt tbl key)
              with
              | Some check -> Either.Left (n, check)
              | None -> Either.Right n)
            (* Holders in ring-owner order, so the first is authoritative. *)
            (List.filter (fun o -> List.mem o owner_sources) owners)
        in
        let distinct_checks =
          List.sort_uniq compare (List.map snd holders)
        in
        if holders <> [] && (missing <> [] || List.length distinct_checks > 1)
        then
          divergent :=
            {
              key;
              bucket = Store.bucket_of_key key;
              holders;
              missing;
              authority = fst (List.hd holders);
            }
            :: !divergent
      end)
    union;
  (!checked, List.sort (fun a b -> compare a.key b.key) !divergent)

let gather sources =
  List.fold_left
    (fun (tables, unreachable) s ->
      match s.keys () with
      | Ok pairs ->
        let tbl = Hashtbl.create 64 in
        List.iter (fun (k, c) -> Hashtbl.replace tbl k c) pairs;
        ((s.name, tbl) :: tables, unreachable)
      | Error e -> (tables, (s.name, e) :: unreachable))
    ([], []) sources
  |> fun (tables, unreachable) -> (List.rev tables, List.rev unreachable)

(* Copy the authority's entry to every owner that lacks it or disagrees
   with it.  Pushes go through the same [put] the write path uses, so a
   repaired entry is byte-identical to a replicated one. *)
let repair_one sources d =
  let source_by_name n = List.find_opt (fun s -> s.name = n) sources in
  match source_by_name d.authority with
  | None -> [ (d.key, "authority source missing") ]
  | Some auth -> (
    match auth.pull [ d.key ] with
    | Error e -> [ (d.key, Printf.sprintf "pull from %s: %s" d.authority e) ]
    | Ok [] -> [ (d.key, Printf.sprintf "%s no longer holds the key" d.authority) ]
    | Ok (entry :: _) ->
      let targets =
        d.missing
        @ List.filter_map
            (fun (n, check) ->
              if n <> d.authority && check <> List.assoc d.authority d.holders
              then Some n
              else None)
            d.holders
      in
      List.filter_map
        (fun n ->
          match source_by_name n with
          | None -> Some (d.key, Printf.sprintf "source %s missing" n)
          | Some target -> (
            match target.push entry with
            | Ok () -> None
            | Error e ->
              Some (d.key, Printf.sprintf "push to %s: %s" n e)))
        targets)

let run ~ring ~replicas ~repair sources =
  let tables, unreachable = gather sources in
  let keys_checked, divergent = divergences ~ring ~replicas tables in
  if (not repair) || divergent = [] then
    {
      sources = List.map (fun s -> s.name) sources;
      unreachable;
      keys_checked;
      divergent;
      repaired = 0;
      repair_failures = [];
      remaining = List.length divergent;
    }
  else begin
    let repair_failures =
      List.concat_map (repair_one sources) divergent
    in
    (* Re-gather and re-judge: the report's [remaining] is measured, not
       inferred from push acks. *)
    let tables2, unreachable2 = gather sources in
    let _, still = divergences ~ring ~replicas tables2 in
    {
      sources = List.map (fun s -> s.name) sources;
      unreachable = unreachable @ unreachable2;
      keys_checked;
      divergent;
      repaired = List.length divergent - List.length still;
      repair_failures;
      remaining = List.length still;
    }
  end

(* --- report ------------------------------------------------------------ *)

let divergence_to_json d =
  Sink.Obj
    [
      ("key", Sink.Str d.key);
      ("bucket", Sink.Int d.bucket);
      ("holders",
       Sink.List
         (List.map
            (fun (n, c) -> Sink.List [ Sink.Str n; Sink.Str c ])
            d.holders));
      ("missing", Sink.List (List.map (fun n -> Sink.Str n) d.missing));
      ("authority", Sink.Str d.authority);
    ]

let per_bucket divergent =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun d ->
      Hashtbl.replace tbl d.bucket
        (1 + Option.value (Hashtbl.find_opt tbl d.bucket) ~default:0))
    divergent;
  Hashtbl.fold (fun b n acc -> (b, n) :: acc) tbl [] |> List.sort compare

let report_to_json r =
  Sink.Obj
    [
      ("record", Sink.Str "fsck_report");
      ("sources", Sink.List (List.map (fun s -> Sink.Str s) r.sources));
      ("unreachable",
       Sink.List
         (List.map
            (fun (n, e) -> Sink.List [ Sink.Str n; Sink.Str e ])
            r.unreachable));
      ("keys_checked", Sink.Int r.keys_checked);
      ("divergent", Sink.Int (List.length r.divergent));
      ("per_bucket",
       Sink.List
         (List.map
            (fun (b, n) -> Sink.List [ Sink.Int b; Sink.Int n ])
            (per_bucket r.divergent)));
      ("divergences", Sink.List (List.map divergence_to_json r.divergent));
      ("repaired", Sink.Int r.repaired);
      ("repair_failures",
       Sink.List
         (List.map
            (fun (k, e) -> Sink.List [ Sink.Str k; Sink.Str e ])
            r.repair_failures));
      ("remaining", Sink.Int r.remaining);
    ]

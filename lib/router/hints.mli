(** Hinted handoff: a durable, bounded log of writes that failed to
    reach an owner.

    When replication or a [put] fan-out cannot deliver a copy to a
    member (down, partitioned, or mid-crash), the router records the
    miss here instead of dropping it; the health prober drains a
    member's hints on its Down→Up transition — before front-cache
    warming — so a recovered owner converges from the log, not from
    luck.

    One hint per (member, fingerprint): a newer write to the same key
    supersedes the parked one.  With a [?path], hints persist across
    router restarts via the {!Bi_cache.Store} line format (["hint"]
    records cancelled by ["hint-drop"] tombstones, replayed in append
    order; the log is rewritten in place when tombstones dwarf the live
    set).  At [?capacity] the oldest hint is evicted to make room —
    anti-entropy repair covers what the log cannot hold.  Thread-safe. *)

type hint = {
  member : string;  (** The owner that missed the write. *)
  fingerprint : string;  (** Cache key of the missed entry. *)
  kind : string;  (** Store kind: ["analysis"] or ["payload"]. *)
  body : Bi_engine.Sink.json;  (** Canonical encoded body. *)
}

type t

val default_capacity : int
(** 512. *)

val create : ?capacity:int -> ?path:string -> unit -> t
(** In-memory only without [?path]; otherwise replays the log (and
    compacts it when stale lines dominate) and opens it for appending.
    @raise Invalid_argument when [capacity < 1]. *)

val record :
  t -> member:string -> fingerprint:string -> kind:string ->
  Bi_engine.Sink.json -> int
(** Parks a missed write; returns the number of older hints evicted to
    make room (0 or 1). *)

val take : t -> string -> hint list
(** Removes and returns every hint for a member, oldest first.  The
    caller re-records any hint it fails to deliver. *)

val pending : t -> int
(** Outstanding hints across all members. *)

val members : t -> string list
(** Members with outstanding hints, oldest-hint-first order. *)

val close : t -> unit
(** Closes the backing log.  Idempotent. *)

(** The consistent-hash ring that assigns fingerprints to shards.

    Each member contributes [vnodes] deterministic hash points (MD5 of
    ["member#i"]); a key is owned by the member whose point follows the
    key's own hash point clockwise.  The classic properties follow:
    keys spread evenly for reasonable [vnodes], and adding or removing
    one member only moves the keys adjacent to that member's points —
    every other key keeps its owner, which is what lets the cluster
    rehash on membership change without a global reshuffle.

    A ring is immutable; membership changes build a new ring (cheap:
    [members × vnodes] digests) and swap it in. *)

type t

val default_vnodes : int
(** 64 — keeps the balance deviation across members within a few
    percent while membership stays small. *)

val create : ?vnodes:int -> string list -> t
(** Duplicate member names are collapsed; order is irrelevant (members
    are sorted, so equal member sets build identical rings).
    @raise Invalid_argument when [vnodes < 1]. *)

val members : t -> string list
(** Sorted, deduplicated. *)

val vnodes : t -> int

val owners : t -> n:int -> string -> string list
(** The first [min n (length members)] distinct members clockwise from
    the key's hash point: the primary first, then the successors that
    hold the key's replicas.  Empty iff the ring has no members. *)

val owner : t -> string -> string option
(** The primary alone. *)

type t = {
  vnodes : int;
  members : string list;  (* deduplicated, sorted *)
  points : (int * string) array;  (* sorted by hash point *)
}

let default_vnodes = 64

(* First 8 digest bytes folded big-endian, masked non-negative: a
   deterministic 62-bit hash point, stable across runs and builds
   (the cache fingerprints are MD5 for the same reason). *)
let point_of s =
  let d = Digest.string s in
  let x = ref 0 in
  for i = 0 to 7 do
    x := (!x lsl 8) lor Char.code d.[i]
  done;
  !x land max_int

let create ?(vnodes = default_vnodes) members =
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be >= 1";
  let members = List.sort_uniq String.compare members in
  let points =
    List.concat_map
      (fun m -> List.init vnodes (fun i -> (point_of (Printf.sprintf "%s#%d" m i), m)))
      members
    |> Array.of_list
  in
  Array.sort compare points;
  { vnodes; members; points }

let members t = t.members
let vnodes t = t.vnodes

(* Index of the first point clockwise from [h] (wrapping past the top
   of the circle back to index 0). *)
let successor_index t h =
  let n = Array.length t.points in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst t.points.(mid) < h then search (mid + 1) hi else search lo mid
  in
  let i = search 0 n in
  if i = n then 0 else i

let owners t ~n key =
  let total = List.length t.members in
  if total = 0 || n < 1 then []
  else begin
    let want = min n total in
    let start = successor_index t (point_of key) in
    let len = Array.length t.points in
    let seen = Hashtbl.create 8 in
    let acc = ref [] in
    let i = ref 0 in
    while Hashtbl.length seen < want && !i < len do
      let _, m = t.points.((start + !i) mod len) in
      if not (Hashtbl.mem seen m) then begin
        Hashtbl.add seen m ();
        acc := m :: !acc
      end;
      incr i
    done;
    List.rev !acc
  end

let owner t key = match owners t ~n:1 key with [] -> None | m :: _ -> Some m

(** The cluster front-end: routes analysis requests across shards.

    Speaks the same line-delimited {!Bi_serve.Protocol} as a single
    shard, so clients cannot tell a router from a server.  Each
    analysis request is fingerprinted exactly as a shard would
    fingerprint it ([bi-ncs-v1] canonical form), looked up in a small
    front cache, and otherwise forwarded — original line, verbatim — to
    the key's owners on the consistent-hash {!Ring}, primary first.

    Failover: transport failure and [overloaded] move the request to
    the next owner (and Down owners are kept as a last resort);
    [error] and [deadline_exceeded] are returned as-is, since they are
    deterministic or belong to the caller's budget.  A fresh compute is
    replicated synchronously to further owners until [quorum] copies
    exist; a [put] is fanned out to all routable owners and must reach
    the quorum itself.

    Health: a poller thread probes members with the [health] verb on a
    deterministic schedule ({!Membership}: up/suspect/down with
    exponential probe backoff) and, on every Down→Up recovery or member
    addition, warms the shard with the front-cache entries it owns —
    restoring byte-identical warm answers without recomputation.

    Membership is static ([~members]) unless [~members_file] is given:
    then SIGHUP re-reads the file (members separated by commas or
    whitespace), swaps in a new ring, keeps surviving members' states,
    and probes + warms the newcomers.

    Self-healing: a write that cannot reach an owner (down, partitioned,
    refusing) is parked in a {!Hints} log and delivered on the owner's
    Down→Up recovery — before warming; a failover read served from a
    replica's cache parks the answer for each owner that failed
    (read-repair); and every [repair_interval_ticks] poller ticks an
    anti-entropy round compares one Up owner pair's [digest] rollups
    and converges the differing buckets via [pull] + [put] ({!Fsck}'s
    divergence rule: the holder earliest in ring-owner order wins). *)

type config = {
  replicas : int;  (** Owners per key (including the primary). *)
  quorum : int;  (** Copies a write must reach; [<= replicas]. *)
  vnodes : int;  (** Ring points per member. *)
  front_capacity : int;  (** Front-cache entries. *)
  probe_interval_s : float;  (** Seconds per membership tick. *)
  probe_timeout_s : float;  (** Health-probe read timeout. *)
  shard_timeout_s : float;  (** Forwarded-request read timeout. *)
  hint_capacity : int;  (** Parked writes the hint log holds. *)
  repair_interval_ticks : int;
      (** Poller ticks between anti-entropy rounds; [0] disables the
          loop (hinted handoff and read-repair stay on). *)
}

val default_config : config
(** 2 replicas, quorum 2, 64 vnodes, 4096 front entries, 250 ms ticks,
    2 s probe timeout, 30 s shard timeout, 512 hints, anti-entropy
    every 8 ticks. *)

val addr_of_member : string -> (Bi_serve.Client.addr, string) result
(** The member-address grammar shared by the router and [bi fsck]: a
    Unix-socket path (contains ['/']), a bare port, or
    [127.0.0.1:port] / [localhost:port]. *)

val parse_members : string -> string list
(** Splits a member list on commas and whitespace, dropping empties —
    the format of [--members] and of the SIGHUP-reloadable members
    file.  Duplicate members are dropped (first occurrence kept, order
    preserved) with a warning on stderr: a duplicate would double-weight
    the ring and let one shard count twice toward the quorum. *)

val run :
  ?on_ready:(unit -> unit) ->
  ?metrics_out:string ->
  ?members_file:string ->
  ?hints_path:string ->
  ?config:config ->
  members:string list ->
  Bi_serve.Lineserver.listen ->
  unit
(** Serves until a [shutdown] request, SIGINT or SIGTERM; then joins
    the prober and, with [~metrics_out], dumps router metrics, member
    states and front-cache stats as one JSON line.  A member is a
    Unix-socket path (contains ['/']), a bare port, or
    [127.0.0.1:port] / [localhost:port].  With [~hints_path] the hint
    log is durable: parked writes survive a router restart and are
    replayed from disk.
    @raise Failure on an empty or malformed member list, [quorum < 1],
    [replicas < quorum], or [hint_capacity < 1]. *)

(** Replica consistency checker ([bi fsck]) and repair driver.

    Compares the copies of every key across its ring owners and reports
    each divergence: owners lacking the key, or holders whose canonical
    body checksums disagree.  With [~repair:true] the authoritative copy
    — the holder earliest in the ring's owner order, the same
    deterministic last-writer-wins proxy the router's anti-entropy loop
    uses — is pulled and pushed to every disagreeing owner through the
    ordinary [put] path, then the whole set is re-measured.

    Sources abstract where replica state lives: {!store_source} reads a
    shard's append-only store file directly (offline fsck, or a live
    shard's flushed log), {!exchange_source} drives the [digest] /
    [pull] / [put] verbs over a caller-supplied exchange function
    (online fsck).  Non-owner copies of a key are ignored — legitimate
    leftovers of membership changes, not divergence. *)

type source = {
  name : string;  (** Ring member name this source stands for. *)
  keys : unit -> ((string * string) list, string) result;
      (** All resident [(key, check)] pairs. *)
  pull : string list -> (Bi_cache.Store.entry list, string) result;
  push : Bi_cache.Store.entry -> (unit, string) result;
}

type divergence = {
  key : string;
  bucket : int;  (** {!Bi_cache.Store.bucket_of_key}. *)
  holders : (string * string) list;
      (** Owner sources holding the key, ring-owner order, with their
          checks. *)
  missing : string list;  (** Owner sources lacking the key. *)
  authority : string;  (** First holder in ring-owner order. *)
}

type report = {
  sources : string list;
  unreachable : (string * string) list;
      (** Sources whose state could not be read (name, error). *)
  keys_checked : int;
  divergent : divergence list;  (** As found, before any repair. *)
  repaired : int;  (** Divergences that measurably converged. *)
  repair_failures : (string * string) list;  (** (key, error). *)
  remaining : int;  (** Divergences left after the repair pass. *)
}

val store_source : name:string -> string -> source
(** A shard's store file on disk: reads reconstruct the replay view
    (last verified entry per key), pushes append. *)

val exchange_source :
  name:string ->
  (Bi_engine.Sink.json -> (Bi_engine.Sink.json, string) result) ->
  source
(** A live shard behind one-exchange-per-request transport.  A shard
    that rejects [digest] (pre-repair build) surfaces as unreachable. *)

val divergences :
  ring:Ring.t ->
  replicas:int ->
  (string * (string, string) Hashtbl.t) list ->
  int * divergence list
(** Pure core: (keys checked, divergences) over per-source key→check
    tables.  Exposed for the router's anti-entropy loop and tests. *)

val run : ring:Ring.t -> replicas:int -> repair:bool -> source list -> report

val report_to_json : report -> Bi_engine.Sink.json

type state = Up | Suspect | Down

let state_to_string = function
  | Up -> "up"
  | Suspect -> "suspect"
  | Down -> "down"

type entry = {
  mutable state : state;
  mutable failures : int;  (* consecutive probe failures *)
  mutable next_probe : int;  (* tick at which the next probe is due *)
}

type t = {
  lock : Mutex.t;
  mutable entries : (string * entry) list;  (* insertion-ordered *)
  down_after : int;
  max_backoff : int;
}

let default_down_after = 3
let default_max_backoff = 16

(* New members start Suspect with an immediately-due probe: they are
   routable right away (last-resort traffic beats no traffic) but the
   first successful probe reports [`Recovered], which is the router's
   cue to warm them. *)
let fresh_entry () = { state = Suspect; failures = 0; next_probe = 0 }

let create ?(down_after = default_down_after)
    ?(max_backoff = default_max_backoff) members =
  if down_after < 1 then invalid_arg "Membership.create: down_after must be >= 1";
  let seen = Hashtbl.create 8 in
  let entries =
    List.filter_map
      (fun m ->
        if Hashtbl.mem seen m then None
        else begin
          Hashtbl.add seen m ();
          Some (m, fresh_entry ())
        end)
      members
  in
  { lock = Mutex.create (); entries; down_after; max_backoff }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let members t = locked t (fun () -> List.map fst t.entries)

let state t m =
  locked t (fun () ->
      Option.map (fun e -> e.state) (List.assoc_opt m t.entries))

let states t =
  locked t (fun () -> List.map (fun (m, e) -> (m, e.state)) t.entries)

let routable t =
  locked t (fun () ->
      List.filter_map
        (fun (m, e) -> if e.state = Down then None else Some m)
        t.entries)

let due t ~now =
  locked t (fun () ->
      List.filter_map
        (fun (m, e) -> if e.next_probe <= now then Some m else None)
        t.entries)

let note_success t ~now m =
  locked t (fun () ->
      match List.assoc_opt m t.entries with
      | None -> `Ok
      | Some e ->
        let was = e.state in
        e.state <- Up;
        e.failures <- 0;
        e.next_probe <- now + 1;
        if was = Up then `Ok else `Recovered)

(* Probe backoff is deterministic — no jitter needed, the router is the
   only prober of its members: the [n]th consecutive failure defers the
   next probe by [min max_backoff 2^n] ticks, so a dead shard costs one
   connection attempt every capped interval instead of every tick. *)
let note_failure t ~now m =
  locked t (fun () ->
      match List.assoc_opt m t.entries with
      | None -> `Ok
      | Some e ->
        let was = e.state in
        e.failures <- e.failures + 1;
        e.state <- (if e.failures >= t.down_after then Down else Suspect);
        let backoff =
          if e.failures >= 30 then t.max_backoff
          else min t.max_backoff (1 lsl e.failures)
        in
        e.next_probe <- now + backoff;
        if e.state = Down && was <> Down then `Went_down else `Ok)

let set_members t members =
  locked t (fun () ->
      let seen = Hashtbl.create 8 in
      let keep = Hashtbl.create 8 in
      List.iter (fun m -> Hashtbl.replace keep m ()) members;
      let added = ref [] in
      let entries =
        List.filter_map
          (fun m ->
            if Hashtbl.mem seen m then None
            else begin
              Hashtbl.add seen m ();
              match List.assoc_opt m t.entries with
              | Some e -> Some (m, e)  (* known member keeps its state *)
              | None ->
                added := m :: !added;
                Some (m, fresh_entry ())
            end)
          members
      in
      t.entries <- entries;
      List.rev !added)

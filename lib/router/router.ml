module Sink = Bi_engine.Sink
module Client = Bi_serve.Client
module Protocol = Bi_serve.Protocol
module Lineserver = Bi_serve.Lineserver
module Lru = Bi_cache.Lru
module Fingerprint = Bi_cache.Fingerprint
module Registry = Bi_constructions.Registry

type config = {
  replicas : int;
  quorum : int;
  vnodes : int;
  front_capacity : int;
  probe_interval_s : float;
  probe_timeout_s : float;
  shard_timeout_s : float;
  hint_capacity : int;
  repair_interval_ticks : int;
}

let default_config =
  {
    replicas = 2;
    quorum = 2;
    vnodes = Ring.default_vnodes;
    front_capacity = 4096;
    probe_interval_s = 0.25;
    probe_timeout_s = 2.;
    shard_timeout_s = 30.;
    hint_capacity = Hints.default_capacity;
    repair_interval_ticks = 8;
  }

(* One anti-entropy round compares one owner pair; bounding the buckets
   repaired per round keeps each round short so the poller's probe
   cadence never starves behind a large divergence. *)
let repair_buckets_per_round = 16

type t = {
  config : config;
  metrics : Metrics.t;
  membership : Membership.t;
  mutable ring : Ring.t;  (* immutable value, swapped under [ring_lock] *)
  ring_lock : Mutex.t;
  front : Sink.json Lru.t;  (* fingerprint -> encoded analysis *)
  front_lock : Mutex.t;
  hints : Hints.t;
  ls : Lineserver.t;
  members_file : string option;
  reload : bool Atomic.t;  (* set by SIGHUP, consumed by the poller *)
  mutable repair_cursor : int;  (* poller-thread only *)
}

(* --- member addresses ------------------------------------------------- *)

let addr_of_member m =
  let port_of s =
    match int_of_string_opt s with
    | Some p when p > 0 && p < 65536 -> Ok p
    | _ -> Error (Printf.sprintf "member %S: invalid port" m)
  in
  if String.contains m '/' then Ok (Client.Unix_path m)
  else
    match String.rindex_opt m ':' with
    | None -> Result.map (fun p -> Client.Tcp_port p) (port_of m)
    | Some i ->
      let host = String.sub m 0 i in
      let port = String.sub m (i + 1) (String.length m - i - 1) in
      if host = "127.0.0.1" || host = "localhost" then
        Result.map (fun p -> Client.Tcp_port p) (port_of port)
      else
        Error
          (Printf.sprintf
             "member %S: only loopback (127.0.0.1) or socket-path members \
              are supported"
             m)

let validate_members members =
  if members = [] then Error "no members given"
  else
    List.fold_left
      (fun acc m ->
        match (acc, addr_of_member m) with
        | (Error _ as e), _ -> e
        | Ok (), Ok _ -> Ok ()
        | Ok (), Error e -> Error e)
      (Ok ()) members

(* --- ring and front-cache access -------------------------------------- *)

let current_ring t =
  Mutex.lock t.ring_lock;
  let r = t.ring in
  Mutex.unlock t.ring_lock;
  r

let owners t fingerprint =
  Ring.owners (current_ring t) ~n:t.config.replicas fingerprint

let front_find t fingerprint =
  Mutex.lock t.front_lock;
  let v = Lru.find t.front fingerprint in
  Mutex.unlock t.front_lock;
  v

let front_store t fingerprint analysis =
  Mutex.lock t.front_lock;
  Lru.add t.front fingerprint analysis;
  Mutex.unlock t.front_lock

let front_snapshot t =
  Mutex.lock t.front_lock;
  let entries = Lru.fold (fun acc k v -> (k, v) :: acc) [] t.front in
  let length = Lru.length t.front and capacity = Lru.capacity t.front in
  Mutex.unlock t.front_lock;
  (entries, length, capacity)

(* --- talking to shards ------------------------------------------------ *)

(* One connection per exchange, no retry loop: a failed or overloaded
   shard must surface immediately so the router can fail over to the
   next owner instead of camping on a corpse; the health prober (not
   the request path) is what decides a shard is down. *)
let exchange t ?(timeout_s = t.config.shard_timeout_s) member request =
  match addr_of_member member with
  | Error e -> Error (Client.Io e)
  | Ok addr -> (
    match Client.make ~timeout_s addr with
    | exception Unix.Unix_error (err, _, _) ->
      Error (Client.Io (Unix.error_message err))
    | client ->
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () -> Client.request client request))

let put_to t ~tick ?(kind = "analysis") member ~fingerprint body =
  Metrics.forward t.metrics;
  match exchange t member (Protocol.put_request ~kind ~fingerprint body) with
  | Ok resp when Protocol.is_ok resp ->
    Metrics.replication t.metrics;
    true
  | Ok _ ->
    Metrics.replication_failure t.metrics;
    false
  | Error _ ->
    Metrics.replication_failure t.metrics;
    ignore (Membership.note_failure t.membership ~now:tick member);
    false

(* Park a write that could not reach an owner; drained on the owner's
   Down→Up transition, before warming. *)
let hint t member ~fingerprint ~kind body =
  let dropped = Hints.record t.hints ~member ~fingerprint ~kind body in
  Metrics.hint_recorded t.metrics;
  for _ = 1 to dropped do
    Metrics.hint_dropped t.metrics
  done

let is_down t m = Membership.state t.membership m = Some Membership.Down

(* Synchronous write fan-out after a fresh compute: the answering shard
   already holds copy one; push copies to the remaining owners until
   [quorum] copies exist.  A Down owner, or one that refuses the copy,
   gets a hint instead of silence — the recovery drain converges it; a
   missed quorum is counted, not failed — the client has its answer,
   durability is degraded and visible. *)
let replicate t ~tick ~answered_by ~fingerprint analysis =
  let others =
    List.filter (fun m -> m <> answered_by) (owners t fingerprint)
  in
  let needed = t.config.quorum - 1 in
  let acks =
    List.fold_left
      (fun acks m ->
        if is_down t m then begin
          hint t m ~fingerprint ~kind:"analysis" analysis;
          acks
        end
        else if acks >= needed then acks
        else if put_to t ~tick m ~fingerprint analysis then acks + 1
        else begin
          hint t m ~fingerprint ~kind:"analysis" analysis;
          acks
        end)
      0 others
  in
  if acks < needed then Metrics.quorum_failure t.metrics

(* --- request routing -------------------------------------------------- *)

(* Candidate order for a key: its owners as the ring lists them
   (primary, then successors), routable ones first; owners already
   marked Down come last as a desperation measure — a Down shard that
   just restarted may well answer, and a structured error beats none. *)
let candidates t fingerprint =
  let owners = owners t fingerprint in
  let down m = Membership.state t.membership m = Some Membership.Down in
  let live, dead = List.partition (fun m -> not (down m)) owners in
  live @ dead

let ok_from_front ~fingerprint analysis =
  Sink.Obj
    [
      ("ok", Sink.Bool true);
      ("fingerprint", Sink.Str fingerprint);
      ("cached", Sink.Bool true);
      ("analysis", analysis);
    ]

let no_shard_error fingerprint =
  Protocol.error
    (Printf.sprintf "no shard available for fingerprint %s" fingerprint)

(* Forward an analysis request (as its original line, so deadline and
   every other field ride along verbatim).  Failover policy: transport
   failures and [overloaded] move to the next owner; [error] and
   [deadline_exceeded] are deterministic verdicts and are returned
   as-is — every shard would say the same, and the deadline belongs to
   the client, not to the routing. *)
let route_analysis t ~tick ~request ~fingerprint =
  match front_find t fingerprint with
  | Some analysis ->
    Metrics.front_hit t.metrics;
    ok_from_front ~fingerprint analysis
  | None ->
    let key_owners = owners t fingerprint in
    let rec attempt last failed = function
      | [] -> (
        Metrics.unrouted t.metrics;
        match last with
        | Some resp -> resp
        | None -> no_shard_error fingerprint)
      | member :: rest -> (
        Metrics.forward t.metrics;
        match exchange t member request with
        | Error (Client.Io _ | Client.Malformed _ | Client.Closed) ->
          ignore (Membership.note_failure t.membership ~now:tick member);
          if rest <> [] then Metrics.failover t.metrics;
          attempt last (member :: failed) rest
        | Ok resp -> (
          match Protocol.response_code resp with
          | Some "ok" ->
            (match Sink.member "analysis" resp with
            | Some analysis ->
              front_store t fingerprint analysis;
              let fresh =
                match Sink.member "cached" resp with
                | Some (Sink.Bool cached) -> not cached
                | _ -> false
              in
              if fresh then
                replicate t ~tick ~answered_by:member ~fingerprint analysis
              else
                (* Read-repair: a failover read answered from a
                   replica's cache means every owner we passed over is
                   missing or unreachable — park the answer for each so
                   the primary converges the moment it recovers. *)
                List.iter
                  (fun m ->
                    if List.mem m key_owners then begin
                      Metrics.read_repair t.metrics;
                      hint t m ~fingerprint ~kind:"analysis" analysis
                    end)
                  failed
            | None -> ());
            resp
          | Some "overloaded" ->
            if rest <> [] then Metrics.failover t.metrics;
            attempt (Some resp) failed rest
          | _ -> resp))
    in
    attempt None [] (candidates t fingerprint)

(* A [put] arriving at the router is a client-driven write: fan it out
   to every routable owner and demand the quorum ourselves.  An owner
   the write cannot reach — Down, or failing mid-fan-out — gets a hint,
   so even a degraded write converges on recovery. *)
let route_put t ~tick ~fingerprint ~kind body =
  if kind = "analysis" then front_store t fingerprint body;
  let all_owners = owners t fingerprint in
  let live = List.filter (fun m -> not (is_down t m)) all_owners in
  let acks =
    List.fold_left
      (fun acks m ->
        if is_down t m then begin
          hint t m ~fingerprint ~kind body;
          acks
        end
        else if put_to t ~tick ~kind m ~fingerprint body then acks + 1
        else begin
          hint t m ~fingerprint ~kind body;
          acks
        end)
      0 all_owners
  in
  if acks >= min t.config.quorum (max 1 (List.length live)) then
    Protocol.ok_stored ~fingerprint
  else begin
    Metrics.quorum_failure t.metrics;
    Protocol.error
      (Printf.sprintf "quorum not met for %s: %d/%d acks" fingerprint acks
         t.config.quorum)
  end

let members_json t =
  Sink.Obj
    (List.map
       (fun (m, s) -> (m, Sink.Str (Membership.state_to_string s)))
       (Membership.states t.membership))

let front_stats_json t =
  let _, length, capacity = front_snapshot t in
  Sink.Obj [ ("length", Sink.Int length); ("capacity", Sink.Int capacity) ]

let router_stats t =
  Sink.Obj
    [
      ("ok", Sink.Bool true);
      ("router", Metrics.to_json t.metrics);
      ("members", members_json t);
      ("front", front_stats_json t);
      ("hints", Sink.Int (Hints.pending t.hints));
    ]

let router_health t =
  Sink.Obj
    [
      ("ok", Sink.Bool true);
      ("shard", Sink.Str "router");
      ("inflight", Sink.Int (Metrics.inflight t.metrics));
      ("members", members_json t);
      ("cache", front_stats_json t);
      ("hints", Sink.Int (Hints.pending t.hints));
    ]

let handle t ~tick line =
  Metrics.enter t.metrics;
  Fun.protect
    ~finally:(fun () -> Metrics.leave t.metrics)
    (fun () ->
      match Protocol.parse_request line with
      | Error e ->
        Metrics.error t.metrics;
        (Protocol.error e, `Continue)
      | Ok { Protocol.query; _ } -> (
        let request =
          (* parse_request succeeded, so the line is valid JSON. *)
          match Sink.of_string line with Ok j -> j | Error _ -> assert false
        in
        (* Routing keys are tier- and concept-qualified, so exhaustive,
           certified and correlated answers for the same game live on
           (possibly) different owners and never alias; certified and
           correlated responses carry no ["analysis"] member, so the
           front cache (which stores only that member) naturally
           ignores them. *)
        let mode_key fingerprint mode =
          match mode with
          | Bi_certify.Mode.Auto ->
            (* The router never builds games, so it cannot resolve
               [auto]; route on the certified key (deterministic for
               any replica count) and let the owning shard resolve. *)
            Fingerprint.with_mode fingerprint
              ~mode:(Bi_certify.Mode.cache_tag Bi_certify.Mode.Certified)
          | m -> Fingerprint.with_mode fingerprint ~mode:(Bi_certify.Mode.cache_tag m)
        in
        (* The correlated concepts ignore the solver tier (there is one
           LP path, no exhaustive/certified split), so their routing key
           qualifies the bare fingerprint — matching the shards' own
           cache keys byte for byte. *)
        let routing_key fingerprint ~mode ~concept =
          match concept with
          | Bi_correlated.Concept.Nash -> mode_key fingerprint mode
          | c ->
            Fingerprint.with_concept fingerprint
              ~concept:(Bi_correlated.Concept.cache_tag c)
        in
        match query with
        | Protocol.Analyze { graph; prior; mode; concept } ->
          let fingerprint =
            routing_key (Fingerprint.game graph ~prior) ~mode ~concept
          in
          (route_analysis t ~tick ~request ~fingerprint, `Continue)
        | Protocol.Construction { name; k; mode; concept } -> (
          match Registry.build name k with
          | Error e ->
            Metrics.error t.metrics;
            (Protocol.error e, `Continue)
          | Ok game ->
            let fingerprint =
              routing_key (Fingerprint.of_game game) ~mode ~concept
            in
            (route_analysis t ~tick ~request ~fingerprint, `Continue))
        | Protocol.Put { fingerprint; value } ->
          let kind, body =
            match value with
            | Protocol.Put_analysis analysis ->
              ("analysis", Bi_cache.Codec.analysis_to_json analysis)
            | Protocol.Put_payload body -> ("payload", body)
          in
          (route_put t ~tick ~fingerprint ~kind body, `Continue)
        | Protocol.Digest _ | Protocol.Pull _ ->
          (* Cluster-internal verbs: replica state lives on shards, the
             router holds only an ephemeral front cache.  fsck and the
             repair loop address shards directly. *)
          ( Protocol.error
              "digest/pull are shard verbs; address a shard directly",
            `Continue )
        | Protocol.Stats -> (router_stats t, `Continue)
        | Protocol.Health -> (router_health t, `Continue)
        | Protocol.Shutdown -> (Protocol.ok_shutdown, `Stop)))

(* --- health polling, warming, membership reload ----------------------- *)

(* Push every front-cache entry the member owns: after a recovery or a
   membership change the shard's disk may lag the cluster, and warming
   from the router's own recent answers restores byte-identical warm
   reads without recomputing anything. *)
let warm t ~tick member =
  let entries, _, _ = front_snapshot t in
  List.iter
    (fun (fingerprint, analysis) ->
      if List.mem member (owners t fingerprint) then
        if put_to t ~tick member ~fingerprint analysis then
          Metrics.warmed t.metrics)
    entries

(* Deliver the writes a member missed while unreachable.  Runs on its
   Down→Up transition, before warming: hints are the entries known to
   be missing, warming is opportunistic.  A hint that still cannot be
   delivered goes back in the log for the next recovery. *)
let drain_hints t ~tick member =
  List.iter
    (fun (h : Hints.hint) ->
      if
        put_to t ~tick ~kind:h.Hints.kind member
          ~fingerprint:h.Hints.fingerprint h.Hints.body
      then Metrics.repair t.metrics
      else
        ignore
          (Hints.record t.hints ~member ~fingerprint:h.Hints.fingerprint
             ~kind:h.Hints.kind h.Hints.body))
    (Hints.take t.hints member)

let probe t ~tick member =
  Metrics.probe t.metrics;
  let healthy =
    match
      exchange t ~timeout_s:t.config.probe_timeout_s member
        Protocol.health_request
    with
    | Ok resp -> Protocol.is_ok resp
    | Error _ -> false
  in
  if healthy then (
    match Membership.note_success t.membership ~now:tick member with
    | `Recovered ->
      Metrics.marked_up t.metrics;
      drain_hints t ~tick member;
      warm t ~tick member
    | `Ok -> ())
  else begin
    Metrics.probe_failure t.metrics;
    match Membership.note_failure t.membership ~now:tick member with
    | `Went_down -> Metrics.marked_down t.metrics
    | `Ok -> ()
  end

(* --- anti-entropy ------------------------------------------------------ *)

(* The digest view of one live member, as key→check tables keyed by
   bucket.  [Error] covers transport failure and pre-repair shards that
   reject the verb — both mean "skip this round", never "diverged". *)
let member_rollup t member =
  match exchange t member (Protocol.digest_request ()) with
  | Error _ -> Error ()
  | Ok resp ->
    if Protocol.is_ok resp then
      Result.map_error (fun _ -> ()) (Protocol.rollup_of resp)
    else Error ()

let member_bucket t member b =
  match exchange t member (Protocol.digest_request ~bucket:b ()) with
  | Error _ -> Error ()
  | Ok resp ->
    if Protocol.is_ok resp then
      Result.map_error (fun _ -> ()) (Protocol.bucket_keys_of resp)
    else Error ()

(* Repair the keys of one bucket between members [a] and [b]: judge the
   pair's copies with the same divergence rule fsck uses (restricted to
   this pair), pull each divergent key from its authority and push it to
   the lagging side through the ordinary [put] — so repaired entries are
   byte-identical to replicated ones, and last-writer-wins follows the
   ring's owner order. *)
let repair_bucket t ~tick a b bucket =
  match (member_bucket t a bucket, member_bucket t b bucket) with
  | Error (), _ | _, Error () -> ()
  | Ok pa, Ok pb ->
    let table pairs =
      let tbl = Hashtbl.create 16 in
      List.iter (fun (k, c) -> Hashtbl.replace tbl k c) pairs;
      tbl
    in
    let _, divergent =
      Fsck.divergences ~ring:(current_ring t) ~replicas:t.config.replicas
        [ (a, table pa); (b, table pb) ]
    in
    if divergent <> [] then
      Metrics.divergent t.metrics ~keys:(List.length divergent);
    List.iter
      (fun (d : Fsck.divergence) ->
        let targets =
          d.Fsck.missing
          @ List.filter_map
              (fun (n, check) ->
                if
                  n <> d.Fsck.authority
                  && check <> List.assoc d.Fsck.authority d.Fsck.holders
                then Some n
                else None)
              d.Fsck.holders
        in
        if targets <> [] then begin
          match exchange t d.Fsck.authority (Protocol.pull_request [ d.Fsck.key ]) with
          | Error _ -> ()
          | Ok resp -> (
            match Protocol.entries_of resp with
            | Ok (entry :: _) ->
              List.iter
                (fun target ->
                  if
                    put_to t ~tick ~kind:entry.Bi_cache.Store.kind target
                      ~fingerprint:entry.Bi_cache.Store.key
                      entry.Bi_cache.Store.body
                  then Metrics.repair t.metrics)
                targets
            | Ok [] | Error _ -> ())
        end)
      divergent

(* One low-duty-cycle anti-entropy round: compare the digest rollups of
   one Up owner pair (a rotating cursor covers all adjacent pairs over
   successive rounds) and repair the differing buckets, a bounded number
   per round. *)
let repair_round t ~tick =
  let ups =
    List.filter
      (fun m -> Membership.state t.membership m = Some Membership.Up)
      (Membership.members t.membership)
  in
  let n = List.length ups in
  if n >= 2 then begin
    Metrics.repair_round t.metrics;
    let a = List.nth ups (t.repair_cursor mod n) in
    let b = List.nth ups ((t.repair_cursor + 1) mod n) in
    t.repair_cursor <- t.repair_cursor + 1;
    match (member_rollup t a, member_rollup t b) with
    | Error (), _ | _, Error () -> ()
    | Ok ra, Ok rb ->
      let tbl = Hashtbl.create 64 in
      List.iter (fun (bk, d) -> Hashtbl.replace tbl bk [ d ]) ra;
      List.iter
        (fun (bk, d) ->
          match Hashtbl.find_opt tbl bk with
          | Some ds -> Hashtbl.replace tbl bk (d :: ds)
          | None -> Hashtbl.replace tbl bk [ d ])
        rb;
      let differing =
        Hashtbl.fold
          (fun bk ds acc ->
            match ds with
            | [ d1; d2 ] when d1 = d2 -> acc
            | _ -> bk :: acc)
          tbl []
        |> List.sort compare
      in
      let bounded =
        List.filteri (fun i _ -> i < repair_buckets_per_round) differing
      in
      List.iter (repair_bucket t ~tick a b) bounded
  end

let parse_members s =
  let raw =
    String.split_on_char ','
      (String.map (function '\n' | '\r' | '\t' | ' ' -> ',' | c -> c) s)
    |> List.filter_map (fun m ->
           let m = String.trim m in
           if m = "" then None else Some m)
  in
  (* Dedupe, keeping first-occurrence order: a duplicated member would
     double-weight the ring and count twice toward the quorum — two
     "copies" on one disk.  Noisy, because it is a config bug. *)
  let seen = Hashtbl.create 8 in
  List.filter
    (fun m ->
      if Hashtbl.mem seen m then begin
        Printf.eprintf "router: ignoring duplicate member %s\n%!" m;
        false
      end
      else begin
        Hashtbl.replace seen m ();
        true
      end)
    raw

let reload_members t ~tick =
  match t.members_file with
  | None -> ()
  | Some path -> (
    match
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error e ->
      Printf.eprintf "router: members reload failed: %s\n%!" e
    | content -> (
      let members = parse_members content in
      match validate_members members with
      | Error e -> Printf.eprintf "router: members reload rejected: %s\n%!" e
      | Ok () ->
        let ring = Ring.create ~vnodes:t.config.vnodes members in
        Mutex.lock t.ring_lock;
        t.ring <- ring;
        Mutex.unlock t.ring_lock;
        let added = Membership.set_members t.membership members in
        Printf.eprintf "router: members reloaded: %s%s\n%!"
          (String.concat "," members)
          (if added = [] then ""
           else " (new: " ^ String.concat "," added ^ ")");
        (* New members are probed (and warmed) on this same tick. *)
        List.iter (probe t ~tick) added))

let poller t =
  let tick = ref 0 in
  while not (Lineserver.stopping t.ls) do
    incr tick;
    if Atomic.exchange t.reload false then reload_members t ~tick:!tick;
    List.iter (probe t ~tick:!tick) (Membership.due t.membership ~now:!tick);
    if
      t.config.repair_interval_ticks > 0
      && !tick mod t.config.repair_interval_ticks = 0
    then repair_round t ~tick:!tick;
    Thread.delay t.config.probe_interval_s
  done

(* --- lifecycle -------------------------------------------------------- *)

let dump_metrics t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let j =
        Sink.Obj
          [
            ("record", Sink.Str "router_metrics");
            ("router", Metrics.to_json t.metrics);
            ("members", members_json t);
            ("front", front_stats_json t);
          ]
      in
      output_string oc (Sink.to_string j);
      output_char oc '\n')

let handle_conn t oc line =
  (* The poller owns the tick clock; request threads read a coarse
     now-ish tick for failure bookkeeping — exactness is irrelevant,
     only monotonicity matters, and 0 under-runs every schedule. *)
  let response, disposition = handle t ~tick:0 line in
  let delivered =
    try
      output_string oc (Sink.to_string response);
      output_char oc '\n';
      flush oc;
      true
    with Sys_error _ -> false
  in
  match disposition with
  | `Stop -> `Stop
  | `Continue -> if delivered then `Continue else `Close

let run ?on_ready ?metrics_out ?members_file ?hints_path
    ?(config = default_config) ~members listen =
  (match validate_members members with
  | Ok () -> ()
  | Error e -> failwith ("router: " ^ e));
  if config.quorum < 1 then failwith "router: quorum must be >= 1";
  if config.replicas < config.quorum then
    failwith "router: replicas must be >= quorum";
  if config.hint_capacity < 1 then
    failwith "router: hint capacity must be >= 1";
  let ls = Lineserver.create listen in
  let t =
    {
      config;
      metrics = Metrics.create ();
      membership = Membership.create members;
      ring = Ring.create ~vnodes:config.vnodes members;
      ring_lock = Mutex.create ();
      front = Lru.create ~capacity:(max 1 config.front_capacity);
      front_lock = Mutex.create ();
      hints = Hints.create ~capacity:config.hint_capacity ?path:hints_path ();
      ls;
      members_file;
      reload = Atomic.make false;
      repair_cursor = 0;
    }
  in
  let previous_hup =
    try
      Some
        (Sys.signal Sys.sighup
           (Sys.Signal_handle (fun _ -> Atomic.set t.reload true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let poller_th = Thread.create poller t in
  Lineserver.run ?on_ready ~handler:(handle_conn t) ls;
  Thread.join poller_th;
  (match previous_hup with
  | Some h -> ( try Sys.set_signal Sys.sighup h with Invalid_argument _ | Sys_error _ -> ())
  | None -> ());
  Hints.close t.hints;
  Option.iter (dump_metrics t) metrics_out

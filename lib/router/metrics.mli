(** Router-side counters: request traffic (front-cache hits, forwards,
    failovers, unroutable requests), replication outcomes (acks,
    failures, missed quorums), the health prober's activity (probes,
    failures, up/down transitions, warm writes) and an in-flight gauge
    with high-water mark.  Mutex-protected; rendered by the router's
    [stats] verb and dumped to disk at exit for the CI artifact. *)

type t

val create : unit -> t

val enter : t -> unit
(** A request arrived: counts it and raises the in-flight gauge. *)

val leave : t -> unit
val inflight : t -> int

val error : t -> unit
val front_hit : t -> unit

val forward : t -> unit
(** A request was sent to a shard (counted per attempt). *)

val failover : t -> unit
(** An attempt failed over to the next owner (overload, timeout or
    connection loss). *)

val unrouted : t -> unit
(** Every candidate owner was exhausted without a usable answer. *)

val replication : t -> unit
(** One replica acknowledged a [put]. *)

val replication_failure : t -> unit

val quorum_failure : t -> unit
(** A write ended with fewer than [quorum] copies. *)

val probe : t -> unit
val probe_failure : t -> unit
val marked_up : t -> unit
val marked_down : t -> unit

val warmed : t -> unit
(** One front-cache entry was pushed to a recovered or new shard. *)

val hint_recorded : t -> unit
(** A missed write was parked in the hint log. *)

val hint_dropped : t -> unit
(** A parked hint was evicted by the log's capacity bound. *)

val read_repair : t -> unit
(** A failover read scheduled a repair of an owner that failed. *)

val repair_round : t -> unit
(** The anti-entropy loop compared one owner pair. *)

val divergent : t -> keys:int -> unit
(** Anti-entropy found [keys] divergent keys in a round. *)

val repair : t -> unit
(** One entry was successfully pushed by a repair path (hint drain,
    anti-entropy, or fsck --repair through the router). *)

val to_json : t -> Bi_engine.Sink.json

(** The router's view of each shard: an up/suspect/down state machine
    driven by health probes, with deterministic probe backoff.

    Time is an abstract monotone tick (the router's poll loop counts
    them); nothing here sleeps or talks to the network.  A member is
    [Up] after a successful probe, [Suspect] after any failure (or
    before its first probe), and [Down] after [down_after] consecutive
    failures.  [Suspect] members still receive traffic — one slow probe
    must not evict a healthy shard — while [Down] members are skipped
    except as a last resort.  Consecutive failures back the probing off
    exponentially up to [max_backoff] ticks; a single success resets
    everything.  All operations are thread-safe. *)

type state = Up | Suspect | Down

val state_to_string : state -> string

type t

val create : ?down_after:int -> ?max_backoff:int -> string list -> t
(** Members start [Suspect] with a probe due at tick 0, so the first
    healthy probe reports [`Recovered] — the router warms on that
    signal, which covers startup and member-addition with one code
    path.  Duplicates are collapsed, order is preserved.  Defaults:
    [down_after = 3], [max_backoff = 16].
    @raise Invalid_argument when [down_after < 1]. *)

val members : t -> string list

val state : t -> string -> state option
val states : t -> (string * state) list

val routable : t -> string list
(** Members currently worth trying: [Up] and [Suspect], in member
    order. *)

val due : t -> now:int -> string list
(** Members whose next probe is due at tick [now]. *)

val note_success : t -> now:int -> string -> [ `Recovered | `Ok ]
(** Marks the member [Up], clears its failure count, schedules the next
    routine probe for [now + 1].  [`Recovered] iff it was not [Up]
    before — the warming trigger. *)

val note_failure : t -> now:int -> string -> [ `Went_down | `Ok ]
(** Counts a consecutive failure: [Suspect] until [down_after] of them,
    then [Down] ([`Went_down] on that transition only); the next probe
    is deferred by [min max_backoff (2^failures)] ticks. *)

val set_members : t -> string list -> string list
(** Replaces the member list (SIGHUP reload): surviving members keep
    their state and probe schedule, departed members are dropped, new
    members start like those in {!create}.  Returns the added members. *)

module Sink = Bi_engine.Sink

type t = {
  lock : Mutex.t;
  mutable requests : int;
  mutable errors : int;
  mutable front_hits : int;
  mutable forwards : int;
  mutable failovers : int;
  mutable unrouted : int;
  mutable replications : int;
  mutable replication_failures : int;
  mutable quorum_failures : int;
  mutable probes : int;
  mutable probe_failures : int;
  mutable marked_up : int;
  mutable marked_down : int;
  mutable warmed : int;
  mutable hints_recorded : int;
  mutable hints_dropped : int;
  mutable read_repairs : int;
  mutable repair_rounds : int;
  mutable divergent_keys : int;
  mutable repairs : int;
  mutable inflight : int;
  mutable max_inflight : int;
}

let create () =
  {
    lock = Mutex.create ();
    requests = 0;
    errors = 0;
    front_hits = 0;
    forwards = 0;
    failovers = 0;
    unrouted = 0;
    replications = 0;
    replication_failures = 0;
    quorum_failures = 0;
    probes = 0;
    probe_failures = 0;
    marked_up = 0;
    marked_down = 0;
    warmed = 0;
    hints_recorded = 0;
    hints_dropped = 0;
    read_repairs = 0;
    repair_rounds = 0;
    divergent_keys = 0;
    repairs = 0;
    inflight = 0;
    max_inflight = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let enter t =
  locked t (fun () ->
      t.requests <- t.requests + 1;
      t.inflight <- t.inflight + 1;
      if t.inflight > t.max_inflight then t.max_inflight <- t.inflight)

let leave t = locked t (fun () -> t.inflight <- t.inflight - 1)
let inflight t = locked t (fun () -> t.inflight)
let error t = locked t (fun () -> t.errors <- t.errors + 1)
let front_hit t = locked t (fun () -> t.front_hits <- t.front_hits + 1)
let forward t = locked t (fun () -> t.forwards <- t.forwards + 1)
let failover t = locked t (fun () -> t.failovers <- t.failovers + 1)
let unrouted t = locked t (fun () -> t.unrouted <- t.unrouted + 1)
let replication t = locked t (fun () -> t.replications <- t.replications + 1)

let replication_failure t =
  locked t (fun () -> t.replication_failures <- t.replication_failures + 1)

let quorum_failure t =
  locked t (fun () -> t.quorum_failures <- t.quorum_failures + 1)

let probe t = locked t (fun () -> t.probes <- t.probes + 1)

let probe_failure t =
  locked t (fun () -> t.probe_failures <- t.probe_failures + 1)

let marked_up t = locked t (fun () -> t.marked_up <- t.marked_up + 1)
let marked_down t = locked t (fun () -> t.marked_down <- t.marked_down + 1)
let warmed t = locked t (fun () -> t.warmed <- t.warmed + 1)

let hint_recorded t =
  locked t (fun () -> t.hints_recorded <- t.hints_recorded + 1)

let hint_dropped t =
  locked t (fun () -> t.hints_dropped <- t.hints_dropped + 1)

let read_repair t = locked t (fun () -> t.read_repairs <- t.read_repairs + 1)

let repair_round t =
  locked t (fun () -> t.repair_rounds <- t.repair_rounds + 1)

let divergent t ~keys =
  locked t (fun () -> t.divergent_keys <- t.divergent_keys + keys)

let repair t = locked t (fun () -> t.repairs <- t.repairs + 1)

let to_json t =
  locked t (fun () ->
      Sink.Obj
        [
          ("requests", Sink.Int t.requests);
          ("errors", Sink.Int t.errors);
          ("front_hits", Sink.Int t.front_hits);
          ("forwards", Sink.Int t.forwards);
          ("failovers", Sink.Int t.failovers);
          ("unrouted", Sink.Int t.unrouted);
          ("replications", Sink.Int t.replications);
          ("replication_failures", Sink.Int t.replication_failures);
          ("quorum_failures", Sink.Int t.quorum_failures);
          ("probes", Sink.Int t.probes);
          ("probe_failures", Sink.Int t.probe_failures);
          ("marked_up", Sink.Int t.marked_up);
          ("marked_down", Sink.Int t.marked_down);
          ("warmed", Sink.Int t.warmed);
          ("hints_recorded", Sink.Int t.hints_recorded);
          ("hints_dropped", Sink.Int t.hints_dropped);
          ("read_repairs", Sink.Int t.read_repairs);
          ("repair_rounds", Sink.Int t.repair_rounds);
          ("divergent_keys", Sink.Int t.divergent_keys);
          ("repairs", Sink.Int t.repairs);
          ("inflight", Sink.Int t.inflight);
          ("max_inflight", Sink.Int t.max_inflight);
        ])

module Sink = Bi_engine.Sink
module Store = Bi_cache.Store

(* A hinted-handoff log: writes that failed to reach an owner, parked
   until the owner comes back.  Durable via the Store line format — one
   ["hint"] entry per (member, fingerprint), superseded by later writes
   to the same key and cancelled by a ["hint-drop"] tombstone — so a
   router restart replays exactly the outstanding hints. *)

type hint = {
  member : string;
  fingerprint : string;
  kind : string;
  body : Sink.json;
}

type t = {
  lock : Mutex.t;
  capacity : int;
  tbl : (string, hint) Hashtbl.t;  (* log key -> newest hint *)
  mutable order : string list;  (* log keys, oldest first *)
  mutable store : Store.t option;
  path : string option;
  (* Appends since the last rewrite; when they dwarf the live set the
     log is rewritten in place so it cannot grow without bound. *)
  mutable churn : int;
}

(* Member names never contain '|' (socket paths, ports, host:port), so
   the pair key is unambiguous — and stable, which is what lets a
   re-recorded hint supersede its predecessor on replay. *)
let log_key ~member ~fingerprint = member ^ "|" ^ fingerprint

let hint_to_entry h =
  {
    Store.key = log_key ~member:h.member ~fingerprint:h.fingerprint;
    kind = "hint";
    body =
      Sink.Obj
        [
          ("member", Sink.Str h.member);
          ("fingerprint", Sink.Str h.fingerprint);
          ("kind", Sink.Str h.kind);
          ("body", h.body);
        ];
  }

let drop_entry key = { Store.key; kind = "hint-drop"; body = Sink.Null }

let hint_of_entry (e : Store.entry) =
  match
    ( Sink.member "member" e.Store.body,
      Sink.member "fingerprint" e.Store.body,
      Sink.member "kind" e.Store.body,
      Sink.member "body" e.Store.body )
  with
  | Some (Sink.Str member), Some (Sink.Str fingerprint), Some (Sink.Str kind),
    Some body ->
    Some { member; fingerprint; kind; body }
  | _ -> None

let append_opt store entry =
  match store with None -> () | Some s -> Store.append s entry

(* Replay in append order: a later hint for the same (member, key)
   supersedes, a tombstone cancels. *)
let replay path tbl =
  let entries, _invalid = Store.load path in
  let order = ref [] in
  List.iter
    (fun (e : Store.entry) ->
      match e.Store.kind with
      | "hint" -> (
        match hint_of_entry e with
        | Some h ->
          if not (Hashtbl.mem tbl e.Store.key) then
            order := e.Store.key :: !order;
          Hashtbl.replace tbl e.Store.key h
        | None -> ())
      | "hint-drop" ->
        if Hashtbl.mem tbl e.Store.key then begin
          Hashtbl.remove tbl e.Store.key;
          order := List.filter (fun k -> k <> e.Store.key) !order
        end
      | _ -> ())
    entries;
  (List.rev !order, List.length entries)

(* Rewrite the log to exactly the live hints (temp + fsync + rename,
   same crash contract as [Store.compact]).  Caller holds the lock and
   has closed the store. *)
let rewrite path tbl order =
  let tmp = path ^ ".hints.tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun k ->
          match Hashtbl.find_opt tbl k with
          | Some h ->
            output_string oc (Store.entry_to_line (hint_to_entry h));
            output_char oc '\n'
          | None -> ())
        order;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path

let default_capacity = 512

let create ?(capacity = default_capacity) ?path () =
  if capacity < 1 then invalid_arg "Hints.create: capacity must be positive";
  let tbl = Hashtbl.create 64 in
  let order, store =
    match path with
    | None -> ([], None)
    | Some p ->
      let order, lines = replay p tbl in
      if lines > (2 * Hashtbl.length tbl) + 64 then rewrite p tbl order;
      (order, Some (Store.open_append p))
  in
  { lock = Mutex.create (); capacity; tbl; order; store; path; churn = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let maybe_rewrite t =
  match (t.path, t.store) with
  | Some p, Some s when t.churn > (2 * Hashtbl.length t.tbl) + 256 ->
    Store.close s;
    rewrite p t.tbl t.order;
    t.store <- Some (Store.open_append p);
    t.churn <- 0
  | _ -> ()

(* Returns how many older hints were evicted to make room (0 or 1). *)
let record t ~member ~fingerprint ~kind body =
  locked t (fun () ->
      let h = { member; fingerprint; kind; body } in
      let key = log_key ~member ~fingerprint in
      let evicted =
        if Hashtbl.mem t.tbl key then 0
        else if Hashtbl.length t.tbl >= t.capacity then begin
          match t.order with
          | [] -> 0
          | oldest :: rest ->
            Hashtbl.remove t.tbl oldest;
            t.order <- rest;
            append_opt t.store (drop_entry oldest);
            t.churn <- t.churn + 1;
            1
        end
        else 0
      in
      if not (Hashtbl.mem t.tbl key) then t.order <- t.order @ [ key ];
      Hashtbl.replace t.tbl key h;
      append_opt t.store (hint_to_entry h);
      t.churn <- t.churn + 1;
      maybe_rewrite t;
      evicted)

(* Removes and returns every hint for [member], oldest first.  The
   caller re-records any it fails to deliver. *)
let take t member =
  locked t (fun () ->
      let mine, others =
        List.partition
          (fun k ->
            match Hashtbl.find_opt t.tbl k with
            | Some h -> h.member = member
            | None -> false)
          t.order
      in
      let hints =
        List.filter_map
          (fun k ->
            let h = Hashtbl.find_opt t.tbl k in
            Hashtbl.remove t.tbl k;
            append_opt t.store (drop_entry k);
            t.churn <- t.churn + 1;
            h)
          mine
      in
      t.order <- others;
      maybe_rewrite t;
      hints)

let pending t = locked t (fun () -> Hashtbl.length t.tbl)

let members t =
  locked t (fun () ->
      let seen = Hashtbl.create 8 in
      List.filter_map
        (fun k ->
          match Hashtbl.find_opt t.tbl k with
          | Some h when not (Hashtbl.mem seen h.member) ->
            Hashtbl.replace seen h.member ();
            Some h.member
          | _ -> None)
        t.order)

let close t =
  locked t (fun () ->
      match t.store with
      | Some s ->
        Store.close s;
        t.store <- None
      | None -> ())

module Sink = Bi_engine.Sink
module Codec = Bi_cache.Codec
module Mode = Bi_certify.Mode
module Concept = Bi_correlated.Concept

type query =
  | Analyze of {
      graph : Bi_graph.Graph.t;
      prior : (int * int) array Bi_prob.Dist.t;
      mode : Mode.t;
      concept : Concept.t;
    }
  | Construction of { name : string; k : int; mode : Mode.t; concept : Concept.t }
  | Put of { fingerprint : string; analysis : Bi_ncs.Bayesian_ncs.analysis }
  | Stats
  | Health
  | Shutdown

type request = { query : query; deadline_ms : int option }

let default_k = 4
let max_k = 32

let parse_deadline j =
  match Sink.member "deadline_ms" j with
  | None -> Ok None
  | Some (Sink.Int ms) when ms > 0 -> Ok (Some ms)
  | Some v ->
    Error
      (Printf.sprintf "deadline_ms must be a positive integer, got %s"
         (Sink.to_string v))

(* Validated at parse time, mirroring [deadline_ms]: a k the solvers can
   never serve (0, negative, or absurdly large) is a structured error on
   arrival instead of a failure deep inside a construction builder. *)
let parse_k j =
  match Sink.member "k" j with
  | None -> Ok default_k
  | Some (Sink.Int k) when k >= 1 && k <= max_k -> Ok k
  | Some (Sink.Int k) ->
    Error (Printf.sprintf "construction: k must be in [1, %d], got %d" max_k k)
  | Some v ->
    Error
      (Printf.sprintf "construction: k must be an integer, got %s"
         (Sink.to_string v))

(* Validated like [k]: an absent field is the exhaustive tier (the only
   tier pre-mode servers ever had, so old clients keep their exact
   behavior — and their cache keys), anything else must name a tier. *)
let parse_mode j =
  match Sink.member "mode" j with
  | None -> Ok Mode.default
  | Some (Sink.Str s) -> Mode.of_string s
  | Some v ->
    Error (Printf.sprintf "mode must be a string, got %s" (Sink.to_string v))

(* Same back-compat contract as [parse_mode]: an absent field is the
   nash concept — the only concept pre-correlated servers ever had — so
   old clients keep their exact responses and cache keys. *)
let parse_concept j =
  match Sink.member "concept" j with
  | None -> Ok Concept.default
  | Some (Sink.Str s) -> Concept.of_string s
  | Some v ->
    Error (Printf.sprintf "concept must be a string, got %s" (Sink.to_string v))

let parse_request line =
  match Sink.of_string line with
  | Error e -> Error (Printf.sprintf "invalid JSON: %s" e)
  | Ok j -> (
    let with_deadline query =
      Result.map (fun deadline_ms -> { query; deadline_ms }) (parse_deadline j)
    in
    match Sink.member "op" j with
    | Some (Sink.Str "analyze") -> (
      match Sink.member "game" j with
      | None -> Error "analyze: missing \"game\""
      | Some game -> (
        match Codec.game_of_json game with
        | Ok (graph, prior) ->
          Result.bind (parse_mode j) (fun mode ->
              Result.bind (parse_concept j) (fun concept ->
                  with_deadline (Analyze { graph; prior; mode; concept })))
        | Error e -> Error (Printf.sprintf "analyze: %s" e)))
    | Some (Sink.Str "construction") -> (
      match Sink.member "name" j with
      | Some (Sink.Str name) ->
        Result.bind (parse_k j) (fun k ->
            Result.bind (parse_mode j) (fun mode ->
                Result.bind (parse_concept j) (fun concept ->
                    with_deadline (Construction { name; k; mode; concept }))))
      | Some v ->
        Error
          (Printf.sprintf "construction: name must be a string, got %s"
             (Sink.to_string v))
      | None -> Error "construction: missing \"name\"")
    | Some (Sink.Str "put") -> (
      match Sink.member "fingerprint" j with
      | Some (Sink.Str "") -> Error "put: fingerprint must be non-empty"
      | Some (Sink.Str fingerprint) -> (
        match Sink.member "analysis" j with
        | None -> Error "put: missing \"analysis\""
        | Some body -> (
          match Codec.analysis_of_json body with
          | Ok analysis -> with_deadline (Put { fingerprint; analysis })
          | Error e -> Error (Printf.sprintf "put: %s" e)))
      | Some v ->
        Error
          (Printf.sprintf "put: fingerprint must be a string, got %s"
             (Sink.to_string v))
      | None -> Error "put: missing \"fingerprint\"")
    | Some (Sink.Str "stats") -> with_deadline Stats
    | Some (Sink.Str "health") -> with_deadline Health
    | Some (Sink.Str "shutdown") -> with_deadline Shutdown
    | Some (Sink.Str op) -> Error (Printf.sprintf "unknown op %S" op)
    | Some v ->
      Error (Printf.sprintf "op must be a string, got %s" (Sink.to_string v))
    | None -> Error "missing \"op\"")

let deadline_field deadline_ms =
  match deadline_ms with
  | None -> []
  | Some ms -> [ ("deadline_ms", Sink.Int ms) ]

(* Emitted only for non-default tiers, so requests from mode-aware
   clients to pre-mode servers stay byte-identical to old requests. *)
let mode_field = function
  | Mode.Exhaustive -> []
  | m -> [ ("mode", Sink.Str (Mode.to_string m)) ]

(* Same shape for the concept axis: nash requests stay byte-identical
   to pre-correlated requests. *)
let concept_field = function
  | Concept.Nash -> []
  | c -> [ ("concept", Sink.Str (Concept.to_string c)) ]

let analyze_request ?deadline_ms ?(mode = Mode.default)
    ?(concept = Concept.default) graph ~prior =
  Sink.Obj
    ([ ("op", Sink.Str "analyze"); ("game", Codec.game_to_json graph ~prior) ]
    @ mode_field mode
    @ concept_field concept
    @ deadline_field deadline_ms)

let construction_request ?deadline_ms ?(mode = Mode.default)
    ?(concept = Concept.default) ~name ~k () =
  Sink.Obj
    ([ ("op", Sink.Str "construction"); ("name", Str name); ("k", Int k) ]
    @ mode_field mode
    @ concept_field concept
    @ deadline_field deadline_ms)

let put_request ~fingerprint analysis =
  Sink.Obj
    [
      ("op", Sink.Str "put");
      ("fingerprint", Str fingerprint);
      ("analysis", analysis);
    ]

let stats_request = Sink.Obj [ ("op", Str "stats") ]
let health_request = Sink.Obj [ ("op", Str "health") ]
let shutdown_request = Sink.Obj [ ("op", Str "shutdown") ]

let ok_analysis ~fingerprint ~cached analysis =
  Sink.Obj
    [
      ("ok", Bool true);
      ("fingerprint", Str fingerprint);
      ("cached", Bool cached);
      ("analysis", Codec.analysis_to_json analysis);
    ]

let ok_certified ~fingerprint ~cached certified =
  Sink.Obj
    [
      ("ok", Bool true);
      ("fingerprint", Str fingerprint);
      ("cached", Bool cached);
      ("mode", Str (Mode.to_string Mode.Certified));
      ("certified", certified);
    ]

let ok_correlated ~fingerprint ~cached ~concept correlated =
  Sink.Obj
    [
      ("ok", Bool true);
      ("fingerprint", Str fingerprint);
      ("cached", Bool cached);
      ("concept", Str (Concept.to_string concept));
      ("correlated", correlated);
    ]

let ok_stats ~cache ~server =
  Sink.Obj [ ("ok", Bool true); ("cache", cache); ("server", server) ]

let ok_health ~shard ~inflight ~cache =
  Sink.Obj
    [
      ("ok", Bool true);
      ("shard", Str shard);
      ("inflight", Int inflight);
      ("cache", cache);
    ]

let ok_stored ~fingerprint =
  Sink.Obj
    [ ("ok", Bool true); ("stored", Bool true); ("fingerprint", Str fingerprint) ]

let shard_of j =
  match Sink.member "shard" j with Some (Sink.Str s) -> Some s | _ -> None

let ok_shutdown = Sink.Obj [ ("ok", Bool true); ("stopping", Bool true) ]

let error msg =
  Sink.Obj [ ("ok", Bool false); ("code", Str "error"); ("error", Str msg) ]

let overloaded ~retry_after_ms =
  Sink.Obj
    [
      ("ok", Bool false);
      ("code", Str "overloaded");
      ("error", Str "server overloaded, retry later");
      ("retry_after_ms", Int retry_after_ms);
    ]

let deadline_exceeded =
  Sink.Obj
    [
      ("ok", Bool false);
      ("code", Str "deadline_exceeded");
      ("error", Str "request deadline exceeded");
    ]

let is_ok j =
  match Sink.member "ok" j with Some (Sink.Bool b) -> b | _ -> false

let response_code j =
  match Sink.member "ok" j with
  | Some (Sink.Bool true) -> Some "ok"
  | Some (Sink.Bool false) -> (
    match Sink.member "code" j with
    | Some (Sink.Str c) -> Some c
    (* Pre-[code] servers: any well-formed failure is a plain error. *)
    | _ -> ( match Sink.member "error" j with Some _ -> Some "error" | None -> None))
  | _ -> None

let retry_after_ms j =
  match Sink.member "retry_after_ms" j with
  | Some (Sink.Int ms) when ms >= 0 -> Some ms
  | _ -> None

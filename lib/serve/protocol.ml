module Sink = Bi_engine.Sink
module Codec = Bi_cache.Codec

type request =
  | Analyze of Bi_graph.Graph.t * (int * int) array Bi_prob.Dist.t
  | Construction of { name : string; k : int }
  | Stats
  | Shutdown

let default_k = 4

let parse_request line =
  match Sink.of_string line with
  | Error e -> Error (Printf.sprintf "invalid JSON: %s" e)
  | Ok j -> (
    match Sink.member "op" j with
    | Some (Sink.Str "analyze") -> (
      match Sink.member "game" j with
      | None -> Error "analyze: missing \"game\""
      | Some game -> (
        match Codec.game_of_json game with
        | Ok (graph, prior) -> Ok (Analyze (graph, prior))
        | Error e -> Error (Printf.sprintf "analyze: %s" e)))
    | Some (Sink.Str "construction") -> (
      match Sink.member "name" j with
      | Some (Sink.Str name) -> (
        match Sink.member "k" j with
        | None -> Ok (Construction { name; k = default_k })
        | Some (Sink.Int k) -> Ok (Construction { name; k })
        | Some v ->
          Error
            (Printf.sprintf "construction: k must be an integer, got %s"
               (Sink.to_string v)))
      | Some v ->
        Error
          (Printf.sprintf "construction: name must be a string, got %s"
             (Sink.to_string v))
      | None -> Error "construction: missing \"name\"")
    | Some (Sink.Str "stats") -> Ok Stats
    | Some (Sink.Str "shutdown") -> Ok Shutdown
    | Some (Sink.Str op) -> Error (Printf.sprintf "unknown op %S" op)
    | Some v ->
      Error (Printf.sprintf "op must be a string, got %s" (Sink.to_string v))
    | None -> Error "missing \"op\"")

let analyze_request graph ~prior =
  Sink.Obj [ ("op", Str "analyze"); ("game", Codec.game_to_json graph ~prior) ]

let construction_request ~name ~k =
  Sink.Obj [ ("op", Str "construction"); ("name", Str name); ("k", Int k) ]

let stats_request = Sink.Obj [ ("op", Str "stats") ]
let shutdown_request = Sink.Obj [ ("op", Str "shutdown") ]

let ok_analysis ~fingerprint ~cached analysis =
  Sink.Obj
    [
      ("ok", Bool true);
      ("fingerprint", Str fingerprint);
      ("cached", Bool cached);
      ("analysis", Codec.analysis_to_json analysis);
    ]

let ok_stats ~cache ~server =
  Sink.Obj [ ("ok", Bool true); ("cache", cache); ("server", server) ]

let ok_shutdown = Sink.Obj [ ("ok", Bool true); ("stopping", Bool true) ]

let error msg = Sink.Obj [ ("ok", Bool false); ("error", Str msg) ]

let is_ok j =
  match Sink.member "ok" j with Some (Sink.Bool b) -> b | _ -> false

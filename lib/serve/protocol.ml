module Sink = Bi_engine.Sink
module Codec = Bi_cache.Codec
module Mode = Bi_certify.Mode
module Concept = Bi_correlated.Concept

type query =
  | Analyze of {
      graph : Bi_graph.Graph.t;
      prior : (int * int) array Bi_prob.Dist.t;
      mode : Mode.t;
      concept : Concept.t;
    }
  | Construction of { name : string; k : int; mode : Mode.t; concept : Concept.t }
  | Put of { fingerprint : string; value : put_value }
  | Digest of { bucket : int option }
  | Pull of { keys : string list }
  | Stats
  | Health
  | Shutdown

and put_value =
  | Put_analysis of Bi_ncs.Bayesian_ncs.analysis
  | Put_payload of Sink.json

type request = { query : query; deadline_ms : int option }

let default_k = 4
let max_k = 32

let parse_deadline j =
  match Sink.member "deadline_ms" j with
  | None -> Ok None
  | Some (Sink.Int ms) when ms > 0 -> Ok (Some ms)
  | Some v ->
    Error
      (Printf.sprintf "deadline_ms must be a positive integer, got %s"
         (Sink.to_string v))

(* Validated at parse time, mirroring [deadline_ms]: a k the solvers can
   never serve (0, negative, or absurdly large) is a structured error on
   arrival instead of a failure deep inside a construction builder. *)
let parse_k j =
  match Sink.member "k" j with
  | None -> Ok default_k
  | Some (Sink.Int k) when k >= 1 && k <= max_k -> Ok k
  | Some (Sink.Int k) ->
    Error (Printf.sprintf "construction: k must be in [1, %d], got %d" max_k k)
  | Some v ->
    Error
      (Printf.sprintf "construction: k must be an integer, got %s"
         (Sink.to_string v))

(* Validated like [k]: an absent field is the exhaustive tier (the only
   tier pre-mode servers ever had, so old clients keep their exact
   behavior — and their cache keys), anything else must name a tier. *)
let parse_mode j =
  match Sink.member "mode" j with
  | None -> Ok Mode.default
  | Some (Sink.Str s) -> Mode.of_string s
  | Some v ->
    Error (Printf.sprintf "mode must be a string, got %s" (Sink.to_string v))

(* Same back-compat contract as [parse_mode]: an absent field is the
   nash concept — the only concept pre-correlated servers ever had — so
   old clients keep their exact responses and cache keys. *)
let parse_concept j =
  match Sink.member "concept" j with
  | None -> Ok Concept.default
  | Some (Sink.Str s) -> Concept.of_string s
  | Some v ->
    Error (Printf.sprintf "concept must be a string, got %s" (Sink.to_string v))

let parse_request line =
  match Sink.of_string line with
  | Error e -> Error (Printf.sprintf "invalid JSON: %s" e)
  | Ok j -> (
    let with_deadline query =
      Result.map (fun deadline_ms -> { query; deadline_ms }) (parse_deadline j)
    in
    match Sink.member "op" j with
    | Some (Sink.Str "analyze") -> (
      match Sink.member "game" j with
      | None -> Error "analyze: missing \"game\""
      | Some game -> (
        match Codec.game_of_json game with
        | Ok (graph, prior) ->
          Result.bind (parse_mode j) (fun mode ->
              Result.bind (parse_concept j) (fun concept ->
                  with_deadline (Analyze { graph; prior; mode; concept })))
        | Error e -> Error (Printf.sprintf "analyze: %s" e)))
    | Some (Sink.Str "construction") -> (
      match Sink.member "name" j with
      | Some (Sink.Str name) ->
        Result.bind (parse_k j) (fun k ->
            Result.bind (parse_mode j) (fun mode ->
                Result.bind (parse_concept j) (fun concept ->
                    with_deadline (Construction { name; k; mode; concept }))))
      | Some v ->
        Error
          (Printf.sprintf "construction: name must be a string, got %s"
             (Sink.to_string v))
      | None -> Error "construction: missing \"name\"")
    | Some (Sink.Str "put") -> (
      match Sink.member "fingerprint" j with
      | Some (Sink.Str "") -> Error "put: fingerprint must be non-empty"
      | Some (Sink.Str fingerprint) -> (
        match Sink.member "analysis" j with
        | None -> Error "put: missing \"analysis\""
        | Some body -> (
          (* An absent ["kind"] is an analysis — the only kind pre-repair
             routers ever sent — so old replication traffic parses
             exactly as before.  ["payload"] stores the body verbatim
             (certified/correlated tiers); anything else is rejected. *)
          match Sink.member "kind" j with
          | None | Some (Sink.Str "analysis") -> (
            match Codec.analysis_of_json body with
            | Ok analysis ->
              with_deadline (Put { fingerprint; value = Put_analysis analysis })
            | Error e -> Error (Printf.sprintf "put: %s" e))
          | Some (Sink.Str "payload") ->
            with_deadline (Put { fingerprint; value = Put_payload body })
          | Some v ->
            Error
              (Printf.sprintf
                 "put: kind must be \"analysis\" or \"payload\", got %s"
                 (Sink.to_string v))))
      | Some v ->
        Error
          (Printf.sprintf "put: fingerprint must be a string, got %s"
             (Sink.to_string v))
      | None -> Error "put: missing \"fingerprint\"")
    | Some (Sink.Str "digest") -> (
      match Sink.member "bucket" j with
      | None -> with_deadline (Digest { bucket = None })
      | Some (Sink.Int b) when b >= 0 && b < Bi_cache.Store.buckets ->
        with_deadline (Digest { bucket = Some b })
      | Some v ->
        Error
          (Printf.sprintf "digest: bucket must be an integer in [0, %d), got %s"
             Bi_cache.Store.buckets (Sink.to_string v)))
    | Some (Sink.Str "pull") -> (
      match Sink.member "keys" j with
      | Some (Sink.List keys) when keys <> [] && List.length keys <= 4096 ->
        let rec collect acc = function
          | [] -> Ok (List.rev acc)
          | Sink.Str k :: rest when k <> "" -> collect (k :: acc) rest
          | v :: _ ->
            Error
              (Printf.sprintf "pull: keys must be non-empty strings, got %s"
                 (Sink.to_string v))
        in
        Result.bind (collect [] keys) (fun keys ->
            with_deadline (Pull { keys }))
      | Some (Sink.List []) -> Error "pull: keys must be non-empty"
      | Some (Sink.List _) -> Error "pull: at most 4096 keys per request"
      | Some v ->
        Error
          (Printf.sprintf "pull: keys must be a list, got %s" (Sink.to_string v))
      | None -> Error "pull: missing \"keys\"")
    | Some (Sink.Str "stats") -> with_deadline Stats
    | Some (Sink.Str "health") -> with_deadline Health
    | Some (Sink.Str "shutdown") -> with_deadline Shutdown
    | Some (Sink.Str op) -> Error (Printf.sprintf "unknown op %S" op)
    | Some v ->
      Error (Printf.sprintf "op must be a string, got %s" (Sink.to_string v))
    | None -> Error "missing \"op\"")

let deadline_field deadline_ms =
  match deadline_ms with
  | None -> []
  | Some ms -> [ ("deadline_ms", Sink.Int ms) ]

(* Emitted only for non-default tiers, so requests from mode-aware
   clients to pre-mode servers stay byte-identical to old requests. *)
let mode_field = function
  | Mode.Exhaustive -> []
  | m -> [ ("mode", Sink.Str (Mode.to_string m)) ]

(* Same shape for the concept axis: nash requests stay byte-identical
   to pre-correlated requests. *)
let concept_field = function
  | Concept.Nash -> []
  | c -> [ ("concept", Sink.Str (Concept.to_string c)) ]

let analyze_request ?deadline_ms ?(mode = Mode.default)
    ?(concept = Concept.default) graph ~prior =
  Sink.Obj
    ([ ("op", Sink.Str "analyze"); ("game", Codec.game_to_json graph ~prior) ]
    @ mode_field mode
    @ concept_field concept
    @ deadline_field deadline_ms)

let construction_request ?deadline_ms ?(mode = Mode.default)
    ?(concept = Concept.default) ~name ~k () =
  Sink.Obj
    ([ ("op", Sink.Str "construction"); ("name", Str name); ("k", Int k) ]
    @ mode_field mode
    @ concept_field concept
    @ deadline_field deadline_ms)

let put_request ?(kind = "analysis") ~fingerprint body =
  (* The ["kind"] field is emitted only for non-analysis payloads, so
     analysis replication stays byte-identical to pre-repair traffic. *)
  let kind_field =
    if kind = "analysis" then [] else [ ("kind", Sink.Str kind) ]
  in
  Sink.Obj
    ([ ("op", Sink.Str "put"); ("fingerprint", Str fingerprint) ]
    @ kind_field
    @ [ ("analysis", body) ])

let digest_request ?bucket () =
  let bucket_field =
    match bucket with None -> [] | Some b -> [ ("bucket", Sink.Int b) ]
  in
  Sink.Obj (("op", Sink.Str "digest") :: bucket_field)

let pull_request keys =
  Sink.Obj
    [
      ("op", Sink.Str "pull");
      ("keys", Sink.List (List.map (fun k -> Sink.Str k) keys));
    ]

let stats_request = Sink.Obj [ ("op", Str "stats") ]
let health_request = Sink.Obj [ ("op", Str "health") ]
let shutdown_request = Sink.Obj [ ("op", Str "shutdown") ]

let ok_analysis ~fingerprint ~cached analysis =
  Sink.Obj
    [
      ("ok", Bool true);
      ("fingerprint", Str fingerprint);
      ("cached", Bool cached);
      ("analysis", Codec.analysis_to_json analysis);
    ]

let ok_certified ~fingerprint ~cached certified =
  Sink.Obj
    [
      ("ok", Bool true);
      ("fingerprint", Str fingerprint);
      ("cached", Bool cached);
      ("mode", Str (Mode.to_string Mode.Certified));
      ("certified", certified);
    ]

let ok_correlated ~fingerprint ~cached ~concept correlated =
  Sink.Obj
    [
      ("ok", Bool true);
      ("fingerprint", Str fingerprint);
      ("cached", Bool cached);
      ("concept", Str (Concept.to_string concept));
      ("correlated", correlated);
    ]

let ok_stats ~cache ~server =
  Sink.Obj [ ("ok", Bool true); ("cache", cache); ("server", server) ]

let ok_health ~shard ~inflight ~cache =
  Sink.Obj
    [
      ("ok", Bool true);
      ("shard", Str shard);
      ("inflight", Int inflight);
      ("cache", cache);
    ]

let ok_stored ~fingerprint =
  Sink.Obj
    [ ("ok", Bool true); ("stored", Bool true); ("fingerprint", Str fingerprint) ]

let ok_digest ~shard ~rollup =
  Sink.Obj
    [
      ("ok", Bool true);
      ("shard", Str shard);
      ("digest",
       List (List.map (fun (b, d) -> Sink.List [ Int b; Str d ]) rollup));
    ]

let ok_bucket ~shard ~bucket ~keys =
  Sink.Obj
    [
      ("ok", Bool true);
      ("shard", Str shard);
      ("bucket", Int bucket);
      ("keys",
       List (List.map (fun (k, c) -> Sink.List [ Str k; Str c ]) keys));
    ]

let entry_to_json (e : Bi_cache.Store.entry) =
  Sink.Obj
    [
      ("key", Sink.Str e.Bi_cache.Store.key);
      ("kind", Sink.Str e.Bi_cache.Store.kind);
      ("body", e.Bi_cache.Store.body);
    ]

let ok_pulled ~shard ~entries ~missing =
  Sink.Obj
    [
      ("ok", Bool true);
      ("shard", Str shard);
      ("entries", List (List.map entry_to_json entries));
      ("missing", List (List.map (fun k -> Sink.Str k) missing));
    ]

(* Client-side decoders for the repair verbs (router repair loop, fsck).
   Total: any malformed shape is an [Error], never an exception. *)

let rollup_of j =
  match Sink.member "digest" j with
  | Some (Sink.List items) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Sink.List [ Sink.Int b; Sink.Str d ] :: rest -> go ((b, d) :: acc) rest
      | _ -> Error "digest: malformed rollup item"
    in
    go [] items
  | _ -> Error "digest: missing rollup"

let bucket_keys_of j =
  match Sink.member "keys" j with
  | Some (Sink.List items) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Sink.List [ Sink.Str k; Sink.Str c ] :: rest -> go ((k, c) :: acc) rest
      | _ -> Error "digest: malformed bucket item"
    in
    go [] items
  | _ -> Error "digest: missing bucket keys"

let entries_of j =
  match Sink.member "entries" j with
  | Some (Sink.List items) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest -> (
        match
          (Sink.member "key" item, Sink.member "kind" item,
           Sink.member "body" item)
        with
        | Some (Sink.Str key), Some (Sink.Str kind), Some body ->
          go ({ Bi_cache.Store.key; kind; body } :: acc) rest
        | _ -> Error "pull: malformed entry")
    in
    go [] items
  | _ -> Error "pull: missing entries"

let shard_of j =
  match Sink.member "shard" j with Some (Sink.Str s) -> Some s | _ -> None

let ok_shutdown = Sink.Obj [ ("ok", Bool true); ("stopping", Bool true) ]

let error msg =
  Sink.Obj [ ("ok", Bool false); ("code", Str "error"); ("error", Str msg) ]

let overloaded ~retry_after_ms =
  Sink.Obj
    [
      ("ok", Bool false);
      ("code", Str "overloaded");
      ("error", Str "server overloaded, retry later");
      ("retry_after_ms", Int retry_after_ms);
    ]

let deadline_exceeded =
  Sink.Obj
    [
      ("ok", Bool false);
      ("code", Str "deadline_exceeded");
      ("error", Str "request deadline exceeded");
    ]

let is_ok j =
  match Sink.member "ok" j with Some (Sink.Bool b) -> b | _ -> false

let response_code j =
  match Sink.member "ok" j with
  | Some (Sink.Bool true) -> Some "ok"
  | Some (Sink.Bool false) -> (
    match Sink.member "code" j with
    | Some (Sink.Str c) -> Some c
    (* Pre-[code] servers: any well-formed failure is a plain error. *)
    | _ -> ( match Sink.member "error" j with Some _ -> Some "error" | None -> None))
  | _ -> None

let retry_after_ms j =
  match Sink.member "retry_after_ms" j with
  | Some (Sink.Int ms) when ms >= 0 -> Some ms
  | _ -> None

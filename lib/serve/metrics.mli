(** Server-side request metrics.

    Mutex-protected counters (requests, errors, cache hits/misses,
    coalesced requests, shed/expired/idle-closed requests, injected
    faults), an in-flight gauge with high-water mark, and a
    log2-microsecond latency histogram (bucket [i] counts requests whose
    handling took within [[2^i, 2^{i+1})] µs).  Rendered by the [stats]
    verb and dumped to disk when the server exits. *)

type t

val create : unit -> t

val enter : t -> unit
(** A request began being handled: raises the in-flight gauge. *)

val leave : t -> seconds:float -> unit
(** The request finished after [seconds]: lowers the gauge and records
    the latency. *)

val inflight : t -> int
(** The current in-flight gauge — requests entered and not yet left.
    The [health] verb reports it so the router can weigh shards. *)

val request : t -> unit
val error : t -> unit

val overload : t -> unit
(** A request was shed with an [overloaded] response. *)

val deadline_exceeded : t -> unit
(** A request's wall-clock budget ran out mid-analysis. *)

val idle_close : t -> unit
(** A connection was closed for idling past the read timeout. *)

val fault_injected : t -> unit
(** The chaos layer injected a fault into a response. *)

val hit : t -> unit
val miss : t -> unit

val coalesce : t -> unit
(** A duplicate in-flight request waited for the leader and was answered
    from cache; counts as a hit too. *)

val to_json : t -> Bi_engine.Sink.json
(** Snapshot; the histogram lists only buckets up to the last non-empty
    one, each as [{"le_us": upper bound, "count": n}]. *)

type listen = Unix_socket of string | Tcp of int

type t = {
  lock : Mutex.t;  (* guards [conns], [threads], [finished] *)
  conns : (int, Unix.file_descr) Hashtbl.t;
  threads : (int, Thread.t) Hashtbl.t;
  mutable finished : int list;  (* conn ids whose threads have exited *)
  mutable next_conn : int;
  stop : bool Atomic.t;
  listen_fd : Unix.file_descr;
  listen : listen;
  idle_timeout_s : float;
  on_idle_close : unit -> unit;
}

(* Refuses to clobber another server's socket: an existing path is
   probed with a connect — only a refused connection proves the socket
   is stale and safe to unlink.  A live listener or a non-socket file
   is an error, not a casualty. *)
let bind_listener = function
  | Unix_socket path ->
    if Sys.file_exists path then begin
      (match (Unix.lstat path).Unix.st_kind with
      | Unix.S_SOCK -> ()
      | _ ->
        failwith
          (Printf.sprintf "refusing to replace %s: not a socket" path));
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let verdict =
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> `Live
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
        | exception Unix.Unix_error (err, _, _) -> `Unknown err
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      match verdict with
      | `Stale -> Unix.unlink path
      | `Live ->
        failwith
          (Printf.sprintf "a server is already listening on %s" path)
      | `Unknown err ->
        failwith
          (Printf.sprintf "cannot probe %s (%s); not replacing it" path
             (Unix.error_message err))
    end;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 16;
    fd
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 16;
    fd

let create ?(idle_timeout_s = 0.) ?(on_idle_close = fun () -> ()) listen =
  {
    lock = Mutex.create ();
    conns = Hashtbl.create 16;
    threads = Hashtbl.create 16;
    finished = [];
    next_conn = 0;
    stop = Atomic.make false;
    listen_fd = bind_listener listen;
    listen;
    idle_timeout_s;
    on_idle_close;
  }

let stopping t = Atomic.get t.stop

(* [accept] is woken by connecting to our own listening address — a
   plain [close] does not reliably interrupt a blocked [accept]. *)
let poke_listener t =
  let domain, addr =
    match t.listen with
    | Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp port ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  match Unix.socket domain Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.connect fd addr with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let initiate_shutdown t =
  if Atomic.compare_and_set t.stop false true then begin
    poke_listener t;
    (* Unblock connection threads parked in [input_line]. *)
    Mutex.lock t.lock;
    Hashtbl.iter
      (fun _ fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      t.conns;
    Mutex.unlock t.lock
  end

let serve_conn t ~on_accept ~handler conn_id fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let finally () =
    Mutex.lock t.lock;
    Hashtbl.remove t.conns conn_id;
    t.finished <- conn_id :: t.finished;
    Mutex.unlock t.lock;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      (* The per-connection fault decision (chaos partitions/stalls):
         [`Refuse] hangs up before reading anything — to the peer this
         is a partitioned node, a fast transport failure. *)
      match on_accept () with
      | `Refuse -> ()
      | (`Proceed | `Stall _) as a ->
        (match a with
        | `Stall ms when ms > 0 -> Thread.delay (float_of_int ms /. 1000.)
        | _ -> ());
        let rec loop () =
          match input_line ic with
          | exception End_of_file -> ()
          | exception Sys_error _ -> ()
          (* SO_RCVTIMEO expiring surfaces as [Sys_blocked_io]. *)
          | exception Sys_blocked_io -> t.on_idle_close ()
          | line when String.trim line = "" -> loop ()
          | line -> (
            match handler oc line with
            | `Close -> ()
            | `Stop -> initiate_shutdown t
            | `Continue -> if not (Atomic.get t.stop) then loop ())
        in
        loop ())

(* Join connection threads that have announced their exit; called from
   the accept loop so the thread table stays bounded by the number of
   live connections instead of growing for the server's lifetime. *)
let reap t =
  Mutex.lock t.lock;
  let done_ = t.finished in
  t.finished <- [];
  let ths =
    List.filter_map
      (fun id ->
        match Hashtbl.find_opt t.threads id with
        | Some th ->
          Hashtbl.remove t.threads id;
          Some th
        | None -> None)
      done_
  in
  Mutex.unlock t.lock;
  List.iter Thread.join ths

let run ?(on_ready = fun () -> ()) ?(on_accept = fun () -> `Proceed) ~handler t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop_on_signal = Sys.Signal_handle (fun _ -> initiate_shutdown t) in
  let previous_int = Sys.signal Sys.sigint stop_on_signal in
  let previous_term = Sys.signal Sys.sigterm stop_on_signal in
  on_ready ();
  let rec accept_loop () =
    reap t;
    if not (Atomic.get t.stop) then
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error (_, _, _) -> ()
      | fd, _ ->
        if Atomic.get t.stop then
          try Unix.close fd with Unix.Unix_error _ -> ()
        else begin
          if t.idle_timeout_s > 0. then
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.idle_timeout_s;
          (* Register the thread under the lock before it can finish:
             [serve_conn]'s exit path takes the same lock, so the table
             entry always exists by the time its id reaches [finished]. *)
          Mutex.lock t.lock;
          let conn_id = t.next_conn in
          t.next_conn <- conn_id + 1;
          Hashtbl.replace t.conns conn_id fd;
          let th =
            Thread.create
              (fun () -> serve_conn t ~on_accept ~handler conn_id fd)
              ()
          in
          Hashtbl.replace t.threads conn_id th;
          Mutex.unlock t.lock;
          accept_loop ()
        end
  in
  accept_loop ();
  let remaining =
    Mutex.lock t.lock;
    let ths = Hashtbl.fold (fun _ th acc -> th :: acc) t.threads [] in
    Mutex.unlock t.lock;
    ths
  in
  List.iter Thread.join remaining;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.listen with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  Sys.set_signal Sys.sigint previous_int;
  Sys.set_signal Sys.sigterm previous_term

module Sink = Bi_engine.Sink
module Pool = Bi_engine.Pool
module Service = Bi_cache.Service
module Fingerprint = Bi_cache.Fingerprint
module Bncs = Bi_ncs.Bayesian_ncs
module Registry = Bi_constructions.Registry

type listen = Unix_socket of string | Tcp of int

type t = {
  cache : Service.t;
  pool : Pool.t option;
  metrics : Metrics.t;
  lock : Mutex.t;  (* guards [inflight] and [conns] *)
  cond : Condition.t;  (* signalled when an in-flight computation ends *)
  inflight : (string, unit) Hashtbl.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable next_conn : int;
  stop : bool Atomic.t;
  mutable listen_fd : Unix.file_descr;
  listen : listen;
}

(* --- request coalescing ---------------------------------------------- *)

(* One leader computes per fingerprint; duplicates wait on [cond] and
   are answered from cache when the leader lands.  A leader that fails
   broadcasts too, so a waiter re-checks, finds neither a cached value
   nor an in-flight leader, and takes over the computation itself. *)
let analysis t ~fingerprint build =
  Mutex.lock t.lock;
  let rec obtain ~waited =
    match Service.find_analysis t.cache fingerprint with
    | Some a ->
      if waited then Metrics.coalesce t.metrics else Metrics.hit t.metrics;
      Mutex.unlock t.lock;
      Ok (a, true)
    | None ->
      if Hashtbl.mem t.inflight fingerprint then begin
        Condition.wait t.cond t.lock;
        obtain ~waited:true
      end
      else begin
        Hashtbl.add t.inflight fingerprint ();
        Mutex.unlock t.lock;
        Metrics.miss t.metrics;
        let result =
          match build () with
          | Error _ as e -> e
          | exception Invalid_argument msg -> Error msg
          | Ok game -> (
            match Bncs.analyze ?pool:t.pool game with
            | a ->
              Service.insert_analysis t.cache fingerprint a;
              Ok (a, false)
            | exception exn -> Error (Printexc.to_string exn))
        in
        Mutex.lock t.lock;
        Hashtbl.remove t.inflight fingerprint;
        Condition.broadcast t.cond;
        Mutex.unlock t.lock;
        result
      end
  in
  obtain ~waited:false

(* --- shutdown -------------------------------------------------------- *)

(* [accept] is woken by connecting to our own listening address — a
   plain [close] does not reliably interrupt a blocked [accept]. *)
let poke_listener t =
  let domain, addr =
    match t.listen with
    | Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp port ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  match Unix.socket domain Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.connect fd addr with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let initiate_shutdown t =
  if Atomic.compare_and_set t.stop false true then begin
    poke_listener t;
    (* Unblock connection threads parked in [input_line]. *)
    Mutex.lock t.lock;
    Hashtbl.iter
      (fun _ fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      t.conns;
    Mutex.unlock t.lock
  end

(* --- request handling ------------------------------------------------ *)

let handle_request t req =
  match req with
  | Protocol.Analyze (graph, prior) -> (
    let fingerprint = Fingerprint.game graph ~prior in
    match analysis t ~fingerprint (fun () -> Ok (Bncs.make graph ~prior)) with
    | Ok (a, cached) -> (Protocol.ok_analysis ~fingerprint ~cached a, `Continue)
    | Error e ->
      Metrics.error t.metrics;
      (Protocol.error e, `Continue))
  | Protocol.Construction { name; k } -> (
    match Registry.build name k with
    | Error e ->
      Metrics.error t.metrics;
      (Protocol.error e, `Continue)
    | Ok game -> (
      let fingerprint = Fingerprint.of_game game in
      match analysis t ~fingerprint (fun () -> Ok game) with
      | Ok (a, cached) ->
        (Protocol.ok_analysis ~fingerprint ~cached a, `Continue)
      | Error e ->
        Metrics.error t.metrics;
        (Protocol.error e, `Continue)))
  | Protocol.Stats ->
    ( Protocol.ok_stats
        ~cache:(Service.stats_to_json (Service.stats t.cache))
        ~server:(Metrics.to_json t.metrics),
      `Continue )
  | Protocol.Shutdown -> (Protocol.ok_shutdown, `Stop)

let handle_line t line =
  Metrics.request t.metrics;
  Metrics.enter t.metrics;
  let t0 = Unix.gettimeofday () in
  let response, disposition =
    match Protocol.parse_request line with
    | Error e ->
      Metrics.error t.metrics;
      (Protocol.error e, `Continue)
    | Ok req -> (
      match handle_request t req with
      | r -> r
      | exception exn ->
        Metrics.error t.metrics;
        (Protocol.error (Printexc.to_string exn), `Continue))
  in
  Metrics.leave t.metrics ~seconds:(Unix.gettimeofday () -. t0);
  (response, disposition)

let serve_conn t conn_id fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let finally () =
    Mutex.lock t.lock;
    Hashtbl.remove t.conns conn_id;
    Mutex.unlock t.lock;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      let rec loop () =
        match input_line ic with
        | exception (End_of_file | Sys_error _) -> ()
        | line when String.trim line = "" -> loop ()
        | line ->
          let response, disposition = handle_line t line in
          (try
             output_string oc (Sink.to_string response);
             output_char oc '\n';
             flush oc
           with Sys_error _ -> ());
          (match disposition with
          | `Continue -> if Atomic.get t.stop then () else loop ()
          | `Stop -> initiate_shutdown t)
      in
      loop ())

(* --- lifecycle ------------------------------------------------------- *)

let bind_listener = function
  | Unix_socket path ->
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 16;
    fd
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 16;
    fd

let dump_metrics t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let j =
        Sink.Obj
          [
            ("record", Sink.Str "serve_metrics");
            ("server", Metrics.to_json t.metrics);
            ("cache", Service.stats_to_json (Service.stats t.cache));
          ]
      in
      output_string oc (Sink.to_string j);
      output_char oc '\n')

let run ?pool ?metrics_out ?(on_ready = fun () -> ()) ~cache listen =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = bind_listener listen in
  let t =
    {
      cache;
      pool;
      metrics = Metrics.create ();
      lock = Mutex.create ();
      cond = Condition.create ();
      inflight = Hashtbl.create 16;
      conns = Hashtbl.create 16;
      next_conn = 0;
      stop = Atomic.make false;
      listen_fd;
      listen;
    }
  in
  let stop_on_signal = Sys.Signal_handle (fun _ -> initiate_shutdown t) in
  let previous_int = Sys.signal Sys.sigint stop_on_signal in
  let previous_term = Sys.signal Sys.sigterm stop_on_signal in
  on_ready ();
  let rec accept_loop threads =
    if Atomic.get t.stop then threads
    else
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop threads
      | exception Unix.Unix_error (_, _, _) ->
        if Atomic.get t.stop then threads else threads
      | fd, _ ->
        if Atomic.get t.stop then begin
          (try Unix.close fd with Unix.Unix_error _ -> ());
          threads
        end
        else begin
          Mutex.lock t.lock;
          let conn_id = t.next_conn in
          t.next_conn <- conn_id + 1;
          Hashtbl.replace t.conns conn_id fd;
          Mutex.unlock t.lock;
          let th = Thread.create (fun () -> serve_conn t conn_id fd) () in
          accept_loop (th :: threads)
        end
  in
  let threads = accept_loop [] in
  List.iter Thread.join threads;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match listen with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  Option.iter (dump_metrics t) metrics_out;
  Sys.set_signal Sys.sigint previous_int;
  Sys.set_signal Sys.sigterm previous_term

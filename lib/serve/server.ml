module Sink = Bi_engine.Sink
module Pool = Bi_engine.Pool
module Budget = Bi_engine.Budget
module Service = Bi_cache.Service
module Fingerprint = Bi_cache.Fingerprint
module Bncs = Bi_ncs.Bayesian_ncs
module Registry = Bi_constructions.Registry

type listen = Unix_socket of string | Tcp of int

type limits = {
  max_concurrent : int;
  max_queue : int;
  idle_timeout_s : float;
  max_deadline_ms : int;
}

let default_limits =
  { max_concurrent = 8; max_queue = 64; idle_timeout_s = 0.; max_deadline_ms = 0 }

type t = {
  cache : Service.t;
  pool : Pool.t option;
  metrics : Metrics.t;
  limits : limits;
  chaos : Chaos.t option;
  lock : Mutex.t;  (* guards [inflight], [conns], [threads], [finished] *)
  cond : Condition.t;  (* signalled when an in-flight computation ends *)
  inflight : (string, unit) Hashtbl.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  threads : (int, Thread.t) Hashtbl.t;
  mutable finished : int list;  (* conn ids whose threads have exited *)
  mutable next_conn : int;
  adm_lock : Mutex.t;  (* guards [running] and [queued] *)
  mutable running : int;  (* analyses currently computing *)
  mutable queued : int;  (* leaders waiting for a compute slot *)
  stop : bool Atomic.t;
  mutable listen_fd : Unix.file_descr;
  listen : listen;
}

(* How a request can fail before or during its analysis. *)
type failure =
  | Overloaded of int  (* retry_after_ms hint *)
  | Deadline
  | Msg of string

let chaos_sleep ms = if ms > 0 then Thread.delay (float_of_int ms /. 1000.)

(* --- admission control ------------------------------------------------ *)

let slot_poll_s = 0.002

(* Admission applies to computation leaders only: cache hits, coalesced
   waiters and the control verbs are never shed, so the cache keeps
   answering and operators keep observing even when the solvers are
   saturated.  A leader is shed outright once [max_concurrent] analyses
   are running and [max_queue] more are waiting; otherwise it polls for
   a free slot, bailing out if its deadline passes or the server stops.
   The retry hint grows with the backlog so clients spread out. *)
let try_admit t ~budget =
  Mutex.lock t.adm_lock;
  let limits = t.limits in
  let total = t.running + t.queued in
  if total >= limits.max_concurrent + limits.max_queue then begin
    let backlog = total - limits.max_concurrent + 1 in
    Mutex.unlock t.adm_lock;
    Error (Overloaded (min 2000 (25 * backlog)))
  end
  else begin
    t.queued <- t.queued + 1;
    let rec wait () =
      if t.running < limits.max_concurrent then begin
        t.queued <- t.queued - 1;
        t.running <- t.running + 1;
        Mutex.unlock t.adm_lock;
        Ok ()
      end
      else begin
        Mutex.unlock t.adm_lock;
        let bail =
          if Atomic.get t.stop then Some (Msg "server is shutting down")
          else if Budget.expired budget then Some Deadline
          else None
        in
        match bail with
        | Some f ->
          Mutex.lock t.adm_lock;
          t.queued <- t.queued - 1;
          Mutex.unlock t.adm_lock;
          Error f
        | None ->
          Thread.delay slot_poll_s;
          Mutex.lock t.adm_lock;
          wait ()
      end
    in
    wait ()
  end

let release_slot t =
  Mutex.lock t.adm_lock;
  t.running <- t.running - 1;
  Mutex.unlock t.adm_lock

(* --- request coalescing ---------------------------------------------- *)

(* One leader computes per fingerprint; duplicates wait on [cond] and
   are answered from cache when the leader lands.  A leader that fails
   broadcasts too, so a waiter re-checks, finds neither a cached value
   nor an in-flight leader, and takes over the computation itself.
   The chaos compute delay runs inside the admission slot, so injected
   latency exercises the load-shedding path like real slow work. *)
let analysis t ~budget ~chaos_delay_ms ~fingerprint build =
  Mutex.lock t.lock;
  let rec obtain ~waited =
    match Service.find_analysis t.cache fingerprint with
    | Some a ->
      if waited then Metrics.coalesce t.metrics else Metrics.hit t.metrics;
      Mutex.unlock t.lock;
      Ok (a, true)
    | None ->
      if Budget.expired budget then begin
        Mutex.unlock t.lock;
        Error Deadline
      end
      else if Hashtbl.mem t.inflight fingerprint then begin
        Condition.wait t.cond t.lock;
        obtain ~waited:true
      end
      else begin
        Hashtbl.add t.inflight fingerprint ();
        Mutex.unlock t.lock;
        Metrics.miss t.metrics;
        let result =
          match try_admit t ~budget with
          | Error _ as e -> e
          | Ok () ->
            Fun.protect
              ~finally:(fun () -> release_slot t)
              (fun () ->
                chaos_sleep chaos_delay_ms;
                if Budget.expired budget then Error Deadline
                else
                match build () with
                | Error e -> Error (Msg e)
                | exception Invalid_argument msg -> Error (Msg msg)
                | Ok game -> (
                  match Bncs.analyze ?pool:t.pool ~budget game with
                  | a ->
                    Service.insert_analysis t.cache fingerprint a;
                    Ok (a, false)
                  | exception Budget.Expired -> Error Deadline
                  | exception exn -> Error (Msg (Printexc.to_string exn))))
        in
        Mutex.lock t.lock;
        Hashtbl.remove t.inflight fingerprint;
        Condition.broadcast t.cond;
        Mutex.unlock t.lock;
        result
      end
  in
  obtain ~waited:false

(* --- shutdown -------------------------------------------------------- *)

(* [accept] is woken by connecting to our own listening address — a
   plain [close] does not reliably interrupt a blocked [accept]. *)
let poke_listener t =
  let domain, addr =
    match t.listen with
    | Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp port ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  match Unix.socket domain Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.connect fd addr with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let initiate_shutdown t =
  if Atomic.compare_and_set t.stop false true then begin
    poke_listener t;
    (* Unblock connection threads parked in [input_line]. *)
    Mutex.lock t.lock;
    Hashtbl.iter
      (fun _ fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      t.conns;
    Mutex.unlock t.lock
  end

(* --- request handling ------------------------------------------------ *)

let budget_of t deadline_ms =
  match (deadline_ms, t.limits.max_deadline_ms) with
  | None, 0 -> Budget.unlimited
  | Some ms, 0 -> Budget.of_timeout_ms ms
  | None, cap -> Budget.of_timeout_ms cap
  | Some ms, cap -> Budget.of_timeout_ms (min ms cap)

let analysis_response t ~fingerprint result =
  match result with
  | Ok (a, cached) -> (Protocol.ok_analysis ~fingerprint ~cached a, `Continue)
  | Error (Overloaded hint) ->
    Metrics.overload t.metrics;
    (Protocol.overloaded ~retry_after_ms:hint, `Continue)
  | Error Deadline ->
    Metrics.deadline_exceeded t.metrics;
    (Protocol.deadline_exceeded, `Continue)
  | Error (Msg e) ->
    Metrics.error t.metrics;
    (Protocol.error e, `Continue)

let handle_query t ~budget ~chaos_delay_ms query =
  match query with
  | Protocol.Analyze (graph, prior) ->
    let fingerprint = Fingerprint.game graph ~prior in
    analysis_response t ~fingerprint
      (analysis t ~budget ~chaos_delay_ms ~fingerprint (fun () ->
           Ok (Bncs.make graph ~prior)))
  | Protocol.Construction { name; k } -> (
    match Registry.build name k with
    | Error e ->
      Metrics.error t.metrics;
      (Protocol.error e, `Continue)
    | Ok game ->
      let fingerprint = Fingerprint.of_game game in
      analysis_response t ~fingerprint
        (analysis t ~budget ~chaos_delay_ms ~fingerprint (fun () -> Ok game)))
  | Protocol.Stats ->
    chaos_sleep chaos_delay_ms;
    ( Protocol.ok_stats
        ~cache:(Service.stats_to_json (Service.stats t.cache))
        ~server:(Metrics.to_json t.metrics),
      `Continue )
  | Protocol.Shutdown ->
    chaos_sleep chaos_delay_ms;
    (Protocol.ok_shutdown, `Stop)

let handle_line t ~chaos_delay_ms line =
  Metrics.request t.metrics;
  Metrics.enter t.metrics;
  let t0 = Unix.gettimeofday () in
  let response, disposition =
    match Protocol.parse_request line with
    | Error e ->
      Metrics.error t.metrics;
      (Protocol.error e, `Continue)
    | Ok { Protocol.query; deadline_ms } -> (
      let budget = budget_of t deadline_ms in
      match handle_query t ~budget ~chaos_delay_ms query with
      | r -> r
      | exception Budget.Expired ->
        Metrics.deadline_exceeded t.metrics;
        (Protocol.deadline_exceeded, `Continue)
      | exception exn ->
        Metrics.error t.metrics;
        (Protocol.error (Printexc.to_string exn), `Continue))
  in
  Metrics.leave t.metrics ~seconds:(Unix.gettimeofday () -. t0);
  (response, disposition)

let serve_conn t conn_id fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let finally () =
    Mutex.lock t.lock;
    Hashtbl.remove t.conns conn_id;
    t.finished <- conn_id :: t.finished;
    Mutex.unlock t.lock;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      let rec loop () =
        match input_line ic with
        | exception End_of_file -> ()
        | exception Sys_error _ -> ()
        (* SO_RCVTIMEO expiring surfaces as [Sys_blocked_io]. *)
        | exception Sys_blocked_io -> Metrics.idle_close t.metrics
        | line when String.trim line = "" -> loop ()
        | line ->
          let action =
            match t.chaos with
            | None -> Chaos.deliver
            | Some c -> Chaos.response_action c
          in
          if Chaos.faulty action then Metrics.fault_injected t.metrics;
          let response, disposition =
            handle_line t ~chaos_delay_ms:action.Chaos.delay_ms line
          in
          let alive =
            let s = Sink.to_string response in
            match action.Chaos.transport with
            | `Drop -> false
            | `Truncate ->
              (* A torn write: half the line, no newline, then hang up —
                 the same wreckage a crash mid-response leaves. *)
              (try
                 output_string oc (String.sub s 0 (String.length s / 2));
                 flush oc
               with Sys_error _ -> ());
              false
            | `Deliver -> (
              try
                output_string oc s;
                output_char oc '\n';
                flush oc;
                true
              with Sys_error _ -> false)
          in
          (match disposition with
          | `Stop -> initiate_shutdown t
          | `Continue -> if alive && not (Atomic.get t.stop) then loop ())
      in
      loop ())

(* --- lifecycle ------------------------------------------------------- *)

(* Refuses to clobber another server's socket: an existing path is
   probed with a connect — only a refused connection proves the socket
   is stale and safe to unlink.  A live listener or a non-socket file
   is an error, not a casualty. *)
let bind_listener = function
  | Unix_socket path ->
    if Sys.file_exists path then begin
      (match (Unix.lstat path).Unix.st_kind with
      | Unix.S_SOCK -> ()
      | _ ->
        failwith
          (Printf.sprintf "refusing to replace %s: not a socket" path));
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let verdict =
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> `Live
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
        | exception Unix.Unix_error (err, _, _) -> `Unknown err
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      match verdict with
      | `Stale -> Unix.unlink path
      | `Live ->
        failwith
          (Printf.sprintf "a server is already listening on %s" path)
      | `Unknown err ->
        failwith
          (Printf.sprintf "cannot probe %s (%s); not replacing it" path
             (Unix.error_message err))
    end;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 16;
    fd
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 16;
    fd

let dump_metrics t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let j =
        Sink.Obj
          [
            ("record", Sink.Str "serve_metrics");
            ("server", Metrics.to_json t.metrics);
            ("cache", Service.stats_to_json (Service.stats t.cache));
          ]
      in
      output_string oc (Sink.to_string j);
      output_char oc '\n')

(* Join connection threads that have announced their exit; called from
   the accept loop so the thread table stays bounded by the number of
   live connections instead of growing for the server's lifetime. *)
let reap t =
  Mutex.lock t.lock;
  let done_ = t.finished in
  t.finished <- [];
  let ths =
    List.filter_map
      (fun id ->
        match Hashtbl.find_opt t.threads id with
        | Some th ->
          Hashtbl.remove t.threads id;
          Some th
        | None -> None)
      done_
  in
  Mutex.unlock t.lock;
  List.iter Thread.join ths

let run ?pool ?metrics_out ?(on_ready = fun () -> ())
    ?(limits = default_limits) ?chaos ~cache listen =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = bind_listener listen in
  let t =
    {
      cache;
      pool;
      metrics = Metrics.create ();
      limits;
      chaos;
      lock = Mutex.create ();
      cond = Condition.create ();
      inflight = Hashtbl.create 16;
      conns = Hashtbl.create 16;
      threads = Hashtbl.create 16;
      finished = [];
      next_conn = 0;
      adm_lock = Mutex.create ();
      running = 0;
      queued = 0;
      stop = Atomic.make false;
      listen_fd;
      listen;
    }
  in
  let stop_on_signal = Sys.Signal_handle (fun _ -> initiate_shutdown t) in
  let previous_int = Sys.signal Sys.sigint stop_on_signal in
  let previous_term = Sys.signal Sys.sigterm stop_on_signal in
  on_ready ();
  let rec accept_loop () =
    reap t;
    if not (Atomic.get t.stop) then
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error (_, _, _) -> ()
      | fd, _ ->
        if Atomic.get t.stop then
          try Unix.close fd with Unix.Unix_error _ -> ()
        else begin
          if limits.idle_timeout_s > 0. then
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO limits.idle_timeout_s;
          (* Register the thread under the lock before it can finish:
             [serve_conn]'s exit path takes the same lock, so the table
             entry always exists by the time its id reaches [finished]. *)
          Mutex.lock t.lock;
          let conn_id = t.next_conn in
          t.next_conn <- conn_id + 1;
          Hashtbl.replace t.conns conn_id fd;
          let th = Thread.create (fun () -> serve_conn t conn_id fd) () in
          Hashtbl.replace t.threads conn_id th;
          Mutex.unlock t.lock;
          accept_loop ()
        end
  in
  accept_loop ();
  let remaining =
    Mutex.lock t.lock;
    let ths = Hashtbl.fold (fun _ th acc -> th :: acc) t.threads [] in
    Mutex.unlock t.lock;
    ths
  in
  List.iter Thread.join remaining;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match listen with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  Option.iter (dump_metrics t) metrics_out;
  Sys.set_signal Sys.sigint previous_int;
  Sys.set_signal Sys.sigterm previous_term

module Sink = Bi_engine.Sink
module Pool = Bi_engine.Pool
module Budget = Bi_engine.Budget
module Service = Bi_cache.Service
module Fingerprint = Bi_cache.Fingerprint
module Bncs = Bi_ncs.Bayesian_ncs
module Registry = Bi_constructions.Registry
module Mode = Bi_certify.Mode
module Solve = Bi_certify.Solve
module Concept = Bi_correlated.Concept
module Correlated = Bi_correlated.Correlated

type listen = Lineserver.listen = Unix_socket of string | Tcp of int

type limits = {
  max_concurrent : int;
  max_queue : int;
  idle_timeout_s : float;
  max_deadline_ms : int;
}

let default_limits =
  { max_concurrent = 8; max_queue = 64; idle_timeout_s = 0.; max_deadline_ms = 0 }

type t = {
  cache : Service.t;
  pool : Pool.t option;
  metrics : Metrics.t;
  limits : limits;
  chaos : Chaos.t option;
  ls : Lineserver.t;
  lock : Mutex.t;  (* guards [inflight] *)
  cond : Condition.t;  (* signalled when an in-flight computation ends *)
  inflight : (string, unit) Hashtbl.t;
  adm_lock : Mutex.t;  (* guards [running] and [queued] *)
  mutable running : int;  (* analyses currently computing *)
  mutable queued : int;  (* leaders waiting for a compute slot *)
}

(* How a request can fail before or during its analysis. *)
type failure =
  | Overloaded of int  (* retry_after_ms hint *)
  | Deadline
  | Msg of string

let chaos_sleep ms = if ms > 0 then Thread.delay (float_of_int ms /. 1000.)

(* --- admission control ------------------------------------------------ *)

let slot_poll_s = 0.002

(* Admission applies to computation leaders only: cache hits, coalesced
   waiters and the control verbs are never shed, so the cache keeps
   answering and operators keep observing even when the solvers are
   saturated.  A leader is shed outright once [max_concurrent] analyses
   are running and [max_queue] more are waiting; otherwise it polls for
   a free slot, bailing out if its deadline passes or the server stops.
   The retry hint grows with the backlog so clients spread out. *)
let try_admit t ~budget =
  Mutex.lock t.adm_lock;
  let limits = t.limits in
  let total = t.running + t.queued in
  if total >= limits.max_concurrent + limits.max_queue then begin
    let backlog = total - limits.max_concurrent + 1 in
    Mutex.unlock t.adm_lock;
    Error (Overloaded (min 2000 (25 * backlog)))
  end
  else begin
    t.queued <- t.queued + 1;
    let rec wait () =
      if t.running < limits.max_concurrent then begin
        t.queued <- t.queued - 1;
        t.running <- t.running + 1;
        Mutex.unlock t.adm_lock;
        Ok ()
      end
      else begin
        Mutex.unlock t.adm_lock;
        let bail =
          if Lineserver.stopping t.ls then Some (Msg "server is shutting down")
          else if Budget.expired budget then Some Deadline
          else None
        in
        match bail with
        | Some f ->
          Mutex.lock t.adm_lock;
          t.queued <- t.queued - 1;
          Mutex.unlock t.adm_lock;
          Error f
        | None ->
          Thread.delay slot_poll_s;
          Mutex.lock t.adm_lock;
          wait ()
      end
    in
    wait ()
  end

let release_slot t =
  Mutex.lock t.adm_lock;
  t.running <- t.running - 1;
  Mutex.unlock t.adm_lock

(* --- request coalescing ---------------------------------------------- *)

(* One leader computes per cache key; duplicates wait on [cond] and
   are answered from cache when the leader lands.  A leader that fails
   broadcasts too, so a waiter re-checks, finds neither a cached value
   nor an in-flight leader, and takes over the computation itself.
   The chaos compute delay runs inside the admission slot, so injected
   latency exercises the load-shedding path like real slow work.

   Generic over {!Service.value} so both solver tiers coalesce through
   the same in-flight table: [decode] projects a cached value of the
   expected shape (tier-qualified keys make a shape clash impossible,
   but a mismatch still reads as a miss rather than a crash), [encode]
   injects a fresh result, and [solve] does the leader's work. *)
let compute (type a) t ~budget ~chaos_delay_ms ~key
    ~(decode : Service.value -> a option) ~(encode : a -> Service.value)
    (solve : unit -> (a, failure) result) =
  Mutex.lock t.lock;
  let rec obtain ~waited =
    match Option.bind (Service.find t.cache key) decode with
    | Some v ->
      if waited then Metrics.coalesce t.metrics else Metrics.hit t.metrics;
      Mutex.unlock t.lock;
      Ok (v, true)
    | None ->
      if Budget.expired budget then begin
        Mutex.unlock t.lock;
        Error Deadline
      end
      else if Hashtbl.mem t.inflight key then begin
        Condition.wait t.cond t.lock;
        obtain ~waited:true
      end
      else begin
        Hashtbl.add t.inflight key ();
        Mutex.unlock t.lock;
        Metrics.miss t.metrics;
        let result =
          match try_admit t ~budget with
          | Error _ as e -> e
          | Ok () ->
            Fun.protect
              ~finally:(fun () -> release_slot t)
              (fun () ->
                chaos_sleep chaos_delay_ms;
                if Budget.expired budget then Error Deadline
                else
                  match solve () with
                  | Ok v ->
                    Service.insert t.cache key (encode v);
                    Ok (v, false)
                  | Error _ as e -> e
                  | exception Budget.Expired -> Error Deadline
                  | exception Invalid_argument msg -> Error (Msg msg)
                  | exception exn -> Error (Msg (Printexc.to_string exn)))
        in
        Mutex.lock t.lock;
        Hashtbl.remove t.inflight key;
        Condition.broadcast t.cond;
        Mutex.unlock t.lock;
        result
      end
  in
  obtain ~waited:false

let analysis t ~budget ~chaos_delay_ms ~fingerprint build =
  compute t ~budget ~chaos_delay_ms ~key:fingerprint
    ~decode:(function Service.Analysis a -> Some a | Service.Payload _ -> None)
    ~encode:(fun a -> Service.Analysis a)
    (fun () ->
      match build () with
      | Error e -> Error (Msg e)
      | Ok game -> Ok (Bncs.analyze ?pool:t.pool ~budget game))

let certified t ~budget ~chaos_delay_ms ~key build =
  compute t ~budget ~chaos_delay_ms ~key
    ~decode:(function Service.Payload j -> Some j | Service.Analysis _ -> None)
    ~encode:(fun j -> Service.Payload j)
    (fun () ->
      match build () with
      | Error e -> Error (Msg e)
      | Ok game ->
        Ok (Solve.to_json (Solve.certify ?pool:t.pool ~budget game)))

(* The correlated concepts cache the same [Payload] shape as the
   certified tier — concept-qualified keys keep the shapes apart. *)
let correlated t ~budget ~chaos_delay_ms ~key ~concept build =
  compute t ~budget ~chaos_delay_ms ~key
    ~decode:(function Service.Payload j -> Some j | Service.Analysis _ -> None)
    ~encode:(fun j -> Service.Payload j)
    (fun () ->
      match build () with
      | Error e -> Error (Msg e)
      | Ok game -> Ok (Correlated.to_json (Correlated.analyze ~budget ~concept game)))

(* --- request handling ------------------------------------------------ *)

let budget_of t deadline_ms =
  match (deadline_ms, t.limits.max_deadline_ms) with
  | None, 0 -> Budget.unlimited
  | Some ms, 0 -> Budget.of_timeout_ms ms
  | None, cap -> Budget.of_timeout_ms cap
  | Some ms, cap -> Budget.of_timeout_ms (min ms cap)

let failure_response t = function
  | Overloaded hint ->
    Metrics.overload t.metrics;
    (Protocol.overloaded ~retry_after_ms:hint, `Continue)
  | Deadline ->
    Metrics.deadline_exceeded t.metrics;
    (Protocol.deadline_exceeded, `Continue)
  | Msg e ->
    Metrics.error t.metrics;
    (Protocol.error e, `Continue)

let analysis_response t ~fingerprint result =
  match result with
  | Ok (a, cached) -> (Protocol.ok_analysis ~fingerprint ~cached a, `Continue)
  | Error f -> failure_response t f

let certified_response t ~fingerprint result =
  match result with
  | Ok (payload, cached) ->
    (Protocol.ok_certified ~fingerprint ~cached payload, `Continue)
  | Error f -> failure_response t f

let correlated_response t ~fingerprint ~concept result =
  match result with
  | Ok (payload, cached) ->
    (Protocol.ok_correlated ~fingerprint ~cached ~concept payload, `Continue)
  | Error f -> failure_response t f

(* Tier dispatch.  The exhaustive tier keys the cache on the bare game
   fingerprint — byte-identical requests and responses to every pre-mode
   deployment — while the certified tier appends its tag, so entries
   never cross tiers.  [Auto] must build the game to count its valid
   profiles; the resolved tier then reuses the built game. *)
let rec handle_tiered t ~budget ~chaos_delay_ms ~fingerprint ~mode build =
  match mode with
  | Mode.Exhaustive ->
    analysis_response t ~fingerprint
      (analysis t ~budget ~chaos_delay_ms ~fingerprint build)
  | Mode.Certified ->
    let key =
      Fingerprint.with_mode fingerprint ~mode:(Mode.cache_tag Mode.Certified)
    in
    certified_response t ~fingerprint:key
      (certified t ~budget ~chaos_delay_ms ~key build)
  | Mode.Auto -> (
    match build () with
    | Error e ->
      Metrics.error t.metrics;
      (Protocol.error e, `Continue)
    | exception Invalid_argument msg ->
      Metrics.error t.metrics;
      (Protocol.error msg, `Continue)
    | Ok game ->
      let mode =
        Mode.resolve ~valid_profiles:(Bncs.valid_profile_count game) Mode.Auto
      in
      handle_tiered t ~budget ~chaos_delay_ms ~fingerprint ~mode (fun () ->
          Ok game))

(* Concept dispatch sits in front of tier dispatch: nash requests flow
   through [handle_tiered] exactly as before (byte-identical responses
   and cache keys), the correlated concepts go to the LP path under a
   concept-qualified key — the solver tier does not apply there. *)
let handle_concepted t ~budget ~chaos_delay_ms ~fingerprint ~mode ~concept
    build =
  match concept with
  | Concept.Nash -> handle_tiered t ~budget ~chaos_delay_ms ~fingerprint ~mode build
  | (Concept.Cce | Concept.Comm) as concept ->
    let key =
      Fingerprint.with_concept fingerprint ~concept:(Concept.cache_tag concept)
    in
    correlated_response t ~fingerprint:key ~concept
      (correlated t ~budget ~chaos_delay_ms ~key ~concept build)

let handle_query t ~budget ~chaos_delay_ms query =
  match query with
  | Protocol.Analyze { graph; prior; mode; concept } ->
    let fingerprint = Fingerprint.game graph ~prior in
    handle_concepted t ~budget ~chaos_delay_ms ~fingerprint ~mode ~concept
      (fun () -> Ok (Bncs.make graph ~prior))
  | Protocol.Construction { name; k; mode; concept } -> (
    match Registry.build name k with
    | Error e ->
      Metrics.error t.metrics;
      (Protocol.error e, `Continue)
    | Ok game ->
      let fingerprint = Fingerprint.of_game game in
      handle_concepted t ~budget ~chaos_delay_ms ~fingerprint ~mode ~concept
        (fun () -> Ok game))
  (* [put] and [health] are cluster-control verbs: like [stats] they are
     never shed and never queue behind solver work, so replication and
     liveness probing keep working on a saturated shard. *)
  | Protocol.Put { fingerprint; value } ->
    chaos_sleep chaos_delay_ms;
    (match value with
    | Protocol.Put_analysis analysis ->
      Service.insert_analysis t.cache fingerprint analysis
    | Protocol.Put_payload body ->
      Service.insert t.cache fingerprint (Service.Payload body));
    (Protocol.ok_stored ~fingerprint, `Continue)
  (* [digest] and [pull] are the repair-path control verbs: cheap reads
     of the resident digest view, never shed, so anti-entropy and fsck
     keep converging replicas even while the solvers are saturated. *)
  | Protocol.Digest { bucket } ->
    chaos_sleep chaos_delay_ms;
    let shard =
      Option.value (Service.stats t.cache).Service.shard ~default:"unnamed"
    in
    (match bucket with
    | None ->
      ( Protocol.ok_digest ~shard ~rollup:(Service.digest_rollup t.cache),
        `Continue )
    | Some b ->
      ( Protocol.ok_bucket ~shard ~bucket:b ~keys:(Service.bucket_keys t.cache b),
        `Continue ))
  | Protocol.Pull { keys } ->
    chaos_sleep chaos_delay_ms;
    let shard =
      Option.value (Service.stats t.cache).Service.shard ~default:"unnamed"
    in
    let entries, missing = Service.pull t.cache keys in
    (Protocol.ok_pulled ~shard ~entries ~missing, `Continue)
  | Protocol.Health ->
    chaos_sleep chaos_delay_ms;
    let stats = Service.stats t.cache in
    let shard = Option.value stats.Service.shard ~default:"unnamed" in
    ( Protocol.ok_health ~shard ~inflight:(Metrics.inflight t.metrics)
        ~cache:(Service.stats_to_json stats),
      `Continue )
  | Protocol.Stats ->
    chaos_sleep chaos_delay_ms;
    ( Protocol.ok_stats
        ~cache:(Service.stats_to_json (Service.stats t.cache))
        ~server:(Metrics.to_json t.metrics),
      `Continue )
  | Protocol.Shutdown ->
    chaos_sleep chaos_delay_ms;
    (Protocol.ok_shutdown, `Stop)

let handle_line t ~chaos_delay_ms line =
  Metrics.request t.metrics;
  Metrics.enter t.metrics;
  let t0 = Unix.gettimeofday () in
  let response, disposition =
    match Protocol.parse_request line with
    | Error e ->
      Metrics.error t.metrics;
      (Protocol.error e, `Continue)
    | Ok { Protocol.query; deadline_ms } -> (
      let budget = budget_of t deadline_ms in
      match handle_query t ~budget ~chaos_delay_ms query with
      | r -> r
      | exception Budget.Expired ->
        Metrics.deadline_exceeded t.metrics;
        (Protocol.deadline_exceeded, `Continue)
      | exception exn ->
        Metrics.error t.metrics;
        (Protocol.error (Printexc.to_string exn), `Continue))
  in
  Metrics.leave t.metrics ~seconds:(Unix.gettimeofday () -. t0);
  (response, disposition)

(* One protocol exchange, including the chaos transport decision: a
   dropped or truncated response leaves the client with wreckage, so
   the connection is closed rather than left desynchronized. *)
let handle_conn_line t oc line =
  let action =
    match t.chaos with
    | None -> Chaos.deliver
    | Some c -> Chaos.response_action c
  in
  if Chaos.faulty action then Metrics.fault_injected t.metrics;
  let response, disposition =
    handle_line t ~chaos_delay_ms:action.Chaos.delay_ms line
  in
  let alive =
    let s = Sink.to_string response in
    match action.Chaos.transport with
    | `Drop -> false
    | `Truncate ->
      (* A torn write: half the line, no newline, then hang up —
         the same wreckage a crash mid-response leaves. *)
      (try
         output_string oc (String.sub s 0 (String.length s / 2));
         flush oc
       with Sys_error _ -> ());
      false
    | `Deliver -> (
      try
        output_string oc s;
        output_char oc '\n';
        flush oc;
        true
      with Sys_error _ -> false)
  in
  match disposition with
  | `Stop -> `Stop
  | `Continue -> if alive then `Continue else `Close

(* --- lifecycle ------------------------------------------------------- *)

let dump_metrics t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let j =
        Sink.Obj
          [
            ("record", Sink.Str "serve_metrics");
            ("server", Metrics.to_json t.metrics);
            ("cache", Service.stats_to_json (Service.stats t.cache));
          ]
      in
      output_string oc (Sink.to_string j);
      output_char oc '\n')

let run ?pool ?metrics_out ?on_ready ?(limits = default_limits) ?chaos ~cache
    listen =
  let metrics = Metrics.create () in
  let ls =
    Lineserver.create ~idle_timeout_s:limits.idle_timeout_s
      ~on_idle_close:(fun () -> Metrics.idle_close metrics)
      listen
  in
  let t =
    {
      cache;
      pool;
      metrics;
      limits;
      chaos;
      ls;
      lock = Mutex.create ();
      cond = Condition.create ();
      inflight = Hashtbl.create 16;
      adm_lock = Mutex.create ();
      running = 0;
      queued = 0;
    }
  in
  let on_accept () =
    match chaos with
    | None -> `Proceed
    | Some c -> (
      match Chaos.connection_action c with
      | `Proceed -> `Proceed
      | (`Refuse | `Stall _) as fault ->
        Metrics.fault_injected t.metrics;
        fault)
  in
  Lineserver.run ?on_ready ~on_accept ~handler:(handle_conn_line t) ls;
  Option.iter (dump_metrics t) metrics_out

(** Deterministic fault injection for the analysis server.

    A chaos configuration gives independent probabilities for four
    faults: delaying a response ([delay_p], by [delay_ms]), dropping
    the connection instead of answering ([drop_p]), truncating the
    response line mid-write ([truncate_p]), and corrupting a store
    line before it hits the disk ([corrupt_store_p], installed through
    {!Bi_cache.Store.set_write_fault}).  All decisions come from a
    counter-keyed splitmix64 stream seeded by [seed], so a given
    configuration misbehaves identically run after run — the soak
    harness and CI rely on that reproducibility.

    The disabled configuration is free: every decision short-circuits
    without touching the RNG. *)

type config = {
  seed : int;
  delay_p : float;  (** Probability a response is delayed. *)
  delay_ms : int;  (** Added latency when it is. *)
  drop_p : float;  (** Probability the connection is dropped unanswered. *)
  truncate_p : float;  (** Probability the response line is cut short. *)
  corrupt_store_p : float;  (** Probability an appended store line is mangled. *)
  partition_p : float;
      (** Probability an accepted connection opens a partition window:
          for the next [partition_ms], every connection is refused
          (hang-up before reading) — the whole-node partition fault. *)
  partition_ms : int;  (** Partition window length (default 1000). *)
  slow_p : float;
      (** Probability an accepted connection is stalled [slow_ms]
          before being served — the slow-peer fault. *)
  slow_ms : int;  (** Stall length (default 1000). *)
}

val disabled : config
(** All probabilities zero. *)

val is_enabled : config -> bool

val parse : string -> (config, string) result
(** [parse "delay_p=0.1,delay_ms=50,drop_p=0.02"] — comma-separated
    [key=value] pairs over the field names above; unset fields default
    to {!disabled}'s values (seed 0).  Probabilities must lie in
    [[0, 1]]; unknown keys are errors. *)

val of_env : unit -> (config, string) result
(** Reads the [BI_CHAOS] environment variable through {!parse};
    unset or empty means {!disabled}. *)

val unit_float : seed:int -> counter:int -> float
(** The raw decision stream: a splitmix64 hash of [(seed, counter)]
    mapped to [[0, 1)].  Also used by {!Client}'s retry jitter and the
    soak harness, so every randomized choice in the serve layer is
    replayable from a seed. *)

type t

val create : config -> t
(** Builds the decision stream.  When [corrupt_store_p > 0], installs
    the store write fault ({!Bi_cache.Store.set_write_fault}) — the
    caller owns the process-global seam. *)

val config : t -> config

(** What to do with one outbound response, in application order:
    sleep [delay_ms] first when delayed, then deliver, cut short or
    drop. *)
type action = {
  delay_ms : int;  (** 0 when not delayed. *)
  transport : [ `Deliver | `Truncate | `Drop ];
}

val deliver : action
(** The no-fault action: no delay, [`Deliver]. *)

val response_action : t -> action

val faulty : action -> bool
(** True when the action differs from {!deliver}. *)

val connection_action : t -> [ `Proceed | `Refuse | `Stall of int ]
(** Per-connection decision, taken on accept.  [`Refuse] closes the
    connection before reading anything — to the peer, exactly a
    partitioned node (fast transport failure, no response); a positive
    [partition_p] draw opens a [partition_ms] window during which every
    connection is refused.  [`Stall ms] sleeps before serving.  The
    window state is shared across threads; decisions still come from
    the deterministic stream (window *expiry* is wall-clock, so
    partition timing is only as reproducible as the clock). *)

module Sink = Bi_engine.Sink

let buckets = 32

type t = {
  lock : Mutex.t;
  mutable requests : int;
  mutable errors : int;
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
  mutable overloaded : int;
  mutable deadline_exceeded : int;
  mutable idle_closed : int;
  mutable faults_injected : int;
  mutable queue_depth : int;
  mutable max_queue_depth : int;
  latency : int array;  (* log2-microsecond histogram *)
}

let create () =
  {
    lock = Mutex.create ();
    requests = 0;
    errors = 0;
    hits = 0;
    misses = 0;
    coalesced = 0;
    overloaded = 0;
    deadline_exceeded = 0;
    idle_closed = 0;
    faults_injected = 0;
    queue_depth = 0;
    max_queue_depth = 0;
    latency = Array.make buckets 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let bucket_of_seconds dt =
  let us = int_of_float (dt *. 1e6) in
  if us <= 1 then 0
  else
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    min (buckets - 1) (log2 us 0)

let enter t =
  locked t (fun () ->
      t.queue_depth <- t.queue_depth + 1;
      if t.queue_depth > t.max_queue_depth then
        t.max_queue_depth <- t.queue_depth)

let leave t ~seconds =
  locked t (fun () ->
      t.queue_depth <- t.queue_depth - 1;
      let b = bucket_of_seconds seconds in
      t.latency.(b) <- t.latency.(b) + 1)

let inflight t = locked t (fun () -> t.queue_depth)
let request t = locked t (fun () -> t.requests <- t.requests + 1)
let error t = locked t (fun () -> t.errors <- t.errors + 1)
let overload t = locked t (fun () -> t.overloaded <- t.overloaded + 1)

let deadline_exceeded t =
  locked t (fun () -> t.deadline_exceeded <- t.deadline_exceeded + 1)

let idle_close t = locked t (fun () -> t.idle_closed <- t.idle_closed + 1)

let fault_injected t =
  locked t (fun () -> t.faults_injected <- t.faults_injected + 1)

let hit t = locked t (fun () -> t.hits <- t.hits + 1)
let miss t = locked t (fun () -> t.misses <- t.misses + 1)

let coalesce t =
  locked t (fun () ->
      (* A coalesced request was answered from cache once the leader
         finished, so it counts as a hit as well. *)
      t.coalesced <- t.coalesced + 1;
      t.hits <- t.hits + 1)

let to_json t =
  locked t (fun () ->
      let last =
        let rec go i = if i < 0 then -1 else if t.latency.(i) > 0 then i else go (i - 1) in
        go (buckets - 1)
      in
      let histogram =
        List.init (last + 1) (fun i ->
            Sink.Obj
              [
                ("le_us", Sink.Int ((1 lsl (i + 1)) - 1));
                ("count", Sink.Int t.latency.(i));
              ])
      in
      Sink.Obj
        [
          ("requests", Sink.Int t.requests);
          ("errors", Sink.Int t.errors);
          ("hits", Sink.Int t.hits);
          ("misses", Sink.Int t.misses);
          ("coalesced", Sink.Int t.coalesced);
          ("overloaded", Sink.Int t.overloaded);
          ("deadline_exceeded", Sink.Int t.deadline_exceeded);
          ("idle_closed", Sink.Int t.idle_closed);
          ("faults_injected", Sink.Int t.faults_injected);
          ("queue_depth", Sink.Int t.queue_depth);
          ("max_queue_depth", Sink.Int t.max_queue_depth);
          ("latency_log2_us", Sink.List histogram);
        ])

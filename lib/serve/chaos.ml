type config = {
  seed : int;
  delay_p : float;
  delay_ms : int;
  drop_p : float;
  truncate_p : float;
  corrupt_store_p : float;
  partition_p : float;
  partition_ms : int;
  slow_p : float;
  slow_ms : int;
}

let disabled =
  {
    seed = 0;
    delay_p = 0.;
    delay_ms = 0;
    drop_p = 0.;
    truncate_p = 0.;
    corrupt_store_p = 0.;
    partition_p = 0.;
    partition_ms = 1000;
    slow_p = 0.;
    slow_ms = 1000;
  }

let is_enabled c =
  c.delay_p > 0. || c.drop_p > 0. || c.truncate_p > 0.
  || c.corrupt_store_p > 0. || c.partition_p > 0. || c.slow_p > 0.

let parse_field c key value =
  let prob name f =
    match float_of_string_opt value with
    | Some p when p >= 0. && p <= 1. -> Ok (f p)
    | _ -> Error (Printf.sprintf "%s must be a probability in [0,1], got %S" name value)
  in
  let int name f =
    match int_of_string_opt value with
    | Some n -> Ok (f n)
    | None -> Error (Printf.sprintf "%s must be an integer, got %S" name value)
  in
  match key with
  | "seed" -> int "seed" (fun seed -> { c with seed })
  | "delay_p" -> prob "delay_p" (fun delay_p -> { c with delay_p })
  | "delay_ms" -> (
    match int_of_string_opt value with
    | Some n when n >= 0 -> Ok { c with delay_ms = n }
    | _ -> Error (Printf.sprintf "delay_ms must be a non-negative integer, got %S" value))
  | "drop_p" -> prob "drop_p" (fun drop_p -> { c with drop_p })
  | "truncate_p" -> prob "truncate_p" (fun truncate_p -> { c with truncate_p })
  | "corrupt_store_p" ->
    prob "corrupt_store_p" (fun corrupt_store_p -> { c with corrupt_store_p })
  | "partition_p" -> prob "partition_p" (fun partition_p -> { c with partition_p })
  | "partition_ms" -> (
    match int_of_string_opt value with
    | Some n when n >= 0 -> Ok { c with partition_ms = n }
    | _ ->
      Error
        (Printf.sprintf "partition_ms must be a non-negative integer, got %S"
           value))
  | "slow_p" -> prob "slow_p" (fun slow_p -> { c with slow_p })
  | "slow_ms" -> (
    match int_of_string_opt value with
    | Some n when n >= 0 -> Ok { c with slow_ms = n }
    | _ ->
      Error
        (Printf.sprintf "slow_ms must be a non-negative integer, got %S" value))
  | _ -> Error (Printf.sprintf "unknown chaos key %S" key)

let parse spec =
  let spec = String.trim spec in
  if spec = "" then Ok disabled
  else
    String.split_on_char ',' spec
    |> List.fold_left
         (fun acc pair ->
           Result.bind acc (fun c ->
               match String.index_opt pair '=' with
               | None ->
                 Error (Printf.sprintf "chaos spec entry %S is not key=value" pair)
               | Some i ->
                 let key = String.trim (String.sub pair 0 i) in
                 let value =
                   String.trim
                     (String.sub pair (i + 1) (String.length pair - i - 1))
                 in
                 parse_field c key value))
         (Ok disabled)

let of_env () =
  match Sys.getenv_opt "BI_CHAOS" with
  | None | Some "" -> Ok disabled
  | Some spec -> parse spec

(* --- deterministic decisions ------------------------------------------ *)

(* splitmix64 over (seed, decision counter): stateless apart from the
   counter, so concurrent server threads draw from one reproducible
   stream regardless of interleaving. *)
let splitmix64 x =
  let x = Int64.add x 0x9E3779B97F4A7C15L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94D049BB133111EBL in
  Int64.logxor x (Int64.shift_right_logical x 31)

let unit_float ~seed ~counter =
  let bits = splitmix64 (Int64.add (Int64.of_int seed) (Int64.mul 0x2545F4914F6CDD1DL (Int64.of_int counter))) in
  (* 53 uniform mantissa bits -> [0, 1). *)
  Int64.to_float (Int64.shift_right_logical bits 11) *. (1. /. 9007199254740992.)

type t = {
  cfg : config;
  counter : int Atomic.t;
  (* Partition window: once opened, every connection in the next
     [partition_ms] is refused — a whole-node network event, not an
     independent per-request coin flip.  Guarded by [window_lock]. *)
  window_lock : Mutex.t;
  mutable partition_until : float;
}

let config t = t.cfg

let draw t =
  if not (is_enabled t.cfg) then 1.0
  else unit_float ~seed:t.cfg.seed ~counter:(Atomic.fetch_and_add t.counter 1)

type action = {
  delay_ms : int;
  transport : [ `Deliver | `Truncate | `Drop ];
}

let deliver = { delay_ms = 0; transport = `Deliver }
let faulty a = a <> deliver

let response_action t =
  if not (is_enabled t.cfg) then deliver
  else
    let delay_ms =
      if draw t < t.cfg.delay_p then t.cfg.delay_ms else 0
    in
    let transport =
      if draw t < t.cfg.drop_p then `Drop
      else if draw t < t.cfg.truncate_p then `Truncate
      else `Deliver
    in
    { delay_ms; transport }

(* Per-connection decision, taken on accept.  [`Refuse] hangs up before
   reading anything — to the client it is exactly a partitioned or dead
   peer: fast connection loss, no response, so the router classifies it
   as a transport failure and fails over.  A positive [partition_p] draw
   opens a [partition_ms] window during which *every* connection is
   refused.  [`Stall n] holds the accepted connection for [n] ms before
   serving — the slow-peer fault that exercises client read timeouts. *)
let connection_action t =
  if not (is_enabled t.cfg) then `Proceed
  else begin
    let now = Unix.gettimeofday () in
    let partitioned =
      t.cfg.partition_p > 0.
      && begin
           Mutex.lock t.window_lock;
           let inside = now < t.partition_until in
           let inside =
             if inside then true
             else if draw t < t.cfg.partition_p then begin
               t.partition_until <-
                 now +. (float_of_int t.cfg.partition_ms /. 1000.);
               true
             end
             else false
           in
           Mutex.unlock t.window_lock;
           inside
         end
    in
    if partitioned then `Refuse
    else if t.cfg.slow_p > 0. && draw t < t.cfg.slow_p then `Stall t.cfg.slow_ms
    else `Proceed
  end

(* Store corruption: overwrite a byte mid-line so the entry fails its
   checksum (or JSON parse) on replay — exactly the damage a torn or
   bit-flipped write leaves behind. *)
let corrupt_line t line =
  if String.length line = 0 || draw t >= t.cfg.corrupt_store_p then line
  else begin
    let b = Bytes.of_string line in
    let i = Bytes.length b / 2 in
    Bytes.set b i '#';
    Bytes.to_string b
  end

let create cfg =
  let t =
    {
      cfg;
      counter = Atomic.make 0;
      window_lock = Mutex.create ();
      partition_until = 0.;
    }
  in
  if cfg.corrupt_store_p > 0. then
    Bi_cache.Store.set_write_fault (Some (corrupt_line t));
  t

module Sink = Bi_engine.Sink

type t = { ic : in_channel; oc : out_channel; mutable open_ : bool }

let of_channels ic oc = { ic; oc; open_ = true }

let connect_unix path =
  let ic, oc = Unix.open_connection (Unix.ADDR_UNIX path) in
  of_channels ic oc

let connect_tcp port =
  let ic, oc =
    Unix.open_connection (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  of_channels ic oc

let request t j =
  if not t.open_ then Error "client is closed"
  else
    match
      output_string t.oc (Sink.to_string j);
      output_char t.oc '\n';
      flush t.oc;
      input_line t.ic
    with
    | line -> Sink.of_string line
    | exception End_of_file -> Error "connection closed by server"
    | exception Sys_error e -> Error e

let close t =
  if t.open_ then begin
    t.open_ <- false;
    (* Closes both channels: they share the socket's file descriptor. *)
    try Unix.shutdown_connection t.ic; close_in_noerr t.ic
    with Unix.Unix_error _ | Sys_error _ -> ()
  end

module Sink = Bi_engine.Sink

type addr =
  | Unix_path of string
  | Tcp_port of int
  | Unattached

type failure =
  | Io of string
  | Malformed of string
  | Closed

let failure_to_string = function
  | Io e -> Printf.sprintf "i/o failure: %s" e
  | Malformed e -> Printf.sprintf "malformed response: %s" e
  | Closed -> "client is closed"

type retry = {
  attempts : int;
  base_delay_ms : int;
  max_delay_ms : int;
  seed : int option;
}

let default_retry =
  { attempts = 5; base_delay_ms = 25; max_delay_ms = 2000; seed = None }

type t = {
  mutable ic : in_channel;
  mutable oc : out_channel;
  mutable state : [ `Live | `Broken | `Closed ];
  addr : addr;
  timeout_s : float option;
  ident : int;  (* default jitter seed: unique per connection *)
  mutable waits : int;  (* jitter stream position across retries *)
}

(* The default jitter seed mixes the pid with a per-process connection
   counter and the peer address, so a fleet of clients that all lose
   the same shard does NOT replay one shared backoff sequence and
   retry in lockstep (the thundering herd a fixed seed caused).  Tests
   that need a reproducible schedule pass an explicit [seed]. *)
let ident_counter = Atomic.make 0

let derive_ident addr =
  let tag =
    match addr with
    | Unix_path p -> "unix:" ^ p
    | Tcp_port p -> "tcp:" ^ string_of_int p
    | Unattached -> "unattached"
  in
  Hashtbl.hash (Unix.getpid (), Atomic.fetch_and_add ident_counter 1, tag)

let open_addr = function
  | Unix_path path -> Unix.open_connection (Unix.ADDR_UNIX path)
  | Tcp_port port ->
    Unix.open_connection (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  | Unattached -> invalid_arg "Client: no address to connect to"

let apply_timeout ic timeout_s =
  match timeout_s with
  | None -> ()
  | Some s ->
    Unix.setsockopt_float (Unix.descr_of_in_channel ic) Unix.SO_RCVTIMEO s

let make ?timeout_s addr =
  let ic, oc = open_addr addr in
  apply_timeout ic timeout_s;
  { ic; oc; state = `Live; addr; timeout_s; ident = derive_ident addr;
    waits = 0 }

let connect_unix ?timeout_s path = make ?timeout_s (Unix_path path)
let connect_tcp ?timeout_s port = make ?timeout_s (Tcp_port port)

let of_channels ic oc =
  { ic; oc; state = `Live; addr = Unattached; timeout_s = None;
    ident = derive_ident Unattached; waits = 0 }

let teardown t =
  (try Unix.shutdown_connection t.ic
   with Unix.Unix_error _ | Sys_error _ -> ());
  close_in_noerr t.ic

let mark_broken t =
  if t.state = `Live then begin
    t.state <- `Broken;
    teardown t
  end

(* A response line that fails to parse is either a line torn mid-write
   (crash or injected truncation — the connection is at or about to hit
   EOF) or a healthy peer speaking garbage.  Distinguish by probing: if
   the socket turns readable shortly, the next read tells us; a quiet
   open connection means the line itself was the problem. *)
let connection_ended t =
  match Unix.select [ Unix.descr_of_in_channel t.ic ] [] [] 0.25 with
  | [], _, _ -> false
  | _ -> (
    match input_line t.ic with
    | exception End_of_file -> true
    | exception Sys_error _ -> true
    | exception Sys_blocked_io -> false
    | _ -> false)
  | exception Unix.Unix_error _ -> true

let request_once t j =
  match t.state with
  | `Closed | `Broken -> Error Closed
  | `Live -> (
    match
      output_string t.oc (Sink.to_string j);
      output_char t.oc '\n';
      flush t.oc;
      input_line t.ic
    with
    | exception End_of_file ->
      mark_broken t;
      Error (Io "connection closed by server")
    | exception Sys_error e ->
      mark_broken t;
      Error (Io e)
    | exception Sys_blocked_io ->
      mark_broken t;
      Error (Io "read timed out")
    | line -> (
      match Sink.of_string line with
      | Ok j -> Ok j
      | Error e ->
        let torn = connection_ended t in
        mark_broken t;
        if torn then Error (Io (Printf.sprintf "torn response (%s)" e))
        else Error (Malformed e)))

let reconnect t =
  match t.addr with
  | Unattached -> Error Closed
  | addr -> (
    match open_addr addr with
    | ic, oc ->
      apply_timeout ic t.timeout_s;
      t.ic <- ic;
      t.oc <- oc;
      t.state <- `Live;
      Ok ()
    | exception Unix.Unix_error (err, _, _) ->
      Error (Io (Printf.sprintf "reconnect: %s" (Unix.error_message err))))

(* Capped exponential backoff with deterministic jitter: wait [i] is
   [min max (base * 2^i)] scaled into [[1/2, 1)] by the seeded stream,
   raised to the server's [retry_after_ms] hint when it is larger.
   Pure in all of its inputs so the qcheck laws can pin it down. *)
let backoff_wait_ms ~base_delay_ms ~max_delay_ms ~seed ~wait_index ~attempt
    ~hint_ms =
  let cap = max 1 max_delay_ms in
  let base = max 1 base_delay_ms in
  let raw = if attempt >= 30 then cap else min cap (base * (1 lsl attempt)) in
  let u = Chaos.unit_float ~seed ~counter:wait_index in
  let jittered = int_of_float (float_of_int raw *. (0.5 +. (0.5 *. u))) in
  max 1 (max jittered (Option.value hint_ms ~default:0))

let backoff_ms retry t ~attempt ~hint_ms =
  let seed = match retry.seed with Some s -> s | None -> t.ident in
  let wait_index = t.waits in
  t.waits <- t.waits + 1;
  backoff_wait_ms ~base_delay_ms:retry.base_delay_ms
    ~max_delay_ms:retry.max_delay_ms ~seed ~wait_index ~attempt ~hint_ms

let sleep_ms ms = Thread.delay (float_of_int ms /. 1000.)

let request ?retry t j =
  match retry with
  | None -> request_once t j
  | Some retry ->
    let attempts = max 1 retry.attempts in
    let rec go attempt =
      let result =
        if t.state = `Broken then
          match reconnect t with
          | Ok () -> request_once t j
          | Error f -> Error f
        else request_once t j
      in
      let last = attempt >= attempts - 1 in
      let retry_with hint =
        sleep_ms (backoff_ms retry t ~attempt ~hint_ms:hint);
        go (attempt + 1)
      in
      match result with
      | Ok response
        when (not last) && Protocol.response_code response = Some "overloaded"
        ->
        retry_with (Protocol.retry_after_ms response)
      | Ok _ -> result
      | Error Closed -> result
      | Error (Io _ | Malformed _) when not last -> retry_with None
      | Error _ -> result
    in
    go 0

let raw_request t line =
  match t.state with
  | `Closed | `Broken -> Error Closed
  | `Live -> (
    match
      output_string t.oc line;
      output_char t.oc '\n';
      flush t.oc;
      input_line t.ic
    with
    | exception End_of_file ->
      mark_broken t;
      Error (Io "connection closed by server")
    | exception Sys_error e ->
      mark_broken t;
      Error (Io e)
    | exception Sys_blocked_io ->
      mark_broken t;
      Error (Io "read timed out")
    | response -> Ok response)

let close t =
  match t.state with
  | `Closed -> ()
  | `Broken -> t.state <- `Closed
  | `Live ->
    t.state <- `Closed;
    teardown t

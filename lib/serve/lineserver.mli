(** The line-oriented connection fabric shared by {!Server} and the
    cluster router.

    Owns everything about a socket endpoint that is not protocol:
    binding the listener (with socket-clobber protection), a
    thread-per-connection accept loop with bounded thread reaping,
    per-connection idle timeouts, and the graceful-shutdown dance
    (stop flag, self-connect poke to wake a blocked [accept],
    [SHUTDOWN_RECEIVE] on live connections to unblock parked reads,
    join-all on exit).  The caller supplies a handler that interprets
    one input line and writes whatever response it wants. *)

type listen = Unix_socket of string | Tcp of int
(** TCP binds loopback only; no authentication is performed.  For
    [Unix_socket], an existing path is probed before binding: only a
    refused connection (a stale socket left by a crash) is unlinked — a
    live server or a non-socket file makes {!create} raise [Failure]
    instead of clobbering it. *)

type t

val create :
  ?idle_timeout_s:float -> ?on_idle_close:(unit -> unit) -> listen -> t
(** Binds the listening socket immediately (so a bad address fails
    before any serving starts).  [idle_timeout_s > 0] closes
    connections whose next request does not arrive in time, reporting
    each through [on_idle_close].
    @raise Failure when the listen address is held by a live server or
    a non-socket file. *)

val stopping : t -> bool
(** True once shutdown has been initiated; long-running handlers poll
    it to bail out early. *)

val initiate_shutdown : t -> unit
(** Stops accepting and wakes every blocked connection thread.
    Idempotent, callable from any thread (including signal context and
    handlers — returning [`Stop] from the handler does this). *)

val run :
  ?on_ready:(unit -> unit) ->
  ?on_accept:(unit -> [ `Proceed | `Refuse | `Stall of int ]) ->
  handler:(out_channel -> string -> [ `Continue | `Close | `Stop ]) ->
  t ->
  unit
(** Accepts until shutdown (via {!initiate_shutdown}, a [`Stop] from
    the handler, SIGINT or SIGTERM), then joins all connection threads
    and closes + unlinks the listener.  [on_ready] fires once the
    accept loop is about to start — tests use it to connect without
    polling.  The handler runs on the connection's thread once per
    non-blank line; it writes (or deliberately withholds) the response
    on the given channel and returns [`Continue] to keep the
    connection, [`Close] to drop it, or [`Stop] to shut the whole
    server down.  Blank lines are skipped; read errors and idle
    timeouts close the connection.  [on_accept] runs once per
    connection on its own thread before any read: [`Refuse] hangs up
    immediately (the chaos partition fault — the peer sees a dead
    node), [`Stall ms] sleeps before serving (the slow-peer fault). *)

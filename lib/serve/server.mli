(** The concurrent analysis server.

    Listens on a Unix-domain socket (stale path unlinked before bind) or
    a loopback TCP port and speaks {!Protocol} — one JSON object per
    line in each direction, any number of requests per connection.  Each
    connection is served by its own POSIX thread; solver work for a
    cache miss runs on the shared {!Bi_engine.Pool} (concurrent entry
    degrades to sequential safely).  Duplicate in-flight requests for
    the same game fingerprint coalesce: one leader computes, waiters are
    answered from cache and counted as coalesced hits.

    [run] blocks until a [shutdown] request, SIGINT or SIGTERM, then
    stops accepting, wakes idle connections, joins all connection
    threads, optionally dumps metrics, and returns. *)

type listen = Unix_socket of string | Tcp of int
(** TCP binds loopback only; the server performs no authentication. *)

val run :
  ?pool:Bi_engine.Pool.t ->
  ?metrics_out:string ->
  ?on_ready:(unit -> unit) ->
  cache:Bi_cache.Service.t ->
  listen ->
  unit
(** [run ~cache listen] serves until shut down.  [on_ready] fires once
    the listening socket is bound — tests use it to start clients
    without polling.  [metrics_out] names a file that receives a final
    one-line JSON dump of server metrics and cache statistics.  The
    caller retains ownership of [cache] (and [pool]) and closes them
    after [run] returns. *)

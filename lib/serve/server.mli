(** The concurrent analysis server.

    Listens on a Unix-domain socket or a loopback TCP port and speaks
    {!Protocol} — one JSON object per line in each direction, any
    number of requests per connection.  Each connection is served by
    its own POSIX thread (reaped as connections close); solver work for
    a cache miss runs on the shared {!Bi_engine.Pool} (concurrent entry
    degrades to sequential safely).  Duplicate in-flight requests for
    the same game fingerprint coalesce: one leader computes, waiters
    are answered from cache and counted as coalesced hits.

    Overload and deadlines are first-class: at most
    [limits.max_concurrent] analyses compute at once, at most
    [limits.max_queue] more wait, and further analysis requests are
    shed immediately with a structured [overloaded] response carrying a
    [retry_after_ms] hint.  Cache hits, coalesced waits, [stats] and
    [shutdown] are never shed.  A request's [deadline_ms] (capped by
    [limits.max_deadline_ms] when set) bounds its wall-clock time —
    queueing included — via {!Bi_engine.Budget}; an expired request
    gets [deadline_exceeded], never a partial answer.  With
    [limits.idle_timeout_s] set, connections idle past it are closed.

    A {!Chaos} configuration injects deterministic faults (delays
    inside the admission slot, dropped or truncated responses,
    corrupted store lines) for soak testing; every fault is counted in
    the metrics.

    [run] blocks until a [shutdown] request, SIGINT or SIGTERM, then
    stops accepting, wakes idle connections, joins all connection
    threads, optionally dumps metrics, and returns. *)

type listen = Lineserver.listen = Unix_socket of string | Tcp of int
(** TCP binds loopback only; the server performs no authentication.
    For [Unix_socket], an existing path is probed before binding: only
    a refused connection (a stale socket left by a crash) is unlinked —
    a live server or a non-socket file makes [run] raise [Failure]
    instead of clobbering it.  (The socket machinery — accept loop,
    thread-per-connection, graceful shutdown — lives in {!Lineserver};
    this module supplies the protocol handler on top.) *)

type limits = {
  max_concurrent : int;  (** Analyses computing at once. *)
  max_queue : int;  (** Leaders waiting for a slot before shedding. *)
  idle_timeout_s : float;  (** Per-connection read timeout; 0 = none. *)
  max_deadline_ms : int;
      (** Cap on (and, when requests carry none, default for) request
          deadlines; 0 = unlimited. *)
}

val default_limits : limits
(** 8 concurrent, 64 queued, no idle timeout, no deadline cap. *)

val run :
  ?pool:Bi_engine.Pool.t ->
  ?metrics_out:string ->
  ?on_ready:(unit -> unit) ->
  ?limits:limits ->
  ?chaos:Chaos.t ->
  cache:Bi_cache.Service.t ->
  listen ->
  unit
(** [run ~cache listen] serves until shut down.  [on_ready] fires once
    the listening socket is bound — tests use it to start clients
    without polling.  [metrics_out] names a file that receives a final
    one-line JSON dump of server metrics and cache statistics.  The
    caller retains ownership of [cache] (and [pool]) and closes them
    after [run] returns.
    @raise Failure when the listen address is held by a live server or
    a non-socket file. *)

(** The analysis server's wire protocol.

    One JSON object per line in each direction.  Requests carry an
    ["op"] field — [analyze] (inline game description), [construction]
    (named paper family + size), [stats], [shutdown] — and may carry an
    optional ["deadline_ms"] wall-clock budget.  Responses carry
    ["ok"]: analysis responses add the game fingerprint, whether the
    result came from cache, and the full analysis; failure responses
    add a machine-readable ["code"] ([error], [overloaded],
    [deadline_exceeded]) and a human-readable ["error"], and overload
    responses add a ["retry_after_ms"] hint.  See DESIGN.md §3d–§3e
    for worked examples and the failure model. *)

type query =
  | Analyze of Bi_graph.Graph.t * (int * int) array Bi_prob.Dist.t
  | Construction of { name : string; k : int }
  | Stats
  | Shutdown

type request = {
  query : query;
  deadline_ms : int option;
      (** Wall-clock budget for this request; the server answers
          [deadline_exceeded] instead of an analysis when it runs out. *)
}

val default_k : int
(** Size used when a [construction] request omits ["k"]. *)

val parse_request : string -> (request, string) result

(** Request builders (client side). *)

val analyze_request :
  ?deadline_ms:int ->
  Bi_graph.Graph.t ->
  prior:(int * int) array Bi_prob.Dist.t ->
  Bi_engine.Sink.json

val construction_request :
  ?deadline_ms:int -> name:string -> k:int -> unit -> Bi_engine.Sink.json

val stats_request : Bi_engine.Sink.json
val shutdown_request : Bi_engine.Sink.json

(** Response builders (server side). *)

val ok_analysis :
  fingerprint:string ->
  cached:bool ->
  Bi_ncs.Bayesian_ncs.analysis ->
  Bi_engine.Sink.json

val ok_stats :
  cache:Bi_engine.Sink.json -> server:Bi_engine.Sink.json -> Bi_engine.Sink.json

val ok_shutdown : Bi_engine.Sink.json

val error : string -> Bi_engine.Sink.json
(** Generic failure: ["code"]: ["error"]. *)

val overloaded : retry_after_ms:int -> Bi_engine.Sink.json
(** Load-shed response: ["code"]: ["overloaded"] plus a retry hint. *)

val deadline_exceeded : Bi_engine.Sink.json
(** The request's wall-clock budget ran out before the analysis
    completed: ["code"]: ["deadline_exceeded"]. *)

val is_ok : Bi_engine.Sink.json -> bool
(** True when the response object has ["ok"]: [true]. *)

val response_code : Bi_engine.Sink.json -> string option
(** ["ok"] for successes, the failure ["code"] otherwise ("error" when
    a well-formed failure omits it); [None] when the object is not a
    recognizable response. *)

val retry_after_ms : Bi_engine.Sink.json -> int option
(** The overload retry hint, when present and non-negative. *)

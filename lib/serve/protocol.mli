(** The analysis server's wire protocol.

    One JSON object per line in each direction.  Requests carry an
    ["op"] field — [analyze] (inline game description), [construction]
    (named paper family + size), [put] (replicate a finished analysis
    into the cache), [stats], [health], [shutdown] — and may carry an
    optional ["deadline_ms"] wall-clock budget.  Responses carry
    ["ok"]: analysis responses add the game fingerprint, whether the
    result came from cache, and the full analysis; failure responses
    add a machine-readable ["code"] ([error], [overloaded],
    [deadline_exceeded]) and a human-readable ["error"], and overload
    responses add a ["retry_after_ms"] hint.  See DESIGN.md §3d–§3f
    for worked examples and the failure model. *)

type query =
  | Analyze of {
      graph : Bi_graph.Graph.t;
      prior : (int * int) array Bi_prob.Dist.t;
      mode : Bi_certify.Mode.t;
          (** Solver tier.  Absent on the wire means
              {!Bi_certify.Mode.Exhaustive}, so pre-mode clients keep
              their exact behavior and cache keys. *)
      concept : Bi_correlated.Concept.t;
          (** Solution concept.  Absent on the wire means
              {!Bi_correlated.Concept.Nash} — the only concept
              pre-correlated servers had — same back-compat contract
              as [mode]. *)
    }
  | Construction of {
      name : string;
      k : int;
      mode : Bi_certify.Mode.t;
      concept : Bi_correlated.Concept.t;
    }
  | Put of { fingerprint : string; value : put_value }
      (** A cache write: store [value] under [fingerprint] without
          computing anything.  The router uses it for quorum
          replication, warming, hinted handoff and repair. *)
  | Digest of { bucket : int option }
      (** Cluster-internal consistency probe: [None] asks for the
          per-bucket rollup of the resident entries, [Some b] for one
          bucket's key→check map.  Never shed. *)
  | Pull of { keys : string list }
      (** Cluster-internal entry fetch by key (repair path); the
          response carries the full store entries plus the keys not
          resident.  At most 4096 keys per request.  Never shed. *)
  | Stats
  | Health
      (** Liveness + identity probe: answered with the shard id, the
          in-flight request depth and the cache statistics, never shed
          and never queued behind solver work. *)
  | Shutdown

and put_value =
  | Put_analysis of Bi_ncs.Bayesian_ncs.analysis
      (** ["kind"] absent or ["analysis"] on the wire: the body is
          decoded and validated as a full analysis — byte-identical
          back-compat with pre-repair replication. *)
  | Put_payload of Bi_engine.Sink.json
      (** ["kind"]: ["payload"]: the body is stored verbatim (certified
          / correlated tier results).  Pre-repair shards reject it with
          a structured error, which repair treats as "skip". *)

type request = {
  query : query;
  deadline_ms : int option;
      (** Wall-clock budget for this request; the server answers
          [deadline_exceeded] instead of an analysis when it runs out. *)
}

val default_k : int
(** Size used when a [construction] request omits ["k"]. *)

val max_k : int
(** Largest ["k"] accepted at parse time.  A [construction] request
    with [k < 1] or [k > max_k] is rejected with a structured error on
    arrival — mirroring the [deadline_ms] validation — instead of
    failing deep inside a construction builder or exhausting memory. *)

val parse_request : string -> (request, string) result

(** Request builders (client side). *)

val analyze_request :
  ?deadline_ms:int ->
  ?mode:Bi_certify.Mode.t ->
  ?concept:Bi_correlated.Concept.t ->
  Bi_graph.Graph.t ->
  prior:(int * int) array Bi_prob.Dist.t ->
  Bi_engine.Sink.json

val construction_request :
  ?deadline_ms:int ->
  ?mode:Bi_certify.Mode.t ->
  ?concept:Bi_correlated.Concept.t ->
  name:string ->
  k:int ->
  unit ->
  Bi_engine.Sink.json
(** Both builders emit ["mode"] / ["concept"] fields only for
    non-default values, so default requests are byte-identical to
    pre-mode (and pre-correlated) requests. *)

val put_request :
  ?kind:string -> fingerprint:string -> Bi_engine.Sink.json -> Bi_engine.Sink.json
(** [put_request ~fingerprint analysis_json] — the JSON argument is the
    already-encoded ["analysis"] value (as found in an [ok_analysis]
    response), so a router can replicate a shard's answer without
    decoding it.  [?kind] defaults to ["analysis"] (no wire field, so
    analysis puts stay byte-identical to pre-repair traffic); pass
    ["payload"] to store the body verbatim. *)

val digest_request : ?bucket:int -> unit -> Bi_engine.Sink.json
(** Rollup request, or one bucket's key→check map with [?bucket]. *)

val pull_request : string list -> Bi_engine.Sink.json
(** Fetch store entries by key. *)

val stats_request : Bi_engine.Sink.json
val health_request : Bi_engine.Sink.json
val shutdown_request : Bi_engine.Sink.json

(** Response builders (server side). *)

val ok_analysis :
  fingerprint:string ->
  cached:bool ->
  Bi_ncs.Bayesian_ncs.analysis ->
  Bi_engine.Sink.json

val ok_certified :
  fingerprint:string -> cached:bool -> Bi_engine.Sink.json -> Bi_engine.Sink.json
(** Certified-tier success: carries the tier-qualified fingerprint, a
    ["mode"] marker and the bracket payload under ["certified"] (the
    JSON argument, as produced by {!Bi_certify.Solve.to_json}) — and
    deliberately no ["analysis"] member, so caches keyed on exhaustive
    answers can never pick it up. *)

val ok_correlated :
  fingerprint:string ->
  cached:bool ->
  concept:Bi_correlated.Concept.t ->
  Bi_engine.Sink.json ->
  Bi_engine.Sink.json
(** Correlated-concept success: the concept-qualified fingerprint, a
    ["concept"] marker and the LP payload under ["correlated"] (as
    produced by {!Bi_correlated.Correlated.to_json}) — and, like
    {!ok_certified}, deliberately no ["analysis"] member, so caches
    keyed on nash answers can never pick it up. *)

val ok_stats :
  cache:Bi_engine.Sink.json -> server:Bi_engine.Sink.json -> Bi_engine.Sink.json

val ok_health :
  shard:string ->
  inflight:int ->
  cache:Bi_engine.Sink.json ->
  Bi_engine.Sink.json
(** Health response: shard identity, in-flight request depth, cache
    (store) statistics. *)

val ok_stored : fingerprint:string -> Bi_engine.Sink.json
(** Acknowledges a [put]: ["stored"]: [true]. *)

val ok_digest :
  shard:string -> rollup:(int * string) list -> Bi_engine.Sink.json
(** Digest rollup response: ["digest"] is a list of [[bucket, md5]]
    pairs for every non-empty bucket, in increasing bucket order. *)

val ok_bucket :
  shard:string -> bucket:int -> keys:(string * string) list ->
  Bi_engine.Sink.json
(** One bucket's key→check map: ["keys"] is a list of [[key, check]]
    pairs sorted by key. *)

val ok_pulled :
  shard:string ->
  entries:Bi_cache.Store.entry list ->
  missing:string list ->
  Bi_engine.Sink.json
(** Pull response: the resident entries (key/kind/canonical body) and
    the keys that were not resident. *)

val rollup_of :
  Bi_engine.Sink.json -> ((int * string) list, string) result
(** Decode an {!ok_digest} response.  Total. *)

val bucket_keys_of :
  Bi_engine.Sink.json -> ((string * string) list, string) result
(** Decode an {!ok_bucket} response.  Total. *)

val entries_of :
  Bi_engine.Sink.json -> (Bi_cache.Store.entry list, string) result
(** Decode the entries of an {!ok_pulled} response.  Total. *)

val shard_of : Bi_engine.Sink.json -> string option
(** The ["shard"] field of a health response, when present. *)

val ok_shutdown : Bi_engine.Sink.json

val error : string -> Bi_engine.Sink.json
(** Generic failure: ["code"]: ["error"]. *)

val overloaded : retry_after_ms:int -> Bi_engine.Sink.json
(** Load-shed response: ["code"]: ["overloaded"] plus a retry hint. *)

val deadline_exceeded : Bi_engine.Sink.json
(** The request's wall-clock budget ran out before the analysis
    completed: ["code"]: ["deadline_exceeded"]. *)

val is_ok : Bi_engine.Sink.json -> bool
(** True when the response object has ["ok"]: [true]. *)

val response_code : Bi_engine.Sink.json -> string option
(** ["ok"] for successes, the failure ["code"] otherwise ("error" when
    a well-formed failure omits it); [None] when the object is not a
    recognizable response. *)

val retry_after_ms : Bi_engine.Sink.json -> int option
(** The overload retry hint, when present and non-negative. *)

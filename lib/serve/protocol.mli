(** The analysis server's wire protocol.

    One JSON object per line in each direction.  Requests carry an
    ["op"] field — [analyze] (inline game description), [construction]
    (named paper family + size), [stats], [shutdown].  Responses carry
    ["ok"]: analysis responses add the game fingerprint, whether the
    result came from cache, and the full analysis; error responses add
    ["error"].  See DESIGN.md §3d for worked examples. *)

type request =
  | Analyze of Bi_graph.Graph.t * (int * int) array Bi_prob.Dist.t
  | Construction of { name : string; k : int }
  | Stats
  | Shutdown

val default_k : int
(** Size used when a [construction] request omits ["k"]. *)

val parse_request : string -> (request, string) result

(** Request builders (client side). *)

val analyze_request :
  Bi_graph.Graph.t ->
  prior:(int * int) array Bi_prob.Dist.t ->
  Bi_engine.Sink.json

val construction_request : name:string -> k:int -> Bi_engine.Sink.json
val stats_request : Bi_engine.Sink.json
val shutdown_request : Bi_engine.Sink.json

(** Response builders (server side). *)

val ok_analysis :
  fingerprint:string ->
  cached:bool ->
  Bi_ncs.Bayesian_ncs.analysis ->
  Bi_engine.Sink.json

val ok_stats :
  cache:Bi_engine.Sink.json -> server:Bi_engine.Sink.json -> Bi_engine.Sink.json

val ok_shutdown : Bi_engine.Sink.json
val error : string -> Bi_engine.Sink.json

val is_ok : Bi_engine.Sink.json -> bool
(** True when the response object has ["ok"]: [true]. *)

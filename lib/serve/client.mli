(** A blocking client for the analysis server.

    Opens one connection and issues line-delimited JSON requests
    (build them with {!Protocol}); each {!request} writes one line and
    blocks for the one-line response.

    Failures are classified, and the client tracks its own health: any
    I/O or framing failure marks the connection broken, after which a
    plain {!request} refuses to reuse it ({!failure.Closed}) instead of
    silently writing into a dead socket.  A {!request} with [~retry]
    reconnects to the remembered address and retries with capped
    exponential backoff and deterministic jitter; [overloaded]
    responses are retried too, honouring the server's
    [retry_after_ms] hint. *)

type t

type addr =
  | Unix_path of string  (** A Unix-domain socket path. *)
  | Tcp_port of int  (** A loopback TCP port. *)
  | Unattached
      (** No address (a client made with {!of_channels}); cannot
          reconnect. *)

type failure =
  | Io of string
      (** The transport failed: connect/read/write error, connection
          reset, read timeout, or a response line torn mid-write. *)
  | Malformed of string
      (** The connection stayed up but the response line was not JSON —
          the server is speaking a different protocol. *)
  | Closed
      (** The client was {!close}d, or is broken and was called without
          [~retry] (or has no address to reconnect to). *)

val failure_to_string : failure -> string

type retry = {
  attempts : int;  (** Total tries, including the first. *)
  base_delay_ms : int;  (** Backoff starts here and doubles. *)
  max_delay_ms : int;  (** Per-wait cap. *)
  seed : int option;
      (** Jitter stream seed ({!Chaos.unit_float}).  [None] — the
          default — derives a seed from the pid, a per-process
          connection counter and the peer address, so independent
          clients that lose the same server spread their retries out
          instead of replaying one shared jitter sequence in lockstep.
          Pass [Some s] for a reproducible schedule in tests. *)
}

val default_retry : retry
(** 5 attempts, 25 ms base, 2 s cap, derived (per-connection) seed. *)

val backoff_wait_ms :
  base_delay_ms:int ->
  max_delay_ms:int ->
  seed:int ->
  wait_index:int ->
  attempt:int ->
  hint_ms:int option ->
  int
(** The pure backoff schedule: wait [attempt] is
    [min max_delay_ms (base_delay_ms * 2^attempt)] scaled into
    [[1/2, 1)] by the [(seed, wait_index)] jitter stream, raised to
    [hint_ms] when the server's [retry_after_ms] hint is larger, and
    never below 1 ms.  Without a hint the result lies in
    [[1, max_delay_ms]]; a hint acts as a floor and may exceed the
    cap.  Exposed for the qcheck laws. *)

val connect_unix : ?timeout_s:float -> string -> t
(** Connects to a Unix-domain socket path.  With [~timeout_s], reads
    that block longer fail as {!failure.Io} (socket receive timeout)
    instead of hanging forever.
    @raise Unix.Unix_error when the server is not listening. *)

val connect_tcp : ?timeout_s:float -> int -> t
(** Connects to the loopback TCP port. *)

val make : ?timeout_s:float -> addr -> t
(** Connects to an {!addr} — the general form of {!connect_unix} /
    {!connect_tcp} (the router resolves member strings to addresses).
    @raise Invalid_argument on {!addr.Unattached}.
    @raise Unix.Unix_error when the server is not listening. *)

val of_channels : in_channel -> out_channel -> t
(** Wraps an existing connection.  Such a client has no address, so it
    cannot reconnect: once broken it only answers {!failure.Closed}. *)

val request :
  ?retry:retry -> t -> Bi_engine.Sink.json -> (Bi_engine.Sink.json, failure) result
(** Sends one request, returns the parsed response.  Check
    {!Protocol.is_ok} / {!Protocol.response_code} for the server-level
    verdict.  Without [~retry], one attempt on the current connection;
    with it, transport failures and [overloaded] responses trigger
    reconnect-and-retry until the attempt budget runs out (the last
    outcome is returned, so a final [overloaded] response surfaces as
    such). *)

val raw_request : t -> string -> (string, failure) result
(** Sends a raw line (no JSON validation — the fuzz and soak harnesses
    use this to probe with garbage) and returns the raw response line.
    Never retries. *)

val close : t -> unit
(** Idempotent. *)

(** A blocking client for the analysis server.

    Opens one connection and issues line-delimited JSON requests
    (build them with {!Protocol}); each {!request} writes one line and
    blocks for the one-line response. *)

type t

val connect_unix : string -> t
(** Connects to a Unix-domain socket path.
    @raise Unix.Unix_error when the server is not listening. *)

val connect_tcp : int -> t
(** Connects to the loopback TCP port. *)

val request : t -> Bi_engine.Sink.json -> (Bi_engine.Sink.json, string) result
(** Sends one request, returns the parsed response.  Check
    {!Protocol.is_ok} for the server-level verdict. *)

val close : t -> unit
(** Idempotent. *)

(** A blocking client for the analysis server.

    Opens one connection and issues line-delimited JSON requests
    (build them with {!Protocol}); each {!request} writes one line and
    blocks for the one-line response.

    Failures are classified, and the client tracks its own health: any
    I/O or framing failure marks the connection broken, after which a
    plain {!request} refuses to reuse it ({!failure.Closed}) instead of
    silently writing into a dead socket.  A {!request} with [~retry]
    reconnects to the remembered address and retries with capped
    exponential backoff and deterministic jitter; [overloaded]
    responses are retried too, honouring the server's
    [retry_after_ms] hint. *)

type t

type failure =
  | Io of string
      (** The transport failed: connect/read/write error, connection
          reset, read timeout, or a response line torn mid-write. *)
  | Malformed of string
      (** The connection stayed up but the response line was not JSON —
          the server is speaking a different protocol. *)
  | Closed
      (** The client was {!close}d, or is broken and was called without
          [~retry] (or has no address to reconnect to). *)

val failure_to_string : failure -> string

type retry = {
  attempts : int;  (** Total tries, including the first. *)
  base_delay_ms : int;  (** Backoff starts here and doubles. *)
  max_delay_ms : int;  (** Per-wait cap. *)
  seed : int;  (** Jitter stream seed ({!Chaos.unit_float}). *)
}

val default_retry : retry
(** 5 attempts, 25 ms base, 2 s cap, seed 0. *)

val connect_unix : ?timeout_s:float -> string -> t
(** Connects to a Unix-domain socket path.  With [~timeout_s], reads
    that block longer fail as {!failure.Io} (socket receive timeout)
    instead of hanging forever.
    @raise Unix.Unix_error when the server is not listening. *)

val connect_tcp : ?timeout_s:float -> int -> t
(** Connects to the loopback TCP port. *)

val of_channels : in_channel -> out_channel -> t
(** Wraps an existing connection.  Such a client has no address, so it
    cannot reconnect: once broken it only answers {!failure.Closed}. *)

val request :
  ?retry:retry -> t -> Bi_engine.Sink.json -> (Bi_engine.Sink.json, failure) result
(** Sends one request, returns the parsed response.  Check
    {!Protocol.is_ok} / {!Protocol.response_code} for the server-level
    verdict.  Without [~retry], one attempt on the current connection;
    with it, transport failures and [overloaded] responses trigger
    reconnect-and-retry until the attempt budget runs out (the last
    outcome is returned, so a final [overloaded] response surfaces as
    such). *)

val raw_request : t -> string -> (string, failure) result
(** Sends a raw line (no JSON validation — the fuzz and soak harnesses
    use this to probe with garbage) and returns the raw response line.
    Never retries. *)

val close : t -> unit
(** Idempotent. *)

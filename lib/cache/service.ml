module Sink = Bi_engine.Sink
module Bncs = Bi_ncs.Bayesian_ncs

type value =
  | Analysis of Bncs.analysis
  | Payload of Sink.json

type t = {
  lru : value Lru.t;
  (* Digest view: key → md5 of the canonical body line, mirroring the
     LRU's resident key set exactly (entries leave on eviction), so the
     rollup never advertises a key that [pull] cannot serve. *)
  checks : (string, string) Hashtbl.t;
  store : Store.t option;
  store_path : string option;
  lock : Mutex.t;
  shard : string option;
  mutable hits : int;
  mutable misses : int;
  loaded : int;
  invalid : int;
  quarantined : int;
  mutable closed : bool;
}

let kind_of = function Analysis _ -> "analysis" | Payload _ -> "payload"

let body_of = function
  | Analysis a -> Codec.analysis_to_json a
  | Payload j -> j

let value_of_entry (e : Store.entry) =
  match e.Store.kind with
  | "analysis" -> (
    match Codec.analysis_of_json e.Store.body with
    | Ok a -> Some (Analysis a)
    | Error _ -> None)
  | "payload" -> Some (Payload e.Store.body)
  | _ -> None

let default_capacity = 4096

(* Open-time compaction trigger: rewrite the log when at least 10% of
   its lines are unverifiable or at least half of its valid entries are
   stale duplicates.  Both ratios are cheap byproducts of the replay we
   do anyway, and both kinds of bloat only ever grow in an append-only
   log. *)
let needs_compaction ~entries ~distinct ~unreadable =
  let total = entries + unreadable in
  total > 0
  && (unreadable * 10 >= total || (entries - distinct) * 2 >= max 1 entries)

(* Single write path for the LRU: keeps [checks] an exact mirror of the
   resident key set, including under eviction. *)
let resident_add lru checks k v check =
  (match Lru.add_evicting lru k v with
  | None -> ()
  | Some evicted -> Hashtbl.remove checks evicted);
  Hashtbl.replace checks k check

let create ?(capacity = default_capacity) ?store_path ?(auto_compact = true)
    ?shard () =
  let lru = Lru.create ~capacity in
  let checks = Hashtbl.create 64 in
  let loaded, invalid, quarantined, store =
    match store_path with
    | None -> (0, 0, 0, None)
    | Some path ->
      let entries, unreadable = Store.load path in
      let distinct =
        let keys = Hashtbl.create 64 in
        List.iter (fun e -> Hashtbl.replace keys e.Store.key ()) entries;
        Hashtbl.length keys
      in
      let quarantined =
        if
          auto_compact
          && needs_compaction ~entries:(List.length entries) ~distinct
               ~unreadable
        then (Store.compact path).Store.quarantined
        else 0
      in
      (* Replay in append order: for a duplicated key the latest entry
         wins, matching what a reader of the log would reconstruct. *)
      let loaded, undecodable =
        List.fold_left
          (fun (ok, bad) e ->
            match value_of_entry e with
            | Some v ->
              resident_add lru checks e.Store.key v
                (Store.check_of e.Store.body);
              (ok + 1, bad)
            | None -> (ok, bad + 1))
          (0, 0) entries
      in
      (loaded, unreadable + undecodable, quarantined, Some (Store.open_append path))
  in
  { lru; checks; store; store_path; lock = Mutex.create (); shard; hits = 0;
    misses = 0; loaded; invalid; quarantined; closed = false }

let key ~fingerprint ~query =
  if query = "" then fingerprint else fingerprint ^ "/" ^ query

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let persist t k v =
  match t.store with
  | None -> ()
  | Some store ->
    Store.append store { Store.key = k; kind = kind_of v; body = body_of v }

let find t k =
  locked t (fun () ->
      match Lru.find t.lru k with
      | Some v ->
        t.hits <- t.hits + 1;
        Some v
      | None ->
        t.misses <- t.misses + 1;
        None)

let insert t k v =
  locked t (fun () ->
      resident_add t.lru t.checks k v (Store.check_of (body_of v));
      persist t k v)

let find_analysis t k =
  match find t k with Some (Analysis a) -> Some a | Some (Payload _) | None -> None

let insert_analysis t k a = insert t k (Analysis a)

(* The thunk runs inside the lock: correctness first (a concurrent
   caller can never observe a missing entry being computed twice).  The
   server layer keeps its own in-flight table precisely so that long
   computations do not serialize behind this mutex. *)
let memo t k wrap unwrap compute =
  locked t (fun () ->
      match Option.bind (Lru.find t.lru k) unwrap with
      | Some v ->
        t.hits <- t.hits + 1;
        (v, true)
      | None ->
        t.misses <- t.misses + 1;
        let v = compute () in
        let wrapped = wrap v in
        resident_add t.lru t.checks k wrapped
          (Store.check_of (body_of wrapped));
        persist t k wrapped;
        (v, false))

let analysis t k compute =
  memo t k
    (fun a -> Analysis a)
    (function Analysis a -> Some a | Payload _ -> None)
    compute

let payload t k compute =
  memo t k
    (fun j -> Payload j)
    (function Payload j -> Some j | Analysis _ -> None)
    compute

(* --- digest view ------------------------------------------------------ *)

let digest_rollup t =
  locked t (fun () ->
      let per_bucket = Array.make Store.buckets [] in
      Hashtbl.iter
        (fun k c ->
          let b = Store.bucket_of_key k in
          per_bucket.(b) <- (k, c) :: per_bucket.(b))
        t.checks;
      let acc = ref [] in
      for b = Store.buckets - 1 downto 0 do
        if per_bucket.(b) <> [] then
          acc := (b, Store.bucket_digest per_bucket.(b)) :: !acc
      done;
      !acc)

let bucket_keys t bucket =
  locked t (fun () ->
      let pairs =
        Hashtbl.fold
          (fun k c acc ->
            if Store.bucket_of_key k = bucket then (k, c) :: acc else acc)
          t.checks []
      in
      List.sort compare pairs)

let pull t keys =
  locked t (fun () ->
      List.fold_left
        (fun (found, missing) k ->
          match Lru.find t.lru k with
          | Some v ->
            ( { Store.key = k; kind = kind_of v; body = body_of v } :: found,
              missing )
          | None -> (found, k :: missing))
        ([], []) keys
      |> fun (found, missing) -> (List.rev found, List.rev missing))

type stats = {
  shard : string option;
  hits : int;
  misses : int;
  length : int;
  capacity : int;
  evictions : int;
  loaded : int;
  invalid : int;
  quarantined : int;
  rejected : int;
}

let stats t =
  locked t (fun () ->
      {
        shard = t.shard;
        hits = t.hits;
        misses = t.misses;
        length = Lru.length t.lru;
        capacity = Lru.capacity t.lru;
        evictions = Lru.evictions t.lru;
        loaded = t.loaded;
        invalid = t.invalid;
        quarantined = t.quarantined;
        rejected =
          (match t.store_path with
          | None -> 0
          | Some path -> Store.rej_lines path);
      })

let stats_to_json (s : stats) =
  let shard_field =
    match s.shard with None -> [] | Some id -> [ ("shard", Sink.Str id) ]
  in
  Sink.Obj
    (shard_field
    @ [
        ("hits", Sink.Int s.hits);
        ("misses", Sink.Int s.misses);
        ("length", Sink.Int s.length);
        ("capacity", Sink.Int s.capacity);
        ("evictions", Sink.Int s.evictions);
        ("loaded", Sink.Int s.loaded);
        ("invalid", Sink.Int s.invalid);
        ("quarantined", Sink.Int s.quarantined);
        ("rejected", Sink.Int s.rejected);
      ])

let close t =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Option.iter Store.close t.store
      end)

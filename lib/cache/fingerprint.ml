open Bi_num
module Graph = Bi_graph.Graph
module Dist = Bi_prob.Dist

(* Canonicalization invariants, in order of appearance:
   - the header pins the description-format version and the graph kind;
   - undirected edge endpoints are written smaller-first (an undirected
     edge is an unordered pair);
   - edges are sorted by (src, dst, cost), so insertion order and the
     dense edge ids it induces vanish; duplicate triples are kept — the
     multigraph multiplicity is semantic;
   - rationals print in the canonical reduced num/den form [Rat] already
     maintains, so unreduced inputs normalize to the same bytes;
   - prior support entries are sorted by their rendered pair profiles
     ([Dist.make] has already merged duplicates and normalized weights
     to sum to one, erasing both insertion order and weight scaling). *)
let description graph ~prior =
  let buf = Buffer.create 256 in
  let directed = Graph.is_directed graph in
  Buffer.add_string buf "bi-ncs-v1 ";
  Buffer.add_string buf (if directed then "directed " else "undirected ");
  Buffer.add_string buf (string_of_int (Graph.n_vertices graph));
  Buffer.add_char buf '\n';
  let edges =
    List.map
      (fun e ->
        if directed || e.Graph.src <= e.Graph.dst then
          (e.Graph.src, e.Graph.dst, e.Graph.cost)
        else (e.Graph.dst, e.Graph.src, e.Graph.cost))
      (Graph.edges graph)
  in
  let edges =
    List.sort
      (fun (s1, d1, c1) (s2, d2, c2) ->
        match Int.compare s1 s2 with
        | 0 -> ( match Int.compare d1 d2 with 0 -> Rat.compare c1 c2 | c -> c)
        | c -> c)
      edges
  in
  List.iter
    (fun (s, d, c) ->
      Buffer.add_string buf (Printf.sprintf "e %d %d %s\n" s d (Rat.to_string c)))
    edges;
  let entries =
    List.map
      (fun (pairs, w) ->
        let profile =
          String.concat " "
            (List.map
               (fun (x, y) -> Printf.sprintf "%d:%d" x y)
               (Array.to_list pairs))
        in
        (profile, w))
      (Dist.to_list prior)
  in
  let entries = List.sort (fun (p1, _) (p2, _) -> String.compare p1 p2) entries in
  List.iter
    (fun (profile, w) ->
      Buffer.add_string buf
        (Printf.sprintf "t %s w %s\n" profile (Rat.to_string w)))
    entries;
  Buffer.contents buf

let digest_hex s = Digest.to_hex (Digest.string s)
let game graph ~prior = digest_hex (description graph ~prior)

let of_game g =
  game (Bi_ncs.Bayesian_ncs.graph g) ~prior:(Bi_ncs.Bayesian_ncs.prior g)

let with_mode fp ~mode =
  if mode = "" || mode = "exhaustive" then fp else fp ^ "+" ^ mode

let with_concept fp ~concept =
  if concept = "" || concept = "nash" then fp else fp ^ "+" ^ concept

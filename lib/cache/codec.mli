(** JSON codecs for exact values, ignorance reports, and game
    descriptions.

    Everything load-bearing travels as strings of exact rationals
    (canonical [num/den] form) or integers, never floats, so a value
    survives encode → store → parse → decode bit-identically — the
    property the warm-cache byte-identical-output guarantee rests on.
    Encoders produce {!Bi_engine.Sink.json}; decoders consume it and
    return [Result] with a human-readable error. *)

open Bi_num

val rat_of_string : string -> (Rat.t, string) result
(** Parses ["n"] or ["n/d"] with optional leading ['-'] on either part;
    the result is reduced to canonical form. *)

val rat_to_json : Rat.t -> Bi_engine.Sink.json
val rat_of_json : Bi_engine.Sink.json -> (Rat.t, string) result

val ext_to_json : Extended.t -> Bi_engine.Sink.json
(** Finite values as rational strings, infinity as ["inf"]. *)

val ext_of_json : Bi_engine.Sink.json -> (Extended.t, string) result

val profile_to_json : Bi_bayes.Bayesian.strategy_profile -> Bi_engine.Sink.json
val profile_of_json :
  Bi_engine.Sink.json -> (Bi_bayes.Bayesian.strategy_profile, string) result

val report_to_json : Bi_bayes.Measures.report -> Bi_engine.Sink.json
val report_of_json :
  Bi_engine.Sink.json -> (Bi_bayes.Measures.report, string) result

val analysis_to_json : Bi_ncs.Bayesian_ncs.analysis -> Bi_engine.Sink.json
val analysis_of_json :
  Bi_engine.Sink.json -> (Bi_ncs.Bayesian_ncs.analysis, string) result

val game_to_json :
  Bi_graph.Graph.t ->
  prior:(int * int) array Bi_prob.Dist.t ->
  Bi_engine.Sink.json
(** A game description as carried by the server's [analyze] verb:
    [{"kind": "directed"|"undirected", "n": int,
      "edges": [[src, dst, "cost"], ...],
      "prior": [{"types": [[s, d], ...], "weight": "w"}, ...]}]. *)

val game_of_json :
  Bi_engine.Sink.json ->
  (Bi_graph.Graph.t * (int * int) array Bi_prob.Dist.t, string) result
(** Inverse of {!game_to_json}; validates through [Graph.make] and
    [Dist.make] (endpoint ranges, non-negative costs, positive mass). *)

(** The content-addressed result cache.

    Ties together the {!Lru} in-memory tier, the {!Codec} value codecs
    and the {!Store} on-disk log.  Keys are game fingerprints
    ({!Fingerprint.game}), optionally extended with a query tag
    ([fingerprint/query]) for auxiliary results that depend on solver
    parameters.  All operations are serialized by an internal mutex and
    are safe to call from multiple threads or domains. *)

type value =
  | Analysis of Bi_ncs.Bayesian_ncs.analysis
      (** A full ignorance analysis: six exact quantities + witnesses. *)
  | Payload of Bi_engine.Sink.json
      (** An opaque JSON payload interpreted by the caller. *)

type t

val create :
  ?capacity:int -> ?store_path:string -> ?auto_compact:bool ->
  ?shard:string -> unit -> t
(** [create ()] builds an in-memory cache (default capacity 4096).
    With [~store_path], the file is replayed into the cache (latest
    entry per key wins; unverifiable lines are counted, not trusted)
    and then opened for appending so later misses persist.  Unless
    [~auto_compact:false], a log whose invalid-line share reaches 10%
    or whose stale-duplicate share reaches half is compacted before
    being reopened ({!Store.compact}: last valid entry per key kept,
    corrupt lines quarantined to the [.rej] sidecar, atomic rename) —
    so crash damage and churn are bounded at every restart.  [~shard]
    names the cluster shard this cache belongs to; the name rides along
    in {!stats} so every stats/health response identifies its node. *)

val key : fingerprint:string -> query:string -> string
(** [key ~fingerprint ~query:""] is the fingerprint itself; otherwise
    [fingerprint ^ "/" ^ query]. *)

val find : t -> string -> value option
(** Counts a hit or a miss. *)

val insert : t -> string -> value -> unit
(** Inserts and appends to the store when one is attached. *)

val find_analysis : t -> string -> Bi_ncs.Bayesian_ncs.analysis option
val insert_analysis : t -> string -> Bi_ncs.Bayesian_ncs.analysis -> unit

val analysis :
  t -> string -> (unit -> Bi_ncs.Bayesian_ncs.analysis) ->
  Bi_ncs.Bayesian_ncs.analysis * bool
(** [analysis t key compute] returns the cached analysis under [key]
    ([..., true]) or runs [compute] and caches its result
    ([..., false]).  The thunk runs under the cache lock, so concurrent
    callers never duplicate a computation; use the server's in-flight
    table when long computations must not serialize other lookups. *)

val payload :
  t -> string -> (unit -> Bi_engine.Sink.json) -> Bi_engine.Sink.json * bool
(** As {!analysis} for opaque JSON payloads. *)

val digest_rollup : t -> (int * string) list
(** Per-bucket digests of the resident entries: for every non-empty
    bucket ({!Store.bucket_of_key}), the {!Store.bucket_digest} of its
    [(key, check)] pairs, in increasing bucket order.  Two replicas with
    equal rollups hold byte-identical resident state. *)

val bucket_keys : t -> int -> (string * string) list
(** The [(key, check)] pairs of one bucket, sorted by key. *)

val pull : t -> string list -> Store.entry list * string list
(** [pull t keys] fetches the resident entries for [keys] in request
    order, plus the keys not resident.  Counts neither hits nor misses —
    a repair path, not a serving path. *)

type stats = {
  shard : string option;  (** Cluster shard identity, when configured. *)
  hits : int;
  misses : int;
  length : int;
  capacity : int;
  evictions : int;
  loaded : int;  (** Entries replayed from the store at startup. *)
  invalid : int;  (** Store lines skipped as unreadable or unverifiable. *)
  quarantined : int;
      (** Lines moved to the [.rej] sidecar by the open-time compaction
          (0 when it did not run). *)
  rejected : int;
      (** Total lines accumulated in the [.rej] sidecar across the
          store's lifetime (deduplicated by {!Store.compact}). *)
}

val stats : t -> stats
val stats_to_json : stats -> Bi_engine.Sink.json

val close : t -> unit
(** Closes the attached store, if any.  Idempotent. *)

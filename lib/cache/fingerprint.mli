(** Canonical fingerprints of Bayesian NCS game descriptions.

    Every quantity the reproduction computes is a pure function of a
    game description — a graph plus a common prior over terminal-pair
    profiles — so a stable content hash of a {e canonical} serialization
    of that description addresses cached results.  Canonical means the
    bytes are invariant under every representation choice that does not
    change the game: edge insertion order (and the dense edge ids it
    induces), undirected endpoint orientation, unreduced rational inputs
    (rationals are kept reduced with positive denominators), prior
    support order and weight scaling (distributions normalize to mass
    one and merge duplicate outcomes).

    The digest is MD5 (the stdlib [Digest]); fingerprints are 32
    lowercase hex characters.  Collision resistance against adversarial
    inputs is not a goal — the cache is a performance layer over a
    deterministic solver, and the on-disk store verifies entries
    structurally on replay. *)

val description : Bi_graph.Graph.t -> prior:(int * int) array Bi_prob.Dist.t -> string
(** The canonical serialization itself — stable across builds and
    sessions, suitable for hashing or diffing.  Computable without
    lowering the description into a game (no path enumeration), so a
    cache lookup can skip [Bayesian_ncs.make] entirely. *)

val game : Bi_graph.Graph.t -> prior:(int * int) array Bi_prob.Dist.t -> string
(** Fingerprint of a description: MD5 of {!description} in lowercase hex. *)

val of_game : Bi_ncs.Bayesian_ncs.t -> string
(** Fingerprint of an already-built game, via its graph and prior. *)

val digest_hex : string -> string
(** MD5 of arbitrary bytes in lowercase hex — the hash used throughout
    the cache (store entry checksums, compound keys). *)

val with_mode : string -> mode:string -> string
(** Solver-tier-qualified fingerprint: [fp] itself for the exhaustive
    tier (["exhaustive"] or [""]) — byte-identical to every fingerprint
    this library ever issued, so existing cache entries keep their keys
    — and [fp ^ "+" ^ mode] for any other tier, so cached answers never
    cross tiers. *)

val with_concept : string -> concept:string -> string
(** Solution-concept-qualified fingerprint: [fp] itself for [nash]
    (["nash"] or [""]) — byte-identical to pre-correlated keys — and
    [fp ^ "+" ^ concept] for the correlated concepts.  The concept tags
    ([cce], [comm]) are disjoint from the tier tags of {!with_mode}
    ([certified]), so qualified keys never collide across the two
    axes. *)

(* Hashtable over an intrusive doubly-linked recency list.  [first] is
   the most recently used node, [last] the eviction candidate. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option; (* toward [first] *)
  mutable next : 'a node option; (* toward [last] *)
}

type 'a t = {
  capacity : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable first : 'a node option;
  mutable last : 'a node option;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; tbl = Hashtbl.create 64; first = None; last = None; evictions = 0 }

let capacity t = t.capacity
let length t = Hashtbl.length t.tbl
let evictions t = t.evictions

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.first <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.first;
  node.prev <- None;
  (match t.first with Some f -> f.prev <- Some node | None -> t.last <- Some node);
  t.first <- Some node

let touch t node =
  if t.first != Some node then begin
    unlink t node;
    push_front t node
  end

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some node ->
    touch t node;
    Some node.value

let mem t key = Hashtbl.mem t.tbl key

let evict_last t =
  match t.last with
  | None -> None
  | Some node ->
    unlink t node;
    Hashtbl.remove t.tbl node.key;
    t.evictions <- t.evictions + 1;
    Some node.key

let add_evicting t key value =
  match Hashtbl.find_opt t.tbl key with
  | Some node ->
    node.value <- value;
    touch t node;
    None
  | None ->
    let evicted =
      if Hashtbl.length t.tbl >= t.capacity then evict_last t else None
    in
    let node = { key; value; prev = None; next = None } in
    Hashtbl.replace t.tbl key node;
    push_front t node;
    evicted

let add t key value = ignore (add_evicting t key value)

let fold f acc t =
  let rec go acc = function
    | None -> acc
    | Some node -> go (f acc node.key node.value) node.next
  in
  go acc t.first

module Sink = Bi_engine.Sink

type entry = {
  key : string;
  kind : string;
  body : Sink.json;
}

(* The checksum covers the canonical rendering of the body, so a replay
   can verify an entry without knowing how to interpret it.  Bodies are
   built from Null/Bool/Int/Str/List/Obj only (no floats), for which
   [Sink.to_string] after [Sink.of_string] is byte-identical. *)
let check_of body = Fingerprint.digest_hex (Sink.to_string body)

let entry_to_line e =
  Sink.to_string
    (Sink.Obj
       [
         ("record", Str "entry");
         ("key", Str e.key);
         ("kind", Str e.kind);
         ("check", Str (check_of e.body));
         ("body", e.body);
       ])

let entry_of_line line =
  match Sink.of_string line with
  | Error e -> Error e
  | Ok j -> (
    match
      ( Sink.member "record" j,
        Sink.member "key" j,
        Sink.member "kind" j,
        Sink.member "check" j,
        Sink.member "body" j )
    with
    | Some (Str "entry"), Some (Str key), Some (Str kind), Some (Str check), Some body
      ->
      if String.equal check (check_of body) then Ok { key; kind; body }
      else Error "checksum mismatch"
    | _ -> Error "not a store entry record")

let load path =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc invalid =
          match input_line ic with
          | exception End_of_file -> (List.rev acc, invalid)
          | line when String.trim line = "" -> go acc invalid
          | line -> (
            match entry_of_line line with
            | Ok e -> go (e :: acc) invalid
            | Error _ -> go acc (invalid + 1))
        in
        go [] 0)
  end

type t = {
  path : string;
  channel : out_channel;
  lock : Mutex.t;
  mutable open_ : bool;
}

let open_append path =
  let channel =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  { path; channel; lock = Mutex.create (); open_ = true }

let path t = t.path

let append t entry =
  let line = entry_to_line entry in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if not t.open_ then invalid_arg "Store.append: store is closed";
      output_string t.channel line;
      output_char t.channel '\n';
      (* Flush per entry: an append-only log that survives crashes at
         line granularity (a torn final line is skipped on replay). *)
      flush t.channel)

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if t.open_ then begin
        t.open_ <- false;
        close_out t.channel
      end)

module Sink = Bi_engine.Sink

type entry = {
  key : string;
  kind : string;
  body : Sink.json;
}

(* The checksum covers the canonical rendering of the body, so a replay
   can verify an entry without knowing how to interpret it.  Bodies are
   built from Null/Bool/Int/Str/List/Obj only (no floats), for which
   [Sink.to_string] after [Sink.of_string] is byte-identical. *)
let check_of body = Fingerprint.digest_hex (Sink.to_string body)

(* Digest view: keys are assigned to one of [buckets] buckets by the
   first byte of their MD5, so two shards can compare rollups in
   O(buckets) and fetch only the keys of differing buckets. *)
let buckets = 256
let bucket_of_key key = Char.code (Digest.string key).[0]

(* Canonical digest of one bucket's key→check map: md5 over the sorted
   "key:check" lines.  Sorting makes the rollup independent of insertion
   and recency order, so equal resident state ⇒ equal digest. *)
let bucket_digest pairs =
  let lines =
    List.sort compare (List.map (fun (k, c) -> k ^ ":" ^ c ^ "\n") pairs)
  in
  Fingerprint.digest_hex (String.concat "" lines)

let entry_to_line e =
  Sink.to_string
    (Sink.Obj
       [
         ("record", Str "entry");
         ("key", Str e.key);
         ("kind", Str e.kind);
         ("check", Str (check_of e.body));
         ("body", e.body);
       ])

let entry_of_line line =
  match Sink.of_string line with
  | Error e -> Error e
  | Ok j -> (
    match
      ( Sink.member "record" j,
        Sink.member "key" j,
        Sink.member "kind" j,
        Sink.member "check" j,
        Sink.member "body" j )
    with
    | Some (Str "entry"), Some (Str key), Some (Str kind), Some (Str check), Some body
      ->
      if String.equal check (check_of body) then Ok { key; kind; body }
      else Error "checksum mismatch"
    | _ -> Error "not a store entry record")

(* Raw replay: every non-blank line classified as a verified entry or
   kept verbatim as an invalid line, in file order.  [load] is the
   entries-only view; [compact] needs both halves. *)
let load_classified path =
  if not (Sys.file_exists path) then ([], [])
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go ok bad =
          match input_line ic with
          | exception End_of_file -> (List.rev ok, List.rev bad)
          | line when String.trim line = "" -> go ok bad
          | line -> (
            match entry_of_line line with
            | Ok e -> go (e :: ok) bad
            | Error _ -> go ok (line :: bad))
        in
        go [] [])
  end

let load path =
  let entries, bad = load_classified path in
  (entries, List.length bad)

(* --- compaction ------------------------------------------------------- *)

type compaction = { kept : int; superseded : int; quarantined : int }

let rej_path path = path ^ ".rej"

let fsync_out oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line -> go (line :: acc)
        in
        go [])
  end

let rej_lines path = List.length (read_lines (rej_path path))

(* Rewrite [path] keeping, for each key, only its last verified entry
   (in order of last occurrence, which is what replay reconstructs).
   Lines that fail to parse or verify are appended verbatim to the
   [.rej] sidecar — quarantined for post-mortems, never trusted, never
   recounted on the next open.  The new log is written to a temp file,
   fsynced and renamed over the original, so a crash mid-compaction
   leaves either the old log or the new one, both complete. *)
let compact path =
  let entries, bad = load_classified path in
  if entries = [] && bad = [] then { kept = 0; superseded = 0; quarantined = 0 }
  else begin
    let entries = Array.of_list entries in
    let last = Hashtbl.create 64 in
    Array.iteri (fun i e -> Hashtbl.replace last e.key i) entries;
    let keep = ref [] in
    for i = Array.length entries - 1 downto 0 do
      if Hashtbl.find last entries.(i).key = i then keep := entries.(i) :: !keep
    done;
    let kept = !keep in
    if bad <> [] then begin
      (* Quarantine dedupes: one sidecar copy per distinct line, however
         many compactions re-encounter it, so a repeatedly-compacted
         corrupt log cannot grow the sidecar without bound. *)
      let seen = Hashtbl.create 64 in
      let existing = read_lines (rej_path path) in
      List.iter (fun l -> Hashtbl.replace seen l ()) existing;
      let fresh =
        List.filter
          (fun l ->
            if Hashtbl.mem seen l then false
            else begin
              Hashtbl.replace seen l ();
              true
            end)
          bad
      in
      if fresh <> [] then begin
        let oc =
          open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644
            (rej_path path)
        in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            List.iter
              (fun line ->
                output_string oc line;
                output_char oc '\n')
              fresh;
            fsync_out oc)
      end
    end;
    let tmp = path ^ ".compact.tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        List.iter
          (fun e ->
            output_string oc (entry_to_line e);
            output_char oc '\n')
          kept;
        fsync_out oc);
    Sys.rename tmp path;
    {
      kept = List.length kept;
      superseded = Array.length entries - List.length kept;
      quarantined = List.length bad;
    }
  end

(* --- appending -------------------------------------------------------- *)

(* Fault-injection seam for the chaos harness: when set, every appended
   line passes through the transformer before hitting the disk.  Only
   [Bi_serve.Chaos] installs one; production paths never do. *)
let write_fault : (string -> string) option ref = ref None
let set_write_fault f = write_fault := f

type t = {
  path : string;
  channel : out_channel;
  lock : Mutex.t;
  mutable open_ : bool;
}

let open_append path =
  let channel =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  { path; channel; lock = Mutex.create (); open_ = true }

let path t = t.path

let append t entry =
  let line = entry_to_line entry in
  let line = match !write_fault with None -> line | Some f -> f line in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if not t.open_ then invalid_arg "Store.append: store is closed";
      output_string t.channel line;
      output_char t.channel '\n';
      (* Flush per entry: an append-only log that survives crashes at
         line granularity (a torn final line is skipped on replay). *)
      flush t.channel)

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if t.open_ then begin
        t.open_ <- false;
        close_out t.channel
      end)

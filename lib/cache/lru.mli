(** A string-keyed least-recently-used map with a fixed capacity.

    The in-memory tier of the result cache: O(1) lookup, insertion and
    eviction (hash table over an intrusive recency list).  Not
    thread-safe on its own — {!Service} serializes access. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val evictions : 'a t -> int
(** Number of entries evicted to make room since creation. *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit marks the entry most recently used. *)

val mem : 'a t -> string -> bool
(** Presence test without touching recency. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or replace, marking the entry most recently used; evicts the
    least recently used entry when at capacity. *)

val add_evicting : 'a t -> string -> 'a -> string option
(** Like {!add}, but returns the key evicted to make room (if any), so
    callers mirroring the resident key set — e.g. {!Service}'s digest
    view — can stay exactly in sync.  A replace never evicts. *)

val fold : ('acc -> string -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Folds over entries from most to least recently used. *)

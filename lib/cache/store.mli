(** Append-only on-disk result store (JSON lines).

    One self-describing record per line:
    [{"record": "entry", "key": ..., "kind": ..., "check": md5(body),
      "body": ...}].  Entries are flushed as written, so warm state
    survives restarts and crashes at line granularity.  {!load} replays
    a file and verifies each entry's checksum against the canonical
    re-rendering of its body; lines that fail to parse or verify
    (including a torn final line from a crash) are counted and skipped,
    never trusted. *)

type entry = {
  key : string;  (** Cache key — fingerprint, or fingerprint/query. *)
  kind : string;  (** Payload discriminator, e.g. ["analysis"]. *)
  body : Bi_engine.Sink.json;
}

val entry_to_line : entry -> string
val entry_of_line : string -> (entry, string) result

val load : string -> entry list * int
(** [load path] replays the file in append order: verified entries (a
    later entry for the same key supersedes an earlier one when loaded
    into the cache) and the count of invalid lines skipped.  A missing
    file is an empty store. *)

type t

val open_append : string -> t
(** Opens (creating if needed) for appending. *)

val path : t -> string

val append : t -> entry -> unit
(** Writes one entry line and flushes.  Thread-safe. *)

val close : t -> unit
(** Idempotent. *)

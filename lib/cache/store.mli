(** Append-only on-disk result store (JSON lines).

    One self-describing record per line:
    [{"record": "entry", "key": ..., "kind": ..., "check": md5(body),
      "body": ...}].  Entries are flushed as written, so warm state
    survives restarts and crashes at line granularity.  {!load} replays
    a file and verifies each entry's checksum against the canonical
    re-rendering of its body; lines that fail to parse or verify
    (including a torn final line from a crash) are counted and skipped,
    never trusted. *)

type entry = {
  key : string;  (** Cache key — fingerprint, or fingerprint/query. *)
  kind : string;  (** Payload discriminator, e.g. ["analysis"]. *)
  body : Bi_engine.Sink.json;
}

val entry_to_line : entry -> string
val entry_of_line : string -> (entry, string) result

val check_of : Bi_engine.Sink.json -> string
(** md5 (hex) of the canonical rendering of a body — the [check] field
    written on every entry line and the per-key digest the repair
    machinery compares across replicas. *)

val buckets : int
(** Number of digest buckets (256). *)

val bucket_of_key : string -> int
(** Bucket a key belongs to: the first byte of its MD5. *)

val bucket_digest : (string * string) list -> string
(** Canonical digest of one bucket's [(key, check)] pairs: md5 of the
    sorted ["key:check"] lines, independent of pair order. *)

val load : string -> entry list * int
(** [load path] replays the file in append order: verified entries (a
    later entry for the same key supersedes an earlier one when loaded
    into the cache) and the count of invalid lines skipped.  A missing
    file is an empty store. *)

type compaction = {
  kept : int;  (** Entries surviving into the compacted log. *)
  superseded : int;  (** Valid entries dropped as stale duplicates. *)
  quarantined : int;  (** Invalid lines moved to the [.rej] sidecar. *)
}

val rej_path : string -> string
(** The quarantine sidecar for a store path: [path ^ ".rej"]. *)

val rej_lines : string -> int
(** Number of quarantined lines in the sidecar for a store path (0 when
    absent). *)

val compact : string -> compaction
(** [compact path] rewrites the log keeping only the last verified
    entry per key (in order of last occurrence, matching what replay
    reconstructs), appends every unverifiable line verbatim to
    {!rej_path} and atomically renames the rewritten log into place
    (temp file + fsync + rename), so a crash mid-compaction never loses
    a valid entry.  Must not race a live {!t} appending to the same
    path — compact before {!open_append}. *)

val set_write_fault : (string -> string) option -> unit
(** Process-global fault-injection seam used by the chaos harness:
    when set, {!append} passes each rendered line through the
    transformer before writing.  [None] (the default) is the identity.
    Never set in production paths. *)

type t

val open_append : string -> t
(** Opens (creating if needed) for appending. *)

val path : t -> string

val append : t -> entry -> unit
(** Writes one entry line and flushes.  Thread-safe. *)

val close : t -> unit
(** Idempotent. *)

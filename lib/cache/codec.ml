open Bi_num
module Graph = Bi_graph.Graph
module Dist = Bi_prob.Dist
module Measures = Bi_bayes.Measures
module Bncs = Bi_ncs.Bayesian_ncs
module Sink = Bi_engine.Sink

let ( let* ) = Result.bind

let error fmt = Printf.ksprintf (fun s -> Error s) fmt

(* --- exact rationals as strings --- *)

let rat_of_string s =
  match String.index_opt s '/' with
  | None -> (
    match Bigint.of_string s with
    | n -> Ok (Rat.of_bigint n)
    | exception Invalid_argument _ -> error "invalid rational %S" s)
  | Some i -> (
    let num = String.sub s 0 i in
    let den = String.sub s (i + 1) (String.length s - i - 1) in
    match (Bigint.of_string num, Bigint.of_string den) with
    | n, d when not (Bigint.is_zero d) -> Ok (Rat.make n d)
    | _ -> error "invalid rational %S (zero denominator)" s
    | exception Invalid_argument _ -> error "invalid rational %S" s)

let rat_to_json r = Sink.Str (Rat.to_string r)

let rat_of_json = function
  | Sink.Str s -> rat_of_string s
  | j -> error "expected a rational string, got %s" (Sink.to_string j)

let ext_to_json = function
  | Extended.Fin r -> rat_to_json r
  | Extended.Inf -> Sink.Str "inf"

let ext_of_json = function
  | Sink.Str "inf" -> Ok Extended.Inf
  | j -> Result.map (fun r -> Extended.Fin r) (rat_of_json j)

let opt_to_json f = function None -> Sink.Null | Some v -> f v

let opt_of_json f = function
  | Sink.Null -> Ok None
  | j -> Result.map Option.some (f j)

(* --- strategy profiles: player -> type -> action index --- *)

let profile_to_json p =
  Sink.List
    (Array.to_list
       (Array.map
          (fun row -> Sink.List (Array.to_list (Array.map (fun a -> Sink.Int a) row)))
          p))

let profile_of_json j =
  let row = function
    | Sink.List cells ->
      let rec ints acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | Sink.Int a :: rest -> ints (a :: acc) rest
        | c :: _ -> error "expected an action index, got %s" (Sink.to_string c)
      in
      ints [] cells
    | c -> error "expected a strategy row, got %s" (Sink.to_string c)
  in
  match j with
  | Sink.List rows ->
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | r :: rest ->
        let* r = row r in
        go (r :: acc) rest
    in
    go [] rows
  | j -> error "expected a strategy profile, got %s" (Sink.to_string j)

(* --- ignorance reports and full analyses --- *)

let report_to_json (r : Measures.report) =
  Sink.Obj
    [
      ("opt_p", ext_to_json r.Measures.opt_p);
      ("best_eq_p", opt_to_json ext_to_json r.Measures.best_eq_p);
      ("worst_eq_p", opt_to_json ext_to_json r.Measures.worst_eq_p);
      ("opt_c", ext_to_json r.Measures.opt_c);
      ("best_eq_c", opt_to_json ext_to_json r.Measures.best_eq_c);
      ("worst_eq_c", opt_to_json ext_to_json r.Measures.worst_eq_c);
    ]

let field name j =
  match Sink.member name j with
  | Some v -> Ok v
  | None -> error "missing field %S" name

let report_of_json j =
  let* opt_p = Result.bind (field "opt_p" j) ext_of_json in
  let* best_eq_p = Result.bind (field "best_eq_p" j) (opt_of_json ext_of_json) in
  let* worst_eq_p = Result.bind (field "worst_eq_p" j) (opt_of_json ext_of_json) in
  let* opt_c = Result.bind (field "opt_c" j) ext_of_json in
  let* best_eq_c = Result.bind (field "best_eq_c" j) (opt_of_json ext_of_json) in
  let* worst_eq_c = Result.bind (field "worst_eq_c" j) (opt_of_json ext_of_json) in
  Ok { Measures.opt_p; best_eq_p; worst_eq_p; opt_c; best_eq_c; worst_eq_c }

let analysis_to_json (a : Bncs.analysis) =
  Sink.Obj
    [
      ("report", report_to_json a.Bncs.report);
      ("opt_p_witness", profile_to_json a.Bncs.opt_p_witness);
      ("best_eq_p_witness", opt_to_json profile_to_json a.Bncs.best_eq_p_witness);
      ( "worst_eq_p_witness",
        opt_to_json profile_to_json a.Bncs.worst_eq_p_witness );
    ]

let analysis_of_json j =
  let* report = Result.bind (field "report" j) report_of_json in
  let* opt_p_witness = Result.bind (field "opt_p_witness" j) profile_of_json in
  let* best_eq_p_witness =
    Result.bind (field "best_eq_p_witness" j) (opt_of_json profile_of_json)
  in
  let* worst_eq_p_witness =
    Result.bind (field "worst_eq_p_witness" j) (opt_of_json profile_of_json)
  in
  Ok { Bncs.report; opt_p_witness; best_eq_p_witness; worst_eq_p_witness }

(* --- game descriptions (graph + prior), both directions --- *)

let game_to_json graph ~prior =
  let edges =
    List.map
      (fun e ->
        Sink.List
          [ Sink.Int e.Graph.src; Sink.Int e.Graph.dst; rat_to_json e.Graph.cost ])
      (Graph.edges graph)
  in
  let prior_entries =
    List.map
      (fun (pairs, w) ->
        Sink.Obj
          [
            ( "types",
              Sink.List
                (List.map
                   (fun (x, y) -> Sink.List [ Sink.Int x; Sink.Int y ])
                   (Array.to_list pairs)) );
            ("weight", rat_to_json w);
          ])
      (Dist.to_list prior)
  in
  Sink.Obj
    [
      ( "kind",
        Sink.Str (if Graph.is_directed graph then "directed" else "undirected") );
      ("n", Sink.Int (Graph.n_vertices graph));
      ("edges", Sink.List edges);
      ("prior", Sink.List prior_entries);
    ]

let game_of_json j =
  let* kind =
    match field "kind" j with
    | Ok (Sink.Str "directed") -> Ok Graph.Directed
    | Ok (Sink.Str "undirected") -> Ok Graph.Undirected
    | Ok v -> error "kind must be \"directed\" or \"undirected\", got %s" (Sink.to_string v)
    | Error e -> Error e
  in
  let* n =
    match field "n" j with
    | Ok (Sink.Int n) -> Ok n
    | Ok v -> error "n must be an integer, got %s" (Sink.to_string v)
    | Error e -> Error e
  in
  let* edges =
    match field "edges" j with
    | Ok (Sink.List es) ->
      let edge = function
        | Sink.List [ Sink.Int s; Sink.Int d; c ] ->
          let* c = rat_of_json c in
          Ok (s, d, c)
        | v -> error "edge must be [src, dst, cost], got %s" (Sink.to_string v)
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest ->
          let* e = edge e in
          go (e :: acc) rest
      in
      go [] es
    | Ok v -> error "edges must be a list, got %s" (Sink.to_string v)
    | Error e -> Error e
  in
  let* entries =
    match field "prior" j with
    | Ok (Sink.List entries) ->
      let pair = function
        | Sink.List [ Sink.Int x; Sink.Int y ] -> Ok (x, y)
        | v -> error "type must be [source, destination], got %s" (Sink.to_string v)
      in
      let entry e =
        let* types =
          match field "types" e with
          | Ok (Sink.List ps) ->
            let rec go acc = function
              | [] -> Ok (Array.of_list (List.rev acc))
              | p :: rest ->
                let* p = pair p in
                go (p :: acc) rest
            in
            go [] ps
          | Ok v -> error "types must be a list of pairs, got %s" (Sink.to_string v)
          | Error e -> Error e
        in
        let* weight = Result.bind (field "weight" e) rat_of_json in
        Ok (types, weight)
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest ->
          let* e = entry e in
          go (e :: acc) rest
      in
      go [] entries
    | Ok v -> error "prior must be a list, got %s" (Sink.to_string v)
    | Error e -> Error e
  in
  match (Graph.make kind ~n edges, Dist.make entries) with
  | graph, prior -> Ok (graph, prior)
  | exception Invalid_argument msg -> error "invalid game description: %s" msg
  | exception Division_by_zero -> Error "invalid game description: zero denominator"

open Bi_num
module Bayesian = Bi_bayes.Bayesian
module Bncs = Bi_ncs.Bayesian_ncs
module Dist = Bi_prob.Dist
module Graph = Bi_graph.Graph
module Budget = Bi_engine.Budget

type certificate = {
  profile : Bayesian.strategy_profile;
  value : Extended.t;
  variables : (int * int) array;
  ledger : (int array * Rat.t) list;
  nodes : int;
}

type outcome = {
  value : Extended.t;
  profile : Bayesian.strategy_profile;
  certificate : certificate option;
  lower : Extended.t;
  nodes : int;
}

(* Everything the bound needs, shared verbatim between the search and
   the certificate replay so both price nodes identically. *)
type env = {
  players : int;
  n_types : int array;
  vars : (int * int) array;
  states : (int array * Rat.t) array;
  n_edges : int;
  edge_cost : Rat.t array;
  paths : int array array array; (* player -> action -> edge ids *)
  valid : int array array array; (* player -> type -> valid actions *)
  (* DFS scratch *)
  count : int array array; (* state -> edge -> committed load *)
  state_cost : Rat.t array; (* state -> committed union cost *)
  m : int array; (* per-edge remaining-agent multiplicity *)
  stamp : int array; (* agent-dedup marks for [m] *)
  tok : int ref;
  (* Reusable rational accumulators, one per nesting level of the bound
     (path sum inside share sum inside the weighted total), so pricing a
     node allocates no intermediate rationals.  [env] is per-call and
     single-domain, so plain mutation is safe. *)
  pacc : Rat.Acc.t;
  sacc : Rat.Acc.t;
  tacc : Rat.Acc.t;
}

let make_env g =
  let bg = Bncs.game g in
  let players = Bayesian.players bg in
  let n_types = Array.init players (Bayesian.n_types bg) in
  let vars =
    let all = ref [] in
    for i = players - 1 downto 0 do
      let marg = Bayesian.type_marginal bg i in
      for ti = Array.length marg - 1 downto 0 do
        if Stdlib.(Rat.sign marg.(ti) > 0) then
          all := ((i, ti), marg.(ti)) :: !all
      done
    done;
    let arr = Array.of_list !all in
    Array.stable_sort (fun (_, a) (_, b) -> Rat.compare b a) arr;
    Array.map fst arr
  in
  let states = Array.of_list (Dist.to_list (Bayesian.prior bg)) in
  let graph = Bncs.graph g in
  let n_edges = Graph.n_edges graph in
  { players; n_types; vars; states; n_edges;
    edge_cost = Array.init n_edges (Graph.cost graph);
    paths =
      Array.init players (fun i -> Array.map Array.of_list (Bncs.actions g i));
    valid =
      Array.init players (fun i ->
          Array.init n_types.(i) (fun ti ->
              Array.of_list (Bncs.valid_actions g i ti)));
    count = Array.make_matrix (Array.length states) n_edges 0;
    state_cost = Array.make (Array.length states) Rat.zero;
    m = Array.make n_edges 0;
    stamp = Array.make n_edges (-1);
    tok = ref 0;
    pacc = Rat.Acc.create ();
    sacc = Rat.Acc.create ();
    tacc = Rat.Acc.create () }

let realized env s i ti = (fst env.states.(s)).(i) = ti

let commit env i ti a =
  let path = env.paths.(i).(a) in
  for s = 0 to Array.length env.states - 1 do
    if realized env s i ti then
      Array.iter
        (fun e ->
          let c = env.count.(s) in
          c.(e) <- c.(e) + 1;
          if c.(e) = 1 then
            env.state_cost.(s) <- Rat.add env.state_cost.(s) env.edge_cost.(e))
        path
  done

let uncommit env i ti a =
  let path = env.paths.(i).(a) in
  for s = 0 to Array.length env.states - 1 do
    if realized env s i ti then
      Array.iter
        (fun e ->
          let c = env.count.(s) in
          c.(e) <- c.(e) - 1;
          if c.(e) = 0 then
            env.state_cost.(s) <- Rat.sub env.state_cost.(s) env.edge_cost.(e))
        path
  done

(* Cheapest valid path of (i, ti) priced on uncommitted edges in state
   [s] — at full cost, or at the [1/m(e)] fractional share. *)
let min_discounted env s i ti ~share =
  let best = ref None in
  Array.iter
    (fun a ->
      Rat.Acc.clear env.pacc;
      Array.iter
        (fun e ->
          if env.count.(s).(e) = 0 then begin
            if share then Rat.Acc.add_div_int env.pacc env.edge_cost.(e) env.m.(e)
            else Rat.Acc.add env.pacc env.edge_cost.(e)
          end)
        env.paths.(i).(a);
      let acc = Rat.Acc.to_rat env.pacc in
      match !best with
      | Some b when Rat.(b <= acc) -> ()
      | _ -> best := Some acc)
    env.valid.(i).(ti);
  match !best with Some b -> b | None -> Rat.zero

let bound env depth =
  let nvars = Array.length env.vars in
  Rat.Acc.clear env.tacc;
  for s = 0 to Array.length env.states - 1 do
    let _, w = env.states.(s) in
    Array.fill env.m 0 env.n_edges 0;
    for v = depth to nvars - 1 do
      let i, ti = env.vars.(v) in
      if realized env s i ti then begin
        incr env.tok;
        let t = !(env.tok) in
        Array.iter
          (fun a ->
            Array.iter
              (fun e ->
                if env.count.(s).(e) = 0 && env.stamp.(e) <> t then begin
                  env.stamp.(e) <- t;
                  env.m.(e) <- env.m.(e) + 1
                end)
              env.paths.(i).(a))
          env.valid.(i).(ti)
      end
    done;
    let single = ref Rat.zero in
    Rat.Acc.clear env.sacc;
    for v = depth to nvars - 1 do
      let i, ti = env.vars.(v) in
      if realized env s i ti then begin
        single := Rat.max !single (min_discounted env s i ti ~share:false);
        Rat.Acc.add env.sacc (min_discounted env s i ti ~share:true)
      end
    done;
    let share = Rat.Acc.to_rat env.sacc in
    (* w*(state_cost + tail) folded as two fused multiply-adds. *)
    Rat.Acc.add_mul env.tacc w env.state_cost.(s);
    Rat.Acc.add_mul env.tacc w (Rat.max !single share)
  done;
  Rat.Acc.to_rat env.tacc

let leaf_value env =
  Rat.Acc.clear env.tacc;
  Array.iteri
    (fun s (_, w) -> Rat.Acc.add_mul env.tacc w env.state_cost.(s))
    env.states;
  Rat.Acc.to_rat env.tacc

let base_profile env =
  Array.init env.players (fun i ->
      Array.init env.n_types.(i) (fun ti -> env.valid.(i).(ti).(0)))

let profile_of env choice =
  let p = base_profile env in
  Array.iteri (fun v (i, ti) -> p.(i).(ti) <- choice.(v)) env.vars;
  p

let default_incumbent g =
  let bg = Bncs.game g in
  let s = Bayesian.benevolent_descent bg (Bncs.shortest_path_profile g) in
  (Bncs.social_cost g s, s)

let optimum ?(budget = Budget.unlimited) ?(node_budget = 5_000_000) ?incumbent
    g =
  let env = make_env g in
  let inc_value, inc_profile =
    match incumbent with Some vp -> vp | None -> default_incumbent g
  in
  let best_val = ref inc_value
  and best_profile = ref inc_profile
  and ledger = ref []
  and nodes = ref 0
  and exhausted = ref true in
  let nvars = Array.length env.vars in
  let choice = Array.make (Stdlib.max nvars 1) (-1) in
  let lower = bound env 0 in
  let rec go depth =
    if depth = nvars then begin
      let v = Extended.of_rat (leaf_value env) in
      if Extended.(v < !best_val) then begin
        best_val := v;
        best_profile := profile_of env choice
      end
    end
    else begin
      let i, ti = env.vars.(depth) in
      Array.iter
        (fun a ->
          if !exhausted then begin
            Budget.check budget;
            incr nodes;
            if !nodes > node_budget then exhausted := false
            else begin
              commit env i ti a;
              choice.(depth) <- a;
              let b = bound env (depth + 1) in
              if Extended.(Extended.of_rat b < !best_val) then go (depth + 1)
              else ledger := (Array.sub choice 0 (depth + 1), b) :: !ledger;
              uncommit env i ti a
            end
          end)
        env.valid.(i).(ti)
    end
  in
  go 0;
  let value = !best_val and profile = !best_profile in
  let certificate =
    if !exhausted then
      Some
        { profile; value; variables = env.vars; ledger = List.rev !ledger;
          nodes = !nodes }
    else None
  in
  { value; profile; certificate; lower = Extended.of_rat lower;
    nodes = !nodes }

let root_lower g = Extended.of_rat (bound (make_env g) 0)

(* Ledger prefixes share their leading choices, and the polymorphic
   hash only inspects a bounded prefix of a key — hashing them as lists
   collapses a deep replay's ledger into a handful of buckets and turns
   every lookup into a linear scan.  Fold the whole prefix instead. *)
module Prefix = struct
  type t = int array

  let equal = Stdlib.( = )

  let hash p =
    let h = ref (Array.length p) in
    Array.iter (fun a -> h := (!h * 31) + a + 1) p;
    !h land max_int
end

module Ptbl = Hashtbl.Make (Prefix)

exception Fail of string

let shape_check env profile =
  if Array.length profile <> env.players then
    raise (Fail "witness has the wrong number of players");
  Array.iteri
    (fun i row ->
      if Array.length row <> env.n_types.(i) then
        raise (Fail (Printf.sprintf "witness player %d: wrong type count" i));
      Array.iter
        (fun ai ->
          if ai < 0 || ai >= Array.length env.paths.(i) then
            raise
              (Fail (Printf.sprintf "witness player %d: action out of range" i)))
        row)
    profile

let check g cert =
  let env = make_env g in
  try
    if env.vars <> cert.variables then
      raise (Fail "branching order differs from the game's");
    shape_check env cert.profile;
    if not (Extended.equal (Bncs.social_cost g cert.profile) cert.value) then
      raise (Fail "certified value differs from the witness's social cost");
    let value_rat =
      match Extended.to_rat_opt cert.value with
      | Some v -> v
      | None -> raise (Fail "certified value must be finite")
    in
    let tbl = Ptbl.create (List.length cert.ledger) in
    List.iter
      (fun (p, b) ->
        if Ptbl.mem tbl p then raise (Fail "duplicate ledger prefix");
        Ptbl.add tbl p b)
      cert.ledger;
    let cap = (cert.nodes * 10) + 1000 in
    let visited = ref 0 in
    let nvars = Array.length env.vars in
    let choice = Array.make (Stdlib.max nvars 1) (-1) in
    let rec go depth =
      if depth = nvars then begin
        if Rat.(leaf_value env < value_rat) then
          raise (Fail "a leaf beats the certified value")
      end
      else begin
        let i, ti = env.vars.(depth) in
        Array.iter
          (fun a ->
            incr visited;
            if !visited > cap then raise (Fail "replay exceeded the node cap");
            commit env i ti a;
            choice.(depth) <- a;
            (match Ptbl.find_opt tbl (Array.sub choice 0 (depth + 1)) with
            | Some b ->
              if not (Rat.equal b (bound env (depth + 1))) then
                raise (Fail "a ledger bound differs from its recomputation");
              if Rat.(b < value_rat) then
                raise (Fail "a ledger bound fails to dominate the value")
            | None -> go (depth + 1));
            uncommit env i ti a)
          env.valid.(i).(ti)
      end
    in
    go 0;
    Ok ()
  with Fail e -> Error e

open Bi_num
module Bayesian = Bi_bayes.Bayesian
module Bncs = Bi_ncs.Bayesian_ncs
module Budget = Bi_engine.Budget
module Pool = Bi_engine.Pool

type margin = {
  player : int;
  typ : int;
  action : int;
  alternative : int;
  slack : Rat.t;
}

type certificate = {
  profile : Bayesian.strategy_profile;
  value : Extended.t;
  margins : margin list;
}

let copy_profile = Array.map Array.copy

let shape_error g s =
  let bg = Bncs.game g in
  let players = Bayesian.players bg in
  if Array.length s <> players then
    Some
      (Printf.sprintf "profile has %d players, game has %d" (Array.length s)
         players)
  else begin
    let err = ref None in
    for i = 0 to players - 1 do
      if !err = None then
        if Array.length s.(i) <> Bayesian.n_types bg i then
          err :=
            Some
              (Printf.sprintf "player %d: %d strategies for %d types" i
                 (Array.length s.(i)) (Bayesian.n_types bg i))
        else
          Array.iteri
            (fun ti ai ->
              if !err = None && (ai < 0 || ai >= Bayesian.n_actions bg i) then
                err :=
                  Some
                    (Printf.sprintf "player %d type %d: action %d out of range"
                       i ti ai))
            s.(i)
    done;
    !err
  end

exception Bad of string

(* Interim cost of playing [ai] at (i, ti) against the rest of [s],
   through the generic lowered game; [s] is mutated and restored, so
   every caller works on a private copy. *)
let interim_at bg s i ti ai =
  let saved = s.(i).(ti) in
  s.(i).(ti) <- ai;
  let c = Bayesian.interim_cost bg s i ti in
  s.(i).(ti) <- saved;
  c

(* The canonical margin list of [s]: (player, type, alternative) in
   index order, valid alternatives only, slacks of either sign.  Raises
   [Bad] when an interim cost that must be finite is not. *)
let margins_exn g s =
  let bg = Bncs.game g in
  let out = ref [] in
  for i = 0 to Bayesian.players bg - 1 do
    for ti = 0 to Bayesian.n_types bg i - 1 do
      match Bayesian.interim_cost bg s i ti with
      | None -> () (* zero marginal: no equilibrium constraint *)
      | Some current ->
        let current =
          match Extended.to_rat_opt current with
          | Some c -> c
          | None ->
            raise
              (Bad
                 (Printf.sprintf "player %d type %d: infinite interim cost" i
                    ti))
        in
        List.iter
          (fun alt ->
            if alt <> s.(i).(ti) then
              match interim_at bg s i ti alt with
              | Some c' -> (
                match Extended.to_rat_opt c' with
                | Some c' ->
                  out :=
                    { player = i; typ = ti; action = s.(i).(ti);
                      alternative = alt; slack = Rat.sub c' current }
                    :: !out
                | None ->
                  raise
                    (Bad
                       (Printf.sprintf
                          "player %d type %d: valid alternative %d has \
                           infinite interim cost"
                          i ti alt)))
              | None -> raise (Bad "inconsistent type marginals"))
          (Bncs.valid_actions g i ti)
    done
  done;
  List.rev !out

let certificate g s =
  match shape_error g s with
  | Some e -> Error e
  | None -> (
    let s = copy_profile s in
    match margins_exn g s with
    | exception Bad e -> Error e
    | margins -> (
      match
        List.find_opt (fun m -> Stdlib.(Rat.sign m.slack < 0)) margins
      with
      | Some m ->
        Error
          (Printf.sprintf
             "not an equilibrium: player %d type %d improves by switching \
              action %d -> %d"
             m.player m.typ m.action m.alternative)
      | None -> Ok { profile = s; value = Bncs.social_cost g s; margins }))

let check g cert =
  match shape_error g cert.profile with
  | Some e -> Error e
  | None ->
    let s = copy_profile cert.profile in
    if not (Extended.equal (Bncs.social_cost g s) cert.value) then
      Error "certificate value differs from the recomputed social cost"
    else (
      match margins_exn g s with
      | exception Bad e -> Error e
      | expect ->
        let same a b =
          a.player = b.player && a.typ = b.typ && a.action = b.action
          && a.alternative = b.alternative
          && Rat.equal a.slack b.slack
        in
        if
          List.length expect <> List.length cert.margins
          || not (List.for_all2 same expect cert.margins)
        then Error "margin list differs from the canonical recomputation"
        else (
          match
            List.find_opt (fun m -> Stdlib.(Rat.sign m.slack < 0)) expect
          with
          | Some m ->
            Error
              (Printf.sprintf "negative slack at player %d type %d" m.player
                 m.typ)
          | None -> Ok ()))

let step g s =
  let bg = Bncs.game g in
  let players = Bayesian.players bg in
  let rec go i ti =
    if i >= players then None
    else if ti >= Bayesian.n_types bg i then go (i + 1) 0
    else
      match Bayesian.best_type_deviation bg s i ti with
      | Some (ai', _) -> Some (i, ti, ai')
      | None -> go i (ti + 1)
  in
  go 0 0

let descend ?(budget = Budget.unlimited) ?(max_steps = 200_000) g start =
  let s = copy_profile start in
  let rec go steps =
    if steps > max_steps then None
    else begin
      Budget.check budget;
      match step g s with
      | None -> Some s
      | Some (i, ti, ai') ->
        s.(i).(ti) <- ai';
        go (steps + 1)
    end
  in
  go 0

let starts ?(seeds = 4) g =
  let bg = Bncs.game g in
  let players = Bayesian.players bg in
  let profile_of f =
    Array.init players (fun i ->
        Array.init (Bayesian.n_types bg i) (fun ti -> f i ti))
  in
  let max_valid = ref 1 in
  for i = 0 to players - 1 do
    for ti = 0 to Bayesian.n_types bg i - 1 do
      max_valid :=
        Stdlib.max !max_valid (List.length (Bncs.valid_actions g i ti))
    done
  done;
  let nth_valid j i ti =
    let vs = Bncs.valid_actions g i ti in
    List.nth vs (Stdlib.min j (List.length vs - 1))
  in
  let uniform = List.init !max_valid (fun j -> profile_of (nth_valid j)) in
  let sp = Bncs.shortest_path_profile g in
  let benevolent = Bayesian.benevolent_descent bg sp in
  (* Fixed-stream pseudo-random valid profiles (an LCG on the native
     int), so the seed set is identical across runs and pool sizes. *)
  let random seed =
    let state = ref ((seed + 1) * 0x9E3779B9) in
    profile_of (fun i ti ->
        let vs = Array.of_list (Bncs.valid_actions g i ti) in
        state := (!state * 25214903917) + 11;
        let r = (!state lsr 17) land 0x3FFFFFFF in
        vs.(r mod Array.length vs))
  in
  let rand = List.init seeds random in
  let dedup acc s = if List.exists (( = ) s) acc then acc else s :: acc in
  List.rev (List.fold_left dedup [] ((sp :: benevolent :: uniform) @ rand))

let equilibria ?pool ?budget ?seeds ?(extra = []) g =
  let ss = Array.of_list (starts ?seeds g @ List.map copy_profile extra) in
  let run s = descend ?budget g s in
  let fixpoints =
    match pool with
    | Some p -> Pool.map_array p run ss
    | None -> Array.map run ss
  in
  let distinct =
    Array.fold_left
      (fun acc -> function
        | None -> acc
        | Some s -> if List.exists (( = ) s) acc then acc else s :: acc)
      [] fixpoints
    |> List.rev
  in
  let certs =
    List.filter_map
      (fun s -> match certificate g s with Ok c -> Some c | Error _ -> None)
      distinct
  in
  let sorted =
    List.stable_sort (fun a b -> Extended.compare a.value b.value) certs
  in
  (sorted, Array.length ss)

open Bi_num
module Bncs = Bi_ncs.Bayesian_ncs
module Dist = Bi_prob.Dist
module Measures = Bi_bayes.Measures
module Sink = Bi_engine.Sink

type bracket = { lo : Extended.t; hi : Extended.t }

type state_solution = {
  pairs : (int * int) array;
  weight : Rat.t;
  opt : Bnb.outcome;
  equilibria : Descent.certificate list;
}

type certified = {
  players : int;
  smoothness : Smooth.smoothness;
  potential : Smooth.potential_bracket;
  opt_p : Bnb.outcome;
  eq_p : Descent.certificate list;
  descent_starts : int;
  states : state_solution list;
  opt_p_bracket : bracket;
  best_eq_p : bracket;
  worst_eq_p : bracket;
  opt_c : bracket;
  best_eq_c : bracket;
  worst_eq_c : bracket;
}

(* ---- bracket derivation, shared verbatim by certify and check ---- *)

let opt_bracket (o : Bnb.outcome) =
  match o.certificate with
  | Some _ -> { lo = o.value; hi = o.value }
  | None -> { lo = o.lower; hi = o.value }

let best_witness = function
  | [] -> None
  | (c : Descent.certificate) :: _ -> Some c.value

let worst_witness eqs =
  match List.rev eqs with
  | [] -> None
  | (c : Descent.certificate) :: _ -> Some c.value

let eq_brackets ~opt ~eqs ~poa ~pos =
  let best_analytic = Extended.mul_rat pos opt.hi in
  let best =
    { lo = opt.lo;
      hi =
        (match best_witness eqs with
        | Some w -> Extended.min w best_analytic
        | None -> best_analytic) }
  in
  let worst =
    { lo = (match worst_witness eqs with Some w -> w | None -> opt.lo);
      hi = Extended.mul_rat poa opt.hi }
  in
  (best, worst)

let zero_bracket = { lo = Extended.zero; hi = Extended.zero }
let scale w b = { lo = Extended.mul_rat w b.lo; hi = Extended.mul_rat w b.hi }
let add a b = { lo = Extended.add a.lo b.lo; hi = Extended.add a.hi b.hi }

let derive ~smoothness ~potential ~opt_p ~eq_p ~states =
  let poa = Smooth.poa_factor smoothness in
  let pos = potential.Smooth.upper in
  let opt_pb = opt_bracket opt_p in
  let best_p, worst_p = eq_brackets ~opt:opt_pb ~eqs:eq_p ~poa ~pos in
  let opt_c, best_c, worst_c =
    List.fold_left
      (fun (o, b, w) st ->
        let ob = opt_bracket st.opt in
        let bb, wb = eq_brackets ~opt:ob ~eqs:st.equilibria ~poa ~pos in
        ( add o (scale st.weight ob),
          add b (scale st.weight bb),
          add w (scale st.weight wb) ))
      (zero_bracket, zero_bracket, zero_bracket)
      states
  in
  (opt_pb, best_p, worst_p, opt_c, best_c, worst_c)

(* ---- certify ---- *)

let by_value (a : Descent.certificate) (b : Descent.certificate) =
  Extended.compare a.value b.value

(* Descend the branch-and-bound witness too, so the equilibrium set
   sees the optimum's basin of attraction. *)
let with_opt_witness ?budget g (eqs, starts) (opt : Bnb.outcome) =
  match Descent.descend ?budget g opt.profile with
  | None -> (eqs, starts)
  | Some fixpoint -> (
    match Descent.certificate g fixpoint with
    | Error _ -> (eqs, starts + 1)
    | Ok c ->
      if
        List.exists
          (fun (e : Descent.certificate) -> e.profile = c.profile)
          eqs
      then (eqs, starts + 1)
      else (List.stable_sort by_value (c :: eqs), starts + 1))

let solve_game ?pool ?budget ?seeds ?node_budget g =
  let eqs, starts = Descent.equilibria ?pool ?budget ?seeds g in
  let incumbent =
    match eqs with
    | (c : Descent.certificate) :: _ -> Some (c.value, c.profile)
    | [] -> None
  in
  let opt = Bnb.optimum ?budget ?node_budget ?incumbent g in
  let eqs, starts = with_opt_witness ?budget g (eqs, starts) opt in
  (opt, eqs, starts)

let certify ?pool ?budget ?seeds ?node_budget g =
  let players = Bncs.players g in
  (* One hash-cons table per certification: the smoothness grid, the
     potential bracket and every per-state re-derivation intern their
     recurring rationals here, sharing one canonical H(k) chain. *)
  let hc = Rat.Hc.create () in
  let smoothness = Smooth.fair_share ~hc ~players () in
  let potential = Smooth.potential ~hc ~players () in
  let opt_p, eq_p, descent_starts =
    solve_game ?pool ?budget ?seeds ?node_budget g
  in
  let states =
    List.map
      (fun (pairs, weight) ->
        let pg = Bncs.make (Bncs.graph g) ~prior:(Dist.point pairs) in
        let opt, equilibria, _ =
          solve_game ?pool ?budget ?seeds ?node_budget pg
        in
        { pairs; weight; opt; equilibria })
      (Dist.to_list (Bncs.prior g))
  in
  let opt_p_bracket, best_eq_p, worst_eq_p, opt_c, best_eq_c, worst_eq_c =
    derive ~smoothness ~potential ~opt_p ~eq_p ~states
  in
  { players; smoothness; potential; opt_p; eq_p; descent_starts; states;
    opt_p_bracket; best_eq_p; worst_eq_p; opt_c; best_eq_c; worst_eq_c }

(* ---- check ---- *)

let ( let* ) = Result.bind

let check_outcome g label (o : Bnb.outcome) =
  let* () =
    if Extended.equal o.lower (Bnb.root_lower g) then Ok ()
    else Error (label ^ ": stored root bound differs from its recomputation")
  in
  match o.certificate with
  | Some c ->
    let* () =
      if Extended.equal c.value o.value then Ok ()
      else Error (label ^ ": certificate and outcome disagree on the value")
    in
    Result.map_error (fun e -> label ^ ": " ^ e) (Bnb.check g c)
  | None ->
    (* no optimality claim: the value must still be witnessed *)
    if Extended.equal (Bncs.social_cost g o.profile) o.value then Ok ()
    else Error (label ^ ": incumbent value differs from its social cost")

let check_equilibria g label eqs =
  let rec go prev = function
    | [] -> Ok ()
    | (c : Descent.certificate) :: rest ->
      let* () = Result.map_error (fun e -> label ^ ": " ^ e) (Descent.check g c) in
      let* () =
        match prev with
        | Some v when Stdlib.(Extended.compare v c.value > 0) ->
          Error (label ^ ": equilibria are not sorted by value")
        | _ -> Ok ()
      in
      go (Some c.value) rest
  in
  go None eqs

let bracket_equal a b = Extended.equal a.lo b.lo && Extended.equal a.hi b.hi

let check g cert =
  let players = Bncs.players g in
  let* () =
    if cert.players = players then Ok ()
    else Error "player count differs from the game's"
  in
  let* () =
    if cert.smoothness.Smooth.players = players then Ok ()
    else Error "smoothness factor is for a different player count"
  in
  let* () =
    if cert.potential.Smooth.players = players then Ok ()
    else Error "potential bracket is for a different player count"
  in
  let hc = Rat.Hc.create () in
  let* () = Smooth.check ~hc cert.smoothness in
  let* () = Smooth.check_potential ~hc cert.potential in
  let* () = check_outcome g "optP" cert.opt_p in
  let* () = check_equilibria g "eqP" cert.eq_p in
  let support = Dist.to_list (Bncs.prior g) in
  let* () =
    if List.length support = List.length cert.states then Ok ()
    else Error "state decomposition does not cover the prior support"
  in
  let* () =
    List.fold_left2
      (fun acc (pairs, weight) st ->
        let* () = acc in
        let* () =
          if st.pairs = pairs && Rat.equal st.weight weight then Ok ()
          else Error "state decomposition disagrees with the prior"
        in
        let pg = Bncs.make (Bncs.graph g) ~prior:(Dist.point pairs) in
        let* () = check_outcome pg "optC state" st.opt in
        check_equilibria pg "eqC state" st.equilibria)
      (Ok ()) support cert.states
  in
  let opt_pb, best_p, worst_p, opt_c, best_c, worst_c =
    derive ~smoothness:cert.smoothness ~potential:cert.potential
      ~opt_p:cert.opt_p ~eq_p:cert.eq_p ~states:cert.states
  in
  let pairs =
    [ ("optP", opt_pb, cert.opt_p_bracket);
      ("best-eqP", best_p, cert.best_eq_p);
      ("worst-eqP", worst_p, cert.worst_eq_p);
      ("optC", opt_c, cert.opt_c);
      ("best-eqC", best_c, cert.best_eq_c);
      ("worst-eqC", worst_c, cert.worst_eq_c) ]
  in
  List.fold_left
    (fun acc (name, derived, stored) ->
      let* () = acc in
      if bracket_equal derived stored then Ok ()
      else Error (name ^ " bracket differs from its re-derivation"))
    (Ok ()) pairs

(* ---- point estimates, JSON ---- *)

let attained witness analytic =
  match witness with Some v -> Some v | None -> Some analytic

let report cert =
  let sum_states f =
    List.fold_left
      (fun acc st -> Extended.add acc (Extended.mul_rat st.weight (f st)))
      Extended.zero cert.states
  in
  { Measures.opt_p = cert.opt_p_bracket.hi;
    best_eq_p = attained (best_witness cert.eq_p) cert.best_eq_p.hi;
    worst_eq_p = attained (worst_witness cert.eq_p) cert.worst_eq_p.hi;
    opt_c = cert.opt_c.hi;
    best_eq_c =
      Some
        (sum_states (fun st ->
             match best_witness st.equilibria with
             | Some v -> v
             | None -> Extended.mul_rat cert.potential.Smooth.upper
                         (opt_bracket st.opt).hi));
    worst_eq_c =
      Some
        (sum_states (fun st ->
             match worst_witness st.equilibria with
             | Some v -> v
             | None ->
               Extended.mul_rat (Smooth.poa_factor cert.smoothness)
                 (opt_bracket st.opt).hi)) }

let ext_json v =
  match Extended.to_rat_opt v with
  | Some r -> Sink.Str (Rat.to_string r)
  | None -> Sink.Str "inf"

let rat_json r = Sink.Str (Rat.to_string r)
let bracket_json b = Sink.Obj [ ("lo", ext_json b.lo); ("hi", ext_json b.hi) ]

let to_json cert =
  Sink.Obj
    [ ("players", Sink.Int cert.players);
      ("opt_p", bracket_json cert.opt_p_bracket);
      ("best_eq_p", bracket_json cert.best_eq_p);
      ("worst_eq_p", bracket_json cert.worst_eq_p);
      ("opt_c", bracket_json cert.opt_c);
      ("best_eq_c", bracket_json cert.best_eq_c);
      ("worst_eq_c", bracket_json cert.worst_eq_c);
      ("equilibria", Sink.Int (List.length cert.eq_p));
      ("descent_starts", Sink.Int cert.descent_starts);
      ("bnb_nodes", Sink.Int cert.opt_p.nodes);
      ("bnb_certified", Sink.Bool (cert.opt_p.certificate <> None));
      ("states", Sink.Int (List.length cert.states));
      ( "smoothness",
        Sink.Obj
          [ ("lambda", rat_json cert.smoothness.Smooth.lambda);
            ("mu", rat_json cert.smoothness.Smooth.mu) ] );
      ("potential_upper", rat_json cert.potential.Smooth.upper) ]

let analyze ?pool ?budget ~mode g =
  match Mode.resolve ~valid_profiles:(Bncs.valid_profile_count g) mode with
  | Mode.Exhaustive -> `Exact (Bncs.analyze ?pool ?budget g)
  | Mode.Certified -> `Certified (certify ?pool ?budget g)
  | Mode.Auto -> assert false (* resolve never returns Auto *)

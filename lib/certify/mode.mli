(** Solver-tier selection, plumbed from the CLI, the bench harness and
    the serve protocol down into the NCS solvers.

    - [Exhaustive]: enumerate every valid strategy profile (the seed
      repo's only tier) — exact values and witnesses, exponential cost.
    - [Certified]: the {!Solve} tier — potential descent, branch and
      bound and smoothness brackets, each answer carried by a
      machine-checkable certificate.  Reaches k = 20–50 on the paper's
      constructions.
    - [Auto]: resolve per game by comparing the valid-profile count
      against {!auto_threshold}; small games exhaust (and share the
      exhaustive cache tier), large ones certify.

    Cache entries never cross tiers: the exhaustive tier keeps the bare
    game fingerprint (so every pre-existing store entry keeps its key),
    the certified tier appends a suffix.  [Auto] always resolves to one
    of the other two before any cache key is formed. *)

type t = Exhaustive | Certified | Auto

val default : t
(** [Exhaustive] — the wire protocol's back-compat default for requests
    that carry no ["mode"] field. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** ["exhaustive" | "certified" | "auto"]; anything else is a
    structured error naming the offender. *)

val auto_threshold : float
(** Valid-profile count above which [Auto] resolves to [Certified]. *)

val resolve : valid_profiles:float -> t -> t
(** [resolve ~valid_profiles m] is [m] for the concrete tiers and the
    threshold decision for [Auto]; never returns [Auto]. *)

val cache_tag : t -> string
(** The tier tag appended to cache keys and fingerprints:
    [""] for [Exhaustive] (byte-identical keys for every existing cache
    entry), ["certified"] for [Certified].
    @raise Invalid_argument on [Auto] — resolve it first. *)

(** (λ, μ)-smoothness and potential brackets: certified price-of-anarchy
    and price-of-stability factors that hold for {e any} common prior,
    used to bracket equilibrium quantities when exact witnesses are out
    of reach.

    {b Smoothness.}  Fair cost sharing puts agent share [c(e)/load(e)]
    on each bought edge.  A deviator moving onto edge [e] against a
    profile loading it with [x] pays at most [c(e)/max(1, x)], so if
    [x*] agents use [e] in the deviation profile, the per-edge deviation
    total is at most [x*/max(1,x) . c(e)].  A pair (λ, μ) is {e smooth}
    for [k] players when for all loads [x, x* in [0, k]]:

    {[ x*/max(1,x)  <=  λ.[x* >= 1] + μ.[x >= 1] ]}

    Summing over edges gives the per-type-profile smoothness inequality
    [Σ_i c_i(opt_i, s_{-i}) <= λ C(opt) + μ C(s)].  Because the optimal
    strategy profile deviation [opt_i(t_i)] depends only on agent [i]'s
    own type, the inequality survives the interim equilibrium
    conditions under any common prior: taking expectations,
    [worst-eqP <= λ/(1-μ) . optP].  {!fair_share} is the pair (k, 0),
    giving the universal factor [k] (Lemma 3.1's engine).

    {b Potential bracket.}  The Rosenthal potential satisfies
    [C(s) <= Φ(s) <= H(k) . C(s)] pointwise, because
    [1 <= H(x) <= H(k)] for loads [1 <= x <= k]; the same bracket holds
    in expectation for the Bayesian potential.  The potential minimizer
    is an equilibrium, so [best-eqP <= H(k) . optP] (Lemma 3.8's
    engine).

    Both facts are shipped as data plus a {!check} that re-verifies the
    defining inequalities over the full load grid in exact arithmetic —
    the downstream brackets in {!Solve} cite them and are only as good
    as these checks. *)

open Bi_num

type smoothness = { players : int; lambda : Rat.t; mu : Rat.t }

(** All entry points take an optional hash-cons table [?hc]: when given,
    the [j/k] grid rationals and harmonic numbers they produce are
    interned in it, so a solver threading one table through its
    smoothness checks, potential brackets and descent replays shares one
    canonical (physically equal) [H(k)] chain and grid — and rational
    comparisons on them short-circuit. *)

val fair_share : ?hc:Rat.Hc.t -> players:int -> unit -> smoothness
(** (λ, μ) = (k, 0). *)

val check : ?hc:Rat.Hc.t -> smoothness -> (unit, string) result
(** Verify [0 <= μ < 1], [λ > 0] and the load-grid inequality above for
    every [x, x* in [0, players]]. *)

val poa_factor : smoothness -> Rat.t
(** [λ / (1 - μ)] — the certified [worst-eqP / optP] factor. *)

type potential_bracket = { players : int; upper : Rat.t }

val potential : ?hc:Rat.Hc.t -> players:int -> unit -> potential_bracket
(** [upper = H(players)]. *)

val check_potential : ?hc:Rat.Hc.t -> potential_bracket -> (unit, string) result
(** Verify [1 <= H(x) <= upper] for every load [x in [1, players]] —
    [upper] is the certified [best-eqP / optP] factor. *)

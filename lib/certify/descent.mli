(** Potential descent: certified pure Bayesian equilibria by
    best-response dynamics.

    Network cost-sharing games are potential games, and the Bayesian
    potential of Observation 2.1 lifts the Rosenthal potential to the
    partial-information setting: every strict best-response step
    strictly decreases it, so best-response dynamics from any valid
    profile terminates at a pure Bayesian equilibrium without ever
    enumerating the profile space.  Multi-start descent from a
    deterministic seed set yields best-/worst-equilibrium witnesses;
    each fixpoint ships as a {!certificate} whose deviation margins a
    checker re-derives from scratch.

    Soundness of the margin set: a type of positive marginal is in
    equilibrium iff no {e valid} alternative action improves her interim
    cost — invalid alternatives cost infinity and can never undercut a
    finite incumbent — so the certificate prices exactly the valid
    deviations, in canonical (player, type, alternative) order. *)

open Bi_num

type margin = {
  player : int;
  typ : int;
  action : int;  (** what [profile] plays at (player, typ) *)
  alternative : int;  (** the valid deviation being priced *)
  slack : Rat.t;  (** interim(alternative) - interim(action); >= 0 *)
}

type certificate = {
  profile : Bi_bayes.Bayesian.strategy_profile;
  value : Extended.t;  (** social cost of [profile] *)
  margins : margin list;  (** canonical order, every valid deviation *)
}

val certificate :
  Bi_ncs.Bayesian_ncs.t ->
  Bi_bayes.Bayesian.strategy_profile ->
  (certificate, string) result
(** Price every valid deviation of [profile]; [Error] when some slack is
    negative (not an equilibrium), a cost fails to be finite, or the
    profile's shape does not match the game. *)

val check : Bi_ncs.Bayesian_ncs.t -> certificate -> (unit, string) result
(** Independent re-derivation: recompute the social cost and the full
    canonical margin list and demand exact equality with the
    certificate, plus non-negativity of every slack.  Any tampering with
    the value, a slack, or the margin set is rejected. *)

val step :
  Bi_ncs.Bayesian_ncs.t ->
  Bi_bayes.Bayesian.strategy_profile ->
  (int * int * int) option
(** The next best-response move [(player, typ, action)]: the first
    (player, type) in index order holding a strictly improving deviation
    and the cheapest such deviation; [None] at a fixpoint.  Exposed so
    the property tests can watch the potential fall step by step. *)

val descend :
  ?budget:Bi_engine.Budget.t ->
  ?max_steps:int ->
  Bi_ncs.Bayesian_ncs.t ->
  Bi_bayes.Bayesian.strategy_profile ->
  Bi_bayes.Bayesian.strategy_profile option
(** Iterate {!step} to a fixpoint (a fresh profile; the start is not
    mutated).  [None] if [max_steps] (default [200_000]) ran out — the
    potential argument guarantees termination, the cap guards solver
    bugs.  Polls [budget] every step and lets {!Bi_engine.Budget.Expired}
    escape. *)

val starts : ?seeds:int -> Bi_ncs.Bayesian_ncs.t -> Bi_bayes.Bayesian.strategy_profile list
(** The deterministic multi-start seed set, deduplicated: the per-type
    shortest-path profile, its benevolent descent, the j-th-valid-action
    uniform profiles, and [seeds] (default 4) pseudo-random valid
    profiles from a fixed linear congruential stream.  Every start is
    valid, which descent preserves, so fixpoints are always valid
    profiles. *)

val equilibria :
  ?pool:Bi_engine.Pool.t ->
  ?budget:Bi_engine.Budget.t ->
  ?seeds:int ->
  ?extra:Bi_bayes.Bayesian.strategy_profile list ->
  Bi_ncs.Bayesian_ncs.t ->
  certificate list * int
(** Descend from every start (plus [extra] valid profiles, e.g. the
    branch-and-bound optimum witness), deduplicate the fixpoints and
    certify each; returns the certificates sorted by value (ascending,
    ties in discovery order) together with the number of starts tried.
    With [?pool] the starts descend on worker domains; the result is
    identical for any pool size. *)

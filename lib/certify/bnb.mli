(** Branch and bound for [optP] with an optimality certificate.

    The search branches over the positive-marginal (agent, type)
    variables in decreasing-marginal order, assigning each a valid
    action (a path).  A node's lower bound is, per support state, the
    cost of the union of edges already committed in that state plus a
    per-player shortest-path relaxation over the remaining realized
    agents, taken as the larger of two admissible terms:

    - {b single}: the largest, over remaining agents, of the cheapest
      valid path priced only on uncommitted edges — any completion
      must buy that agent some path, and its uncommitted edges are new;
    - {b share}: the sum, over remaining agents, of the cheapest valid
      path priced at [c(e) / m(e)] on uncommitted edges, where [m(e)]
      counts the remaining agents with any valid path through [e] — in
      any completion an edge's cost splits across at most [m(e)]
      buyers, so summing per-agent fractional shares never overcounts.

    Both relaxations range over the game's enumerated simple-path
    action sets, i.e. they are shortest-path computations in the
    committed-edges-discounted metric.

    A closed search emits a {!certificate}: the incumbent witness plus
    a ledger recording, for every pruned node, its prefix and the bound
    that closed it.  {!check} replays the tree from scratch — expanding
    exactly where the search expanded, recomputing every ledger bound
    and requiring it to match and to dominate the claimed value, and
    requiring every leaf to weakly exceed it — so a tampered value,
    witness, or ledger entry is rejected, and a passing replay proves
    the claimed value is the exact optimum. *)

open Bi_num

type certificate = {
  profile : Bi_bayes.Bayesian.strategy_profile;  (** optimum witness *)
  value : Extended.t;  (** social cost of [profile]; the certified optimum *)
  variables : (int * int) array;  (** branching order over (player, type) *)
  ledger : (int array * Rat.t) list;
      (** pruned prefixes (actions for [variables.(0..len-1)]) with the
          recorded closing bound *)
  nodes : int;  (** nodes the search expanded *)
}

type outcome = {
  value : Extended.t;
      (** best social cost found; the exact optimum iff [certificate]
          is present, otherwise an upper bound on it *)
  profile : Bi_bayes.Bayesian.strategy_profile;
  certificate : certificate option;
      (** [None] exactly when [node_budget] ran out first *)
  lower : Extended.t;  (** the root lower bound; always sound *)
  nodes : int;
}

val optimum :
  ?budget:Bi_engine.Budget.t ->
  ?node_budget:int ->
  ?incumbent:Extended.t * Bi_bayes.Bayesian.strategy_profile ->
  Bi_ncs.Bayesian_ncs.t ->
  outcome
(** Depth-first search seeded with [incumbent] (default: the benevolent
    descent of the shortest-path profile — any sound upper bound with a
    valid witness works, and a tight seed is what keeps the tree small).
    Polls [budget] at every node and lets {!Bi_engine.Budget.Expired}
    escape; stops branching after [node_budget] nodes (default
    [5_000_000]), in which case no certificate is produced and [value]
    is only an upper bound. *)

val root_lower : Bi_ncs.Bayesian_ncs.t -> Extended.t
(** The root relaxation on its own — the sound [optP] lower bound an
    exhausted budget leaves behind, recomputable by anyone. *)


val check : Bi_ncs.Bayesian_ncs.t -> certificate -> (unit, string) result
(** Replay the certified tree (see above).  The replay recomputes the
    branching order, the witness's social cost and every ledger bound
    with the same public game description the search used, and is
    capped at ten times the certificate's node count so a malicious
    certificate cannot make the checker run unboundedly. *)

open Bi_num

type smoothness = { players : int; lambda : Rat.t; mu : Rat.t }

(* With [?hc], grid rationals and harmonic numbers are interned in the
   caller's hash-cons table, so repeated checks (certify, then check,
   then every bench replay on the same table) hand back physically equal
   values and comparisons short-circuit. *)

let grid_rat hc n d =
  match hc with Some h -> Rat.Hc.of_ints h n d | None -> Rat.of_ints n d

let harmonic hc n =
  match hc with Some h -> Rat.Hc.harmonic h n | None -> Rat.harmonic n

let fair_share ?hc ~players () =
  if players < 1 then invalid_arg "Smooth.fair_share: need at least one player";
  { players; lambda = grid_rat hc players 1; mu = Rat.zero }

let check ?hc { players; lambda; mu } =
  if players < 1 then Error "smoothness: need at least one player"
  else if Stdlib.(Rat.sign mu < 0) || Rat.(mu >= one) then
    Error "smoothness: mu must lie in [0, 1)"
  else if Stdlib.(Rat.sign lambda <= 0) then
    Error "smoothness: lambda must be positive"
  else begin
    let bad = ref None in
    for x = 0 to players do
      for x' = 0 to players do
        if !bad = None then begin
          let lhs = grid_rat hc x' (Stdlib.max 1 x) in
          let rhs =
            Rat.add
              (if x' >= 1 then lambda else Rat.zero)
              (if x >= 1 then mu else Rat.zero)
          in
          if Rat.(lhs > rhs) then bad := Some (x, x')
        end
      done
    done;
    match !bad with
    | Some (x, x') ->
      Error
        (Printf.sprintf "smoothness inequality fails at load %d, target %d" x
           x')
    | None -> Ok ()
  end

let poa_factor { lambda; mu; _ } = Rat.div lambda (Rat.sub Rat.one mu)

type potential_bracket = { players : int; upper : Rat.t }

let potential ?hc ~players () =
  if players < 1 then invalid_arg "Smooth.potential: need at least one player";
  { players; upper = harmonic hc players }

let check_potential ?hc { players; upper } =
  if players < 1 then Error "potential bracket: need at least one player"
  else begin
    let bad = ref None in
    for x = 1 to players do
      if !bad = None then begin
        let h = harmonic hc x in
        if Rat.(h < one) || Rat.(h > upper) then bad := Some x
      end
    done;
    match !bad with
    | Some x -> Error (Printf.sprintf "potential bracket fails at load %d" x)
    | None -> Ok ()
  end

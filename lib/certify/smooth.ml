open Bi_num

type smoothness = { players : int; lambda : Rat.t; mu : Rat.t }

let fair_share ~players =
  if players < 1 then invalid_arg "Smooth.fair_share: need at least one player";
  { players; lambda = Rat.of_int players; mu = Rat.zero }

let check { players; lambda; mu } =
  if players < 1 then Error "smoothness: need at least one player"
  else if Stdlib.(Rat.sign mu < 0) || Rat.(mu >= one) then
    Error "smoothness: mu must lie in [0, 1)"
  else if Stdlib.(Rat.sign lambda <= 0) then
    Error "smoothness: lambda must be positive"
  else begin
    let bad = ref None in
    for x = 0 to players do
      for x' = 0 to players do
        if !bad = None then begin
          let lhs = Rat.of_ints x' (Stdlib.max 1 x) in
          let rhs =
            Rat.add
              (if x' >= 1 then lambda else Rat.zero)
              (if x >= 1 then mu else Rat.zero)
          in
          if Rat.(lhs > rhs) then bad := Some (x, x')
        end
      done
    done;
    match !bad with
    | Some (x, x') ->
      Error
        (Printf.sprintf "smoothness inequality fails at load %d, target %d" x
           x')
    | None -> Ok ()
  end

let poa_factor { lambda; mu; _ } = Rat.div lambda (Rat.sub Rat.one mu)

type potential_bracket = { players : int; upper : Rat.t }

let potential ~players =
  if players < 1 then invalid_arg "Smooth.potential: need at least one player";
  { players; upper = Rat.harmonic players }

let check_potential { players; upper } =
  if players < 1 then Error "potential bracket: need at least one player"
  else begin
    let bad = ref None in
    for x = 1 to players do
      if !bad = None then begin
        let h = Rat.harmonic x in
        if Rat.(h < one) || Rat.(h > upper) then bad := Some x
      end
    done;
    match !bad with
    | Some x -> Error (Printf.sprintf "potential bracket fails at load %d" x)
    | None -> Ok ()
  end

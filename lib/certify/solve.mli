(** The certified solver tier: every Bayesian-ignorance quantity as an
    exact interval bracket carried by machine-checkable certificates.

    {!certify} runs the three engines and assembles, for each of the six
    P/C quantities, a bracket [lo <= value <= hi] in exact arithmetic:

    - [optP]: {!Bnb.optimum} — a closed search gives [lo = hi] with an
      optimality certificate; an exhausted node budget degrades to
      [lo] the root relaxation, [hi] the incumbent.
    - [best-eqP], [worst-eqP]: every {!Descent} fixpoint is an
      equilibrium witness, so the best witness upper-bounds [best-eqP]
      and the worst lower-bounds [worst-eqP]; {!Smooth} closes the other
      sides with [best-eqP <= H(k) optP] and [worst-eqP <= k optP]
      (both sound for any common prior), while [optP]'s lower bound
      floors everything — network cost-sharing games always possess a
      pure (Bayesian) equilibrium, so the brackets are unconditional.
    - The C-side quantities are prior-weighted sums of the same
      brackets on the per-support-state complete-information games
      (each lowered as a point-prior Bayesian game and fed to the same
      engines).

    {!check} re-verifies the whole bundle from the game description
    alone: every equilibrium and optimality certificate replays, the
    smoothness and potential factors re-verify over the load grid, the
    support-state decomposition is confirmed against the prior, and all
    six brackets are re-derived and compared field by field. *)

open Bi_num

type bracket = { lo : Extended.t; hi : Extended.t }

type state_solution = {
  pairs : (int * int) array;  (** the support state *)
  weight : Rat.t;  (** its prior mass *)
  opt : Bnb.outcome;
  equilibria : Descent.certificate list;  (** value-ascending *)
}

type certified = {
  players : int;
  smoothness : Smooth.smoothness;
  potential : Smooth.potential_bracket;
  opt_p : Bnb.outcome;
  eq_p : Descent.certificate list;  (** value-ascending, distinct *)
  descent_starts : int;
  states : state_solution list;  (** in prior support order *)
  opt_p_bracket : bracket;
  best_eq_p : bracket;
  worst_eq_p : bracket;
  opt_c : bracket;
  best_eq_c : bracket;
  worst_eq_c : bracket;
}

val certify :
  ?pool:Bi_engine.Pool.t ->
  ?budget:Bi_engine.Budget.t ->
  ?seeds:int ->
  ?node_budget:int ->
  Bi_ncs.Bayesian_ncs.t ->
  certified
(** Run the certified tier.  Descent seeds branch and bound with its
    best equilibrium; the optimum witness is descended in turn so the
    equilibrium set sees the optimum's basin.  [?pool] shards the
    descent starts; [?budget] is polled throughout and
    {!Bi_engine.Budget.Expired} escapes; [?seeds] and [?node_budget]
    are passed to {!Descent.starts} and {!Bnb.optimum}. *)

val check : Bi_ncs.Bayesian_ncs.t -> certified -> (unit, string) result
(** Full independent verification, see above.  [Ok ()] means every
    bracket is a proven statement about [g]. *)

val report : certified -> Bi_bayes.Measures.report
(** Point estimates in the exhaustive tier's shape, for cross-checks
    and caching: [optP]/[optC] are the brackets' upper ends (exact when
    branch and bound closed), the equilibrium quantities are the
    attained witness values (falling back to the analytic end when a
    side has no witness, which the potential argument makes
    unreachable in practice). *)

val to_json : certified -> Bi_engine.Sink.json
(** The six brackets (exact rationals as strings, ["inf"] for the
    infinite end) plus engine counters — the payload served and cached
    for certified-tier queries. *)

val analyze :
  ?pool:Bi_engine.Pool.t ->
  ?budget:Bi_engine.Budget.t ->
  mode:Mode.t ->
  Bi_ncs.Bayesian_ncs.t ->
  [ `Exact of Bi_ncs.Bayesian_ncs.analysis | `Certified of certified ]
(** Mode dispatch: [Exhaustive] defers to {!Bi_ncs.Bayesian_ncs.analyze},
    [Certified] to {!certify}, and [Auto] resolves through
    {!Mode.resolve} on the game's valid-profile count. *)

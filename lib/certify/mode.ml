type t = Exhaustive | Certified | Auto

let default = Exhaustive

let to_string = function
  | Exhaustive -> "exhaustive"
  | Certified -> "certified"
  | Auto -> "auto"

let of_string = function
  | "exhaustive" -> Ok Exhaustive
  | "certified" -> Ok Certified
  | "auto" -> Ok Auto
  | s ->
    Error
      (Printf.sprintf
         "mode must be \"exhaustive\", \"certified\" or \"auto\", got %S" s)

(* Exhaustion scans every valid profile; at ~2e5 profiles a full
   analysis still lands well under a second, past it the certified tier
   is both faster and budget-friendly. *)
let auto_threshold = 2e5

let resolve ~valid_profiles = function
  | Auto -> if valid_profiles > auto_threshold then Certified else Exhaustive
  | m -> m

let cache_tag = function
  | Exhaustive -> ""
  | Certified -> "certified"
  | Auto -> invalid_arg "Mode.cache_tag: resolve Auto before keying"

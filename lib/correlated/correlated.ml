open Bi_num
module Bncs = Bi_ncs.Bayesian_ncs
module Bayesian = Bi_bayes.Bayesian
module Strategic = Bi_game.Strategic
module Dist = Bi_prob.Dist
module Lp = Bi_lp.Simplex
module Sink = Bi_engine.Sink
module Budget = Bi_engine.Budget

type t = {
  game : Bncs.t;
  bayes : Bayesian.t;
  states_ : int array array;  (* support type profiles, in prior order *)
  weights : Rat.t array;  (* p(t) per state, exact and positive *)
  st_games : Strategic.t array;  (* memoized underlying game per state *)
  cols : (int * int array) array;  (* column -> (state, action profile) *)
  costs : Rat.t array;  (* K_t(a) per column; finite by validity *)
  offset : int array;  (* length S+1: column range of each state *)
}

(* Costs of valid profiles are finite by construction (validity is
   exactly the finite-cost condition in NCS games), so [to_rat_exn]
   cannot raise here. *)
let fin = Extended.to_rat_exn

let make game =
  let bayes = Bncs.game game in
  let entries = Dist.to_list (Bayesian.prior bayes) in
  let states_ = Array.of_list (List.map fst entries) in
  let weights = Array.of_list (List.map snd entries) in
  let st_games = Array.map (Bayesian.underlying_game bayes) states_ in
  let s = Array.length states_ in
  let offset = Array.make (s + 1) 0 in
  let blocks = ref [] in
  for st = 0 to s - 1 do
    let block =
      List.of_seq
        (Seq.map (fun a -> (st, a)) (Bncs.state_action_profiles game states_.(st)))
    in
    offset.(st + 1) <- offset.(st) + List.length block;
    blocks := block :: !blocks
  done;
  let cols = Array.of_list (List.concat (List.rev !blocks)) in
  let costs =
    Array.map
      (fun (st, a) -> fin (Strategic.social_cost st_games.(st) a))
      cols
  in
  { game; bayes; states_; weights; st_games; cols; costs; offset }

let states t = Array.length t.states_
let columns t = Array.length t.cols

(* Player cost of a column's action profile, and of its unilateral
   deviations, through the per-state memoized game. *)
let player_cost t st a i = fin (Strategic.cost t.st_games.(st) a i)

let deviated a i alt =
  let d = Array.copy a in
  d.(i) <- alt;
  d

(* The support types of player [i], ascending. *)
let support_types t i =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun tprof -> if not (Hashtbl.mem seen tprof.(i)) then Hashtbl.add seen tprof.(i) ())
    t.states_;
  List.sort compare (Hashtbl.fold (fun ti () l -> ti :: l) seen [])

(* ---- deviation rows ----

   One dense row per (player, type, deviation) — [Cce] — or per
   (player, type, recommendation, deviation) — [Comm].  Rows that are
   identically zero (e.g. a type with a single valid action deviating
   to itself) are dropped: they constrain nothing and would only pad
   the basis.  Enumeration order is deterministic (players, then types,
   then actions ascending), so rebuilt problems are identical — which
   is what lets [check] re-derive the exact system a certificate was
   issued for. *)

let deviation_rows t concept =
  let n = Array.length t.cols in
  let players = Bayesian.players t.bayes in
  let rows = ref [] in
  let push row nonzero = if nonzero then rows := row :: !rows in
  for i = 0 to players - 1 do
    List.iter
      (fun ti ->
        let valid = Bncs.valid_actions t.game i ti in
        match concept with
        | Concept.Nash -> invalid_arg "Correlated.deviation_rows: Nash"
        | Concept.Cce ->
          List.iter
            (fun alt ->
              let row = Array.make n Rat.zero in
              let nonzero = ref false in
              Array.iteri
                (fun j (st, a) ->
                  if t.states_.(st).(i) = ti then begin
                    let delta =
                      Rat.sub (player_cost t st a i)
                        (player_cost t st (deviated a i alt) i)
                    in
                    if not (Rat.is_zero delta) then begin
                      row.(j) <- delta;
                      nonzero := true
                    end
                  end)
                t.cols;
              push row !nonzero)
            valid
        | Concept.Comm ->
          List.iter
            (fun rec_ ->
              List.iter
                (fun alt ->
                  if alt <> rec_ then begin
                    let row = Array.make n Rat.zero in
                    let nonzero = ref false in
                    Array.iteri
                      (fun j (st, a) ->
                        if t.states_.(st).(i) = ti && a.(i) = rec_ then begin
                          let delta =
                            Rat.sub (player_cost t st a i)
                              (player_cost t st (deviated a i alt) i)
                          in
                          if not (Rat.is_zero delta) then begin
                            row.(j) <- delta;
                            nonzero := true
                          end
                        end)
                      t.cols;
                    push row !nonzero
                  end)
                valid)
            valid)
      (support_types t i)
  done;
  Array.of_list (List.rev !rows)

let deviation_count t concept = Array.length (deviation_rows t concept)

type sense = Best | Worst

(* Standard form: S prior-consistency equality rows, then one row per
   deviation with a unit slack column; minimize the (possibly negated)
   expected social cost. *)
let assemble t dev ~sense =
  let s = Array.length t.states_ in
  let n = Array.length t.cols in
  let d = Array.length dev in
  let a = Array.make_matrix (s + d) (n + d) Rat.zero in
  Array.iteri (fun j (st, _) -> a.(st).(j) <- Rat.one) t.cols;
  Array.iteri
    (fun r row ->
      Array.blit row 0 a.(s + r) 0 n;
      a.(s + r).(n + r) <- Rat.one)
    dev;
  let b = Array.append t.weights (Array.make d Rat.zero) in
  let c = Array.make (n + d) Rat.zero in
  Array.iteri
    (fun j cost ->
      c.(j) <- (match sense with Best -> cost | Worst -> Rat.neg cost))
    t.costs;
  { Lp.a; b; c }

let problem t ~concept ~sense = assemble t (deviation_rows t concept) ~sense
let public_problem t ~sense = assemble t [||] ~sense

type quantity = { value : Rat.t; certificate : Lp.certificate; pivots : int }

type report = {
  concept : Concept.t;
  states : int;
  columns : int;
  deviations : int;
  best : quantity;
  worst : quantity;
  pub_best : quantity;
  pub_worst : quantity;
}

let solve_quantity ?budget prob ~sense =
  let on_pivot = Option.map (fun b () -> Budget.check b) budget in
  match Lp.solve ?on_pivot prob with
  | Lp.Optimal cert, { Lp.pivots } ->
    let value =
      match sense with
      | Best -> cert.Lp.objective
      | Worst -> Rat.neg cert.Lp.objective
    in
    { value; certificate = cert; pivots }
  | (Lp.Infeasible _ | Lp.Unbounded _), _ ->
    (* The polytopes are nonempty (a pure Bayesian equilibrium always
       exists for NCS games, and prior consistency alone is satisfiable
       outright) and bounded (subsets of a scaled simplex with finite
       costs), so exact arithmetic cannot land here. *)
    failwith "Correlated: polytope LP reported infeasible or unbounded"

let analyze ?budget ~concept game =
  (match concept with
  | Concept.Nash ->
    invalid_arg
      "Correlated.analyze: nash has no LP — use the exhaustive or certified solvers"
  | Concept.Cce | Concept.Comm -> ());
  let t = make game in
  let dev = deviation_rows t concept in
  let solve ~dev ~sense = solve_quantity ?budget (assemble t dev ~sense) ~sense in
  {
    concept;
    states = states t;
    columns = columns t;
    deviations = Array.length dev;
    best = solve ~dev ~sense:Best;
    worst = solve ~dev ~sense:Worst;
    pub_best = solve ~dev:[||] ~sense:Best;
    pub_worst = solve ~dev:[||] ~sense:Worst;
  }

let check game report =
  match report.concept with
  | Concept.Nash -> Error "nash reports carry no LP certificates"
  | Concept.Cce | Concept.Comm ->
    let t = make game in
    if report.states <> states t then Error "state count mismatch"
    else if report.columns <> columns t then Error "column count mismatch"
    else begin
      let dev = deviation_rows t report.concept in
      if report.deviations <> Array.length dev then
        Error "deviation row count mismatch"
      else begin
        let check_quantity name ~dev ~sense q =
          let expected =
            match sense with
            | Best -> q.value
            | Worst -> Rat.neg q.value
          in
          if not (Rat.equal q.certificate.Lp.objective expected) then
            Error
              (name ^ ": claimed value differs from the certified objective")
          else
            match Lp.check (assemble t dev ~sense) q.certificate with
            | Ok () -> Ok ()
            | Error e -> Error (name ^ ": " ^ e)
        in
        let ( let* ) = Result.bind in
        let* () = check_quantity "best" ~dev ~sense:Best report.best in
        let* () = check_quantity "worst" ~dev ~sense:Worst report.worst in
        let* () = check_quantity "pub_best" ~dev:[||] ~sense:Best report.pub_best in
        let* () =
          check_quantity "pub_worst" ~dev:[||] ~sense:Worst report.pub_worst
        in
        (* Polytope inclusions: the concept polytope sits inside the
           deviation-free one, and best <= worst over the same set. *)
        if Rat.( > ) report.best.value report.worst.value then
          Error "best exceeds worst"
        else if Rat.( > ) report.pub_best.value report.best.value then
          Error "pub_best exceeds best: inclusion violated"
        else if Rat.( > ) report.worst.value report.pub_worst.value then
          Error "worst exceeds pub_worst: inclusion violated"
        else Ok ()
      end
    end

(* ---- serve/cache payload ---- *)

let json_of_certificate (c : Lp.certificate) =
  let sparse =
    Array.to_list c.Lp.x
    |> List.mapi (fun j v -> (j, v))
    |> List.filter (fun (_, v) -> not (Rat.is_zero v))
    |> List.map (fun (j, v) -> Sink.List [ Sink.Int j; Sink.Str (Rat.to_string v) ])
  in
  Sink.Obj
    [
      ("objective", Sink.Str (Rat.to_string c.Lp.objective));
      ("x", Sink.List sparse);
      ( "y",
        Sink.List
          (Array.to_list (Array.map (fun v -> Sink.Str (Rat.to_string v)) c.Lp.y))
      );
    ]

let to_json report =
  Sink.Obj
    [
      ("concept", Sink.Str (Concept.to_string report.concept));
      ("states", Sink.Int report.states);
      ("columns", Sink.Int report.columns);
      ("deviations", Sink.Int report.deviations);
      ("best", Sink.Str (Rat.to_string report.best.value));
      ("worst", Sink.Str (Rat.to_string report.worst.value));
      ("pub_best", Sink.Str (Rat.to_string report.pub_best.value));
      ("pub_worst", Sink.Str (Rat.to_string report.pub_worst.value));
      ( "pivots",
        Sink.Obj
          [
            ("best", Sink.Int report.best.pivots);
            ("worst", Sink.Int report.worst.pivots);
            ("pub_best", Sink.Int report.pub_best.pivots);
            ("pub_worst", Sink.Int report.pub_worst.pivots);
          ] );
      ( "certificates",
        Sink.Obj
          [
            ("best", json_of_certificate report.best.certificate);
            ("worst", json_of_certificate report.worst.certificate);
            ("pub_best", json_of_certificate report.pub_best.certificate);
            ("pub_worst", json_of_certificate report.pub_worst.certificate);
          ] );
    ]

(* ---- equilibrium inclusion ---- *)

let equilibrium_member t ~concept s =
  let n = Array.length t.cols in
  let q = Array.make n Rat.zero in
  let missing = ref (-1) in
  Array.iteri
    (fun st tprof ->
      if !missing < 0 then begin
        let a = Bayesian.played_actions s tprof in
        let col = ref (-1) in
        for j = t.offset.(st) to t.offset.(st + 1) - 1 do
          if !col < 0 && snd t.cols.(j) = a then col := j
        done;
        match !col with
        | -1 -> missing := st
        | j -> q.(j) <- t.weights.(st)
      end)
    t.states_;
  if !missing >= 0 then
    Error
      (Printf.sprintf "profile plays an invalid action at support state %d"
         !missing)
  else begin
    let dev = deviation_rows t concept in
    let acc = Rat.Acc.create () in
    let slacks =
      Array.map
        (fun row ->
          Rat.Acc.clear acc;
          Array.iteri
            (fun j r -> if not (Rat.is_zero r) then Rat.Acc.add_mul acc r q.(j))
            row;
          Rat.neg (Rat.Acc.to_rat acc))
        dev
    in
    Lp.feasible (assemble t dev ~sense:Best) (Array.append q slacks)
  end

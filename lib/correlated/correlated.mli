(** Correlated play for Bayesian NCS games, by exact linear
    programming (Section 4 of the paper; the LP phrasing follows the
    smoothness literature's treatment of Bayes coarse-correlated
    values).

    All polytopes live over joint distributions [P(a, t)] on
    (action profile, type profile) pairs, restricted to the prior's
    support states and to action profiles valid at each state (invalid
    actions cost infinity and can never carry mass):

    - {e prior consistency} (every polytope): for each support state
      [t], [sum_a P(a, t) = p(t)];
    - {e CCE deviations}: for each player [i], support type [ti] and
      valid alternative [a'_i],
      [sum_(t : t_i = ti) sum_a P(a,t) (C_i,t(a) - C_i,t(a'_i, a_-i))
      <= 0] — deviations are unconditional;
    - {e Comm deviations}: for each [(i, ti)], recommendation [a_i] and
      alternative [a'_i], the same sum restricted to [a : a_i]
      — a deviation may condition on the recommendation, so the Comm
      polytope sits between the Nash points and the CCE polytope.

    Optimizing the expected social cost [sum_(a,t) P(a,t) K_t(a)] in
    both directions over each polytope, plus over the deviation-free
    ({e public-randomness}) polytope, yields the six new quantities:
    [best-cce]/[worst-cce] (or [best-comm]/[worst-comm]) and
    [pub-best]/[pub-worst].  [pub-best] equals [optC] — Lemma 4.1's
    "public random bits can replace the common prior" made
    computational — and [pub-worst] is [E_t max_a K_t(a)].  Every value
    is carried by a {!Bi_lp.Simplex} dual certificate that {!check}
    re-verifies from the game description alone, rejecting tampering
    with any coordinate. *)

open Bi_num

type t
(** The compiled LP data of one game: support states, per-state valid
    action-profile column blocks, exact column costs. *)

val make : Bi_ncs.Bayesian_ncs.t -> t

val states : t -> int
val columns : t -> int

val deviation_count : t -> Concept.t -> int
(** Number of (non-trivial) deviation rows of the concept polytope.
    @raise Invalid_argument on [Nash]. *)

type sense = Best | Worst

val problem : t -> concept:Concept.t -> sense:sense -> Bi_lp.Simplex.problem
(** The standard-form LP of the concept polytope: prior-consistency
    equality rows, then one row per deviation with an explicit slack
    column.  [Worst] negates the objective (the solver minimizes).
    @raise Invalid_argument on [Nash]. *)

val public_problem : t -> sense:sense -> Bi_lp.Simplex.problem
(** The deviation-free (public-randomness) polytope: prior consistency
    only. *)

type quantity = {
  value : Rat.t;  (** the social-cost optimum, sign-corrected for sense *)
  certificate : Bi_lp.Simplex.certificate;
  pivots : int;
}

type report = {
  concept : Concept.t;
  states : int;
  columns : int;
  deviations : int;
  best : quantity;
  worst : quantity;
  pub_best : quantity;  (** = [optC] by Lemma 4.1; crosschecked in bench *)
  pub_worst : quantity;
}

val analyze :
  ?budget:Bi_engine.Budget.t ->
  concept:Concept.t ->
  Bi_ncs.Bayesian_ncs.t ->
  report
(** Solve all four LPs.  With [?budget] every simplex iteration polls
    the deadline and the call raises {!Bi_engine.Budget.Expired} once it
    passes — complete and exact, or failed fast, never partial.
    @raise Invalid_argument on [concept:Nash] — Nash quantities come
    from the exhaustive/certified solvers, not an LP. *)

val check : Bi_ncs.Bayesian_ncs.t -> report -> (unit, string) result
(** Re-derive the four LPs from the game description and verify every
    certificate in exact arithmetic ({!Bi_lp.Simplex.check}), that each
    claimed value matches its certified objective, and the polytope
    inclusions [pub_best <= best <= worst <= pub_worst].  Tampering
    with any value or any certificate coordinate is rejected. *)

val to_json : report -> Bi_engine.Sink.json
(** The serve/cache payload: concept, LP dimensions, the four values,
    pivot counts, and sparse primal / dense dual certificate vectors. *)

val equilibrium_member :
  t ->
  concept:Concept.t ->
  Bi_bayes.Bayesian.strategy_profile ->
  (unit, string) result
(** Map a pure strategy profile to the point [P(a, t) = p(t) ·
    1(a = s(t))] and verify its membership in the concept polytope
    ({!Bi_lp.Simplex.feasible} on the assembled system, slacks
    included).  For a pure Bayesian equilibrium this must hold — the
    inclusion half of the bench crosscheck.
    @raise Invalid_argument on [Nash]. *)

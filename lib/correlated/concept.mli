(** Solution-concept selection for the correlated-play axis, plumbed
    from the CLI, the bench harness and the serve protocol exactly like
    [Bi_certify.Mode] is for the solver tier.

    - [Nash]: pure Bayesian equilibria — the quantities the rest of the
      codebase already computes (exhaustive or certified tier); no LP.
    - [Cce]: the coarse-correlated equilibrium polytope over joint
      distributions [P(a, t)] — deviations are unconditional single
      actions.
    - [Comm]: the communication/correlated-equilibrium variant — a
      deviation may condition on the recommended action.

    Cache entries never cross concepts: [Nash] keeps the bare
    fingerprint (every pre-existing key stays byte-identical), the
    correlated concepts append a tag.  The tag sets are disjoint from
    the tier tags of [Bi_certify.Mode], so a concept-qualified key can
    never collide with a tier-qualified one. *)

type t = Nash | Cce | Comm

val default : t
(** [Nash] — the wire protocol's back-compat default for requests that
    carry no ["concept"] field. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** ["nash" | "cce" | "comm"]; anything else is a structured error
    naming the offender. *)

val cache_tag : t -> string
(** [""] for [Nash], ["cce"] / ["comm"] otherwise. *)

type t = Nash | Cce | Comm

let default = Nash

let to_string = function Nash -> "nash" | Cce -> "cce" | Comm -> "comm"

let of_string = function
  | "nash" -> Ok Nash
  | "cce" -> Ok Cce
  | "comm" -> Ok Comm
  | s ->
    Error
      (Printf.sprintf "concept must be \"nash\", \"cce\" or \"comm\", got %S" s)

let cache_tag = function Nash -> "" | Cce -> "cce" | Comm -> "comm"

(** Exact-rational linear programming by revised simplex.

    Solves standard-form programs

    {v   minimize  c.x   subject to   A x = b,  x >= 0   v}

    entirely over {!Bi_num.Rat}: no floating point anywhere, so every
    reported optimum is the exact rational value of the program and
    every certificate check below is a theorem, not a tolerance test.
    Inequality systems are encoded by the caller with explicit slack
    columns (see [Bi_correlated] for the equilibrium polytopes that
    motivated this module).

    The solver is the classic two-phase revised method: a basis
    [B] of column indices is maintained together with an explicit
    exact inverse [B^-1]; each iteration prices the nonbasic columns
    against the dual vector [y = c_B B^-1], picks the entering column
    by {e Bland's rule} (lowest index with negative reduced cost), and
    leaves by the minimum-ratio test with ties again broken by lowest
    basis index.  Bland's rule makes cycling impossible, so termination
    is unconditional even on the degenerate polytopes that equilibrium
    LPs produce.  Phase 1 minimizes the sum of artificial variables
    from the all-artificial basis; a positive phase-1 optimum yields a
    Farkas certificate of infeasibility, otherwise basic artificials
    are driven out (rows that cannot be driven out are exactly the
    redundant rows and stay inert) and phase 2 optimizes [c].

    Every outcome carries a certificate that [check] /
    [check_infeasible] / [check_unbounded] re-verify from scratch in
    exact arithmetic, in the style of [Bi_certify]'s tamper-rejecting
    checkers: feasibility, dual feasibility, complementary slackness
    and the zero duality gap for optima; [A'y <= 0, b.y > 0] for
    infeasibility; a feasible point plus an improving recession ray for
    unboundedness. *)

open Bi_num

type problem = {
  a : Rat.t array array;  (** row-major constraint matrix, [m x n] *)
  b : Rat.t array;        (** right-hand side, length [m] (any sign) *)
  c : Rat.t array;        (** objective, length [n] *)
}

type certificate = {
  x : Rat.t array;  (** primal optimum, length [n], [>= 0] *)
  y : Rat.t array;  (** dual optimum, length [m], unconstrained sign *)
  objective : Rat.t;  (** the common value [c.x = b.y] *)
}

type outcome =
  | Optimal of certificate
  | Infeasible of { farkas : Rat.t array }
      (** [farkas = y] with [A' y <= 0] componentwise and [b.y > 0]:
          a linear combination of the equalities no nonnegative [x]
          can satisfy. *)
  | Unbounded of { witness : Rat.t array; ray : Rat.t array }
      (** [witness] is feasible; [ray = d] satisfies [A d = 0],
          [d >= 0], [c.d < 0], so [witness + t*d] is feasible for all
          [t >= 0] with objective tending to [-oo]. *)

type stats = { pivots : int }

val solve : ?on_pivot:(unit -> unit) -> problem -> outcome * stats
(** Solve the program.  [on_pivot] is called once per simplex
    iteration (before the work of that iteration) — the serving layer
    uses it to poll a deadline budget; an exception it raises aborts
    the solve and propagates.
    @raise Invalid_argument on mismatched dimensions. *)

val check : problem -> certificate -> (unit, string) result
(** Verify an optimality certificate in exact arithmetic: [x >= 0],
    [A x = b], dual feasibility [c - A' y >= 0], complementary
    slackness ([x_j > 0] implies a tight dual constraint), and
    [c.x = b.y = objective].  Any tampering with any component is
    detected; the error names the first violated condition. *)

val check_infeasible : problem -> Rat.t array -> (unit, string) result
(** Verify a Farkas certificate: [A' y <= 0] and [b.y > 0]. *)

val check_unbounded :
  problem -> witness:Rat.t array -> ray:Rat.t array -> (unit, string) result
(** Verify an unboundedness certificate: the witness is feasible and
    the ray satisfies [A d = 0], [d >= 0], [c.d < 0]. *)

val feasible : problem -> Rat.t array -> (unit, string) result
(** [feasible p x] checks [A x = b] and [x >= 0] only — membership of
    [x] in the feasible polytope, no optimality claim. *)

val objective_value : problem -> Rat.t array -> Rat.t
(** [c.x], exactly. @raise Invalid_argument on length mismatch. *)

val pivot :
  binv:Rat.t array array ->
  xb:Rat.t array ->
  column:Rat.t array ->
  row:int ->
  unit
(** One revised-simplex basis change, in place: given the entering
    column [column = B^-1 A_j] and the leaving [row], rescale the pivot
    row of [binv] (and [xb]) by the pivot element and eliminate it from
    every other row with fused {!Rat.sub_mul} updates.  This is the
    solver's own inner kernel, exposed for the [simplex pivot] micro
    benchmark and the qcheck laws.
    @raise Invalid_argument if the pivot element is zero. *)

open Bi_num

type problem = {
  a : Rat.t array array;
  b : Rat.t array;
  c : Rat.t array;
}

type certificate = { x : Rat.t array; y : Rat.t array; objective : Rat.t }

type outcome =
  | Optimal of certificate
  | Infeasible of { farkas : Rat.t array }
  | Unbounded of { witness : Rat.t array; ray : Rat.t array }

type stats = { pivots : int }

let validate p =
  let m = Array.length p.a and n = Array.length p.c in
  if Array.length p.b <> m then
    invalid_arg "Simplex: b length differs from the row count of a";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Simplex: ragged constraint matrix")
    p.a

(* ---- exact dot products ----

   Every inner product below runs through one reused [Rat.Acc]: terms
   land as fused multiply-adds on a common-denominator fraction and the
   single canonicalization is deferred to the snapshot.  Accumulators
   are single-owner scratch, which is fine — the solver is sequential
   (parallelism in this codebase lives a level up, across solves). *)

let dot acc u v =
  Rat.Acc.clear acc;
  Array.iteri
    (fun i ui -> if not (Rat.is_zero ui) then Rat.Acc.add_mul acc ui v.(i))
    u;
  Rat.Acc.to_rat acc

(* ---- the pivot kernel ---- *)

let pivot ~binv ~xb ~column ~row =
  let m = Array.length binv in
  let piv = column.(row) in
  if Rat.is_zero piv then invalid_arg "Simplex.pivot: zero pivot element";
  let inv = Rat.inv piv in
  let brow = binv.(row) in
  for k = 0 to m - 1 do
    brow.(k) <- Rat.mul brow.(k) inv
  done;
  xb.(row) <- Rat.mul xb.(row) inv;
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = column.(i) in
      if not (Rat.is_zero f) then begin
        let bi = binv.(i) in
        for k = 0 to m - 1 do
          bi.(k) <- Rat.sub_mul bi.(k) f brow.(k)
        done;
        xb.(i) <- Rat.sub_mul xb.(i) f xb.(row)
      end
    end
  done

(* ---- the solver ---- *)

let solve ?(on_pivot = fun () -> ()) p =
  validate p;
  let m = Array.length p.b and n = Array.length p.c in
  (* Sign-normalize so the all-artificial basis is feasible; duals are
     mapped back through the same flips before they leave this
     function, so certificates always refer to the caller's rows. *)
  let flip = Array.map (fun bi -> Stdlib.( < ) (Rat.sign bi) 0) p.b in
  let a =
    Array.mapi
      (fun i row -> if flip.(i) then Array.map Rat.neg row else row)
      p.a
  in
  let b = Array.mapi (fun i bi -> if flip.(i) then Rat.neg bi else bi) p.b in
  let unflip y = Array.mapi (fun i yi -> if flip.(i) then Rat.neg yi else yi) y in
  let binv =
    Array.init m (fun i ->
        Array.init m (fun j -> if i = j then Rat.one else Rat.zero))
  in
  let basis = Array.init m (fun i -> n + i) in
  let in_basis = Array.make (n + m) false in
  Array.iter (fun v -> in_basis.(v) <- true) basis;
  let xb = Array.copy b in
  let pivots = ref 0 in
  let acc = Rat.Acc.create () in
  (* y = c_B B^-1, for the current phase's cost on basic variables. *)
  let price cost =
    Array.init m (fun k ->
        Rat.Acc.clear acc;
        for r = 0 to m - 1 do
          let cb = cost basis.(r) in
          if not (Rat.is_zero cb) then Rat.Acc.add_mul acc cb binv.(r).(k)
        done;
        Rat.Acc.to_rat acc)
  in
  (* Bland pricing: the lowest-index nonbasic original column with a
     negative reduced cost.  Artificials never re-enter. *)
  let entering cost y =
    let yneg = Array.map Rat.neg y in
    let found = ref (-1) in
    let j = ref 0 in
    while Stdlib.( < ) !found 0 && Stdlib.( < ) !j n do
      if not in_basis.(!j) then begin
        Rat.Acc.clear acc;
        Rat.Acc.add acc (cost !j);
        for k = 0 to m - 1 do
          let akj = a.(k).(!j) in
          if not (Rat.is_zero akj) then Rat.Acc.add_mul acc yneg.(k) akj
        done;
        if Stdlib.( < ) (Rat.sign (Rat.Acc.to_rat acc)) 0 then found := !j
      end;
      incr j
    done;
    !found
  in
  let ftran j =
    Array.init m (fun r ->
        Rat.Acc.clear acc;
        for k = 0 to m - 1 do
          let akj = a.(k).(j) in
          if not (Rat.is_zero akj) then Rat.Acc.add_mul acc binv.(r).(k) akj
        done;
        Rat.Acc.to_rat acc)
  in
  (* Minimum-ratio test; ties broken by the smallest leaving basis
     index — the second half of Bland's anti-cycling rule. *)
  let ratio_test w =
    let best = ref (-1) in
    let best_ratio = ref Rat.zero in
    for r = 0 to m - 1 do
      if Stdlib.( > ) (Rat.sign w.(r)) 0 then begin
        let rho = Rat.div xb.(r) w.(r) in
        if
          Stdlib.( < ) !best 0
          || Rat.( < ) rho !best_ratio
          || (Rat.equal rho !best_ratio
             && Stdlib.( < ) basis.(r) basis.(!best))
        then begin
          best := r;
          best_ratio := rho
        end
      end
    done;
    !best
  in
  let enter_basis ~row j w =
    incr pivots;
    pivot ~binv ~xb ~column:w ~row;
    in_basis.(basis.(row)) <- false;
    basis.(row) <- j;
    in_basis.(j) <- true
  in
  let rec optimize cost =
    on_pivot ();
    let y = price cost in
    match entering cost y with
    | -1 -> `Optimal y
    | j -> (
      let w = ftran j in
      match ratio_test w with
      | -1 -> `Unbounded (j, w)
      | r ->
        enter_basis ~row:r j w;
        optimize cost)
  in
  let objective cost =
    Rat.Acc.clear acc;
    for r = 0 to m - 1 do
      Rat.Acc.add_mul acc (cost basis.(r)) xb.(r)
    done;
    Rat.Acc.to_rat acc
  in
  let extract_x () =
    let x = Array.make n Rat.zero in
    for r = 0 to m - 1 do
      if Stdlib.( < ) basis.(r) n then x.(basis.(r)) <- xb.(r)
    done;
    x
  in
  (* Phase 1: minimize the artificial mass. *)
  let phase1_cost v = if Stdlib.( >= ) v n then Rat.one else Rat.zero in
  (match optimize phase1_cost with
  | `Unbounded _ ->
    (* The phase-1 objective is bounded below by zero; unboundedness
       here would contradict exactness. *)
    assert false
  | `Optimal _ -> ());
  if Stdlib.( > ) (Rat.sign (objective phase1_cost)) 0 then
    (Infeasible { farkas = unflip (price phase1_cost) }, { pivots = !pivots })
  else begin
    (* Drive basic artificials out on any nonzero tableau entry; a row
       with none is a redundant constraint — its artificial stays basic
       at zero and the whole [B^-1 A] row is zero, so phase 2 can never
       move it. *)
    for r = 0 to m - 1 do
      if Stdlib.( >= ) basis.(r) n then begin
        let found = ref (-1) in
        let j = ref 0 in
        while Stdlib.( < ) !found 0 && Stdlib.( < ) !j n do
          if not in_basis.(!j) then begin
            Rat.Acc.clear acc;
            for k = 0 to m - 1 do
              let akj = a.(k).(!j) in
              if not (Rat.is_zero akj) then
                Rat.Acc.add_mul acc binv.(r).(k) akj
            done;
            if not (Rat.is_zero (Rat.Acc.to_rat acc)) then found := !j
          end;
          incr j
        done;
        match !found with
        | -1 -> ()
        | j ->
          let w = ftran j in
          enter_basis ~row:r j w
      end
    done;
    (* Phase 2: the caller's objective; inert artificials cost zero. *)
    let phase2_cost v = if Stdlib.( < ) v n then p.c.(v) else Rat.zero in
    match optimize phase2_cost with
    | `Optimal y ->
      ( Optimal
          {
            x = extract_x ();
            y = unflip y;
            objective = objective phase2_cost;
          },
        { pivots = !pivots } )
    | `Unbounded (j, w) ->
      let ray = Array.make n Rat.zero in
      ray.(j) <- Rat.one;
      for r = 0 to m - 1 do
        if Stdlib.( < ) basis.(r) n && not (Rat.is_zero w.(r)) then
          ray.(basis.(r)) <- Rat.neg w.(r)
      done;
      (Unbounded { witness = extract_x (); ray }, { pivots = !pivots })
  end

(* ---- certificate checking ----

   Checks rebuild every claimed identity from the problem data alone;
   they share no state with the solver, so a certificate that has been
   tampered with in any coordinate fails on the first violated
   condition. *)

let objective_value p x =
  if Array.length x <> Array.length p.c then
    invalid_arg "Simplex.objective_value: length mismatch";
  dot (Rat.Acc.create ()) p.c x

let feasible p x =
  let m = Array.length p.b and n = Array.length p.c in
  if Array.length x <> n then Error "primal vector has the wrong length"
  else begin
    let acc = Rat.Acc.create () in
    let bad_sign = ref (-1) and bad_row = ref (-1) in
    Array.iteri
      (fun j xj ->
        if Stdlib.( < ) (Rat.sign xj) 0 && Stdlib.( < ) !bad_sign 0 then
          bad_sign := j)
      x;
    for i = 0 to m - 1 do
      if Stdlib.( < ) !bad_row 0 && not (Rat.equal (dot acc p.a.(i) x) p.b.(i))
      then bad_row := i
    done;
    if Stdlib.( >= ) !bad_sign 0 then
      Error (Printf.sprintf "x_%d is negative" !bad_sign)
    else if Stdlib.( >= ) !bad_row 0 then
      Error (Printf.sprintf "row %d of A x = b is violated" !bad_row)
    else Ok ()
  end

(* Reduced costs [c - A' y], exactly. *)
let reduced_costs p y =
  let m = Array.length p.b in
  let acc = Rat.Acc.create () in
  Array.mapi
    (fun j cj ->
      Rat.Acc.clear acc;
      Rat.Acc.add acc cj;
      for i = 0 to m - 1 do
        let aij = p.a.(i).(j) in
        if not (Rat.is_zero aij) then
          Rat.Acc.add_mul acc (Rat.neg y.(i)) aij
      done;
      Rat.Acc.to_rat acc)
    p.c

let check p cert =
  let m = Array.length p.b and n = Array.length p.c in
  if Array.length cert.x <> n then Error "primal vector has the wrong length"
  else if Array.length cert.y <> m then
    Error "dual vector has the wrong length"
  else
    match feasible p cert.x with
    | Error e -> Error ("primal infeasible: " ^ e)
    | Ok () -> (
      let d = reduced_costs p cert.y in
      let bad_dual = ref (-1) and bad_slack = ref (-1) in
      for j = n - 1 downto 0 do
        if Stdlib.( < ) (Rat.sign d.(j)) 0 then bad_dual := j;
        if
          Stdlib.( > ) (Rat.sign cert.x.(j)) 0
          && not (Rat.is_zero d.(j))
        then bad_slack := j
      done;
      if Stdlib.( >= ) !bad_dual 0 then
        Error
          (Printf.sprintf "dual infeasible: reduced cost of column %d is negative"
             !bad_dual)
      else if Stdlib.( >= ) !bad_slack 0 then
        Error
          (Printf.sprintf
             "complementary slackness fails at column %d: x_j > 0 with a slack dual constraint"
             !bad_slack)
      else
        let acc = Rat.Acc.create () in
        let cx = dot acc p.c cert.x in
        let by = dot acc p.b cert.y in
        if not (Rat.equal cx cert.objective) then
          Error "objective mismatch: c.x differs from the claimed value"
        else if not (Rat.equal by cert.objective) then
          Error "duality gap: b.y differs from the claimed value"
        else Ok ())

let check_infeasible p y =
  let m = Array.length p.b and n = Array.length p.c in
  if Array.length y <> m then Error "Farkas vector has the wrong length"
  else begin
    let acc = Rat.Acc.create () in
    let bad = ref (-1) in
    for j = n - 1 downto 0 do
      Rat.Acc.clear acc;
      for i = 0 to m - 1 do
        let aij = p.a.(i).(j) in
        if not (Rat.is_zero aij) then Rat.Acc.add_mul acc y.(i) aij
      done;
      if Stdlib.( > ) (Rat.sign (Rat.Acc.to_rat acc)) 0 then bad := j
    done;
    if Stdlib.( >= ) !bad 0 then
      Error (Printf.sprintf "A' y has a positive entry at column %d" !bad)
    else if Stdlib.( <= ) (Rat.sign (dot acc p.b y)) 0 then
      Error "b.y is not positive"
    else Ok ()
  end

let check_unbounded p ~witness ~ray =
  let m = Array.length p.b and n = Array.length p.c in
  match feasible p witness with
  | Error e -> Error ("witness: " ^ e)
  | Ok () ->
    if Array.length ray <> n then Error "ray has the wrong length"
    else begin
      let acc = Rat.Acc.create () in
      let bad_sign = ref (-1) and bad_row = ref (-1) in
      Array.iteri
        (fun j dj ->
          if Stdlib.( < ) (Rat.sign dj) 0 && Stdlib.( < ) !bad_sign 0 then
            bad_sign := j)
        ray;
      for i = 0 to m - 1 do
        if
          Stdlib.( < ) !bad_row 0
          && not (Rat.is_zero (dot acc p.a.(i) ray))
        then bad_row := i
      done;
      if Stdlib.( >= ) !bad_sign 0 then
        Error (Printf.sprintf "ray component %d is negative" !bad_sign)
      else if Stdlib.( >= ) !bad_row 0 then
        Error (Printf.sprintf "A d is nonzero at row %d" !bad_row)
      else if Stdlib.( >= ) (Rat.sign (dot acc p.c ray)) 0 then
        Error "c.d is not negative: the ray does not improve the objective"
      else Ok ()
    end

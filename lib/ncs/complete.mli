(** Complete-information network cost-sharing games (Anshelevich et al.).

    A game is a graph with edge costs and one (source, destination) pair
    per agent.  An agent buys a set of edges; she pays, for each bought
    edge, its cost divided by the number of buyers, and incurs infinite
    cost unless her purchase connects her pair.

    Buying any superset of a path is weakly dominated by buying the path
    alone (payments are monotone in the bought set and the social cost is
    the union cost), so solvers work over the finite space of simple
    paths.  With this reduction optima, equilibria and the Rosenthal
    potential are all computed exactly. *)

open Bi_num

type t

val make : Bi_graph.Graph.t -> (int * int) array -> t
(** [make g pairs]: [pairs.(i)] is agent [i]'s (source, destination).
    @raise Invalid_argument on empty [pairs] or out-of-range vertices. *)

val graph : t -> Bi_graph.Graph.t
val players : t -> int
val pairs : t -> (int * int) array

val paths : t -> int -> int list list
(** Agent [i]'s action space: all simple paths between her terminals
    (the empty path when source = destination).  Memoized. *)

(** A profile assigns each agent an index into her [paths] list. *)

val action_edges : t -> int array -> int -> int list
val loads : t -> int array -> int array
(** Edge id -> number of agents whose path uses it. *)

val player_cost : t -> int array -> int -> Rat.t
val social_cost : t -> int array -> Rat.t
(** Total cost of the union of bought edges (the paper's [K_t]). *)

val potential : t -> int array -> Rat.t
(** Rosenthal potential [sum_e c(e) * H(load(e))]. *)

val to_strategic : t -> Bi_game.Strategic.t

val profile_space : t -> int array Seq.t
(** Every path profile, in the lexicographic order the exhaustive
    solvers scan. *)

val profile_count : t -> float
(** Size of {!profile_space} as a float (it overflows an int exactly
    when it matters).  The certified tier's [auto] mode compares this
    against its enumeration threshold to pick a solver. *)

val optimum :
  ?pool:Bi_engine.Pool.t -> ?budget:Bi_engine.Budget.t -> t -> Rat.t * int array
(** Social optimum over path profiles, by exhaustive product search.
    With [?pool], the profile space is sharded by agent 0's path index
    and searched in parallel; the result (value and witnessing profile)
    is identical to the sequential scan for any pool size.  With
    [?budget], the scan polls the deadline between profiles and raises
    {!Bi_engine.Budget.Expired} past it. *)

val optimum_rooted : t -> Extended.t option
(** Exact optimum via the Steiner subset-DP when all agents share a
    common source vertex (covers every construction in the paper);
    [None] when sources differ.  Much faster than {!optimum} and used to
    cross-check it. *)

val best_response : t -> int array -> int -> int
(** Index (into agent [i]'s path list) of her exact best response to the
    others' paths, computed by a shortest-path search under shared-cost
    edge weights [c(e) / (load_others(e) + 1)] — no enumeration. *)

val is_nash : t -> int array -> bool
val nash_equilibria : t -> int array Seq.t

val best_equilibrium :
  ?pool:Bi_engine.Pool.t ->
  ?budget:Bi_engine.Budget.t ->
  t ->
  (Rat.t * int array) option

val worst_equilibrium :
  ?pool:Bi_engine.Pool.t ->
  ?budget:Bi_engine.Budget.t ->
  t ->
  (Rat.t * int array) option
(** Extreme Nash equilibria; parallel over leading-strategy shards when
    [?pool] is given, deterministically (first-wins tie-breaking matches
    the sequential enumeration); deadline-polled when [?budget] is
    given, as in {!optimum}. *)

val equilibrium_by_dynamics : ?max_steps:int -> t -> int array -> int array option
(** Iterated exact best responses; the Rosenthal potential strictly
    decreases at every move, so this reaches a Nash equilibrium (or
    gives up after [max_steps], default [100_000]). *)

val price_of_stability_bound_holds : ?pool:Bi_engine.Pool.t -> t -> bool
(** Checks [best-eq <= H(k) * opt] (Anshelevich et al., used by the
    paper's Lemma 3.8 in its complete-information form). *)

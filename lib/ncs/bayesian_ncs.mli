(** Bayesian network cost-sharing games (Section 2 of the paper).

    A Bayesian NCS game is a graph with edge costs plus a common prior
    over arrays of (source, destination) pairs — one pair per agent.
    Each agent learns her own pair (her type) and buys an edge set; cost
    sharing is as in {!Complete}.

    The lowering into {!Bi_bayes.Bayesian} uses, for agent [i]:
    - types: the distinct pairs agent [i] receives in the prior support;
    - actions: the union of all simple paths between any of her possible
      pairs (a path is {e valid} for a type when it connects that type's
      terminals; invalid purchases cost infinity).

    Equilibria and optima are attained at valid strategy profiles, so the
    solvers enumerate only those; the full action space remains available
    to deviation checks, which is what makes the equilibrium predicate
    exact. *)

open Bi_num

type t

val make : Bi_graph.Graph.t -> prior:(int * int) array Bi_prob.Dist.t -> t
(** @raise Invalid_argument when support arrays disagree on the number
    of agents, mention out-of-range vertices, or leave some agent with a
    type admitting no connecting path. *)

val graph : t -> Bi_graph.Graph.t
val players : t -> int
val game : t -> Bi_bayes.Bayesian.t
(** The lowered general Bayesian game. *)

val prior : t -> (int * int) array Bi_prob.Dist.t
(** The common prior over (source, destination) pair profiles the game
    was built from — the description half that, together with {!graph},
    determines every quantity this library computes (and hence the
    game's cache fingerprint). *)

val types : t -> int -> (int * int) array
(** Agent [i]'s type table (type index -> pair). *)

val actions : t -> int -> int list array
(** Agent [i]'s action table (action index -> path as edge ids). *)

val valid_actions : t -> int -> int -> int list
(** Action indices valid for agent [i] at type [ti]. *)

val state_action_profiles : t -> int array -> int array Seq.t
(** [state_action_profiles g t] enumerates the action profiles valid at
    type profile [t] (agent [i] restricted to [valid_actions g i
    t.(i)]), lexicographically.  These are the per-state column blocks
    of the correlated-play LPs; invalid actions are excluded because
    they cost infinity and can never carry mass in a finite-cost joint
    distribution.
    @raise Invalid_argument when [t] has the wrong length. *)

val complete_game : t -> (int * int) array -> Complete.t
(** The underlying complete-information NCS game for a pair profile;
    memoized. *)

val valid_profile_count : t -> float
(** Number of valid strategy profiles (the space the exhaustive solvers
    scan), as a float — it overflows an int exactly when enumeration is
    infeasible.  The certified tier's [auto] mode compares this against
    its threshold to choose between exhaustion and certification. *)

val valid_strategy_profiles : t -> Bi_bayes.Bayesian.strategy_profile Seq.t

val bayesian_equilibria : t -> Bi_bayes.Bayesian.strategy_profile Seq.t
(** All pure Bayesian equilibria (search restricted to valid profiles,
    which is exact — see above). *)

val social_cost : t -> Bi_bayes.Bayesian.strategy_profile -> Extended.t

val bayesian_potential : t -> Bi_bayes.Bayesian.strategy_profile -> Rat.t
(** [E_p[sum_e c(e) H(load_e)]] — the Bayesian potential of
    Observation 2.1 instantiated with the Rosenthal potential. *)

val equilibrium_by_dynamics :
  ?max_steps:int -> t -> Bi_bayes.Bayesian.strategy_profile option
(** Bayesian best-response dynamics started from everyone's
    per-type shortest path; converges by the Bayesian potential. *)

val shortest_path_profile : t -> Bi_bayes.Bayesian.strategy_profile
(** The profile where each agent buys a shortest path for each type. *)

val measures_exhaustive : ?pool:Bi_engine.Pool.t -> t -> Bi_bayes.Measures.report
(** All six quantities; partial-information side by exhaustive valid
    enumeration, complete-information side by per-type-profile search.
    Exponential in all directions — small instances only.  With [?pool],
    every enumeration is sharded by the leading agent's strategy and run
    across worker domains; results (including tie-breaking on the
    witnessing profiles) are identical for any pool size, and the best
    and worst Bayesian equilibria are found in one fused sweep. *)

type analysis = {
  report : Bi_bayes.Measures.report;
  opt_p_witness : Bi_bayes.Bayesian.strategy_profile;
  best_eq_p_witness : Bi_bayes.Bayesian.strategy_profile option;
  worst_eq_p_witness : Bi_bayes.Bayesian.strategy_profile option;
}
(** A full ignorance report with the witnessing strategy profiles of the
    partial-information extrema — the unit held by the result cache.
    Witness indices refer to this build's type/action enumeration order;
    the values are representation-independent. *)

val analyze :
  ?pool:Bi_engine.Pool.t -> ?budget:Bi_engine.Budget.t -> t -> analysis
(** {!measures_exhaustive} plus the witness profiles, at the same cost
    (the exhaustive sweeps already track the witnesses).  With
    [?budget], every exhaustive sweep polls the deadline between
    profiles and the whole call raises {!Bi_engine.Budget.Expired} once
    it passes — an analysis is always either complete and exact or
    failed fast, never partial. *)

val opt_c :
  ?pool:Bi_engine.Pool.t -> ?budget:Bi_engine.Budget.t -> t -> Extended.t

val best_eq_c :
  ?pool:Bi_engine.Pool.t -> ?budget:Bi_engine.Budget.t -> t -> Extended.t option

val worst_eq_c :
  ?pool:Bi_engine.Pool.t -> ?budget:Bi_engine.Budget.t -> t -> Extended.t option

val opt_p_exhaustive :
  ?pool:Bi_engine.Pool.t ->
  ?budget:Bi_engine.Budget.t ->
  t ->
  Extended.t * Bi_bayes.Bayesian.strategy_profile

val opt_p_branch_and_bound :
  ?node_budget:int -> t -> Extended.t * Bi_bayes.Bayesian.strategy_profile * bool
(** Exact [optP] by depth-first branch and bound over (agent, type)
    assignments, pruning with the per-state union-cost lower bound
    (edges already forced can only gain company, never disappear).
    Returns [(value, profile, certified)]: [certified] is true when the
    search space was exhausted within [node_budget] (default [5_000_000]
    nodes), in which case the value is provably optimal; otherwise the
    value is the best found — still an upper bound on [optP].  Orders of
    magnitude faster than {!opt_p_exhaustive} on games whose optimum
    shares edges aggressively (the paper's constructions). *)

val best_eq_p :
  ?pool:Bi_engine.Pool.t ->
  ?budget:Bi_engine.Budget.t ->
  t ->
  (Extended.t * Bi_bayes.Bayesian.strategy_profile) option

val worst_eq_p :
  ?pool:Bi_engine.Pool.t ->
  ?budget:Bi_engine.Budget.t ->
  t ->
  (Extended.t * Bi_bayes.Bayesian.strategy_profile) option

val lemma_3_1_bound_holds : ?pool:Bi_engine.Pool.t -> t -> bool
(** Universal bound [worst-eqP <= k * optC] (Lemma 3.1); vacuously true
    when no pure Bayesian equilibrium exists. *)

val lemma_3_8_bound_holds : ?pool:Bi_engine.Pool.t -> t -> bool
(** Universal bound [best-eqP <= H(k) * optP] (Lemma 3.8). *)

open Bi_num
module Graph = Bi_graph.Graph
module Paths = Bi_graph.Paths
module Pool = Bi_engine.Pool
module Reduce = Bi_engine.Reduce
module Budget = Bi_engine.Budget

type t = {
  graph : Graph.t;
  pairs : (int * int) array;
  path_table : int list array array; (* agent -> action index -> edge ids *)
  edge_arrays : int array array array; (* path_table with paths as int arrays *)
  edge_cost : Rat.t array; (* edge id -> cost, avoids Graph.cost lookups *)
}

let make graph pairs =
  if Array.length pairs = 0 then invalid_arg "Complete.make: no agents";
  let n = Graph.n_vertices graph in
  Array.iter
    (fun (x, y) ->
      if x < 0 || x >= n || y < 0 || y >= n then
        invalid_arg "Complete.make: terminal out of range")
    pairs;
  let path_table =
    Array.map
      (fun (x, y) ->
        let ps = Paths.simple_paths graph x y in
        if ps = [] then invalid_arg "Complete.make: agent with disconnected terminals";
        Array.of_list ps)
      pairs
  in
  let edge_arrays = Array.map (Array.map Array.of_list) path_table in
  let edge_cost = Array.init (Graph.n_edges graph) (Graph.cost graph) in
  { graph; pairs; path_table; edge_arrays; edge_cost }

let graph g = g.graph
let players g = Array.length g.pairs
let pairs g = Array.copy g.pairs
let paths g i = Array.to_list g.path_table.(i)

let action_edges g profile i = g.path_table.(i).(profile.(i))

(* As a float: the whole point of the count is deciding when this space
   is too large to enumerate, i.e. exactly when an int would overflow. *)
let profile_count g =
  Array.fold_left
    (fun acc row -> acc *. float_of_int (Array.length row))
    1.0 g.path_table

(* Load-vector plumbing.  The exhaustive solvers evaluate millions of
   profiles, so cost queries are phrased against caller-owned scratch —
   a load vector filled once per profile and adjusted by deltas for
   deviations, plus a reusable rational accumulator so the per-edge cost
   sums allocate no intermediate rationals. *)

type scratch = { load : int array; racc : Rat.Acc.t }

let scratch g = { load = Array.make (Graph.n_edges g.graph) 0; racc = Rat.Acc.create () }

let fill_loads g load profile =
  Array.fill load 0 (Array.length load) 0;
  Array.iteri
    (fun i ai ->
      let es = g.edge_arrays.(i).(ai) in
      for k = 0 to Array.length es - 1 do
        let e = es.(k) in
        load.(e) <- load.(e) + 1
      done)
    profile

let add_path_loads load es =
  for k = 0 to Array.length es - 1 do
    let e = es.(k) in
    load.(e) <- load.(e) + 1
  done

let remove_path_loads load es =
  for k = 0 to Array.length es - 1 do
    let e = es.(k) in
    load.(e) <- load.(e) - 1
  done

(* Shared cost of a path under [sc.load]; every edge of the path must
   already be counted in the loads.  Summed through [sc.racc], snapshot
   returned — identical to the term-by-term fold, no intermediates. *)
let path_cost_under g sc es =
  Rat.Acc.clear sc.racc;
  for k = 0 to Array.length es - 1 do
    let e = es.(k) in
    Rat.Acc.add_div_int sc.racc g.edge_cost.(e) sc.load.(e)
  done;
  Rat.Acc.to_rat sc.racc

(* Shared cost the deviating agent would pay on candidate path [es]
   when [sc.load] counts everyone else (the deviator joins each edge). *)
let deviation_cost_under g sc es =
  Rat.Acc.clear sc.racc;
  for k = 0 to Array.length es - 1 do
    let e = es.(k) in
    Rat.Acc.add_div_int sc.racc g.edge_cost.(e) (sc.load.(e) + 1)
  done;
  Rat.Acc.to_rat sc.racc

let social_cost_of_loads g sc =
  Rat.Acc.clear sc.racc;
  for e = 0 to Array.length sc.load - 1 do
    if sc.load.(e) > 0 then Rat.Acc.add sc.racc g.edge_cost.(e)
  done;
  Rat.Acc.to_rat sc.racc

(* Nash test against filled loads: agent [i]'s deviation to any other
   path is costed as a delta — her current path leaves the loads, the
   candidate joins them — and the loads are restored before return. *)
let is_nash_under g sc profile =
  let k = Array.length g.pairs in
  let rec player i =
    if i >= k then true
    else begin
      let table = g.edge_arrays.(i) in
      let mine = table.(profile.(i)) in
      let current = path_cost_under g sc mine in
      remove_path_loads sc.load mine;
      let rec scan j =
        if j >= Array.length table then true
        else if j = profile.(i) then scan (j + 1)
        else if Rat.( < ) (deviation_cost_under g sc table.(j)) current then false
        else scan (j + 1)
      in
      let ok = scan 0 in
      add_path_loads sc.load mine;
      ok && player (i + 1)
    end
  in
  player 0

let loads g profile =
  let load = Array.make (Graph.n_edges g.graph) 0 in
  fill_loads g load profile;
  load

let player_cost g profile i =
  let sc = scratch g in
  fill_loads g sc.load profile;
  path_cost_under g sc g.edge_arrays.(i).(profile.(i))

let social_cost g profile =
  let sc = scratch g in
  fill_loads g sc.load profile;
  social_cost_of_loads g sc

let potential g profile =
  let sc = scratch g in
  fill_loads g sc.load profile;
  Rat.Acc.clear sc.racc;
  Array.iteri
    (fun e l ->
      if l > 0 then Rat.Acc.add_mul sc.racc g.edge_cost.(e) (Rat.harmonic l))
    sc.load;
  Rat.Acc.to_rat sc.racc

let to_strategic g =
  Bi_game.Strategic.make ~players:(players g)
    ~actions:(Array.map Array.length g.path_table)
    ~cost:(fun profile i -> Extended.of_rat (player_cost g profile i))

let profile_space g =
  Bi_ds.Combinat.product_arrays
    (Array.map (fun tbl -> Array.init (Array.length tbl) Fun.id) g.path_table)

(* Profile search sharded by agent 0's path index (the leading-strategy
   prefix): each shard folds the product of the remaining agents' choices
   sequentially, and shards are reduced in index order, so the winner —
   value and profile alike — is the one the plain left-to-right scan over
   [profile_space] would pick, for any pool size.  Each shard owns one
   scratch block — load vector plus rational accumulator — filled per
   profile and delta-adjusted for deviation checks. *)
let sharded_search ?pool ?(budget = Budget.unlimited) ~monoid ~score g =
  let k = players g in
  let rest =
    Array.map
      (fun tbl -> Array.init (Array.length tbl) Fun.id)
      (Array.sub g.path_table 1 (k - 1))
  in
  let eval a0 =
    let sc = scratch g in
    Seq.fold_left
      (fun acc tail ->
        Budget.check budget;
        let profile = Array.make k a0 in
        Array.blit tail 0 profile 1 (k - 1);
        match score sc profile with
        | None -> acc
        | Some v -> monoid.Reduce.combine acc v)
      monoid.Reduce.empty
      (Bi_ds.Combinat.product_arrays rest)
  in
  let shards = Array.init (Array.length g.path_table.(0)) Fun.id in
  match pool with
  | Some pool when Pool.size pool > 1 -> Reduce.map_reduce pool ~monoid eval shards
  | _ -> Reduce.fold monoid (Array.map eval shards)

let optimum ?pool ?budget g =
  match
    sharded_search ?pool ?budget
      ~monoid:(Reduce.first_min ~cmp:Rat.compare)
      ~score:(fun sc p ->
        fill_loads g sc.load p;
        Some (Some (p, social_cost_of_loads g sc)))
      g
  with
  | Some (a, c) -> (c, a)
  | None -> assert false

let optimum_rooted g =
  let root, _ = g.pairs.(0) in
  if Array.for_all (fun (x, _) -> x = root) g.pairs then
    Some
      (Bi_graph.Steiner_dp.steiner_cost g.graph ~root
         ~terminals:(Array.to_list (Array.map snd g.pairs)))
  else None

(* Exact best response: the shared-cost weight of an edge for agent i is
   c(e)/(load_others(e) + 1), and her path cost is additive in these
   weights, so a Dijkstra over the reweighted graph finds it. *)
let best_response g profile i =
  let load = loads g profile in
  List.iter (fun e -> load.(e) <- load.(e) - 1) (action_edges g profile i);
  let reweighted =
    Graph.make (Graph.kind g.graph) ~n:(Graph.n_vertices g.graph)
      (List.map
         (fun e ->
           ( e.Graph.src,
             e.Graph.dst,
             Rat.div_int e.Graph.cost (load.(e.Graph.id) + 1) ))
         (Graph.edges g.graph))
  in
  let x, y = g.pairs.(i) in
  match Graph.shortest_path reweighted x y with
  | None -> assert false (* terminals are connected by construction *)
  | Some ids ->
    (* Edge ids coincide between g.graph and its reweighting. *)
    let table = g.path_table.(i) in
    let found = ref None in
    Array.iteri (fun j p -> if !found = None && p = ids then found := Some j) table;
    (match !found with
     | Some j -> j
     | None ->
       (* The Dijkstra path is simple, so it is always in the table;
          this fallback exists only for belt and braces. *)
       let cost_of j =
         Rat.sum
           (List.map
              (fun e -> Rat.div_int (Graph.cost g.graph e) (load.(e) + 1))
              table.(j))
       in
       let best = ref 0 in
       Array.iteri
         (fun j _ -> if Rat.( < ) (cost_of j) (cost_of !best) then best := j)
         table;
       !best)

let is_nash g profile =
  let sc = scratch g in
  fill_loads g sc.load profile;
  is_nash_under g sc profile

let nash_equilibria g = Seq.filter (is_nash g) (profile_space g)

(* Equilibrium scoring for the sharded searches: one load fill per
   profile serves both the Nash predicate (delta deviations) and the
   social cost (union of loaded edges). *)
let nash_score g sc p =
  fill_loads g sc.load p;
  if is_nash_under g sc p then Some (Some (p, social_cost_of_loads g sc)) else None

let best_equilibrium ?pool ?budget g =
  Option.map
    (fun (a, c) -> (c, a))
    (sharded_search ?pool ?budget
       ~monoid:(Reduce.first_min ~cmp:Rat.compare)
       ~score:(nash_score g) g)

let worst_equilibrium ?pool ?budget g =
  Option.map
    (fun (a, c) -> (c, a))
    (sharded_search ?pool ?budget
       ~monoid:(Reduce.first_max ~cmp:Rat.compare)
       ~score:(nash_score g) g)

let equilibrium_by_dynamics ?(max_steps = 100_000) g start =
  let profile = Array.copy start in
  let rec go steps =
    if steps > max_steps then None
    else begin
      let moved = ref false in
      for i = 0 to players g - 1 do
        if not !moved then begin
          let j = best_response g profile i in
          if j <> profile.(i) then begin
            let deviated = Array.copy profile in
            deviated.(i) <- j;
            if Rat.( < ) (player_cost g deviated i) (player_cost g profile i) then begin
              profile.(i) <- j;
              moved := true
            end
          end
        end
      done;
      if !moved then go (steps + 1) else Some (Array.copy profile)
    end
  in
  go 0

let price_of_stability_bound_holds ?pool g =
  match best_equilibrium ?pool g with
  | None -> false
  | Some (best_eq, _) ->
    let opt, _ = optimum ?pool g in
    Rat.( <= ) best_eq (Rat.mul (Rat.harmonic (players g)) opt)

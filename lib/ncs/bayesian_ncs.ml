open Bi_num
module Graph = Bi_graph.Graph
module Paths = Bi_graph.Paths
module Dist = Bi_prob.Dist
module Bayesian = Bi_bayes.Bayesian
module Measures = Bi_bayes.Measures
module Pool = Bi_engine.Pool
module Reduce = Bi_engine.Reduce

type t = {
  graph : Graph.t;
  players : int;
  types : (int * int) array array;
  actions : int list array array;
  valid : int list array array; (* player -> type -> valid action indices *)
  game : Bayesian.t;
  prior_pairs : (int * int) array Dist.t;
  complete_memo : ((int * int) list, Complete.t) Hashtbl.t;
}

let dedup_keep_order xs =
  let rec go seen acc = function
    | [] -> List.rev acc
    | x :: rest ->
      if List.mem x seen then go seen acc rest else go (x :: seen) (x :: acc) rest
  in
  go [] [] xs

let make graph ~prior =
  let support = Dist.support prior in
  let players =
    match support with
    | [] -> invalid_arg "Bayesian_ncs.make: empty prior"
    | t :: _ -> Array.length t
  in
  if players = 0 then invalid_arg "Bayesian_ncs.make: no agents";
  List.iter
    (fun t ->
      if Array.length t <> players then
        invalid_arg "Bayesian_ncs.make: inconsistent number of agents in prior")
    support;
  let n = Graph.n_vertices graph in
  List.iter
    (Array.iter (fun (x, y) ->
         if x < 0 || x >= n || y < 0 || y >= n then
           invalid_arg "Bayesian_ncs.make: terminal out of range"))
    support;
  (* Agent i's types: distinct pairs in support order. *)
  let types =
    Array.init players (fun i ->
        Array.of_list (dedup_keep_order (List.map (fun t -> t.(i)) support)))
  in
  (* Agent i's actions: union of simple paths over her types. *)
  let actions =
    Array.init players (fun i ->
        let all =
          List.concat_map
            (fun (x, y) ->
              let ps = Paths.simple_paths graph x y in
              if ps = [] then
                invalid_arg "Bayesian_ncs.make: type with disconnected terminals";
              ps)
            (Array.to_list types.(i))
        in
        Array.of_list (dedup_keep_order all))
  in
  let valid =
    Array.init players (fun i ->
        Array.map
          (fun (x, y) ->
            List.filter
              (fun ai -> Graph.is_path_between graph actions.(i).(ai) x y)
              (List.init (Array.length actions.(i)) Fun.id))
          types.(i))
  in
  let type_index i pair =
    let rec go ti =
      if ti >= Array.length types.(i) then assert false
      else if types.(i).(ti) = pair then ti
      else go (ti + 1)
    in
    go 0
  in
  let prior_types =
    Dist.map (fun t -> Array.mapi type_index t) prior
  in
  let cost t a i =
    let x, y = types.(i).(t.(i)) in
    let mine = actions.(i).(a.(i)) in
    if not (Graph.is_path_between graph mine x y) then Extended.Inf
    else begin
      let load = Array.make (Graph.n_edges graph) 0 in
      Array.iteri
        (fun j aj ->
          List.iter (fun e -> load.(e) <- load.(e) + 1) actions.(j).(aj))
        a;
      Extended.of_rat
        (Rat.sum
           (List.map (fun e -> Rat.div_int (Graph.cost graph e) load.(e)) mine))
    end
  in
  let game =
    Bayesian.make ~players
      ~n_types:(Array.map Array.length types)
      ~n_actions:(Array.map Array.length actions)
      ~prior:prior_types ~cost
  in
  { graph; players; types; actions; valid; game;
    prior_pairs = prior; complete_memo = Hashtbl.create 32 }

let graph g = g.graph
let players g = g.players
let game g = g.game
let types g i = Array.copy g.types.(i)
let actions g i = Array.copy g.actions.(i)
let valid_actions g i ti = g.valid.(i).(ti)

let complete_game g pair_profile =
  let key = Array.to_list pair_profile in
  match Hashtbl.find_opt g.complete_memo key with
  | Some c -> c
  | None ->
    let c = Complete.make g.graph pair_profile in
    Hashtbl.add g.complete_memo key c;
    c

(* Agent [i]'s valid strategies: one valid action per type, in the order
   [valid_strategy_profiles] enumerates them. *)
let player_strategies g i =
  Array.of_list
    (List.of_seq
       (Seq.map Array.of_list (Bi_ds.Combinat.product (Array.to_list g.valid.(i)))))

let valid_strategy_profiles g =
  let per_player =
    List.init g.players (fun i ->
        let choices = Array.to_list g.valid.(i) in
        List.of_seq (Seq.map Array.of_list (Bi_ds.Combinat.product choices)))
  in
  Seq.map Array.of_list (Bi_ds.Combinat.product per_player)

(* Valid-profile search sharded by agent 0's strategy (the leading-
   strategy prefix).  Shards run on the pool; each folds the product of
   the remaining agents' strategies sequentially, and the shard partials
   are reduced in shard order — so value, witnessing profile and
   tie-breaking all coincide with the sequential left-to-right scan over
   [valid_strategy_profiles], whatever the pool size. *)
let sharded_search ?pool ~monoid ~score g =
  let rest =
    List.init (g.players - 1) (fun j ->
        Array.to_list (player_strategies g (j + 1)))
  in
  let eval s0 =
    Seq.fold_left
      (fun acc tail ->
        let profile = Array.make g.players s0 in
        List.iteri (fun j sj -> profile.(j + 1) <- sj) tail;
        match score profile with
        | None -> acc
        | Some v -> monoid.Reduce.combine acc v)
      monoid.Reduce.empty
      (Bi_ds.Combinat.product rest)
  in
  let shards = player_strategies g 0 in
  match pool with
  | Some pool when Pool.size pool > 1 -> Reduce.map_reduce pool ~monoid eval shards
  | _ -> Reduce.fold monoid (Array.map eval shards)

let bayesian_equilibria g =
  Seq.filter (Bayesian.is_bayesian_equilibrium g.game) (valid_strategy_profiles g)

let social_cost g s = Bayesian.social_cost g.game s

let bayesian_potential g s =
  Dist.expectation
    (fun t ->
      let load = Array.make (Graph.n_edges g.graph) 0 in
      Array.iteri
        (fun j tj ->
          List.iter (fun e -> load.(e) <- load.(e) + 1) g.actions.(j).(s.(j).(tj)))
        t;
      let acc = ref Rat.zero in
      Array.iteri
        (fun e l ->
          if l > 0 then
            acc := Rat.add !acc (Rat.mul (Graph.cost g.graph e) (Rat.harmonic l)))
        load;
      !acc)
    (Bayesian.prior g.game)

let shortest_path_profile g =
  Array.init g.players (fun i ->
      Array.mapi
        (fun ti _ ->
          match g.valid.(i).(ti) with
          | [] -> assert false (* every type has a connecting path by make *)
          | candidates ->
            let path_cost ai = Paths.path_cost g.graph g.actions.(i).(ai) in
            List.fold_left
              (fun best ai ->
                if Rat.( < ) (path_cost ai) (path_cost best) then ai else best)
              (List.hd candidates) (List.tl candidates))
        g.types.(i))

let equilibrium_by_dynamics ?max_steps g =
  Bayesian.best_response_dynamics ?max_steps g.game (shortest_path_profile g)

let opt_c ?pool g =
  Dist.expectation_ext
    (fun pairs ->
      let c = complete_game g pairs in
      match Complete.optimum_rooted c with
      | Some v -> v
      | None -> Extended.of_rat (fst (Complete.optimum ?pool c)))
    g.prior_pairs

(* The memoizing [complete_game] stays on the calling domain; parallelism
   lives inside the per-state Complete solvers. *)
let expect_eq_c pick g =
  let exception Missing in
  try
    Some
      (Dist.expectation_ext
         (fun pairs ->
           match pick (complete_game g pairs) with
           | Some (v, _) -> Extended.of_rat v
           | None -> raise Missing)
         g.prior_pairs)
  with Missing -> None

let best_eq_c ?pool g = expect_eq_c (fun c -> Complete.best_equilibrium ?pool c) g
let worst_eq_c ?pool g = expect_eq_c (fun c -> Complete.worst_equilibrium ?pool c) g

let opt_p_exhaustive ?pool g =
  match
    sharded_search ?pool
      ~monoid:(Reduce.first_min ~cmp:Extended.compare)
      ~score:(fun s -> Some (Some (s, social_cost g s)))
      g
  with
  | Some (s, c) -> (c, s)
  | None -> assert false

let opt_p_branch_and_bound ?(node_budget = 5_000_000) g =
  let support = Array.of_list (Dist.to_list (Bayesian.prior g.game)) in
  let n_states = Array.length support in
  let n_edges = Graph.n_edges g.graph in
  (* Decision variables: one (agent, type) pair per positive-marginal
     type, ordered by decreasing marginal probability so that heavy
     states accumulate cost (and trigger pruning) early. *)
  let variables =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun ti ->
            let marginal =
              Rat.sum
                (List.filter_map
                   (fun (t, p) -> if t.(i) = ti then Some p else None)
                   (Array.to_list support))
            in
            if Rat.is_zero marginal then None else Some (i, ti, marginal))
          (Bi_ds.Combinat.range (Array.length g.types.(i))))
      (Bi_ds.Combinat.range g.players)
  in
  let variables =
    Array.of_list
      (List.sort (fun (_, _, m1) (_, _, m2) -> Rat.compare m2 m1) variables)
  in
  let n_vars = Array.length variables in
  (* Per-state purchase multiset: count.(state).(edge) buyers so far. *)
  let count = Array.make_matrix n_states n_edges 0 in
  let state_cost = Array.make n_states Rat.zero in
  let bound () =
    let acc = ref Rat.zero in
    for s = 0 to n_states - 1 do
      acc := Rat.add !acc (Rat.mul (snd support.(s)) state_cost.(s))
    done;
    !acc
  in
  let states_of i ti =
    List.filter
      (fun s -> (fst support.(s)).(i) = ti)
      (Bi_ds.Combinat.range n_states)
  in
  let add_path states path =
    List.iter
      (fun s ->
        List.iter
          (fun e ->
            if count.(s).(e) = 0 then
              state_cost.(s) <- Rat.add state_cost.(s) (Graph.cost g.graph e);
            count.(s).(e) <- count.(s).(e) + 1)
          path)
      states
  in
  let remove_path states path =
    List.iter
      (fun s ->
        List.iter
          (fun e ->
            count.(s).(e) <- count.(s).(e) - 1;
            if count.(s).(e) = 0 then
              state_cost.(s) <- Rat.sub state_cost.(s) (Graph.cost g.graph e))
          path)
      states
  in
  (* Seed the incumbent with benevolent descent. *)
  let incumbent_profile = ref (Bayesian.benevolent_descent g.game (shortest_path_profile g)) in
  let incumbent = ref (social_cost g !incumbent_profile) in
  let assignment = Array.init g.players (fun i -> Array.make (Array.length g.types.(i)) 0) in
  (* Types outside the support keep an arbitrary valid action. *)
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun ti _ ->
          match g.valid.(i).(ti) with
          | a :: _ -> row.(ti) <- a
          | [] -> ())
        row)
    assignment;
  let nodes = ref 0 in
  let exhausted = ref true in
  let rec dfs v =
    if !nodes > node_budget then exhausted := false
    else begin
      incr nodes;
      if v >= n_vars then begin
        let value = Extended.of_rat (bound ()) in
        if Extended.( < ) value !incumbent then begin
          incumbent := value;
          incumbent_profile := Array.map Array.copy assignment
        end
      end
      else begin
        let i, ti, _ = variables.(v) in
        let states = states_of i ti in
        (* Try cheap-looking actions first: sort by immediate increase. *)
        let scored =
          List.map
            (fun ai ->
              let path = g.actions.(i).(ai) in
              add_path states path;
              let b = bound () in
              remove_path states path;
              (ai, b))
            g.valid.(i).(ti)
        in
        let scored = List.sort (fun (_, b1) (_, b2) -> Rat.compare b1 b2) scored in
        List.iter
          (fun (ai, b) ->
            if Extended.( < ) (Extended.of_rat b) !incumbent then begin
              let path = g.actions.(i).(ai) in
              add_path states path;
              assignment.(i).(ti) <- ai;
              dfs (v + 1);
              remove_path states path
            end)
          scored
      end
    end
  in
  dfs 0;
  (!incumbent, !incumbent_profile, !exhausted)

let eq_score g s =
  if Bayesian.is_bayesian_equilibrium g.game s then Some (social_cost g s)
  else None

let extreme_eq_p ?pool monoid g =
  Option.map
    (fun (s, c) -> (c, s))
    (sharded_search ?pool ~monoid
       ~score:(fun s -> Option.map (fun c -> Some (s, c)) (eq_score g s))
       g)

let best_eq_p ?pool g = extreme_eq_p ?pool (Reduce.first_min ~cmp:Extended.compare) g
let worst_eq_p ?pool g = extreme_eq_p ?pool (Reduce.first_max ~cmp:Extended.compare) g

(* Best and worst Bayesian equilibrium in a single sweep: the equilibrium
   predicate dominates the cost of the scan, so fusing the two extreme
   searches halves the work of [measures_exhaustive]. *)
let eq_extremes ?pool g =
  sharded_search ?pool
    ~monoid:
      (Reduce.both
         (Reduce.first_min ~cmp:Extended.compare)
         (Reduce.first_max ~cmp:Extended.compare))
    ~score:(fun s ->
      Option.map
        (fun c ->
          let cell = Some (s, c) in
          (cell, cell))
        (eq_score g s))
    g

let measures_exhaustive ?pool g =
  let opt_p, _ = opt_p_exhaustive ?pool g in
  let best, worst = eq_extremes ?pool g in
  {
    Measures.opt_p;
    best_eq_p = Option.map snd best;
    worst_eq_p = Option.map snd worst;
    opt_c = opt_c ?pool g;
    best_eq_c = best_eq_c ?pool g;
    worst_eq_c = worst_eq_c ?pool g;
  }

let lemma_3_1_bound_holds ?pool g =
  match worst_eq_p ?pool g with
  | None -> true
  | Some (worst, _) ->
    Extended.( <= ) worst (Extended.mul (Extended.of_int g.players) (opt_c ?pool g))

let lemma_3_8_bound_holds ?pool g =
  match best_eq_p ?pool g with
  | None -> true
  | Some (best, _) ->
    let opt_p, _ = opt_p_exhaustive ?pool g in
    Extended.( <= ) best
      (Extended.mul (Extended.of_rat (Rat.harmonic g.players)) opt_p)

open Bi_num
module Graph = Bi_graph.Graph
module Paths = Bi_graph.Paths
module Dist = Bi_prob.Dist
module Bayesian = Bi_bayes.Bayesian
module Measures = Bi_bayes.Measures
module Pool = Bi_engine.Pool
module Reduce = Bi_engine.Reduce
module Budget = Bi_engine.Budget

type t = {
  graph : Graph.t;
  players : int;
  types : (int * int) array array;
  actions : int list array array;
  valid : int list array array; (* player -> type -> valid action indices *)
  game : Bayesian.t;
  prior_pairs : (int * int) array Dist.t;
  complete_memo : ((int * int) list, Complete.t) Hashtbl.t;
  (* Solver-side precomputation: the exhaustive searches evaluate every
     valid strategy profile, so paths are kept as int arrays, validity as
     a table, and the prior support as an indexed array with, per (agent,
     type), the support states where that type is realized. *)
  edge_arrays : int array array array; (* player -> action -> edge ids *)
  edge_cost : Rat.t array;
  valid_tbl : bool array array array; (* player -> type -> action *)
  support_w : (int array * Rat.t) array; (* lowered prior, Dist order *)
  states_by_type : int array array array; (* player -> type -> state idxs *)
}

let dedup_keep_order xs =
  let seen = Hashtbl.create 64 in
  List.rev
    (List.fold_left
       (fun acc x ->
         if Hashtbl.mem seen x then acc
         else begin
           Hashtbl.add seen x ();
           x :: acc
         end)
       [] xs)

let make graph ~prior =
  let support = Dist.support prior in
  let players =
    match support with
    | [] -> invalid_arg "Bayesian_ncs.make: empty prior"
    | t :: _ -> Array.length t
  in
  if players = 0 then invalid_arg "Bayesian_ncs.make: no agents";
  List.iter
    (fun t ->
      if Array.length t <> players then
        invalid_arg "Bayesian_ncs.make: inconsistent number of agents in prior")
    support;
  let n = Graph.n_vertices graph in
  List.iter
    (Array.iter (fun (x, y) ->
         if x < 0 || x >= n || y < 0 || y >= n then
           invalid_arg "Bayesian_ncs.make: terminal out of range"))
    support;
  (* Agent i's types: distinct pairs in support order. *)
  let types =
    Array.init players (fun i ->
        Array.of_list (dedup_keep_order (List.map (fun t -> t.(i)) support)))
  in
  (* Agent i's actions: union of simple paths over her types. *)
  let actions =
    Array.init players (fun i ->
        let all =
          List.concat_map
            (fun (x, y) ->
              let ps = Paths.simple_paths graph x y in
              if ps = [] then
                invalid_arg "Bayesian_ncs.make: type with disconnected terminals";
              ps)
            (Array.to_list types.(i))
        in
        Array.of_list (dedup_keep_order all))
  in
  let valid =
    Array.init players (fun i ->
        Array.map
          (fun (x, y) ->
            List.filter
              (fun ai -> Graph.is_path_between graph actions.(i).(ai) x y)
              (List.init (Array.length actions.(i)) Fun.id))
          types.(i))
  in
  (* Pair -> type index, hashed (types are deduplicated, so first = only). *)
  let type_tbl =
    Array.init players (fun i ->
        let h = Hashtbl.create (Array.length types.(i)) in
        Array.iteri (fun ti pair -> Hashtbl.add h pair ti) types.(i);
        h)
  in
  let type_index i pair = Hashtbl.find type_tbl.(i) pair in
  let prior_types =
    Dist.map (fun t -> Array.mapi type_index t) prior
  in
  let cost t a i =
    let x, y = types.(i).(t.(i)) in
    let mine = actions.(i).(a.(i)) in
    if not (Graph.is_path_between graph mine x y) then Extended.Inf
    else begin
      let load = Array.make (Graph.n_edges graph) 0 in
      Array.iteri
        (fun j aj ->
          List.iter (fun e -> load.(e) <- load.(e) + 1) actions.(j).(aj))
        a;
      (* Plain fold: the closure is invoked from pool workers, so no
         scratch accumulator can be shared, and paths are short enough
         that [Rat.add]'s zero shortcut beats setting one up per call. *)
      let total = ref Rat.zero in
      List.iter
        (fun e -> total := Rat.add !total (Rat.div_int (Graph.cost graph e) load.(e)))
        mine;
      Extended.of_rat !total
    end
  in
  let game =
    Bayesian.make ~players
      ~n_types:(Array.map Array.length types)
      ~n_actions:(Array.map Array.length actions)
      ~prior:prior_types ~cost
  in
  let edge_arrays = Array.map (Array.map Array.of_list) actions in
  let edge_cost = Array.init (Graph.n_edges graph) (Graph.cost graph) in
  let valid_tbl =
    Array.init players (fun i ->
        Array.map
          (fun valid_ais ->
            let row = Array.make (Array.length actions.(i)) false in
            List.iter (fun ai -> row.(ai) <- true) valid_ais;
            row)
          valid.(i))
  in
  let support_w = Array.of_list (Dist.to_list prior_types) in
  let states_by_type =
    Array.init players (fun i ->
        Array.init (Array.length types.(i)) (fun ti ->
            let idxs = ref [] in
            Array.iteri
              (fun sidx (t, _) -> if t.(i) = ti then idxs := sidx :: !idxs)
              support_w;
            Array.of_list (List.rev !idxs)))
  in
  { graph; players; types; actions; valid; game;
    prior_pairs = prior; complete_memo = Hashtbl.create 32;
    edge_arrays; edge_cost; valid_tbl; support_w; states_by_type }

let graph g = g.graph
let players g = g.players
let game g = g.game
let prior g = g.prior_pairs
let types g i = Array.copy g.types.(i)
let actions g i = Array.copy g.actions.(i)
let valid_actions g i ti = g.valid.(i).(ti)

(* Per-state column blocks of the correlated-play LPs: the action
   profiles valid at one support state.  Invalid actions cost infinity,
   so no finite-cost distribution puts mass on them — excluding them
   keeps every LP coefficient a finite rational. *)
let state_action_profiles g t =
  if Array.length t <> g.players then
    invalid_arg "Bncs.state_action_profiles: type profile length";
  let choices = Array.to_list (Array.mapi (fun i ti -> g.valid.(i).(ti)) t) in
  Seq.map Array.of_list (Bi_ds.Combinat.product choices)

(* Float for the same reason as [Complete.profile_count]: the count
   exists to detect enumeration infeasibility, where ints overflow. *)
let valid_profile_count g =
  let acc = ref 1.0 in
  Array.iter
    (Array.iter (fun vs -> acc := !acc *. float_of_int (List.length vs)))
    g.valid;
  !acc

let complete_game g pair_profile =
  let key = Array.to_list pair_profile in
  match Hashtbl.find_opt g.complete_memo key with
  | Some c -> c
  | None ->
    let c = Complete.make g.graph pair_profile in
    Hashtbl.add g.complete_memo key c;
    c

(* Incremental profile evaluation.  [scratch] is caller-owned: a load
   matrix with one vector per prior-support state, filled once per
   strategy profile, after which social costs read the loaded edges
   directly and the equilibrium predicate prices deviations as deltas
   (remove the deviator's path from her type's states, cost each
   candidate at load + 1, restore); plus two reusable rational
   accumulators — [racc] for inner per-path/per-state sums and [wacc]
   for the weighted sums layered over them — so the evaluation allocates
   no intermediate rationals.  All quantities stay exact, so every value
   and comparison agrees with the generic [Bayesian] evaluation. *)

type scratch = { loads : int array array; racc : Rat.Acc.t; wacc : Rat.Acc.t }

let make_scratch g =
  {
    loads = Array.make_matrix (Array.length g.support_w) (Graph.n_edges g.graph) 0;
    racc = Rat.Acc.create ();
    wacc = Rat.Acc.create ();
  }

(* Fill the per-state load vectors for profile [s].  Returns false when
   some realized action fails to connect its type's terminals; callers
   then fall back to the generic evaluation, which prices those states at
   infinity.  (Profiles from [valid_strategy_profiles] always pass.) *)
let fill_loads g loads s =
  let ok = ref true in
  Array.iteri
    (fun sidx (t, _) ->
      let load = loads.(sidx) in
      Array.fill load 0 (Array.length load) 0;
      Array.iteri
        (fun i ti ->
          let ai = s.(i).(ti) in
          if not g.valid_tbl.(i).(ti).(ai) then ok := false;
          let es = g.edge_arrays.(i).(ai) in
          for k = 0 to Array.length es - 1 do
            let e = es.(k) in
            load.(e) <- load.(e) + 1
          done)
        t)
    g.support_w;
  !ok

(* Expected union cost: per state, every player pays her shared costs,
   which telescope to the plain cost of the loaded edge set. *)
let expected_union_cost g sc =
  Rat.Acc.clear sc.wacc;
  Array.iteri
    (fun sidx (_, w) ->
      let load = sc.loads.(sidx) in
      Rat.Acc.clear sc.racc;
      for e = 0 to Array.length load - 1 do
        if load.(e) > 0 then Rat.Acc.add sc.racc g.edge_cost.(e)
      done;
      Rat.Acc.add_mul sc.wacc w (Rat.Acc.to_rat sc.racc))
    g.support_w;
  Rat.Acc.to_rat sc.wacc

(* Inner path sums run through [sc.racc] (cleared per call); callers
   layering weighted sums over them use [sc.wacc]. *)
let path_cost_loaded g sc load es =
  Rat.Acc.clear sc.racc;
  for k = 0 to Array.length es - 1 do
    let e = es.(k) in
    Rat.Acc.add_div_int sc.racc g.edge_cost.(e) load.(e)
  done;
  Rat.Acc.to_rat sc.racc

let deviation_cost_loaded g sc load es =
  Rat.Acc.clear sc.racc;
  for k = 0 to Array.length es - 1 do
    let e = es.(k) in
    Rat.Acc.add_div_int sc.racc g.edge_cost.(e) (load.(e) + 1)
  done;
  Rat.Acc.to_rat sc.racc

let add_path_loaded load es =
  for k = 0 to Array.length es - 1 do
    let e = es.(k) in
    load.(e) <- load.(e) + 1
  done

let remove_path_loaded load es =
  for k = 0 to Array.length es - 1 do
    let e = es.(k) in
    load.(e) <- load.(e) - 1
  done

(* Equilibrium predicate against filled loads, for profiles valid on the
   whole support.  Interim costs are compared with unnormalized
   conditional weights (the prior weights of the states where (i, ti) is
   realized): dividing by the positive marginal rescales both sides of
   every comparison, so the verdict matches the generic predicate.
   Invalid deviations carry infinite interim cost there and can never
   improve on a finite current cost, so they are skipped.  The loads are
   restored before returning. *)
let is_eq_loaded g sc s =
  let rec player i =
    if i >= g.players then true else typ i 0
  and typ i ti =
    if ti >= Array.length g.types.(i) then player (i + 1)
    else begin
      let states = g.states_by_type.(i).(ti) in
      (* No support state realizes (i, ti): no interim constraint. *)
      if Array.length states = 0 then typ i (ti + 1)
      else begin
        let ai = s.(i).(ti) in
        let mine = g.edge_arrays.(i).(ai) in
        Rat.Acc.clear sc.wacc;
        Array.iter
          (fun sidx ->
            let _, w = g.support_w.(sidx) in
            Rat.Acc.add_mul sc.wacc w (path_cost_loaded g sc sc.loads.(sidx) mine))
          states;
        let current = Rat.Acc.to_rat sc.wacc in
        Array.iter (fun sidx -> remove_path_loaded sc.loads.(sidx) mine) states;
        let improving = ref false in
        let nact = Array.length g.edge_arrays.(i) in
        let ai' = ref 0 in
        while (not !improving) && !ai' < nact do
          let a = !ai' in
          if a <> ai && g.valid_tbl.(i).(ti).(a) then begin
            let cand = g.edge_arrays.(i).(a) in
            Rat.Acc.clear sc.wacc;
            Array.iter
              (fun sidx ->
                let _, w = g.support_w.(sidx) in
                Rat.Acc.add_mul sc.wacc w
                  (deviation_cost_loaded g sc sc.loads.(sidx) cand))
              states;
            if Rat.( < ) (Rat.Acc.to_rat sc.wacc) current then improving := true
          end;
          incr ai'
        done;
        Array.iter (fun sidx -> add_path_loaded sc.loads.(sidx) mine) states;
        if !improving then false else typ i (ti + 1)
      end
    end
  in
  player 0

let is_equilibrium_with g sc s =
  if fill_loads g sc.loads s then is_eq_loaded g sc s
  else Bayesian.is_bayesian_equilibrium g.game s

let social_cost_with g sc s =
  if fill_loads g sc.loads s then Extended.of_rat (expected_union_cost g sc)
  else Bayesian.social_cost g.game s

(* Agent [i]'s valid strategies: one valid action per type, in the order
   [valid_strategy_profiles] enumerates them. *)
let player_strategies g i =
  Array.of_list
    (List.of_seq
       (Seq.map Array.of_list (Bi_ds.Combinat.product (Array.to_list g.valid.(i)))))

let valid_strategy_profiles g =
  let per_player =
    List.init g.players (fun i ->
        let choices = Array.to_list g.valid.(i) in
        List.of_seq (Seq.map Array.of_list (Bi_ds.Combinat.product choices)))
  in
  Seq.map Array.of_list (Bi_ds.Combinat.product per_player)

(* Valid-profile search sharded by agent 0's strategy (the leading-
   strategy prefix).  Shards run on the pool; each folds the product of
   the remaining agents' strategies sequentially, and the shard partials
   are reduced in shard order — so value, witnessing profile and
   tie-breaking all coincide with the sequential left-to-right scan over
   [valid_strategy_profiles], whatever the pool size.  Each shard owns
   one scratch block handed to its scoring function. *)
let sharded_search ?pool ?(budget = Budget.unlimited) ~monoid ~score g =
  let rest =
    List.init (g.players - 1) (fun j ->
        Array.to_list (player_strategies g (j + 1)))
  in
  let eval s0 =
    let sc = make_scratch g in
    Seq.fold_left
      (fun acc tail ->
        Budget.check budget;
        let profile = Array.make g.players s0 in
        List.iteri (fun j sj -> profile.(j + 1) <- sj) tail;
        match score sc profile with
        | None -> acc
        | Some v -> monoid.Reduce.combine acc v)
      monoid.Reduce.empty
      (Bi_ds.Combinat.product rest)
  in
  let shards = player_strategies g 0 in
  match pool with
  | Some pool when Pool.size pool > 1 -> Reduce.map_reduce pool ~monoid eval shards
  | _ -> Reduce.fold monoid (Array.map eval shards)

let bayesian_equilibria g =
  let sc = make_scratch g in
  Seq.filter (is_equilibrium_with g sc) (valid_strategy_profiles g)

let social_cost g s =
  let sc = make_scratch g in
  social_cost_with g sc s

let bayesian_potential g s =
  let load = Array.make (Graph.n_edges g.graph) 0 in
  let acc = Rat.Acc.create () in
  Dist.expectation
    (fun t ->
      Array.fill load 0 (Array.length load) 0;
      Array.iteri
        (fun j tj ->
          List.iter (fun e -> load.(e) <- load.(e) + 1) g.actions.(j).(s.(j).(tj)))
        t;
      Rat.Acc.clear acc;
      Array.iteri
        (fun e l ->
          if l > 0 then Rat.Acc.add_mul acc g.edge_cost.(e) (Rat.harmonic l))
        load;
      Rat.Acc.to_rat acc)
    (Bayesian.prior g.game)

let shortest_path_profile g =
  Array.init g.players (fun i ->
      Array.mapi
        (fun ti _ ->
          match g.valid.(i).(ti) with
          | [] -> assert false (* every type has a connecting path by make *)
          | candidates ->
            let path_cost ai = Paths.path_cost g.graph g.actions.(i).(ai) in
            List.fold_left
              (fun best ai ->
                if Rat.( < ) (path_cost ai) (path_cost best) then ai else best)
              (List.hd candidates) (List.tl candidates))
        g.types.(i))

let equilibrium_by_dynamics ?max_steps g =
  Bayesian.best_response_dynamics ?max_steps g.game (shortest_path_profile g)

let opt_c ?pool ?budget g =
  Dist.expectation_ext
    (fun pairs ->
      let c = complete_game g pairs in
      match Complete.optimum_rooted c with
      | Some v -> v
      | None -> Extended.of_rat (fst (Complete.optimum ?pool ?budget c)))
    g.prior_pairs

(* The memoizing [complete_game] stays on the calling domain; parallelism
   lives inside the per-state Complete solvers. *)
let expect_eq_c pick g =
  let exception Missing in
  try
    Some
      (Dist.expectation_ext
         (fun pairs ->
           match pick (complete_game g pairs) with
           | Some (v, _) -> Extended.of_rat v
           | None -> raise Missing)
         g.prior_pairs)
  with Missing -> None

let best_eq_c ?pool ?budget g =
  expect_eq_c (fun c -> Complete.best_equilibrium ?pool ?budget c) g

let worst_eq_c ?pool ?budget g =
  expect_eq_c (fun c -> Complete.worst_equilibrium ?pool ?budget c) g

let opt_p_exhaustive ?pool ?budget g =
  match
    sharded_search ?pool ?budget
      ~monoid:(Reduce.first_min ~cmp:Extended.compare)
      ~score:(fun sc s -> Some (Some (s, social_cost_with g sc s)))
      g
  with
  | Some (s, c) -> (c, s)
  | None -> assert false

let opt_p_branch_and_bound ?(node_budget = 5_000_000) g =
  let support = Array.of_list (Dist.to_list (Bayesian.prior g.game)) in
  let n_states = Array.length support in
  let n_edges = Graph.n_edges g.graph in
  (* Decision variables: one (agent, type) pair per positive-marginal
     type, ordered by decreasing marginal probability so that heavy
     states accumulate cost (and trigger pruning) early. *)
  let variables =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun ti ->
            let marginal =
              Rat.sum
                (List.filter_map
                   (fun (t, p) -> if t.(i) = ti then Some p else None)
                   (Array.to_list support))
            in
            if Rat.is_zero marginal then None else Some (i, ti, marginal))
          (Bi_ds.Combinat.range (Array.length g.types.(i))))
      (Bi_ds.Combinat.range g.players)
  in
  let variables =
    Array.of_list
      (List.sort (fun (_, _, m1) (_, _, m2) -> Rat.compare m2 m1) variables)
  in
  let n_vars = Array.length variables in
  (* Per-state purchase multiset: count.(state).(edge) buyers so far. *)
  let count = Array.make_matrix n_states n_edges 0 in
  let state_cost = Array.make n_states Rat.zero in
  let bacc = Rat.Acc.create () in
  let bound () =
    Rat.Acc.clear bacc;
    for s = 0 to n_states - 1 do
      Rat.Acc.add_mul bacc (snd support.(s)) state_cost.(s)
    done;
    Rat.Acc.to_rat bacc
  in
  let states_of i ti =
    List.filter
      (fun s -> (fst support.(s)).(i) = ti)
      (Bi_ds.Combinat.range n_states)
  in
  let add_path states path =
    List.iter
      (fun s ->
        List.iter
          (fun e ->
            if count.(s).(e) = 0 then
              state_cost.(s) <- Rat.add state_cost.(s) (Graph.cost g.graph e);
            count.(s).(e) <- count.(s).(e) + 1)
          path)
      states
  in
  let remove_path states path =
    List.iter
      (fun s ->
        List.iter
          (fun e ->
            count.(s).(e) <- count.(s).(e) - 1;
            if count.(s).(e) = 0 then
              state_cost.(s) <- Rat.sub state_cost.(s) (Graph.cost g.graph e))
          path)
      states
  in
  (* Seed the incumbent with benevolent descent. *)
  let incumbent_profile = ref (Bayesian.benevolent_descent g.game (shortest_path_profile g)) in
  let incumbent = ref (social_cost g !incumbent_profile) in
  let assignment = Array.init g.players (fun i -> Array.make (Array.length g.types.(i)) 0) in
  (* Types outside the support keep an arbitrary valid action. *)
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun ti _ ->
          match g.valid.(i).(ti) with
          | a :: _ -> row.(ti) <- a
          | [] -> ())
        row)
    assignment;
  let nodes = ref 0 in
  let exhausted = ref true in
  let rec dfs v =
    if !nodes > node_budget then exhausted := false
    else begin
      incr nodes;
      if v >= n_vars then begin
        let value = Extended.of_rat (bound ()) in
        if Extended.( < ) value !incumbent then begin
          incumbent := value;
          incumbent_profile := Array.map Array.copy assignment
        end
      end
      else begin
        let i, ti, _ = variables.(v) in
        let states = states_of i ti in
        (* Try cheap-looking actions first: sort by immediate increase. *)
        let scored =
          List.map
            (fun ai ->
              let path = g.actions.(i).(ai) in
              add_path states path;
              let b = bound () in
              remove_path states path;
              (ai, b))
            g.valid.(i).(ti)
        in
        let scored = List.sort (fun (_, b1) (_, b2) -> Rat.compare b1 b2) scored in
        List.iter
          (fun (ai, b) ->
            if Extended.( < ) (Extended.of_rat b) !incumbent then begin
              let path = g.actions.(i).(ai) in
              add_path states path;
              assignment.(i).(ti) <- ai;
              dfs (v + 1);
              remove_path states path
            end)
          scored
      end
    end
  in
  dfs 0;
  (!incumbent, !incumbent_profile, !exhausted)

(* Equilibrium scoring against a shard-owned load matrix: one fill per
   profile serves the predicate (delta deviations) and the social cost
   (loaded-edge sums).  Profiles invalid somewhere on the support fall
   back to the generic evaluation; [valid_strategy_profiles] never
   produces one. *)
let eq_score_loaded g sc s =
  if fill_loads g sc.loads s then begin
    if is_eq_loaded g sc s then Some (Extended.of_rat (expected_union_cost g sc))
    else None
  end
  else if Bayesian.is_bayesian_equilibrium g.game s then
    Some (Bayesian.social_cost g.game s)
  else None

let extreme_eq_p ?pool ?budget monoid g =
  Option.map
    (fun (s, c) -> (c, s))
    (sharded_search ?pool ?budget ~monoid
       ~score:(fun sc s ->
         Option.map (fun c -> Some (s, c)) (eq_score_loaded g sc s))
       g)

let best_eq_p ?pool ?budget g =
  extreme_eq_p ?pool ?budget (Reduce.first_min ~cmp:Extended.compare) g

let worst_eq_p ?pool ?budget g =
  extreme_eq_p ?pool ?budget (Reduce.first_max ~cmp:Extended.compare) g

(* Best and worst Bayesian equilibrium in a single sweep: the equilibrium
   predicate dominates the cost of the scan, so fusing the two extreme
   searches halves the work of [measures_exhaustive]. *)
let eq_extremes ?pool ?budget g =
  sharded_search ?pool ?budget
    ~monoid:
      (Reduce.both
         (Reduce.first_min ~cmp:Extended.compare)
         (Reduce.first_max ~cmp:Extended.compare))
    ~score:(fun sc s ->
      Option.map
        (fun c ->
          let cell = Some (s, c) in
          (cell, cell))
        (eq_score_loaded g sc s))
    g

type analysis = {
  report : Measures.report;
  opt_p_witness : Bayesian.strategy_profile;
  best_eq_p_witness : Bayesian.strategy_profile option;
  worst_eq_p_witness : Bayesian.strategy_profile option;
}

let analyze ?pool ?budget g =
  let opt_p, opt_p_witness = opt_p_exhaustive ?pool ?budget g in
  let best, worst = eq_extremes ?pool ?budget g in
  {
    report =
      {
        Measures.opt_p;
        best_eq_p = Option.map snd best;
        worst_eq_p = Option.map snd worst;
        opt_c = opt_c ?pool ?budget g;
        best_eq_c = best_eq_c ?pool ?budget g;
        worst_eq_c = worst_eq_c ?pool ?budget g;
      };
    opt_p_witness;
    best_eq_p_witness = Option.map fst best;
    worst_eq_p_witness = Option.map fst worst;
  }

let measures_exhaustive ?pool g = (analyze ?pool g).report

let lemma_3_1_bound_holds ?pool g =
  match worst_eq_p ?pool g with
  | None -> true
  | Some (worst, _) ->
    Extended.( <= ) worst (Extended.mul (Extended.of_int g.players) (opt_c ?pool g))

let lemma_3_8_bound_holds ?pool g =
  match best_eq_p ?pool g with
  | None -> true
  | Some (best, _) ->
    let opt_p, _ = opt_p_exhaustive ?pool g in
    Extended.( <= ) best
      (Extended.mul (Extended.of_rat (Rat.harmonic g.players)) opt_p)

(** Public facade of the Bayesian-ignorance reproduction.

    The library quantifies the effect of agents' local views in Bayesian
    games (Alon, Emek, Feldman, Tennenholtz: "Bayesian ignorance",
    PODC 2010 / TCS 2012) by comparing partial-information social costs
    ([optP], [best-eqP], [worst-eqP]) against prior-averaged
    complete-information ones ([optC], [best-eqC], [worst-eqC]).

    Sub-libraries, re-exported here under stable names:
    - {!Num}: exact bigints / rationals / extended rationals.
    - {!Prob}: exact finite distributions (common priors).
    - {!Graphs}: rational-weighted graphs, shortest paths, Steiner DP.
    - {!Games}: strategic-form and congestion games.
    - {!Bayes}: Bayesian games and the six ignorance measures.
    - {!Ncs}: network cost-sharing games, complete-information and
      Bayesian.
    - {!Steiner}: online Steiner tree and the diamond adversary.
    - {!Embed}: FRT tree embeddings (Lemma 3.4 machinery).
    - {!Minimax}: matrix games and Section 4 (public random bits).
    - {!Constructions}: the paper's lower-bound game families.
    - {!Engine}: domain-pool executor, deterministic map-reduce, and the
      line-oriented JSON result sink.
    - {!Cache}: canonical game fingerprints and the content-addressed
      result cache (in-memory LRU + append-only on-disk store).
    - {!Certify}: the certified solver tier — potential descent,
      branch-and-bound and smoothness brackets, all emitting
      machine-checkable certificates in exact arithmetic.
    - {!Lp}: exact-rational revised simplex with dual-solution
      optimality certificates (Bland's rule, two-phase).
    - {!Correlated}: correlated play — the coarse-correlated and
      communication equilibrium polytopes and the Section-4
      public-randomness values, solved as certified LPs.
    - {!Serve}: the concurrent analysis server and its line-JSON
      protocol and client.
    - {!Router}: the cluster front-end — consistent-hash ring,
      shard membership, quorum replication and failover. *)

module Num = Bi_num
module Ds = Bi_ds
module Prob = Bi_prob
module Graphs = Bi_graph
module Games = Bi_game
module Bayes = Bi_bayes
module Ncs = Bi_ncs
module Steiner = Bi_steiner
module Embed = Bi_embed
module Minimax = Bi_minimax
module Constructions = Bi_constructions
module Engine = Bi_engine
module Cache = Bi_cache
module Certify = Bi_certify
module Lp = Bi_lp
module Correlated = Bi_correlated
module Serve = Bi_serve
module Router = Bi_router
module Report = Report

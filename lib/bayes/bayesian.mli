(** Bayesian games with finite type and action spaces (Section 2 of the
    paper).

    A Bayesian game is [⟨k, {A_i}, {T_i}, {C_{i,t}}, p⟩]: player [i] has
    types [0 .. n_types.(i) - 1] and actions [0 .. n_actions.(i) - 1];
    the common prior [p] is an exact distribution over type profiles;
    [C_{i,t}(a)] is the cost to player [i] of action profile [a] in the
    underlying game induced by type profile [t].

    A {e pure strategy} of player [i] maps each of her types to an
    action; a strategy profile is an [int array array] indexed
    [player -> type -> action].  All expectations are exact rationals. *)

open Bi_num

type t

type strategy_profile = int array array

val make :
  players:int ->
  n_types:int array ->
  n_actions:int array ->
  prior:int array Bi_prob.Dist.t ->
  cost:(int array -> int array -> int -> Extended.t) ->
  t
(** [make ~players ~n_types ~n_actions ~prior ~cost]: [cost t a i] is
    [C_{i,t}(a)].  Type profiles in the prior's support must be arrays of
    length [players] with [t.(i) < n_types.(i)].
    @raise Invalid_argument on malformed dimensions. *)

val players : t -> int
val n_types : t -> int -> int
val n_actions : t -> int -> int
val prior : t -> int array Bi_prob.Dist.t

val underlying_game : t -> int array -> Bi_game.Strategic.t
(** The complete-information game [G_t]; memoized per type profile. *)

val underlying_cost : t -> int array -> int array -> int -> Extended.t
(** [underlying_cost g t a i = C_{i,t}(a)], the raw cost function. *)

val type_marginal : t -> int -> Rat.t array
(** [type_marginal g i].(ti) is [P(t_i = ti)]. *)

(** {1 Costs of strategy profiles} *)

val played_actions : strategy_profile -> int array -> int array
(** [played_actions s t] is the action profile [{s_j(t_j)}_j]. *)

val ex_ante_cost : t -> strategy_profile -> int -> Extended.t
(** [C_i(s) = E_p[C_{i,t}(s(t))]]. *)

val interim_cost : t -> strategy_profile -> int -> int -> Extended.t option
(** [interim_cost g s i ti = E[X_i(s) | t_i = ti]]; [None] when
    [P(t_i = ti) = 0]. *)

val social_cost : t -> strategy_profile -> Extended.t
(** [K(s) = sum_i C_i(s)], the paper's partial-information social cost. *)

val social_cost_at : t -> strategy_profile -> int array -> Extended.t
(** [K(s, t)]: social cost of the induced action profile under [t]. *)

val action_social_cost : t -> int array -> int array -> Extended.t
(** [action_social_cost g t a = K_t(a) = sum_i C_{i,t}(a)] — the social
    cost of a fixed action profile at a type profile, no strategies
    involved.  The LP objectives of the correlated-play subsystem are
    assembled from these values. *)

(** {1 Equilibria} *)

val best_type_deviation : t -> strategy_profile -> int -> int -> (int * Extended.t) option
(** [best_type_deviation g s i ti]: a strictly improving action for
    player [i] at type [ti] (deviations at a single type suffice:
    interim costs at distinct types are independent), with the improved
    interim cost.  [None] when no improvement exists or the type has
    zero probability. *)

val is_bayesian_equilibrium : t -> strategy_profile -> bool

val strategy_profiles : t -> strategy_profile Seq.t
(** Exhaustive enumeration; the space has size
    [prod_i n_actions(i)^n_types(i)] — use only on small games. *)

val bayesian_equilibria : t -> strategy_profile Seq.t

val best_response_dynamics :
  ?max_steps:int -> t -> strategy_profile -> strategy_profile option
(** Iterated single-type best responses; converges on Bayesian potential
    games (Observation 2.1).  [None] after [max_steps] moves (default
    [100_000]). *)

val benevolent_descent :
  ?max_steps:int -> t -> strategy_profile -> strategy_profile
(** Coordinate descent on the social cost [K]: repeatedly applies the
    single-(player, type) action change that most decreases [K] until no
    change helps.  Returns a locally optimal strategy profile — an upper
    bound on [optP] used when exhaustion is infeasible. *)

val random_strategy_profile : Random.State.t -> t -> strategy_profile

(** {1 Bayesian potentials (Observation 2.1)} *)

val bayesian_potential :
  t -> (int array -> int array -> Rat.t) -> strategy_profile -> Rat.t
(** [bayesian_potential g q s = E_p[q_t(s(t))]], where [q t a] is a
    potential for the underlying game [G_t].  By Observation 2.1 this is
    an exact Bayesian potential for [g]. *)

val is_bayesian_potential : t -> (strategy_profile -> Rat.t) -> bool
(** Exhaustively checks the exact-potential identity over all strategy
    profiles and unilateral strategy deviations (finite costs only). *)

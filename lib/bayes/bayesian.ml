open Bi_num

module Dist = Bi_prob.Dist

type t = {
  players : int;
  n_types : int array;
  n_actions : int array;
  prior : int array Dist.t;
  cost : int array -> int array -> int -> Extended.t;
  underlying : (int list, Bi_game.Strategic.t) Hashtbl.t;
  (* conditional.(i).(ti): prior restricted to t_i = ti, renormalized. *)
  conditional : int array Dist.t option array array;
  marginal : Rat.t array array;
}

type strategy_profile = int array array

let make ~players ~n_types ~n_actions ~prior ~cost =
  if players <= 0 then invalid_arg "Bayesian.make: need at least one player";
  if Array.length n_types <> players || Array.length n_actions <> players then
    invalid_arg "Bayesian.make: dimension arrays must have one entry per player";
  Array.iter
    (fun n -> if n <= 0 then invalid_arg "Bayesian.make: empty type space")
    n_types;
  Array.iter
    (fun n -> if n <= 0 then invalid_arg "Bayesian.make: empty action space")
    n_actions;
  List.iter
    (fun t ->
      if Array.length t <> players then
        invalid_arg "Bayesian.make: type profile length mismatch";
      Array.iteri
        (fun i ti ->
          if ti < 0 || ti >= n_types.(i) then
            invalid_arg "Bayesian.make: type out of range in prior support")
        t)
    (Dist.support prior);
  let conditional =
    Array.init players (fun i ->
        Array.init n_types.(i) (fun ti ->
            Dist.condition (fun t -> t.(i) = ti) prior))
  in
  let marginal =
    Array.init players (fun i ->
        Array.init n_types.(i) (fun ti ->
            Dist.probability (fun t -> t.(i) = ti) prior))
  in
  { players; n_types; n_actions; prior; cost;
    underlying = Hashtbl.create 64; conditional; marginal }

let players g = g.players
let n_types g i = g.n_types.(i)
let n_actions g i = g.n_actions.(i)
let prior g = g.prior

let underlying_game g t =
  let key = Array.to_list t in
  match Hashtbl.find_opt g.underlying key with
  | Some game -> game
  | None ->
    let game =
      Bi_game.Strategic.make ~players:g.players ~actions:g.n_actions
        ~cost:(fun a i -> g.cost t a i)
    in
    Hashtbl.add g.underlying key game;
    game

let underlying_cost g t a i = g.cost t a i

let type_marginal g i = Array.copy g.marginal.(i)

let played_actions s t = Array.mapi (fun i ti -> s.(i).(ti)) t

let ex_ante_cost g s i =
  Dist.expectation_ext (fun t -> g.cost t (played_actions s t) i) g.prior

let interim_cost g s i ti =
  Option.map
    (Dist.expectation_ext (fun t -> g.cost t (played_actions s t) i))
    g.conditional.(i).(ti)

let social_cost_at g s t =
  let a = played_actions s t in
  let acc = ref Extended.zero in
  for i = 0 to g.players - 1 do
    acc := Extended.add !acc (g.cost t a i)
  done;
  !acc

let social_cost g s =
  Dist.expectation_ext (fun t -> social_cost_at g s t) g.prior

let action_social_cost g t a =
  let acc = ref Extended.zero in
  for i = 0 to g.players - 1 do
    acc := Extended.add !acc (g.cost t a i)
  done;
  !acc

(* Interim cost of player i at type ti when she plays action [ai]
   there while everyone else follows s. *)
let interim_cost_of_action g s i ti ai =
  Option.map
    (Dist.expectation_ext (fun t ->
         let a = played_actions s t in
         a.(i) <- ai;
         g.cost t a i))
    g.conditional.(i).(ti)

let best_type_deviation g s i ti =
  match interim_cost_of_action g s i ti s.(i).(ti) with
  | None -> None
  | Some current ->
    let best = ref None in
    for ai' = 0 to g.n_actions.(i) - 1 do
      if ai' <> s.(i).(ti) then begin
        match interim_cost_of_action g s i ti ai' with
        | None -> ()
        | Some c' ->
          let improves =
            match !best with
            | None -> Extended.( < ) c' current
            | Some (_, cb) -> Extended.( < ) c' cb
          in
          if improves then best := Some (ai', c')
      end
    done;
    !best

let is_bayesian_equilibrium g s =
  let rec go i ti =
    if i >= g.players then true
    else if ti >= g.n_types.(i) then go (i + 1) 0
    else
      match best_type_deviation g s i ti with
      | Some _ -> false
      | None -> go i (ti + 1)
  in
  go 0 0

let strategy_profiles g =
  let per_player =
    List.init g.players (fun i ->
        List.of_seq
          (Bi_ds.Combinat.functions ~dom:g.n_types.(i)
             (Array.init g.n_actions.(i) Fun.id)))
  in
  Seq.map Array.of_list (Bi_ds.Combinat.product per_player)

let bayesian_equilibria g = Seq.filter (is_bayesian_equilibrium g) (strategy_profiles g)

let copy_profile s = Array.map Array.copy s

let best_response_dynamics ?(max_steps = 100_000) g start =
  let s = copy_profile start in
  let rec go steps =
    if steps > max_steps then None
    else begin
      let moved = ref false in
      for i = 0 to g.players - 1 do
        for ti = 0 to g.n_types.(i) - 1 do
          if not !moved then
            match best_type_deviation g s i ti with
            | Some (ai', _) ->
              s.(i).(ti) <- ai';
              moved := true
            | None -> ()
        done
      done;
      if !moved then go (steps + 1) else Some (copy_profile s)
    end
  in
  go 0

let benevolent_descent ?(max_steps = 100_000) g start =
  let s = copy_profile start in
  let rec go steps =
    if steps > max_steps then s
    else begin
      let current = social_cost g s in
      let best = ref None in
      for i = 0 to g.players - 1 do
        for ti = 0 to g.n_types.(i) - 1 do
          let saved = s.(i).(ti) in
          for ai' = 0 to g.n_actions.(i) - 1 do
            if ai' <> saved then begin
              s.(i).(ti) <- ai';
              let k = social_cost g s in
              let improves =
                match !best with
                | None -> Extended.( < ) k current
                | Some (_, _, _, kb) -> Extended.( < ) k kb
              in
              if improves then best := Some (i, ti, ai', k)
            end
          done;
          s.(i).(ti) <- saved
        done
      done;
      match !best with
      | Some (i, ti, ai', _) ->
        s.(i).(ti) <- ai';
        go (steps + 1)
      | None -> s
    end
  in
  go 0

let random_strategy_profile rng g =
  Array.init g.players (fun i ->
      Array.init g.n_types.(i) (fun _ -> Random.State.int rng g.n_actions.(i)))

let bayesian_potential g q s =
  Dist.expectation (fun t -> q t (played_actions s t)) g.prior

let is_bayesian_potential g q =
  let check s =
    let rec player i =
      if i >= g.players then true
      else begin
        let rec typ ti =
          if ti >= g.n_types.(i) then true
          else begin
            let rec action ai' =
              if ai' >= g.n_actions.(i) then true
              else begin
                let s' = copy_profile s in
                s'.(i).(ti) <- ai';
                let ok =
                  match ex_ante_cost g s i, ex_ante_cost g s' i with
                  | Extended.Fin c, Extended.Fin c' ->
                    Rat.equal (Rat.sub c c') (Rat.sub (q s) (q s'))
                  | Extended.Inf, _ | _, Extended.Inf -> true
                in
                ok && action (ai' + 1)
              end
            in
            action 0 && typ (ti + 1)
          end
        in
        typ 0 && player (i + 1)
      end
    in
    player 0
  in
  Seq.fold_left (fun acc s -> acc && check s) true (strategy_profiles g)

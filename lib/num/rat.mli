(** Exact rational numbers over {!Bigint}.

    Values are kept in canonical form: the denominator is positive and
    coprime with the numerator; zero is [0/1].  Exactness matters for
    this reproduction because the paper's equilibrium arguments hinge on
    strict comparisons between harmonic sums and thresholds such as
    [1 + eps] that float arithmetic would blur. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints n d] is the rational [n/d]. @raise Division_by_zero if [d = 0]. *)

val of_bigint : Bigint.t -> t

val make : Bigint.t -> Bigint.t -> t
(** [make num den]. @raise Division_by_zero if [den] is zero. *)

val num : t -> Bigint.t
val den : t -> Bigint.t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val neg : t -> t
val abs : t -> t

val sub_mul : t -> t -> t -> t
(** [sub_mul x y z] is [x - y*z] computed with a single
    canonicalization (cross-cancelled product, one terminal gcd) —
    the fused row-update step of the exact simplex pivot, where it
    runs once per tableau entry per basis change. *)

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val mul_int : t -> int -> t
val div_int : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val sign : t -> int
val is_zero : t -> bool

val sum : t list -> t

val average : t list -> t
(** Arithmetic mean. @raise Invalid_argument on the empty list. *)

val harmonic : int -> t
(** [harmonic n] is [H(n) = 1 + 1/2 + ... + 1/n]; [harmonic 0 = zero].
    Memoized behind a domain-safe atomic prefix table — the potential
    descent and smoothness engines evaluate harmonic numbers in every
    inner loop.  @raise Invalid_argument on negative [n]. *)

val pow : t -> int -> t
(** Integer powers; negative exponents invert.
    @raise Division_by_zero on [pow zero n] with [n < 0]. *)

val to_float : t -> float
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Mutable in-place accumulator for long rational sums.  The running
    value is one fraction over a common denominator: terms whose
    denominator already divides it land as a fused multiply-add on a
    {!Bigint.Acc} with no canonicalization, and reduction is deferred
    wholesale to [to_rat] — which canonicalizes through {!make}, so the
    snapshot equals the canonical result of folding {!add} term by term.
    Accumulators are single-owner scratch: not thread-safe, never
    shared across domains.  No operation retains its rational
    arguments. *)
module Acc : sig
  type rat := t
  type t

  val create : unit -> t
  (** A fresh accumulator holding zero. *)

  val clear : t -> unit
  (** Reset to zero, retaining internal buffers for reuse. *)

  val add : t -> rat -> unit
  val sub : t -> rat -> unit

  val add_mul : t -> rat -> rat -> unit
  (** [add_mul a x y] adds [x*y] into [a] without building the
      intermediate product rational. *)

  val add_div_int : t -> rat -> int -> unit
  (** [add_div_int a x n] adds [x/n] into [a] — the shape of every
      load-vector cost term.  @raise Division_by_zero if [n = 0]. *)

  val to_rat : t -> rat
  (** Snapshot the current value as a canonical rational.  The
      accumulator is unchanged and may keep accumulating. *)
end

(** Opt-in hash-consing of recurring rationals (harmonic numbers, [j/k]
    grid values).  [intern] maps each canonical rational to one retained
    representative, so repeat producers return {e physically} equal
    values and {!compare} short-circuits without arithmetic.  Tables
    are created per solver call and threaded explicitly; [intern] is
    domain-safe (mutex-protected), so pooled descent restarts may share
    one table.  A table retains every interned value for its own
    lifetime — scope tables to a solver call, not the process. *)
module Hc : sig
  type rat := t
  type t

  val create : ?size:int -> unit -> t

  val intern : t -> rat -> rat
  (** [intern h r] is the canonical representative of [r] in [h]
      (numerically equal to [r]; physically equal across calls). *)

  val of_ints : t -> int -> int -> rat
  (** Interned {!Rat.of_ints}. *)

  val harmonic : t -> int -> rat
  (** Interned {!Rat.harmonic} — shares the process-wide memo table and
      additionally returns one physical representative per [H(n)]. *)

  val stats : t -> int * int * int
  (** [(hits, misses, size)]. *)
end

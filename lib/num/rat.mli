(** Exact rational numbers over {!Bigint}.

    Values are kept in canonical form: the denominator is positive and
    coprime with the numerator; zero is [0/1].  Exactness matters for
    this reproduction because the paper's equilibrium arguments hinge on
    strict comparisons between harmonic sums and thresholds such as
    [1 + eps] that float arithmetic would blur. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints n d] is the rational [n/d]. @raise Division_by_zero if [d = 0]. *)

val of_bigint : Bigint.t -> t

val make : Bigint.t -> Bigint.t -> t
(** [make num den]. @raise Division_by_zero if [den] is zero. *)

val num : t -> Bigint.t
val den : t -> Bigint.t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val neg : t -> t
val abs : t -> t

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val mul_int : t -> int -> t
val div_int : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val sign : t -> int
val is_zero : t -> bool

val sum : t list -> t

val average : t list -> t
(** Arithmetic mean. @raise Invalid_argument on the empty list. *)

val harmonic : int -> t
(** [harmonic n] is [H(n) = 1 + 1/2 + ... + 1/n]; [harmonic 0 = zero].
    Memoized behind a domain-safe atomic prefix table — the potential
    descent and smoothness engines evaluate harmonic numbers in every
    inner loop.  @raise Invalid_argument on negative [n]. *)

val pow : t -> int -> t
(** Integer powers; negative exponents invert.
    @raise Division_by_zero on [pow zero n] with [n < 0]. *)

val to_float : t -> float
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Arbitrary-precision signed integers.

    Values that fit a native [int] are stored as machine words and
    add/sub/mul/divmod/gcd/compare on them run on native arithmetic with
    overflow-checked promotion; larger values fall back to a sign and a
    little-endian magnitude in base 10{^4}.  The representation is
    canonical — the limb form is used exactly for values outside the
    native [int] range, magnitudes carry no leading zero limbs — so
    structurally equal values are numerically equal.  All operations are
    pure.

    The limb tier favours obvious correctness over speed (schoolbook
    multiplication, estimate-and-correct long division): the reproduction
    needs exact arithmetic on numbers of at most a few hundred digits,
    where these algorithms are more than fast enough — the hot loops of
    the solvers stay on the machine-word tier. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] when [x] fits in a native [int]. *)

val to_float : t -> float

val of_string : string -> t
(** Accepts an optional leading ['-'] followed by decimal digits.
    @raise Invalid_argument on any other input. *)

val to_string : t -> string

val sign : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [0 <= |r| < |b|] and
    [r] carrying the sign of [a] (truncated division, as for [Stdlib.( / )]).
    @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative. [gcd zero zero = zero]. *)

val pow : t -> int -> t
(** [pow x n] for [n >= 0]. @raise Invalid_argument on negative [n]. *)

val mul_int : t -> int -> t
val add_int : t -> int -> t

val compare : t -> t -> int

(** [compare_products a b c d] is [compare (mul a b) (mul c d)], without
    allocating the products when all operands fit 31 bits (the hot path
    of rational comparison). *)
val compare_products : t -> t -> t -> t -> int

(** [compare_fractions a b c d] compares [a/b] to [c/d] for {e positive}
    denominators [b] and [d]: equal denominators compare numerators
    directly, and otherwise the cross products are compared without
    allocation whenever all operands fit 31 bits.  Behaviour is
    unspecified for non-positive denominators. *)
val compare_fractions : t -> t -> t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit

val force_big : t -> t
(** [force_big x] is [x] re-encoded in the limb representation even when
    it fits the machine-word fast path.  Observationally identical to
    [x] under every operation of this module; it exists so the test
    suite can drive each operation through the all-big code path and
    compare against the fast path.  Do not use structural equality on
    the result. *)

val factorial : int -> t
(** [factorial n] for [n >= 0]. *)

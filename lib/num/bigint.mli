(** Arbitrary-precision signed integers.

    Values that fit a native [int] are stored as machine words and
    add/sub/mul/divmod/gcd/compare on them run on native arithmetic with
    overflow-checked promotion; larger values fall back to a sign and a
    little-endian magnitude in base 2{^31} (limbs sized so a limb
    product plus carries fits the 63-bit native [int]).  The
    representation is canonical — the limb form is used exactly for
    values outside the native [int] range, magnitudes carry no leading
    zero limbs — so structurally equal values are numerically equal.
    All operations of [t] are pure; in-place accumulation lives behind
    the explicit [Acc] type.

    The limb tier runs schoolbook multiplication below a tuned
    threshold and Karatsuba above it, and Knuth Algorithm D long
    division; decimal conversion is divide-and-conquer on 10{^9}-digit
    chunks, so [to_string]/[of_string] stay exact without the decimal
    radix dictating the internal base.  The hot loops of the solvers
    stay on the machine-word tier. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] when [x] fits in a native [int]. *)

val to_float : t -> float

val of_string : string -> t
(** Accepts an optional leading ['-'] followed by decimal digits.
    @raise Invalid_argument on any other input. *)

val to_string : t -> string

val sign : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [0 <= |r| < |b|] and
    [r] carrying the sign of [a] (truncated division, as for [Stdlib.( / )]).
    @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative. [gcd zero zero = zero]. *)

val pow : t -> int -> t
(** [pow x n] for [n >= 0]. @raise Invalid_argument on negative [n]. *)

val mul_int : t -> int -> t
val add_int : t -> int -> t

val compare : t -> t -> int

(** [compare_products a b c d] is [compare (mul a b) (mul c d)], without
    allocating the products when all operands fit 31 bits (the hot path
    of rational comparison). *)
val compare_products : t -> t -> t -> t -> int

(** [compare_fractions a b c d] compares [a/b] to [c/d] for {e positive}
    denominators [b] and [d]: equal denominators compare numerators
    directly, and otherwise the cross products are compared without
    allocation whenever all operands fit 31 bits.  Behaviour is
    unspecified for non-positive denominators. *)
val compare_fractions : t -> t -> t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit

val force_big : t -> t
(** [force_big x] is [x] re-encoded in the limb representation even when
    it fits the machine-word fast path.  Observationally identical to
    [x] under every operation of this module; it exists so the test
    suite can drive each operation through the all-big code path and
    compare against the fast path.  Do not use structural equality on
    the result. *)

val factorial : int -> t
(** [factorial n] for [n >= 0]. *)

(** Mutable in-place accumulator for long sums of mostly machine-word
    terms.  An accumulator keeps a machine-word lane (spilling into
    limbs only on overflow) plus one growing limb buffer mutated in
    place, so folding [n] terms allocates O(1) intermediates instead of
    O(n).  Accumulators are single-owner scratch state: they are not
    thread-safe and must not be shared across domains.  [add]/[sub]/
    [add_mul] never retain their [t] arguments, so callers may freely
    reuse or hash-cons them. *)
module Acc : sig
  type big := t
  type t

  val create : unit -> t
  (** A fresh accumulator holding zero. *)

  val clear : t -> unit
  (** Reset to zero, retaining the limb buffer for reuse. *)

  val add : t -> big -> unit
  val sub : t -> big -> unit

  val add_mul : t -> big -> big -> unit
  (** [add_mul a x y] adds [x*y] into [a]; machine-word products whose
      result fits a word touch no heap at all. *)

  val to_t : t -> big
  (** Snapshot the current value as a canonical immutable [big].  The
      accumulator is unchanged and may keep accumulating. *)
end

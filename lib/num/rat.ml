module B = Bigint

type t = { num : B.t; den : B.t }

let make num den =
  if B.is_zero den then raise Division_by_zero;
  if B.is_zero num then { num = B.zero; den = B.one }
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    { num = B.div num g; den = B.div den g }
  end

let zero = { num = B.zero; den = B.one }
let one = { num = B.one; den = B.one }
let two = { num = B.two; den = B.one }
let of_bigint n = { num = n; den = B.one }
let of_int n = of_bigint (B.of_int n)
let of_ints n d = make (B.of_int n) (B.of_int d)
let num x = x.num
let den x = x.den

(* Addition via gcd of the denominators (Knuth 4.5.1): for reduced
   operands with [g = gcd(b, d)], the candidate numerator [a*(d/g) +
   c*(b/g)] shares factors with the denominator only inside [g], so one
   small gcd re-reduces the sum instead of a gcd over the full products.
   When the denominators are coprime the sum is already reduced. *)
let add x y =
  if B.is_zero x.num then y
  else if B.is_zero y.num then x
  else begin
    let g = B.gcd x.den y.den in
    if B.equal g B.one then begin
      let num = B.add (B.mul x.num y.den) (B.mul y.num x.den) in
      if B.is_zero num then zero else { num; den = B.mul x.den y.den }
    end
    else begin
      let xd = B.div x.den g and yd = B.div y.den g in
      let num = B.add (B.mul x.num yd) (B.mul y.num xd) in
      if B.is_zero num then zero
      else begin
        let g2 = B.gcd num g in
        if B.equal g2 B.one then { num; den = B.mul xd y.den }
        else { num = B.div num g2; den = B.mul xd (B.div y.den g2) }
      end
    end
  end

let neg x = { x with num = B.neg x.num }
let abs x = { x with num = B.abs x.num }
let sub x y = add x (neg y)

(* Cross-gcd multiplication: cancel gcd(num, other den) on both
   diagonals first; the product of the reduced parts is reduced. *)
let mul x y =
  if B.is_zero x.num || B.is_zero y.num then zero
  else begin
    let g1 = B.gcd x.num y.den in
    let g2 = B.gcd y.num x.den in
    {
      num = B.mul (B.div x.num g1) (B.div y.num g2);
      den = B.mul (B.div x.den g2) (B.div y.den g1);
    }
  end

(* Fused [x - y*z] with a single canonicalization: cross-cancel the
   product like [mul] (the product of the reduced parts is already
   reduced), then combine with [x] over the product denominator and
   reduce once through [make].  Folding [sub x (mul y z)] instead would
   canonicalize twice; this is the inner step of every simplex pivot
   row update, where it runs n^2 times per basis change. *)
let sub_mul x y z =
  if B.is_zero y.num || B.is_zero z.num then x
  else begin
    let g1 = B.gcd y.num z.den in
    let g2 = B.gcd z.num y.den in
    let pnum = B.mul (B.div y.num g1) (B.div z.num g2) in
    let pden = B.mul (B.div y.den g2) (B.div z.den g1) in
    if B.is_zero x.num then { num = B.neg pnum; den = pden }
    else make (B.sub (B.mul x.num pden) (B.mul pnum x.den)) (B.mul x.den pden)
  end

let inv x =
  if B.is_zero x.num then raise Division_by_zero
  else if Stdlib.( < ) (B.sign x.num) 0 then { num = B.neg x.den; den = B.neg x.num }
  else { num = x.den; den = x.num }

let div x y = mul x (inv y)
let mul_int x n = mul x (of_int n)
let div_int x n = div x (of_int n)

(* Denominators are positive, so one fused Bigint call compares the
   fractions (equal-denominator and machine-word cross-product shortcuts
   live on the other side of the module boundary).  Physically equal
   values — pervasive once hash-consing shares the harmonic chain and
   grid rationals — skip the arithmetic entirely. *)
let compare x y =
  if x == y then 0 else B.compare_fractions x.num x.den y.num y.den
let equal x y = compare x y = 0
let ( < ) x y = compare x y < 0
let ( <= ) x y = compare x y <= 0
let ( > ) x y = compare x y > 0
let ( >= ) x y = compare x y >= 0
let min x y = if Stdlib.( <= ) (compare x y) 0 then x else y
let max x y = if Stdlib.( >= ) (compare x y) 0 then x else y
let sign x = B.sign x.num
let is_zero x = B.is_zero x.num

let sum xs = List.fold_left add zero xs

let average xs =
  match xs with
  | [] -> invalid_arg "Rat.average: empty list"
  | _ -> div_int (sum xs) (List.length xs)

(* Harmonic numbers are memoized as an immutable prefix table
   [H(0) .. H(n)] behind an [Atomic]: readers snapshot the whole array,
   a miss installs a grown copy.  Entries are never mutated in place, so
   a racing writer can only replace the table with one holding the same
   prefix — the loser's work is wasted, never wrong.  Domain-safe
   without locks, which matters because the solvers call [harmonic]
   from pool workers. *)
let harmonic_table = Atomic.make [| zero |]

let harmonic n =
  if Stdlib.(n < 0) then invalid_arg "Rat.harmonic: negative argument";
  let table = Atomic.get harmonic_table in
  let len = Array.length table in
  if Stdlib.(n < len) then table.(n)
  else begin
    let grown = Array.make (n + 1) zero in
    Array.blit table 0 grown 0 len;
    for i = len to n do
      grown.(i) <- add grown.(i - 1) (of_ints 1 i)
    done;
    Atomic.set harmonic_table grown;
    grown.(n)
  end

let pow x n =
  if Stdlib.(n >= 0) then make (B.pow x.num n) (B.pow x.den n)
  else inv (make (B.pow x.num (-n)) (B.pow x.den (-n)))

(* Dividing the bigints first keeps the conversion exact to ~15 digits
   and avoids overflowing both operands to infinity (num and den can
   exceed the float range even when their quotient is small). *)
let to_float x =
  let scale = B.pow (B.of_int 10) 17 in
  let q = B.div (B.mul x.num scale) x.den in
  B.to_float q /. 1e17

let to_string x =
  if B.equal x.den B.one then B.to_string x.num
  else B.to_string x.num ^ "/" ^ B.to_string x.den

let pp fmt x = Format.pp_print_string fmt (to_string x)

(* ---- in-place accumulator ----

   A sum of rationals folded through [add] canonicalizes (gcd + two
   divisions) at every step.  [Acc] instead keeps one running fraction
   over a common denominator: each term either lands directly on the
   current denominator (the overwhelmingly common case once the
   denominator has absorbed lcm-like factors) via a fused multiply-add
   on a {!Bigint.Acc}, or — rarely — rescales the accumulator once.
   Reduction is deferred wholesale to [to_rat], which canonicalizes
   through [make], so the snapshot is the exact same canonical rational
   the fold would have produced. *)

module Acc = struct
  type rat = t
  type t = { nacc : B.Acc.t; mutable den : B.t }

  let create () = { nacc = B.Acc.create (); den = B.one }

  let clear a =
    B.Acc.clear a.nacc;
    a.den <- B.one

  (* Multiply the accumulated numerator by [f] (rare: only when a term's
     denominator brings a new factor). *)
  let rescale a f =
    let n = B.Acc.to_t a.nacc in
    B.Acc.clear a.nacc;
    B.Acc.add a.nacc (B.mul n f)

  (* Add [num/den] (den > 0, not necessarily reduced against the
     accumulator) into the running fraction. *)
  let add_frac a num den =
    if B.equal den a.den then B.Acc.add a.nacc num
    else begin
      let g = B.gcd a.den den in
      let missing = B.div den g in
      if not (B.equal missing B.one) then begin
        rescale a missing;
        a.den <- B.mul a.den missing
      end;
      (* [den] now divides [a.den]. *)
      B.Acc.add_mul a.nacc num (B.div a.den den)
    end

  let add a (r : rat) = if not (B.is_zero r.num) then add_frac a r.num r.den
  let sub a (r : rat) = if not (B.is_zero r.num) then add_frac a (B.neg r.num) r.den

  (* Fused [a += x*y]: cross-cancel like [mul] but feed the (reduced)
     fraction straight into the running sum without building the
     intermediate rational. *)
  let add_mul a (x : rat) (y : rat) =
    if not (B.is_zero x.num || B.is_zero y.num) then begin
      let g1 = B.gcd x.num y.den in
      let g2 = B.gcd y.num x.den in
      add_frac a
        (B.mul (B.div x.num g1) (B.div y.num g2))
        (B.mul (B.div x.den g2) (B.div y.den g1))
    end

  (* Fused [a += x/n] for integer [n] — the shape of every load-vector
     cost term (edge cost over congestion). *)
  let add_div_int a (x : rat) n =
    if n = 0 then raise Division_by_zero;
    if not (B.is_zero x.num) then begin
      let nb = B.of_int (Stdlib.abs n) in
      let g = B.gcd x.num nb in
      let num = B.div x.num g in
      let num = if Stdlib.( < ) n 0 then B.neg num else num in
      add_frac a num (B.mul x.den (B.div nb g))
    end

  let to_rat a =
    let n = B.Acc.to_t a.nacc in
    if B.is_zero n then zero else make n a.den
end

(* ---- opt-in hash-consing ----

   The certified pipeline evaluates the same small set of rationals —
   harmonic numbers [H(k)], grid values [j/k], per-edge costs — millions
   of times.  An [Hc.t] maps each canonical rational to one retained
   representative so repeat producers return physically equal values,
   which [compare] short-circuits on.  Canonical representation makes
   structural hashing/equality sound as the table key.  Tables are
   created per solver call and threaded explicitly (opt-in: nothing
   global); a mutex makes [intern] safe from pool workers, which is
   where descent restarts run. *)

module Hc = struct
  type rat = t

  type t = {
    tbl : (rat, rat) Hashtbl.t;
    lock : Mutex.t;
    mutable hits : int;
    mutable misses : int;
  }

  let create ?(size = 256) () =
    { tbl = Hashtbl.create size; lock = Mutex.create (); hits = 0; misses = 0 }

  let intern h r =
    Mutex.lock h.lock;
    let canon =
      match Hashtbl.find_opt h.tbl r with
      | Some c ->
        h.hits <- Stdlib.( + ) h.hits 1;
        c
      | None ->
        h.misses <- Stdlib.( + ) h.misses 1;
        Hashtbl.add h.tbl r r;
        r
    in
    Mutex.unlock h.lock;
    canon

  let of_ints h n d = intern h (of_ints n d)
  let harmonic h n = intern h (harmonic n)

  let stats h =
    Mutex.lock h.lock;
    let s = (h.hits, h.misses, Hashtbl.length h.tbl) in
    Mutex.unlock h.lock;
    s
end

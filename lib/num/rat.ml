module B = Bigint

type t = { num : B.t; den : B.t }

let make num den =
  if B.is_zero den then raise Division_by_zero;
  if B.is_zero num then { num = B.zero; den = B.one }
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    { num = B.div num g; den = B.div den g }
  end

let zero = { num = B.zero; den = B.one }
let one = { num = B.one; den = B.one }
let two = { num = B.two; den = B.one }
let of_bigint n = { num = n; den = B.one }
let of_int n = of_bigint (B.of_int n)
let of_ints n d = make (B.of_int n) (B.of_int d)
let num x = x.num
let den x = x.den

(* Addition via gcd of the denominators (Knuth 4.5.1): for reduced
   operands with [g = gcd(b, d)], the candidate numerator [a*(d/g) +
   c*(b/g)] shares factors with the denominator only inside [g], so one
   small gcd re-reduces the sum instead of a gcd over the full products.
   When the denominators are coprime the sum is already reduced. *)
let add x y =
  if B.is_zero x.num then y
  else if B.is_zero y.num then x
  else begin
    let g = B.gcd x.den y.den in
    if B.equal g B.one then begin
      let num = B.add (B.mul x.num y.den) (B.mul y.num x.den) in
      if B.is_zero num then zero else { num; den = B.mul x.den y.den }
    end
    else begin
      let xd = B.div x.den g and yd = B.div y.den g in
      let num = B.add (B.mul x.num yd) (B.mul y.num xd) in
      if B.is_zero num then zero
      else begin
        let g2 = B.gcd num g in
        if B.equal g2 B.one then { num; den = B.mul xd y.den }
        else { num = B.div num g2; den = B.mul xd (B.div y.den g2) }
      end
    end
  end

let neg x = { x with num = B.neg x.num }
let abs x = { x with num = B.abs x.num }
let sub x y = add x (neg y)

(* Cross-gcd multiplication: cancel gcd(num, other den) on both
   diagonals first; the product of the reduced parts is reduced. *)
let mul x y =
  if B.is_zero x.num || B.is_zero y.num then zero
  else begin
    let g1 = B.gcd x.num y.den in
    let g2 = B.gcd y.num x.den in
    {
      num = B.mul (B.div x.num g1) (B.div y.num g2);
      den = B.mul (B.div x.den g2) (B.div y.den g1);
    }
  end

let inv x =
  if B.is_zero x.num then raise Division_by_zero
  else if Stdlib.( < ) (B.sign x.num) 0 then { num = B.neg x.den; den = B.neg x.num }
  else { num = x.den; den = x.num }

let div x y = mul x (inv y)
let mul_int x n = mul x (of_int n)
let div_int x n = div x (of_int n)

(* Denominators are positive, so one fused Bigint call compares the
   fractions (equal-denominator and machine-word cross-product shortcuts
   live on the other side of the module boundary). *)
let compare x y = B.compare_fractions x.num x.den y.num y.den
let equal x y = compare x y = 0
let ( < ) x y = compare x y < 0
let ( <= ) x y = compare x y <= 0
let ( > ) x y = compare x y > 0
let ( >= ) x y = compare x y >= 0
let min x y = if Stdlib.( <= ) (compare x y) 0 then x else y
let max x y = if Stdlib.( >= ) (compare x y) 0 then x else y
let sign x = B.sign x.num
let is_zero x = B.is_zero x.num

let sum xs = List.fold_left add zero xs

let average xs =
  match xs with
  | [] -> invalid_arg "Rat.average: empty list"
  | _ -> div_int (sum xs) (List.length xs)

(* Harmonic numbers are memoized as an immutable prefix table
   [H(0) .. H(n)] behind an [Atomic]: readers snapshot the whole array,
   a miss installs a grown copy.  Entries are never mutated in place, so
   a racing writer can only replace the table with one holding the same
   prefix — the loser's work is wasted, never wrong.  Domain-safe
   without locks, which matters because the solvers call [harmonic]
   from pool workers. *)
let harmonic_table = Atomic.make [| zero |]

let harmonic n =
  if Stdlib.(n < 0) then invalid_arg "Rat.harmonic: negative argument";
  let table = Atomic.get harmonic_table in
  let len = Array.length table in
  if Stdlib.(n < len) then table.(n)
  else begin
    let grown = Array.make (n + 1) zero in
    Array.blit table 0 grown 0 len;
    for i = len to n do
      grown.(i) <- add grown.(i - 1) (of_ints 1 i)
    done;
    Atomic.set harmonic_table grown;
    grown.(n)
  end

let pow x n =
  if Stdlib.(n >= 0) then make (B.pow x.num n) (B.pow x.den n)
  else inv (make (B.pow x.num (-n)) (B.pow x.den (-n)))

(* Dividing the bigints first keeps the conversion exact to ~15 digits
   and avoids overflowing both operands to infinity (num and den can
   exceed the float range even when their quotient is small). *)
let to_float x =
  let scale = B.pow (B.of_int 10) 17 in
  let q = B.div (B.mul x.num scale) x.den in
  B.to_float q /. 1e17

let to_string x =
  if B.equal x.den B.one then B.to_string x.num
  else B.to_string x.num ^ "/" ^ B.to_string x.den

let pp fmt x = Format.pp_print_string fmt (to_string x)

(* Two-tier representation: values that fit a native [int] live in the
   [Small] constructor and run on machine-word arithmetic with
   overflow-checked promotion; everything else is a sign plus a
   little-endian magnitude in base 2^31 ([Big]).  Limbs hold 31 bits so
   that a limb product plus two carries fits the 63-bit native [int]
   exactly ((2^31-1)^2 + 2*(2^31-1) = 2^62-1 = max_int): schoolbook
   inner loops run wholly in machine words with masks and shifts where
   the former base-10^4 limbs paid a division per digit.  The
   representation is canonical — [Big] is used exactly for values
   outside the native [int] range — so structural equality of equal
   values still holds and the fast paths never need to inspect
   magnitudes.  [force_big] (test hook) deliberately breaks canonicity;
   every operation therefore accepts non-canonical [Big] inputs and
   re-canonicalizes its output.

   Decimal I/O no longer dictates the internal base: [to_string] and
   [of_string] convert through divide-and-conquer splits on 10^(9k)
   powers (9 decimal digits per 10^9 chunk, 10^9 < 2^31 so chunk
   arithmetic stays single-limb), with Karatsuba multiplication above
   [karatsuba_threshold] limbs carrying the recombination. *)

let base_bits = 31
let base = 1 lsl base_bits
let mask = base - 1

type t =
  | Small of int
  | Big of { sign : int; mag : int array }

let zero = Small 0
let one = Small 1
let two = Small 2
let minus_one = Small (-1)
let of_int n = Small n

(* Magnitude-level primitives.  All take/return little-endian arrays. *)

(* Magnitudes may carry leading zero limbs transiently (e.g. the raw
   output of the divider), so comparisons must use effective lengths. *)
let effective_len a =
  let rec go i = if i >= 0 && a.(i) = 0 then go (i - 1) else i + 1 in
  go (Array.length a - 1)

let cmp_mag a b =
  let la = effective_len a and lb = effective_len b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = Stdlib.max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin r.(i) <- s + base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  r

(* Schoolbook product of slices a.[ao..ao+la) x b.[bo..bo+lb) added into
   r at offset ro.  Inner-loop bound: r limb + limb product + carry <=
   (2^31-1) + (2^31-1)^2 + (2^31-1) = 2^62-1 = max_int, no overflow. *)
let schoolbook_into r ro a ao la b bo lb =
  for i = 0 to la - 1 do
    let ai = a.(ao + i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      let row = ro + i in
      for j = 0 to lb - 1 do
        let s = r.(row + j) + (ai * b.(bo + j)) + !carry in
        r.(row + j) <- s land mask;
        carry := s lsr base_bits
      done;
      (* The carry slot is untouched by this row's inner loop and holds
         at most base-1 from earlier rows, so it absorbs the carry with
         one extra propagation at most. *)
      let j = ref (row + lb) in
      while !carry <> 0 do
        let s = r.(!j) + !carry in
        r.(!j) <- s land mask;
        carry := s lsr base_bits;
        incr j
      done
    end
  done

(* Add src.[0..ls) into r at offset off, in place. *)
let add_into r off src ls =
  let carry = ref 0 in
  for i = 0 to ls - 1 do
    let s = r.(off + i) + src.(i) + !carry in
    r.(off + i) <- s land mask;
    carry := s lsr base_bits
  done;
  let j = ref (off + ls) in
  while !carry <> 0 do
    let s = r.(!j) + !carry in
    r.(!j) <- s land mask;
    carry := s lsr base_bits;
    incr j
  done

(* Subtract src.[0..ls) from r at offset off, in place; r must stay
   non-negative (guaranteed by the Karatsuba identity below). *)
let sub_into r off src ls =
  let borrow = ref 0 in
  for i = 0 to ls - 1 do
    let s = r.(off + i) - src.(i) - !borrow in
    if s < 0 then begin r.(off + i) <- s + base; borrow := 1 end
    else begin r.(off + i) <- s; borrow := 0 end
  done;
  let j = ref (off + ls) in
  while !borrow <> 0 do
    let s = r.(!j) - 1 in
    if s < 0 then r.(!j) <- s + base else begin r.(!j) <- s; borrow := 0 end;
    incr j
  done

(* Above this many limbs (~220 decimal digits) on the shorter operand,
   splitting beats the schoolbook inner loop.  Tuned on the micro
   kernels: lower thresholds pay more temporary allocation than the
   saved limb products are worth at the reproduction's operand sizes. *)
let karatsuba_threshold = 24

let rec mul_mag a b =
  let la = effective_len a and lb = effective_len b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    mul_into r a la b lb;
    r
  end

(* r (zeroed, size >= la+lb) receives a.[0..la) * b.[0..lb). *)
and mul_into r a la b lb =
  if Stdlib.min la lb <= karatsuba_threshold then
    schoolbook_into r 0 a 0 la b 0 lb
  else begin
    (* Karatsuba: split both operands at m limbs.
       a = a1*B^m + a0, b = b1*B^m + b0
       a*b = z2*B^2m + ((a0+a1)(b0+b1) - z0 - z2)*B^m + z0. *)
    let m = (Stdlib.max la lb + 1) / 2 in
    if la <= m then begin
      (* Only b splits: a*b = (a*b1)*B^m + a*b0. *)
      let lo = mul_mag (Array.sub a 0 la) (Array.sub b 0 m) in
      let hi = mul_mag (Array.sub a 0 la) (Array.sub b m (lb - m)) in
      add_into r 0 lo (Array.length lo);
      add_into r m hi (Array.length hi)
    end
    else if lb <= m then begin
      let lo = mul_mag (Array.sub a 0 m) (Array.sub b 0 lb) in
      let hi = mul_mag (Array.sub a m (la - m)) (Array.sub b 0 lb) in
      add_into r 0 lo (Array.length lo);
      add_into r m hi (Array.length hi)
    end
    else begin
      let a0 = Array.sub a 0 m and a1 = Array.sub a m (la - m) in
      let b0 = Array.sub b 0 m and b1 = Array.sub b m (lb - m) in
      let z0 = mul_mag a0 b0 in
      let z2 = mul_mag a1 b1 in
      let z1 = mul_mag (add_mag a0 a1) (add_mag b0 b1) in
      add_into r 0 z0 (Array.length z0);
      add_into r (2 * m) z2 (Array.length z2);
      add_into r m z1 (Array.length z1);
      sub_into r m z0 (Array.length z0);
      sub_into r m z2 (Array.length z2)
    end
  end

let strip_mag a =
  let n = effective_len a in
  if n = Array.length a then a else Array.sub a 0 n

(* Long division of magnitudes.  Single-limb divisors divide directly in
   machine words.  Longer divisors run Knuth's Algorithm D: normalize so
   the divisor's top limb has its high bit set, estimate each quotient
   limb from the top two remainder limbs over the top divisor limb,
   refine against the next limb, multiply-subtract in place, and add the
   divisor back in the rare off-by-one case.  After refinement the
   estimate is clamped to base-1, which keeps every intermediate product
   within the native word and leaves at most one add-back. *)
let divmod_mag a b =
  let lb = effective_len b in
  if lb = 1 then begin
    let la = Array.length a in
    let q = Array.make (Stdlib.max la 1) 0 in
    let b0 = b.(0) in
    let r = ref 0 in
    for i = la - 1 downto 0 do
      let v = (!r lsl base_bits) lor a.(i) in
      q.(i) <- v / b0;
      r := v mod b0
    done;
    (q, if !r = 0 then [||] else [| !r |])
  end
  else begin
    let la = effective_len a in
    if la < lb || cmp_mag a b < 0 then ([||], strip_mag (Array.copy a))
    else begin
      (* Normalization shift: divisor's top limb into [base/2, base). *)
      let shift =
        let s = ref 0 and v = ref b.(lb - 1) in
        while !v < base / 2 do
          v := !v lsl 1;
          incr s
        done;
        !s
      in
      let u = Array.make (la + 1) 0 in
      let v = Array.make lb 0 in
      if shift = 0 then begin
        Array.blit a 0 u 0 la;
        Array.blit b 0 v 0 lb
      end
      else begin
        let down = base_bits - shift in
        for i = lb - 1 downto 1 do
          v.(i) <- ((b.(i) lsl shift) land mask) lor (b.(i - 1) lsr down)
        done;
        v.(0) <- (b.(0) lsl shift) land mask;
        u.(la) <- a.(la - 1) lsr down;
        for i = la - 1 downto 1 do
          u.(i) <- ((a.(i) lsl shift) land mask) lor (a.(i - 1) lsr down)
        done;
        u.(0) <- (a.(0) lsl shift) land mask
      end;
      let q = Array.make (la - lb + 1) 0 in
      let vtop = v.(lb - 1) and vnext = v.(lb - 2) in
      for j = la - lb downto 0 do
        (* u.(j+lb) <= vtop by the remainder invariant, so num < 2^62. *)
        let num = (u.(j + lb) lsl base_bits) lor u.(j + lb - 1) in
        let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
        let refining = ref true in
        while
          !refining
          && (!qhat >= base
             || !qhat * vnext > (!rhat lsl base_bits) lor u.(j + lb - 2))
        do
          decr qhat;
          rhat := !rhat + vtop;
          if !rhat >= base then refining := false
        done;
        let qh = ref (Stdlib.min !qhat (base - 1)) in
        let borrow = ref 0 in
        for i = 0 to lb - 1 do
          let p = (!qh * v.(i)) + !borrow in
          let s = u.(j + i) - (p land mask) in
          if s < 0 then begin
            u.(j + i) <- s + base;
            borrow := (p lsr base_bits) + 1
          end
          else begin
            u.(j + i) <- s;
            borrow := p lsr base_bits
          end
        done;
        let top = u.(j + lb) - !borrow in
        if top < 0 then begin
          (* Estimate one too large: add the divisor back once. *)
          decr qh;
          let carry = ref 0 in
          for i = 0 to lb - 1 do
            let s = u.(j + i) + v.(i) + !carry in
            u.(j + i) <- s land mask;
            carry := s lsr base_bits
          done;
          u.(j + lb) <- top + !carry
        end
        else u.(j + lb) <- top;
        q.(j) <- !qh
      done;
      let r = Array.make lb 0 in
      if shift = 0 then Array.blit u 0 r 0 lb
      else begin
        let down = base_bits - shift in
        for i = 0 to lb - 2 do
          r.(i) <- (u.(i) lsr shift) lor ((u.(i + 1) lsl down) land mask)
        done;
        r.(lb - 1) <- u.(lb - 1) lsr shift
      end;
      (q, r)
    end
  end

(* Representation plumbing: [parts] views any value as sign + magnitude;
   [of_parts] rebuilds the canonical form, demoting to [Small] whenever
   the value fits a native [int]. *)

(* Magnitude limbs of [-n] for [n <= 0] (negative domain so that
   [min_int] needs no special case). *)
let mag_of_nonpos n =
  let rec limbs acc n = if n = 0 then acc else limbs (-(n mod base) :: acc) (n / base) in
  Array.of_list (List.rev (limbs [] n))

let parts = function
  | Small 0 -> (0, [||])
  | Small n -> ((if n < 0 then -1 else 1), mag_of_nonpos (if n < 0 then n else -n))
  | Big { sign; mag } -> (sign, mag)

(* [Some v] when [sign * mag] fits a native [int]; accumulates in the
   negative range to keep [min_int] representable. *)
let fits_int sign mag =
  (* Four or more significant limbs exceed 2^93 > 2^63: never fits. *)
  if effective_len mag > 3 then None
  else
  let rec go i acc =
    if i < 0 then Some acc
    else begin
      let limb = mag.(i) in
      if acc < (Stdlib.min_int + limb) / base then None
      else go (i - 1) ((acc * base) - limb)
    end
  in
  match go (Array.length mag - 1) 0 with
  | None -> None
  | Some negv ->
    if sign >= 0 then (if negv = Stdlib.min_int then None else Some (-negv))
    else Some negv

let of_parts sign mag =
  let mag = strip_mag mag in
  if Array.length mag = 0 then zero
  else begin
    match fits_int sign mag with
    | Some v -> Small v
    | None -> Big { sign; mag }
  end

let force_big x =
  match x with
  | Big _ -> x
  | Small _ ->
    let sign, mag = parts x in
    Big { sign; mag }

let sign = function
  | Small n -> Stdlib.compare n 0
  | Big b -> b.sign

let is_zero = function
  | Small n -> n = 0
  | Big b -> b.sign = 0

let neg = function
  | Small n ->
    if n = Stdlib.min_int then Big { sign = 1; mag = mag_of_nonpos n } else Small (-n)
  | Big b -> Big { sign = -b.sign; mag = b.mag }

let abs = function
  | Small n ->
    if n >= 0 then Small n
    else if n = Stdlib.min_int then Big { sign = 1; mag = mag_of_nonpos n }
    else Small (-n)
  | Big b -> Big { sign = Stdlib.abs b.sign; mag = b.mag }

let compare x y =
  match x, y with
  | Small a, Small b -> Stdlib.compare (a : int) b
  | _ ->
    let sx, mx = parts x and sy, my = parts y in
    if sx <> sy then Stdlib.compare sx sy
    else if sx >= 0 then cmp_mag mx my
    else cmp_mag my mx

let equal x y = compare x y = 0
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

let add_parts (s1, m1) (s2, m2) =
  if s1 = 0 then of_parts s2 m2
  else if s2 = 0 then of_parts s1 m1
  else if s1 = s2 then of_parts s1 (add_mag m1 m2)
  else begin
    match cmp_mag m1 m2 with
    | 0 -> zero
    | c when c > 0 -> of_parts s1 (sub_mag m1 m2)
    | _ -> of_parts s2 (sub_mag m2 m1)
  end

let add x y =
  match x, y with
  | Small a, Small b ->
    let s = a + b in
    (* Same-sign operands whose sum flips sign overflowed. *)
    if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then add_parts (parts x) (parts y)
    else Small s
  | _ -> add_parts (parts x) (parts y)

let sub x y =
  match x, y with
  | Small a, Small b when b <> Stdlib.min_int ->
    let s = a - b in
    if (a >= 0) <> (b >= 0) && (s >= 0) <> (a >= 0) then add_parts (parts x) (parts (neg y))
    else Small s
  | _ ->
    let s2, m2 = parts y in
    add_parts (parts x) (-s2, m2)

let mul x y =
  match x, y with
  | Small a, Small b when a <> Stdlib.min_int && b <> Stdlib.min_int ->
    if a = 0 || b = 0 then zero
    else begin
      let p = a * b in
      (* For b <> 0, an overflowed product p differs from a*b by a
         nonzero multiple of 2^63, which truncated division detects. *)
      if p / b = a then Small p
      else
        let s1, m1 = parts x and s2, m2 = parts y in
        of_parts (s1 * s2) (mul_mag m1 m2)
    end
  | _ ->
    let s1, m1 = parts x and s2, m2 = parts y in
    if s1 = 0 || s2 = 0 then zero else of_parts (s1 * s2) (mul_mag m1 m2)

(* compare (a*b) (c*d) without materializing the products.  Rational
   comparison cross-multiplies, so this is its hot path: when all four
   operands fit 31 bits the products fit 62 and native comparison
   suffices with no allocation at all. *)
let compare_products a b c d =
  let lim = 1 lsl 31 in
  match a, b, c, d with
  | Small a, Small b, Small c, Small d
    when a > -lim && a < lim && b > -lim && b < lim && c > -lim && c < lim
         && d > -lim && d < lim ->
    Stdlib.compare (a * b) (c * d)
  | _ -> compare (mul a b) (mul c d)

(* compare (a/b) (c/d) for positive denominators b, d — the whole of
   rational comparison in one call, so the solvers' innermost comparisons
   pay a single cross-module invocation and, on machine-word operands,
   no allocation. *)
let compare_fractions a b c d =
  match a, b, c, d with
  | Small sa, Small sb, Small sc, Small sd ->
    if sb = sd then Stdlib.compare (sa : int) sc
    else begin
      let lim = 1 lsl 31 in
      if sa > -lim && sa < lim && sb < lim && sc > -lim && sc < lim && sd < lim
      then Stdlib.compare (sa * sd) (sc * sb)
      else compare (mul a d) (mul c b)
    end
  | _ ->
    if equal b d then compare a c
    else begin
      let sa = sign a and sc = sign c in
      if sa <> sc then Stdlib.compare sa sc else compare_products a d c b
    end

let divmod a b =
  match a, b with
  | Small x, Small y when y <> 0 && not (x = Stdlib.min_int && y = -1) ->
    (Small (x / y), Small (x mod y))
  | _ ->
    let sb, mb = parts b in
    if sb = 0 then raise Division_by_zero
    else begin
      let sa, ma = parts a in
      if sa = 0 then (zero, zero)
      else begin
        let q_mag, r_mag = divmod_mag ma mb in
        (of_parts (sa * sb) q_mag, of_parts sa r_mag)
      end
    end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

(* Multi-limb gcd is binary (Stein): compares, in-place subtractions and
   right shifts only.  Euclid with a full divmod per step pays a
   normalize-allocate-divide cycle for ~1.4 bits of average progress;
   a binary step strips at least one bit for a few O(len) word loops. *)

let ctz_limb v =
  let v = ref v and n = ref 0 in
  while !v land 1 = 0 do
    incr n;
    v := !v lsr 1
  done;
  !n

(* Trailing zero bits of a nonzero magnitude. *)
let trailing_zeros_mag m =
  let i = ref 0 in
  while m.(!i) = 0 do
    incr i
  done;
  (!i * base_bits) + ctz_limb m.(!i)

(* [m >> k] in place. *)
let shr_mag_into m k =
  let limbs = k / base_bits and bits = k mod base_bits in
  let n = Array.length m in
  if limbs > 0 then begin
    for i = 0 to n - 1 - limbs do
      m.(i) <- m.(i + limbs)
    done;
    Array.fill m (n - limbs) limbs 0
  end;
  if bits > 0 then begin
    let carry = ref 0 in
    for i = n - 1 - limbs downto 0 do
      let v = m.(i) in
      m.(i) <- (v lsr bits) lor (!carry lsl (base_bits - bits));
      carry := v land ((1 lsl bits) - 1)
    done
  end

(* [m << k] as a fresh magnitude. *)
let shl_mag m k =
  let limbs = k / base_bits and bits = k mod base_bits in
  let n = effective_len m in
  let r = Array.make (n + limbs + 1) 0 in
  if bits = 0 then
    for i = 0 to n - 1 do
      r.(i + limbs) <- m.(i)
    done
  else begin
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let v = m.(i) in
      r.(i + limbs) <- ((v lsl bits) land mask) lor !carry;
      carry := v lsr (base_bits - bits)
    done;
    r.(n + limbs) <- !carry
  end;
  r

(* In-place [u -= v]; requires [u >= v]. *)
let gcd_sub_into u v =
  let lu = effective_len u and lv = effective_len v in
  let borrow = ref 0 in
  for i = 0 to lu - 1 do
    let s = u.(i) - (if i < lv then v.(i) else 0) - !borrow in
    if s < 0 then begin
      u.(i) <- s + base;
      borrow := 1
    end
    else begin
      u.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0)

(* Both magnitudes nonzero; scratch copies are mutated freely. *)
let gcd_mag ma mb =
  let u = ref (Array.copy ma) and v = ref (Array.copy mb) in
  let tu = trailing_zeros_mag !u and tv = trailing_zeros_mag !v in
  let shift = Stdlib.min tu tv in
  shr_mag_into !u tu;
  shr_mag_into !v tv;
  (* Both odd: the difference is even and strictly smaller, so each
     round strips at least one bit.  Once both sides fit two limbs
     (< 2^62, a native int) the tail runs on machine words. *)
  let word m l =
    m.(0) lor (if l = 2 then m.(1) lsl base_bits else 0)
  in
  let rec loop () =
    let lu = effective_len !u and lv = effective_len !v in
    if lu <= 2 && lv <= 2 then begin
      let g = gcd_int (word !u lu) (word !v lv) in
      v := [| g land mask; g lsr base_bits |]
    end
    else begin
      let c = cmp_mag !u !v in
      if c <> 0 then begin
        if Stdlib.(c < 0) then begin
          let t = !u in
          u := !v;
          v := t
        end;
        gcd_sub_into !u !v;
        shr_mag_into !u (trailing_zeros_mag !u);
        loop ()
      end
    end
  in
  loop ();
  shl_mag !v shift

let gcd a b =
  match a, b with
  | Small x, Small y when x <> Stdlib.min_int && y <> Stdlib.min_int ->
    Small (gcd_int (Stdlib.abs x) (Stdlib.abs y))
  | _ ->
    if is_zero a then abs b
    else if is_zero b then abs a
    else begin
      let _, ma = parts a and _, mb = parts b in
      of_parts 1 (gcd_mag ma mb)
    end

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc x n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc x) (mul x x) (n lsr 1)
    else go acc (mul x x) (n lsr 1)
  in
  go one x n

let mul_int x m = mul x (Small m)
let add_int x m = add x (Small m)

let to_int_opt = function
  | Small n -> Some n
  | Big { sign; mag } -> fits_int sign mag

let to_float = function
  | Small n -> float_of_int n
  | Big { sign; mag } ->
    let v = ref 0.0 in
    for i = Array.length mag - 1 downto 0 do
      v := (!v *. float_of_int base) +. float_of_int mag.(i)
    done;
    if sign < 0 then -. !v else !v

(* ---- decimal conversion ----

   Both directions split on powers 10^(9c) (c chunks of 9 digits, one
   10^9 < 2^31 step per chunk), divide-and-conquer: [to_string] divides
   the magnitude by a power sized to roughly halve the limb count and
   recurses on quotient and zero-padded remainder; [of_string] splits
   the digit string at a multiple-of-9 boundary and recombines with a
   (Karatsuba-eligible) multiplication.  The chosen chunk sizes keep
   every base case within a native [int]. *)

let ten9 = 1_000_000_000

(* Magnitude of 10^(9c), c >= 1. *)
let pow10_mag c =
  let rec go acc p c =
    if c = 0 then acc
    else if c land 1 = 1 then go (mul_mag acc p) (mul_mag p p) (c lsr 1)
    else go acc (mul_mag p p) (c lsr 1)
  in
  go [| 1 |] [| ten9 land mask; ten9 lsr base_bits |] c

(* Value of a <= 2-limb magnitude: at most 2^62 - 1 = max_int. *)
let small_mag_value mag len =
  if len = 0 then 0
  else if len = 1 then mag.(0)
  else (mag.(1) lsl base_bits) lor mag.(0)

let rec to_dec buf mag pad =
  let n = effective_len mag in
  if n <= 2 then begin
    let v = small_mag_value mag n in
    if pad = 0 then Buffer.add_string buf (string_of_int v)
    else Buffer.add_string buf (Printf.sprintf "%0*d" pad v)
  end
  else begin
    (* Divisor of ~half the limbs: c 10^9-chunks span c*29.9 bits. *)
    let c = Stdlib.max 1 (n * base_bits / 60) in
    let q, r = divmod_mag mag (pow10_mag c) in
    to_dec buf q (if pad = 0 then 0 else pad - (9 * c));
    to_dec buf r (9 * c)
  end

let to_string x =
  match x with
  | Small n -> string_of_int n
  | Big b ->
    if b.sign = 0 then "0"
    else begin
      let buf = Buffer.create ((Array.length b.mag * 10) + 1) in
      if b.sign < 0 then Buffer.add_char buf '-';
      to_dec buf b.mag 0;
      Buffer.contents buf
    end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let negative = s.[0] = '-' in
  let start = if negative then 1 else 0 in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  for i = start to len - 1 do
    if not (s.[i] >= '0' && s.[i] <= '9') then
      invalid_arg "Bigint.of_string: invalid character"
  done;
  (* Magnitude of digits s.[pos..pos+n): D&C split at a multiple-of-9
     boundary; halves recombine as left * 10^(9c) + right. *)
  let rec mag_of_digits pos n =
    if n <= 18 then begin
      let v = ref 0 in
      for i = pos to pos + n - 1 do
        v := (!v * 10) + (Char.code s.[i] - Char.code '0')
      done;
      if !v = 0 then [||]
      else if !v < base then [| !v |]
      else [| !v land mask; !v lsr base_bits |]
    end
    else begin
      let c = ((n + 1) / 2) / 9 in
      let right = 9 * c in
      let hi = mag_of_digits pos (n - right) in
      let lo = mag_of_digits (pos + n - right) right in
      if Array.length hi = 0 then lo
      else add_mag (mul_mag hi (pow10_mag c)) lo
    end
  in
  of_parts (if negative then -1 else 1) (mag_of_digits start (len - start))

let pp fmt x = Format.pp_print_string fmt (to_string x)

let factorial n =
  if n < 0 then invalid_arg "Bigint.factorial: negative argument";
  let rec go acc i = if i > n then acc else go (mul_int acc i) (i + 1) in
  go one 1

(* ---- in-place accumulators ----

   The solvers' delta kernels fold long sums of mostly machine-word
   terms.  [Acc] keeps a machine-word lane (overflow spills into the
   limb lane) plus a sign-magnitude limb lane mutated in place, so the
   common case — adding a [Small] — touches no heap at all, and limb
   additions reuse one growing buffer instead of allocating a result
   per step. *)

module Acc = struct
  let big_add = add

  type t = {
    mutable small : int;      (* machine-word lane *)
    mutable sgn : int;        (* limb-lane sign: -1, 0, 1 *)
    mutable mag : int array;  (* limb-lane magnitude, little-endian *)
    mutable len : int;        (* effective limbs; mag.(i) = 0 for i >= len *)
  }

  let create () = { small = 0; sgn = 0; mag = Array.make 8 0; len = 0 }

  let clear a =
    a.small <- 0;
    if a.sgn <> 0 then Array.fill a.mag 0 a.len 0;
    a.sgn <- 0;
    a.len <- 0

  let ensure a n =
    if Array.length a.mag < n then begin
      let grown = Array.make (Stdlib.max n (2 * Array.length a.mag)) 0 in
      Array.blit a.mag 0 grown 0 a.len;
      a.mag <- grown
    end

  let refresh_len a =
    let rec go i = if i >= 0 && a.mag.(i) = 0 then go (i - 1) else i + 1 in
    a.len <- go (a.len - 1);
    if a.len = 0 then a.sgn <- 0

  (* Add sign*m (lm effective limbs, m not aliased with a.mag) into the
     limb lane in place. *)
  let add_mag_into a s m lm =
    if s <> 0 && lm <> 0 then begin
      if a.sgn = 0 then begin
        ensure a lm;
        Array.blit m 0 a.mag 0 lm;
        a.len <- lm;
        a.sgn <- s
      end
      else if a.sgn = s then begin
        ensure a (Stdlib.max a.len lm + 1);
        let carry = ref 0 in
        for i = 0 to lm - 1 do
          let v = a.mag.(i) + m.(i) + !carry in
          a.mag.(i) <- v land mask;
          carry := v lsr base_bits
        done;
        let j = ref lm in
        while !carry <> 0 do
          let v = a.mag.(!j) + !carry in
          a.mag.(!j) <- v land mask;
          carry := v lsr base_bits;
          incr j
        done;
        a.len <- Stdlib.max a.len (Stdlib.max lm !j)
      end
      else begin
        (* Opposite signs: subtract the smaller magnitude in place. *)
        let cmp =
          if a.len <> lm then Stdlib.compare a.len lm
          else begin
            let rec go i =
              if i < 0 then 0
              else if a.mag.(i) <> m.(i) then Stdlib.compare a.mag.(i) m.(i)
              else go (i - 1)
            in
            go (a.len - 1)
          end
        in
        if cmp = 0 then begin
          Array.fill a.mag 0 a.len 0;
          a.len <- 0;
          a.sgn <- 0
        end
        else if cmp > 0 then begin
          let borrow = ref 0 in
          for i = 0 to lm - 1 do
            let v = a.mag.(i) - m.(i) - !borrow in
            if v < 0 then begin a.mag.(i) <- v + base; borrow := 1 end
            else begin a.mag.(i) <- v; borrow := 0 end
          done;
          let j = ref lm in
          while !borrow <> 0 do
            let v = a.mag.(!j) - 1 in
            if v < 0 then a.mag.(!j) <- v + base
            else begin a.mag.(!j) <- v; borrow := 0 end;
            incr j
          done;
          refresh_len a
        end
        else begin
          (* m - acc, computed in place into acc. *)
          ensure a lm;
          let borrow = ref 0 in
          for i = 0 to lm - 1 do
            let v = m.(i) - a.mag.(i) - !borrow in
            if v < 0 then begin a.mag.(i) <- v + base; borrow := 1 end
            else begin a.mag.(i) <- v; borrow := 0 end
          done;
          assert (!borrow = 0);
          a.len <- lm;
          a.sgn <- s;
          refresh_len a
        end
      end
    end

  (* Spill the machine-word lane into the limb lane. *)
  let spill a =
    if a.small <> 0 then begin
      let s, m = parts (Small a.small) in
      add_mag_into a s m (Array.length m);
      a.small <- 0
    end

  let add_small a v =
    let s = a.small + v in
    if (a.small >= 0) = (v >= 0) && (s >= 0) <> (a.small >= 0) then begin
      spill a;
      a.small <- v
    end
    else a.small <- s

  let add a x =
    match x with
    | Small v -> add_small a v
    | Big { sign = s; mag } -> add_mag_into a s mag (effective_len mag)

  let sub a x =
    match x with
    | Small v when v <> Stdlib.min_int -> add_small a (-v)
    | _ -> add a (neg x)

  let add_mul a x y =
    match x, y with
    | Small u, Small v when u <> Stdlib.min_int && v <> Stdlib.min_int ->
      if u <> 0 && v <> 0 then begin
        let p = u * v in
        if p / v = u then add_small a p else add a (mul x y)
      end
    | _ -> add a (mul x y)

  let to_t a =
    if a.sgn = 0 then Small a.small
    else begin
      let big = of_parts a.sgn (Array.sub a.mag 0 a.len) in
      if a.small = 0 then big else big_add big (Small a.small)
    end
end

(* Two-tier representation: values that fit a native [int] live in the
   [Small] constructor and run on machine-word arithmetic with
   overflow-checked promotion; everything else is a sign plus a
   little-endian magnitude in base 10^4 ([Big]).  The representation is
   canonical — [Big] is used exactly for values outside the native [int]
   range — so structural equality of equal values still holds and the
   fast paths never need to inspect magnitudes.  [force_big] (test hook)
   deliberately breaks canonicity; every operation therefore accepts
   non-canonical [Big] inputs and re-canonicalizes its output. *)

let base = 10_000
let base_digits = 4

type t =
  | Small of int
  | Big of { sign : int; mag : int array }

let zero = Small 0
let one = Small 1
let two = Small 2
let minus_one = Small (-1)
let of_int n = Small n

(* Magnitude-level primitives.  All take/return little-endian arrays. *)

(* Magnitudes may carry leading zero limbs transiently (e.g. the raw
   output of mul_mag_small), so comparisons must use effective lengths. *)
let effective_len a =
  let rec go i = if i >= 0 && a.(i) = 0 then go (i - 1) else i + 1 in
  go (Array.length a - 1)

let cmp_mag a b =
  let la = effective_len a and lb = effective_len b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = Stdlib.max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s mod base;
    carry := s / base
  done;
  r

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin r.(i) <- s + base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (a.(i) * b.(j)) + !carry in
        r.(i + j) <- s mod base;
        carry := s / base
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    r
  end

let mul_mag_small a m =
  assert (m >= 0 && m < base);
  if m = 0 then [||]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * m) + !carry in
      r.(i) <- s mod base;
      carry := s / base
    done;
    r.(la) <- !carry;
    r
  end

let strip_mag a =
  let n = effective_len a in
  if n = Array.length a then a else Array.sub a 0 n

(* Long division of magnitudes, most significant dividend limb first,
   maintaining a remainder smaller than the divisor.  Single-limb
   divisors divide directly in machine words; longer divisors estimate
   each quotient limb from the top three remainder limbs over the top
   two divisor limbs (error at most ~2 either way, fixed by cheap
   add/sub corrections) instead of the former 14-step binary search. *)
let divmod_mag a b =
  let la = Array.length a in
  let lb = effective_len b in
  let q = Array.make (Stdlib.max la 1) 0 in
  if lb = 1 then begin
    let b0 = b.(0) in
    let r = ref 0 in
    for i = la - 1 downto 0 do
      let v = (!r * base) + a.(i) in
      q.(i) <- v / b0;
      r := v mod b0
    done;
    (q, if !r = 0 then [||] else [| !r |])
  end
  else begin
    let bhi2 = (b.(lb - 1) * base) + b.(lb - 2) in
    let rem = ref [||] in
    for i = la - 1 downto 0 do
      (* rem := rem * base + a.(i) *)
      let rem' =
        let lr = Array.length !rem in
        let r = Array.make (lr + 1) 0 in
        Array.blit !rem 0 r 1 lr;
        r.(0) <- a.(i);
        strip_mag r
      in
      if cmp_mag rem' b < 0 then begin
        q.(i) <- 0;
        rem := rem'
      end
      else begin
        let lr = effective_len rem' in
        let limb j = if j < lr then rem'.(j) else 0 in
        (* Top limbs of rem' aligned with b's top two limbs: rem' has
           lb or lb+1 effective limbs because rem < b before the shift. *)
        let num =
          if lr = lb then (limb (lb - 1) * base) + limb (lb - 2)
          else (((limb lb * base) + limb (lb - 1)) * base) + limb (lb - 2)
        in
        let qhat = ref (Stdlib.min (num / bhi2) (base - 1)) in
        if !qhat = 0 then qhat := 1;
        let prod = ref (mul_mag_small b !qhat) in
        while cmp_mag !prod rem' > 0 do
          decr qhat;
          prod := sub_mag !prod b
        done;
        let continue = ref true in
        while !continue do
          let prod' = add_mag !prod b in
          if cmp_mag prod' rem' <= 0 then begin
            incr qhat;
            prod := prod'
          end
          else continue := false
        done;
        q.(i) <- !qhat;
        rem := strip_mag (sub_mag rem' !prod)
      end
    done;
    (q, !rem)
  end

(* Representation plumbing: [parts] views any value as sign + magnitude;
   [of_parts] rebuilds the canonical form, demoting to [Small] whenever
   the value fits a native [int]. *)

(* Magnitude limbs of [-n] for [n <= 0] (negative domain so that
   [min_int] needs no special case). *)
let mag_of_nonpos n =
  let rec limbs acc n = if n = 0 then acc else limbs (-(n mod base) :: acc) (n / base) in
  Array.of_list (List.rev (limbs [] n))

let parts = function
  | Small 0 -> (0, [||])
  | Small n -> ((if n < 0 then -1 else 1), mag_of_nonpos (if n < 0 then n else -n))
  | Big { sign; mag } -> (sign, mag)

(* [Some v] when [sign * mag] fits a native [int]; accumulates in the
   negative range to keep [min_int] representable. *)
let fits_int sign mag =
  (* Six or more significant limbs exceed 10^20 > 2^63: never fits. *)
  if effective_len mag > 5 then None
  else
  let rec go i acc =
    if i < 0 then Some acc
    else begin
      let limb = mag.(i) in
      if acc < (Stdlib.min_int + limb) / base then None
      else go (i - 1) ((acc * base) - limb)
    end
  in
  match go (Array.length mag - 1) 0 with
  | None -> None
  | Some negv ->
    if sign >= 0 then (if negv = Stdlib.min_int then None else Some (-negv))
    else Some negv

let of_parts sign mag =
  let mag = strip_mag mag in
  if Array.length mag = 0 then zero
  else begin
    match fits_int sign mag with
    | Some v -> Small v
    | None -> Big { sign; mag }
  end

let force_big x =
  match x with
  | Big _ -> x
  | Small _ ->
    let sign, mag = parts x in
    Big { sign; mag }

let sign = function
  | Small n -> Stdlib.compare n 0
  | Big b -> b.sign

let is_zero = function
  | Small n -> n = 0
  | Big b -> b.sign = 0

let neg = function
  | Small n ->
    if n = Stdlib.min_int then Big { sign = 1; mag = mag_of_nonpos n } else Small (-n)
  | Big b -> Big { sign = -b.sign; mag = b.mag }

let abs = function
  | Small n ->
    if n >= 0 then Small n
    else if n = Stdlib.min_int then Big { sign = 1; mag = mag_of_nonpos n }
    else Small (-n)
  | Big b -> Big { sign = Stdlib.abs b.sign; mag = b.mag }

let compare x y =
  match x, y with
  | Small a, Small b -> Stdlib.compare (a : int) b
  | _ ->
    let sx, mx = parts x and sy, my = parts y in
    if sx <> sy then Stdlib.compare sx sy
    else if sx >= 0 then cmp_mag mx my
    else cmp_mag my mx

let equal x y = compare x y = 0
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

let add_parts (s1, m1) (s2, m2) =
  if s1 = 0 then of_parts s2 m2
  else if s2 = 0 then of_parts s1 m1
  else if s1 = s2 then of_parts s1 (add_mag m1 m2)
  else begin
    match cmp_mag m1 m2 with
    | 0 -> zero
    | c when c > 0 -> of_parts s1 (sub_mag m1 m2)
    | _ -> of_parts s2 (sub_mag m2 m1)
  end

let add x y =
  match x, y with
  | Small a, Small b ->
    let s = a + b in
    (* Same-sign operands whose sum flips sign overflowed. *)
    if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then add_parts (parts x) (parts y)
    else Small s
  | _ -> add_parts (parts x) (parts y)

let sub x y =
  match x, y with
  | Small a, Small b when b <> Stdlib.min_int ->
    let s = a - b in
    if (a >= 0) <> (b >= 0) && (s >= 0) <> (a >= 0) then add_parts (parts x) (parts (neg y))
    else Small s
  | _ ->
    let s2, m2 = parts y in
    add_parts (parts x) (-s2, m2)

let mul x y =
  match x, y with
  | Small a, Small b when a <> Stdlib.min_int && b <> Stdlib.min_int ->
    if a = 0 || b = 0 then zero
    else begin
      let p = a * b in
      (* For b <> 0, an overflowed product p differs from a*b by a
         nonzero multiple of 2^63, which truncated division detects. *)
      if p / b = a then Small p
      else
        let s1, m1 = parts x and s2, m2 = parts y in
        of_parts (s1 * s2) (mul_mag m1 m2)
    end
  | _ ->
    let s1, m1 = parts x and s2, m2 = parts y in
    if s1 = 0 || s2 = 0 then zero else of_parts (s1 * s2) (mul_mag m1 m2)

(* compare (a*b) (c*d) without materializing the products.  Rational
   comparison cross-multiplies, so this is its hot path: when all four
   operands fit 31 bits the products fit 62 and native comparison
   suffices with no allocation at all. *)
let compare_products a b c d =
  let lim = 1 lsl 31 in
  match a, b, c, d with
  | Small a, Small b, Small c, Small d
    when a > -lim && a < lim && b > -lim && b < lim && c > -lim && c < lim
         && d > -lim && d < lim ->
    Stdlib.compare (a * b) (c * d)
  | _ -> compare (mul a b) (mul c d)

(* compare (a/b) (c/d) for positive denominators b, d — the whole of
   rational comparison in one call, so the solvers' innermost comparisons
   pay a single cross-module invocation and, on machine-word operands,
   no allocation. *)
let compare_fractions a b c d =
  match a, b, c, d with
  | Small sa, Small sb, Small sc, Small sd ->
    if sb = sd then Stdlib.compare (sa : int) sc
    else begin
      let lim = 1 lsl 31 in
      if sa > -lim && sa < lim && sb < lim && sc > -lim && sc < lim && sd < lim
      then Stdlib.compare (sa * sd) (sc * sb)
      else compare (mul a d) (mul c b)
    end
  | _ ->
    if equal b d then compare a c
    else begin
      let sa = sign a and sc = sign c in
      if sa <> sc then Stdlib.compare sa sc else compare_products a d c b
    end

let divmod a b =
  match a, b with
  | Small x, Small y when y <> 0 && not (x = Stdlib.min_int && y = -1) ->
    (Small (x / y), Small (x mod y))
  | _ ->
    let sb, mb = parts b in
    if sb = 0 then raise Division_by_zero
    else begin
      let sa, ma = parts a in
      if sa = 0 then (zero, zero)
      else begin
        let q_mag, r_mag = divmod_mag ma mb in
        (of_parts (sa * sb) q_mag, of_parts sa r_mag)
      end
    end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

let gcd a b =
  match a, b with
  | Small x, Small y when x <> Stdlib.min_int && y <> Stdlib.min_int ->
    Small (gcd_int (Stdlib.abs x) (Stdlib.abs y))
  | _ ->
    let rec go a b = if is_zero b then abs a else go b (rem a b) in
    go a b

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc x n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc x) (mul x x) (n lsr 1)
    else go acc (mul x x) (n lsr 1)
  in
  go one x n

let mul_int x m = mul x (Small m)
let add_int x m = add x (Small m)

let to_int_opt = function
  | Small n -> Some n
  | Big { sign; mag } -> fits_int sign mag

let to_float = function
  | Small n -> float_of_int n
  | Big { sign; mag } ->
    let v = ref 0.0 in
    for i = Array.length mag - 1 downto 0 do
      v := (!v *. float_of_int base) +. float_of_int mag.(i)
    done;
    if sign < 0 then -. !v else !v

let to_string x =
  match x with
  | Small n -> string_of_int n
  | Big b ->
    if b.sign = 0 then "0"
    else begin
      let n = Array.length b.mag in
      let buf = Buffer.create ((n * base_digits) + 1) in
      if b.sign < 0 then Buffer.add_char buf '-';
      Buffer.add_string buf (string_of_int b.mag.(n - 1));
      for i = n - 2 downto 0 do
        Buffer.add_string buf (Printf.sprintf "%04d" b.mag.(i))
      done;
      Buffer.contents buf
    end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let negative = s.[0] = '-' in
  let start = if negative then 1 else 0 in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  for i = start to len - 1 do
    if not (s.[i] >= '0' && s.[i] <= '9') then
      invalid_arg "Bigint.of_string: invalid character"
  done;
  let digits = len - start in
  let nlimbs = (digits + base_digits - 1) / base_digits in
  let mag = Array.make nlimbs 0 in
  (* Walk limb chunks from the least significant end of the string. *)
  for limb = 0 to nlimbs - 1 do
    let chunk_end = len - (limb * base_digits) in
    let chunk_start = Stdlib.max start (chunk_end - base_digits) in
    let v = ref 0 in
    for i = chunk_start to chunk_end - 1 do
      v := (!v * 10) + (Char.code s.[i] - Char.code '0')
    done;
    mag.(limb) <- !v
  done;
  of_parts (if negative then -1 else 1) mag

let pp fmt x = Format.pp_print_string fmt (to_string x)

let factorial n =
  if n < 0 then invalid_arg "Bigint.factorial: negative argument";
  let rec go acc i = if i > n then acc else go (mul_int acc i) (i + 1) in
  go one 1

open Bi_num

type 'a t = ('a * Rat.t) list

let merge_duplicates pairs =
  (* Quadratic, but supports are small; keeps first-seen order. *)
  let rec go acc = function
    | [] -> List.rev acc
    | (x, w) :: rest ->
      let same, other = List.partition (fun (y, _) -> y = x) rest in
      let w = List.fold_left (fun acc (_, w') -> Rat.add acc w') w same in
      go ((x, w) :: acc) other
  in
  go [] pairs

let make pairs =
  if pairs = [] then invalid_arg "Dist.make: empty distribution";
  List.iter
    (fun (_, w) ->
      if Stdlib.( < ) (Rat.sign w) 0 then invalid_arg "Dist.make: negative weight")
    pairs;
  let total = Rat.sum (List.map snd pairs) in
  if Rat.is_zero total then invalid_arg "Dist.make: zero total mass";
  let pairs = List.filter (fun (_, w) -> not (Rat.is_zero w)) pairs in
  merge_duplicates (List.map (fun (x, w) -> (x, Rat.div w total)) pairs)

let point x = [ (x, Rat.one) ]

let uniform xs =
  match xs with
  | [] -> invalid_arg "Dist.uniform: empty list"
  | _ ->
    let n = List.length xs in
    make (List.map (fun x -> (x, Rat.of_ints 1 n)) xs)

let bernoulli p =
  if Rat.(p < zero) || Rat.(p > one) then invalid_arg "Dist.bernoulli: p outside [0,1]";
  make [ (true, p); (false, Rat.sub Rat.one p) ]

let weighted_pair p x y =
  if Rat.(p < zero) || Rat.(p > one) then invalid_arg "Dist.weighted_pair: p outside [0,1]";
  make [ (x, p); (y, Rat.sub Rat.one p) ]

let support d = List.map fst d

let mass d x =
  match List.assoc_opt x d with
  | Some w -> w
  | None -> Rat.zero

let to_list d = d

let map f d = make (List.map (fun (x, w) -> (f x, w)) d)

let bind d f =
  make
    (List.concat_map
       (fun (x, w) -> List.map (fun (y, w') -> (y, Rat.mul w w')) (f x))
       d)

let product da db = bind da (fun a -> map (fun b -> (a, b)) db)

let product_list ds =
  List.fold_right
    (fun d acc -> bind d (fun x -> map (fun xs -> x :: xs) acc))
    ds (point [])

let condition pred d =
  let hits = List.filter (fun (x, _) -> pred x) d in
  if hits = [] then None else Some (make hits)

let expectation f d =
  Rat.sum (List.map (fun (x, w) -> Rat.mul w (f x)) d)

let expectation_ext f d =
  Extended.sum (List.map (fun (x, w) -> Extended.mul_rat w (f x)) d)

let probability pred d =
  Rat.sum (List.filter_map (fun (x, w) -> if pred x then Some w else None) d)

let sample rng d =
  (* A uniform draw over a large integer range compared against exact
     cumulative weights; 2^30 granularity is far finer than any prior
     used here. *)
  let grain = 1 lsl 29 in
  let u = Rat.of_ints (Random.State.int rng grain) grain in
  let rec go acc = function
    | [] -> fst (List.hd (List.rev d))
    | (x, w) :: rest ->
      let acc = Rat.add acc w in
      if Rat.(u < acc) then x else go acc rest
  in
  go Rat.zero d

let pp pp_elt fmt d =
  let pp_pair fmt (x, w) = Format.fprintf fmt "%a: %a" pp_elt x Rat.pp w in
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ") pp_pair)
    d

(** Finite probability distributions with exact rational weights.

    A distribution is a finite list of (outcome, weight) pairs with
    positive weights summing to one.  This is the common prior of a
    Bayesian game (Section 2 of the paper), so exactness is load-bearing:
    all expected-cost comparisons in equilibrium checks happen in
    rational arithmetic. *)

open Bi_num

type 'a t

val make : ('a * Rat.t) list -> 'a t
(** Builds a distribution from weighted outcomes.  Weights must be
    non-negative and sum to a positive value; they are normalized to sum
    to one and zero-weight outcomes are dropped.  Duplicate outcomes (per
    polymorphic equality) are merged.
    @raise Invalid_argument on an empty or zero-mass input, or any
    negative weight. *)

val point : 'a -> 'a t
val uniform : 'a list -> 'a t
val bernoulli : Rat.t -> bool t
(** [bernoulli p] is [true] with probability [p]. @raise Invalid_argument
    unless [0 <= p <= 1]. *)

val weighted_pair : Rat.t -> 'a -> 'a -> 'a t
(** [weighted_pair p x y] yields [x] with probability [p], else [y]. *)

val support : 'a t -> 'a list
val mass : 'a t -> 'a -> Rat.t
(** Zero for outcomes outside the support. *)

val to_list : 'a t -> ('a * Rat.t) list

val map : ('a -> 'b) -> 'a t -> 'b t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val product : 'a t -> 'b t -> ('a * 'b) t
val product_list : 'a t list -> 'a list t
(** Independent product; the distribution of the profile. *)

val condition : ('a -> bool) -> 'a t -> 'a t option
(** Conditional distribution given the event; [None] when the event has
    zero probability. *)

val expectation : ('a -> Rat.t) -> 'a t -> Rat.t
val expectation_ext : ('a -> Extended.t) -> 'a t -> Extended.t
val probability : ('a -> bool) -> 'a t -> Rat.t

val sample : Random.State.t -> 'a t -> 'a
(** Draws an outcome; rational weights are consumed exactly via
    cumulative comparison against a uniform 29-bit rational. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit

lib/prob/dist.mli: Bi_num Extended Format Random Rat

lib/prob/dist.ml: Bi_num Extended Format List Random Rat Stdlib

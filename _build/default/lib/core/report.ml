open Bi_num

let float_cell f = Printf.sprintf "%.4f" f

let rat_cell r = Printf.sprintf "%s (~%.4f)" (Rat.to_string r) (Rat.to_float r)

let ext_cell = function
  | Extended.Fin r -> rat_cell r
  | Extended.Inf -> "inf"

let ext_opt_cell = function
  | Some c -> ext_cell c
  | None -> "n/a"

let ratio_cell = function
  | Some r -> rat_cell r
  | None -> "undefined"

let pp_cell fmt c = Format.pp_print_string fmt (ext_cell c)
let pp_cell_opt fmt c = Format.pp_print_string fmt (ext_opt_cell c)
let pp_ratio fmt r = Format.pp_print_string fmt (ratio_cell r)

let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> Stdlib.max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = match List.nth_opt row c with Some s -> s | None -> "" in
           cell ^ String.make (w - String.length cell) ' ')
         widths)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)

let measures_rows (r : Bi_bayes.Measures.report) =
  [
    [ "optP"; ext_cell r.Bi_bayes.Measures.opt_p ];
    [ "best-eqP"; ext_opt_cell r.Bi_bayes.Measures.best_eq_p ];
    [ "worst-eqP"; ext_opt_cell r.Bi_bayes.Measures.worst_eq_p ];
    [ "optC"; ext_cell r.Bi_bayes.Measures.opt_c ];
    [ "best-eqC"; ext_opt_cell r.Bi_bayes.Measures.best_eq_c ];
    [ "worst-eqC"; ext_opt_cell r.Bi_bayes.Measures.worst_eq_c ];
  ]

let verdict ok = if ok then "PASS" else "FAIL"

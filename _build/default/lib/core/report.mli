(** Human-readable reporting of ignorance measures and bench rows. *)

open Bi_num

val pp_cell : Format.formatter -> Extended.t -> unit
(** Exact value followed by a float approximation, e.g. ["7/3 (~2.333)"]. *)

val pp_cell_opt : Format.formatter -> Extended.t option -> unit

val pp_ratio : Format.formatter -> Rat.t option -> unit

val table : header:string list -> string list list -> string
(** Renders an aligned plain-text table. *)

val measures_rows : Bi_bayes.Measures.report -> string list list
(** Six labelled rows (quantity, exact, float) for a measures report. *)

val verdict : bool -> string
(** ["PASS"] / ["FAIL"]. *)

val float_cell : float -> string
val rat_cell : Rat.t -> string
val ext_cell : Extended.t -> string
val ext_opt_cell : Extended.t option -> string
val ratio_cell : Rat.t option -> string

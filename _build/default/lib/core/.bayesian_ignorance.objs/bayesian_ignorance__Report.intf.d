lib/core/report.mli: Bi_bayes Bi_num Extended Format Rat

lib/core/bayesian_ignorance.ml: Bi_bayes Bi_constructions Bi_ds Bi_embed Bi_game Bi_graph Bi_minimax Bi_ncs Bi_num Bi_prob Bi_steiner Report

lib/core/report.ml: Bi_bayes Bi_num Extended Format List Printf Rat Stdlib String

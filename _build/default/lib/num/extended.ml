type t =
  | Fin of Rat.t
  | Inf

let zero = Fin Rat.zero
let one = Fin Rat.one
let inf = Inf
let of_rat r = Fin r
let of_int n = Fin (Rat.of_int n)
let of_ints n d = Fin (Rat.of_ints n d)

let is_finite = function Fin _ -> true | Inf -> false

let to_rat_opt = function Fin r -> Some r | Inf -> None

let to_rat_exn = function
  | Fin r -> r
  | Inf -> invalid_arg "Extended.to_rat_exn: infinite"

let add x y =
  match x, y with
  | Fin a, Fin b -> Fin (Rat.add a b)
  | Inf, _ | _, Inf -> Inf

let mul x y =
  match x, y with
  | Fin a, Fin b -> Fin (Rat.mul a b)
  | Fin a, Inf | Inf, Fin a -> if Rat.is_zero a then Fin Rat.zero else Inf
  | Inf, Inf -> Inf

let mul_rat r x = mul (Fin r) x

let div_int x n =
  match x with
  | Fin a -> Fin (Rat.div_int a n)
  | Inf -> Inf

let compare x y =
  match x, y with
  | Fin a, Fin b -> Rat.compare a b
  | Fin _, Inf -> -1
  | Inf, Fin _ -> 1
  | Inf, Inf -> 0

let equal x y = compare x y = 0
let ( < ) x y = compare x y < 0
let ( <= ) x y = compare x y <= 0
let min x y = if Stdlib.( <= ) (compare x y) 0 then x else y
let max x y = if Stdlib.( >= ) (compare x y) 0 then x else y
let sum xs = List.fold_left add zero xs

let to_float = function
  | Fin r -> Rat.to_float r
  | Inf -> Float.infinity

let to_string = function
  | Fin r -> Rat.to_string r
  | Inf -> "inf"

let pp fmt x = Format.pp_print_string fmt (to_string x)

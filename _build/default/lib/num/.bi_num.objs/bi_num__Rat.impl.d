lib/num/rat.ml: Bigint Format List Stdlib

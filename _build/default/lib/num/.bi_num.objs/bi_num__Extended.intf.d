lib/num/extended.mli: Format Rat

lib/num/extended.ml: Float Format List Rat Stdlib

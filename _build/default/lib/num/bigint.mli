(** Arbitrary-precision signed integers.

    A value is a sign and a little-endian magnitude in base 10{^4}.  The
    representation is canonical: the magnitude never has leading zero
    limbs and the magnitude of zero is empty.  All operations are pure.

    The implementation favours obvious correctness over speed (schoolbook
    multiplication, binary-search long division): the reproduction needs
    exact arithmetic on numbers of at most a few hundred digits, where
    these algorithms are more than fast enough. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] when [x] fits in a native [int]. *)

val to_float : t -> float

val of_string : string -> t
(** Accepts an optional leading ['-'] followed by decimal digits.
    @raise Invalid_argument on any other input. *)

val to_string : t -> string

val sign : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [0 <= |r| < |b|] and
    [r] carrying the sign of [a] (truncated division, as for [Stdlib.( / )]).
    @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative. [gcd zero zero = zero]. *)

val pow : t -> int -> t
(** [pow x n] for [n >= 0]. @raise Invalid_argument on negative [n]. *)

val mul_int : t -> int -> t
val add_int : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit

val factorial : int -> t
(** [factorial n] for [n >= 0]. *)

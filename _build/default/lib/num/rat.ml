module B = Bigint

type t = { num : B.t; den : B.t }

let make num den =
  if B.is_zero den then raise Division_by_zero;
  if B.is_zero num then { num = B.zero; den = B.one }
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    { num = B.div num g; den = B.div den g }
  end

let zero = { num = B.zero; den = B.one }
let one = { num = B.one; den = B.one }
let two = { num = B.two; den = B.one }
let of_bigint n = { num = n; den = B.one }
let of_int n = of_bigint (B.of_int n)
let of_ints n d = make (B.of_int n) (B.of_int d)
let num x = x.num
let den x = x.den

let add x y = make (B.add (B.mul x.num y.den) (B.mul y.num x.den)) (B.mul x.den y.den)
let sub x y = make (B.sub (B.mul x.num y.den) (B.mul y.num x.den)) (B.mul x.den y.den)
let mul x y = make (B.mul x.num y.num) (B.mul x.den y.den)
let div x y = make (B.mul x.num y.den) (B.mul x.den y.num)
let neg x = { x with num = B.neg x.num }
let abs x = { x with num = B.abs x.num }

let inv x =
  if B.is_zero x.num then raise Division_by_zero;
  make x.den x.num

let mul_int x n = make (B.mul_int x.num n) x.den
let div_int x n = make x.num (B.mul_int x.den n)

(* Denominators are positive, so cross-multiplication preserves order. *)
let compare x y = B.compare (B.mul x.num y.den) (B.mul y.num x.den)
let equal x y = compare x y = 0
let ( < ) x y = compare x y < 0
let ( <= ) x y = compare x y <= 0
let ( > ) x y = compare x y > 0
let ( >= ) x y = compare x y >= 0
let min x y = if Stdlib.( <= ) (compare x y) 0 then x else y
let max x y = if Stdlib.( >= ) (compare x y) 0 then x else y
let sign x = B.sign x.num
let is_zero x = B.is_zero x.num

let sum xs = List.fold_left add zero xs

let average xs =
  match xs with
  | [] -> invalid_arg "Rat.average: empty list"
  | _ -> div_int (sum xs) (List.length xs)

let harmonic n =
  if Stdlib.(n < 0) then invalid_arg "Rat.harmonic: negative argument";
  let rec go acc i = if Stdlib.(i > n) then acc else go (add acc (of_ints 1 i)) (i + 1) in
  go zero 1

let pow x n =
  if Stdlib.(n >= 0) then make (B.pow x.num n) (B.pow x.den n)
  else inv (make (B.pow x.num (-n)) (B.pow x.den (-n)))

(* Dividing the bigints first keeps the conversion exact to ~15 digits
   and avoids overflowing both operands to infinity (num and den can
   exceed the float range even when their quotient is small). *)
let to_float x =
  let scale = B.pow (B.of_int 10) 17 in
  let q = B.div (B.mul x.num scale) x.den in
  B.to_float q /. 1e17

let to_string x =
  if B.equal x.den B.one then B.to_string x.num
  else B.to_string x.num ^ "/" ^ B.to_string x.den

let pp fmt x = Format.pp_print_string fmt (to_string x)

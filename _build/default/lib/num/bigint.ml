(* Little-endian magnitude in base 10^4; canonical form has no leading
   zero limbs and sign 0 exactly for the empty magnitude. *)

let base = 10_000
let base_digits = 4

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi < 0 then zero
  else if hi = n - 1 then { sign; mag }
  else { sign; mag = Array.sub mag 0 (hi + 1) }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    (* min_int negation overflows, so accumulate on negative values. *)
    let rec limbs acc n = if n = 0 then acc else limbs (-(n mod base) :: acc) (n / base) in
    let ds = List.rev (limbs [] (if n < 0 then n else -n)) in
    { sign; mag = Array.of_list ds }
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)
let sign x = x.sign
let is_zero x = x.sign = 0
let neg x = { x with sign = -x.sign }
let abs x = { x with sign = Stdlib.abs x.sign }

(* Magnitude-level primitives.  All take/return little-endian arrays. *)

(* Magnitudes may carry leading zero limbs transiently (e.g. the raw
   output of mul_mag_small), so comparisons must use effective lengths. *)
let effective_len a =
  let rec go i = if i >= 0 && a.(i) = 0 then go (i - 1) else i + 1 in
  go (Array.length a - 1)

let cmp_mag a b =
  let la = effective_len a and lb = effective_len b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = Stdlib.max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s mod base;
    carry := s / base
  done;
  r

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin r.(i) <- s + base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (a.(i) * b.(j)) + !carry in
        r.(i + j) <- s mod base;
        carry := s / base
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    r
  end

let mul_mag_small a m =
  assert (m >= 0 && m < base);
  if m = 0 then [||]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * m) + !carry in
      r.(i) <- s mod base;
      carry := s / base
    done;
    r.(la) <- !carry;
    r
  end

(* Long division of magnitudes: processes dividend limbs from most
   significant to least, maintaining a remainder smaller than the
   divisor.  Each quotient limb is found by binary search, which is
   trivially correct and fast enough at base 10^4. *)
let divmod_mag a b =
  let la = Array.length a in
  let q = Array.make (Stdlib.max la 1) 0 in
  let rem = ref [||] in
  for i = la - 1 downto 0 do
    (* rem := rem * base + a.(i) *)
    let shifted =
      let lr = Array.length !rem in
      let r = Array.make (lr + 1) 0 in
      Array.blit !rem 0 r 1 lr;
      r.(0) <- a.(i);
      r
    in
    let rem' = (normalize 1 shifted).mag in
    (* binary search for the largest d with d * b <= rem' *)
    let lo = ref 0 and hi = ref (base - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if cmp_mag (mul_mag_small b mid) rem' <= 0 then lo := mid else hi := mid - 1
    done;
    q.(i) <- !lo;
    rem := (normalize 1 (sub_mag rem' (mul_mag_small b !lo))).mag
  done;
  (q, !rem)

let compare x y =
  if x.sign <> y.sign then Stdlib.compare x.sign y.sign
  else if x.sign >= 0 then cmp_mag x.mag y.mag
  else cmp_mag y.mag x.mag

let equal x y = compare x y = 0
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then normalize x.sign (add_mag x.mag y.mag)
  else begin
    match cmp_mag x.mag y.mag with
    | 0 -> zero
    | c when c > 0 -> normalize x.sign (sub_mag x.mag y.mag)
    | _ -> normalize y.sign (sub_mag y.mag x.mag)
  end

let sub x y = add x (neg y)

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else normalize (x.sign * y.sign) (mul_mag x.mag y.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else begin
    let q_mag, r_mag = divmod_mag a.mag b.mag in
    let q = normalize (a.sign * b.sign) q_mag in
    let r = normalize a.sign r_mag in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc x n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc x) (mul x x) (n lsr 1)
    else go acc (mul x x) (n lsr 1)
  in
  go one x n

let mul_int x m = mul x (of_int m)
let add_int x m = add x (of_int m)

let to_int_opt x =
  (* Reconstruct while watching for overflow on negative accumulation. *)
  let rec go i acc =
    if i < 0 then Some acc
    else begin
      let limb = x.mag.(i) in
      if acc < (Stdlib.min_int + limb) / base then None
      else go (i - 1) ((acc * base) - limb)
    end
  in
  match go (Array.length x.mag - 1) 0 with
  | None -> None
  | Some negv ->
    if x.sign >= 0 then (if negv = Stdlib.min_int then None else Some (-negv))
    else Some negv

let to_float x =
  let v = ref 0.0 in
  for i = Array.length x.mag - 1 downto 0 do
    v := (!v *. float_of_int base) +. float_of_int x.mag.(i)
  done;
  if x.sign < 0 then -. !v else !v

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let n = Array.length x.mag in
    let buf = Buffer.create (n * base_digits + 1) in
    if x.sign < 0 then Buffer.add_char buf '-';
    Buffer.add_string buf (string_of_int x.mag.(n - 1));
    for i = n - 2 downto 0 do
      Buffer.add_string buf (Printf.sprintf "%04d" x.mag.(i))
    done;
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let negative = s.[0] = '-' in
  let start = if negative then 1 else 0 in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  for i = start to len - 1 do
    if not (s.[i] >= '0' && s.[i] <= '9') then
      invalid_arg "Bigint.of_string: invalid character"
  done;
  let digits = len - start in
  let nlimbs = (digits + base_digits - 1) / base_digits in
  let mag = Array.make nlimbs 0 in
  (* Walk limb chunks from the least significant end of the string. *)
  for limb = 0 to nlimbs - 1 do
    let chunk_end = len - (limb * base_digits) in
    let chunk_start = Stdlib.max start (chunk_end - base_digits) in
    let v = ref 0 in
    for i = chunk_start to chunk_end - 1 do
      v := (!v * 10) + (Char.code s.[i] - Char.code '0')
    done;
    mag.(limb) <- !v
  done;
  normalize (if negative then -1 else 1) mag

let pp fmt x = Format.pp_print_string fmt (to_string x)

let factorial n =
  if n < 0 then invalid_arg "Bigint.factorial: negative argument";
  let rec go acc i = if i > n then acc else go (mul_int acc i) (i + 1) in
  go one 1

(** Rationals extended with positive infinity.

    NCS games charge infinite cost to an agent whose purchase does not
    connect her terminals (Section 2 of the paper), so cost arithmetic is
    carried out in this extended domain.  Negative infinity never occurs
    in the model and is deliberately not representable. *)

type t =
  | Fin of Rat.t
  | Inf

val zero : t
val one : t
val inf : t
val of_rat : Rat.t -> t
val of_int : int -> t
val of_ints : int -> int -> t

val is_finite : t -> bool

val to_rat_opt : t -> Rat.t option

val to_rat_exn : t -> Rat.t
(** @raise Invalid_argument on [Inf]. *)

val add : t -> t -> t

val mul : t -> t -> t
(** [mul] follows measure-theoretic convention: [0 * Inf = 0], so that a
    zero-probability state never contributes to an expectation even when
    its cost is infinite. *)

val mul_rat : Rat.t -> t -> t
val div_int : t -> int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val sum : t list -> t
val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string

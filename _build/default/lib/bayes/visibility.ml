open Bi_num
module Dist = Bi_prob.Dist

(* An informed agent's strategy maps support states (indices into the
   prior's support list) to actions; an uninformed agent's maps her own
   types to actions, exactly as in {!Bayesian}.  We enumerate both kinds
   of maps and evaluate the expected social cost directly. *)

let optimum g ~informed =
  let players = Bayesian.players g in
  if Array.length informed <> players then
    invalid_arg "Visibility.optimum: informed array length mismatch";
  let support = Array.of_list (Dist.support (Bayesian.prior g)) in
  let n_states = Array.length support in
  let domain i = if informed.(i) then n_states else Bayesian.n_types g i in
  let per_player =
    List.init players (fun i ->
        List.of_seq
          (Bi_ds.Combinat.functions ~dom:(domain i)
             (Array.init (Bayesian.n_actions g i) Fun.id)))
  in
  let expected_cost profile =
    let profile = Array.of_list profile in
    let cost_at state t =
      let a =
        Array.mapi
          (fun i strategy ->
            if informed.(i) then strategy.(state) else strategy.(t.(i)))
          profile
      in
      let acc = ref Extended.zero in
      for i = 0 to players - 1 do
        acc := Extended.add !acc (Bayesian.underlying_cost g t a i)
      done;
      !acc
    in
    (* Walk the support with explicit indices so informed strategies can
       key on the state. *)
    let total = ref Extended.zero in
    Array.iteri
      (fun state t ->
        let p = Dist.mass (Bayesian.prior g) t in
        total := Extended.add !total (Extended.mul_rat p (cost_at state t)))
      support;
    !total
  in
  match
    Bi_ds.Combinat.argmin expected_cost ~cmp:Extended.compare
      (Bi_ds.Combinat.product per_player)
  with
  | Some (_, c) -> c
  | None -> assert false

let gap_closure g =
  let players = Bayesian.players g in
  List.init (players + 1) (fun m ->
      let informed = Array.init players (fun i -> i < m) in
      (m, optimum g ~informed))

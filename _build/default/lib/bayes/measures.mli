(** The Bayesian-ignorance quantities of Section 2.

    Partial-information (numerator) quantities:
    - [optP(G)   = min_s K(s)]
    - [best-eqP  = min over Bayesian equilibria s of K(s)]
    - [worst-eqP = max over Bayesian equilibria s of K(s)]

    Complete-information (denominator) quantities, averaged over the
    prior:
    - [optC      = E_t[min_a K_t(a)]]
    - [best-eqC  = E_t[min over Nash equilibria a of G_t of K_t(a)]]
    - [worst-eqC = E_t[max over Nash equilibria a of G_t of K_t(a)]]

    The three ignorance ratios are [optP/optC], [best-eqP/best-eqC] and
    [worst-eqP/worst-eqC]. *)

open Bi_num

type report = {
  opt_p : Extended.t;
  best_eq_p : Extended.t option; (** [None]: no pure Bayesian equilibrium. *)
  worst_eq_p : Extended.t option;
  opt_c : Extended.t;
  best_eq_c : Extended.t option; (** [None]: some underlying game has no pure Nash equilibrium. *)
  worst_eq_c : Extended.t option;
}

val opt_c : Bayesian.t -> Extended.t
val best_eq_c : Bayesian.t -> Extended.t option
val worst_eq_c : Bayesian.t -> Extended.t option

val opt_p_exhaustive : Bayesian.t -> Extended.t * Bayesian.strategy_profile

val opt_p_descent :
  ?restarts:int -> ?seed:int -> Bayesian.t -> Extended.t * Bayesian.strategy_profile
(** Benevolent coordinate descent from [restarts] (default 5) random
    profiles; an upper bound on [optP], exact whenever the landscape has
    no worse local optima (the paper's constructions are symmetric enough
    that a few restarts find the optimum; tests cross-check against
    exhaustion on small instances). *)

val exhaustive : Bayesian.t -> report
(** All six quantities by full enumeration of strategy and action
    profiles.  Exponential; intended for the small instances that anchor
    correctness. *)

val ratio : Extended.t -> Extended.t -> Rat.t option
(** [ratio num den]: [None] when the denominator is zero or either side
    is infinite. *)

type ratios = {
  r_opt : Rat.t option;
  r_best_eq : Rat.t option;
  r_worst_eq : Rat.t option;
}

val ratios_of_report : report -> ratios

val observation_2_2_holds : report -> bool
(** Checks [optC <= optP <= best-eqP <= worst-eqP] (Observation 2.2)
    whenever the equilibrium quantities exist. *)

val pp_report : Format.formatter -> report -> unit

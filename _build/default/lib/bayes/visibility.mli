(** Interpolating between local and global views.

    The paper compares two extremes: every agent sees only her own type
    ([optP]) or the full realized type profile ([optC]).  This module
    fills in the middle for benevolent agents: an {e informed} agent's
    strategy may depend on the whole type profile, an uninformed one's
    only on her own type.  With no informed agents the optimum equals
    [optP]; with all agents informed it equals [optC] (the minimization
    decomposes per state) — both identities are exercised in tests.

    This quantifies how much of the Bayesian-ignorance gap each
    additional globally-informed agent closes, an ablation the paper's
    framing suggests but does not run. *)

open Bi_num

val optimum : Bayesian.t -> informed:bool array -> Extended.t
(** Minimum expected social cost over profiles where agent [i]'s action
    may depend on the full type profile iff [informed.(i)].  Exhaustive
    — the search space is exponential in the number of types (uninformed)
    and support states (informed); intended for small games.
    @raise Invalid_argument on length mismatch. *)

val gap_closure : Bayesian.t -> (int * Extended.t) list
(** [(m, opt_m)] for [m = 0 .. k]: the optimum when agents [0..m-1] are
    informed and the rest are not.  [opt_0 = optP] and [opt_k = optC];
    the sequence is non-increasing. *)

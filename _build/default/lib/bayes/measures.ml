open Bi_num

module Dist = Bi_prob.Dist
module Strategic = Bi_game.Strategic

type report = {
  opt_p : Extended.t;
  best_eq_p : Extended.t option;
  worst_eq_p : Extended.t option;
  opt_c : Extended.t;
  best_eq_c : Extended.t option;
  worst_eq_c : Extended.t option;
}

let expect_over_prior g f =
  Dist.expectation_ext (fun t -> f (Bayesian.underlying_game g t)) (Bayesian.prior g)

let opt_c g = expect_over_prior g (fun game -> fst (Strategic.optimum game))

(* Expectation of a per-underlying-game quantity that may not exist
   (games without pure equilibria): None if it is missing anywhere in
   the support. *)
let expect_opt_over_prior g f =
  let exception Missing in
  try
    Some
      (expect_over_prior g (fun game ->
           match f game with
           | Some (c, _) -> c
           | None -> raise Missing))
  with Missing -> None

let best_eq_c g = expect_opt_over_prior g Strategic.best_equilibrium
let worst_eq_c g = expect_opt_over_prior g Strategic.worst_equilibrium

let opt_p_exhaustive g =
  match
    Bi_ds.Combinat.argmin (Bayesian.social_cost g) ~cmp:Extended.compare
      (Bayesian.strategy_profiles g)
  with
  | Some (s, c) -> (c, s)
  | None -> assert false (* strategy space is never empty *)

let opt_p_descent ?(restarts = 5) ?(seed = 0x5eed) g =
  let rng = Random.State.make [| seed |] in
  let candidates =
    List.init restarts (fun _ ->
        Bayesian.benevolent_descent g (Bayesian.random_strategy_profile rng g))
  in
  match
    Bi_ds.Combinat.argmin (Bayesian.social_cost g) ~cmp:Extended.compare
      (List.to_seq candidates)
  with
  | Some (s, c) -> (c, s)
  | None -> assert false

let exhaustive g =
  let opt_p, _ = opt_p_exhaustive g in
  let equilibria = List.of_seq (Bayesian.bayesian_equilibria g) in
  let eq_costs = List.map (Bayesian.social_cost g) equilibria in
  let best_eq_p =
    match eq_costs with [] -> None | _ -> Some (List.fold_left Extended.min Extended.Inf eq_costs)
  in
  let worst_eq_p =
    match eq_costs with [] -> None | _ -> Some (List.fold_left Extended.max Extended.zero eq_costs)
  in
  {
    opt_p;
    best_eq_p;
    worst_eq_p;
    opt_c = opt_c g;
    best_eq_c = best_eq_c g;
    worst_eq_c = worst_eq_c g;
  }

let ratio num den =
  match num, den with
  | Extended.Fin n, Extended.Fin d ->
    if Rat.is_zero d then None else Some (Rat.div n d)
  | _ -> None

type ratios = {
  r_opt : Rat.t option;
  r_best_eq : Rat.t option;
  r_worst_eq : Rat.t option;
}

let ratios_of_report r =
  let flat num den =
    match num, den with
    | Some n, Some d -> ratio n d
    | _ -> None
  in
  {
    r_opt = ratio r.opt_p r.opt_c;
    r_best_eq = flat r.best_eq_p r.best_eq_c;
    r_worst_eq = flat r.worst_eq_p r.worst_eq_c;
  }

let observation_2_2_holds r =
  let ( <= ) = Extended.( <= ) in
  r.opt_c <= r.opt_p
  && (match r.best_eq_p with Some b -> r.opt_p <= b | None -> true)
  && (match r.best_eq_p, r.worst_eq_p with
      | Some b, Some w -> b <= w
      | _ -> true)

let pp_opt fmt = function
  | Some c -> Extended.pp fmt c
  | None -> Format.pp_print_string fmt "n/a"

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>optP       = %a@,best-eqP   = %a@,worst-eqP  = %a@,optC       = %a@,best-eqC   = %a@,worst-eqC  = %a@]"
    Extended.pp r.opt_p pp_opt r.best_eq_p pp_opt r.worst_eq_p Extended.pp
    r.opt_c pp_opt r.best_eq_c pp_opt r.worst_eq_c

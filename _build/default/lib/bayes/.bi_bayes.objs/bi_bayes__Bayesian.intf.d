lib/bayes/bayesian.mli: Bi_game Bi_num Bi_prob Extended Random Rat Seq

lib/bayes/visibility.ml: Array Bayesian Bi_ds Bi_num Bi_prob Extended Fun List

lib/bayes/bayesian.ml: Array Bi_ds Bi_game Bi_num Bi_prob Extended Fun Hashtbl List Option Random Rat Seq

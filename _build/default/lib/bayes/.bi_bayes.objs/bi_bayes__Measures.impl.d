lib/bayes/measures.ml: Bayesian Bi_ds Bi_game Bi_num Bi_prob Extended Format List Random Rat

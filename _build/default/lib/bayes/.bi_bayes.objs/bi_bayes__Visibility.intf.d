lib/bayes/visibility.mli: Bayesian Bi_num Extended

lib/bayes/measures.mli: Bayesian Bi_num Extended Format Rat

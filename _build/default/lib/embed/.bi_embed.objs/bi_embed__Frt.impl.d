lib/embed/frt.ml: Array Bi_graph Bi_num Extended Fun List Random Rat Stdlib

lib/embed/frt.mli: Bi_graph Bi_num Random Rat

(** Random hierarchical tree embeddings in the style of
    Fakcharoenphol–Rao–Talwar (FRT), the engine behind the paper's
    Lemma 3.4 (the [O(log n)] universal bound on [optP/optC] in
    undirected graphs).

    [sample] draws a dominating tree for the shortest-path metric of a
    connected undirected graph: a laminar family of clusters obtained by
    cutting balls of geometrically decreasing radii around a random
    permutation of the vertices.  Tree nodes are clusters; each cluster
    is labelled with a {e center} vertex, leaves are singletons centered
    on their vertex, and a tree edge weighs the graph distance between
    the two centers — so tree distances dominate graph distances by the
    triangle inequality along the center path, while the FRT level radii
    (which upper-bound those center distances) keep the expected stretch
    [E[d_T(u,v)] / d_G(u,v)] at [O(log n)] — measured, not proved, in
    this reproduction (see DESIGN.md).

    The Lemma 3.4 strategy profile buys, for tree path
    [u = c_0, c_1, ..., c_m = v], a designated graph shortest path
    between each pair of consecutive centers; {!expand_pair} returns
    that edge set. *)

open Bi_num

type t

val sample : Random.State.t -> Bi_graph.Graph.t -> t
(** @raise Invalid_argument on directed, empty or disconnected input. *)

val n_nodes : t -> int
val tree_root : t -> int
val leaf_of_vertex : t -> int -> int
val center : t -> int -> int
(** Center (graph vertex) of a tree node's cluster. *)

val parent : t -> int -> (int * Rat.t) option
(** Parent node and edge weight; [None] at the root. *)

val tree_distance : t -> int -> int -> Rat.t
(** Distance in the tree between the leaves of two graph vertices. *)

val dominates : t -> Bi_graph.Graph.t -> bool
(** Whether [tree_distance u v >= d_G(u, v)] for all vertex pairs (it
    always should; exposed for tests). *)

val center_path : t -> int -> int -> int list
(** Graph vertices: centers along the tree path between two leaves,
    deduplicated, starting at the first vertex and ending at the second. *)

val expand_pair : t -> Bi_graph.Graph.t -> int -> int -> int list
(** Edge ids of the union of designated shortest paths along
    {!center_path} — the purchase Lemma 3.4's strategy makes for an
    agent typed [(u, v)]. *)

val stretch : t -> Bi_graph.Graph.t -> int -> int -> Rat.t option
(** [tree_distance u v / d_G(u, v)]; [None] when [u = v]. *)

val average_stretch : t -> Bi_graph.Graph.t -> Rat.t
(** Mean stretch over all vertex pairs at positive distance. *)

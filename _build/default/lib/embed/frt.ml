open Bi_num
module Graph = Bi_graph.Graph

type node = {
  center : int;
  parent : int; (* -1 at the root *)
  weight : Rat.t; (* weight of the edge to the parent; zero at the root *)
  depth : int;
}

type t = {
  nodes : node array;
  leaf : int array; (* graph vertex -> leaf node id *)
}

let n_nodes t = Array.length t.nodes
let tree_root _ = 0
let leaf_of_vertex t v = t.leaf.(v)
let center t i = t.nodes.(i).center
let parent t i =
  let n = t.nodes.(i) in
  if n.parent < 0 then None else Some (n.parent, n.weight)

let sample rng g =
  if Graph.is_directed g then invalid_arg "Frt.sample: directed graph";
  let n = Graph.n_vertices g in
  if n = 0 then invalid_arg "Frt.sample: empty graph";
  let dist = Graph.all_pairs_distances g in
  let d u v =
    match dist.(u).(v) with
    | Extended.Fin r -> r
    | Extended.Inf -> invalid_arg "Frt.sample: disconnected graph"
  in
  (* unit = smallest nonzero distance; diameter = largest. *)
  let unit = ref None and diameter = ref Rat.zero in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let duv = d u v in
      if Rat.( > ) duv !diameter then diameter := duv;
      if not (Rat.is_zero duv) then
        match !unit with
        | None -> unit := Some duv
        | Some m -> if Rat.( < ) duv m then unit := Some duv
    done
  done;
  let unit = match !unit with Some m -> m | None -> Rat.one in
  (* Smallest L with 2^L * unit >= diameter, so the top cut radius
     covers everything. *)
  let levels =
    let rec go l r =
      if Rat.( >= ) r !diameter then l else go (l + 1) (Rat.mul_int r 2)
    in
    go 0 unit
  in
  (* Random permutation and beta in [1, 2), granularity 1/1024. *)
  let pi = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = pi.(i) in
    pi.(i) <- pi.(j);
    pi.(j) <- tmp
  done;
  let beta = Rat.add Rat.one (Rat.of_ints (Random.State.int rng 1024) 1024) in
  let nodes = ref [] in
  let n_alloc = ref 0 in
  let alloc node = let id = !n_alloc in incr n_alloc; nodes := (id, node) :: !nodes; id in
  let leaf = Array.make n (-1) in
  (* A tree edge weighs the graph distance between the two cluster
     centers.  Domination then follows from the triangle inequality
     along the center path (leaves are singletons centered on their
     vertex), while the FRT analysis — whose level-[m] weights
     upper-bound these distances — keeps the expected stretch
     logarithmic. *)
  (* Cut [members] of a level-(m+1) cluster into level-m children using
     balls of radius beta * 2^m * unit around the permutation order. *)
  let rec decompose members m parent_id parent_center depth =
    if m < 0 then
      List.iter
        (fun v ->
          leaf.(v) <-
            alloc { center = v; parent = parent_id; weight = d parent_center v; depth })
        members
    else begin
      let radius = Rat.mul (Rat.mul beta (Rat.pow Rat.two m)) unit in
      let remaining = ref members in
      Array.iter
        (fun u ->
          if !remaining <> [] then begin
            let inside, outside =
              List.partition (fun p -> Rat.( <= ) (d u p) radius) !remaining
            in
            if inside <> [] then begin
              remaining := outside;
              let id =
                alloc
                  { center = u; parent = parent_id; weight = d parent_center u; depth }
              in
              decompose inside (m - 1) id u (depth + 1)
            end
          end)
        pi
    end
  in
  let all = List.init n Fun.id in
  let root_center = pi.(0) in
  let root = alloc { center = root_center; parent = -1; weight = Rat.zero; depth = 0 } in
  decompose all (levels - 1) root root_center 1;
  let arr = Array.make !n_alloc { center = 0; parent = -1; weight = Rat.zero; depth = 0 } in
  List.iter (fun (id, node) -> arr.(id) <- node) !nodes;
  { nodes = arr; leaf }

(* Tree path between two leaves as node lists meeting at the LCA. *)
let tree_path t u v =
  let a = ref (t.leaf.(u)) and b = ref (t.leaf.(v)) in
  let up = ref [] and down = ref [] in
  while t.nodes.(!a).depth > t.nodes.(!b).depth do
    up := !a :: !up;
    a := t.nodes.(!a).parent
  done;
  while t.nodes.(!b).depth > t.nodes.(!a).depth do
    down := !b :: !down;
    b := t.nodes.(!b).parent
  done;
  while !a <> !b do
    up := !a :: !up;
    down := !b :: !down;
    a := t.nodes.(!a).parent;
    b := t.nodes.(!b).parent
  done;
  (* up is bottom-to-top reversed already? up accumulated by consing the
     deeper node first, so it is top-to-bottom; rebuild explicitly. *)
  (List.rev !up, !a, !down)

let tree_distance t u v =
  if u = v then Rat.zero
  else begin
    let up, _lca, down = tree_path t u v in
    let weight_of i = t.nodes.(i).weight in
    Rat.add
      (Rat.sum (List.map weight_of up))
      (Rat.sum (List.map weight_of down))
  end

let dominates t g =
  let n = Graph.n_vertices g in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      match Graph.distance g u v with
      | Extended.Inf -> ok := false
      | Extended.Fin duv ->
        if Rat.( < ) (tree_distance t u v) duv then ok := false
    done
  done;
  !ok

let center_path t u v =
  if u = v then [ u ]
  else begin
    let up, lca, down = tree_path t u v in
    let centers =
      List.map (fun i -> t.nodes.(i).center) up
      @ [ t.nodes.(lca).center ]
      @ List.map (fun i -> t.nodes.(i).center) down
    in
    (* Deduplicate consecutive repeats. *)
    let rec dedup = function
      | a :: b :: rest when a = b -> dedup (b :: rest)
      | a :: rest -> a :: dedup rest
      | [] -> []
    in
    dedup centers
  end

let expand_pair t g u v =
  let centers = center_path t u v in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  let edges =
    List.concat_map
      (fun (a, b) ->
        match Graph.shortest_path g a b with
        | Some ids -> ids
        | None -> invalid_arg "Frt.expand_pair: disconnected graph")
      (pairs centers)
  in
  List.sort_uniq Stdlib.compare edges

let stretch t g u v =
  if u = v then None
  else
    match Graph.distance g u v with
    | Extended.Inf -> None
    | Extended.Fin duv ->
      if Rat.is_zero duv then None else Some (Rat.div (tree_distance t u v) duv)

let average_stretch t g =
  let n = Graph.n_vertices g in
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      match stretch t g u v with
      | Some s -> acc := s :: !acc
      | None -> ()
    done
  done;
  match !acc with [] -> Rat.zero | xs -> Rat.average xs

(** The diamond-graph adversary for online Steiner tree.

    Imase and Waxman's lower bound (generalized to a distribution, as
    the paper's Lemma 3.5 requires against randomized algorithms /
    arbitrary strategy profiles) lives on the level-[j] diamond graph:
    starting from a single unit edge between the poles, every level
    replaces each edge of cost [c] by two parallel two-edge paths of
    cost [c/2] each.

    The adversarial request distribution reveals, level by level, one
    uniformly chosen midpoint of every edge of the current {e active
    path}; the active path then refines through the chosen midpoints.
    All requests end up on a single pole-to-pole path of cost exactly 1,
    so the offline optimum is always 1, while any online algorithm pays
    [Omega(levels)] in expectation. *)

open Bi_num

type t

val build : int -> t
(** [build levels]. @raise Invalid_argument on negative levels. *)

val graph : t -> Bi_graph.Graph.t
val root : t -> int
(** The pole from which terminals must be connected (vertex 0). *)

val pole : t -> int
(** The opposite pole (vertex 1), always the first request. *)

val levels : t -> int

val request_distribution : t -> int list Bi_prob.Dist.t
(** The exact adversarial distribution over request sequences.  Its
    support has size [2^(2^levels - 1)]; guarded to [levels <= 3].
    @raise Invalid_argument beyond the guard. *)

val sample_requests : Random.State.t -> t -> int list

val offline_opt_is_one : t -> int list -> bool
(** Every sequence in the support has offline optimum exactly 1; this
    verifies it for a given sequence. *)

val expected_cost : t -> Online.algorithm -> Rat.t
(** Exact expected algorithm cost over {!request_distribution}. *)

val mean_cost : Random.State.t -> samples:int -> t -> Online.algorithm -> float
(** Monte-Carlo estimate, usable at any level. *)

open Bi_num
module Graph = Bi_graph.Graph
module Dist = Bi_prob.Dist

(* Conceptual edge of the recursive construction: a level-[l] edge either
   is a graph edge (finest level) or splits through two midpoints. *)
type cedge = {
  u : int;
  v : int;
  kids : ((int * cedge * cedge) * (int * cedge * cedge)) option;
}

type t = {
  graph : Graph.t;
  top_edge : cedge;
  levels : int;
}

let build levels =
  if levels < 0 then invalid_arg "Diamond.build: negative level count";
  let next = ref 2 in
  let fresh () = let v = !next in incr next; v in
  let graph_edges = ref [] in
  let leaf_cost = Rat.pow (Rat.of_ints 1 2) levels in
  let rec subdivide u v level =
    if level = levels then begin
      graph_edges := (u, v, leaf_cost) :: !graph_edges;
      { u; v; kids = None }
    end
    else begin
      let m1 = fresh () and m2 = fresh () in
      let top = (m1, subdivide u m1 (level + 1), subdivide m1 v (level + 1)) in
      let bot = (m2, subdivide u m2 (level + 1), subdivide m2 v (level + 1)) in
      { u; v; kids = Some (top, bot) }
    end
  in
  let top_edge = subdivide 0 1 0 in
  { graph = Graph.make Undirected ~n:!next !graph_edges; top_edge; levels }

let graph t = t.graph
let root _ = 0
let pole _ = 1
let levels t = t.levels

(* Enumerate the adversary's phases over an active path of conceptual
   edges: each phase picks one midpoint per active edge. *)
let request_distribution t =
  if t.levels > 3 then
    invalid_arg "Diamond.request_distribution: support too large, use sampling";
  let half = Rat.of_ints 1 2 in
  let choice e =
    match e.kids with
    | None -> assert false
    | Some (top, bot) -> Dist.weighted_pair half top bot
  in
  let rec phases active =
    match active with
    | [] -> Dist.point []
    | e :: _ when e.kids = None -> Dist.point []
    | _ ->
      let choices = Dist.product_list (List.map choice active) in
      Dist.bind choices (fun picked ->
          let requests = List.map (fun (m, _, _) -> m) picked in
          let next_active = List.concat_map (fun (_, e1, e2) -> [ e1; e2 ]) picked in
          Dist.map (fun rest -> requests @ rest) (phases next_active))
  in
  Dist.map (fun rest -> 1 :: rest) (phases [ t.top_edge ])

let sample_requests rng t =
  let rec phases active =
    match active with
    | [] -> []
    | e :: _ when e.kids = None -> []
    | _ ->
      let picked =
        List.map
          (fun e ->
            match e.kids with
            | None -> assert false
            | Some (top, bot) -> if Random.State.bool rng then top else bot)
          active
      in
      let requests = List.map (fun (m, _, _) -> m) picked in
      let next_active = List.concat_map (fun (_, e1, e2) -> [ e1; e2 ]) picked in
      requests @ phases next_active
  in
  1 :: phases [ t.top_edge ]

let offline_opt_is_one t sigma =
  Extended.equal Extended.one (Online.offline_opt t.graph ~root:0 sigma)

let expected_cost t alg =
  Dist.expectation
    (fun sigma -> Online.cost_of_run t.graph (alg.Online.run t.graph ~root:0 sigma))
    (request_distribution t)

let mean_cost rng ~samples t alg =
  let total = ref 0.0 in
  for _ = 1 to samples do
    let sigma = sample_requests rng t in
    total :=
      !total
      +. Rat.to_float (Online.cost_of_run t.graph (alg.Online.run t.graph ~root:0 sigma))
  done;
  !total /. float_of_int samples

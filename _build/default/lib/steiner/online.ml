open Bi_num
module Graph = Bi_graph.Graph

type algorithm = {
  name : string;
  run : Graph.t -> root:int -> int list -> int list list;
}

let greedy =
  let run g ~root sigma =
    let uf = Bi_ds.Union_find.create (Graph.n_vertices g) in
    let buy_step v =
      if Bi_ds.Union_find.same uf root v then []
      else begin
        (* Cheapest path from v to the component of the root. *)
        let dist, pred = Graph.dijkstra g v in
        let best = ref None in
        for u = 0 to Graph.n_vertices g - 1 do
          if Bi_ds.Union_find.same uf root u then begin
            match !best with
            | None -> best := Some u
            | Some b -> if Extended.( < ) dist.(u) dist.(b) then best := Some u
          end
        done;
        match !best with
        | None -> invalid_arg "Online.greedy: disconnected terminal"
        | Some target ->
          (match dist.(target) with
           | Extended.Inf -> invalid_arg "Online.greedy: disconnected terminal"
           | Extended.Fin _ ->
             (* Walk predecessors from target back to v, merging as we go. *)
             let rec walk u acc =
               if u = v then acc
               else
                 match pred.(u) with
                 | None -> acc
                 | Some id ->
                   let e = Graph.edge g id in
                   let prev = Graph.other_endpoint g e u in
                   ignore (Bi_ds.Union_find.union uf e.Graph.src e.Graph.dst);
                   walk prev (id :: acc)
             in
             walk target [])
      end
    in
    List.map buy_step sigma
  in
  { name = "greedy"; run }

let oblivious_shortest_path =
  let run g ~root sigma =
    List.map
      (fun v ->
        match Graph.shortest_path g root v with
        | Some ids -> ids
        | None -> invalid_arg "Online.oblivious_shortest_path: disconnected terminal")
      sigma
  in
  { name = "oblivious-shortest-path"; run }

let cost_of_run g purchases = Graph.total_cost g (List.concat purchases)

let is_valid_run g ~root sigma purchases =
  List.length sigma = List.length purchases
  && begin
    let rec go bought sigma purchases =
      match sigma, purchases with
      | [], [] -> true
      | v :: sigma', step :: purchases' ->
        let bought = step @ bought in
        Graph.is_path_between g bought root v && go bought sigma' purchases'
      | _ -> false
    in
    go [] sigma purchases
  end

let offline_opt g ~root sigma =
  Bi_graph.Steiner_dp.steiner_cost g ~root ~terminals:sigma

let competitive_ratio g ~root sigmas alg =
  let ratios =
    List.map
      (fun sigma ->
        match offline_opt g ~root sigma with
        | Extended.Inf -> None
        | Extended.Fin opt ->
          if Rat.is_zero opt then None
          else begin
            let cost = cost_of_run g (alg.run g ~root sigma) in
            Some (Rat.div cost opt)
          end)
      sigmas
  in
  if List.exists (fun r -> r = None) ratios || ratios = [] then None
  else Some (Rat.average (List.filter_map Fun.id ratios))

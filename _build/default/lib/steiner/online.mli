(** The online Steiner tree problem (Imase–Waxman), the substrate of the
    paper's Lemma 3.5.

    An instance is an undirected graph with a root; terminals arrive one
    by one and the algorithm must immediately buy edges connecting each
    new terminal to the root.  Bought edges stay bought.  The
    competitive ratio compares the total purchase against the optimal
    (offline) Steiner tree of the whole request set. *)

open Bi_num

type algorithm = {
  name : string;
  run : Bi_graph.Graph.t -> root:int -> int list -> int list list;
      (** [run g ~root sigma] returns, per request, the edge ids bought
          at that step.  The cumulative purchase after step [i] must
          connect each of the first [i] requests to [root]. *)
}

val greedy : algorithm
(** Connects each new terminal by a shortest path to the already-bought
    component of the root — the classical O(log n)-competitive greedy. *)

val oblivious_shortest_path : algorithm
(** Buys a shortest root-terminal path for each request independently,
    ignoring what is already bought.  This is exactly what a strategy
    profile of the Lemma 3.5 Bayesian NCS game does: each agent's
    purchase depends only on her own type. *)

val cost_of_run : Bi_graph.Graph.t -> int list list -> Rat.t
(** Total cost of the union of all purchased edges. *)

val is_valid_run : Bi_graph.Graph.t -> root:int -> int list -> int list list -> bool
(** Checks the online constraint: one purchase list per request, and
    after each step the prefix union connects that step's terminal to
    the root. *)

val offline_opt : Bi_graph.Graph.t -> root:int -> int list -> Extended.t
(** Cost of a minimum Steiner tree spanning root and all requests
    (exact, via the subset DP). *)

val competitive_ratio :
  Bi_graph.Graph.t -> root:int -> int list list -> algorithm -> Rat.t option
(** Average of [ALG(sigma)/OPT(sigma)] over the given request sequences;
    [None] if some sequence is unreachable or has zero OPT. *)

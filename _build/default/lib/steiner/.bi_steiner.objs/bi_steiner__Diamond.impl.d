lib/steiner/diamond.ml: Bi_graph Bi_num Bi_prob Extended List Online Random Rat

lib/steiner/online.ml: Array Bi_ds Bi_graph Bi_num Extended Fun List Rat

lib/steiner/diamond.mli: Bi_graph Bi_num Bi_prob Online Random Rat

lib/steiner/online.mli: Bi_graph Bi_num Extended Rat

(** Finite affine planes of prime order, the incidence geometry behind
    the paper's Lemma 3.2.

    [AG(2, p)] has [p^2] points (pairs over [GF(p)]) and [p^2 + p]
    lines; it satisfies the four properties the lemma uses:
    every line has [p] points, every point lies on [p + 1] lines, two
    distinct points share exactly one line, and two distinct lines meet
    in at most one point.

    Substitution note (see DESIGN.md): the paper allows prime {e powers};
    we restrict to primes, which suffices for infinitely many orders and
    avoids general finite-field towers. *)

type t

val make : int -> t
(** [make p] for a prime [p]. @raise Invalid_argument otherwise. *)

val order : t -> int
val n_points : t -> int
(** [p^2]. *)

val n_lines : t -> int
(** [p^2 + p]. *)

val points_of_line : t -> int -> int list
(** The [p] points of a line, by index. *)

val lines_through : t -> int -> int list
(** The [p + 1] lines through a point. *)

val on_line : t -> point:int -> line:int -> bool

val common_line : t -> int -> int -> int option
(** The unique line through two distinct points; [None] if equal. *)

val check_axioms : t -> bool
(** Verifies the four incidence properties exhaustively. *)

open Bi_num
module Graph = Bi_graph.Graph
module Dist = Bi_prob.Dist

let source_vertex = 0
let line_vertex _plane l = 1 + l
let point_vertex plane p = 1 + Affine_plane.n_lines plane + p

let graph plane =
  let n = 1 + Affine_plane.n_lines plane + Affine_plane.n_points plane in
  let line_edges =
    List.init (Affine_plane.n_lines plane) (fun l ->
        (source_vertex, line_vertex plane l, Rat.one))
  in
  let incidence_edges =
    List.concat_map
      (fun l ->
        List.map
          (fun p -> (line_vertex plane l, point_vertex plane p, Rat.zero))
          (Affine_plane.points_of_line plane l))
      (Bi_ds.Combinat.range (Affine_plane.n_lines plane))
  in
  Graph.make Directed ~n (line_edges @ incidence_edges)

let agents m = m + 1

let game m =
  if m > 3 then invalid_arg "Affine_game.game: order too large for exact measures";
  let plane = Affine_plane.make m in
  let g = graph plane in
  let type_profiles =
    (* One per (line, permutation of [m]). *)
    List.concat_map
      (fun l ->
        let pts = Array.of_list (Affine_plane.points_of_line plane l) in
        List.of_seq
          (Seq.map
             (fun perm ->
               let perm = Array.of_list perm in
               Array.init (m + 1) (fun i ->
                   if i < m then (source_vertex, point_vertex plane pts.(perm.(i)))
                   else (source_vertex, line_vertex plane l)))
             (Bi_ds.Combinat.permutations (Bi_ds.Combinat.range m))))
      (Bi_ds.Combinat.range (Affine_plane.n_lines plane))
  in
  Bi_ncs.Bayesian_ncs.make g ~prior:(Dist.uniform type_profiles)

let predicted_social_cost m =
  Rat.add Rat.one (Rat.of_ints (m * m) (m + 1))

let predicted_opt_c = Rat.one

let predicted_ratio m = predicted_social_cost m

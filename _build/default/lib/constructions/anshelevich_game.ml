open Bi_num
module Graph = Bi_graph.Graph
module Dist = Bi_prob.Dist

let x_vertex = 0
let z_vertex = 1
let y_vertex i = 1 + i

let graph k eps =
  if k < 2 then invalid_arg "Anshelevich_game.graph: need k >= 2";
  let direct =
    List.init (k - 1) (fun j ->
        let i = j + 1 in
        (x_vertex, y_vertex i, Rat.of_ints 1 i))
  in
  let via_z =
    (x_vertex, z_vertex, Rat.add Rat.one eps)
    :: List.init (k - 1) (fun j -> (z_vertex, y_vertex (j + 1), Rat.zero))
  in
  Graph.make Directed ~n:(k + 1) (direct @ via_z)

let default_eps k = Rat.of_ints 1 (2 * k * k)

let game ?eps k =
  let eps = match eps with Some e -> e | None -> default_eps k in
  let g = graph k eps in
  let fixed = Array.init (k - 1) (fun j -> (x_vertex, y_vertex (j + 1))) in
  let with_last last = Array.append fixed [| last |] in
  Bi_ncs.Bayesian_ncs.make g
    ~prior:
      (Dist.weighted_pair (Rat.of_ints 1 2)
         (with_last (x_vertex, z_vertex))
         (with_last (x_vertex, x_vertex)))

let predicted_worst_eq_p ?eps k =
  let eps = match eps with Some e -> e | None -> default_eps k in
  Rat.add Rat.one eps

let predicted_best_eq_c_lower k = Rat.div_int (Rat.harmonic (k - 1)) 2

let predicted_best_eq_c ?eps k =
  let eps = match eps with Some e -> e | None -> default_eps k in
  Rat.div_int (Rat.add (Rat.harmonic (k - 1)) (Rat.add Rat.one eps)) 2

let predicted_ratio ?eps k =
  Rat.div (predicted_worst_eq_p ?eps k) (predicted_best_eq_c ?eps k)

(* Float companions for large-k sweeps: exact harmonic numbers have
   hundreds-of-digits numerators past k ~ 100, which benches do not
   need. *)
let harmonic_float n =
  let rec go acc i = if i > n then acc else go (acc +. (1.0 /. float_of_int i)) (i + 1) in
  go 0.0 1

let eps_float k = 1.0 /. float_of_int (2 * k * k)

let predicted_worst_eq_p_float k = 1.0 +. eps_float k

let predicted_best_eq_c_float k =
  (harmonic_float (k - 1) +. 1.0 +. eps_float k) /. 2.0

let predicted_ratio_float k =
  predicted_worst_eq_p_float k /. predicted_best_eq_c_float k

(** The Fig. 1 / Lemma 3.3 construction: "ignorance is bliss".

    The directed graph [G_k] of Anshelevich et al.: common source [x];
    edge [x -> y_i] of cost [1/i] for [i = 1..k-1]; edge [x -> z] of
    cost [1 + eps]; free edges [z -> y_i].  Agents [1..k-1]
    deterministically travel [x -> y_i]; agent [k] travels to [z] with
    probability 1/2 and stays at [x] otherwise.

    In the Bayesian game the only equilibrium routes everybody through
    [z] (social cost [1 + eps]), because the 1/2 chance that agent [k]
    already pays toward [x -> z] seduces agent 1, then agent 2, and so
    on.  But when agent [k] turns out absent, the underlying game's only
    equilibrium is the direct edges, of cost [H(k-1)] — so
    [worst-eqP / best-eqC = O(1 / log k)]: every equilibrium under
    ignorance beats every equilibrium under global views. *)

open Bi_num

val graph : int -> Rat.t -> Bi_graph.Graph.t
(** [graph k eps] is [G_k] (vertices: [x = 0], [z = 1], [y_i = 1 + i]). *)

val default_eps : int -> Rat.t
(** [1 / (2k^2)] — comfortably inside every strict-preference window
    used in the lemma's induction. *)

val game : ?eps:Rat.t -> int -> Bi_ncs.Bayesian_ncs.t
(** [game k] for [k >= 2]. @raise Invalid_argument otherwise. *)

val predicted_worst_eq_p : ?eps:Rat.t -> int -> Rat.t
(** [1 + eps]: the unique Bayesian equilibrium's social cost. *)

val predicted_best_eq_c_lower : int -> Rat.t
(** [H(k-1) / 2]: the lower bound the lemma states, contributed by the
    agent-[k]-absent underlying game alone. *)

val predicted_best_eq_c : ?eps:Rat.t -> int -> Rat.t
(** The exact value [1/2 H(k-1) + 1/2 (1 + eps)]: when agent [k] is
    absent the unique equilibrium is the direct edges ([H(k-1)]); when
    she is present the best equilibrium routes everyone through [z]
    ([1 + eps]).  Lets benches sweep far beyond exhaustive range. *)

val predicted_ratio : ?eps:Rat.t -> int -> Rat.t
(** [predicted_worst_eq_p / predicted_best_eq_c = O(1/log k)]. *)

val harmonic_float : int -> float
(** Float harmonic number, for large-[k] sweeps where exact rationals
    (hundreds of digits past [k ~ 100]) would dominate the runtime. *)

val predicted_worst_eq_p_float : int -> float
val predicted_best_eq_c_float : int -> float
val predicted_ratio_float : int -> float

(** The Lemma 3.5 reduction: from the online-Steiner-tree adversary on
    the diamond graph to a Bayesian NCS game with
    [optP / optC = Omega(log n)] on undirected graphs.

    Agents are request positions of the {!Bi_steiner.Diamond} adversary;
    agent [i]'s type is (her request vertex, the root).  A strategy
    profile is exactly an {e oblivious} online Steiner algorithm — each
    purchase depends only on the agent's own terminal — so
    [K(s) = E[ALG_s(sigma)]] while [optC = E[OPT(sigma)] = 1].  The
    lemma's lower bound on online algorithms therefore lower-bounds
    [optP].

    Exact game construction is kept to small levels (the strategy space
    explodes); the full logarithmic growth is demonstrated directly on
    the adversary by the bench (greedy and oblivious algorithms over a
    level sweep). *)

open Bi_num

val game : int -> Bi_steiner.Diamond.t * Bi_ncs.Bayesian_ncs.t
(** [game levels] for [0 <= levels <= 2] (the level-3 game already has
    an astronomically large strategy space).
    @raise Invalid_argument outside the guard. *)

val agents : int -> int
(** [2^levels] agents. *)

val predicted_opt_c : Rat.t
(** Exactly 1: every request sequence lies on a pole-to-pole path of
    cost 1. *)

val oblivious_profile_cost : Bi_steiner.Diamond.t -> Rat.t
(** [E[ALG(sigma)]] of the oblivious shortest-path algorithm — the
    social cost of the corresponding strategy profile, computed on the
    adversary directly (no game lowering needed), usable at any level
    [<= 3]. *)

val greedy_cost : Bi_steiner.Diamond.t -> Rat.t
(** [E[ALG(sigma)]] of greedy — a lower-bound {e witness} for how well
    adaptive online algorithms do; strategy profiles cannot beat the
    online lower bound either. *)

(** The Lemma 3.2 construction: a [k]-agent Bayesian NCS game on a
    directed [Theta(k^2)]-vertex graph with [optP / worst-eqC = Omega(k)].

    Built from the affine plane of prime order [m] (so [k = m + 1]):
    a source [u], a vertex [v_l] per line (edge [u -> v_l] of cost 1)
    and a vertex [w_p] per point (free edges [v_l -> w_p] for [p] on
    [l]).  Nature draws a line [l] and a permutation [pi] uniformly;
    agent [i <= m] travels to the [pi(i)]-th point of [l], agent [k]
    to [v_l].

    The punchline (reproduced exactly by this module): conditioned on
    her destination point, an agent sees the line as uniform among the
    [m + 1] lines through it, so {e every} strategy profile has the same
    social cost [1 + m^2/(m+1) = Theta(k)], while each underlying game
    has a unique Nash equilibrium of cost 1 (everybody rides the right
    line). *)

open Bi_num

val graph : Affine_plane.t -> Bi_graph.Graph.t
(** The directed incidence graph described above. *)

val source_vertex : int
val line_vertex : Affine_plane.t -> int -> int
val point_vertex : Affine_plane.t -> int -> int

val game : int -> Bi_ncs.Bayesian_ncs.t
(** [game m] for prime [m].  The prior support has size
    [(m^2 + m) * m!]; guarded to [m <= 3] (at [m = 5] that is already
    3600 type profiles).
    @raise Invalid_argument on non-prime or too-large [m]. *)

val agents : int -> int
(** [k = m + 1]. *)

val predicted_social_cost : int -> Rat.t
(** [1 + m^2/(m+1)] — the social cost of {e every} strategy profile. *)

val predicted_opt_c : Rat.t
(** 1: every underlying game is optimized (and equilibrated) by routing
    everyone through the realized line. *)

val predicted_ratio : int -> Rat.t
(** [predicted_social_cost m / 1 = Theta(k)]. *)

lib/constructions/gworst_game.ml: Array Bi_graph Bi_ncs Bi_num Bi_prob Rat

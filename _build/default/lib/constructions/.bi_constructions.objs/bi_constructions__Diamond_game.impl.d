lib/constructions/diamond_game.ml: Array Bi_ncs Bi_num Bi_prob Bi_steiner List Rat

lib/constructions/affine_plane.ml: Array List

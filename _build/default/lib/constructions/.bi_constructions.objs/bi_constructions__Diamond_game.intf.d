lib/constructions/diamond_game.mli: Bi_ncs Bi_num Bi_steiner Rat

lib/constructions/affine_plane.mli:

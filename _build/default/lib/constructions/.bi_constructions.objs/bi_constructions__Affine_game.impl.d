lib/constructions/affine_game.ml: Affine_plane Array Bi_ds Bi_graph Bi_ncs Bi_num Bi_prob List Rat Seq

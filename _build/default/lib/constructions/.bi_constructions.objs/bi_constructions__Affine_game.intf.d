lib/constructions/affine_game.mli: Affine_plane Bi_graph Bi_ncs Bi_num Rat

lib/constructions/anshelevich_game.mli: Bi_graph Bi_ncs Bi_num Rat

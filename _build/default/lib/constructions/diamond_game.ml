open Bi_num
module Dist = Bi_prob.Dist
module Diamond = Bi_steiner.Diamond
module Online = Bi_steiner.Online

let agents levels = 1 lsl levels

let game levels =
  if levels < 0 || levels > 2 then
    invalid_arg "Diamond_game.game: levels must be within [0, 2]";
  let d = Diamond.build levels in
  let root = Diamond.root d in
  let k = agents levels in
  let prior =
    Dist.map
      (fun sigma ->
        let arr = Array.make k (root, root) in
        List.iteri (fun i v -> if i < k then arr.(i) <- (v, root)) sigma;
        arr)
      (Diamond.request_distribution d)
  in
  (d, Bi_ncs.Bayesian_ncs.make (Diamond.graph d) ~prior)

let predicted_opt_c = Rat.one

let expected_alg_cost d alg = Diamond.expected_cost d alg

let oblivious_profile_cost d = expected_alg_cost d Online.oblivious_shortest_path
let greedy_cost d = expected_alg_cost d Online.greedy

open Bi_num
module Graph = Bi_graph.Graph
module Dist = Bi_prob.Dist

let u_vertex = 0
let v_vertex = 1
let w_vertex = 2

let graph ?(directed = false) k eps =
  if directed then
    (* The "trivial modification" the paper mentions: orient the routes
       agents actually use (u->v->w, u->w, w->v). *)
    Graph.make Directed ~n:3
      [
        (u_vertex, v_vertex, Rat.of_int (k + 1));
        (v_vertex, w_vertex, Rat.one);
        (u_vertex, w_vertex, Rat.add Rat.one eps);
        (w_vertex, v_vertex, Rat.one);
      ]
  else
    Graph.make Undirected ~n:3
      [
        (u_vertex, v_vertex, Rat.of_int (k + 1));
        (v_vertex, w_vertex, Rat.one);
        (u_vertex, w_vertex, Rat.add Rat.one eps);
      ]

let bliss_eps k = Rat.of_ints 5 (4 * k)
let curse_eps k = Rat.sub (Rat.of_ints 2 k) (Rat.of_ints 1 (2 * k * k))

let make_game ?directed k eps presence =
  if k < 2 then invalid_arg "Gworst_game: need k >= 2";
  let g = graph ?directed k eps in
  let fixed = Array.make k (u_vertex, w_vertex) in
  let with_last last = Array.append fixed [| last |] in
  Bi_ncs.Bayesian_ncs.make g
    ~prior:
      (Dist.weighted_pair presence
         (with_last (u_vertex, v_vertex))
         (with_last (u_vertex, u_vertex)))

let bliss_game ?directed k = make_game ?directed k (bliss_eps k) (Rat.of_ints 1 2)
let curse_game ?directed k = make_game ?directed k (curse_eps k) (Rat.of_ints 1 k)

let predicted_bliss_worst_eq_p k =
  Rat.add (Rat.add Rat.one (bliss_eps k)) (Rat.of_ints 1 2)

let predicted_bliss_worst_eq_c_lower k = Rat.of_ints (k + 2) 2

let predicted_curse_worst_eq_p k = Rat.of_int (k + 2)

let predicted_curse_worst_eq_c_upper k =
  let eps = curse_eps k in
  let absent = Rat.mul (Rat.of_ints (k - 1) k) (Rat.add Rat.one eps) in
  let present = Rat.div_int (Rat.add (Rat.of_int (k + 3)) eps) k in
  Rat.add absent present

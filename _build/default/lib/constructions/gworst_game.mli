(** The Fig. 2 / Lemmas 3.6–3.7 constructions on the three-vertex graph
    [G_worst]: edge [u-v] of cost [k+1], edge [v-w] of cost 1, and edge
    [u-w] of cost [1 + eps].  Agents [1..k] travel [u -> w]; agent
    [k+1] travels [u -> v] with some probability and stays at [u]
    otherwise.

    Two parameter windows give the two extreme existential bounds of
    Table 1's worst-equilibrium row on O(1)-vertex graphs:

    - {b bliss} (presence probability 1/2, [1/k < eps < 3/(2k)]):
      the unique Bayesian equilibrium keeps everyone on the direct
      [u-w] edge ([K = 1 + eps + 1/2]), while the underlying game with
      agent [k+1] present has a Nash equilibrium where agents pile on
      the expensive [u-v-w] route ([K_t = k+2]); so
      [worst-eqP / worst-eqC = O(1/k)].

    - {b curse} (presence probability 1/k, [2/k - 1/k^2 < eps < 2/k]):
      piling on [u-v-w] {e is} a Bayesian equilibrium ([K = k+2]),
      while the (probability [1-1/k]) absent underlying game's unique
      equilibrium is the direct edge ([K_t = 1 + eps]); so
      [worst-eqP / worst-eqC = Omega(k)].

    (In the paper's numbering, Lemma 3.6 exhibits the [Omega(k)] bound
    and Lemma 3.7 the [O(1/k)] bound; the proof of 3.6 computes the
    bliss-window quantities and the proof of 3.7 the curse-window ones,
    i.e. the lemma statements pair with each other's proofs.  We expose
    both windows under behavior-describing names and verify the computed
    quantities, which is what Table 1 needs.) *)

open Bi_num

val graph : ?directed:bool -> int -> Rat.t -> Bi_graph.Graph.t
(** [graph k eps]; vertices [u = 0], [v = 1], [w = 2].  With
    [~directed:true], the paper's "trivial modification" for the
    directed rows of Table 1: routes are oriented [u->v->w], [u->w],
    [w->v]. *)

val bliss_eps : int -> Rat.t
(** [5/(4k)], inside [(1/k, 3/(2k))]. *)

val curse_eps : int -> Rat.t
(** [2/k - 1/(2k^2)], inside [(2/k - 1/k^2, 2/k)]. *)

val bliss_game : ?directed:bool -> int -> Bi_ncs.Bayesian_ncs.t
(** [bliss_game k] has [k + 1] agents. @raise Invalid_argument for [k < 2]. *)

val curse_game : ?directed:bool -> int -> Bi_ncs.Bayesian_ncs.t

val predicted_bliss_worst_eq_p : int -> Rat.t
(** [1 + eps + 1/2]. *)

val predicted_bliss_worst_eq_c_lower : int -> Rat.t
(** [(k+2)/2]. *)

val predicted_curse_worst_eq_p : int -> Rat.t
(** [k + 2]. *)

val predicted_curse_worst_eq_c_upper : int -> Rat.t
(** [(1 - 1/k)(1 + eps) + (k + 3 + eps)/k = O(1)]. *)

type t = {
  p : int;
  line_points : int list array; (* line -> points *)
  point_lines : int list array; (* point -> lines *)
}

let is_prime n =
  n >= 2
  && begin
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
    go 2
  end

(* Points are (x, y) in GF(p)^2, encoded as x*p + y.  Lines: for slope
   a and intercept b, { (x, ax + b) : x }, encoded as a*p + b; vertical
   lines { (c, y) : y } are encoded as p^2 + c. *)
let make p =
  if not (is_prime p) then invalid_arg "Affine_plane.make: order must be prime";
  let n_lines = (p * p) + p in
  let line_points = Array.make n_lines [] in
  for a = 0 to p - 1 do
    for b = 0 to p - 1 do
      line_points.((a * p) + b) <-
        List.init p (fun x -> (x * p) + (((a * x) + b) mod p))
    done
  done;
  for c = 0 to p - 1 do
    line_points.((p * p) + c) <- List.init p (fun y -> (c * p) + y)
  done;
  let point_lines = Array.make (p * p) [] in
  Array.iteri
    (fun line pts ->
      List.iter (fun pt -> point_lines.(pt) <- line :: point_lines.(pt)) pts)
    line_points;
  Array.iteri (fun pt lines -> point_lines.(pt) <- List.rev lines) point_lines;
  { p; line_points; point_lines }

let order t = t.p
let n_points t = t.p * t.p
let n_lines t = (t.p * t.p) + t.p
let points_of_line t l = t.line_points.(l)
let lines_through t pt = t.point_lines.(pt)
let on_line t ~point ~line = List.mem point t.line_points.(line)

let common_line t p1 p2 =
  if p1 = p2 then None
  else
    List.find_opt (fun l -> List.mem l t.point_lines.(p2)) t.point_lines.(p1)

let check_axioms t =
  let p = t.p in
  let lines_ok =
    Array.for_all (fun pts -> List.length pts = p) t.line_points
  in
  let points_ok =
    Array.for_all (fun ls -> List.length ls = p + 1) t.point_lines
  in
  let unique_joins = ref true in
  for p1 = 0 to n_points t - 1 do
    for p2 = p1 + 1 to n_points t - 1 do
      let shared =
        List.filter (fun l -> List.mem l t.point_lines.(p2)) t.point_lines.(p1)
      in
      if List.length shared <> 1 then unique_joins := false
    done
  done;
  let small_meets = ref true in
  for l1 = 0 to n_lines t - 1 do
    for l2 = l1 + 1 to n_lines t - 1 do
      let shared =
        List.filter (fun pt -> List.mem pt t.line_points.(l2)) t.line_points.(l1)
      in
      if List.length shared > 1 then small_meets := false
    done
  done;
  lines_ok && points_ok && !unique_joins && !small_meets

(** Disjoint-set forest with union by rank and path compression. *)

type t

val create : int -> t
(** [create n] has elements [0 .. n-1], each in its own set. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> bool
(** Merges the two sets; [false] when already merged. *)

val same : t -> int -> int -> bool
val count : t -> int
(** Number of disjoint sets. *)

val size_of : t -> int -> int
(** Size of the set containing the element. *)

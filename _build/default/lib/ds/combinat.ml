let rec product = function
  | [] -> Seq.return []
  | xs :: rest ->
    let tails = product rest in
    Seq.concat_map (fun x -> Seq.map (fun tl -> x :: tl) tails) (List.to_seq xs)

let product_arrays arrays =
  let lists = Array.to_list (Array.map Array.to_list arrays) in
  Seq.map Array.of_list (product lists)

let functions ~dom codom =
  product_arrays (Array.make dom codom)

let subsets xs =
  let xs = Array.of_list xs in
  let n = Array.length xs in
  if n > 30 then invalid_arg "Combinat.subsets: set too large";
  let pick mask =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then acc := xs.(i) :: !acc
    done;
    !acc
  in
  Seq.map pick (Seq.init (1 lsl n) Fun.id)

let rec combinations xs k =
  if k = 0 then Seq.return []
  else
    match xs with
    | [] -> Seq.empty
    | x :: rest ->
      Seq.append
        (Seq.map (fun tl -> x :: tl) (combinations rest (k - 1)))
        (fun () -> combinations rest k ())

let permutations xs =
  (* Recurse on positions rather than values so that duplicate elements
     are handled correctly. *)
  let arr = Array.of_list xs in
  let rec go remaining =
    match remaining with
    | [] -> Seq.return []
    | _ ->
      Seq.concat_map
        (fun i ->
          let rest = List.filter (fun j -> j <> i) remaining in
          Seq.map (fun tl -> arr.(i) :: tl) (go rest))
        (List.to_seq remaining)
  in
  go (List.init (Array.length arr) Fun.id)

let argbest better f ~cmp seq =
  Seq.fold_left
    (fun best x ->
      let v = f x in
      match best with
      | None -> Some (x, v)
      | Some (_, bv) -> if better (cmp v bv) then Some (x, v) else best)
    None seq

let argmin f ~cmp seq = argbest (fun c -> c < 0) f ~cmp seq
let argmax f ~cmp seq = argbest (fun c -> c > 0) f ~cmp seq

let range n = List.init n Fun.id

let sum_by f xs = List.fold_left (fun acc x -> acc + f x) 0 xs

(** Imperative binary min-heap with a caller-supplied priority order.

    Used as the frontier of Dijkstra's algorithm; duplicate insertions of
    the same element with improved priorities are the intended usage
    (lazy deletion), so [pop_min] may return stale entries that callers
    filter out. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> 'a -> unit

val peek_min : 'a t -> 'a option
val pop_min : 'a t -> 'a option

val pop_min_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val to_sorted_list : 'a t -> 'a list
(** Drains the heap; the heap is empty afterwards. *)

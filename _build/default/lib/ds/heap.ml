type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }

let is_empty h = h.size = 0
let size h = h.size

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.size && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  if h.size = Array.length h.data then begin
    let cap = Stdlib.max 8 (2 * h.size) in
    let data = Array.make cap x in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek_min h = if h.size = 0 then None else Some h.data.(0)

let pop_min h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let pop_min_exn h =
  match pop_min h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_min_exn: empty heap"

let of_list ~cmp xs =
  let h = create ~cmp in
  List.iter (push h) xs;
  h

let to_sorted_list h =
  let rec go acc = match pop_min h with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

(** Combinatorial enumeration helpers shared by the game solvers.

    The equilibrium computations enumerate action/strategy profiles
    exhaustively, so products and function spaces over small finite sets
    are the workhorses here.  Enumerations are returned as [Seq.t] to
    keep memory flat while scanning astronomically-shaped spaces whose
    search is cut short. *)

val product : 'a list list -> 'a list Seq.t
(** Cartesian product; [product [xs1; ...; xsk]] enumerates all
    [[x1; ...; xk]] with [xi] drawn from [xsi], in lexicographic order. *)

val product_arrays : 'a array array -> 'a array Seq.t
(** Same over arrays: each emitted array is fresh. *)

val functions : dom:int -> 'a array -> 'a array Seq.t
(** [functions ~dom codom] enumerates all maps [0..dom-1 -> codom],
    represented as arrays of length [dom]. *)

val subsets : 'a list -> 'a list Seq.t
(** All sublists, in mask order ([2^n] of them). *)

val combinations : 'a list -> int -> 'a list Seq.t
(** All size-[k] sublists. *)

val permutations : 'a list -> 'a list Seq.t
(** All permutations (use only on short lists). *)

val argmin : ('a -> 'b) -> cmp:('b -> 'b -> int) -> 'a Seq.t -> ('a * 'b) option
val argmax : ('a -> 'b) -> cmp:('b -> 'b -> int) -> 'a Seq.t -> ('a * 'b) option

val range : int -> int list
(** [range n] is [[0; 1; ...; n-1]]. *)

val sum_by : ('a -> int) -> 'a list -> int

(** Fixed-capacity bitsets, used to index vertex subsets in the
    Dreyfus–Wagner Steiner-tree dynamic program and in path-enumeration
    visited masks. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0 .. n-1]. *)

val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> t
(** Functional update. *)

val remove : t -> int -> t
val cardinal : t -> int
val is_empty : t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val elements : t -> int list
val of_list : int -> int list -> t
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_index : t -> int
(** Bit-packed integer encoding; only valid when capacity <= 62.
    @raise Invalid_argument otherwise. *)

val pp : Format.formatter -> t -> unit

(* Immutable bitset over int words; functional updates copy the word
   array, which is cheap at the universe sizes used here (graph vertex
   counts of at most a few thousand). *)

let word_bits = 62

type t = { capacity : int; words : int array }

let nwords capacity = (capacity + word_bits - 1) / word_bits

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity; words = Array.make (nwords capacity) 0 }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: element out of range"

let mem t i =
  check t i;
  t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let set_bit t i value =
  check t i;
  let words = Array.copy t.words in
  let w = i / word_bits and b = i mod word_bits in
  words.(w) <- (if value then words.(w) lor (1 lsl b) else words.(w) land lnot (1 lsl b));
  { t with words }

let add t i = set_bit t i true
let remove t i = set_bit t i false

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let zip op a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch";
  { a with words = Array.mapi (fun i w -> op w b.words.(i)) a.words }

let union = zip ( lor )
let inter = zip ( land )
let diff = zip (fun x y -> x land lnot y)

let subset a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch";
  let ok = ref true in
  Array.iteri (fun i w -> if w land lnot b.words.(i) <> 0 then ok := false) a.words;
  !ok

let equal a b = a.capacity = b.capacity && a.words = b.words

let elements t =
  let acc = ref [] in
  for i = t.capacity - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let of_list capacity xs = List.fold_left add (create capacity) xs

let iter f t = List.iter f (elements t)
let fold f t init = List.fold_left (fun acc i -> f i acc) init (elements t)

let to_index t =
  if t.capacity > word_bits then invalid_arg "Bitset.to_index: capacity too large";
  if Array.length t.words = 0 then 0 else t.words.(0)

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Format.pp_print_int)
    (elements t)

lib/ds/combinat.mli: Seq

lib/ds/bitset.mli: Format

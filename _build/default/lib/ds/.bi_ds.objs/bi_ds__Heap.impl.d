lib/ds/heap.ml: Array List Stdlib

lib/ds/heap.mli:

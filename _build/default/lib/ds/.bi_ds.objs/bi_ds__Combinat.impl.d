lib/ds/combinat.ml: Array Fun List Seq

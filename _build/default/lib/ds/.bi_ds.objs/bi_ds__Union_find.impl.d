lib/ds/union_find.ml: Array

lib/ds/bitset.ml: Array Format List

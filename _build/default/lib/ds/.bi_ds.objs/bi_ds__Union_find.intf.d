lib/ds/union_find.mli:

let simple_paths ?max_hops ?(limit = 100_000) g u v =
  let n = Graph.n_vertices g in
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg "Paths.simple_paths: vertex out of range";
  if u = v then [ [] ]
  else begin
    let visited = Array.make n false in
    let found = ref [] in
    let count = ref 0 in
    let max_hops = match max_hops with Some h -> h | None -> n in
    let rec dfs at acc depth =
      if at = v then begin
        incr count;
        if !count > limit then invalid_arg "Paths.simple_paths: limit exceeded";
        found := List.rev acc :: !found
      end
      else if depth < max_hops then begin
        visited.(at) <- true;
        List.iter
          (fun (e, w) -> if not visited.(w) then dfs w (e.Graph.id :: acc) (depth + 1))
          (Graph.succ g at);
        visited.(at) <- false
      end
    in
    dfs u [] 0;
    List.rev !found
  end

let path_cost g ids = Bi_num.Rat.sum (List.map (Graph.cost g) ids)

let path_vertices g u ids =
  let rec go at acc = function
    | [] -> List.rev (at :: acc)
    | id :: rest ->
      let e = Graph.edge g id in
      let next =
        if e.Graph.src = at then e.Graph.dst
        else if (not (Graph.is_directed g)) && e.Graph.dst = at then e.Graph.src
        else invalid_arg "Paths.path_vertices: not a walk from the given vertex"
      in
      go next (at :: acc) rest
  in
  go u [] ids

(** Graph generators for tests, benchmarks and the paper's constructions. *)

open Bi_num

val path_graph : Graph.kind -> int -> Rat.t -> Graph.t
(** [path_graph kind n c]: vertices [0..n-1], edges [i -> i+1] of cost [c]. *)

val cycle_graph : Graph.kind -> int -> Rat.t -> Graph.t

val complete_graph : int -> Rat.t -> Graph.t
(** Undirected complete graph with uniform edge cost. *)

val grid_graph : int -> int -> Rat.t -> Graph.t
(** Undirected [rows x cols] grid with uniform edge cost. *)

val random_graph :
  Random.State.t -> kind:Graph.kind -> n:int -> p:float -> max_cost:int -> Graph.t
(** Erdos–Renyi [G(n, p)] with integer costs drawn uniformly from
    [1..max_cost].  Self-loops are never generated. *)

val random_connected_graph :
  Random.State.t -> n:int -> p:float -> max_cost:int -> Graph.t
(** Undirected random graph augmented with a random spanning tree, so it
    is always connected. *)

val diamond_graph : int -> Graph.t * int * int
(** [diamond_graph j] is the [j]-level diamond graph of Imase and Waxman
    together with its two poles [(g, s, t)].  Level 0 is a single unit
    edge; level [j+1] replaces every edge of cost [c] by two parallel
    length-2 paths whose edges cost [c/2].  Every level has pole distance
    exactly 1, while online Steiner algorithms can be forced to pay
    [Omega(j)] — the engine of the paper's Lemma 3.5. *)

(** Exact Steiner connectivity costs via the Dreyfus–Wagner dynamic
    program over terminal subsets.

    The complete-information optimum of an NCS game with a shared source
    (which covers every construction in the paper) is exactly the cost of
    a minimum Steiner tree — or, on directed graphs, a minimum
    out-arborescence — rooted at the source and covering the
    destinations.  The same recurrence handles both cases when run over
    one-directional shortest-path distances.

    Complexity is [O(3^t n + 2^t n^2)] for [t] terminals, which is ample
    for the paper's constructions. *)

val steiner_cost : Graph.t -> root:int -> terminals:int list -> Bi_num.Extended.t
(** Minimum cost of a subgraph containing, for every terminal [t], a
    path from [root] to [t].  On an undirected graph this is the minimum
    Steiner tree spanning [root :: terminals].  [Inf] when some terminal
    is unreachable.  Terminals may repeat and may include the root.
    @raise Invalid_argument when more than 20 distinct terminals are
    given (subset-DP blowup guard). *)

val steiner_mst_approx : Graph.t -> terminals:int list -> (int list * Bi_num.Rat.t) option
(** The classical 2-approximation on undirected graphs: MST of the
    metric closure of the terminals, expanded back to graph edges.
    Returns the edge ids and their total cost; [None] when the terminals
    are not mutually connected.
    @raise Invalid_argument on a directed graph or empty terminal list. *)

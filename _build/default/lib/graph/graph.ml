open Bi_num

type kind =
  | Directed
  | Undirected

type edge = {
  id : int;
  src : int;
  dst : int;
  cost : Rat.t;
}

type t = {
  kind : kind;
  n : int;
  edge_arr : edge array;
  adj : (edge * int) list array; (* (edge, endpoint reached) *)
}

let make kind ~n edge_specs =
  if n < 0 then invalid_arg "Graph.make: negative vertex count";
  let check v = if v < 0 || v >= n then invalid_arg "Graph.make: vertex out of range" in
  let edge_arr =
    Array.of_list
      (List.mapi
         (fun id (src, dst, cost) ->
           check src;
           check dst;
           if Stdlib.( < ) (Rat.sign cost) 0 then
             invalid_arg "Graph.make: negative edge cost";
           { id; src; dst; cost })
         edge_specs)
  in
  let adj = Array.make n [] in
  Array.iter
    (fun e ->
      adj.(e.src) <- (e, e.dst) :: adj.(e.src);
      if kind = Undirected && e.src <> e.dst then adj.(e.dst) <- (e, e.src) :: adj.(e.dst))
    edge_arr;
  Array.iteri (fun v l -> adj.(v) <- List.rev l) adj;
  { kind; n; edge_arr; adj }

let kind g = g.kind
let is_directed g = g.kind = Directed
let n_vertices g = g.n
let n_edges g = Array.length g.edge_arr
let edges g = Array.to_list g.edge_arr

let edge g id =
  if id < 0 || id >= Array.length g.edge_arr then invalid_arg "Graph.edge: bad id";
  g.edge_arr.(id)

let cost g id = (edge g id).cost

let total_cost g ids =
  let ids = List.sort_uniq Stdlib.compare ids in
  Rat.sum (List.map (cost g) ids)

let succ g v =
  if v < 0 || v >= g.n then invalid_arg "Graph.succ: vertex out of range";
  g.adj.(v)

let other_endpoint _g e v =
  if e.src = v then e.dst
  else if e.dst = v then e.src
  else invalid_arg "Graph.other_endpoint: vertex not an endpoint"

(* Dijkstra with lazy deletion; exact rational priorities. *)
let dijkstra g s =
  if s < 0 || s >= g.n then invalid_arg "Graph.dijkstra: vertex out of range";
  let dist = Array.make g.n Extended.Inf in
  let pred = Array.make g.n None in
  let settled = Array.make g.n false in
  let cmp (d1, _) (d2, _) = Extended.compare d1 d2 in
  let heap = Bi_ds.Heap.create ~cmp in
  dist.(s) <- Extended.zero;
  Bi_ds.Heap.push heap (Extended.zero, s);
  let rec loop () =
    match Bi_ds.Heap.pop_min heap with
    | None -> ()
    | Some (d, v) ->
      if not settled.(v) && Extended.equal d dist.(v) then begin
        settled.(v) <- true;
        List.iter
          (fun (e, w) ->
            let d' = Extended.add d (Extended.of_rat e.cost) in
            if Extended.( < ) d' dist.(w) then begin
              dist.(w) <- d';
              pred.(w) <- Some e.id;
              Bi_ds.Heap.push heap (d', w)
            end)
          g.adj.(v)
      end;
      loop ()
  in
  loop ();
  (dist, pred)

let distance g u v =
  let dist, _ = dijkstra g u in
  dist.(v)

let shortest_path g u v =
  let dist, pred = dijkstra g u in
  match dist.(v) with
  | Extended.Inf -> None
  | Extended.Fin _ ->
    let rec walk v acc =
      if v = u then acc
      else
        match pred.(v) with
        | None -> acc (* v = u is the only vertex without a predecessor among reached ones *)
        | Some id ->
          let e = g.edge_arr.(id) in
          let prev = if e.dst = v then e.src else e.dst in
          walk prev (id :: acc)
    in
    Some (walk v [])

let bellman_ford g s =
  let dist = Array.make g.n Extended.Inf in
  dist.(s) <- Extended.zero;
  let relax () =
    let changed = ref false in
    Array.iter
      (fun e ->
        let try_relax u v =
          let d' = Extended.add dist.(u) (Extended.of_rat e.cost) in
          if Extended.( < ) d' dist.(v) then begin
            dist.(v) <- d';
            changed := true
          end
        in
        try_relax e.src e.dst;
        if g.kind = Undirected then try_relax e.dst e.src)
      g.edge_arr;
    !changed
  in
  let rec go i = if i < g.n && relax () then go (i + 1) in
  go 0;
  dist

let all_pairs_distances g =
  Array.init g.n (fun v -> fst (dijkstra g v))

let path_endpoints g ids =
  match ids with
  | [] -> None
  | first :: _ ->
    let e0 = edge g first in
    let try_from start =
      let rec go at = function
        | [] -> Some at
        | id :: rest ->
          let e = edge g id in
          if e.src = at then go e.dst rest
          else if g.kind = Undirected && e.dst = at then go e.src rest
          else None
      in
      match go start ids with
      | Some stop -> Some (start, stop)
      | None -> None
    in
    (match try_from e0.src with
     | Some r -> Some r
     | None -> if g.kind = Undirected then try_from e0.dst else None)

let reachable g ~via u v =
  if u = v then true
  else begin
    let allowed = Array.make (Array.length g.edge_arr) false in
    List.iter
      (fun id -> if id >= 0 && id < Array.length allowed then allowed.(id) <- true)
      via;
    let visited = Array.make g.n false in
    let rec dfs x =
      if x = v then true
      else begin
        visited.(x) <- true;
        List.exists (fun (e, w) -> allowed.(e.id) && (not visited.(w)) && dfs w) g.adj.(x)
      end
    in
    dfs u
  end

let is_path_between g ids u v = reachable g ~via:ids u v

let connected_components g =
  let uf = Bi_ds.Union_find.create g.n in
  Array.iter (fun e -> ignore (Bi_ds.Union_find.union uf e.src e.dst)) g.edge_arr;
  let buckets = Hashtbl.create 16 in
  for v = g.n - 1 downto 0 do
    let root = Bi_ds.Union_find.find uf v in
    let existing = try Hashtbl.find buckets root with Not_found -> [] in
    Hashtbl.replace buckets root (v :: existing)
  done;
  Hashtbl.fold (fun _ vs acc -> vs :: acc) buckets []
  |> List.sort Stdlib.compare

let minimum_spanning_tree g =
  if g.kind = Directed then invalid_arg "Graph.minimum_spanning_tree: directed graph";
  let sorted =
    List.sort (fun e1 e2 -> Rat.compare e1.cost e2.cost) (Array.to_list g.edge_arr)
  in
  let uf = Bi_ds.Union_find.create g.n in
  let chosen =
    List.filter (fun e -> Bi_ds.Union_find.union uf e.src e.dst) sorted
  in
  let ids = List.map (fun e -> e.id) chosen in
  (ids, total_cost g ids)

let pp fmt g =
  Format.fprintf fmt "@[<v>%s graph: %d vertices, %d edges@,"
    (match g.kind with Directed -> "directed" | Undirected -> "undirected")
    g.n (Array.length g.edge_arr);
  Array.iter
    (fun e ->
      Format.fprintf fmt "  e%d: %d %s %d (cost %a)@," e.id e.src
        (match g.kind with Directed -> "->" | Undirected -> "--")
        e.dst Rat.pp e.cost)
    g.edge_arr;
  Format.fprintf fmt "@]"

(** Weighted multigraphs with exact rational edge costs.

    Vertices are integers [0 .. n-1]; edges carry dense integer
    identifiers so that NCS actions (edge subsets) can be represented as
    sorted id lists and shared-cost payments can be tabulated in arrays.
    A graph is immutable once built.

    Undirected graphs store each edge once; traversal sees it in both
    directions.  Directed graphs traverse [src -> dst] only. *)

open Bi_num

type kind =
  | Directed
  | Undirected

type edge = private {
  id : int;
  src : int;
  dst : int;
  cost : Rat.t;
}

type t

val make : kind -> n:int -> (int * int * Rat.t) list -> t
(** [make kind ~n edges] builds a graph on vertices [0..n-1].
    @raise Invalid_argument on out-of-range endpoints or negative costs. *)

val kind : t -> kind
val is_directed : t -> bool
val n_vertices : t -> int
val n_edges : t -> int
val edges : t -> edge list
val edge : t -> int -> edge
(** Edge by id. @raise Invalid_argument on bad id. *)

val cost : t -> int -> Rat.t
(** Cost of edge id. *)

val total_cost : t -> int list -> Rat.t
(** Sum of costs of the given edge ids (duplicates counted once). *)

val succ : t -> int -> (edge * int) list
(** [succ g v] lists [(e, w)] for edges leaving [v] toward [w]; in an
    undirected graph both orientations are reported. *)

val other_endpoint : t -> edge -> int -> int
(** The endpoint of [e] that is not [v]. @raise Invalid_argument if [v]
    is not an endpoint. *)

(** {1 Shortest paths} *)

val dijkstra : t -> int -> Extended.t array * int option array
(** [dijkstra g s] is [(dist, pred)]: exact distances from [s], and for
    each reached vertex the id of the edge used to reach it. *)

val distance : t -> int -> int -> Extended.t

val shortest_path : t -> int -> int -> int list option
(** Edge ids of a shortest path, in order from source to destination;
    [None] if unreachable.  [Some []] when source equals destination. *)

val bellman_ford : t -> int -> Extended.t array
(** Reference implementation used as a test oracle for {!dijkstra}. *)

val all_pairs_distances : t -> Extended.t array array

(** {1 Structure} *)

val path_endpoints : t -> int list -> (int * int) option
(** For a nonempty list of edge ids forming a walk, its endpoints
    [(first_src, last_dst)] under the orientation implied by chaining;
    [None] when the ids do not chain into a walk.  Undirected edges may
    be traversed in either direction. *)

val is_path_between : t -> int list -> int -> int -> bool
(** Whether the edge ids contain a walk from [u] to [v] (in particular
    [u = v] holds with any edge set, matching the NCS convention that an
    agent with identical terminals needs to buy nothing). *)

val reachable : t -> via:int list -> int -> int -> bool
(** Connectivity from [u] to [v] using only the listed edge ids. *)

val connected_components : t -> int list list
(** Components ignoring edge direction. *)

val minimum_spanning_tree : t -> int list * Rat.t
(** Kruskal on an undirected graph (a minimum spanning forest when
    disconnected): edge ids and their total cost.
    @raise Invalid_argument on a directed graph. *)

val pp : Format.formatter -> t -> unit

open Bi_num

let steiner_cost g ~root ~terminals =
  let terminals =
    List.sort_uniq Stdlib.compare (List.filter (fun t -> t <> root) terminals)
  in
  let t = List.length terminals in
  if t > 20 then invalid_arg "Steiner_dp.steiner_cost: too many terminals";
  if t = 0 then Extended.zero
  else begin
    let terms = Array.of_list terminals in
    let n = Graph.n_vertices g in
    (* dist.(v).(u) = shortest-path distance v -> u *)
    let dist = Graph.all_pairs_distances g in
    let full = (1 lsl t) - 1 in
    (* dp.(mask).(v) = minimum cost of a subgraph giving v->terminal
       paths for every terminal in mask. *)
    let dp = Array.make_matrix (full + 1) n Extended.Inf in
    for i = 0 to t - 1 do
      for v = 0 to n - 1 do
        dp.(1 lsl i).(v) <- dist.(v).(terms.(i))
      done
    done;
    for mask = 1 to full do
      (* Skip singletons: already initialized. *)
      if mask land (mask - 1) <> 0 then begin
        let best = Array.make n Extended.Inf in
        (* Merge step: split mask into two nonempty halves at v. *)
        let sub = ref ((mask - 1) land mask) in
        while !sub > 0 do
          if !sub > mask lxor !sub then begin
            (* Enumerate each unordered split once. *)
            let a = !sub and b = mask lxor !sub in
            for v = 0 to n - 1 do
              let c = Extended.add dp.(a).(v) dp.(b).(v) in
              if Extended.( < ) c best.(v) then best.(v) <- c
            done
          end;
          sub := (!sub - 1) land mask
        done;
        (* Grow step: attach v to the best merge point via a shortest
           path.  A Dijkstra over the metric closure would be faster;
           the O(n^2) relaxation below is simpler and exact. *)
        for v = 0 to n - 1 do
          let acc = ref best.(v) in
          for u = 0 to n - 1 do
            let c = Extended.add dist.(v).(u) best.(u) in
            if Extended.( < ) c !acc then acc := c
          done;
          dp.(mask).(v) <- !acc
        done
      end
    done;
    dp.(full).(root)
  end

let steiner_mst_approx g ~terminals =
  if Graph.is_directed g then
    invalid_arg "Steiner_dp.steiner_mst_approx: directed graph";
  let terminals = List.sort_uniq Stdlib.compare terminals in
  match terminals with
  | [] -> invalid_arg "Steiner_dp.steiner_mst_approx: no terminals"
  | [ _ ] -> Some ([], Rat.zero)
  | _ ->
    let terms = Array.of_list terminals in
    let t = Array.length terms in
    let sp = Array.map (fun v -> Graph.dijkstra g v) terms in
    let closure_edges = ref [] in
    (try
       for i = 0 to t - 1 do
         for j = i + 1 to t - 1 do
           match (fst sp.(i)).(terms.(j)) with
           | Extended.Inf -> raise Exit
           | Extended.Fin d -> closure_edges := (i, j, d) :: !closure_edges
         done
       done;
       let closure = Graph.make Undirected ~n:t !closure_edges in
       let mst_ids, _ = Graph.minimum_spanning_tree closure in
       (* Expand each closure edge back to a shortest path in g. *)
       let expanded =
         List.concat_map
           (fun id ->
             let e = Graph.edge closure id in
             match Graph.shortest_path g terms.(e.Graph.src) terms.(e.Graph.dst) with
             | Some ids -> ids
             | None -> assert false)
           mst_ids
       in
       let ids = List.sort_uniq Stdlib.compare expanded in
       Some (ids, Graph.total_cost g ids)
     with Exit -> None)

open Bi_num

let path_graph kind n c =
  Graph.make kind ~n (List.init (n - 1) (fun i -> (i, i + 1, c)))

let cycle_graph kind n c =
  Graph.make kind ~n (List.init n (fun i -> (i, (i + 1) mod n, c)))

let complete_graph n c =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j, c) :: !edges
    done
  done;
  Graph.make Undirected ~n !edges

let grid_graph rows cols c =
  let idx r col = (r * cols) + col in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for col = 0 to cols - 1 do
      if col + 1 < cols then edges := (idx r col, idx r (col + 1), c) :: !edges;
      if r + 1 < rows then edges := (idx r col, idx (r + 1) col, c) :: !edges
    done
  done;
  Graph.make Undirected ~n:(rows * cols) !edges

let random_cost rng max_cost = Rat.of_int (1 + Random.State.int rng max_cost)

let random_graph rng ~kind ~n ~p ~max_cost =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let candidate = if kind = Graph.Directed then i <> j else i < j in
      if candidate && Random.State.float rng 1.0 < p then
        edges := (i, j, random_cost rng max_cost) :: !edges
    done
  done;
  Graph.make kind ~n !edges

let random_connected_graph rng ~n ~p ~max_cost =
  let base = random_graph rng ~kind:Graph.Undirected ~n ~p ~max_cost in
  let extra = ref [] in
  (* Random spanning tree: attach each vertex to a random earlier one. *)
  for v = 1 to n - 1 do
    extra := (Random.State.int rng v, v, random_cost rng max_cost) :: !extra
  done;
  let existing =
    List.map (fun e -> (e.Graph.src, e.Graph.dst, e.Graph.cost)) (Graph.edges base)
  in
  Graph.make Undirected ~n (existing @ !extra)

let diamond_graph levels =
  if levels < 0 then invalid_arg "Gen.diamond_graph: negative level";
  (* Edges as (u, v, cost); vertices are allocated as we subdivide. *)
  let n = ref 2 in
  let fresh () = let v = !n in incr n; v in
  let rec refine j edges =
    if j = 0 then edges
    else begin
      let subdivide (u, v, c) =
        let c2 = Rat.div_int c 2 in
        let m1 = fresh () and m2 = fresh () in
        [ (u, m1, c2); (m1, v, c2); (u, m2, c2); (m2, v, c2) ]
      in
      refine (j - 1) (List.concat_map subdivide edges)
    end
  in
  let edges = refine levels [ (0, 1, Rat.one) ] in
  (Graph.make Undirected ~n:!n edges, 0, 1)

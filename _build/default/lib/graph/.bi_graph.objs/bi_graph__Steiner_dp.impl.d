lib/graph/steiner_dp.ml: Array Bi_num Extended Graph List Rat Stdlib

lib/graph/paths.mli: Bi_num Graph

lib/graph/steiner_dp.mli: Bi_num Graph

lib/graph/gen.mli: Bi_num Graph Random Rat

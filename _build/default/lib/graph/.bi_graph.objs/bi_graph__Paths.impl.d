lib/graph/paths.ml: Array Bi_num Graph List

lib/graph/graph.mli: Bi_num Extended Format Rat

lib/graph/gen.ml: Bi_num Graph List Random Rat

lib/graph/graph.ml: Array Bi_ds Bi_num Extended Format Hashtbl List Rat Stdlib

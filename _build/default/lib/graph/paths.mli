(** Enumeration of simple paths.

    NCS equilibria are computed by exhaustive search over path actions
    (buying a superset of a path is dominated, see lib/ncs), so the
    solvers need the complete list of simple paths between an agent's
    terminals.  Enumeration is depth-first over vertex-simple walks. *)

val simple_paths :
  ?max_hops:int -> ?limit:int -> Graph.t -> int -> int -> int list list
(** [simple_paths g u v] lists the edge-id sequences of all vertex-simple
    paths from [u] to [v] ([[]] alone when [u = v]).  [max_hops] bounds
    path length (default: unbounded); [limit] aborts with
    [Invalid_argument] if more than [limit] paths exist (default
    [100_000]), as a guard against accidentally exponential instances. *)

val path_cost : Graph.t -> int list -> Bi_num.Rat.t
(** Sum of edge costs along a path (each edge counted as listed). *)

val path_vertices : Graph.t -> int -> int list -> int list
(** [path_vertices g u ids] is the vertex sequence of the walk [ids]
    starting at [u], including both endpoints.
    @raise Invalid_argument when [ids] is not a walk from [u]. *)

open Bi_num

type t = {
  n_resources : int;
  usage_cost : int -> int -> Rat.t;
  action_sets : int list array array;
}

let make ~n_resources ~usage_cost ~action_sets =
  Array.iter
    (fun actions ->
      if Array.length actions = 0 then invalid_arg "Congestion.make: empty action set";
      Array.iter
        (List.iter (fun r ->
             if r < 0 || r >= n_resources then
               invalid_arg "Congestion.make: resource id out of range"))
        actions)
    action_sets;
  { n_resources; usage_cost; action_sets }

let players g = Array.length g.action_sets

let loads g profile =
  let load = Array.make g.n_resources 0 in
  Array.iteri
    (fun i ai ->
      List.iter
        (fun r -> load.(r) <- load.(r) + 1)
        (List.sort_uniq Stdlib.compare g.action_sets.(i).(ai)))
    profile;
  load

let player_cost g profile i =
  let load = loads g profile in
  Rat.sum
    (List.map
       (fun r -> g.usage_cost r load.(r))
       (List.sort_uniq Stdlib.compare g.action_sets.(i).(profile.(i))))

let rosenthal_potential g profile =
  let load = loads g profile in
  let per_resource r =
    let rec go acc j =
      if j > load.(r) then acc else go (Rat.add acc (g.usage_cost r j)) (j + 1)
    in
    go Rat.zero 1
  in
  let acc = ref Rat.zero in
  for r = 0 to g.n_resources - 1 do
    acc := Rat.add !acc (per_resource r)
  done;
  !acc

let to_strategic g =
  Strategic.make
    ~players:(players g)
    ~actions:(Array.map Array.length g.action_sets)
    ~cost:(fun profile i -> Extended.of_rat (player_cost g profile i))

(** Finite strategic-form cost games.

    Players are [0 .. k-1]; player [i] has actions [0 .. n_i - 1];
    profiles are int arrays of length [k].  Costs live in the extended
    rationals so that the NCS convention (infinite cost for a
    disconnecting purchase) is expressible.  Agents minimize cost.

    These are the paper's {e underlying games} [G_t] (Section 2): every
    type profile of a Bayesian game induces one, and the
    complete-information quantities [optC], [best-eqC], [worst-eqC] are
    computed here. *)

open Bi_num

type t

val make :
  players:int -> actions:int array -> cost:(int array -> int -> Extended.t) -> t
(** [make ~players ~actions ~cost]: [actions.(i)] is player [i]'s action
    count and [cost profile i] her cost.  The cost function is memoized;
    it must be pure.
    @raise Invalid_argument on nonpositive player or action counts. *)

val players : t -> int
val n_actions : t -> int -> int
val cost : t -> int array -> int -> Extended.t
val social_cost : t -> int array -> Extended.t
(** Sum of all players' costs (the paper's [K_t]). *)

val profiles : t -> int array Seq.t
(** All action profiles, lexicographically.  Emitted arrays are fresh. *)

val best_deviation : t -> int array -> int -> (int * Extended.t) option
(** [best_deviation g a i] is [Some (a_i', c')] for a strictly improving
    unilateral deviation of player [i] minimizing her cost, [None] when
    [a_i] is already a best response. *)

val is_nash : t -> int array -> bool

val nash_equilibria : t -> int array Seq.t
(** All pure Nash equilibria, by exhaustive search. *)

val optimum : t -> Extended.t * int array
(** Profile minimizing social cost. *)

val best_equilibrium : t -> (Extended.t * int array) option
(** Cheapest pure Nash equilibrium; [None] when no pure equilibrium
    exists. *)

val worst_equilibrium : t -> (Extended.t * int array) option

val best_response_dynamics :
  ?max_steps:int -> t -> int array -> int array option
(** Iterated best responses from the given profile (players scanned
    round-robin, each moving to a strictly better best response).
    Terminates at a Nash equilibrium, or [None] after [max_steps]
    improvement moves (default [10_000]) — which for potential games
    cannot happen before exhausting the profile space. *)

val is_exact_potential : t -> (int array -> Rat.t) -> bool
(** Whether the function satisfies Monderer–Shapley's exact potential
    identity for every profile and unilateral deviation with finite
    costs (deviations with infinite cost on either side are skipped,
    matching the NCS setting where potentials are defined on connecting
    profiles). *)

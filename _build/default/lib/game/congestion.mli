(** Congestion games (Rosenthal 1973).

    Each player's action is a set of resources; the per-player cost of a
    resource depends only on how many players use it.  Every congestion
    game admits the Rosenthal exact potential and hence a pure Nash
    equilibrium — the fact the paper leans on for NCS games (Section 2).

    NCS games instantiate this with resources = edges and
    [usage_cost e load = c(e) / load] (fair cost sharing). *)

open Bi_num

type t

val make :
  n_resources:int ->
  usage_cost:(int -> int -> Rat.t) ->
  action_sets:int list array array ->
  t
(** [make ~n_resources ~usage_cost ~action_sets]:
    [usage_cost r load] is what each of the [load >= 1] users of resource
    [r] pays; [action_sets.(i)] lists player [i]'s actions, each a list
    of resource indices.
    @raise Invalid_argument on empty action sets or bad resource ids. *)

val players : t -> int
val loads : t -> int array -> int array
(** [loads g profile] is the usage count of each resource, where
    [profile.(i)] indexes into player [i]'s action set. *)

val player_cost : t -> int array -> int -> Rat.t
val rosenthal_potential : t -> int array -> Rat.t
(** [sum_r sum_{j=1..load(r)} usage_cost r j]; an exact potential. *)

val to_strategic : t -> Strategic.t
(** The induced strategic-form game (always finite costs). *)

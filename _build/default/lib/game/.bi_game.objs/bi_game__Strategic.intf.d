lib/game/strategic.mli: Bi_num Extended Rat Seq

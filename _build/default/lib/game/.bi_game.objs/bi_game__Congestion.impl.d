lib/game/congestion.ml: Array Bi_num Extended List Rat Stdlib Strategic

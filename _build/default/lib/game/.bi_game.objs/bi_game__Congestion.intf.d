lib/game/congestion.mli: Bi_num Rat Strategic

lib/game/anarchy.mli: Bi_num Rat Strategic

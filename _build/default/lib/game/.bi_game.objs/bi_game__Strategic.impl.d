lib/game/strategic.ml: Array Bi_ds Bi_num Extended Fun Hashtbl Option Rat Seq

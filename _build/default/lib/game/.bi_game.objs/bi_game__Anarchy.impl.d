lib/game/anarchy.ml: Bi_ds Bi_num Extended Rat Strategic

open Bi_num

let finite_ratio num den =
  match num, den with
  | Extended.Fin n, Extended.Fin d ->
    if Rat.is_zero d then None else Some (Rat.div n d)
  | Extended.Inf, _ | _, Extended.Inf -> None

let price_of_anarchy g =
  match Strategic.worst_equilibrium g with
  | None -> None
  | Some (worst, _) -> finite_ratio worst (fst (Strategic.optimum g))

let price_of_stability g =
  match Strategic.best_equilibrium g with
  | None -> None
  | Some (best, _) -> finite_ratio best (fst (Strategic.optimum g))

let potential_minimizer g ~potential =
  match
    Bi_ds.Combinat.argmin potential ~cmp:Rat.compare (Strategic.profiles g)
  with
  | Some (a, _) -> a
  | None -> assert false (* profile space is never empty *)

let potential_method_pos_bound g ~potential ~bound =
  let minimizer = potential_minimizer g ~potential in
  let opt, _ = Strategic.optimum g in
  match Strategic.social_cost g minimizer, opt with
  | Extended.Fin c, Extended.Fin o -> Rat.( <= ) c (Rat.mul bound o)
  | Extended.Inf, _ | _, Extended.Inf -> false

open Bi_num

type t = {
  players : int;
  actions : int array;
  cost : int array -> int -> Extended.t;
  memo : (int list, Extended.t array) Hashtbl.t;
}

let make ~players ~actions ~cost =
  if players <= 0 then invalid_arg "Strategic.make: need at least one player";
  if Array.length actions <> players then
    invalid_arg "Strategic.make: actions array length mismatch";
  Array.iter
    (fun n -> if n <= 0 then invalid_arg "Strategic.make: empty action space")
    actions;
  { players; actions; cost; memo = Hashtbl.create 256 }

let players g = g.players
let n_actions g i = g.actions.(i)

let all_costs g a =
  let key = Array.to_list a in
  match Hashtbl.find_opt g.memo key with
  | Some cs -> cs
  | None ->
    let cs = Array.init g.players (g.cost a) in
    Hashtbl.add g.memo key cs;
    cs

let cost g a i = (all_costs g a).(i)

let social_cost g a = Extended.sum (Array.to_list (all_costs g a))

let profiles g =
  Bi_ds.Combinat.product_arrays
    (Array.map (fun n -> Array.init n Fun.id) g.actions)

let best_deviation g a i =
  let current = cost g a i in
  let best = ref None in
  for ai' = 0 to g.actions.(i) - 1 do
    if ai' <> a.(i) then begin
      let a' = Array.copy a in
      a'.(i) <- ai';
      let c' = cost g a' i in
      let improves =
        match !best with
        | None -> Extended.( < ) c' current
        | Some (_, cb) -> Extended.( < ) c' cb
      in
      if improves then best := Some (ai', c')
    end
  done;
  !best

let is_nash g a =
  let rec go i =
    if i >= g.players then true
    else match best_deviation g a i with Some _ -> false | None -> go (i + 1)
  in
  go 0

let nash_equilibria g = Seq.filter (is_nash g) (profiles g)

let optimum g =
  match
    Bi_ds.Combinat.argmin (social_cost g) ~cmp:Extended.compare (profiles g)
  with
  | Some (a, c) -> (c, a)
  | None -> assert false (* profile space is never empty *)

let best_equilibrium g =
  Option.map
    (fun (a, c) -> (c, a))
    (Bi_ds.Combinat.argmin (social_cost g) ~cmp:Extended.compare (nash_equilibria g))

let worst_equilibrium g =
  Option.map
    (fun (a, c) -> (c, a))
    (Bi_ds.Combinat.argmax (social_cost g) ~cmp:Extended.compare (nash_equilibria g))

let best_response_dynamics ?(max_steps = 10_000) g start =
  if Array.length start <> g.players then
    invalid_arg "Strategic.best_response_dynamics: profile length mismatch";
  let a = Array.copy start in
  let rec go steps =
    if steps > max_steps then None
    else begin
      let moved = ref false in
      for i = 0 to g.players - 1 do
        if not !moved then
          match best_deviation g a i with
          | Some (ai', _) ->
            a.(i) <- ai';
            moved := true
          | None -> ()
      done;
      if !moved then go (steps + 1) else Some (Array.copy a)
    end
  in
  go 0

let is_exact_potential g q =
  let check_profile a =
    let rec check_player i =
      if i >= g.players then true
      else begin
        let rec check_action ai' =
          if ai' >= g.actions.(i) then true
          else begin
            let a' = Array.copy a in
            a'.(i) <- ai';
            let ok =
              match cost g a i, cost g a' i with
              | Extended.Fin c, Extended.Fin c' ->
                Rat.equal (Rat.sub c c') (Rat.sub (q a) (q a'))
              | Extended.Inf, _ | _, Extended.Inf -> true
            in
            ok && check_action (ai' + 1)
          end
        in
        check_action 0 && check_player (i + 1)
      end
    in
    check_player 0
  in
  Seq.fold_left (fun acc a -> acc && check_profile a) true (profiles g)

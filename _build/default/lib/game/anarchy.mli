(** Price of anarchy and price of stability (Koutsoupias–Papadimitriou;
    Anshelevich et al.) — the complete-information "price of ..."
    measures the paper contrasts with its Bayesian-ignorance ratios.

    For a cost game with optimum [opt] and pure equilibria:
    - price of anarchy  [PoA = worst equilibrium / opt];
    - price of stability [PoS = best equilibrium / opt].

    Both are [None] when the game has no pure equilibrium, or when the
    optimum is zero or infinite (the ratio is then undefined). *)

open Bi_num

val price_of_anarchy : Strategic.t -> Rat.t option
val price_of_stability : Strategic.t -> Rat.t option

val potential_minimizer : Strategic.t -> potential:(int array -> Rat.t) -> int array
(** The profile minimizing an exact potential — always a pure Nash
    equilibrium (Monderer–Shapley), which is how the paper's Lemma 3.8
    finds its cheap Bayesian equilibrium. *)

val potential_method_pos_bound : Strategic.t -> potential:(int array -> Rat.t) -> bound:Rat.t -> bool
(** [potential_method_pos_bound g ~potential ~bound] replays the
    Anshelevich et al. argument: the potential minimizer is an
    equilibrium whose social cost is at most [bound * opt] whenever
    [K(a) <= potential(a) <= bound * K(a)] for all profiles [a].  The
    function checks the conclusion directly:
    [social_cost (potential_minimizer) <= bound * opt].  For NCS games
    with the Rosenthal potential, [bound = H(k)]. *)

lib/ncs/complete.mli: Bi_game Bi_graph Bi_num Extended Rat Seq

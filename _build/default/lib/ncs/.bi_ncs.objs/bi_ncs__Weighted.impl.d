lib/ncs/weighted.ml: Array Bi_ds Bi_graph Bi_num Fun List Option Rat Seq Stdlib

lib/ncs/complete.ml: Array Bi_ds Bi_game Bi_graph Bi_num Extended Fun List Option Rat Seq

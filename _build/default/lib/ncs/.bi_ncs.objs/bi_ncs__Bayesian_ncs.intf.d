lib/ncs/bayesian_ncs.mli: Bi_bayes Bi_graph Bi_num Bi_prob Complete Extended Rat Seq

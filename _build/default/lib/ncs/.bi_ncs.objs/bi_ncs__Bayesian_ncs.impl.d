lib/ncs/bayesian_ncs.ml: Array Bi_bayes Bi_ds Bi_graph Bi_num Bi_prob Complete Extended Fun Hashtbl List Option Rat Seq

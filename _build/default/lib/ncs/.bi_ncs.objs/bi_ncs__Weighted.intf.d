lib/ncs/weighted.mli: Bi_graph Bi_num Rat Seq

(** Weighted network cost-sharing games — the variant of footnote 5
    (Albers; Chen–Roughgarden), where agent [i] carries weight [w_i] and
    pays the {e proportional} share [c(e) w_i / W_e] of each bought edge
    ([W_e] = total weight of its buyers).

    Unlike fair-sharing NCS games, weighted games are not potential
    games in general and may lack pure Nash equilibria, so the solvers
    here are purely enumerative and every equilibrium query returns an
    option.  With all weights equal this degenerates exactly to
    {!Complete} (tested). *)

open Bi_num

type t

val make : Bi_graph.Graph.t -> pairs:(int * int) array -> weights:Rat.t array -> t
(** @raise Invalid_argument on dimension mismatch, non-positive weights,
    out-of-range terminals or a disconnected pair. *)

val players : t -> int
val weight : t -> int -> Rat.t
val paths : t -> int -> int list list

val player_cost : t -> int array -> int -> Rat.t
(** Proportional-share payment of agent [i] under a path-index profile. *)

val social_cost : t -> int array -> Rat.t

val best_response : t -> int array -> int -> int
(** Exact, via a shortest-path search under the reweighted edge costs
    [c(e) w_i / (W_others(e) + w_i)]. *)

val is_nash : t -> int array -> bool
val nash_equilibria : t -> int array Seq.t
val optimum : t -> Rat.t * int array
val best_equilibrium : t -> (Rat.t * int array) option
val worst_equilibrium : t -> (Rat.t * int array) option

val price_of_anarchy : t -> Rat.t option
val price_of_stability : t -> Rat.t option

open Bi_num
module Graph = Bi_graph.Graph
module Paths = Bi_graph.Paths

type t = {
  graph : Graph.t;
  pairs : (int * int) array;
  weights : Rat.t array;
  path_table : int list array array;
}

let make graph ~pairs ~weights =
  if Array.length pairs = 0 then invalid_arg "Weighted.make: no agents";
  if Array.length weights <> Array.length pairs then
    invalid_arg "Weighted.make: weights length mismatch";
  Array.iter
    (fun w ->
      if Stdlib.( <= ) (Rat.sign w) 0 then
        invalid_arg "Weighted.make: weights must be positive")
    weights;
  let n = Graph.n_vertices graph in
  let path_table =
    Array.map
      (fun (x, y) ->
        if x < 0 || x >= n || y < 0 || y >= n then
          invalid_arg "Weighted.make: terminal out of range";
        let ps = Paths.simple_paths graph x y in
        if ps = [] then invalid_arg "Weighted.make: agent with disconnected terminals";
        Array.of_list ps)
      pairs
  in
  { graph; pairs; weights; path_table }

let players g = Array.length g.pairs
let weight g i = g.weights.(i)
let paths g i = Array.to_list g.path_table.(i)

let edge_weights g profile =
  let load = Array.make (Graph.n_edges g.graph) Rat.zero in
  Array.iteri
    (fun i ai ->
      List.iter
        (fun e -> load.(e) <- Rat.add load.(e) g.weights.(i))
        g.path_table.(i).(ai))
    profile;
  load

let player_cost g profile i =
  let load = edge_weights g profile in
  Rat.sum
    (List.map
       (fun e ->
         Rat.mul (Graph.cost g.graph e) (Rat.div g.weights.(i) load.(e)))
       g.path_table.(i).(profile.(i)))

let social_cost g profile =
  let load = edge_weights g profile in
  let acc = ref Rat.zero in
  Array.iteri
    (fun e l -> if not (Rat.is_zero l) then acc := Rat.add !acc (Graph.cost g.graph e))
    load;
  !acc

let best_response g profile i =
  let load = edge_weights g profile in
  List.iter
    (fun e -> load.(e) <- Rat.sub load.(e) g.weights.(i))
    g.path_table.(i).(profile.(i));
  let reweighted =
    Graph.make (Graph.kind g.graph) ~n:(Graph.n_vertices g.graph)
      (List.map
         (fun e ->
           let share =
             Rat.div g.weights.(i) (Rat.add load.(e.Graph.id) g.weights.(i))
           in
           (e.Graph.src, e.Graph.dst, Rat.mul e.Graph.cost share))
         (Graph.edges g.graph))
  in
  let x, y = g.pairs.(i) in
  match Graph.shortest_path reweighted x y with
  | None -> assert false (* connectivity checked in make *)
  | Some ids ->
    let table = g.path_table.(i) in
    let found = ref None in
    Array.iteri (fun j p -> if !found = None && p = ids then found := Some j) table;
    (match !found with
     | Some j -> j
     | None -> profile.(i))

let profile_space g =
  Bi_ds.Combinat.product_arrays
    (Array.map (fun tbl -> Array.init (Array.length tbl) Fun.id) g.path_table)

let is_nash g profile =
  let rec go i =
    if i >= players g then true
    else begin
      let current = player_cost g profile i in
      let rec try_action j =
        if j >= Array.length g.path_table.(i) then true
        else begin
          let deviated = Array.copy profile in
          deviated.(i) <- j;
          Rat.( <= ) current (player_cost g deviated i) && try_action (j + 1)
        end
      in
      try_action 0 && go (i + 1)
    end
  in
  go 0

let nash_equilibria g = Seq.filter (is_nash g) (profile_space g)

let optimum g =
  match Bi_ds.Combinat.argmin (social_cost g) ~cmp:Rat.compare (profile_space g) with
  | Some (a, c) -> (c, a)
  | None -> assert false

let best_equilibrium g =
  Option.map
    (fun (a, c) -> (c, a))
    (Bi_ds.Combinat.argmin (social_cost g) ~cmp:Rat.compare (nash_equilibria g))

let worst_equilibrium g =
  Option.map
    (fun (a, c) -> (c, a))
    (Bi_ds.Combinat.argmax (social_cost g) ~cmp:Rat.compare (nash_equilibria g))

let ratio pick g =
  match pick g with
  | None -> None
  | Some (eq, _) ->
    let opt, _ = optimum g in
    if Rat.is_zero opt then None else Some (Rat.div eq opt)

let price_of_anarchy g = ratio worst_equilibrium g
let price_of_stability g = ratio best_equilibrium g

open Bi_num

type t = { m : Rat.t array array; rows : int; cols : int }

let make m =
  let rows = Array.length m in
  if rows = 0 then invalid_arg "Matrix_game.make: no rows";
  let cols = Array.length m.(0) in
  if cols = 0 then invalid_arg "Matrix_game.make: no columns";
  Array.iter
    (fun row ->
      if Array.length row <> cols then invalid_arg "Matrix_game.make: ragged matrix")
    m;
  { m = Array.map Array.copy m; rows; cols }

let rows g = g.rows
let cols g = g.cols
let entry g i j = g.m.(i).(j)

let check_mixture g n q =
  if Array.length q <> n then invalid_arg "Matrix_game: mixture length mismatch";
  Array.iter
    (fun w ->
      if Stdlib.( < ) (Rat.sign w) 0 then invalid_arg "Matrix_game: negative weight")
    q;
  if not (Rat.equal Rat.one (Rat.sum (Array.to_list q))) then
    invalid_arg "Matrix_game: mixture does not sum to one";
  ignore g

let expected_col g q j =
  let acc = ref Rat.zero in
  for i = 0 to g.rows - 1 do
    if not (Rat.is_zero q.(i)) then acc := Rat.add !acc (Rat.mul q.(i) g.m.(i).(j))
  done;
  !acc

let expected_row g p i =
  let acc = ref Rat.zero in
  for j = 0 to g.cols - 1 do
    if not (Rat.is_zero p.(j)) then acc := Rat.add !acc (Rat.mul p.(j) g.m.(i).(j))
  done;
  !acc

let row_guarantee g q =
  check_mixture g g.rows q;
  let best = ref (expected_col g q 0) in
  for j = 1 to g.cols - 1 do
    best := Rat.max !best (expected_col g q j)
  done;
  !best

let col_guarantee g p =
  check_mixture g g.cols p;
  let best = ref (expected_row g p 0) in
  for i = 1 to g.rows - 1 do
    best := Rat.min !best (expected_row g p i)
  done;
  !best

let pure_saddle g =
  (* (i, j) is a saddle when m(i,j) is max in its row and min in its
     column (row minimizes, column maximizes). *)
  let found = ref None in
  for i = 0 to g.rows - 1 do
    for j = 0 to g.cols - 1 do
      if !found = None then begin
        let v = g.m.(i).(j) in
        let row_max = Array.fold_left Rat.max g.m.(i).(0) g.m.(i) in
        let col_min = ref g.m.(0).(j) in
        for i' = 1 to g.rows - 1 do
          col_min := Rat.min !col_min g.m.(i').(j)
        done;
        if Rat.equal v row_max && Rat.equal v !col_min then found := Some (i, j)
      end
    done
  done;
  !found

type solution = {
  row_strategy : Rat.t array;
  col_strategy : Rat.t array;
  lower : Rat.t;
  upper : Rat.t;
}

let point n i =
  Array.init n (fun j -> if j = i then Rat.one else Rat.zero)

let solve ?(iterations = 2000) g =
  match pure_saddle g with
  | Some (i, j) ->
    let row_strategy = point g.rows i and col_strategy = point g.cols j in
    { row_strategy; col_strategy; lower = g.m.(i).(j); upper = g.m.(i).(j) }
  | None ->
    (* Fictitious play with integer play counts; mixtures are exact. *)
    let row_count = Array.make g.rows 0 in
    let col_count = Array.make g.cols 0 in
    (* Cumulative payoffs against the opponent's raw counts. *)
    let row_payoff = Array.make g.rows Rat.zero in (* sum over col plays *)
    let col_payoff = Array.make g.cols Rat.zero in (* sum over row plays *)
    (* Track the row mixture with the smallest certified upper bound and
       the column mixture with the largest certified lower bound. *)
    let best_bracket = ref None in
    let record q p =
      let upper = row_guarantee g q and lower = col_guarantee g p in
      match !best_bracket with
      | None -> best_bracket := Some (q, p, lower, upper)
      | Some (bq, bp, bl, bu) ->
        let q', u' = if Rat.( < ) upper bu then (q, upper) else (bq, bu) in
        let p', l' = if Rat.( > ) lower bl then (p, lower) else (bp, bl) in
        best_bracket := Some (q', p', l', u')
    in
    let argmin_row () =
      let best = ref 0 in
      for i = 1 to g.rows - 1 do
        if Rat.( < ) row_payoff.(i) row_payoff.(!best) then best := i
      done;
      !best
    in
    let argmax_col () =
      let best = ref 0 in
      for j = 1 to g.cols - 1 do
        if Rat.( > ) col_payoff.(j) col_payoff.(!best) then best := j
      done;
      !best
    in
    (* Seed the certified bracket with all pure strategies, so the
       returned mixture is never worse than the best pure row (and the
       lower bound never worse than the best pure column). *)
    let seed_pure () =
      let best_row = ref 0 and best_row_val = ref (row_guarantee g (point g.rows 0)) in
      for i = 1 to g.rows - 1 do
        let v = row_guarantee g (point g.rows i) in
        if Rat.( < ) v !best_row_val then begin best_row := i; best_row_val := v end
      done;
      let best_col = ref 0 and best_col_val = ref (col_guarantee g (point g.cols 0)) in
      for j = 1 to g.cols - 1 do
        let v = col_guarantee g (point g.cols j) in
        if Rat.( > ) v !best_col_val then begin best_col := j; best_col_val := v end
      done;
      record (point g.rows !best_row) (point g.cols !best_col)
    in
    seed_pure ();
    (* Seed fictitious play with the first row/column. *)
    let play_row i =
      row_count.(i) <- row_count.(i) + 1;
      for j = 0 to g.cols - 1 do
        col_payoff.(j) <- Rat.add col_payoff.(j) g.m.(i).(j)
      done
    in
    let play_col j =
      col_count.(j) <- col_count.(j) + 1;
      for i = 0 to g.rows - 1 do
        row_payoff.(i) <- Rat.add row_payoff.(i) g.m.(i).(j)
      done
    in
    play_row 0;
    play_col (argmax_col ());
    for t = 2 to iterations do
      play_row (argmin_row ());
      play_col (argmax_col ());
      (* Checkpoint the certified bracket occasionally (guarantees are
         O(rows * cols) each). *)
      if t mod 50 = 0 || t = iterations then begin
        let q = Array.map (fun c -> Rat.of_ints c t) row_count in
        let p = Array.map (fun c -> Rat.of_ints c t) col_count in
        record q p
      end
    done;
    (match !best_bracket with
     | Some (q, p, lower, upper) ->
       { row_strategy = q; col_strategy = p; lower; upper }
     | None ->
       let q = point g.rows 0 and p = point g.cols 0 in
       { row_strategy = q; col_strategy = p;
         lower = col_guarantee g p; upper = row_guarantee g q })

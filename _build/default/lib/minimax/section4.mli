(** Public random bits as a substitute for the common prior (Section 4).

    A 4-tuple [phi] (a Bayesian game stripped of its prior) is captured
    by the social-cost matrix [K(s,t)] over strategy profiles [s] and
    type profiles [t], with [v(t) = min_s K(s,t)] the complete-
    information optimum of the underlying game [G_t].

    - [R(phi)] is the worst-case (over priors [p]) ratio
      [min_s sum_t p(t) K(s,t) / sum_t p(t) v(t)] — the worst
      [optP/optC] any prior can induce.
    - [R~(phi)] is the value of the zero-sum game with normalized matrix
      [K(s,t)/v(t)] (row: benevolent agents minimizing; column:
      adversarial prior).

    Proposition 4.2 states [R = R~]; Lemma 4.1 extracts from the minimax
    solution a distribution [q] over strategy profiles such that playing
    [s ~ q] — using only public random bits, never the prior — achieves
    ratio at most [R(phi)] against {e every} prior.  [r_tilde] returns
    that [q] (the row strategy), and [r_star_bracket] brackets [R(phi)]
    independently by binary search, which is how the reproduction
    demonstrates the proposition numerically. *)

open Bi_num

type t

val make : Rat.t array array -> t
(** [make k]: rows are strategy profiles, columns type profiles.  All
    entries must be positive (the paper's [C_{i,t} > 0] assumption;
    [v(t) = 0] would make the ratio 0/0).
    @raise Invalid_argument on empty or non-positive input. *)

val of_bayesian_ncs : Bi_ncs.Bayesian_ncs.t -> t
(** Rows: valid strategy profiles; columns: prior support.  The prior's
    probabilities are discarded — Section 4 quantifies over all priors.
    @raise Invalid_argument if some type profile has zero optimal cost
    (e.g. all agents absent). *)

val n_strategies : t -> int
val n_type_profiles : t -> int
val cost : t -> int -> int -> Rat.t
val opt_of_type : t -> int -> Rat.t
(** [v(t)]. *)

val normalized : t -> Rat.t array array
(** [K(s,t)/v(t)]. *)

val ratio_under_prior : t -> Rat.t array -> Rat.t
(** [optP/optC] under a specific prior (weights over type profiles,
    summing to one): [min_s sum_t p(t) K(s,t) / sum_t p(t) v(t)]. *)

val randomized_guarantee : t -> Rat.t array -> Rat.t
(** [max_t sum_s q(s) K(s,t)/v(t)]: the worst-prior performance of the
    public-randomness mixture [q] (by Proposition 4.2 it suffices to
    check point priors). *)

val r_tilde : ?iterations:int -> t -> Matrix_game.solution
(** Solves the normalized game.  [row_strategy] is Lemma 4.1's [q];
    [lower <= R~(phi) <= upper] are certified. *)

val r_star_bracket : ?iterations:int -> ?steps:int -> t -> Rat.t * Rat.t
(** Brackets [R(phi)] directly: binary search on [r], testing via the
    auxiliary game [K(s,t) - r v(t)] whether some prior forces every
    strategy profile above ratio [r].  Used to check Proposition 4.2
    ([R = R~]) numerically. *)

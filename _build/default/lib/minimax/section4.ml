open Bi_num

type t = {
  k : Rat.t array array; (* strategies x type profiles *)
  v : Rat.t array; (* per type profile: min_s K(s,t) *)
}

let make k =
  let rows = Array.length k in
  if rows = 0 then invalid_arg "Section4.make: no strategy profiles";
  let cols = Array.length k.(0) in
  if cols = 0 then invalid_arg "Section4.make: no type profiles";
  Array.iter
    (fun row ->
      if Array.length row <> cols then invalid_arg "Section4.make: ragged matrix";
      Array.iter
        (fun c ->
          if Stdlib.( <= ) (Rat.sign c) 0 then
            invalid_arg "Section4.make: costs must be positive")
        row)
    k;
  let v =
    Array.init cols (fun j ->
        let best = ref k.(0).(j) in
        for i = 1 to rows - 1 do
          best := Rat.min !best k.(i).(j)
        done;
        !best)
  in
  { k = Array.map Array.copy k; v }

let of_bayesian_ncs g =
  let strategies = Array.of_seq (Bi_ncs.Bayesian_ncs.valid_strategy_profiles g) in
  let game = Bi_ncs.Bayesian_ncs.game g in
  let support = Array.of_list (Bi_prob.Dist.support (Bi_bayes.Bayesian.prior game)) in
  let k =
    Array.map
      (fun s ->
        Array.map
          (fun tp ->
            match Bi_bayes.Bayesian.social_cost_at game s tp with
            | Extended.Fin c ->
              if Rat.is_zero c then
                invalid_arg
                  "Section4.of_bayesian_ncs: type profile with zero optimal cost"
              else c
            | Extended.Inf ->
              (* Valid profiles connect every agent; unreachable. *)
              assert false)
          support)
      strategies
  in
  make k

let n_strategies t = Array.length t.k
let n_type_profiles t = Array.length t.v
let cost t i j = t.k.(i).(j)
let opt_of_type t j = t.v.(j)

let normalized t =
  Array.map (fun row -> Array.mapi (fun j c -> Rat.div c t.v.(j)) row) t.k

let check_prior t p =
  if Array.length p <> Array.length t.v then
    invalid_arg "Section4: prior length mismatch";
  Array.iter
    (fun w ->
      if Stdlib.( < ) (Rat.sign w) 0 then invalid_arg "Section4: negative prior weight")
    p;
  if not (Rat.equal Rat.one (Rat.sum (Array.to_list p))) then
    invalid_arg "Section4: prior does not sum to one"

let ratio_under_prior t p =
  check_prior t p;
  let dot row =
    let acc = ref Rat.zero in
    Array.iteri (fun j w -> if not (Rat.is_zero w) then acc := Rat.add !acc (Rat.mul w row.(j))) p;
    !acc
  in
  let denom = dot t.v in
  if Rat.is_zero denom then invalid_arg "Section4.ratio_under_prior: zero denominator";
  let best = ref None in
  Array.iter
    (fun row ->
      let num = dot row in
      match !best with
      | None -> best := Some num
      | Some b -> if Rat.( < ) num b then best := Some num)
    t.k;
  match !best with
  | Some num -> Rat.div num denom
  | None -> assert false

let randomized_guarantee t q =
  if Array.length q <> Array.length t.k then
    invalid_arg "Section4.randomized_guarantee: mixture length mismatch";
  let worst = ref Rat.zero in
  for j = 0 to Array.length t.v - 1 do
    let acc = ref Rat.zero in
    Array.iteri
      (fun i w ->
        if not (Rat.is_zero w) then
          acc := Rat.add !acc (Rat.mul w (Rat.div t.k.(i).(j) t.v.(j))))
      q;
    if Rat.( > ) !acc !worst then worst := !acc
  done;
  !worst

let r_tilde ?iterations t =
  Matrix_game.solve ?iterations (Matrix_game.make (normalized t))

let r_star_bracket ?iterations ?(steps = 20) t =
  (* The ratio is always >= 1 (K >= v pointwise) and <= the largest
     normalized entry. *)
  let normalized_max =
    Array.fold_left
      (fun acc row ->
        let m = ref acc in
        Array.iteri (fun j c -> m := Rat.max !m (Rat.div c t.v.(j))) row;
        !m)
      Rat.one t.k
  in
  let auxiliary r =
    (* Game K(s,t) - r * v(t): its value is > 0 iff some prior keeps
       every strategy profile above ratio r, i.e. iff r < R(phi). *)
    Matrix_game.solve ?iterations
      (Matrix_game.make
         (Array.map
            (fun row -> Array.mapi (fun j c -> Rat.sub c (Rat.mul r t.v.(j))) row)
            t.k))
  in
  (* The auxiliary value val(r) is strictly decreasing in r with
     difference quotients in [-max_t v(t), -min_t v(t)] and
     val(R(phi)) = 0, so a certified value bracket [l, u] at r = mid
     yields the certified root bracket
       [mid + min(0, l) / min_v,  mid + max(0, u) / min_v]. *)
  let min_v = Array.fold_left Rat.min t.v.(0) t.v in
  let rec go lo hi step =
    if step = 0 then (lo, hi)
    else begin
      let mid = Rat.div_int (Rat.add lo hi) 2 in
      let sol = auxiliary mid in
      let l = sol.Matrix_game.lower and u = sol.Matrix_game.upper in
      let lo' = Rat.max lo (Rat.add mid (Rat.div (Rat.min Rat.zero l) min_v)) in
      let hi' = Rat.min hi (Rat.add mid (Rat.div (Rat.max Rat.zero u) min_v)) in
      if Rat.( >= ) lo' hi' then (Rat.min lo' hi', Rat.max lo' hi')
      else if Rat.equal lo' lo && Rat.equal hi' hi then (lo, hi)
      else go lo' hi' (step - 1)
    end
  in
  go Rat.one normalized_max steps

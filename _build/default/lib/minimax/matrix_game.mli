(** Finite zero-sum matrix games with exact rational payoffs.

    Convention: the {e row} player picks a row to {e minimize} the
    entry, the {e column} player picks a column to {e maximize} it.
    Section 4 of the paper needs the value and an (approximately)
    optimal row mixture of the normalized social-cost matrix
    [K(s,t) / min_s' K(s',t)]: the row mixture is the public-randomness
    distribution over strategy profiles of Lemma 4.1.

    No LP solver is available in this environment, so the value is
    bracketed by fictitious play (Robinson 1951): both players
    repeatedly best-respond to the opponent's empirical mixture.  All
    bookkeeping is exact — empirical mixtures are rational — so the
    returned [lower]/[upper] are {e certified} bounds: [lower] is the
    column mixture's guaranteed payoff, [upper] the row mixture's. *)

open Bi_num

type t

val make : Rat.t array array -> t
(** Rows of equal positive length. @raise Invalid_argument otherwise. *)

val rows : t -> int
val cols : t -> int
val entry : t -> int -> int -> Rat.t

val row_guarantee : t -> Rat.t array -> Rat.t
(** [row_guarantee g q]: worst case (max over columns) of the expected
    entry under row mixture [q] — an upper bound on the value.
    @raise Invalid_argument unless [q] has one non-negative weight per
    row summing to one. *)

val col_guarantee : t -> Rat.t array -> Rat.t
(** Min over rows under a column mixture — a lower bound on the value. *)

val pure_saddle : t -> (int * int) option
(** A pure saddle point (row minimax = column maximin), when one exists:
    at it, the value is exact. *)

type solution = {
  row_strategy : Rat.t array;
  col_strategy : Rat.t array;
  lower : Rat.t; (** certified: value >= lower *)
  upper : Rat.t; (** certified: value <= upper *)
}

val solve : ?iterations:int -> t -> solution
(** Fictitious play for [iterations] rounds (default 2000), keeping the
    best certified bracket seen.  When a pure saddle exists the bracket
    is tight immediately. *)

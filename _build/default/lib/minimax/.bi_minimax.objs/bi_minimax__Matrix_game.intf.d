lib/minimax/matrix_game.mli: Bi_num Rat

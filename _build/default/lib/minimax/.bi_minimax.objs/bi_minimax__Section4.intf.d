lib/minimax/section4.mli: Bi_ncs Bi_num Matrix_game Rat

lib/minimax/section4.ml: Array Bi_bayes Bi_ncs Bi_num Bi_prob Extended Matrix_game Rat Stdlib

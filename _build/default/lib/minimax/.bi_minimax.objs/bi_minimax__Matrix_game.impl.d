lib/minimax/matrix_game.ml: Array Bi_num Rat Stdlib

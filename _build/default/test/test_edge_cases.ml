(* Edge-case and failure-injection tests across the stack: boundary
   values of the arithmetic layer, degenerate graphs and games, guard
   rails, and error-message contracts relied on by other suites. *)

open Bi_num
module Graph = Bi_graph.Graph
module Paths = Bi_graph.Paths
module Gen = Bi_graph.Gen
module Dist = Bi_prob.Dist
module Bncs = Bi_ncs.Bayesian_ncs

let rat = Alcotest.testable Rat.pp Rat.equal
let bigint = Alcotest.testable Bigint.pp Bigint.equal
let ext = Alcotest.testable Extended.pp Extended.equal

let r = Rat.of_int

(* --- Bigint boundaries --- *)

let test_bigint_min_int_arithmetic () =
  let m = Bigint.of_int min_int in
  Alcotest.check bigint "negate twice" m (Bigint.neg (Bigint.neg m));
  Alcotest.(check (option int)) "min_int + 1 roundtrips" (Some (min_int + 1))
    (Bigint.to_int_opt (Bigint.add m Bigint.one));
  (* One beyond the native range no longer fits. *)
  Alcotest.(check (option int)) "min_int - 1 does not fit" None
    (Bigint.to_int_opt (Bigint.sub m Bigint.one));
  Alcotest.(check (option int)) "max_int + 1 does not fit" None
    (Bigint.to_int_opt (Bigint.add (Bigint.of_int max_int) Bigint.one))

let test_bigint_negative_zero_string () =
  Alcotest.check bigint "-0 = 0" Bigint.zero (Bigint.of_string "-0");
  Alcotest.(check int) "sign of -0" 0 (Bigint.sign (Bigint.of_string "-000"))

let test_bigint_mul_int_negative () =
  Alcotest.check bigint "mul_int by negative" (Bigint.of_int (-35))
    (Bigint.mul_int (Bigint.of_int 7) (-5));
  Alcotest.check bigint "add_int negative" (Bigint.of_int 2)
    (Bigint.add_int (Bigint.of_int 7) (-5))

let test_bigint_huge_division () =
  (* 100! / 99! = 100 exactly. *)
  let q, rem = Bigint.divmod (Bigint.factorial 100) (Bigint.factorial 99) in
  Alcotest.check bigint "100!/99!" (Bigint.of_int 100) q;
  Alcotest.check bigint "no remainder" Bigint.zero rem

(* --- Rational boundaries --- *)

let test_rat_div_by_zero_rational () =
  Alcotest.check_raises "x / 0" Division_by_zero (fun () ->
      ignore (Rat.div Rat.one Rat.zero));
  Alcotest.check_raises "of_ints n 0" Division_by_zero (fun () ->
      ignore (Rat.of_ints 1 0))

let test_rat_harmonic_negative () =
  Alcotest.check_raises "harmonic -1"
    (Invalid_argument "Rat.harmonic: negative argument") (fun () ->
      ignore (Rat.harmonic (-1)))

let test_rat_to_float_huge () =
  (* Numerator and denominator both overflow floats; the quotient must
     not become nan. *)
  let x = Rat.make (Bigint.factorial 200) (Bigint.factorial 199) in
  Alcotest.(check (float 1e-9)) "200!/199! as float" 200.0 (Rat.to_float x);
  let tiny = Rat.make (Bigint.factorial 199) (Bigint.factorial 200) in
  Alcotest.(check (float 1e-9)) "199!/200! as float" 0.005 (Rat.to_float tiny)

(* --- Graph degeneracies --- *)

let test_empty_and_single_vertex_graphs () =
  let g0 = Graph.make Undirected ~n:0 [] in
  Alcotest.(check int) "no vertices" 0 (Graph.n_vertices g0);
  Alcotest.(check (list (list int))) "no components" [] (Graph.connected_components g0);
  let g1 = Graph.make Directed ~n:1 [] in
  Alcotest.check ext "self distance" Extended.zero (Graph.distance g1 0 0);
  Alcotest.(check (list (list int))) "one component" [ [ 0 ] ]
    (Graph.connected_components g1)

let test_self_loop () =
  let g = Graph.make Undirected ~n:2 [ (0, 0, r 5); (0, 1, r 1) ] in
  (* A self-loop never helps a shortest path. *)
  Alcotest.check ext "ignores loop" Extended.one (Graph.distance g 0 1);
  Alcotest.(check int) "loop listed once in adjacency" 2
    (List.length (Graph.succ g 0))

let test_total_cost_empty () =
  let g = Gen.path_graph Undirected 3 (r 2) in
  Alcotest.check rat "empty purchase" Rat.zero (Graph.total_cost g []);
  Alcotest.(check bool) "v reaches v with no edges" true
    (Graph.is_path_between g [] 1 1);
  Alcotest.(check bool) "u does not reach v with no edges" false
    (Graph.is_path_between g [] 0 1)

let test_max_hops_zero () =
  let g = Gen.path_graph Undirected 3 Rat.one in
  Alcotest.(check (list (list int))) "0 hops, distinct endpoints" []
    (Paths.simple_paths ~max_hops:0 g 0 1);
  Alcotest.(check (list (list int))) "0 hops, same endpoint" [ [] ]
    (Paths.simple_paths ~max_hops:0 g 1 1)

let test_path_vertices_rejects_nonwalk () =
  let g = Gen.path_graph Directed 3 Rat.one in
  Alcotest.check_raises "wrong start"
    (Invalid_argument "Paths.path_vertices: not a walk from the given vertex")
    (fun () -> ignore (Paths.path_vertices g 1 [ 0 ]))

let test_steiner_guard () =
  let g = Gen.complete_graph 25 Rat.one in
  Alcotest.check_raises "too many terminals"
    (Invalid_argument "Steiner_dp.steiner_cost: too many terminals") (fun () ->
      ignore
        (Bi_graph.Steiner_dp.steiner_cost g ~root:0
           ~terminals:(List.init 22 (fun i -> i + 1))))

(* --- Distribution corner cases --- *)

let test_dist_product_list_empty () =
  let d = Dist.product_list ([] : int Dist.t list) in
  Alcotest.(check int) "point at []" 1 (List.length (Dist.support d));
  Alcotest.check rat "mass" Rat.one (Dist.mass d [])

let test_dist_condition_extremes () =
  let d = Dist.uniform [ 1; 2; 3 ] in
  Alcotest.(check bool) "always-true condition is identity" true
    (match Dist.condition (fun _ -> true) d with
     | Some d' -> Dist.to_list d' = Dist.to_list d
     | None -> false);
  Alcotest.(check bool) "always-false condition" true
    (Dist.condition (fun _ -> false) d = None)

(* --- Bayesian NCS guard rails --- *)

let test_bncs_inconsistent_prior () =
  let g = Gen.path_graph Undirected 2 Rat.one in
  Alcotest.check_raises "agent count varies"
    (Invalid_argument "Bayesian_ncs.make: inconsistent number of agents in prior")
    (fun () ->
      ignore
        (Bncs.make g
           ~prior:(Dist.uniform [ [| (0, 1) |]; [| (0, 1); (0, 1) |] ])));
  Alcotest.check_raises "terminal out of range"
    (Invalid_argument "Bayesian_ncs.make: terminal out of range") (fun () ->
      ignore (Bncs.make g ~prior:(Dist.point [| (0, 7) |])))

let test_bncs_disconnected_type () =
  let g = Graph.make Undirected ~n:3 [ (0, 1, Rat.one) ] in
  Alcotest.check_raises "unreachable destination"
    (Invalid_argument "Bayesian_ncs.make: type with disconnected terminals")
    (fun () -> ignore (Bncs.make g ~prior:(Dist.point [| (0, 2) |])))

let test_bncs_single_agent_degenerate () =
  (* One agent, one state: everything collapses to her shortest path. *)
  let g = Gen.path_graph Undirected 3 (r 2) in
  let game = Bncs.make g ~prior:(Dist.point [| (0, 2) |]) in
  let m = Bncs.measures_exhaustive game in
  Alcotest.check ext "optP" (Extended.of_int 4) m.Bi_bayes.Measures.opt_p;
  Alcotest.check ext "optC" (Extended.of_int 4) m.Bi_bayes.Measures.opt_c;
  Alcotest.(check (option ext)) "best-eqP" (Some (Extended.of_int 4))
    m.Bi_bayes.Measures.best_eq_p

let test_measures_ratio_undefined_on_zero () =
  Alcotest.(check bool) "zero denominator" true
    (Bi_bayes.Measures.ratio Extended.one Extended.zero = None);
  Alcotest.(check bool) "infinite numerator" true
    (Bi_bayes.Measures.ratio Extended.Inf Extended.one = None)

(* --- Stress property: heap against a sorting oracle under interleaved
   operations --- *)

let prop_heap_interleaved =
  QCheck2.Test.make ~name:"heap matches sorted-list oracle under pop/push mix"
    ~count:200
    QCheck2.Gen.(list (int_range (-50) 50))
    (fun ops ->
      let h = Bi_ds.Heap.create ~cmp:Stdlib.compare in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          if op >= 0 then begin
            Bi_ds.Heap.push h op;
            model := List.sort Stdlib.compare (op :: !model)
          end
          else begin
            match Bi_ds.Heap.pop_min h, !model with
            | None, [] -> ()
            | Some x, y :: rest when x = y -> model := rest
            | _ -> ok := false
          end)
        ops;
      !ok && Bi_ds.Heap.size h = List.length !model)

let prop_combinations_count =
  QCheck2.Test.make ~name:"C(n,k) counts, including k > n" ~count:100
    QCheck2.Gen.(pair (int_range 0 7) (int_range 0 9))
    (fun (n, k) ->
      let binom n k =
        if k > n then 0
        else begin
          let num = ref 1 and den = ref 1 in
          for i = 0 to k - 1 do
            num := !num * (n - i);
            den := !den * (i + 1)
          done;
          !num / !den
        end
      in
      Seq.length (Bi_ds.Combinat.combinations (List.init n Fun.id) k) = binom n k)

let qtests =
  List.map QCheck_alcotest.to_alcotest [ prop_heap_interleaved; prop_combinations_count ]

let () =
  Alcotest.run "edge_cases"
    [
      ( "bigint",
        [
          Alcotest.test_case "min_int boundaries" `Quick test_bigint_min_int_arithmetic;
          Alcotest.test_case "negative zero" `Quick test_bigint_negative_zero_string;
          Alcotest.test_case "signed small ops" `Quick test_bigint_mul_int_negative;
          Alcotest.test_case "huge division" `Quick test_bigint_huge_division;
        ] );
      ( "rational",
        [
          Alcotest.test_case "division by zero" `Quick test_rat_div_by_zero_rational;
          Alcotest.test_case "harmonic guard" `Quick test_rat_harmonic_negative;
          Alcotest.test_case "to_float beyond float range" `Quick test_rat_to_float_huge;
        ] );
      ( "graph",
        [
          Alcotest.test_case "empty & singleton" `Quick test_empty_and_single_vertex_graphs;
          Alcotest.test_case "self loops" `Quick test_self_loop;
          Alcotest.test_case "empty purchases" `Quick test_total_cost_empty;
          Alcotest.test_case "max_hops zero" `Quick test_max_hops_zero;
          Alcotest.test_case "non-walk rejected" `Quick test_path_vertices_rejects_nonwalk;
          Alcotest.test_case "steiner terminal guard" `Quick test_steiner_guard;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "empty product" `Quick test_dist_product_list_empty;
          Alcotest.test_case "condition extremes" `Quick test_dist_condition_extremes;
        ] );
      ( "bayesian_ncs",
        [
          Alcotest.test_case "inconsistent priors" `Quick test_bncs_inconsistent_prior;
          Alcotest.test_case "disconnected type" `Quick test_bncs_disconnected_type;
          Alcotest.test_case "single-agent degenerate" `Quick test_bncs_single_agent_degenerate;
          Alcotest.test_case "undefined ratios" `Quick test_measures_ratio_undefined_on_zero;
        ] );
      ("properties", qtests);
    ]

(* Tests for heaps, union-find, bitsets and combinatorial enumeration. *)

open Bi_ds

(* --- Heap --- *)

let test_heap_sorts () =
  let h = Heap.of_list ~cmp:Stdlib.compare [ 5; 3; 8; 1; 9; 2; 7 ] in
  Alcotest.(check (list int)) "drain sorted" [ 1; 2; 3; 5; 7; 8; 9 ]
    (Heap.to_sorted_list h);
  Alcotest.(check bool) "empty after drain" true (Heap.is_empty h)

let test_heap_peek_pop () =
  let h = Heap.create ~cmp:Stdlib.compare in
  Alcotest.(check (option int)) "peek empty" None (Heap.peek_min h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop_min h);
  Heap.push h 4;
  Heap.push h 2;
  Alcotest.(check (option int)) "peek" (Some 2) (Heap.peek_min h);
  Alcotest.(check int) "size" 2 (Heap.size h);
  Alcotest.(check int) "pop" 2 (Heap.pop_min_exn h);
  Alcotest.(check int) "pop next" 4 (Heap.pop_min_exn h);
  Alcotest.check_raises "pop empty exn"
    (Invalid_argument "Heap.pop_min_exn: empty heap") (fun () ->
      ignore (Heap.pop_min_exn h))

let test_heap_duplicates () =
  let h = Heap.of_list ~cmp:Stdlib.compare [ 3; 1; 3; 1; 2 ] in
  Alcotest.(check (list int)) "duplicates kept" [ 1; 1; 2; 3; 3 ]
    (Heap.to_sorted_list h)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap sorts any list" ~count:300
    QCheck2.Gen.(list (int_range (-1000) 1000))
    (fun xs ->
      Heap.to_sorted_list (Heap.of_list ~cmp:Stdlib.compare xs)
      = List.sort Stdlib.compare xs)

(* --- Union-find --- *)

let test_union_find () =
  let uf = Union_find.create 6 in
  Alcotest.(check int) "initial count" 6 (Union_find.count uf);
  Alcotest.(check bool) "union 0 1" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "union 1 2" true (Union_find.union uf 1 2);
  Alcotest.(check bool) "redundant union" false (Union_find.union uf 0 2);
  Alcotest.(check bool) "same 0 2" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "not same 0 3" false (Union_find.same uf 0 3);
  Alcotest.(check int) "count after merges" 4 (Union_find.count uf);
  Alcotest.(check int) "component size" 3 (Union_find.size_of uf 1);
  Alcotest.(check int) "singleton size" 1 (Union_find.size_of uf 5)

let prop_union_find_transitive =
  QCheck2.Test.make ~name:"union-find equivalence closure" ~count:200
    QCheck2.Gen.(list_size (int_range 0 30) (pair (int_range 0 9) (int_range 0 9)))
    (fun unions ->
      let uf = Union_find.create 10 in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) unions;
      (* Oracle: naive reflexive-transitive-symmetric closure. *)
      let reach = Array.make_matrix 10 10 false in
      for i = 0 to 9 do reach.(i).(i) <- true done;
      List.iter (fun (a, b) -> reach.(a).(b) <- true; reach.(b).(a) <- true) unions;
      for k = 0 to 9 do
        for i = 0 to 9 do
          for j = 0 to 9 do
            if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
          done
        done
      done;
      let ok = ref true in
      for i = 0 to 9 do
        for j = 0 to 9 do
          if Union_find.same uf i j <> reach.(i).(j) then ok := false
        done
      done;
      !ok)

(* --- Bitset --- *)

let test_bitset_basic () =
  let s = Bitset.of_list 100 [ 3; 50; 99 ] in
  Alcotest.(check bool) "mem 50" true (Bitset.mem s 50);
  Alcotest.(check bool) "not mem 4" false (Bitset.mem s 4);
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal s);
  Alcotest.(check (list int)) "elements sorted" [ 3; 50; 99 ] (Bitset.elements s);
  let s' = Bitset.remove (Bitset.add s 4) 99 in
  Alcotest.(check (list int)) "after add/remove" [ 3; 4; 50 ] (Bitset.elements s');
  Alcotest.(check bool) "original untouched" true (Bitset.mem s 99)

let test_bitset_ops () =
  let a = Bitset.of_list 70 [ 1; 2; 65 ] in
  let b = Bitset.of_list 70 [ 2; 3; 65 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 65 ] (Bitset.elements (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 2; 65 ] (Bitset.elements (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1 ] (Bitset.elements (Bitset.diff a b));
  Alcotest.(check bool) "subset yes" true (Bitset.subset (Bitset.inter a b) a);
  Alcotest.(check bool) "subset no" false (Bitset.subset a b);
  Alcotest.(check bool) "is_empty" true (Bitset.is_empty (Bitset.create 70))

let test_bitset_to_index () =
  let s = Bitset.of_list 10 [ 0; 3 ] in
  Alcotest.(check int) "packed" 0b1001 (Bitset.to_index s);
  Alcotest.check_raises "too large"
    (Invalid_argument "Bitset.to_index: capacity too large") (fun () ->
      ignore (Bitset.to_index (Bitset.create 100)))

let test_bitset_bounds () =
  let s = Bitset.create 5 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: element out of range")
    (fun () -> ignore (Bitset.mem s 5))

(* --- Combinat --- *)

let test_product () =
  let p = List.of_seq (Combinat.product [ [ 1; 2 ]; [ 3; 4; 5 ] ]) in
  Alcotest.(check (list (list int))) "2x3 product"
    [ [ 1; 3 ]; [ 1; 4 ]; [ 1; 5 ]; [ 2; 3 ]; [ 2; 4 ]; [ 2; 5 ] ]
    p;
  Alcotest.(check (list (list int))) "empty product" [ [] ]
    (List.of_seq (Combinat.product []))

let test_functions () =
  let fs = List.of_seq (Combinat.functions ~dom:2 [| 0; 1; 2 |]) in
  Alcotest.(check int) "3^2 functions" 9 (List.length fs);
  Alcotest.(check bool) "all distinct" true
    (List.length (List.sort_uniq Stdlib.compare fs) = 9)

let test_subsets () =
  let ss = List.of_seq (Combinat.subsets [ 1; 2; 3 ]) in
  Alcotest.(check int) "2^3 subsets" 8 (List.length ss);
  Alcotest.(check bool) "contains empty and full" true
    (List.mem [] ss && List.mem [ 1; 2; 3 ] ss)

let test_combinations () =
  let cs = List.of_seq (Combinat.combinations [ 1; 2; 3; 4 ] 2) in
  Alcotest.(check int) "C(4,2)" 6 (List.length cs);
  Alcotest.(check bool) "each size 2" true (List.for_all (fun c -> List.length c = 2) cs)

let test_permutations () =
  let ps = List.of_seq (Combinat.permutations [ 1; 2; 3 ]) in
  Alcotest.(check int) "3!" 6 (List.length ps);
  Alcotest.(check int) "distinct" 6 (List.length (List.sort_uniq Stdlib.compare ps));
  (* Duplicate elements: still positional permutations. *)
  Alcotest.(check int) "with duplicates" 2
    (List.length (List.of_seq (Combinat.permutations [ 7; 7 ])))

let test_argmin_argmax () =
  let xs = List.to_seq [ 4; 1; 7; 1 ] in
  Alcotest.(check (option (pair int int))) "argmin" (Some (1, 1))
    (Combinat.argmin Fun.id ~cmp:Stdlib.compare xs);
  Alcotest.(check (option (pair int int))) "argmax"
    (Some (7, 7))
    (Combinat.argmax Fun.id ~cmp:Stdlib.compare (List.to_seq [ 4; 1; 7; 1 ]));
  Alcotest.(check (option (pair int int))) "empty" None
    (Combinat.argmin Fun.id ~cmp:Stdlib.compare Seq.empty)

let prop_product_size =
  QCheck2.Test.make ~name:"product size is product of sizes" ~count:100
    QCheck2.Gen.(list_size (int_range 0 4) (list_size (int_range 1 4) (int_range 0 9)))
    (fun xss ->
      Seq.length (Combinat.product xss)
      = List.fold_left (fun acc xs -> acc * List.length xs) 1 xss)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_heap_sorts; prop_union_find_transitive; prop_product_size ]

let () =
  Alcotest.run "bi_ds"
    [
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "peek/pop" `Quick test_heap_peek_pop;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
        ] );
      ("union_find", [ Alcotest.test_case "basic" `Quick test_union_find ]);
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "set operations" `Quick test_bitset_ops;
          Alcotest.test_case "to_index" `Quick test_bitset_to_index;
          Alcotest.test_case "bounds checking" `Quick test_bitset_bounds;
        ] );
      ( "combinat",
        [
          Alcotest.test_case "product" `Quick test_product;
          Alcotest.test_case "functions" `Quick test_functions;
          Alcotest.test_case "subsets" `Quick test_subsets;
          Alcotest.test_case "combinations" `Quick test_combinations;
          Alcotest.test_case "permutations" `Quick test_permutations;
          Alcotest.test_case "argmin/argmax" `Quick test_argmin_argmax;
        ] );
      ("properties", qtests);
    ]

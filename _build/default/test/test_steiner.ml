(* Tests for the online Steiner tree substrate and the diamond adversary. *)

open Bi_num
module Graph = Bi_graph.Graph
module Gen = Bi_graph.Gen
module Online = Bi_steiner.Online
module Diamond = Bi_steiner.Diamond

let rat = Alcotest.testable Rat.pp Rat.equal
let ext = Alcotest.testable Extended.pp Extended.equal

let r = Rat.of_int

let test_greedy_line () =
  (* Path graph, requests at increasing distance: greedy pays each
     incremental segment once. *)
  let g = Gen.path_graph Undirected 5 (r 1) in
  let run = Online.greedy.Online.run g ~root:0 [ 2; 4; 1 ] in
  Alcotest.(check bool) "valid" true (Online.is_valid_run g ~root:0 [ 2; 4; 1 ] run);
  Alcotest.check rat "total = 4" (r 4) (Online.cost_of_run g run);
  (* Third request was already covered: bought nothing new. *)
  (match run with
   | [ _; _; step3 ] -> Alcotest.(check (list int)) "no extra purchase" [] step3
   | _ -> Alcotest.fail "three steps");
  Alcotest.check ext "offline opt" (Extended.of_int 4)
    (Online.offline_opt g ~root:0 [ 2; 4; 1 ])

let test_oblivious_overbuys () =
  (* Cycle: two far requests force the oblivious algorithm to buy two
     overlapping shortest paths; here they overlap fully, so costs tie;
     use a graph where they do not. *)
  let g =
    Graph.make Undirected ~n:4
      [ (0, 1, r 2); (1, 2, r 2); (0, 3, r 3); (3, 2, r 3) ]
  in
  (* Requests 1 then 2: greedy pays 2 then 2; oblivious pays 2, then
     shortest path 0-1-2 (4) which shares, also 4 total.  Equal here;
     check validity and order-of-magnitude instead. *)
  let sigma = [ 1; 2 ] in
  let run_g = Online.greedy.Online.run g ~root:0 sigma in
  let run_o = Online.oblivious_shortest_path.Online.run g ~root:0 sigma in
  Alcotest.(check bool) "greedy valid" true (Online.is_valid_run g ~root:0 sigma run_g);
  Alcotest.(check bool) "oblivious valid" true (Online.is_valid_run g ~root:0 sigma run_o);
  Alcotest.(check bool) "greedy <= oblivious" true
    (Rat.( <= ) (Online.cost_of_run g run_g) (Online.cost_of_run g run_o))

let test_is_valid_run_rejects () =
  let g = Gen.path_graph Undirected 3 (r 1) in
  (* Buying nothing does not connect vertex 2. *)
  Alcotest.(check bool) "missing purchase" false
    (Online.is_valid_run g ~root:0 [ 2 ] [ [] ]);
  Alcotest.(check bool) "length mismatch" false
    (Online.is_valid_run g ~root:0 [ 2 ] [ []; [] ])

let test_competitive_ratio () =
  let g = Gen.path_graph Undirected 4 (r 1) in
  match Online.competitive_ratio g ~root:0 [ [ 3 ]; [ 1; 3 ] ] Online.greedy with
  | Some ratio -> Alcotest.check rat "greedy optimal on a path" Rat.one ratio
  | None -> Alcotest.fail "well-defined"

let test_diamond_structure () =
  let d = Diamond.build 2 in
  let g = Diamond.graph d in
  Alcotest.(check int) "level-2 edges" 16 (Graph.n_edges g);
  (* Poles + 2 level-1 midpoints + 8 level-2 midpoints. *)
  Alcotest.(check int) "level-2 vertices" 12 (Graph.n_vertices g);
  Alcotest.(check int) "levels" 2 (Diamond.levels d);
  Alcotest.check ext "pole distance 1" Extended.one
    (Graph.distance g (Diamond.root d) (Diamond.pole d))

let test_diamond_distribution () =
  let d = Diamond.build 2 in
  let dist = Diamond.request_distribution d in
  (* 2 choices at level 1, then 2 x 2 at level 2: 8 sequences. *)
  Alcotest.(check int) "support size" 8 (List.length (Bi_prob.Dist.support dist));
  List.iter
    (fun sigma ->
      Alcotest.(check int) "sequence length = 2^levels" 4 (List.length sigma);
      Alcotest.(check bool) "opt is exactly one" true (Diamond.offline_opt_is_one d sigma))
    (Bi_prob.Dist.support dist)

let test_diamond_sampling_matches_support () =
  let d = Diamond.build 2 in
  let support = Bi_prob.Dist.support (Diamond.request_distribution d) in
  let rng = Random.State.make [| 17 |] in
  for _ = 1 to 50 do
    let sigma = Diamond.sample_requests rng d in
    if not (List.mem sigma support) then Alcotest.fail "sample outside support"
  done

let test_diamond_guard () =
  Alcotest.check_raises "level guard"
    (Invalid_argument "Diamond.request_distribution: support too large, use sampling")
    (fun () -> ignore (Diamond.request_distribution (Diamond.build 4)))

let test_adversary_hurts_online () =
  (* The expected online cost grows with the level while OPT stays 1. *)
  let cost j = Rat.to_float (Diamond.expected_cost (Diamond.build j) Online.greedy) in
  let c1 = cost 1 and c2 = cost 2 and c3 = cost 3 in
  Alcotest.(check bool) "level 1 above opt" true (c1 > 1.19);
  Alcotest.(check bool) "strictly growing 1->2" true (c2 > c1 +. 0.15);
  Alcotest.(check bool) "strictly growing 2->3" true (c3 > c2 +. 0.15)

let test_oblivious_on_adversary () =
  let d = Diamond.build 2 in
  let greedy = Diamond.expected_cost d Online.greedy in
  let oblivious = Diamond.expected_cost d Online.oblivious_shortest_path in
  Alcotest.(check bool) "greedy no worse than oblivious" true (Rat.( <= ) greedy oblivious);
  Alcotest.(check bool) "oblivious also suffers" true (Rat.( > ) oblivious Rat.one)

let prop_greedy_valid_on_random_graphs =
  QCheck2.Test.make ~name:"greedy produces valid runs" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 4 + Random.State.int rng 6 in
      let g = Gen.random_connected_graph rng ~n ~p:0.4 ~max_cost:9 in
      let sigma = List.init (1 + Random.State.int rng 4) (fun _ -> Random.State.int rng n) in
      let run = Online.greedy.Online.run g ~root:0 sigma in
      Online.is_valid_run g ~root:0 sigma run)

let prop_greedy_beats_opt_by_bounded_factor =
  QCheck2.Test.make ~name:"greedy >= opt and within crude factor" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 4 + Random.State.int rng 5 in
      let g = Gen.random_connected_graph rng ~n ~p:0.5 ~max_cost:9 in
      let sigma = List.init (1 + Random.State.int rng 3) (fun i -> (i * 3 + 1) mod n) in
      match Online.offline_opt g ~root:0 sigma with
      | Extended.Inf -> false
      | Extended.Fin opt ->
        let alg = Online.cost_of_run g (Online.greedy.Online.run g ~root:0 sigma) in
        if Rat.is_zero opt then Rat.is_zero alg
        else Rat.( <= ) opt alg && Rat.( <= ) alg (Rat.mul_int opt (2 * n)))

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_greedy_valid_on_random_graphs; prop_greedy_beats_opt_by_bounded_factor ]

let () =
  Alcotest.run "bi_steiner"
    [
      ( "online",
        [
          Alcotest.test_case "greedy on a line" `Quick test_greedy_line;
          Alcotest.test_case "oblivious vs greedy" `Quick test_oblivious_overbuys;
          Alcotest.test_case "run validation" `Quick test_is_valid_run_rejects;
          Alcotest.test_case "competitive ratio" `Quick test_competitive_ratio;
        ] );
      ( "diamond",
        [
          Alcotest.test_case "structure" `Quick test_diamond_structure;
          Alcotest.test_case "adversarial distribution" `Quick test_diamond_distribution;
          Alcotest.test_case "sampling" `Quick test_diamond_sampling_matches_support;
          Alcotest.test_case "guard" `Quick test_diamond_guard;
          Alcotest.test_case "online cost grows per level" `Slow test_adversary_hurts_online;
          Alcotest.test_case "oblivious on adversary" `Quick test_oblivious_on_adversary;
        ] );
      ("properties", qtests);
    ]

(* Tests for exact finite distributions. *)

open Bi_num
module Dist = Bi_prob.Dist

let rat = Alcotest.testable Rat.pp Rat.equal
let ext = Alcotest.testable Extended.pp Extended.equal

let half = Rat.of_ints 1 2
let third = Rat.of_ints 1 3

let test_point () =
  let d = Dist.point 42 in
  Alcotest.(check (list int)) "support" [ 42 ] (Dist.support d);
  Alcotest.check rat "mass" Rat.one (Dist.mass d 42);
  Alcotest.check rat "mass outside" Rat.zero (Dist.mass d 0)

let test_uniform () =
  let d = Dist.uniform [ 1; 2; 3; 4 ] in
  Alcotest.check rat "mass each" (Rat.of_ints 1 4) (Dist.mass d 2);
  Alcotest.check rat "total" Rat.one
    (Rat.sum (List.map snd (Dist.to_list d)));
  Alcotest.check_raises "empty uniform" (Invalid_argument "Dist.uniform: empty list")
    (fun () -> ignore (Dist.uniform []))

let test_normalization_and_merge () =
  (* Unnormalized weights and duplicate outcomes are cleaned up. *)
  let d = Dist.make [ ("a", Rat.of_int 2); ("b", Rat.of_int 1); ("a", Rat.of_int 1) ] in
  Alcotest.check rat "a merged" (Rat.of_ints 3 4) (Dist.mass d "a");
  Alcotest.check rat "b" (Rat.of_ints 1 4) (Dist.mass d "b");
  Alcotest.(check int) "support size" 2 (List.length (Dist.support d))

let test_make_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Dist.make: empty distribution")
    (fun () -> ignore (Dist.make ([] : (int * Rat.t) list)));
  Alcotest.check_raises "negative" (Invalid_argument "Dist.make: negative weight")
    (fun () -> ignore (Dist.make [ (1, Rat.of_int (-1)); (2, Rat.of_int 2) ]));
  Alcotest.check_raises "zero mass" (Invalid_argument "Dist.make: zero total mass")
    (fun () -> ignore (Dist.make [ (1, Rat.zero) ]));
  (* Zero-weight outcomes are dropped. *)
  let d = Dist.make [ (1, Rat.zero); (2, Rat.one) ] in
  Alcotest.(check (list int)) "dropped" [ 2 ] (Dist.support d)

let test_bernoulli () =
  let d = Dist.bernoulli third in
  Alcotest.check rat "p true" third (Dist.mass d true);
  Alcotest.check rat "p false" (Rat.of_ints 2 3) (Dist.mass d false);
  Alcotest.check_raises "p > 1" (Invalid_argument "Dist.bernoulli: p outside [0,1]")
    (fun () -> ignore (Dist.bernoulli (Rat.of_int 2)))

let test_map_bind () =
  let d = Dist.uniform [ 1; 2; 3 ] in
  let doubled = Dist.map (fun x -> 2 * x) d in
  Alcotest.check rat "map mass" third (Dist.mass doubled 4);
  (* map can merge outcomes *)
  let parity = Dist.map (fun x -> x mod 2) d in
  Alcotest.check rat "merged parity 1" (Rat.of_ints 2 3) (Dist.mass parity 1);
  let d2 = Dist.bind d (fun x -> if x = 1 then Dist.point 0 else Dist.uniform [ 0; x ]) in
  Alcotest.check rat "bind mass 0"
    (Rat.add third (Rat.add (Rat.of_ints 1 6) (Rat.of_ints 1 6)))
    (Dist.mass d2 0)

let test_product () =
  let d = Dist.product (Dist.bernoulli half) (Dist.uniform [ 0; 1; 2 ]) in
  Alcotest.check rat "independent mass" (Rat.of_ints 1 6) (Dist.mass d (true, 1));
  let dp = Dist.product_list [ Dist.uniform [ 0; 1 ]; Dist.uniform [ 0; 1 ] ] in
  Alcotest.(check int) "product_list support" 4 (List.length (Dist.support dp));
  Alcotest.check rat "product_list mass" (Rat.of_ints 1 4) (Dist.mass dp [ 0; 1 ])

let test_condition () =
  let d = Dist.uniform [ 1; 2; 3; 4; 5; 6 ] in
  (match Dist.condition (fun x -> x mod 2 = 0) d with
   | None -> Alcotest.fail "conditioning on possible event"
   | Some d' ->
     Alcotest.check rat "renormalized" third (Dist.mass d' 2);
     Alcotest.(check int) "support" 3 (List.length (Dist.support d')));
  Alcotest.(check bool) "impossible event" true
    (Dist.condition (fun x -> x > 10) d = None)

let test_expectation () =
  let d = Dist.uniform [ 1; 2; 3; 4; 5; 6 ] in
  Alcotest.check rat "die mean" (Rat.of_ints 7 2)
    (Dist.expectation (fun x -> Rat.of_int x) d);
  Alcotest.check rat "probability even" half
    (Dist.probability (fun x -> x mod 2 = 0) d);
  (* Infinite cost on a zero-probability event does not pollute the
     expectation; on a positive-probability event it dominates. *)
  let d2 = Dist.weighted_pair half 0 1 in
  Alcotest.check ext "finite expectation" (Extended.of_ints 1 2)
    (Dist.expectation_ext (fun x -> Extended.of_int x) d2);
  Alcotest.check ext "infinite expectation" Extended.Inf
    (Dist.expectation_ext
       (fun x -> if x = 0 then Extended.Inf else Extended.zero)
       d2)

let test_sample_support () =
  let rng = Random.State.make [| 7 |] in
  let d = Dist.make [ (1, half); (2, third); (3, Rat.of_ints 1 6) ] in
  for _ = 1 to 200 do
    let x = Dist.sample rng d in
    if not (List.mem x [ 1; 2; 3 ]) then Alcotest.fail "sample outside support"
  done;
  (* Point distributions sample deterministically. *)
  Alcotest.(check int) "point sample" 9 (Dist.sample rng (Dist.point 9))

let test_sample_frequencies () =
  let rng = Random.State.make [| 11 |] in
  let d = Dist.bernoulli (Rat.of_ints 3 4) in
  let hits = ref 0 in
  let n = 4000 in
  for _ = 1 to n do
    if Dist.sample rng d then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "frequency %.3f near 0.75" freq)
    true
    (Float.abs (freq -. 0.75) < 0.05)

let prop_expectation_linear =
  let gen =
    QCheck2.Gen.(list_size (int_range 1 8) (pair (int_range 0 20) (int_range 1 20)))
  in
  QCheck2.Test.make ~name:"expectation is linear" ~count:200 gen (fun pairs ->
      let d = Dist.make (List.map (fun (x, w) -> (x, Rat.of_int w)) pairs) in
      let f x = Rat.of_int (x * 3) and g x = Rat.of_int (x + 1) in
      Rat.equal
        (Dist.expectation (fun x -> Rat.add (f x) (g x)) d)
        (Rat.add (Dist.expectation f d) (Dist.expectation g d)))

let prop_mass_sums_to_one =
  let gen =
    QCheck2.Gen.(list_size (int_range 1 10) (pair (int_range 0 5) (int_range 0 9)))
  in
  QCheck2.Test.make ~name:"masses sum to one" ~count:200 gen (fun pairs ->
      QCheck2.assume (List.exists (fun (_, w) -> w > 0) pairs);
      let d = Dist.make (List.map (fun (x, w) -> (x, Rat.of_int w)) pairs) in
      Rat.equal Rat.one (Rat.sum (List.map snd (Dist.to_list d))))

let qtests =
  List.map QCheck_alcotest.to_alcotest [ prop_expectation_linear; prop_mass_sums_to_one ]

let () =
  Alcotest.run "bi_prob"
    [
      ( "construction",
        [
          Alcotest.test_case "point" `Quick test_point;
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "normalization & merge" `Quick test_normalization_and_merge;
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "bernoulli" `Quick test_bernoulli;
        ] );
      ( "combinators",
        [
          Alcotest.test_case "map/bind" `Quick test_map_bind;
          Alcotest.test_case "product" `Quick test_product;
          Alcotest.test_case "condition" `Quick test_condition;
        ] );
      ( "expectation",
        [ Alcotest.test_case "expectation & probability" `Quick test_expectation ] );
      ( "sampling",
        [
          Alcotest.test_case "stays in support" `Quick test_sample_support;
          Alcotest.test_case "frequencies" `Quick test_sample_frequencies;
        ] );
      ("properties", qtests);
    ]

(* Integration tests: the paper's constructions, verified end-to-end
   against the closed forms derived in Lemmas 3.2, 3.3, 3.6, 3.7 and the
   diamond reduction of Lemma 3.5. *)

open Bi_num
module Graph = Bi_graph.Graph
module Bncs = Bi_ncs.Bayesian_ncs
module Bayesian = Bi_bayes.Bayesian
module Measures = Bi_bayes.Measures
module Ap = Bi_constructions.Affine_plane
module Ag = Bi_constructions.Affine_game
module An = Bi_constructions.Anshelevich_game
module Gw = Bi_constructions.Gworst_game
module Dg = Bi_constructions.Diamond_game

let rat = Alcotest.testable Rat.pp Rat.equal
let ext = Alcotest.testable Extended.pp Extended.equal

let rr = Rat.of_ints

(* --- Affine planes --- *)

let test_affine_axioms () =
  List.iter
    (fun p ->
      let plane = Ap.make p in
      Alcotest.(check int) "points" (p * p) (Ap.n_points plane);
      Alcotest.(check int) "lines" ((p * p) + p) (Ap.n_lines plane);
      Alcotest.(check bool)
        (Printf.sprintf "axioms at order %d" p)
        true (Ap.check_axioms plane))
    [ 2; 3; 5; 7 ]

let test_affine_rejects_composite () =
  List.iter
    (fun p ->
      Alcotest.check_raises
        (Printf.sprintf "order %d" p)
        (Invalid_argument "Affine_plane.make: order must be prime") (fun () ->
          ignore (Ap.make p)))
    [ 0; 1; 4; 6; 9 ]

let test_affine_incidence () =
  let plane = Ap.make 3 in
  (* Common line through two distinct points is unique & incident. *)
  (match Ap.common_line plane 0 4 with
   | Some l ->
     Alcotest.(check bool) "incident both" true
       (Ap.on_line plane ~point:0 ~line:l && Ap.on_line plane ~point:4 ~line:l)
   | None -> Alcotest.fail "two distinct points share a line");
  Alcotest.(check bool) "same point" true (Ap.common_line plane 2 2 = None);
  Alcotest.(check int) "lines through a point" 4 (List.length (Ap.lines_through plane 5))

(* --- Lemma 3.2 (affine game) --- *)

let test_affine_game_structure () =
  let plane = Ap.make 2 in
  let g = Ag.graph plane in
  (* 1 source + 6 line vertices + 4 point vertices. *)
  Alcotest.(check int) "vertices" 11 (Graph.n_vertices g);
  (* 6 unit edges + 12 free incidence edges. *)
  Alcotest.(check int) "edges" 18 (Graph.n_edges g);
  Alcotest.(check bool) "directed" true (Graph.is_directed g)

let test_affine_game_all_profiles_equal_cost () =
  let game = Ag.game 2 in
  let predicted = Extended.of_rat (Ag.predicted_social_cost 2) in
  (* The lemma's punchline: every strategy profile costs the same. *)
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 25 do
    let s = Bayesian.random_strategy_profile rng (Bncs.game game) in
    (* Random profiles may assign invalid paths; restrict to valid. *)
    ignore s
  done;
  Seq.iter
    (fun s ->
      Alcotest.check ext "profile cost" predicted (Bncs.social_cost game s))
    (Seq.take 200 (Bncs.valid_strategy_profiles game));
  (* And therefore optP equals the closed form. *)
  let opt_p, _ = Bncs.opt_p_exhaustive game in
  Alcotest.check ext "optP = 1 + m^2/(m+1)" predicted opt_p

let test_affine_game_complete_information_side () =
  let game = Ag.game 2 in
  Alcotest.check ext "optC = 1" Extended.one (Bncs.opt_c game);
  Alcotest.(check (option ext)) "best-eqC = 1" (Some Extended.one) (Bncs.best_eq_c game);
  Alcotest.(check (option ext)) "worst-eqC = 1" (Some Extended.one) (Bncs.worst_eq_c game)

let test_affine_game_equilibrium () =
  let game = Ag.game 2 in
  match Bncs.equilibrium_by_dynamics game with
  | Some s ->
    Alcotest.(check bool) "dynamics reach a Bayesian equilibrium" true
      (Bayesian.is_bayesian_equilibrium (Bncs.game game) s);
    Alcotest.check ext "its cost is the common value"
      (Extended.of_rat (Ag.predicted_social_cost 2))
      (Bncs.social_cost game s)
  | None -> Alcotest.fail "potential game: dynamics converge"

let test_affine_game_ratio_growth () =
  (* The predicted optP/worst-eqC ratio grows linearly in k. *)
  let ratio m = Rat.to_float (Ag.predicted_ratio m) in
  Alcotest.(check bool) "growth 2 -> 3 -> 5" true
    (ratio 3 > ratio 2 && ratio 5 > ratio 3 && ratio 5 > 5.0)

(* --- Lemma 3.3 (Anshelevich game, ignorance is bliss) --- *)

let anshelevich_measures k = Bncs.measures_exhaustive (An.game k)

let test_anshelevich_unique_equilibrium () =
  let game = An.game 4 in
  let eqs = List.of_seq (Bncs.bayesian_equilibria game) in
  Alcotest.(check int) "unique Bayesian equilibrium" 1 (List.length eqs);
  match eqs with
  | [ s ] ->
    Alcotest.check ext "equilibrium cost 1 + eps"
      (Extended.of_rat (An.predicted_worst_eq_p 4))
      (Bncs.social_cost game s)
  | _ -> Alcotest.fail "unique"

let test_anshelevich_measures () =
  List.iter
    (fun k ->
      let m = anshelevich_measures k in
      let one_eps = Extended.of_rat (An.predicted_worst_eq_p k) in
      Alcotest.check ext "optP = 1 + eps" one_eps m.Measures.opt_p;
      Alcotest.check ext "optC = 1 + eps" one_eps m.Measures.opt_c;
      Alcotest.(check (option ext)) "worst-eqP = 1 + eps" (Some one_eps)
        m.Measures.worst_eq_p;
      Alcotest.(check (option ext))
        "best-eqC = (H(k-1) + 1 + eps)/2"
        (Some (Extended.of_rat (An.predicted_best_eq_c k)))
        m.Measures.best_eq_c;
      Alcotest.(check bool) "observation 2.2" true (Measures.observation_2_2_holds m))
    [ 3; 4; 5 ]

let test_anshelevich_bliss () =
  (* worst-eqP < best-eqC from k = 5 on: all Bayesian equilibria beat
     all complete-information equilibria. *)
  let m = anshelevich_measures 6 in
  match m.Measures.worst_eq_p, m.Measures.best_eq_c with
  | Some p, Some c -> Alcotest.(check bool) "ignorance is bliss" true Extended.(p < c)
  | _ -> Alcotest.fail "equilibria exist"

let test_anshelevich_ratio_shrinks () =
  let ratio k = Rat.to_float (An.predicted_ratio k) in
  Alcotest.(check bool) "O(1/log k) trend" true
    (ratio 8 < ratio 4 && ratio 16 < ratio 8 && ratio 64 < 0.5)

(* --- Lemmas 3.6 / 3.7 (G_worst) --- *)

let test_gworst_bliss () =
  List.iter
    (fun k ->
      let m = Bncs.measures_exhaustive (Gw.bliss_game k) in
      Alcotest.(check (option ext)) "worst-eqP = 3/2 + eps"
        (Some (Extended.of_rat (Gw.predicted_bliss_worst_eq_p k)))
        m.Measures.worst_eq_p;
      (match m.Measures.worst_eq_c with
       | Some c ->
         Alcotest.(check bool) "worst-eqC >= (k+2)/2" true
           (Extended.( <= ) (Extended.of_rat (Gw.predicted_bliss_worst_eq_c_lower k)) c)
       | None -> Alcotest.fail "equilibria exist");
      (* The ratio is O(1/k): at most (3/2 + eps) / ((k+2)/2). *)
      (match m.Measures.worst_eq_p, m.Measures.worst_eq_c with
       | Some (Extended.Fin p), Some (Extended.Fin c) ->
         let bound =
           Rat.div (Gw.predicted_bliss_worst_eq_p k)
             (Gw.predicted_bliss_worst_eq_c_lower k)
         in
         Alcotest.(check bool) "ratio below the O(1/k) bound" true
           (Rat.( <= ) (Rat.div p c) bound)
       | _ -> Alcotest.fail "finite"))
    [ 3; 4; 5 ]

let test_gworst_bliss_unique_equilibrium () =
  let game = Gw.bliss_game 4 in
  let eqs = List.of_seq (Bncs.bayesian_equilibria game) in
  Alcotest.(check int) "unique Bayesian equilibrium" 1 (List.length eqs)

let test_gworst_curse () =
  List.iter
    (fun k ->
      let m = Bncs.measures_exhaustive (Gw.curse_game k) in
      (match m.Measures.worst_eq_p with
       | Some p ->
         Alcotest.(check bool) "worst-eqP >= k + 2" true
           (Extended.( <= ) (Extended.of_rat (Gw.predicted_curse_worst_eq_p k)) p)
       | None -> Alcotest.fail "equilibria exist");
      (match m.Measures.worst_eq_c with
       | Some c ->
         Alcotest.(check bool) "worst-eqC = O(1)" true
           (Extended.( <= ) c
              (Extended.of_rat (Gw.predicted_curse_worst_eq_c_upper k)))
       | None -> Alcotest.fail "equilibria exist");
      Alcotest.(check bool) "observation 2.2" true (Measures.observation_2_2_holds m))
    [ 3; 4; 5 ]

let test_gworst_curse_ratio_grows () =
  (* worst-eqP / worst-eqC = Omega(k). *)
  let ratio k =
    let m = Bncs.measures_exhaustive (Gw.curse_game k) in
    match m.Measures.worst_eq_p, m.Measures.worst_eq_c with
    | Some (Extended.Fin p), Some (Extended.Fin c) -> Rat.to_float (Rat.div p c)
    | _ -> Alcotest.fail "finite"
  in
  let r3 = ratio 3 and r5 = ratio 5 and r7 = ratio 7 in
  Alcotest.(check bool)
    (Printf.sprintf "growing: %.2f < %.2f < %.2f" r3 r5 r7)
    true
    (r3 < r5 && r5 < r7 && r7 > 3.0)

(* --- Lemma 3.5 (diamond game) --- *)

let test_diamond_game_level_0 () =
  let _, game = Dg.game 0 in
  let m = Bncs.measures_exhaustive game in
  (* Single agent, single edge: everything is 1. *)
  Alcotest.check ext "optP" Extended.one m.Measures.opt_p;
  Alcotest.check ext "optC" Extended.one m.Measures.opt_c

let test_diamond_game_level_1 () =
  let _, game = Dg.game 1 in
  Alcotest.(check int) "agents" 2 (Bncs.players game);
  let opt_p, _ = Bncs.opt_p_exhaustive game in
  (* Hand computation: the pole agent fixes one side; the midpoint agent
     matches it when lucky (cost 1) and adds her own 1/2-edge otherwise:
     optP = 1/2 * 1 + 1/2 * 3/2 = 5/4. *)
  Alcotest.check ext "optP = 5/4" (Extended.of_rat (rr 5 4)) opt_p;
  Alcotest.check ext "optC = 1" Extended.one (Bncs.opt_c game);
  (* Bayesian ignorance already costs 25% at one level. *)
  let ratios =
    Measures.ratios_of_report (Bncs.measures_exhaustive game)
  in
  match ratios.Measures.r_opt with
  | Some r -> Alcotest.check rat "ratio 5/4" (rr 5 4) r
  | None -> Alcotest.fail "defined"

let test_diamond_game_growth () =
  (* The oblivious-profile cost (an achievable K(s)) grows with the
     level while optC stays 1 — the shape of Omega(log n). *)
  let cost j =
    let d = Bi_steiner.Diamond.build j in
    Rat.to_float (Dg.oblivious_profile_cost d)
  in
  let c0 = cost 0 and c1 = cost 1 and c2 = cost 2 and c3 = cost 3 in
  Alcotest.(check (float 1e-9)) "level 0 exact" 1.0 c0;
  Alcotest.(check bool)
    (Printf.sprintf "monotone growth %.3f %.3f %.3f %.3f" c0 c1 c2 c3)
    true
    (c1 > c0 +. 0.2 && c2 > c1 +. 0.2 && c3 > c2 +. 0.2)

let () =
  Alcotest.run "bi_constructions"
    [
      ( "affine_plane",
        [
          Alcotest.test_case "axioms" `Quick test_affine_axioms;
          Alcotest.test_case "composite rejected" `Quick test_affine_rejects_composite;
          Alcotest.test_case "incidence" `Quick test_affine_incidence;
        ] );
      ( "lemma_3_2",
        [
          Alcotest.test_case "graph structure" `Quick test_affine_game_structure;
          Alcotest.test_case "all profiles cost the same" `Slow
            test_affine_game_all_profiles_equal_cost;
          Alcotest.test_case "complete-information side" `Quick
            test_affine_game_complete_information_side;
          Alcotest.test_case "equilibrium" `Quick test_affine_game_equilibrium;
          Alcotest.test_case "Omega(k) ratio" `Quick test_affine_game_ratio_growth;
        ] );
      ( "lemma_3_3",
        [
          Alcotest.test_case "unique equilibrium" `Quick test_anshelevich_unique_equilibrium;
          Alcotest.test_case "exact measures" `Slow test_anshelevich_measures;
          Alcotest.test_case "ignorance is bliss" `Slow test_anshelevich_bliss;
          Alcotest.test_case "ratio shrinks" `Quick test_anshelevich_ratio_shrinks;
        ] );
      ( "lemmas_3_6_3_7",
        [
          Alcotest.test_case "bliss window" `Slow test_gworst_bliss;
          Alcotest.test_case "bliss uniqueness" `Quick test_gworst_bliss_unique_equilibrium;
          Alcotest.test_case "curse window" `Slow test_gworst_curse;
          Alcotest.test_case "curse ratio grows" `Slow test_gworst_curse_ratio_grows;
        ] );
      ( "lemma_3_5",
        [
          Alcotest.test_case "level 0" `Quick test_diamond_game_level_0;
          Alcotest.test_case "level 1 exact" `Quick test_diamond_game_level_1;
          Alcotest.test_case "logarithmic growth" `Slow test_diamond_game_growth;
        ] );
    ]
